// Command dashload is the closed-loop load generator: a fleet of
// concurrent simulated DASH players hammering one dashserve process,
// reporting throughput, tail latency (p50/p90/p99/p999 from merged
// quantile sketches), error rate, and the server's own cache hit rate.
//
//	dashserve -addr :8080 -cache-mb 64 -coalesce &
//	dashload -url http://localhost:8080 -players 1000 -duration 10s
//
// The client-side resilience layer is opt-in per flag: -retry-budget
// meters retries, -breaker arms per-player circuit breakers, -jitter
// decorrelates backoff, -hedge races a duplicate request against a
// slow first, and -tenants spreads the fleet across tenant identities
// the server's governor can meter (-quota on dashserve).
//
// The report lands on stdout and, atomically, in -out (default
// results/loadgen.txt). With -check, the exit status turns the run
// into a smoke test: nonzero when any request failed or when a cache
// was configured server-side but served nothing.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"coalqoe/internal/atomicio"
	"coalqoe/internal/dash"
	"coalqoe/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "dashserve base URL")
	players := flag.Int("players", 200, "concurrent closed-loop players")
	duration := flag.Duration("duration", 5*time.Second, "run length (wall time bound)")
	segments := flag.Int("segments", 0, "max segments per player (0 = duration-bound only)")
	seed := flag.Int64("seed", 1, "fleet seed (per-player FNV lanes)")
	safety := flag.Float64("safety", 0.8, "rate-rule safety factor for rung selection")
	retries := flag.Int("retries", 0, "retry attempts per fetch (0 = single attempt)")
	tenants := flag.String("tenants", "", "comma-separated tenant names, assigned to players round-robin (X-Tenant header)")
	retryBudget := flag.Float64("retry-budget", 0, "per-player retry budget in tokens (0 = unmetered retries)")
	breaker := flag.Int("breaker", 0, "per-player circuit breaker: consecutive failures before opening (0 = off)")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-circuit cooldown before half-open probing")
	jitter := flag.Bool("jitter", false, "jitter retry backoff ×[0.5,1.5) on per-player seed lanes")
	hedge := flag.Duration("hedge", 0, "launch a duplicate request after this delay (0 = no hedging)")
	errorPause := flag.Duration("error-pause", 0, "rebuffer sit-out after a failed fetch (0 = immediate continue)")
	out := flag.String("out", "results/loadgen.txt", `report path ("-" = stdout only)`)
	check := flag.Bool("check", false, "exit nonzero on request errors or a silent cache")
	flag.Parse()

	cfg := loadgen.Config{
		BaseURL:          *url,
		Players:          *players,
		Duration:         *duration,
		MaxSegments:      *segments,
		Seed:             *seed,
		RateSafety:       *safety,
		RetryBudget:      *retryBudget,
		BreakerThreshold: *breaker,
		BreakerCooldown:  *breakerCooldown,
		Jitter:           *jitter,
		Hedge:            *hedge,
		ErrorPause:       *errorPause,
		Now:              time.Now,
		Sleep:            time.Sleep,
	}
	if *retries > 0 {
		cfg.Retry = dash.RetryPolicy{Attempts: *retries}
	}
	for _, name := range strings.Split(*tenants, ",") {
		if name = strings.TrimSpace(name); name != "" {
			cfg.Tenants = append(cfg.Tenants, name)
		}
	}

	fmt.Printf("dashload: %d players against %s for %v\n", *players, *url, *duration)
	res, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dashload:", err)
		os.Exit(1)
	}
	if m, err := loadgen.FetchServerStats(nil, *url); err == nil {
		res.ServerMetrics = m
	} else {
		fmt.Fprintln(os.Stderr, "dashload: server metrics unavailable:", err)
	}

	var buf bytes.Buffer
	if err := loadgen.WriteReport(&buf, res); err != nil {
		fmt.Fprintln(os.Stderr, "dashload:", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())
	if *out != "-" {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "dashload:", err)
				os.Exit(1)
			}
		}
		if err := atomicio.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dashload:", err)
			os.Exit(1)
		}
		fmt.Printf("\nreport written to %s\n", *out)
	}

	if *check {
		if res.Errors > 0 {
			fmt.Fprintf(os.Stderr, "dashload: check failed: %d request errors\n", res.Errors)
			os.Exit(1)
		}
		// A configured cache that served nothing means the cache path
		// is broken (hit_rate is only exported when a cache exists).
		if _, ok := res.ServerMetrics["dash.cache.hit_rate"]; ok {
			if res.ServerMetrics["dash.cache.hits"]+res.ServerMetrics["dash.cache.coalesced"] == 0 {
				fmt.Fprintln(os.Stderr, "dashload: check failed: cache configured but served nothing")
				os.Exit(1)
			}
		}
	}
}
