// Coalvet is the repo's determinism linter: a multichecker over the
// invariants that keep simulator output byte-identical at any
// parallelism (see LINTING.md). It speaks the `go vet -vettool`
// protocol, so the canonical invocation is:
//
//	go build -o coalvet ./cmd/coalvet
//	go vet -vettool=$(pwd)/coalvet ./...
//
// As a convenience it also accepts package patterns directly and
// re-executes itself through `go vet`, which handles package loading,
// export data, and caching:
//
//	./coalvet ./...
//
// Individual analyzers can be selected vet-style with boolean flags
// (-wallclock, -maporder, ...); with no selection the whole suite
// runs.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"

	"coalqoe/internal/coalvet/analysis"
	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/unitchecker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coalvet: ")

	suite := analyzers.All()
	if err := analysis.Validate(suite); err != nil {
		log.Fatal(err)
	}

	// The two single-argument protocol queries from cmd/go come
	// before ordinary flag parsing.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlagsJSON(suite)
			return
		}
	}

	fs := flag.NewFlagSet("coalvet", flag.ExitOnError)
	fs.Usage = usage(suite)
	selected := make(map[string]*bool, len(suite))
	for _, a := range suite {
		doc := a.Doc
		if i := strings.IndexByte(doc, ';'); i > 0 {
			doc = doc[:i]
		}
		selected[a.Name] = fs.Bool(a.Name, false, doc)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	// Vet flag semantics: naming any analyzer runs only those named.
	anySelected := false
	fs.Visit(func(f *flag.Flag) {
		if b, ok := selected[f.Name]; ok && *b {
			anySelected = true
		}
	})
	if anySelected {
		var subset []*analysis.Analyzer
		for _, a := range suite {
			if *selected[a.Name] {
				subset = append(subset, a)
			}
		}
		suite = subset
	}

	args := fs.Args()
	switch {
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		unitchecker.Run(args[0], suite)
	case len(args) > 0:
		runStandalone(fs, args)
	default:
		fs.Usage()
		os.Exit(2)
	}
}

// printVersion emits the build-caching version line cmd/go parses:
// "<name> version devel ... buildID=<contenthash>".
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("coalvet version devel buildID=%x\n", h.Sum(nil))
}

// printFlagsJSON describes the tool's flags so cmd/go can accept them
// on the `go vet` command line.
func printFlagsJSON(suite []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range suite {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable only the named analyzers"})
	}
	out, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}

// runStandalone re-invokes the suite through `go vet -vettool=self`
// so cmd/go does the package loading and caching; analyzer selection
// flags are forwarded.
func runStandalone(fs *flag.FlagSet, patterns []string) {
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot locate own executable: %v", err)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	fs.Visit(func(f *flag.Flag) {
		vetArgs = append(vetArgs, fmt.Sprintf("-%s=%s", f.Name, f.Value.String()))
	})
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		log.Fatal(err)
	}
}

func usage(suite []*analysis.Analyzer) func() {
	return func() {
		fmt.Fprintf(os.Stderr, `coalvet enforces the simulator's determinism invariants (see LINTING.md).

Usage:
	go vet -vettool=/path/to/coalvet [-<analyzer>...] ./...
	coalvet [-<analyzer>...] ./...   (re-executes through go vet)

Analyzers:
`)
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "	%-14s %s\n", a.Name, a.Doc)
		}
	}
}
