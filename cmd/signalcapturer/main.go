// Command signalcapturer runs the §3 user study: it simulates a fleet
// of devices under natural usage and prints the SignalCapturer-style
// telemetry summaries behind Figures 1–6.
//
// The fleet runs on the streaming engine, so panels far beyond the
// paper's 80 recruits complete in bounded memory. Progress chatter goes
// to stderr; stdout carries only the report, which is byte-identical
// for a given population and seed whatever the shard or worker count —
// and across checkpoint/resume cycles (the CI fleet-determinism job
// holds it to that).
//
//	signalcapturer -users 80 -seed 1
//	signalcapturer -users 20 -json fleet.json
//	signalcapturer -users 1000000 -population stratified -shards 64 \
//	    -checkpoint ckpt/ -halt-after 250000    # budget slice, exit 3
//	signalcapturer -users 1000000 -population stratified -shards 64 \
//	    -checkpoint ckpt/ -resume               # continue to completion
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"coalqoe/internal/atomicio"
	"coalqoe/internal/proc"
	"coalqoe/internal/study"
)

// deviceRow is the JSON export record for one study device.
type deviceRow struct {
	User              string             `json:"user"`
	RAMGiB            float64            `json:"ram_gib"`
	MedianUtilization float64            `json:"median_utilization"`
	SignalsPerHour    map[string]float64 `json:"signals_per_hour"`
	TimeShare         map[string]float64 `json:"time_share"`
}

func main() {
	users := flag.Int64("users", 80, "participants to recruit")
	seed := flag.Int64("seed", 1, "fleet seed")
	jsonPath := flag.String("json", "", "write per-device records to this file")
	population := flag.String("population", "auto",
		"population model: roster (the paper's demographics), stratified (RAM-tier x vendor x usage strata), or auto (roster up to 1000 users)")
	shards := flag.Int("shards", 0, "shard count (0 = derive from workers; result is shard-independent)")
	workers := flag.Int("workers", 0, "concurrent shards (0 = NumCPU; result is worker-independent)")
	checkpoint := flag.String("checkpoint", "", "directory for per-shard checkpoints")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of starting over")
	haltAfter := flag.Int64("halt-after", 0, "checkpoint and stop after this many users (exit code 3); requires -checkpoint")
	top := flag.Int("top", 20, "per-device table rows (most-pressured first)")
	flag.Parse()

	cfg := study.FleetConfig{
		Users: *users, Seed: *seed,
		Shards: *shards, Workers: *workers,
		CheckpointDir: *checkpoint, Resume: *resume, HaltAfter: *haltAfter,
	}
	switch *population {
	case "roster":
	case "stratified":
		cfg.Population = study.DefaultPopulation(*users, *seed)
	case "auto":
		if *users > 1000 {
			cfg.Population = study.DefaultPopulation(*users, *seed)
		}
	default:
		fatal(fmt.Errorf("unknown -population %q (roster, stratified, auto)", *population))
	}

	fmt.Fprintf(os.Stderr, "recruiting %d users (population %s, %d shards)...\n",
		*users, *population, cfg.Shards)
	agg, st, err := study.RunFleetStream(cfg)
	if errors.Is(err, study.ErrHalted) {
		fmt.Fprintf(os.Stderr, "halted after %d users this run; %d checkpoints in %s — rerun with -resume\n",
			st.UsersRun, st.Checkpoints, *checkpoint)
		os.Exit(3)
	}
	if err != nil {
		fatal(err)
	}
	if st.UsersSkipped > 0 {
		fmt.Fprintf(os.Stderr, "resumed: %d users from checkpoints, %d simulated this run\n",
			st.UsersSkipped, st.UsersRun)
	}

	fmt.Printf("kept %d of %d users with >= %.0f h interactive data (paper: 48 of 80)\n",
		agg.Kept, agg.Recruited, study.MinInteractiveHours)
	if agg.Failed > 0 {
		fmt.Printf("%d device simulations failed (captured per user)\n", agg.Failed)
	}
	fmt.Println()

	// Figure 2 summary.
	fmt.Printf("median RAM utilization: >=60%% on %.0f%% of devices (paper: 80%%)\n",
		100*(1-agg.UtilCDFAt(0.5999)))

	// Figure 3/4 summaries.
	ins := agg.Table1()
	fmt.Printf("devices with >=1 pressure signal/hour:  %.0f%% (paper: 63%%)\n", ins.PctAnySignal)
	fmt.Printf("devices with >10 critical signals/hour: %.0f%% (paper: 19%%)\n", ins.PctManyCritical)
	fmt.Printf("devices >50%% time under pressure:       %.0f%% (paper: 10%%)\n", ins.PctHighTimeOver50)
	fmt.Printf("devices >=2%% time under pressure:       %.0f%% (paper: 35%%)\n\n", ins.PctHighTimeOver2)

	// Per-device table: most-pressured first (the Figure 5 heap), exact
	// at any fleet scale.
	fmt.Printf("%-10s %5s %6s %10s %10s %10s\n", "user", "RAM", "util", "mod/h", "low/h", "crit/h")
	for _, s := range agg.TopSummaries(*top) {
		fmt.Printf("%-10s %4.0fG %5.0f%% %10.1f %10.1f %10.1f\n",
			s.ID, s.RAMGiB, 100*s.MedianUtilization,
			s.SignalsPerHour[proc.Moderate], s.SignalsPerHour[proc.Low], s.SignalsPerHour[proc.Critical])
	}

	if *jsonPath != "" {
		rows := make([]deviceRow, 0, len(agg.Summaries))
		for _, s := range agg.Summaries {
			row := deviceRow{
				User:              s.ID,
				RAMGiB:            s.RAMGiB,
				MedianUtilization: s.MedianUtilization,
				SignalsPerHour:    map[string]float64{},
				TimeShare:         map[string]float64{},
			}
			for lvl := proc.Level(0); lvl <= proc.Critical; lvl++ {
				if v := s.SignalsPerHour[lvl]; v != 0 {
					row.SignalsPerHour[lvl.String()] = v
				}
				if v := s.TimeShare[lvl]; v != 0 {
					row.TimeShare[lvl.String()] = v
				}
			}
			rows = append(rows, row)
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := atomicio.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		note := ""
		if int64(len(rows)) < agg.Kept-agg.Failed {
			note = fmt.Sprintf(" (first %d of %d devices — fleet outgrew the retention cap)",
				len(rows), agg.Kept-agg.Failed)
		}
		fmt.Fprintf(os.Stderr, "wrote %d device records to %s%s\n", len(rows), *jsonPath, note)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "signalcapturer:", err)
	os.Exit(1)
}
