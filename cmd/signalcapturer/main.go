// Command signalcapturer runs the §3 user study: it simulates a fleet
// of devices under natural usage and prints the SignalCapturer-style
// telemetry summaries behind Figures 1–6.
//
//	signalcapturer -users 80 -seed 1
//	signalcapturer -users 20 -json fleet.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"coalqoe/internal/proc"
	"coalqoe/internal/study"
	"coalqoe/internal/units"
)

// deviceRow is the JSON export record for one study device.
type deviceRow struct {
	User              string             `json:"user"`
	RAMGiB            float64            `json:"ram_gib"`
	MedianUtilization float64            `json:"median_utilization"`
	SignalsPerHour    map[string]float64 `json:"signals_per_hour"`
	TimeShare         map[string]float64 `json:"time_share"`
}

func main() {
	users := flag.Int("users", 80, "participants to recruit")
	seed := flag.Int64("seed", 1, "fleet seed")
	jsonPath := flag.String("json", "", "write per-device records to this file")
	flag.Parse()

	fmt.Printf("recruiting %d users...\n", *users)
	fleet := study.RunFleet(*users, *seed)
	fmt.Printf("kept %d users with >= %.0f h interactive data (paper: 48 of 80)\n\n",
		len(fleet.Kept), study.MinInteractiveHours)

	// Figure 2 summary.
	cdf := fleet.Fig2CDF()
	fmt.Printf("median RAM utilization: >=60%% on %.0f%% of devices (paper: 80%%)\n",
		100*(1-cdf.At(0.5999)))

	// Figure 3/4 summaries.
	ins := fleet.Table1()
	fmt.Printf("devices with >=1 pressure signal/hour:  %.0f%% (paper: 63%%)\n", ins.PctAnySignal)
	fmt.Printf("devices with >10 critical signals/hour: %.0f%% (paper: 19%%)\n", ins.PctManyCritical)
	fmt.Printf("devices >50%% time under pressure:       %.0f%% (paper: 10%%)\n", ins.PctHighTimeOver50)
	fmt.Printf("devices >=2%% time under pressure:       %.0f%% (paper: 35%%)\n\n", ins.PctHighTimeOver2)

	// Per-device table, sorted by pressure exposure.
	logs := append([]*study.DeviceLog(nil), fleet.Logs...)
	sort.Slice(logs, func(i, j int) bool {
		hi := logs[i].TimeShare[proc.Moderate] + logs[i].TimeShare[proc.Low] + logs[i].TimeShare[proc.Critical]
		hj := logs[j].TimeShare[proc.Moderate] + logs[j].TimeShare[proc.Low] + logs[j].TimeShare[proc.Critical]
		return hi > hj
	})
	fmt.Printf("%-8s %5s %6s %10s %10s %10s\n", "user", "RAM", "util", "mod/h", "low/h", "crit/h")
	for _, l := range logs {
		fmt.Printf("%-8s %4.0fG %5.0f%% %10.1f %10.1f %10.1f\n",
			l.User.ID, float64(l.User.RAM)/float64(units.GiB), 100*l.MedianUtilization,
			l.SignalsPerHour[proc.Moderate], l.SignalsPerHour[proc.Low], l.SignalsPerHour[proc.Critical])
	}

	if *jsonPath != "" {
		rows := make([]deviceRow, 0, len(fleet.Logs))
		for _, l := range fleet.Logs {
			row := deviceRow{
				User:              l.User.ID,
				RAMGiB:            float64(l.User.RAM) / float64(units.GiB),
				MedianUtilization: l.MedianUtilization,
				SignalsPerHour:    map[string]float64{},
				TimeShare:         map[string]float64{},
			}
			for lvl, v := range l.SignalsPerHour {
				row.SignalsPerHour[lvl.String()] = v
			}
			for lvl, v := range l.TimeShare {
				row.TimeShare[lvl.String()] = v
			}
			rows = append(rows, row)
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d device records to %s\n", len(rows), *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "signalcapturer:", err)
	os.Exit(1)
}
