// Command dashserve serves a DASH manifest and synthetic segments over
// real HTTP — the stand-in for the paper's Apache video server (§4.1),
// now with an optional CDN-model segment cache, request coalescing,
// server-side fault injection, and an overload governor (admission
// control, per-tenant quotas, brownout demotion):
//
//	dashserve -addr :8080 -video 0 -cache-mb 64 -coalesce
//	dashserve -faults netflaky -faults-seed 42
//	dashserve -admit-limit 16 -tenants gold,bronze -quota 140 -brownout 0.1
//	curl localhost:8080/manifest.json
//	curl -o seg.mp4 localhost:8080/video/720p30/0
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM drain in-flight requests (graceful shutdown) and
// print a final /metrics snapshot to stdout, so a scripted run —
// start, load, kill -INT, wait — still collects its counters.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coalqoe/internal/cdn"
	"coalqoe/internal/dash"
	"coalqoe/internal/faults"
)

// planNames lists the fault plans for the -faults usage string.
func planNames() []string {
	var names []string
	for _, sp := range faults.Plans() {
		names = append(names, sp.Name)
	}
	return names
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	videoIdx := flag.Int("video", 0, "test video index 0..4")
	cacheMB := flag.Int("cache-mb", 0, "segment cache capacity in MiB (0 = no cache)")
	coalesce := flag.Bool("coalesce", false, "coalesce concurrent fetches of the same segment into one generation")
	faultsPlan := flag.String("faults", "", "server-side fault plan: "+strings.Join(planNames(), ", "))
	faultsSeed := flag.Int64("faults-seed", 1, "fault schedule seed")
	faultsHorizon := flag.Duration("faults-horizon", 10*time.Minute, "fault schedule repeats every horizon")
	admitLimit := flag.Int("admit-limit", 0, "max in-flight segment requests (0 = no admission control)")
	admitQueue := flag.Int("admit-queue", 0, "max queued segment requests (default 4x -admit-limit)")
	tenants := flag.String("tenants", "", "comma-separated tenant names to meter (with -quota)")
	quota := flag.Float64("quota", 0, "per-tenant request quota in req/s (0 = unmetered)")
	brownout := flag.Float64("brownout", 0, "shed-rate EWMA that triggers brownout demotion (0 = off)")
	flag.Parse()

	if *videoIdx < 0 || *videoIdx >= len(dash.TestVideos) {
		fmt.Fprintln(os.Stderr, "dashserve: video index out of range")
		os.Exit(1)
	}
	video := dash.TestVideos[*videoIdx]
	manifest := dash.NewManifest(video, 24, 30, 48, 60)

	var opts dash.ServerOptions
	if *cacheMB > 0 || *coalesce {
		opts.Cache = cdn.New(cdn.Config{
			Capacity: int64(*cacheMB) << 20,
			Coalesce: *coalesce,
		})
	}
	if *faultsPlan != "" {
		spec, err := faults.Lookup(*faultsPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dashserve:", err)
			os.Exit(1)
		}
		opts.Chaos = cdn.NewChaos(spec, *faultsSeed, *faultsHorizon, time.Now, time.Sleep)
	}
	if *admitLimit > 0 || *quota > 0 || *brownout > 0 {
		gcfg := cdn.GovernorConfig{
			MaxInflight:   *admitLimit,
			MaxQueue:      *admitQueue,
			BrownoutEnter: *brownout,
		}
		if *quota > 0 {
			for _, name := range strings.Split(*tenants, ",") {
				if name = strings.TrimSpace(name); name != "" {
					gcfg.Quotas = append(gcfg.Quotas, cdn.TenantQuota{Name: name, Rate: *quota})
				}
			}
			if len(gcfg.Quotas) == 0 {
				fmt.Fprintln(os.Stderr, "dashserve: -quota needs -tenants to meter")
				os.Exit(1)
			}
		}
		opts.Governor = cdn.NewGovernor(gcfg, time.Now)
	}
	handler := dash.NewServerOpts(manifest, opts)

	fmt.Printf("serving %q (%s, %v) with %d representations on %s\n",
		video.Title, video.Genre, video.Duration, len(manifest.Rungs), *addr)
	if opts.Cache != nil {
		fmt.Printf("segment cache: %d MiB, coalesce=%v\n", *cacheMB, *coalesce)
	}
	if opts.Chaos != nil {
		fmt.Printf("fault plan: %s (seed %d, horizon %v)\n", *faultsPlan, *faultsSeed, *faultsHorizon)
	}
	if opts.Governor != nil {
		fmt.Printf("admission: limit=%d queue=%d quota=%g req/s (%s) brownout=%g\n",
			*admitLimit, *admitQueue, *quota, *tenants, *brownout)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dashserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Drain in-flight requests, bounded so a wedged connection cannot
	// hold shutdown hostage.
	fmt.Fprintln(os.Stderr, "dashserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dashserve: shutdown:", err)
	}

	// Final counters to stdout: the same JSON the /metrics endpoint
	// serves, collectable after the listener is gone.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(handler.MetricsSnapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "dashserve:", err)
		os.Exit(1)
	}
}
