// Command dashserve serves a DASH manifest and synthetic segments over
// real HTTP — the stand-in for the paper's Apache video server (§4.1).
//
//	dashserve -addr :8080 -video 0
//	curl localhost:8080/manifest.json
//	curl -o seg.mp4 localhost:8080/video/720p30/0
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"coalqoe/internal/dash"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	videoIdx := flag.Int("video", 0, "test video index 0..4")
	flag.Parse()

	if *videoIdx < 0 || *videoIdx >= len(dash.TestVideos) {
		fmt.Fprintln(os.Stderr, "dashserve: video index out of range")
		os.Exit(1)
	}
	video := dash.TestVideos[*videoIdx]
	manifest := dash.NewManifest(video, 24, 30, 48, 60)
	fmt.Printf("serving %q (%s, %v) with %d representations on %s\n",
		video.Title, video.Genre, video.Duration, len(manifest.Rungs), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           dash.NewServer(manifest),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "dashserve:", err)
		os.Exit(1)
	}
}
