// Command videobench runs a single controlled video-streaming
// experiment — device, client, rung, memory-pressure state — and prints
// the QoE outcome, like one cell of the paper's Figures 9/11/12.
//
// Example:
//
//	videobench -device nokia1 -res 1080p -fps 30 -pressure moderate -runs 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"coalqoe/internal/atomicio"
	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/exp"
	"coalqoe/internal/faults"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	telemetrypkg "coalqoe/internal/telemetry"
	"coalqoe/internal/trace"
)

func main() {
	var (
		deviceName = flag.String("device", "nokia1", "device: nokia1, nexus5, nexus6p")
		clientName = flag.String("client", "firefox", "client: firefox, chrome, exoplayer")
		resName    = flag.String("res", "480p", "resolution: 240p..1440p")
		fps        = flag.Int("fps", 30, "frame rate: 24, 30, 48, 60")
		pressure   = flag.String("pressure", "normal", "memory state: normal, moderate, low, critical")
		organic    = flag.Int("organic", 0, "apply organic pressure with N background apps instead")
		videoIdx   = flag.Int("video", 0, "test video index 0..4 (travel, sports, gaming, news, nature)")
		runs       = flag.Int("runs", 1, "number of repeated runs")
		seed       = flag.Int64("seed", 0, "base seed")
		timeline   = flag.Bool("timeline", false, "print the per-second rendered FPS timeline")
		debug      = flag.Bool("debug", false, "print a per-second device state trace")
		traceOut   = flag.String("trace", "", "write a Perfetto-style text trace of run 1 to this file")
		jsonOut    = flag.String("json", "", "write per-run metrics as JSON lines to this file")
		telemetry  = flag.String("telemetry", "", "sample device metrics every 3s and write per-run series (CSV+JSON) plus a chrome://tracing file for run 1 to this directory")
		faultPlan  = flag.String("faults", "", "inject a fault plan: netflaky, iostorm, memstorm, mixed")
		recover    = flag.Bool("recover", false, "enable crash recovery (restart + resume after an lmkd kill) and an 8s segment timeout with retries")
	)
	flag.Parse()

	profile, err := DeviceByName(*deviceName)
	if err != nil {
		fatal(err)
	}
	client, err := ClientByName(*clientName)
	if err != nil {
		fatal(err)
	}
	res, err := dash.ParseResolution(*resName)
	if err != nil {
		fatal(err)
	}
	level, err := LevelByName(*pressure)
	if err != nil {
		fatal(err)
	}
	if *videoIdx < 0 || *videoIdx >= len(dash.TestVideos) {
		fatal(fmt.Errorf("video index out of range"))
	}

	cfg := exp.VideoRun{
		Profile:     profile,
		Client:      client,
		Video:       dash.TestVideos[*videoIdx],
		Resolution:  res,
		FPS:         *fps,
		Pressure:    level,
		OrganicApps: *organic,
	}
	if *faultPlan != "" {
		plan, err := faults.Lookup(*faultPlan)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = &plan
	}
	if *recover {
		cfg.PlayerTweaks = func(pc *player.Config) {
			pc.SegmentTimeout = 8 * time.Second
			pc.Recovery = &player.RecoveryPolicy{}
		}
	}
	if *debug {
		debugRun(cfg, true)
		return
	}
	// Telemetry implies KeepTrace for run 1 so the chrome trace can
	// merge thread intervals with the counter tracks.
	cfg.KeepTrace = *traceOut != "" || *telemetry != ""
	if *telemetry != "" {
		cfg.Telemetry = &telemetrypkg.Config{}
	}
	results := exp.Repeat(cfg, *runs, *seed)
	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, results); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" && len(results) > 0 {
		f, err := atomicio.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := results[0].Device.Tracer.WriteText(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Commit(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s\n", *traceOut)
	}
	if *jsonOut != "" {
		f, err := atomicio.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		for _, r := range results {
			if err := enc.Encode(r.Metrics); err != nil {
				f.Close()
				fatal(err)
			}
		}
		if err := f.Commit(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d metric records to %s\n", len(results), *jsonOut)
	}
	for i, r := range results {
		fmt.Printf("run %d: %s reached=%v signals=%v\n", i+1, r.Metrics, r.PressureReached, r.Metrics.Signals)
		if *timeline {
			fmt.Print("  fps:")
			for _, f := range r.Metrics.FPSTimeline {
				fmt.Printf(" %.0f", f)
			}
			fmt.Println()
		}
	}
	if *runs > 1 {
		fmt.Printf("mean drop rate: %v%%   crash rate: %.0f%%\n",
			exp.DropStats(results), exp.CrashRate(results))
	}
}

// writeTelemetry dumps each run's sampled series as CSV and JSON, plus
// a chrome://tracing-loadable trace for run 1 that merges the thread
// intervals with the counter tracks.
func writeTelemetry(dir string, results []exp.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(path string, emit func(io.Writer) error) error {
		f, err := atomicio.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Commit()
	}
	for i, r := range results {
		if r.Telemetry == nil {
			continue
		}
		base := filepath.Join(dir, fmt.Sprintf("run%03d", i+1))
		if err := write(base+".csv", r.Telemetry.WriteCSV); err != nil {
			return err
		}
		if err := write(base+".json", r.Telemetry.WriteJSON); err != nil {
			return err
		}
	}
	if len(results) > 0 && results[0].Device != nil && results[0].Telemetry != nil {
		// Injected fault windows render as marks on the trace timeline:
		// intervals for the impairment windows, so the Perfetto view
		// shows the outage/spike that explains a stall right above it.
		var marks []trace.Mark
		for _, w := range results[0].FaultWindows {
			marks = append(marks, trace.Mark{
				Name:  "fault:" + w.Kind.String(),
				Start: w.Start,
				End:   w.End(),
			})
		}
		path := filepath.Join(dir, "run001.trace.json")
		err := write(path, func(f io.Writer) error {
			return results[0].Device.Tracer.WriteChromeTrace(f, results[0].Telemetry, marks...)
		})
		if err != nil {
			return err
		}
	}
	fmt.Printf("wrote telemetry for %d runs to %s\n", len(results), dir)
	return nil
}

// DeviceByName resolves a device profile by CLI name.
func DeviceByName(s string) (device.Profile, error) {
	switch strings.ToLower(s) {
	case "nokia1", "nokia":
		return device.Nokia1, nil
	case "nexus5":
		return device.Nexus5, nil
	case "nexus6p":
		return device.Nexus6P, nil
	default:
		return device.Profile{}, fmt.Errorf("unknown device %q", s)
	}
}

// ClientByName resolves a client profile by CLI name.
func ClientByName(s string) (player.ClientProfile, error) {
	switch strings.ToLower(s) {
	case "firefox":
		return player.Firefox, nil
	case "chrome":
		return player.Chrome, nil
	case "exoplayer", "exo":
		return player.ExoPlayer, nil
	default:
		return player.ClientProfile{}, fmt.Errorf("unknown client %q", s)
	}
}

// LevelByName resolves a pressure level by CLI name.
func LevelByName(s string) (proc.Level, error) {
	switch strings.ToLower(s) {
	case "normal":
		return proc.Normal, nil
	case "moderate":
		return proc.Moderate, nil
	case "low":
		return proc.Low, nil
	case "critical":
		return proc.Critical, nil
	default:
		return 0, fmt.Errorf("unknown pressure level %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "videobench:", err)
	os.Exit(1)
}
