package main

import (
	"fmt"
	"time"

	"coalqoe/internal/device"
	"coalqoe/internal/exp"
	"coalqoe/internal/player"
	"coalqoe/internal/trace"
)

// debugRun mirrors exp.Run but prints a per-second state trace.
func debugRun(cfg exp.VideoRun, enabled bool) {
	if !enabled {
		return
	}
	cfg.KeepDevice = true
	cfg.OnSession = func(sess *player.Session, dev *device.Device) {
		dev.Clock.Every(time.Second, func() {
			fmt.Printf("t=%3ds P=%5.1f free=%7s cached=%2d lvl=%-8s kills=%2d fg=%d zram=%s deficit=%.3f kswapdCPU=%v mmcqdCPU=%v swapins=%d refaults=%d active=%v\n",
				int(dev.Clock.Now()/time.Second), dev.Mem.Pressure(), dev.Mem.Free().Bytes(),
				dev.Table.CachedCount(), dev.Table.Level(), dev.Lmkd.KillCount, dev.Lmkd.ForegroundKills,
				dev.Mem.ZRAMPhysical().Bytes(), dev.Mem.RefaultDeficit(),
				dev.Kswapd.Thread().CPUTime().Round(time.Millisecond), dev.Disk.Thread().CPUTime().Round(time.Millisecond),
				dev.Mem.SwapIns(), dev.Mem.TotalRefaults, sess.Active())
		})
	}
	r := exp.Run(cfg)
	fmt.Println(r.Metrics)
	tr := r.Device.Tracer
	video := trace.AnyOf(trace.ByName("MediaCodec"), trace.ByName("SurfaceFlinger"), trace.ByProcess(r.Metrics.Client))
	for _, st := range []trace.State{trace.Running, trace.Runnable, trace.RunnablePreempted, trace.UninterruptibleSleep} {
		fmt.Printf("  video %-22s %v\n", st, tr.TimeInState(video, st).Round(time.Millisecond))
	}
	fmt.Printf("  kswapd breakdown: %v\n", tr.StateBreakdown(trace.ByName("kswapd")))
	ps := tr.PreemptionsBy(trace.ByName("mmcqd"), video)
	fmt.Printf("  mmcqd preemptions of video: n=%d ranFor=%v victimsWaited=%v\n", ps.Count, ps.PreemptorRanFor.Round(time.Millisecond), ps.VictimsWaitedFor.Round(time.Millisecond))
	fmt.Printf("  kswapd rank=%d mmcqd rank=%d\n", tr.RankOf("kswapd0"), tr.RankOf("mmcqd/0"))
	fmt.Printf("  disk queue=%v stats=%+v\n", r.Device.Disk.QueueDepth(), r.Device.Disk.Stats())
}
