// Command coalctl runs the paper's experiments: every figure and table
// has a registered regenerator. Independent runs (grid cells × repeats)
// fan out across a worker pool; output is byte-identical at any
// parallelism.
//
//	coalctl list
//	coalctl run fig9                 # full fidelity (5 runs, 3-minute clips)
//	coalctl -quick run tab5          # fast pass
//	coalctl -parallel 8 run fig9     # explicit worker count (0 = GOMAXPROCS)
//	coalctl -faults memstorm run tab2  # inject a fault plan into every run
//	coalctl -arena                   # ABR tournament -> leaderboard on stdout
//	coalctl -quick -arena -out results  # fast pass; also writes results/arena.txt
//	coalctl run all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"coalqoe/internal/arena"
	"coalqoe/internal/atomicio"
	"coalqoe/internal/exp"
	"coalqoe/internal/faults"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
)

func main() {
	quick := flag.Bool("quick", false, "fewer runs and shorter clips")
	seed := flag.Int64("seed", 0, "base seed")
	runs := flag.Int("runs", 0, "override repetition count")
	parallel := flag.Int("parallel", 0, "executor worker count (0 = GOMAXPROCS, 1 = serial)")
	noProgress := flag.Bool("no-progress", false, "suppress the live progress line on stderr")
	outDir := flag.String("out", "", "also write each report to <dir>/<id>.txt")
	telemetryDir := flag.String("telemetry", "", "sample device metrics every 3s and write one CSV per run to <dir>/<id>-runNNN.csv")
	faultPlan := flag.String("faults", "", "inject a fault plan into every run ("+planNames()+")")
	runArena := flag.Bool("arena", false, "run the ABR tournament and print the leaderboard")
	arenaTrace := flag.String("arena-trace", "", "with -arena: also export one instrumented run's decision trace (chrome://tracing JSON) to this file")
	flag.Parse()
	args := flag.Args()
	if *runArena {
		doArena(arena.Config{
			Quick: *quick, Seed: *seed, Runs: *runs, Parallel: *parallel,
		}, *outDir, *arenaTrace, !*noProgress)
		return
	}
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "list":
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case "run":
		if len(args) < 2 {
			usage()
		}
		opts := exp.Options{Quick: *quick, Seed: *seed, Runs: *runs, Parallel: *parallel}
		if *faultPlan != "" {
			plan, err := faults.Lookup(*faultPlan)
			if err != nil {
				fatal(err)
			}
			opts.Faults = &plan
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
		}
		if *telemetryDir != "" {
			if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
				fatal(err)
			}
			opts.Telemetry = &telemetry.Config{}
		}
		if args[1] == "all" {
			for _, e := range exp.All() {
				runOne(e, opts, *outDir, *telemetryDir, !*noProgress)
			}
			return
		}
		for _, id := range args[1:] {
			e, err := exp.Find(id)
			if err != nil {
				fatal(err)
			}
			runOne(e, opts, *outDir, *telemetryDir, !*noProgress)
		}
	default:
		usage()
	}
}

func runOne(e exp.Experiment, opts exp.Options, outDir, telemetryDir string, progress bool) {
	start := time.Now()
	totalRuns := 0
	batchTotal := 0
	if progress || telemetryDir != "" {
		opts.Progress = func(ev exp.ProgressEvent) {
			// The executor serializes progress callbacks. Track the
			// batch size — the telemetry writer below needs it — and
			// repaint one stderr status line in place.
			batchTotal = ev.Total
			if progress {
				totalRuns = ev.Total
				fmt.Fprintf(os.Stderr, "\r%-10s %d/%d runs (%d in flight, %v elapsed)\x1b[K",
					e.ID, ev.Done, ev.Total, ev.Started-ev.Done, time.Since(start).Round(time.Second))
			}
		}
	}
	if telemetryDir != "" {
		// One CSV per run, numbered by batch index: file k holds the
		// same run at any parallelism. An experiment may execute
		// several batches; they never interleave (the executor drains
		// one before the next starts), so once a batch has delivered
		// its full total the numbering shifts past it.
		offset, delivered := 0, 0
		opts.OnTelemetry = func(run int, dump *telemetry.Dump) {
			path := filepath.Join(telemetryDir, fmt.Sprintf("%s-run%03d.csv", e.ID, offset+run+1))
			f, err := atomicio.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := dump.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Commit(); err != nil {
				fatal(err)
			}
			delivered++
			if delivered == batchTotal {
				offset += batchTotal
				delivered = 0
			}
		}
	}
	rep := e.Run(opts)
	if progress {
		fmt.Fprintf(os.Stderr, "\r\x1b[K")
	}
	fmt.Print(rep)
	fmt.Printf("(%s completed in %v", e.ID, time.Since(start).Round(time.Millisecond))
	if totalRuns > 0 {
		fmt.Printf(", %d runs on %d workers", totalRuns, opts.Workers())
	}
	fmt.Print(")\n\n")
	if outDir != "" {
		path := filepath.Join(outDir, e.ID+".txt")
		if err := atomicio.WriteFile(path, []byte(rep.String()), 0o644); err != nil {
			fatal(err)
		}
	}
}

// doArena runs the ABR tournament: leaderboard to stdout, and to
// <outDir>/arena.txt when -out is set.
func doArena(cfg arena.Config, outDir, tracePath string, progress bool) {
	start := time.Now()
	if progress {
		cfg.Progress = func(ev exp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\rarena %d/%d runs (%d in flight, %v elapsed)\x1b[K",
				ev.Done, ev.Total, ev.Started-ev.Done, time.Since(start).Round(time.Second))
		}
	}
	res := arena.Run(cfg)
	if progress {
		fmt.Fprintf(os.Stderr, "\r\x1b[K")
	}
	if err := res.WriteLeaderboard(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("(arena completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
		f, err := atomicio.Create(filepath.Join(outDir, "arena.txt"))
		if err != nil {
			fatal(err)
		}
		if err := res.WriteLeaderboard(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Commit(); err != nil {
			fatal(err)
		}
	}
	if tracePath != "" {
		f, err := atomicio.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		// The showcase: the objective-optimizing entrant under the
		// paper's pressure storm, on the weakest device.
		err = arena.WriteDecisionTrace(cfg, "memopt", proc.Moderate, "memstorm", f)
		if err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Commit(); err != nil {
			fatal(err)
		}
	}
}

func planNames() string {
	names := make([]string, 0, len(faults.Plans()))
	for _, sp := range faults.Plans() {
		names = append(names, sp.Name)
	}
	return strings.Join(names, ", ")
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: coalctl [flags] list | run <id>... | run all")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coalctl:", err)
	os.Exit(1)
}
