// Command coalctl runs the paper's experiments: every figure and table
// has a registered regenerator.
//
//	coalctl list
//	coalctl run fig9            # full fidelity (5 runs, 3-minute clips)
//	coalctl run -quick tab5     # fast pass
//	coalctl run all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"coalqoe/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "fewer runs and shorter clips")
	seed := flag.Int64("seed", 0, "base seed")
	runs := flag.Int("runs", 0, "override repetition count")
	outDir := flag.String("out", "", "also write each report to <dir>/<id>.txt")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "list":
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case "run":
		if len(args) < 2 {
			usage()
		}
		opts := exp.Options{Quick: *quick, Seed: *seed, Runs: *runs}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
		}
		if args[1] == "all" {
			for _, e := range exp.All() {
				runOne(e, opts, *outDir)
			}
			return
		}
		for _, id := range args[1:] {
			e, err := exp.Find(id)
			if err != nil {
				fatal(err)
			}
			runOne(e, opts, *outDir)
		}
	default:
		usage()
	}
}

func runOne(e exp.Experiment, opts exp.Options, outDir string) {
	start := time.Now()
	rep := e.Run(opts)
	fmt.Print(rep)
	fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	if outDir != "" {
		path := filepath.Join(outDir, e.ID+".txt")
		if err := os.WriteFile(path, []byte(rep.String()), 0o644); err != nil {
			fatal(err)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: coalctl [flags] list | run <id>... | run all")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coalctl:", err)
	os.Exit(1)
}
