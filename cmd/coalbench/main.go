// Command coalbench runs the kernel benchmark suite
// (internal/kernbench) outside `go test` and emits machine-readable
// results, so performance is a recorded, diffable artifact instead of
// a number scrolled past in a terminal.
//
// Two modes:
//
//	coalbench -out BENCH.json [-baseline OLD.json]
//	    Run the suite, measure the end-to-end grid wall time, and write
//	    a JSON report. With -baseline, the old report is embedded under
//	    "baseline" so before/after travel together in one file.
//
//	coalbench -check BENCH.json [-ns-threshold F] [-alloc-threshold F]
//	    Run the suite (use -quick in CI) and compare against the
//	    committed report. Exits non-zero when any benchmark regresses
//	    past its threshold. Allocations per op are machine-independent
//	    and held to the tight threshold; ns/op varies across hosts, so
//	    its threshold is deliberately generous — it catches order-of-
//	    magnitude regressions, not percent-level drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"coalqoe/internal/atomicio"
	"coalqoe/internal/exp"
	"coalqoe/internal/kernbench"
)

// Host fingerprints the machine a report was recorded on. ns/op
// comparisons across different fingerprints are advisory only.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// Measurement is one benchmark's result.
type Measurement struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"-"`
}

// GridTiming is the headline end-to-end number: best-of-k wall time of
// one serial quick fig9 grid (min filters scheduler noise, the
// standard benchmarking practice).
type GridTiming struct {
	Experiment string `json:"experiment"`
	Samples    int    `json:"samples"`
	BestWallMS int64  `json:"best_wall_ms"`
}

// Report is the coalbench output schema (BENCH_5.json).
type Report struct {
	Schema     int           `json:"schema"`
	Host       Host          `json:"host"`
	Quick      bool          `json:"quick"`
	Benchmarks []Measurement `json:"benchmarks"`
	Grid       GridTiming    `json:"grid"`
	// Baseline embeds the pre-change report when -baseline was given,
	// so a single artifact shows before and after.
	Baseline *Report `json:"baseline,omitempty"`
}

func hostFingerprint() Host {
	return Host{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// runSuite executes every kernbench entry via testing.Benchmark.
// benchtime is applied through the testing package's own flag, which
// must be registered first (testing.Init).
func runSuite(benchtime string) []Measurement {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "coalbench: set benchtime: %v\n", err)
		os.Exit(2)
	}
	out := make([]Measurement, 0, len(kernbench.Suite))
	for _, e := range kernbench.Suite {
		fmt.Fprintf(os.Stderr, "bench %-20s ", e.Name)
		r := testing.Benchmark(e.Fn)
		m := Measurement{
			Name:        e.Name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, "%12d ns/op %10d allocs/op %12d B/op (n=%d)\n",
			m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.Iterations)
		out = append(out, m)
	}
	return out
}

// measureGrid times the serial quick fig9 grid k times and keeps the
// best. Wall clock is measured here in cmd/ — the simulator itself
// never reads it.
func measureGrid(samples int) GridTiming {
	e, err := exp.Find("fig9")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coalbench: %v\n", err)
		os.Exit(2)
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < samples; i++ {
		start := time.Now()
		rep := e.Run(exp.Options{Quick: true, Seed: 9, Parallel: 1})
		d := time.Since(start)
		if len(rep.Lines) == 0 {
			fmt.Fprintln(os.Stderr, "coalbench: fig9 produced no output")
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "grid  fig9 quick serial sample %d/%d: %v\n", i+1, samples, d.Round(time.Millisecond))
		if d < best {
			best = d
		}
	}
	return GridTiming{Experiment: "fig9", Samples: samples, BestWallMS: best.Milliseconds()}
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare holds current against committed, returning the number of
// regressions. A benchmark present in only one side is reported but
// not fatal (suites evolve).
func compare(committed *Report, current Report, nsThreshold, allocThreshold float64) int {
	byName := make(map[string]Measurement, len(committed.Benchmarks))
	for _, m := range committed.Benchmarks {
		byName[m.Name] = m
	}
	sameHost := committed.Host == current.Host
	if !sameHost {
		fmt.Fprintf(os.Stderr, "note: host differs from committed report (%+v vs %+v); ns/op thresholds are advisory\n",
			current.Host, committed.Host)
	}
	regressions := 0
	for _, cur := range current.Benchmarks {
		old, ok := byName[cur.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "new benchmark %s (no committed baseline)\n", cur.Name)
			continue
		}
		delete(byName, cur.Name)
		if old.AllocsPerOp > 0 {
			ratio := float64(cur.AllocsPerOp) / float64(old.AllocsPerOp)
			if ratio > allocThreshold {
				fmt.Fprintf(os.Stderr, "REGRESSION %s: %d allocs/op vs committed %d (%.2fx > %.2fx)\n",
					cur.Name, cur.AllocsPerOp, old.AllocsPerOp, ratio, allocThreshold)
				regressions++
			}
		} else if cur.AllocsPerOp > 2 {
			// Zero-alloc benchmarks must stay (near) zero-alloc.
			fmt.Fprintf(os.Stderr, "REGRESSION %s: %d allocs/op vs committed 0\n", cur.Name, cur.AllocsPerOp)
			regressions++
		}
		if old.NsPerOp > 0 {
			ratio := float64(cur.NsPerOp) / float64(old.NsPerOp)
			if ratio > nsThreshold {
				fmt.Fprintf(os.Stderr, "REGRESSION %s: %d ns/op vs committed %d (%.2fx > %.2fx)\n",
					cur.Name, cur.NsPerOp, old.NsPerOp, ratio, nsThreshold)
				regressions++
			}
		}
	}
	for name := range byName {
		fmt.Fprintf(os.Stderr, "benchmark %s in committed report but not in suite\n", name)
	}
	return regressions
}

func main() {
	var (
		out          = flag.String("out", "", "write a JSON report to this path")
		baselinePath = flag.String("baseline", "", "embed this prior report as the baseline section of -out")
		checkPath    = flag.String("check", "", "compare a fresh run against this committed report; exit 1 on regression")
		quick        = flag.Bool("quick", false, "short benchtime and fewer grid samples (CI)")
		benchtime    = flag.String("benchtime", "", "override go benchtime (e.g. 2s, 100x)")
		gridSamples  = flag.Int("grid-samples", 0, "grid wall-time samples (default 3, quick 1)")
		nsThreshold  = flag.Float64("ns-threshold", 2.5, "check: max allowed ns/op ratio vs committed")
		allocThresh  = flag.Float64("alloc-threshold", 1.25, "check: max allowed allocs/op ratio vs committed")
	)
	testing.Init()
	flag.Parse()

	if (*out == "") == (*checkPath == "") {
		fmt.Fprintln(os.Stderr, "coalbench: exactly one of -out or -check is required")
		flag.Usage()
		os.Exit(2)
	}

	bt := *benchtime
	if bt == "" {
		if *quick {
			bt = "0.2s"
		} else {
			bt = "1s"
		}
	}
	samples := *gridSamples
	if samples <= 0 {
		if *quick {
			samples = 1
		} else {
			samples = 3
		}
	}

	report := Report{
		Schema:     1,
		Host:       hostFingerprint(),
		Quick:      *quick,
		Benchmarks: runSuite(bt),
		Grid:       measureGrid(samples),
	}

	if *checkPath != "" {
		committed, err := readReport(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coalbench: %v\n", err)
			os.Exit(2)
		}
		if n := compare(committed, report, *nsThreshold, *allocThresh); n > 0 {
			fmt.Fprintf(os.Stderr, "coalbench: %d regression(s) against %s\n", n, *checkPath)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "coalbench: no regressions against %s\n", *checkPath)
		return
	}

	if *baselinePath != "" {
		base, err := readReport(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coalbench: %v\n", err)
			os.Exit(2)
		}
		base.Baseline = nil // never nest more than one level
		report.Baseline = base
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coalbench: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := atomicio.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "coalbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "coalbench: wrote %s\n", *out)
}
