// Command mpsim drives the memory-pressure simulator (the MP Simulator
// analog, §4.1) against a simulated device and reports how the kernel
// responds: balloon growth, kills, and signal escalation.
//
//	mpsim -device nokia1 -target critical -hold 60s
//	mpsim -target critical -json pressure.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coalqoe/internal/atomicio"
	"coalqoe/internal/device"
	"coalqoe/internal/mempress"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
)

// The JSON export records the whole pressure episode the way
// signalcapturer exports fleet records: sampled series (balloon size,
// free/available memory, pressure P, ...), the kill log, and the
// signal-escalation timeline.
type jsonReport struct {
	Device       string      `json:"device"`
	Target       string      `json:"target"`
	ReachedAtSec float64     `json:"reached_at_sec"`
	PeriodSec    float64     `json:"period_sec"`
	Series       []seriesRow `json:"series"`
	Kills        []killRow   `json:"kills"`
	Escalation   []signalRow `json:"escalation"`
}

type seriesRow struct {
	Name    string       `json:"name"`
	Samples [][2]float64 `json:"samples"` // [seconds, value]
}

type killRow struct {
	AtSec   float64 `json:"at_sec"`
	Process string  `json:"process"`
	Adj     int     `json:"adj"`
	Reason  string  `json:"reason"`
}

type signalRow struct {
	AtSec          float64 `json:"at_sec"`
	Level          string  `json:"level"`
	AvailablePages int64   `json:"available_pages"`
}

func main() {
	deviceName := flag.String("device", "nokia1", "device: nokia1, nexus5, nexus6p")
	target := flag.String("target", "moderate", "target level: moderate, low, critical")
	hold := flag.Duration("hold", 60*time.Second, "how long to hold the regime after reaching it")
	seed := flag.Int64("seed", 1, "seed")
	jsonPath := flag.String("json", "", "write balloon series, kills and escalation timeline to this file")
	flag.Parse()

	var profile device.Profile
	switch strings.ToLower(*deviceName) {
	case "nokia1":
		profile = device.Nokia1
	case "nexus5":
		profile = device.Nexus5
	case "nexus6p":
		profile = device.Nexus6P
	default:
		fatal(fmt.Errorf("unknown device %q", *deviceName))
	}
	var level proc.Level
	switch strings.ToLower(*target) {
	case "moderate":
		level = proc.Moderate
	case "low":
		level = proc.Low
	case "critical":
		level = proc.Critical
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}

	opts := device.Options{}
	if *jsonPath != "" {
		opts.Telemetry = &telemetry.Config{}
	}
	dev := device.New(*seed, profile, opts)
	dev.Settle(3 * time.Second)
	fmt.Printf("%s booted: free=%s available=%s cached=%d\n",
		dev, dev.Mem.Free().Bytes(), dev.Mem.Available().Bytes(), dev.Table.CachedCount())

	var reachedAt time.Duration
	app := mempress.Apply(dev, level, func() { reachedAt = dev.Clock.Now() })
	if dev.Telem != nil {
		dev.Telem.SampleFunc("mpsim.balloon_bytes", func() float64 {
			return float64(app.BalloonBytes())
		})
	}

	dev.Clock.Every(time.Second, func() {
		fmt.Printf("t=%3ds level=%-8s balloon=%8s free=%8s avail=%8s zram=%8s P=%5.1f kills=%d\n",
			int(dev.Clock.Now()/time.Second), dev.Table.Level(), app.BalloonBytes(),
			dev.Mem.Free().Bytes(), dev.Mem.Available().Bytes(),
			dev.Mem.ZRAMPhysical().Bytes(), dev.Mem.Pressure(), dev.Lmkd.KillCount)
	})

	deadline := dev.Clock.Now() + 5*time.Minute
	for !app.Reached() && dev.Clock.Now() < deadline {
		dev.Settle(time.Second)
	}
	if !app.Reached() {
		fatal(fmt.Errorf("never reached %v within 5 minutes", level))
	}
	fmt.Printf("reached %v at t=%v; holding for %v\n", level, reachedAt.Round(time.Second), *hold)
	dev.Settle(*hold)
	app.Stop()
	dev.Settle(5 * time.Second)
	fmt.Printf("released: level=%v free=%s kills=%d signals=%d\n",
		dev.Table.Level(), dev.Mem.Free().Bytes(), dev.Lmkd.KillCount, len(dev.Table.Signals()))

	if *jsonPath != "" {
		dev.Sampler.Sample() // edge sample at the final instant
		dump := dev.Sampler.Dump()
		rep := jsonReport{
			Device:       profile.Name,
			Target:       level.String(),
			ReachedAtSec: reachedAt.Seconds(),
			PeriodSec:    dump.Period.Seconds(),
			Kills:        []killRow{},
			Escalation:   []signalRow{},
		}
		for _, s := range dump.Series {
			row := seriesRow{Name: s.Name, Samples: make([][2]float64, len(s.Times))}
			for i, ts := range s.Times {
				row.Samples[i] = [2]float64{ts.Seconds(), s.Values[i]}
			}
			rep.Series = append(rep.Series, row)
		}
		for _, k := range dev.Table.Kills() {
			rep.Kills = append(rep.Kills, killRow{
				AtSec: k.At.Seconds(), Process: k.Process, Adj: k.Adj, Reason: k.Reason,
			})
		}
		for _, sig := range dev.Table.Signals() {
			rep.Escalation = append(rep.Escalation, signalRow{
				AtSec: sig.At.Seconds(), Level: sig.Level.String(), AvailablePages: int64(sig.Available),
			})
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := atomicio.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d series, %d kills, %d signals to %s\n",
			len(rep.Series), len(rep.Kills), len(rep.Escalation), *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpsim:", err)
	os.Exit(1)
}
