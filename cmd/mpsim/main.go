// Command mpsim drives the memory-pressure simulator (the MP Simulator
// analog, §4.1) against a simulated device and reports how the kernel
// responds: balloon growth, kills, and signal escalation.
//
//	mpsim -device nokia1 -target critical -hold 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coalqoe/internal/device"
	"coalqoe/internal/mempress"
	"coalqoe/internal/proc"
)

func main() {
	deviceName := flag.String("device", "nokia1", "device: nokia1, nexus5, nexus6p")
	target := flag.String("target", "moderate", "target level: moderate, low, critical")
	hold := flag.Duration("hold", 60*time.Second, "how long to hold the regime after reaching it")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	var profile device.Profile
	switch strings.ToLower(*deviceName) {
	case "nokia1":
		profile = device.Nokia1
	case "nexus5":
		profile = device.Nexus5
	case "nexus6p":
		profile = device.Nexus6P
	default:
		fatal(fmt.Errorf("unknown device %q", *deviceName))
	}
	var level proc.Level
	switch strings.ToLower(*target) {
	case "moderate":
		level = proc.Moderate
	case "low":
		level = proc.Low
	case "critical":
		level = proc.Critical
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}

	dev := device.New(*seed, profile, device.Options{})
	dev.Settle(3 * time.Second)
	fmt.Printf("%s booted: free=%s available=%s cached=%d\n",
		dev, dev.Mem.Free().Bytes(), dev.Mem.Available().Bytes(), dev.Table.CachedCount())

	var reachedAt time.Duration
	app := mempress.Apply(dev, level, func() { reachedAt = dev.Clock.Now() })

	dev.Clock.Every(time.Second, func() {
		fmt.Printf("t=%3ds level=%-8s balloon=%8s free=%8s avail=%8s zram=%8s P=%5.1f kills=%d\n",
			int(dev.Clock.Now()/time.Second), dev.Table.Level(), app.BalloonBytes(),
			dev.Mem.Free().Bytes(), dev.Mem.Available().Bytes(),
			dev.Mem.ZRAMPhysical().Bytes(), dev.Mem.Pressure(), dev.Lmkd.KillCount)
	})

	deadline := dev.Clock.Now() + 5*time.Minute
	for !app.Reached() && dev.Clock.Now() < deadline {
		dev.Settle(time.Second)
	}
	if !app.Reached() {
		fatal(fmt.Errorf("never reached %v within 5 minutes", level))
	}
	fmt.Printf("reached %v at t=%v; holding for %v\n", level, reachedAt.Round(time.Second), *hold)
	dev.Settle(*hold)
	app.Stop()
	dev.Settle(5 * time.Second)
	fmt.Printf("released: level=%v free=%s kills=%d signals=%d\n",
		dev.Table.Level(), dev.Mem.Free().Bytes(), dev.Lmkd.KillCount, len(dev.Table.Signals()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpsim:", err)
	os.Exit(1)
}
