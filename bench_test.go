// Package coalqoe's benchmark harness regenerates every table and
// figure of the paper. One testing.B benchmark per experiment: the
// measured wall time is the cost of reproducing that result, and the
// report itself is emitted through b.Log so
//
//	go test -bench=Figure9 -benchtime=1x -v
//
// prints the regenerated rows. Benchmarks run the quick configuration
// (fewer repetitions, shorter clips); use cmd/coalctl for
// full-fidelity runs.
package main

import (
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/exp"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
)

// benchExperiment runs one registered experiment per benchmark
// iteration, seeding from the iteration index for variety.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := e.Run(exp.Options{Quick: true, Seed: int64(i)})
		if len(rep.Lines) == 0 {
			b.Fatalf("experiment %s produced no output", id)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

// §3 user study (Figures 1–6, Table 1 study rows).

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// §4 controlled video experiments (Figures 8–12, Tables 2–3).

func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "tab2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "tab3") }

// §5 system-level analysis (Figures 13–15, Tables 4–5).

func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "tab4") }
func BenchmarkTable5(b *testing.B)   { benchExperiment(b, "tab5") }

// §6 opportunities (Figures 16–17) and Appendix B (Figures 18–19).

func BenchmarkFigure16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFigure18(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFigure19(b *testing.B) { benchExperiment(b, "fig19") }

// Extensions: the §6/§7 proposal as a working ABR, plus the DESIGN.md
// ablations.

func BenchmarkMemoryAwareABR(b *testing.B)     { benchExperiment(b, "memabr") }
func BenchmarkAblationZRAM(b *testing.B)       { benchExperiment(b, "abl-zram") }
func BenchmarkAblationMmcqd(b *testing.B)      { benchExperiment(b, "abl-mmcqd") }
func BenchmarkAblationCPU(b *testing.B)        { benchExperiment(b, "abl-cpu") }
func BenchmarkAblationAdaptOrder(b *testing.B) { benchExperiment(b, "abl-order") }

func BenchmarkLadderOptimization(b *testing.B) { benchExperiment(b, "ladder") }
func BenchmarkAblationKswapdPin(b *testing.B)  { benchExperiment(b, "abl-kswapd-pin") }

// Executor scaling: the same grid experiment pinned to one worker vs
// fanned across GOMAXPROCS. Output is byte-identical either way (see
// internal/exp/exec_test.go); only wall clock changes. Recorded numbers
// live in results/parallel-bench.txt.

func benchExperimentWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	e, err := exp.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := e.Run(exp.Options{Quick: true, Seed: int64(i), Parallel: workers})
		if len(rep.Lines) == 0 {
			b.Fatalf("experiment %s produced no output", id)
		}
	}
}

func BenchmarkFigure9Serial(b *testing.B)    { benchExperimentWorkers(b, "fig9", 1) }
func BenchmarkFigure9Parallel(b *testing.B)  { benchExperimentWorkers(b, "fig9", 0) }
func BenchmarkFigure12Serial(b *testing.B)   { benchExperimentWorkers(b, "fig12", 1) }
func BenchmarkFigure12Parallel(b *testing.B) { benchExperimentWorkers(b, "fig12", 0) }
func BenchmarkTable2Serial(b *testing.B)     { benchExperimentWorkers(b, "tab2", 1) }
func BenchmarkTable2Parallel(b *testing.B)   { benchExperimentWorkers(b, "tab2", 0) }

// Telemetry overhead: one fig9-style VideoRun with instruments absent
// (the default), wired but never sampled, and sampled at the 3s
// SignalCapturer cadence. The disabled case is the one that must stay
// free: every instrument call is a nil-receiver no-op, so the first
// two rows should be within noise of each other. Recorded numbers live
// in results/telemetry-bench.txt.

func benchVideoRun(b *testing.B, tcfg *telemetry.Config) {
	b.Helper()
	cfg := exp.VideoRun{
		Profile:    device.Nokia1,
		Video:      dash.TestVideos[0],
		Resolution: dash.R720p,
		FPS:        30,
		Pressure:   proc.Moderate,
		Telemetry:  tcfg,
	}
	cfg.Video.Duration = 60 * time.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = int64(i) + 1
		res := exp.Run(c)
		if res.Metrics.FramesRendered == 0 {
			b.Fatal("nothing rendered")
		}
	}
}

func BenchmarkRunTelemetryOff(b *testing.B) { benchVideoRun(b, nil) }
func BenchmarkRunTelemetryOn3s(b *testing.B) {
	benchVideoRun(b, &telemetry.Config{})
}
func BenchmarkRunTelemetryOn500ms(b *testing.B) {
	benchVideoRun(b, &telemetry.Config{Period: 500 * time.Millisecond})
}
