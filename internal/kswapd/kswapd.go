// Package kswapd implements the kernel swap daemon the paper identifies
// as one of the two CPU thieves under memory pressure (§2, §5).
//
// The daemon wakes when free memory falls below the low watermark and
// scans/reclaims in batches until free memory rises above the high
// watermark. Crucially, reclaim progress is coupled to the CPU
// scheduler: every batch costs CPU time on the kswapd thread, which is
// in the *fair* class — so, as the paper observes, video client threads
// "have to fairly share the CPU with the CPU-hungry thread — kswapd"
// (§5), and when kswapd cannot keep up, allocations fall through to
// direct reclaim on the allocating thread itself.
//
// The same scan mechanics are reused for direct reclaim via
// DirectReclaim, which blocks the calling thread — including, as the
// paper notes, "the foreground application's main UI thread" (§2).
package kswapd

import (
	"time"

	"coalqoe/internal/blockio"
	"coalqoe/internal/mem"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// Config tunes the daemon.
type Config struct {
	// BatchPages is the LRU scan batch size. Default 128.
	BatchPages units.Pages
	// ScanCPUPerPage is CPU cost to scan one page. Default 1.5µs.
	ScanCPUPerPage time.Duration
	// CompressCPUPerPage is extra CPU per anonymous page compressed to
	// zRAM. Default 12µs (LZ4-class on a small core).
	CompressCPUPerPage time.Duration
	// CheckInterval is the watermark poll cadence. Default 25ms.
	// Allocation paths can also Kick the daemon explicitly.
	CheckInterval time.Duration
	// PinCore gives kswapd a soft affinity to core PinCore−1 when set
	// (1-based; 0 disables) — the §7 coordinated-scheduling
	// suggestion.
	PinCore int
}

func (c *Config) applyDefaults() {
	if c.BatchPages <= 0 {
		c.BatchPages = 128
	}
	if c.ScanCPUPerPage <= 0 {
		c.ScanCPUPerPage = 1500 * time.Nanosecond
	}
	if c.CompressCPUPerPage <= 0 {
		c.CompressCPUPerPage = 15 * time.Microsecond
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 25 * time.Millisecond
	}
}

// Daemon is the kswapd model.
type Daemon struct {
	clock  *simclock.Clock
	mem    *mem.Memory
	disk   *blockio.Disk
	cfg    Config
	thread *sched.Thread
	active bool

	// Bound batch callbacks and the precomputed scan cost, created once
	// in New: the reclaim loop runs a batch every few hundred
	// microseconds of simulated time under pressure, and re-creating
	// the closures per batch made it one of the kernel's top allocation
	// sites. lastRes carries the batch outcome to finishBatch (only one
	// batch is ever in flight: the loop re-arms strictly from
	// finishBatch).
	scanCost time.Duration
	batchFn  func()
	finishFn func()
	lastRes  mem.ScanResult

	// Wakeups counts low-watermark activations.
	Wakeups int
	// BatchesRun counts scan batches executed.
	BatchesRun int

	// tmReclaimed counts pages the daemon's own batches took off the
	// LRU (direct reclaim is accounted under mem.direct_reclaims); nil
	// until Instrument.
	tmReclaimed *telemetry.Counter
}

// New creates the daemon, spawns its thread (fair class, like the real
// kswapd which shares priority with foreground threads), and starts the
// watermark poll.
func New(clock *simclock.Clock, s *sched.Scheduler, m *mem.Memory, d *blockio.Disk, cfg Config) *Daemon {
	cfg.applyDefaults()
	k := &Daemon{
		clock:  clock,
		mem:    m,
		disk:   d,
		cfg:    cfg,
		thread: s.Spawn("kswapd0", "kernel", sched.ClassFair, 0),
	}
	if cfg.PinCore > 0 {
		k.thread.SetPreferredCore(cfg.PinCore - 1)
	}
	k.scanCost = time.Duration(cfg.BatchPages) * cfg.ScanCPUPerPage
	k.batchFn = k.runBatch
	k.finishFn = k.finishBatch
	clock.Every(cfg.CheckInterval, k.Kick)
	return k
}

// Thread returns the kswapd thread (for trace queries).
func (k *Daemon) Thread() *sched.Thread { return k.thread }

// Instrument registers the daemon's telemetry: wakeups and batches as
// sampled cumulative series, pages reclaimed by kswapd itself as a
// counter, and whether a reclaim loop is in flight.
func (k *Daemon) Instrument(reg *telemetry.Registry) {
	k.tmReclaimed = reg.Counter("kswapd.pages_reclaimed")
	reg.SampleFunc("kswapd.wakeups", func() float64 { return float64(k.Wakeups) })
	reg.SampleFunc("kswapd.batches", func() float64 { return float64(k.BatchesRun) })
	reg.SampleFunc("kswapd.active", func() float64 {
		if k.active {
			return 1
		}
		return 0
	})
}

// Active reports whether a reclaim loop is in flight.
func (k *Daemon) Active() bool { return k.active }

// Kick checks the watermarks and starts the reclaim loop if needed.
// Allocation paths call this on watermark breach; it also runs on the
// poll timer.
func (k *Daemon) Kick() {
	if k.active || !k.mem.BelowLow() {
		return
	}
	k.active = true
	k.Wakeups++
	k.loop()
}

// loop runs one scan batch on the kswapd thread, then re-arms until the
// high watermark is restored. CPU time is charged before the batch
// (scan cost) and after (compression cost), so reclaim throughput is
// limited by the CPU share kswapd actually gets.
func (k *Daemon) loop() {
	k.thread.Enqueue(k.scanCost, k.batchFn)
}

// runBatch executes one scan batch once the scan CPU has been paid.
func (k *Daemon) runBatch() {
	res := k.mem.ScanBatch(k.cfg.BatchPages)
	k.BatchesRun++
	k.tmReclaimed.Add(int64(res.Reclaimed()))
	if res.DirtyQueued > 0 {
		dirty := res.DirtyQueued
		k.disk.Write(dirty, func() { k.mem.CompleteWriteback(dirty) })
	}
	k.lastRes = res
	if res.AnonCompressed > 0 {
		k.thread.Enqueue(time.Duration(res.AnonCompressed)*k.cfg.CompressCPUPerPage, k.finishFn)
	} else {
		k.finishBatch()
	}
}

// finishBatch decides whether the reclaim loop re-arms or goes back to
// sleep, after any compression CPU for the last batch was paid.
func (k *Daemon) finishBatch() {
	if k.mem.AboveHigh() || (k.lastRes.Reclaimed() == 0 && k.lastRes.Scanned == 0) {
		k.active = false
		return
	}
	k.loop()
}

// DirectReclaim performs synchronous reclaim of need pages on the
// calling thread th: the kernel blocks the allocation "until it can
// free up the memory requested" (§2). The thread pays scan/compression
// CPU and waits in uninterruptible sleep for any writeback the reclaim
// has to flush. onDone fires with the pages actually freed once enough
// progress was made (or reclaim stalls with nothing reclaimable).
func DirectReclaim(clock *simclock.Clock, th *sched.Thread, m *mem.Memory, d *blockio.Disk, cfg Config, need units.Pages, onDone func(freed units.Pages)) {
	cfg.applyDefaults()
	var freed units.Pages
	attempts := 0
	var step func()
	step = func() {
		if freed >= need || attempts > 64 {
			onDone(freed)
			return
		}
		attempts++
		scanCost := time.Duration(cfg.BatchPages) * cfg.ScanCPUPerPage
		th.Enqueue(scanCost, func() {
			res := m.ScanBatch(cfg.BatchPages)
			freed += res.FreedNow
			cont := step
			if res.DirtyQueued > 0 {
				// The allocator must wait for the flush: this is the
				// extra I/O wait in "any thread, including the
				// foreground application's main UI thread" (§2).
				dirty := res.DirtyQueued
				barrier := th.EnqueueIOBarrier()
				d.Write(dirty, func() {
					m.CompleteWriteback(dirty)
					freed += dirty
					barrier()
				})
			}
			if res.AnonCompressed > 0 {
				th.Enqueue(time.Duration(res.AnonCompressed)*cfg.CompressCPUPerPage, cont)
			} else if res.Reclaimed() == 0 && res.Scanned > 0 && m.Free() == 0 {
				// Nothing reclaimable at all: give up (lmkd's job now).
				onDone(freed)
			} else {
				th.Enqueue(0, cont)
			}
		})
	}
	step()
}
