package kswapd

import (
	"testing"
	"time"

	"coalqoe/internal/blockio"
	"coalqoe/internal/mem"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/trace"
	"coalqoe/internal/units"
)

type env struct {
	clock *simclock.Clock
	sch   *sched.Scheduler
	tr    *trace.Tracer
	mem   *mem.Memory
	disk  *blockio.Disk
	kswd  *Daemon
}

func setup(t *testing.T, total units.Bytes) *env {
	t.Helper()
	clock := simclock.New(1)
	tr := trace.New(0)
	s := sched.New(clock, sched.Config{CoreSpeeds: []float64{1, 1}, Tracer: tr})
	m := mem.New(clock, mem.Config{
		Total:         total,
		KernelReserve: 100 * units.MiB,
		ZRAMMax:       total / 4,
		ZRAMRatio:     2.8,
	})
	d := blockio.New(clock, s, blockio.Config{})
	k := New(clock, s, m, d, Config{})
	return &env{clock: clock, sch: s, tr: tr, mem: m, disk: d, kswd: k}
}

func TestWakesBelowLowWatermark(t *testing.T) {
	e := setup(t, units.GiB)
	// Fill file cache, then allocate anon down past the low watermark.
	e.mem.FileRead(units.PagesOf(500 * units.MiB))
	_, low, _ := e.mem.Watermarks()
	e.mem.AllocAnon(e.mem.Free() - low + 100)
	if !e.mem.BelowLow() {
		t.Fatal("setup: not below low watermark")
	}
	e.clock.RunUntil(2 * time.Second)
	if e.kswd.Wakeups == 0 {
		t.Fatal("kswapd never woke")
	}
	if !e.mem.AboveHigh() {
		t.Errorf("free=%d still below high after 2s of reclaim; batches=%d",
			e.mem.Free(), e.kswd.BatchesRun)
	}
	if e.kswd.Active() {
		t.Error("daemon still active after restoring watermark")
	}
}

func TestIdleAboveWatermark(t *testing.T) {
	e := setup(t, units.GiB)
	e.clock.RunUntil(time.Second)
	if e.kswd.Wakeups != 0 {
		t.Errorf("kswapd woke %d times with plenty of free memory", e.kswd.Wakeups)
	}
	e.tr.Finish(e.clock.Now())
	if run := e.tr.TimeInState(trace.ByName("kswapd"), trace.Running); run != 0 {
		t.Errorf("kswapd ran %v while idle", run)
	}
}

func TestDirtyReclaimFlushesToDisk(t *testing.T) {
	e := setup(t, units.GiB)
	e.mem.FileRead(units.PagesOf(600 * units.MiB))
	e.mem.MarkDirty(units.PagesOf(600 * units.MiB))
	_, low, _ := e.mem.Watermarks()
	e.mem.AllocAnon(e.mem.Free() - low + 100)
	e.clock.RunUntil(5 * time.Second)
	if e.disk.Stats().WriteRequests == 0 {
		t.Error("reclaiming dirty pages issued no disk writes")
	}
	if e.mem.UnderWriteback() > 0 && e.disk.QueueDepth() == 0 {
		t.Error("writeback pages stranded with idle disk")
	}
}

func TestKswapdConsumesCPUUnderPressure(t *testing.T) {
	e := setup(t, units.GiB)
	// Hot working set makes reclaim inefficient: kswapd has to scan a
	// lot for each reclaimed page and burns CPU (Figure 13's story).
	e.mem.FileRead(units.PagesOf(500 * units.MiB))
	e.mem.SetWorkingSet("apps", mem.WorkingSet{File: units.PagesOf(480 * units.MiB)})
	_, low, _ := e.mem.Watermarks()
	e.mem.AllocAnon(e.mem.Free() - low + 50)
	maxP := 0.0
	e.clock.Every(20*time.Millisecond, func() {
		if p := e.mem.Pressure(); p > maxP {
			maxP = p
		}
	})
	e.clock.RunUntil(3 * time.Second)
	if cpu := e.kswd.Thread().CPUTime(); cpu < 10*time.Millisecond {
		t.Errorf("kswapd CPU = %v under sustained pressure, want >10ms", cpu)
	}
	if maxP < 30 {
		t.Errorf("peak pressure = %v with a hot working set, want elevated", maxP)
	}
}

func TestDirectReclaimFreesPages(t *testing.T) {
	e := setup(t, units.GiB)
	e.mem.FileRead(units.PagesOf(500 * units.MiB))
	app := e.sch.Spawn("main", "app", sched.ClassFair, 0)
	var freed units.Pages
	done := false
	DirectReclaim(e.clock, app, e.mem, e.disk, Config{}, 1000, func(f units.Pages) {
		freed = f
		done = true
	})
	e.clock.RunUntil(time.Second)
	if !done {
		t.Fatal("direct reclaim never completed")
	}
	if freed < 1000 {
		t.Errorf("freed %d pages, want >= 1000", freed)
	}
}

func TestDirectReclaimBlocksOnWriteback(t *testing.T) {
	e := setup(t, units.GiB)
	e.mem.FileRead(units.PagesOf(400 * units.MiB))
	e.mem.MarkDirty(units.PagesOf(400 * units.MiB))
	app := e.sch.Spawn("main", "app", sched.ClassFair, 0)
	done := false
	DirectReclaim(e.clock, app, e.mem, e.disk, Config{}, 500, func(units.Pages) { done = true })
	e.clock.RunUntil(5 * time.Second)
	e.tr.Finish(e.clock.Now())
	if !done {
		t.Fatal("direct reclaim never completed")
	}
	if d := e.tr.TimeInState(trace.ByProcess("app"), trace.UninterruptibleSleep); d == 0 {
		t.Error("direct reclaim of dirty pages should block the caller in D state")
	}
}

func TestDirectReclaimGivesUpEventually(t *testing.T) {
	clock := simclock.New(1)
	tr := trace.New(0)
	s := sched.New(clock, sched.Config{CoreSpeeds: []float64{1}, Tracer: tr})
	// No zRAM: anon is unreclaimable; no file cache at all.
	m := mem.New(clock, mem.Config{Total: 256 * units.MiB, KernelReserve: 32 * units.MiB})
	d := blockio.New(clock, s, blockio.Config{})
	m.AllocAnon(m.Free()) // all anon, nothing reclaimable
	app := s.Spawn("main", "app", sched.ClassFair, 0)
	done := false
	var freed units.Pages
	DirectReclaim(clock, app, m, d, Config{}, 10000, func(f units.Pages) { done, freed = true, f })
	clock.RunUntil(10 * time.Second)
	if !done {
		t.Fatal("direct reclaim spun forever with nothing reclaimable")
	}
	if freed >= 10000 {
		t.Errorf("freed %d from an unreclaimable heap", freed)
	}
}

func TestReclaimProgressSlowsWithCPUContention(t *testing.T) {
	// With CPU hogs competing, kswapd restores the watermark more
	// slowly than on an idle system.
	restoreTime := func(hogs int) time.Duration {
		clock := simclock.New(1)
		tr := trace.New(0)
		s := sched.New(clock, sched.Config{CoreSpeeds: []float64{1}, Tracer: tr})
		m := mem.New(clock, mem.Config{Total: units.GiB, KernelReserve: 100 * units.MiB, ZRAMMax: 256 * units.MiB})
		d := blockio.New(clock, s, blockio.Config{})
		New(clock, s, m, d, Config{})
		for i := 0; i < hogs; i++ {
			h := s.Spawn("hog", "hog", sched.ClassFair, 0)
			h.Enqueue(time.Hour, nil)
		}
		m.FileRead(units.PagesOf(600 * units.MiB))
		_, low, _ := m.Watermarks()
		m.AllocAnon(m.Free() - low + 100)
		for step := time.Duration(0); step < 30*time.Second; step += 100 * time.Millisecond {
			clock.RunUntil(step)
			if m.AboveHigh() {
				return step
			}
		}
		return 30 * time.Second
	}
	idle := restoreTime(0)
	contended := restoreTime(3)
	if contended <= idle {
		t.Errorf("contended restore (%v) should be slower than idle (%v)", contended, idle)
	}
}
