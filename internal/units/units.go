// Package units provides byte-size, page, and rate units shared by the
// simulator packages.
//
// The memory model works in 4 KiB pages, matching the Android/Linux page
// size the paper describes (§2: "Typically, a page is 4 KB of memory").
// All conversions between bytes and pages live here so that rounding is
// consistent across packages.
package units

import "fmt"

// Bytes is a byte count. It is a distinct type so that byte quantities
// are not confused with page counts in function signatures.
type Bytes int64

// Common byte sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// PageSize is the size of one physical memory page.
const PageSize = 4 * KiB

// Pages is a count of 4 KiB physical pages.
type Pages int64

// PagesOf returns the number of pages needed to hold b bytes, rounding up.
func PagesOf(b Bytes) Pages {
	if b <= 0 {
		return 0
	}
	return Pages((b + PageSize - 1) / PageSize)
}

// Bytes returns the byte size of p pages.
func (p Pages) Bytes() Bytes { return Bytes(p) * PageSize }

// MiB returns the size of p pages in mebibytes as a float.
func (p Pages) MiB() float64 { return float64(p.Bytes()) / float64(MiB) }

// String renders a byte count in a human-friendly unit.
func (b Bytes) String() string {
	switch {
	case b >= GiB && b%GiB == 0:
		return fmt.Sprintf("%dGiB", b/GiB)
	case b >= GiB:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GiB))
	case b >= MiB && b%MiB == 0:
		return fmt.Sprintf("%dMiB", b/MiB)
	case b >= MiB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.1fKiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// MiBf returns the byte count as a float number of mebibytes.
func (b Bytes) MiBf() float64 { return float64(b) / float64(MiB) }

// BitsPerSecond is a network or disk throughput rate.
type BitsPerSecond float64

// Common rates.
const (
	Kbps BitsPerSecond = 1e3
	Mbps BitsPerSecond = 1e6
	Gbps BitsPerSecond = 1e9
)

// BytesPerSecond converts a bit rate to a byte rate.
func (r BitsPerSecond) BytesPerSecond() float64 { return float64(r) / 8 }

// String renders a rate in a human-friendly unit.
func (r BitsPerSecond) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.1fKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%.0fbps", float64(r))
	}
}
