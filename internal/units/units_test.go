package units

import (
	"testing"
	"testing/quick"
)

func TestPagesOf(t *testing.T) {
	cases := []struct {
		in   Bytes
		want Pages
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{PageSize, 1},
		{PageSize + 1, 2},
		{2 * PageSize, 2},
		{MiB, 256},
		{GiB, 256 * 1024},
	}
	for _, c := range cases {
		if got := PagesOf(c.in); got != c.want {
			t.Errorf("PagesOf(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPagesBytesRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		p := Pages(n)
		return PagesOf(p.Bytes()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesOfNeverUnderAllocates(t *testing.T) {
	f := func(n uint32) bool {
		b := Bytes(n)
		return PagesOf(b).Bytes() >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesOfTight(t *testing.T) {
	// Never over-allocates by a full page.
	f := func(n uint32) bool {
		b := Bytes(n)
		if b == 0 {
			return PagesOf(b) == 0
		}
		return PagesOf(b).Bytes()-b < PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{2 * KiB, "2.0KiB"},
		{3 * MiB, "3MiB"},
		{GiB, "1GiB"},
		{GiB + 512*MiB, "1.50GiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   BitsPerSecond
		want string
	}{
		{500, "500bps"},
		{8 * Kbps, "8.0Kbps"},
		{5 * Mbps, "5.00Mbps"},
		{2 * Gbps, "2.00Gbps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestBytesPerSecond(t *testing.T) {
	if got := (8 * Mbps).BytesPerSecond(); got != 1e6 {
		t.Errorf("8Mbps = %v B/s, want 1e6", got)
	}
}

func TestPagesMiB(t *testing.T) {
	if got := Pages(256).MiB(); got != 1.0 {
		t.Errorf("256 pages = %v MiB, want 1", got)
	}
}
