// Package vettest is coalvet's analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads fixture
// packages from a testdata tree, runs one analyzer over them through
// the same Check path as the real driver (so //coalvet:allow
// suppression behaves identically), and compares the diagnostics
// against `// want` expectations embedded in the fixtures.
//
// Expectation syntax, on the offending line:
//
//	foo() // want "regexp" "another regexp"
//
// Because a line can hold only one comment, findings whose subject is
// itself a comment (directivecheck's) use an offset form on an
// adjacent line:
//
//	// want+1 "unknown coalvet directive"
//	//coalvet:ignore wallclock
//
// Fixture packages live under <root>/<import path>/. Imports are
// resolved first against the fixture tree (so fixtures can fake
// coalqoe/internal/units and friends), then against the real build's
// export data via `go list -export`, which works offline from the
// local build cache.
//
// Interprocedural analyzers (Analyzer.Facts) get the same fact chain
// the real driver provides: every local fixture dependency is run in
// fact-only mode, in dependency order, and the accumulated facts are
// handed to the package under test — so a fixture can assert that a
// seed-sink fact exported by one package triggers a diagnostic in
// another, exactly as `go vet -vettool` composes vetx files.
package vettest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"coalqoe/internal/coalvet/analysis"
	"coalqoe/internal/coalvet/unitchecker"
)

// Run loads each fixture package below root and checks the analyzer's
// diagnostics against the fixtures' want expectations. root is
// relative to the test's working directory (conventionally
// "testdata/src").
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatalf("vettest: %v", err)
	}
	ld := newLoader(absRoot)
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("vettest: loading %s: %v", path, err)
		}
		diags, _ := unitchecker.Check(ld.fset, pkg.files, pkg.pkg, pkg.info,
			[]*analysis.Analyzer{a}, ld.depFacts(a, path))
		checkWants(t, ld.fset, path, pkg.files, diags)
	}
}

// DepFacts exposes the fixture fact chain for direct tests of the
// fact-export path: it loads path and returns the facts its local
// dependencies exported for analyzer a, keyed by package path.
func DepFacts(t *testing.T, root string, a *analysis.Analyzer, path string) map[string]analysis.PackageFacts {
	t.Helper()
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatalf("vettest: %v", err)
	}
	ld := newLoader(absRoot)
	if _, err := ld.load(path); err != nil {
		t.Fatalf("vettest: loading %s: %v", path, err)
	}
	return ld.depFacts(a, path)
}

// checkWants matches diagnostics against want expectations.
func checkWants(t *testing.T, fset *token.FileSet, pkgPath string, files []*ast.File, diags []analysis.NamedDiagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[key][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, w := range parseWants(t, c.Text) {
					p := fset.Position(c.Pos())
					k := key{p.Filename, p.Line + w.offset}
					wants[k] = append(wants[k], &want{re: w.re, raw: w.raw})
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", p, d.Analyzer, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none (package %s)", k.file, k.line, w.raw, pkgPath)
			}
		}
	}
}

type parsedWant struct {
	offset int
	re     *regexp.Regexp
	raw    string
}

var wantRe = regexp.MustCompile(`// want([+-][0-9]+)?((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
var wantStrRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants extracts expectations from one comment's text.
func parseWants(t *testing.T, text string) []parsedWant {
	t.Helper()
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		if strings.Contains(text, "// want ") {
			t.Fatalf("vettest: malformed want comment: %s", text)
		}
		return nil
	}
	offset := 0
	if m[1] != "" {
		offset, _ = strconv.Atoi(m[1])
	}
	var out []parsedWant
	for _, q := range wantStrRe.FindAllString(m[2], -1) {
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("vettest: bad want string %s: %v", q, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("vettest: bad want regexp %q: %v", s, err)
		}
		out = append(out, parsedWant{offset: offset, re: re, raw: s})
	}
	return out
}

// ---- fixture loading ----

type loadedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	root    string
	fset    *token.FileSet
	local   map[string]*loadedPkg
	order   []string          // local packages in dependency-complete order
	exports map[string]string // external package path -> export data file
	gcImp   types.ImporterFrom
}

// depFacts runs the analyzer in fact-only mode over every loaded
// local package except the one under test, in dependency order, and
// returns the accumulated fact store — the fixture-tree analogue of
// cmd/go threading vetx files through import order.
func (ld *loader) depFacts(a *analysis.Analyzer, exclude string) map[string]analysis.PackageFacts {
	store := make(map[string]analysis.PackageFacts)
	if !a.Facts {
		return store
	}
	for _, path := range ld.order {
		if path == exclude {
			continue
		}
		lp := ld.local[path]
		_, own := unitchecker.Check(ld.fset, lp.files, lp.pkg, lp.info,
			[]*analysis.Analyzer{a}, store)
		if len(own) > 0 {
			store[path] = own
		}
	}
	return store
}

func newLoader(root string) *loader {
	ld := &loader{
		root:    root,
		fset:    token.NewFileSet(),
		local:   make(map[string]*loadedPkg),
		exports: make(map[string]string),
	}
	ld.gcImp = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)
	return ld
}

func (ld *loader) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// load parses and typechecks the fixture package at the given import
// path, resolving its external imports via `go list -export` first.
func (ld *loader) load(path string) (*loadedPkg, error) {
	if err := ld.ensureExports(path, make(map[string]bool)); err != nil {
		return nil, err
	}
	return ld.loadLocal(path)
}

// ensureExports pre-scans the local import graph from path and fetches
// export data for every external package it needs, in one go list run.
func (ld *loader) ensureExports(path string, seen map[string]bool) error {
	externals := make(map[string]bool)
	if err := ld.scanImports(path, seen, externals); err != nil {
		return err
	}
	var missing []string
	for p := range externals {
		if _, ok := ld.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return ld.goListExport(missing)
}

func (ld *loader) scanImports(path string, seen, externals map[string]bool) error {
	if seen[path] {
		return nil
	}
	seen[path] = true
	files, err := ld.pkgFiles(path)
	if err != nil {
		return err
	}
	for _, name := range files {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			if ld.isLocal(ip) {
				if err := ld.scanImports(ip, seen, externals); err != nil {
					return err
				}
			} else {
				externals[ip] = true
			}
		}
	}
	return nil
}

func (ld *loader) pkgFiles(path string) ([]string, error) {
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, nil
}

// goListExport resolves the named packages (and their dependencies) to
// export-data files using the go command's build cache.
func (ld *loader) goListExport(pkgs []string) error {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Standard"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %v", strings.Join(args, " "), err)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

func (ld *loader) loadLocal(path string) (*loadedPkg, error) {
	if pkg, ok := ld.local[path]; ok {
		return pkg, nil
	}
	names, err := ld.pkgFiles(path)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if ld.isLocal(ip) {
				sub, err := ld.loadLocal(ip)
				if err != nil {
					return nil, err
				}
				return sub.pkg, nil
			}
			return ld.gcImp.Import(ip)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{files: files, pkg: pkg, info: info}
	ld.local[path] = lp
	// Imports load recursively through the importer above, so by the
	// time a package lands here all its local dependencies are already
	// in order — the property depFacts relies on.
	ld.order = append(ld.order, path)
	return lp, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
