// Package directive parses //coalvet:allow suppression directives and
// builds the per-file suppression index the coalvet driver consults
// before emitting a diagnostic.
//
// Grammar (one directive per comment line):
//
//	//coalvet:allow <analyzer> <reason...>
//
// The analyzer must be one of the registered invariant names and the
// reason must be a non-empty justification — reason-less suppressions
// are rejected so every exemption in the tree documents why it is
// safe. A directive suppresses matching diagnostics on its own line
// (trailing form) and on the line directly below it (preceding form).
package directive

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Prefix introduces every coalvet directive comment.
const Prefix = "//coalvet:"

// Targets lists the analyzer names a directive may suppress.
// directivecheck itself is deliberately absent: directive syntax
// errors cannot be suppressed.
var Targets = []string{"globalrand", "maporder", "resultretain", "unitmix", "wallclock"}

// IsTarget reports whether name is a suppressible analyzer.
func IsTarget(name string) bool {
	for _, t := range Targets {
		if t == name {
			return true
		}
	}
	return false
}

// A Directive is one parsed //coalvet:allow comment.
type Directive struct {
	Analyzer string // which invariant is being waived
	Reason   string // the justification, verbatim
}

// ErrNotDirective is returned by Parse for comments that are not
// coalvet directives at all (callers should skip these silently).
var ErrNotDirective = fmt.Errorf("not a coalvet directive")

// minReasonLen guards against placeholder justifications like "x".
const minReasonLen = 3

// Parse interprets one comment's text. Comments without the
// //coalvet: prefix yield ErrNotDirective; malformed directives yield
// a descriptive error suitable for a diagnostic.
func Parse(text string) (Directive, error) {
	if !strings.HasPrefix(text, Prefix) {
		return Directive{}, ErrNotDirective
	}
	rest := text[len(Prefix):]
	verb := rest
	var args string
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, args = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if verb != "allow" {
		return Directive{}, fmt.Errorf("unknown coalvet directive %q (only %sallow is recognized)", Prefix+verb, Prefix)
	}
	name := args
	var reason string
	if i := strings.IndexAny(args, " \t"); i >= 0 {
		name, reason = args[:i], strings.TrimSpace(args[i+1:])
	}
	if name == "" {
		return Directive{}, fmt.Errorf("%sallow needs an analyzer name and a reason", Prefix)
	}
	if !IsTarget(name) {
		return Directive{}, fmt.Errorf("%sallow names unknown analyzer %q (known: %s)", Prefix, name, strings.Join(Targets, ", "))
	}
	if len(reason) < minReasonLen {
		return Directive{}, fmt.Errorf("%sallow %s needs a justification (why is this use deterministic/safe?)", Prefix, name)
	}
	return Directive{Analyzer: name, Reason: reason}, nil
}

// An Index records, per file and line, which analyzers are suppressed.
type Index struct {
	fset *token.FileSet
	// byFile maps filename -> line -> set of analyzer names.
	byFile map[string]map[int]map[string]bool
}

// NewIndex scans the comments of files and builds the suppression
// index from every well-formed directive. Malformed directives are
// ignored here (they never suppress); the directivecheck analyzer
// reports them.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{fset: fset, byFile: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, err := Parse(c.Text)
				if err != nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.byFile[pos.Filename] = lines
				}
				end := fset.Position(c.End()).Line
				// Trailing form covers the directive's own line;
				// preceding form covers the line below the comment.
				for _, line := range []int{pos.Line, end + 1} {
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					set[d.Analyzer] = true
				}
			}
		}
	}
	return idx
}

// Allows reports whether a diagnostic from the named analyzer at pos
// is suppressed by a directive.
func (idx *Index) Allows(analyzer string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	lines, ok := idx.byFile[p.Filename]
	if !ok {
		return false
	}
	return lines[p.Line][analyzer]
}

// TargetsString returns the known analyzer names joined for help text,
// in sorted order.
func TargetsString() string {
	ts := append([]string(nil), Targets...)
	sort.Strings(ts)
	return strings.Join(ts, ", ")
}
