// Package directive parses //coalvet:allow suppression directives and
// builds the per-file suppression index the coalvet driver consults
// before emitting a diagnostic.
//
// Grammar (one directive per comment line):
//
//	//coalvet:allow <analyzer> <reason...>
//
// The analyzer must be one of the registered invariant names and the
// reason must be a non-empty justification — reason-less suppressions
// are rejected so every exemption in the tree documents why it is
// safe. A directive suppresses matching diagnostics on its own line
// (trailing form) and on the line directly below it (preceding form).
package directive

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Prefix introduces every coalvet directive comment.
const Prefix = "//coalvet:"

// Targets lists the analyzer names a directive may suppress.
// directivecheck itself is deliberately absent: directive syntax
// errors cannot be suppressed.
var Targets = []string{
	"atomiccounter", "atomicwrite", "floatfold", "globalrand", "goroutinebound",
	"maporder", "resultretain", "seedlane", "unitmix", "wallclock",
}

// IsTarget reports whether name is a suppressible analyzer.
func IsTarget(name string) bool {
	for _, t := range Targets {
		if t == name {
			return true
		}
	}
	return false
}

// A Directive is one parsed //coalvet:allow comment.
type Directive struct {
	Analyzer string // which invariant is being waived
	Reason   string // the justification, verbatim
}

// ErrNotDirective is returned by Parse for comments that are not
// coalvet directives at all (callers should skip these silently).
var ErrNotDirective = fmt.Errorf("not a coalvet directive")

// minReasonLen guards against placeholder justifications like "x".
const minReasonLen = 3

// Parse interprets one comment's text. Comments without the
// //coalvet: prefix yield ErrNotDirective; malformed directives yield
// a descriptive error suitable for a diagnostic.
func Parse(text string) (Directive, error) {
	if !strings.HasPrefix(text, Prefix) {
		return Directive{}, ErrNotDirective
	}
	rest := text[len(Prefix):]
	verb := rest
	var args string
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, args = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if verb != "allow" {
		return Directive{}, fmt.Errorf("unknown coalvet directive %q (only %sallow is recognized)", Prefix+verb, Prefix)
	}
	name := args
	var reason string
	if i := strings.IndexAny(args, " \t"); i >= 0 {
		name, reason = args[:i], strings.TrimSpace(args[i+1:])
	}
	if name == "" {
		return Directive{}, fmt.Errorf("%sallow needs an analyzer name and a reason", Prefix)
	}
	if !IsTarget(name) {
		return Directive{}, fmt.Errorf("%sallow names unknown analyzer %q (known: %s)", Prefix, name, strings.Join(Targets, ", "))
	}
	if len(reason) < minReasonLen {
		return Directive{}, fmt.Errorf("%sallow %s needs a justification (why is this use deterministic/safe?)", Prefix, name)
	}
	return Directive{Analyzer: name, Reason: reason}, nil
}

// An entry is one directive occurrence in the index, shared between
// the lines it covers so a hit on either marks it used.
type entry struct {
	d    Directive
	pos  token.Pos
	used bool
}

// An Index records, per file and line, which analyzers are suppressed.
type Index struct {
	fset *token.FileSet
	// byFile maps filename -> line -> analyzer name -> directive.
	byFile map[string]map[int]map[string]*entry
	// all holds every directive in scan order, for the stale sweep.
	all []*entry
}

// NewIndex scans the comments of files and builds the suppression
// index from every well-formed directive. Malformed directives are
// ignored here (they never suppress); the directivecheck analyzer
// reports them.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{fset: fset, byFile: make(map[string]map[int]map[string]*entry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, err := Parse(c.Text)
				if err != nil {
					continue
				}
				e := &entry{d: d, pos: c.Pos()}
				idx.all = append(idx.all, e)
				pos := fset.Position(c.Pos())
				lines := idx.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]*entry)
					idx.byFile[pos.Filename] = lines
				}
				end := fset.Position(c.End()).Line
				// Trailing form covers the directive's own line;
				// preceding form covers the line below the comment.
				for _, line := range []int{pos.Line, end + 1} {
					set := lines[line]
					if set == nil {
						set = make(map[string]*entry)
						lines[line] = set
					}
					set[d.Analyzer] = e
				}
			}
		}
	}
	return idx
}

// Allows reports whether a diagnostic from the named analyzer at pos
// is suppressed by a directive, marking the directive as used — the
// bookkeeping behind stale-directive detection.
func (idx *Index) Allows(analyzer string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	lines, ok := idx.byFile[p.Filename]
	if !ok {
		return false
	}
	e := lines[p.Line][analyzer]
	if e == nil {
		return false
	}
	e.used = true
	return true
}

// A Stale is one directive that suppressed nothing in a run where its
// target analyzer executed — dead weight that reads like a live
// exemption.
type Stale struct {
	Pos      token.Pos
	Analyzer string
	Reason   string
}

// StaleDirectives returns, in scan order, the directives whose target
// analyzer is in ran but which no diagnostic hit. Directives in
// _test.go files are exempt: most analyzers skip test files, so their
// directives there can never be "used" (they exist as documentation
// and fixture material).
func (idx *Index) StaleDirectives(ran map[string]bool) []Stale {
	var out []Stale
	for _, e := range idx.all {
		if e.used || !ran[e.d.Analyzer] {
			continue
		}
		if f := idx.fset.File(e.pos); f != nil && strings.HasSuffix(f.Name(), "_test.go") {
			continue
		}
		out = append(out, Stale{Pos: e.pos, Analyzer: e.d.Analyzer, Reason: e.d.Reason})
	}
	return out
}

// TargetsString returns the known analyzer names joined for help text,
// in sorted order.
func TargetsString() string {
	ts := append([]string(nil), Targets...)
	sort.Strings(ts)
	return strings.Join(ts, ", ")
}
