package directive

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseWellFormed(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		reason   string
	}{
		{"//coalvet:allow wallclock HTTP handler measures real transfer time", "wallclock", "HTTP handler measures real transfer time"},
		{"//coalvet:allow maporder integer sum over map values, order-insensitive", "maporder", "integer sum over map values, order-insensitive"},
		{"//coalvet:allow globalrand   seeded upstream   ", "globalrand", "seeded upstream"},
		{"//coalvet:allow resultretain gated by KeepDevice at runtime", "resultretain", "gated by KeepDevice at runtime"},
		{"//coalvet:allow unitmix protocol-mandated magic number", "unitmix", "protocol-mandated magic number"},
	}
	for _, c := range cases {
		d, err := Parse(c.text)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", c.text, err)
			continue
		}
		if d.Analyzer != c.analyzer || d.Reason != c.reason {
			t.Errorf("Parse(%q) = %+v, want analyzer %q reason %q", c.text, d, c.analyzer, c.reason)
		}
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []struct {
		text    string
		wantErr string // substring of the error; "" means ErrNotDirective
	}{
		// Not directives at all: skipped silently.
		{"// plain comment", ""},
		{"// coalvet:allow wallclock spaced-out prefix is not a directive", ""},
		{"//nolint:gocritic", ""},

		// Wrong verb.
		{"//coalvet:ignore wallclock because", "unknown coalvet directive"},
		{"//coalvet:allowwallclock smashed together", "unknown coalvet directive"},
		{"//coalvet:", "unknown coalvet directive"},

		// Missing pieces.
		{"//coalvet:allow", "needs an analyzer name"},
		{"//coalvet:allow   ", "needs an analyzer name"},

		// Unknown analyzer.
		{"//coalvet:allow clockwall transposed name", "unknown analyzer"},
		{"//coalvet:allow directivecheck trying to silence the checker", "unknown analyzer"},

		// Reason-less or placeholder-reason directives are rejected.
		{"//coalvet:allow wallclock", "needs a justification"},
		{"//coalvet:allow wallclock ", "needs a justification"},
		{"//coalvet:allow wallclock x", "needs a justification"},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if c.wantErr == "" {
			if !errors.Is(err, ErrNotDirective) {
				t.Errorf("Parse(%q): got %v, want ErrNotDirective", c.text, err)
			}
			continue
		}
		if err == nil || errors.Is(err, ErrNotDirective) {
			t.Errorf("Parse(%q): got %v, want error containing %q", c.text, err, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.text, err, c.wantErr)
		}
	}
}

func TestIndexCoversDirectiveAndNextLine(t *testing.T) {
	src := `package p

//coalvet:allow wallclock preceding-form justification
var a = 1

var b = 2 //coalvet:allow maporder trailing-form justification

//coalvet:allow wallclock
var c = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "idx.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex(fset, []*ast.File{f})
	posOnLine := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if !idx.Allows("wallclock", posOnLine(4)) {
		t.Error("preceding directive should suppress wallclock on the next line")
	}
	if !idx.Allows("maporder", posOnLine(6)) {
		t.Error("trailing directive should suppress maporder on its own line")
	}
	if idx.Allows("globalrand", posOnLine(4)) {
		t.Error("directive must only suppress the named analyzer")
	}
	if idx.Allows("wallclock", posOnLine(9)) {
		t.Error("reason-less directive must not suppress anything")
	}
}

func TestParseGrammarEdgeCases(t *testing.T) {
	// Only the first word after the verb is the analyzer; a second
	// analyzer name on the same line folds into the reason, so one
	// directive never waives two invariants.
	d, err := Parse("//coalvet:allow wallclock globalrand both waived in one line")
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if d.Analyzer != "wallclock" || d.Reason != "globalrand both waived in one line" {
		t.Errorf("got %+v, want analyzer wallclock with the rest as reason", d)
	}

	// Tabs separate like spaces, and trailing whitespace is trimmed.
	d, err = Parse("//coalvet:allow seedlane\twithin-cell repeat lanes are serial\t ")
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if d.Analyzer != "seedlane" || d.Reason != "within-cell repeat lanes are serial" {
		t.Errorf("got %+v, want tab-separated seedlane directive", d)
	}

	// The phase-2 analyzer names are all valid targets.
	for _, name := range []string{"seedlane", "goroutinebound", "atomiccounter", "atomicwrite", "floatfold"} {
		if _, err := Parse("//coalvet:allow " + name + " valid justification"); err != nil {
			t.Errorf("Parse with analyzer %s: %v", name, err)
		}
	}

	// A typo'd phase-2 name is rejected with the known list.
	_, err = Parse("//coalvet:allow seedlanes plural typo")
	if err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Errorf("plural typo: got %v, want unknown-analyzer error", err)
	}
}

func TestStaleDirectives(t *testing.T) {
	src := `package p

var a = 1 //coalvet:allow maporder used by the test below

//coalvet:allow wallclock timer refactored away, directive left behind
var b = 2

//coalvet:allow globalrand liveness unknown in this run
var c = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stale.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex(fset, []*ast.File{f})
	if !idx.Allows("maporder", fset.File(f.Pos()).LineStart(3)) {
		t.Fatal("maporder directive should suppress on its own line")
	}
	// wallclock and maporder ran; globalrand did not.
	stale := idx.StaleDirectives(map[string]bool{"maporder": true, "wallclock": true})
	if len(stale) != 1 {
		t.Fatalf("got %d stale directives, want 1: %+v", len(stale), stale)
	}
	if stale[0].Analyzer != "wallclock" || !strings.Contains(stale[0].Reason, "left behind") {
		t.Errorf("stale = %+v, want the unused wallclock directive", stale[0])
	}
	if got := fset.Position(stale[0].Pos).Line; got != 5 {
		t.Errorf("stale directive reported at line %d, want 5", got)
	}

	// A used directive never goes stale, even across repeated sweeps.
	if more := idx.StaleDirectives(map[string]bool{"maporder": true}); len(more) != 0 {
		t.Errorf("used maporder directive reported stale: %+v", more)
	}
}

func TestStaleDirectivesSkipsTestFiles(t *testing.T) {
	src := `package p

//coalvet:allow wallclock analyzers skip test files, never usable here
var a = 1
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex(fset, []*ast.File{f})
	if stale := idx.StaleDirectives(map[string]bool{"wallclock": true}); len(stale) != 0 {
		t.Errorf("directive in _test.go reported stale: %+v", stale)
	}
}
