// Package analysis defines the analyzer API for coalvet, the repo's
// determinism linter. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the
// suite can be ported to the upstream framework mechanically once the
// build environment can vendor x/tools; until then it is implemented
// entirely on the standard library's go/ast and go/types.
//
// Compared to upstream, the API is intentionally minimal: coalvet's
// analyzers are independent (no Requires DAG). Interprocedural
// analyzers compose across packages through one JSON fact per
// (package, analyzer) carried over the vet.cfg protocol (facts.go),
// a per-package static call graph (callgraph.go) and a local value-
// taint engine (taint.go) — which is all the determinism invariants
// need.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //coalvet:allow directives. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph help text: what the invariant is and
	// why it exists.
	Doc string

	// Facts marks the analyzer as interprocedural: the driver runs it
	// in fact-only mode (diagnostics discarded) over in-module
	// dependency units so importing packages can consult its exported
	// facts via Pass.ImportFact.
	Facts bool

	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver — not the analyzer —
	// applies //coalvet:allow suppression and output ordering.
	Report func(Diagnostic)

	// ImportedFacts holds facts exported by already-analyzed
	// packages, keyed by package path (nil under a fact-free driver).
	// Use ImportFact to decode one.
	ImportedFacts map[string]PackageFacts

	// exportFact, when set by the driver, records this package's fact
	// for one analyzer; see Pass.ExportFact.
	exportFact func(analyzer string, raw []byte)
}

// SetFactSink wires the driver's fact collector into the pass.
func (p *Pass) SetFactSink(sink func(analyzer string, raw []byte)) {
	p.exportFact = sink
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate checks the analyzer set for obvious configuration mistakes
// (missing names or run functions, duplicate names).
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %+v lacks a name or run function", a)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// SortDiagnostics orders diagnostics by file position so driver output
// is deterministic regardless of analyzer execution order — the same
// discipline coalvet enforces on the simulator's own reports.
func SortDiagnostics(fset *token.FileSet, diags []NamedDiagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// A NamedDiagnostic pairs a diagnostic with the analyzer that produced
// it, for driver-level suppression and printing.
type NamedDiagnostic struct {
	Analyzer string
	Diagnostic
}
