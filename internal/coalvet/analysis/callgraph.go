package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file is the per-package call-graph layer under coalvet's
// interprocedural analyzers. It stays deliberately lightweight — a
// static-call map over the AST/type info a Pass already holds, no SSA,
// no dynamic dispatch resolution — because the determinism invariants
// only need "which declared function does this call name", composed
// across packages by the fact layer (facts.go).

// A FuncInfo is one declared function or method of the analyzed
// package, with every static call its body makes (including calls
// inside nested function literals, which belong to the enclosing
// declaration for reachability purposes).
type FuncInfo struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []*ast.CallExpr
}

// A CallGraph indexes the package's declared functions. Funcs is in
// file/declaration order, so iteration is deterministic.
type CallGraph struct {
	Funcs []*FuncInfo
	byObj map[*types.Func]*FuncInfo
}

// BuildCallGraph collects every function declaration with a body and
// its static call sites.
func BuildCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	cg := &CallGraph{byObj: make(map[*types.Func]*FuncInfo)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					fi.Calls = append(fi.Calls, call)
				}
				return true
			})
			cg.Funcs = append(cg.Funcs, fi)
			cg.byObj[fn] = fi
		}
	}
	return cg
}

// Lookup returns the package-local info for fn, or nil for functions
// declared elsewhere (imported, or without a body here).
func (cg *CallGraph) Lookup(fn *types.Func) *FuncInfo {
	return cg.byObj[fn]
}

// Callee resolves the *types.Func a call statically names: a plain
// function, a method on a concrete receiver, or nil for conversions,
// builtins, function-valued variables and interface dispatch. That
// nil is the engine's precision boundary — an unresolvable call
// contributes no taint and no spawn, which under-approximates but
// never fabricates a diagnostic on its own.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FuncKey names a function for cross-package fact tables: "F" for a
// package-level function, "(T).M" / "(*T).M" for methods. Keys are
// package-relative; the fact layer already scopes tables per package.
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	recv := sig.Recv().Type()
	star := ""
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
		star = "*"
	}
	name := recv.String()
	if n, ok := recv.(*types.Named); ok {
		name = n.Obj().Name()
	}
	return fmt.Sprintf("(%s%s).%s", star, name, fn.Name())
}

// ParamIndex returns which parameter of sig the object is, or -1.
func ParamIndex(sig *types.Signature, obj types.Object) int {
	if obj == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}
