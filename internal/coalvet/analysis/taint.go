package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the value-taint half of the interprocedural layer: a
// small forward dataflow over one function body. Taint enters at
// analyzer-chosen sources (a loop index, a parameter, a "seed + i"
// mix expression), propagates through operators, conversions and
// plain assignments, and — deliberately — dies at every call
// boundary: a function call is a semantic checkpoint (hashing an
// index through FNV is exactly how a seed lane becomes sanctioned),
// and whatever must survive a call travels as an explicit fact
// instead (facts.go). That asymmetry keeps the engine linear-time and
// its false positives near zero.

// A Taint tracks which local objects carry tainted values within one
// function body.
type Taint struct {
	Info *types.Info
	// Objs is the tainted object set; seed it before Flood.
	Objs map[types.Object]bool
	// SourceExpr optionally marks expressions as taint sources on
	// their own (nil = objects only).
	SourceExpr func(ast.Expr) bool
}

// NewTaint returns an empty taint state over info.
func NewTaint(info *types.Info) *Taint {
	return &Taint{Info: info, Objs: make(map[types.Object]bool)}
}

// Add seeds the object as tainted.
func (t *Taint) Add(obj types.Object) {
	if obj != nil {
		t.Objs[obj] = true
	}
}

// Tainted reports whether the expression's value derives from a
// tainted object (or source expression) through operators,
// conversions, selections or composite literals — but never through
// a function call.
func (t *Taint) Tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		if t.Objs[t.Info.ObjectOf(e)] {
			return true
		}
	case *ast.ParenExpr:
		if t.Tainted(e.X) {
			return true
		}
	case *ast.BinaryExpr:
		if t.Tainted(e.X) || t.Tainted(e.Y) {
			return true
		}
	case *ast.UnaryExpr:
		if t.Tainted(e.X) {
			return true
		}
	case *ast.StarExpr:
		if t.Tainted(e.X) {
			return true
		}
	case *ast.SelectorExpr:
		if t.Tainted(e.X) {
			return true
		}
	case *ast.IndexExpr:
		if t.Tainted(e.X) {
			return true
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.Tainted(el) {
				return true
			}
		}
	case *ast.CallExpr:
		// A type conversion is transparent; a real call is a taint
		// boundary.
		if tv, ok := t.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if t.Tainted(e.Args[0]) {
				return true
			}
		}
	}
	if t.SourceExpr != nil && t.SourceExpr(e) {
		return true
	}
	return false
}

// Flood propagates taint through the body's assignments to a
// fixpoint: `x := tainted`, `x = tainted`, `x op= tainted` and
// `var x = tainted` all taint x. Only identifier targets are
// tracked — field and index stores are sinks the analyzers inspect
// explicitly, not carriers.
func (t *Taint) Flood(body ast.Node) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if t.taintIdent(lhs, n.Rhs[i]) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						if t.taintIdent(name, n.Values[i]) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
}

// taintIdent taints the identifier target if rhs is tainted,
// reporting whether the set grew.
func (t *Taint) taintIdent(lhs, rhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := t.Info.ObjectOf(id)
	if obj == nil || t.Objs[obj] || !t.Tainted(rhs) {
		return false
	}
	t.Objs[obj] = true
	return true
}

// RootIdent unwraps an expression to the identifier it is rooted in:
// `s.agg.sketch[i].Add` roots at s, `f(x).M` roots at nothing (a call
// produces a fresh value). Returns nil when there is no stable root.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A package-qualified name (pkg.Func) roots at the
			// selected name, not the package; callers that care
			// resolve the object and check its kind.
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			// The root of `reg.Counter("x").Inc` is reg: the call's
			// receiver chain still anchors the value's provenance.
			e = x.Fun
		default:
			return nil
		}
	}
}

// EnclosesPos reports whether node's source range covers pos — the
// "declared inside this goroutine body?" test behind the captured-
// variable checks.
func EnclosesPos(node ast.Node, pos token.Pos) bool {
	return node != nil && node.Pos() <= pos && pos < node.End()
}
