package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the cross-package fact layer: the minimal subset of
// golang.org/x/tools/go/analysis facts that coalvet's interprocedural
// analyzers need. A fact is one JSON-serializable summary per
// (package, analyzer) — e.g. seedlane's "these parameters of these
// functions reach a rand.NewSource sink". Facts ride the `go vet`
// unit-checker protocol: every compilation unit writes a facts file
// (cfg.VetxOutput) holding its own facts plus everything it imported,
// and cmd/go hands importers those files through cfg.PackageVetx — so
// whole-module properties compose under ordinary build caching.

// FactsVersion versions the vetx wire format. Readers skip files with
// a different version (stale caches are already excluded by the
// -V=full content hash, so this is belt and braces).
const FactsVersion = 1

// PackageFacts maps analyzer name -> that analyzer's serialized fact
// for one package. At most one fact per analyzer per package; an
// analyzer needing several tables wraps them in one struct.
type PackageFacts map[string]json.RawMessage

// FactsFile is the on-disk vetx layout: this unit's own facts merged
// with every imported package's, keyed by package path. Serialization
// is deterministic (encoding/json sorts map keys), which cmd/go's
// build cache requires of vet output files.
type FactsFile struct {
	Version  int                     `json:"version"`
	Packages map[string]PackageFacts `json:"packages"`
}

// EncodeFacts renders a facts file for the package set.
func EncodeFacts(pkgs map[string]PackageFacts) ([]byte, error) {
	f := FactsFile{Version: FactsVersion, Packages: pkgs}
	if f.Packages == nil {
		f.Packages = map[string]PackageFacts{}
	}
	return json.Marshal(f)
}

// DecodeFacts parses a facts file. Unknown versions (and non-JSON
// content, e.g. a placeholder from an older tool build) decode to an
// empty set rather than an error: a missing fact only widens what an
// analyzer must assume, it never produces a wrong diagnostic.
func DecodeFacts(data []byte) map[string]PackageFacts {
	var f FactsFile
	if err := json.Unmarshal(data, &f); err != nil || f.Version != FactsVersion || f.Packages == nil {
		return map[string]PackageFacts{}
	}
	return f.Packages
}

// ImportFact decodes the named package's fact for this pass's
// analyzer into out, reporting whether one was present. Analyzers
// must treat an absent fact as "nothing known" (the dependency may
// predate the fact chain or sit outside the module).
func (p *Pass) ImportFact(pkgPath string, out any) bool {
	facts, ok := p.ImportedFacts[pkgPath]
	if !ok {
		return false
	}
	raw, ok := facts[p.Analyzer.Name]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// ExportFact records v as this package's fact for the pass's
// analyzer, replacing any earlier export from the same pass.
func (p *Pass) ExportFact(v any) error {
	if p.exportFact == nil {
		return nil // driver without a fact chain (fact-free run)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("analysis: exporting %s fact: %v", p.Analyzer.Name, err)
	}
	p.exportFact(p.Analyzer.Name, raw)
	return nil
}

// SortedFactKeys returns the keys of a string-keyed fact table in
// sorted order, for analyzers that iterate one (fact tables are maps,
// and coalvet holds its own output to the determinism contract it
// enforces).
func SortedFactKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
