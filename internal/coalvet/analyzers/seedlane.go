package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"coalqoe/internal/coalvet/analysis"
)

// Seedlane enforces: per-lane seeds are derived with an FNV mix
// (study.UserSeed, exp.CellSeed), never by arithmetic on a base seed
// and a loop index or entity ID. Additive lanes — seed+i, seed+i*7919,
// seed^id — put every stream on the same low-order orbit of the
// underlying generator, which is exactly the correlated-fleet bug
// PR 6 shipped and then had to bisect. The analyzer taints loop
// indices and ID-carrying range bindings, follows the taint through
// assignments and arithmetic, and reports when it reaches a seed
// sink: a rand constructor argument, a Seed struct field, or — via
// the cross-package fact chain — a parameter of any function that
// itself feeds a rand constructor. A call is a taint boundary, so
// hashing an index through an FNV helper sanctions the lane.
var Seedlane = &analysis.Analyzer{
	Name: "seedlane",
	Doc: "forbid seeds derived by arithmetic on a base seed and a loop index or ID; " +
		"additive lanes are correlated — derive per-lane seeds with an FNV mix (study.UserSeed, exp.CellSeed)",
	Facts: true,
	Run:   runSeedlane,
}

// seedlaneFact summarizes one package's seed plumbing for importers.
type seedlaneFact struct {
	// SinkParams maps FuncKey -> indices of integer parameters that
	// reach a rand constructor (directly or through further calls).
	SinkParams map[string][]int `json:"sink_params,omitempty"`
	// ReturnParams maps FuncKey -> indices of integer parameters that
	// flow into a return value through operators alone — arithmetic
	// relabeling, not hashing. A caller passing a tainted argument at
	// such an index gets a tainted result; FNV helpers never appear
	// here because the hash call breaks the flow.
	ReturnParams map[string][]int `json:"return_params,omitempty"`
}

// randSeedCtors are the stdlib constructors whose arguments are seeds.
var randSeedCtors = map[string]bool{
	"NewSource":  true, // math/rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func isRandSeedCtor(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	return fn != nil && randSeedCtors[fn.Name()] &&
		(isPkgLevelFunc(fn, "math/rand") || isPkgLevelFunc(fn, "math/rand/v2"))
}

func integerish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// slFacts resolves seedlane fact tables for local and imported callees.
type slFacts struct {
	pass     *analysis.Pass
	local    *seedlaneFact
	imported map[string]*seedlaneFact
}

func (sf *slFacts) tables(fn *types.Func) *seedlaneFact {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg() == sf.pass.Pkg {
		return sf.local
	}
	path := fn.Pkg().Path()
	if f, ok := sf.imported[path]; ok {
		return f
	}
	f := new(seedlaneFact)
	if !sf.pass.ImportFact(path, f) {
		f = &seedlaneFact{}
	}
	sf.imported[path] = f
	return f
}

func (sf *slFacts) sinkParams(fn *types.Func) []int {
	if t := sf.tables(fn); t != nil {
		return t.SinkParams[analysis.FuncKey(fn)]
	}
	return nil
}

func (sf *slFacts) returnParams(fn *types.Func) []int {
	if t := sf.tables(fn); t != nil {
		return t.ReturnParams[analysis.FuncKey(fn)]
	}
	return nil
}

// lanedCallSource extends a taint across arithmetic-relabeling
// helpers: a call whose argument at a ReturnParams index is tainted
// produces a tainted result.
func (sf *slFacts) lanedCallSource(t *analysis.Taint) func(ast.Expr) bool {
	return func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := analysis.Callee(sf.pass.TypesInfo, call)
		for _, j := range sf.returnParams(fn) {
			if j < len(call.Args) && t.Tainted(call.Args[j]) {
				return true
			}
		}
		return false
	}
}

func runSeedlane(pass *analysis.Pass) error {
	if !inModule(pass.Pkg) {
		return nil
	}
	cg := analysis.BuildCallGraph(pass.TypesInfo, pass.Files)
	facts := computeSeedlaneFacts(pass, cg)
	sf := &slFacts{pass: pass, local: facts, imported: make(map[string]*seedlaneFact)}
	if len(facts.SinkParams) > 0 || len(facts.ReturnParams) > 0 {
		if err := pass.ExportFact(facts); err != nil {
			return err
		}
	}
	for _, fi := range cg.Funcs {
		if pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		checkSeedlaneFunc(pass, sf, fi)
	}
	return nil
}

// computeSeedlaneFacts runs a per-parameter taint over every declared
// function to a package-level fixpoint, so helper-through-helper
// plumbing (Lane calls relane calls NewSource) resolves no matter the
// declaration order.
func computeSeedlaneFacts(pass *analysis.Pass, cg *analysis.CallGraph) *seedlaneFact {
	facts := &seedlaneFact{
		SinkParams:   make(map[string][]int),
		ReturnParams: make(map[string][]int),
	}
	sf := &slFacts{pass: pass, local: facts, imported: make(map[string]*seedlaneFact)}
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.Funcs {
			if pass.InTestFile(fi.Decl.Pos()) {
				continue
			}
			sig, ok := fi.Fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			key := analysis.FuncKey(fi.Fn)
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if !integerish(p.Type()) {
					continue
				}
				haveSink := containsInt(facts.SinkParams[key], i)
				haveRet := containsInt(facts.ReturnParams[key], i)
				if haveSink && haveRet {
					continue
				}
				t := analysis.NewTaint(pass.TypesInfo)
				t.Add(p)
				t.SourceExpr = sf.lanedCallSource(t)
				t.Flood(fi.Decl.Body)
				if !haveSink && taintReachesSeedSink(pass, sf, t, fi.Decl.Body) {
					facts.SinkParams[key] = append(facts.SinkParams[key], i)
					changed = true
				}
				if !haveRet && taintReachesReturn(t, fi.Decl.Body) {
					facts.ReturnParams[key] = append(facts.ReturnParams[key], i)
					changed = true
				}
			}
		}
	}
	if len(facts.SinkParams) == 0 {
		facts.SinkParams = nil
	}
	if len(facts.ReturnParams) == 0 {
		facts.ReturnParams = nil
	}
	return facts
}

// taintReachesSeedSink reports whether a tainted value is used as a
// rand-constructor argument or passed at a sink parameter of a
// function known (by fact) to feed one. Closure bodies count: the
// goroutine still seeds per call.
func taintReachesSeedSink(pass *analysis.Pass, sf *slFacts, t *analysis.Taint, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRandSeedCtor(pass.TypesInfo, call) {
			for _, arg := range call.Args {
				if t.Tainted(arg) {
					found = true
				}
			}
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		for _, j := range sf.sinkParams(fn) {
			if j < len(call.Args) && t.Tainted(call.Args[j]) {
				found = true
			}
		}
		return true
	})
	return found
}

// taintReachesReturn reports whether a tainted value flows into one of
// the function's own return statements (closure returns excluded).
func taintReachesReturn(t *analysis.Taint, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its returns are not ours
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if t.Tainted(r) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkSeedlaneFunc reports index-derived seeds inside one function.
// Loop indices (for-clause variables, range keys) taint strongly; a
// range value binding taints weakly and only becomes a lane when
// mixed through arithmetic — ranging over a slice of precomputed
// seeds and using one verbatim is fine, `seed + u.ID*7919` is not.
func checkSeedlaneFunc(pass *analysis.Pass, sf *slFacts, fi *analysis.FuncInfo) {
	info := pass.TypesInfo
	body := fi.Decl.Body
	weak := analysis.NewTaint(info)
	strong := analysis.NewTaint(info)
	seedLoopTaint := func(e ast.Expr, t *analysis.Taint, needInt bool) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil || (needInt && !integerish(obj.Type())) {
			return
		}
		t.Add(obj)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if a, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					seedLoopTaint(lhs, strong, true)
				}
			}
		case *ast.RangeStmt:
			seedLoopTaint(n.Key, strong, true)
			seedLoopTaint(n.Value, weak, false)
		}
		return true
	})
	if len(strong.Objs) == 0 && len(weak.Objs) == 0 {
		return
	}
	weak.Flood(body)
	lanedCall := sf.lanedCallSource(strong)
	strong.SourceExpr = func(e ast.Expr) bool {
		if be, ok := e.(*ast.BinaryExpr); ok && isArithOp(be.Op) {
			if weak.Tainted(be.X) || weak.Tainted(be.Y) {
				return true
			}
		}
		return lanedCall(e)
	}
	strong.Flood(body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isRandSeedCtor(info, n) {
				for _, arg := range n.Args {
					if strong.Tainted(arg) {
						pass.Reportf(arg.Pos(),
							"seed derived by arithmetic on a loop index or ID reaches a rand constructor; "+
								"additive lanes are correlated — derive per-lane seeds with an FNV mix (study.UserSeed, exp.CellSeed) [seedlane]")
					}
				}
				return true
			}
			fn := analysis.Callee(info, n)
			for _, j := range sf.sinkParams(fn) {
				if j < len(n.Args) && strong.Tainted(n.Args[j]) {
					pass.Reportf(n.Args[j].Pos(),
						"loop-index-derived seed flows into %s, which feeds it to a rand constructor; "+
							"derive per-lane seeds with an FNV mix (study.UserSeed, exp.CellSeed) [seedlane]",
						fn.Name())
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if ok && sel.Sel.Name == "Seed" && strong.Tainted(n.Rhs[i]) {
					pass.Reportf(n.Pos(),
						"Seed field is assigned arithmetic on a loop index; additive lanes are correlated — "+
							"derive per-lane seeds with an FNV mix (study.UserSeed, exp.CellSeed) [seedlane]")
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Seed" && strong.Tainted(kv.Value) {
					pass.Reportf(kv.Value.Pos(),
						"Seed field is built from arithmetic on a loop index; additive lanes are correlated — "+
							"derive per-lane seeds with an FNV mix (study.UserSeed, exp.CellSeed) [seedlane]")
				}
			}
		}
		return true
	})
}

func isArithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.XOR, token.OR, token.SHL, token.SHR:
		return true
	}
	return false
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
