package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"

	"coalqoe/internal/coalvet/analysis"
)

// resultretainRoot is the struct whose memory footprint this analyzer
// guards, and retainBanned the heavyweight types it must not reach.
//
// PR 1 fixed a leak where every grid cell's Result retained the whole
// simulated device and player session (~MBs each, thousands of cells
// per grid); Result now carries them only behind explicit
// KeepDevice/KeepTrace opt-ins. This analyzer stops the leak from
// regrowing: any field of exp.Result — at any nesting depth through
// structs, pointers, slices, arrays and maps — whose type can reach
// device.Device or player.Session is reported unless annotated.
const resultretainPkg = ModulePath + "/internal/exp"

var retainBanned = map[string]bool{
	ModulePath + "/internal/device.Device":  true,
	ModulePath + "/internal/player.Session": true,
}

// Resultretain enforces: no new exp.Result field may retain the
// simulated device or session. The two existing opt-in fields carry
// //coalvet:allow resultretain directives documenting the runtime
// gate.
var Resultretain = &analysis.Analyzer{
	Name: "resultretain",
	Doc: "forbid exp.Result fields that can reach *device.Device or *player.Session; " +
		"grids hold thousands of Results and retaining the simulation graph reintroduces the PR 1 memory leak",
	Run: runResultretain,
}

func runResultretain(pass *analysis.Pass) error {
	if pass.Pkg.Path() != resultretainPkg {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Result" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				ft := pass.TypesInfo.TypeOf(field.Type)
				if ft == nil {
					continue
				}
				if path, found := reachesBanned(ft, nil, make(map[types.Type]bool)); found {
					pass.Reportf(field.Pos(),
						"Result field retains the simulation graph via %s; results outlive their runs by the thousands — keep them scalar, or gate and justify with //coalvet:allow resultretain <reason> [resultretain]",
						path)
				}
			}
			return true
		})
	}
	return nil
}

// reachesBanned walks t's structure looking for a banned named type,
// returning a human-readable path on success. Interfaces and function
// types terminate the walk: they are opaque to static reachability.
func reachesBanned(t types.Type, trail []string, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		name := obj.Name()
		if obj.Pkg() != nil {
			full := obj.Pkg().Path() + "." + name
			name = obj.Pkg().Name() + "." + name
			if retainBanned[full] {
				return trailString(append(trail, name)), true
			}
		}
		return reachesBanned(t.Underlying(), append(trail, name), seen)
	case *types.Pointer:
		return reachesBanned(t.Elem(), trail, seen)
	case *types.Slice:
		return reachesBanned(t.Elem(), trail, seen)
	case *types.Array:
		return reachesBanned(t.Elem(), trail, seen)
	case *types.Chan:
		return reachesBanned(t.Elem(), trail, seen)
	case *types.Map:
		if path, found := reachesBanned(t.Key(), trail, seen); found {
			return path, true
		}
		return reachesBanned(t.Elem(), trail, seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if path, found := reachesBanned(f.Type(), append(trail, "."+f.Name()), seen); found {
				return path, true
			}
		}
	}
	return "", false
}

func trailString(trail []string) string {
	s := ""
	for i, step := range trail {
		if i > 0 && step[0] != '.' {
			s += " -> "
		}
		s += step
	}
	if s == "" {
		s = fmt.Sprintf("%v", trail)
	}
	return s
}
