package analyzers

import (
	"errors"

	"coalqoe/internal/coalvet/analysis"
	"coalqoe/internal/coalvet/directive"
)

// Directivecheck enforces: every //coalvet: comment in the module is
// a well-formed, justified allow directive. Malformed directives are
// doubly dangerous — they silently fail to suppress (so they look
// like annotations but do nothing) or, worse, would rot into
// unexplained exemptions. Its own diagnostics cannot be suppressed.
var Directivecheck = &analysis.Analyzer{
	Name: "directivecheck",
	Doc: "require every //coalvet: comment to be `//coalvet:allow <analyzer> <reason>` with a known analyzer " +
		"and a non-trivial justification",
	Run: runDirectivecheck,
}

func runDirectivecheck(pass *analysis.Pass) error {
	if !inModule(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, err := directive.Parse(c.Text)
				if err == nil || errors.Is(err, directive.ErrNotDirective) {
					continue
				}
				pass.Reportf(c.Pos(), "%v [directivecheck]", err)
			}
		}
	}
	return nil
}
