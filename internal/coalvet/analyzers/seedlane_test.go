package analyzers_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestSeedlane(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Seedlane,
		"coalqoe/internal/slbad", // failing fixture (incl. the PR-6 additive-lane shape)
		"coalqoe/internal/slok",  // passing fixture (FNV lanes, precomputed seeds)
	)
}

// TestSeedlaneFactExport pins the wire-level fact a dependency
// exports: sllib's seed plumbing must survive JSON round-tripping
// exactly, because `go vet` composes these blobs across compilation
// units sight unseen.
func TestSeedlaneFactExport(t *testing.T) {
	store := vettest.DepFacts(t, "testdata/src", analyzers.Seedlane, "coalqoe/internal/slbad")
	raw, ok := store["coalqoe/internal/sllib"]["seedlane"]
	if !ok {
		t.Fatalf("sllib exported no seedlane fact; store: %v", store)
	}
	var fact struct {
		SinkParams   map[string][]int `json:"sink_params"`
		ReturnParams map[string][]int `json:"return_params"`
	}
	if err := json.Unmarshal(raw, &fact); err != nil {
		t.Fatalf("decoding sllib fact: %v", err)
	}
	if got, want := fact.SinkParams["Run"], []int{1}; !reflect.DeepEqual(got, want) {
		t.Errorf("SinkParams[Run] = %v, want %v (Run's seed parameter feeds rand.NewSource)", got, want)
	}
	if got, want := fact.ReturnParams["Lane"], []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReturnParams[Lane] = %v, want %v (Lane relabels both parameters)", got, want)
	}
	if got := fact.ReturnParams["Mix"]; len(got) != 0 {
		t.Errorf("ReturnParams[Mix] = %v, want none: the FNV hash is a taint boundary", got)
	}
	if got := fact.SinkParams["Mix"]; len(got) != 0 {
		t.Errorf("SinkParams[Mix] = %v, want none", got)
	}
}
