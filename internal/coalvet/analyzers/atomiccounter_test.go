package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestAtomiccounter(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Atomiccounter,
		"coalqoe/internal/acbad", // failing fixture (incl. the PR-6 captured-counter shape)
		"coalqoe/internal/acok",  // passing fixture (flush-after-drain, mutex, private)
	)
}
