// Passing fixture for the resultretain analyzer: a scalar-only Result
// at the guarded package path produces no diagnostics.
package exp

// Result holds only scalar outcomes.
type Result struct {
	Seed     int64
	MOS      float64
	Stalls   int
	RebufSec float64
}
