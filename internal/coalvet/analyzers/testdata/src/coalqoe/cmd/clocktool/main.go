// Passing fixture: cmd/ binaries own the wall clock; the wallclock
// analyzer only polices internal/ simulator packages.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
