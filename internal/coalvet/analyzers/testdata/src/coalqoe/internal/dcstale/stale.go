// Fixture for stale-directive detection: a used //coalvet:allow is
// silent, an unused one for an analyzer that ran is reported, and an
// unused one for an analyzer that did NOT run is left alone (it may
// be live under the full suite). The test drives only wallclock.
package dcstale

import "time"

// A live exemption: the directive suppresses a real wallclock
// finding, so it is used.
func stamp() time.Time {
	return time.Now() //coalvet:allow wallclock fixture exercises a live suppression
}

// A stale exemption: wallclock runs here and finds nothing on the
// directive's line, so the directive suppresses nothing.
func pure() int {
	// want+1 "stale //coalvet:allow wallclock directive"
	//coalvet:allow wallclock kept after the timer was refactored away
	return 42
}

// Not stale in this run: globalrand is not part of the single-analyzer
// pass, so the directive's liveness is unknown and it is left alone.
func quiet() int {
	//coalvet:allow globalrand jitter is reseeded per cell in this fixture
	return 7
}
