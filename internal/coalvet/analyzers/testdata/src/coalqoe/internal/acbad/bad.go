// Failing fixture for the atomiccounter analyzer, including the PR-6
// regression shape verbatim: a *telemetry.Counter captured by
// per-user goroutines and incremented concurrently — plain
// loads/stores, so increments vanish silently.
package acbad

import (
	"sync"

	"coalqoe/internal/aclib"
	"coalqoe/internal/telemetry"
)

type user struct {
	ID int64
}

func simulate(u user) {
	_ = u.ID
}

// The PR-6 cross-goroutine counter bug, verbatim.
func fleet(users []user, spawned *telemetry.Counter) {
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(1)
		go func(u user) {
			defer wg.Done()
			spawned.Inc() // want "telemetry instrument captured from the spawning goroutine"
			simulate(u)
		}(u)
	}
	wg.Wait()
}

// Cross-package: aclib.Bump mutates the instrument behind its
// parameter (fact), so handing it a captured counter is the same race.
func fleetViaHelper(users []user, spawned *telemetry.Counter) {
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(1)
		go func(u user) {
			defer wg.Done()
			aclib.Bump(spawned) // want "Bump mutates a telemetry instrument captured"
			simulate(u)
		}(u)
	}
	wg.Wait()
}

// Spawning the helper directly shares the counter just the same.
func fireAndForget(spawned *telemetry.Counter) {
	go aclib.Bump(spawned) // want "goroutine mutates the telemetry instrument passed to Bump"
}

// Cross-package through a receiver: Record mutates instruments
// reachable from the captured Stats value.
func recordAsync(s *aclib.Stats) {
	go func() {
		s.Record() // want "Record mutates telemetry instruments through a receiver captured"
	}()
}
