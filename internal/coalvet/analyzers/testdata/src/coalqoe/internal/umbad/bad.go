// Failing fixture for the unitmix analyzer: magic byte/page literals
// mixed with unit-carrying types.
package umbad

import "coalqoe/internal/units"

func grow(b units.Bytes) units.Bytes {
	return b + 4096 // want "raw literal 4096 mixed with units.Bytes"
}

func toPages() units.Pages {
	return units.Pages(2048) // want "raw literal 2048 mixed with units.Pages"
}

func isBig(b units.Bytes) bool {
	return b > 1<<20 // want "raw literal 1048576 mixed with units.Bytes"
}

func scale(p units.Pages) units.Pages {
	return 1024 * p // want "raw literal 1024 mixed with units.Pages"
}
