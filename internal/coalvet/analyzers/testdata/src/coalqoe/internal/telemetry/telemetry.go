// Fixture stand-in for coalqoe/internal/telemetry: same import path,
// same non-atomic instrument surface, so the atomiccounter fixtures
// typecheck against the shapes the real analyzer matches on.
package telemetry

type Counter struct {
	v int64
}

func (c *Counter) Inc() {
	c.v++
}

func (c *Counter) Add(n int64) {
	c.v += n
}

func (c *Counter) Value() int64 {
	return c.v
}

type Gauge struct {
	v float64
}

func (g *Gauge) Set(v float64) {
	g.v = v
}

func (g *Gauge) Max(v float64) {
	if v > g.v {
		g.v = v
	}
}
