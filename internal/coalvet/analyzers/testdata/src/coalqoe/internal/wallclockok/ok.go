// Passing fixture for the wallclock analyzer: durations, explicit
// construction, and a justified directive are all fine.
package wallclockok

import "time"

func span() time.Duration { return 3 * time.Second }

func epoch() time.Time { return time.Unix(0, 0) }

func injected(now func() time.Time) time.Time { return now() }

func annotated() time.Time {
	//coalvet:allow wallclock fixture: wall-clock stamp is display-only, never enters the sim
	return time.Now()
}
