// Fixture library for the seedlane analyzer's cross-package fact
// chain: Run feeds its seed parameter to a rand constructor (a sink
// fact), Lane relabels its parameters arithmetically into its return
// value (a return fact), and Mix hashes — so taint through Mix dies
// at the call, exactly like study.UserSeed in the real tree.
package sllib

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Run simulates one user with the given seed (sink fact: param 1).
func Run(id int64, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return id + rng.Int63n(16)
}

// Lane derives a lane additively (return fact: params 0 and 1).
func Lane(base, i int64) int64 {
	return base + i*7919
}

// Mix derives a lane with an FNV hash; the hash call is a taint
// boundary, so callers may pass loop indices freely.
func Mix(base, id int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d:%d", base, id)
	return int64(h.Sum64())
}
