package wallclockbad

import "time"

// Test files are exempt: timeouts and benchmark timing legitimately
// read the wall clock. No diagnostics expected here.
func testHelperStamp() time.Time { return time.Now() }
