// Failing fixture for the wallclock analyzer: a simulator-internal
// package that reads the machine clock.
package wallclockbad

import "time"

func elapsed() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock in simulator package"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Since(start)     // want "time.Since reads the wall clock"
}

func ticks() {
	ch := time.Tick(time.Second) // want "time.Tick reads the wall clock"
	<-ch
}

// Passing the function as a value is just as non-deterministic as
// calling it.
func clockSource() func() time.Time {
	return time.Now // want "time.Now reads the wall clock"
}
