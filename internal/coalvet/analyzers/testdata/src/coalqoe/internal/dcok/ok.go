// Passing fixture for the directivecheck analyzer: well-formed
// directives and ordinary comments produce no diagnostics.
package dcok

import "fmt"

// A justified directive parses clean.
func emit(m map[string]int) {
	//coalvet:allow maporder fixture: demo of a justified suppression
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Ordinary prose mentioning coalvet directives is not itself a
// directive, because it lacks the machine prefix.
func doc() {}
