// Passing fixture for the seedlane analyzer: FNV-derived lanes,
// precomputed seed slices, and index-free seeding are all clean.
package slok

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"coalqoe/internal/sllib"
)

type user struct {
	ID int64
}

// mix is the sanctioned lane derivation: the hash call is a taint
// boundary, so the loop index never reaches the constructor.
func mix(base, id int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d:%d", base, id)
	return int64(h.Sum64())
}

func fleet(seed int64, users []user) {
	for i, u := range users {
		_ = rand.New(rand.NewSource(mix(seed, int64(i))))
		sllib.Run(u.ID, sllib.Mix(seed, u.ID))
	}
}

// Ranging over precomputed lanes and using one verbatim is fine: the
// value binding only becomes a lane when mixed arithmetically.
func replay(seeds []int64) {
	for _, s := range seeds {
		_ = rand.New(rand.NewSource(s))
	}
}

// A loop that seeds from an invariant base is not a lane bug (it is a
// different bug, but not this analyzer's).
func repeat(base int64, n int) {
	for i := 0; i < n; i++ {
		_ = rand.NewSource(base)
		_ = i
	}
}
