// Package simclock is the fixture twin of the virtual-time authority:
// the one internal package allowed to touch the real clock.
package simclock

import "time"

// Wall reads real time; simclock owns this exemption.
func Wall() time.Time { return time.Now() }
