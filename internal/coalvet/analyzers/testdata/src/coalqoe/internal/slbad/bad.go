// Failing fixture for the seedlane analyzer, including the PR-6
// regression shape verbatim: per-user seeds derived as
// `seed + int64(i)*7919`, which puts every user's generator on the
// same additive orbit.
package slbad

import (
	"math/rand"

	"coalqoe/internal/sllib"
)

type user struct {
	ID int64
}

type cell struct {
	Seed int64
}

func fleet(seed int64, users []user) {
	for i, u := range users {
		// The PR-6 correlated-lane bug, verbatim.
		rng := rand.New(rand.NewSource(seed + int64(i)*7919)) // want "seed derived by arithmetic on a loop index"
		_ = rng.Int63()

		// Cross-package: sllib.Run's seed parameter reaches a rand
		// constructor (sink fact).
		sllib.Run(u.ID, seed+int64(i)) // want "loop-index-derived seed flows into Run"

		// Cross-package: sllib.Lane relabels arithmetically (return
		// fact), so its result is still a lane.
		_ = rand.NewSource(sllib.Lane(seed, int64(i))) // want "seed derived by arithmetic on a loop index"

		// Mixing an entity ID from a range binding is the same bug.
		_ = rand.NewSource(seed ^ u.ID) // want "seed derived by arithmetic on a loop index"
	}
}

func grid(base int64, cells []cell) {
	for i := range cells {
		c := cell{}
		c.Seed = base + int64(i) + 1 // want "Seed field is assigned arithmetic on a loop index"
		cells[i] = c
	}
}

func build(base int64, n int) []cell {
	out := make([]cell, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cell{Seed: base + int64(i)}) // want "Seed field is built from arithmetic on a loop index"
	}
	return out
}
