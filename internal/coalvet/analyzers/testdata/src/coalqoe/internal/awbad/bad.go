// Failing fixture for the atomicwrite analyzer: artifacts written in
// place, directly and through helpers.
package awbad

import (
	"os"

	"coalqoe/internal/awlib"
)

func writeReport(data []byte) error {
	return os.WriteFile("report.json", data, 0o644) // want "os.WriteFile writes the artifact in place"
}

func writeSummary(data []byte) error {
	out := "summary.csv"
	f, err := os.Create(out) // want "os.Create writes the artifact in place"
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

func appendLog(line []byte) error {
	f, err := os.OpenFile("run.log", os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644) // want "os.OpenFile writes the artifact in place"
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(line)
	return err
}

// Cross-package: awlib.Dump writes at its path parameter (fact), so
// this call is the write site.
func writeFinal(data []byte) error {
	return awlib.Dump("final.json", data) // want "Dump writes the artifact in place"
}

// In-package helper: same fact machinery, one package deep.
func save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

func writeTrace(data []byte) error {
	return save("trace.json", data) // want "save writes the artifact in place"
}
