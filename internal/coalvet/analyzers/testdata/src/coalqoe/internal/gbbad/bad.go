// Failing fixture for the goroutinebound analyzer, including the
// PR-6 regression shape verbatim: one goroutine per user with the
// semaphore acquired inside the goroutine body, which throttles
// execution but not creation — 50k users meant 50k live stacks.
package gbbad

import (
	"sync"

	"coalqoe/internal/gblib"
)

type user struct {
	ID int64
}

func simulate(u user) {
	_ = u.ID
}

// The PR-6 spawn-then-gate bug, verbatim.
func fleet(users []user) {
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(1)
		go func(u user) { // want "goroutine launched per element of a data-sized loop"
			sem <- struct{}{}
			defer func() {
				<-sem
				wg.Done()
			}()
			simulate(u)
		}(u)
	}
	wg.Wait()
}

// A counting loop sized by the data is the same shape.
func fleetIndexed(users []user) {
	for i := 0; i < len(users); i++ {
		go simulate(users[i]) // want "goroutine launched per element of a data-sized loop"
	}
}

// Cross-package: gblib.Spawn launches a goroutine per call, so
// calling it per element inherits the spawn.
func fleetViaHelper(users []gblib.User) {
	for _, u := range users {
		gblib.Spawn(u) // want "Spawn launches a goroutine per call"
	}
}
