// Passing fixture for the atomicwrite analyzer: temp-then-rename in
// all its spellings, scratch files, and read-only opens.
package awok

import (
	"fmt"
	"os"
	"path/filepath"

	"coalqoe/internal/awlib"
)

// The canonical idiom (engine.writeCheckpoint's shape).
func flush(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeReport(data []byte) error {
	return flush("report.json", data)
}

// Temp-marking survives Sprintf and filepath.Join.
func writeStaged(dir string, data []byte) error {
	staged := filepath.Join(dir, fmt.Sprintf("%s.partial", "report.json"))
	if err := awlib.Dump(staged, data); err != nil {
		return err
	}
	return os.Rename(staged, filepath.Join(dir, "report.json"))
}

// Scratch files from CreateTemp are not artifacts.
func scratch(data []byte) error {
	f, err := os.CreateTemp("", "coalqoe-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// A read-only open is not a write site.
func read(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// The suffix may be a named constant (atomicio spells it this way);
// the taint reads the constant's value, not the token.
const scratchSuffix = ".tmp"

func constSuffix(path string, data []byte) error {
	tmp := path + scratchSuffix
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
