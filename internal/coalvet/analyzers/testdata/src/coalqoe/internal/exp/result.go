// Failing fixture for the resultretain analyzer: this package path is
// exactly coalqoe/internal/exp, so its Result struct is the guarded
// root.
package exp

import (
	"coalqoe/internal/device"
	"coalqoe/internal/player"
)

// Result is the fixture twin of the real exp.Result.
type Result struct {
	Seed    int64
	Metrics player.Metrics // scalar-only: fine to retain
	Dev     *device.Device // want "Result field retains the simulation graph via device.Device"
	Runs    []perRun       // want "Result field retains the simulation graph via exp.perRun.Sess -> player.Session"
	//coalvet:allow resultretain fixture: nil unless an explicit keep flag is set on the run config
	Kept *device.Device
}

// perRun shows that reachability is transitive through nested structs,
// slices and pointers.
type perRun struct {
	Sess *player.Session
}
