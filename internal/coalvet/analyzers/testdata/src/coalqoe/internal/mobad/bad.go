// Failing fixture for the maporder analyzer: map ranges whose order
// can reach emitted output.
package mobad

import "fmt"

func emit(m map[string]int) {
	for k, v := range m { // want "map iteration order is randomized"
		fmt.Println(k, v)
	}
}

// Collecting keys is not enough — they must also be sorted.
func keysNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is randomized"
		keys = append(keys, k)
	}
	return keys
}

// Ranges inside function literals are checked too.
func insideClosure(m map[string]int) func() []string {
	return func() []string {
		var out []string
		for k := range m { // want "map iteration order is randomized"
			out = append(out, k)
		}
		return out
	}
}
