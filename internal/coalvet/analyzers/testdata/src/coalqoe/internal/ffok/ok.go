// Passing fixture for the floatfold analyzer: the sorted-keys idiom,
// exact integer accumulation, and per-iteration locals.
package ffok

import "sort"

// The prescribed fix: collect keys, sort, fold over the slice — the
// fold order is deterministic and the range is no longer a map range.
func mean(samples map[string]float64) float64 {
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += samples[k]
	}
	return sum / float64(len(samples))
}

// Integer accumulation is exact in any order.
func total(counts map[string]int64) int64 {
	var n int64
	for _, v := range counts {
		n += v
	}
	return n
}

// A float local that dies with the iteration cannot accumulate
// across orderings.
func perItem(samples map[string]float64) float64 {
	var last float64
	for _, v := range samples {
		x := v * 2
		x += 1
		last = x
	}
	return last
}
