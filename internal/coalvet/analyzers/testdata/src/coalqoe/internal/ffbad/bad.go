// Failing fixture for the floatfold analyzer: float folds fed by map
// ranges, in compound, spelled-out, derived, and helper forms.
package ffbad

import "coalqoe/internal/fflib"

func mean(samples map[string]float64) float64 {
	var sum float64
	for _, v := range samples {
		sum += v // want "float accumulation over a map range is order-sensitive"
	}
	return sum / float64(len(samples))
}

func product(samples map[string]float64) float64 {
	prod := 1.0
	for _, v := range samples {
		prod = prod * v // want "float accumulation over a map range is order-sensitive"
	}
	return prod
}

func weighted(samples map[string]float64, w float64) float64 {
	var sum float64
	for _, v := range samples {
		scaled := v * w
		sum += scaled // want "float accumulation over a map range is order-sensitive"
	}
	return sum
}

// Cross-package: the fold happens one call down, inside fflib.
func viaHelper(samples map[string]float64, acc *fflib.Acc) {
	for _, v := range samples {
		fflib.AddTo(acc, v) // want "AddTo folds this map-range value into float state"
	}
}

func viaMethod(samples map[string]float64, acc *fflib.Acc) {
	for _, v := range samples {
		acc.Add(v) // want "Add folds this map-range value into float state"
	}
}
