// Fixture library for the goroutinebound analyzer's fact chain:
// Spawn launches a goroutine per call without joining it (a
// spawns-per-call fact); RunJoined drains its goroutine before
// returning and so exports nothing.
package gblib

import "sync"

type User struct {
	ID int64
}

func simulate(u User) {
	_ = u.ID
}

// Spawn launches one unjoined goroutine per call.
func Spawn(u User) {
	go simulate(u)
}

// RunJoined spawns and waits; callers inherit no goroutine.
func RunJoined(u User) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		simulate(u)
	}()
	wg.Wait()
}
