// Package device is a fixture twin of the real simulated device, used
// by the resultretain fixtures.
package device

// Device stands in for the multi-megabyte simulated device graph.
type Device struct {
	RAM int64
}
