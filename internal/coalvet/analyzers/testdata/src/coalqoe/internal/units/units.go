// Package units is a fixture twin of the real coalqoe/internal/units:
// just enough surface for the unitmix fixtures to typecheck.
package units

// Bytes counts bytes.
type Bytes int64

// Pages counts 4 KiB pages.
type Pages int64

// Named quantities that satisfy the unitmix analyzer.
const (
	KiB      Bytes = 1 << 10
	MiB      Bytes = 1 << 20
	GiB      Bytes = 1 << 30
	PageSize Bytes = 4 * KiB
)
