// Package player is a fixture twin of the real player, used by the
// resultretain fixtures.
package player

// Session stands in for the heavyweight per-run playback session.
type Session struct {
	Buffered float64
}

// Metrics is scalar-only and safe for a Result to retain.
type Metrics struct {
	MOS    float64
	Stalls int
}
