// Passing fixture for the atomiccounter analyzer: the engine's
// flush-after-drain discipline (workers accumulate privately, the
// coordinator folds into shared instruments after wg.Wait), plus a
// mutex-guarded body and goroutine-local instruments.
package acok

import (
	"sync"

	"coalqoe/internal/telemetry"
)

type user struct {
	ID int64
}

func simulate(u user) int64 {
	return u.ID
}

// Flush after the drain: the only shared-instrument mutation happens
// in the spawning goroutine, after every worker has exited.
func fleet(users []user, spawned *telemetry.Counter) {
	results := make(chan int64, len(users))
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(1)
		go func(u user) {
			defer wg.Done()
			results <- simulate(u)
		}(u)
	}
	wg.Wait()
	close(results)
	var total int64
	for n := range results {
		total += n
	}
	spawned.Add(total)
}

// A body that takes a mutex has opted into explicit synchronization.
func guarded(spawned *telemetry.Counter, mu *sync.Mutex) {
	go func() {
		mu.Lock()
		defer mu.Unlock()
		spawned.Inc()
	}()
}

// An instrument declared inside the goroutine body is private to it.
func private(users []user) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local telemetry.Counter
			for _, u := range users {
				local.Add(simulate(u))
			}
		}()
	}
	wg.Wait()
}
