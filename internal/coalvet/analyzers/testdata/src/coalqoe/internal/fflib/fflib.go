// Fixture library for the floatfold analyzer's fact chain: AddTo and
// (*Acc).Add fold their float parameter into state that outlives the
// call (accumulates-param facts).
package fflib

// Acc is a persistent float accumulator.
type Acc struct {
	Total float64
}

// Add folds v into the accumulator (fact: param 0).
func (a *Acc) Add(v float64) {
	a.Total += v
}

// AddTo folds v into acc (fact: param 1).
func AddTo(acc *Acc, v float64) {
	acc.Total += v
}

// Mean is pure: nothing persists, no fact.
func Mean(a, b float64) float64 {
	return (a + b) / 2
}
