package grok

import randv2 "math/rand/v2"

func newV2(a, b uint64) *randv2.Rand { return randv2.New(randv2.NewPCG(a, b)) }

func drawV2(rng *randv2.Rand) int { return rng.IntN(10) }
