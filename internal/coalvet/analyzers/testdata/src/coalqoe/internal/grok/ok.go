// Passing fixture for the globalrand analyzer: injected generators and
// the explicit constructors are fine.
package grok

import "math/rand"

func draw(rng *rand.Rand) int { return rng.Intn(10) }

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
