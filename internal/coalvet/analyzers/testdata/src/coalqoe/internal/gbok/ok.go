// Passing fixture for the goroutinebound analyzer: capacity-bounded
// worker pools, gate-before-spawn semaphores, and joined helpers.
package gbok

import (
	"sync"
	"sync/atomic"

	"coalqoe/internal/gblib"
)

type user struct {
	ID int64
}

func simulate(u user) {
	_ = u.ID
}

// The engine's claim-counter worker pool: goroutine count is the
// worker capacity (min-clamped to the data), never the data size.
func pool(users []user) {
	workers := 4
	if workers > len(users) {
		workers = len(users)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if int(i) >= len(users) {
					return
				}
				simulate(users[int(i)])
			}
		}()
	}
	wg.Wait()
}

// Gate before the spawn: the send blocks creation, not just
// execution.
func gated(users []user) {
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for _, u := range users {
		sem <- struct{}{}
		wg.Add(1)
		go func(u user) {
			defer func() {
				<-sem
				wg.Done()
			}()
			simulate(u)
		}(u)
	}
	wg.Wait()
}

// RunJoined drains its goroutine before returning; calling it per
// element adds no concurrency.
func serial(users []gblib.User) {
	for _, u := range users {
		gblib.RunJoined(u)
	}
}
