// Passing fixture for the unitmix analyzer: named quantities, small
// scalars, and justified directives.
package umok

import "coalqoe/internal/units"

const segment units.Bytes = 6 * units.MiB

func ok(b units.Bytes) units.Bytes {
	b += 4 * units.KiB
	b += segment
	b += 512 // below the 1024 threshold: everyday arithmetic
	const chunk = 64 * 1024
	return b + chunk // a declared const carries its unit at the declaration
}

func okCmp(b units.Bytes) bool { return b > 2*units.PageSize }

func pages(b units.Bytes) units.Pages { return units.Pages(b / units.PageSize) }

func annotated(b units.Bytes) units.Bytes {
	//coalvet:allow unitmix fixture: wire-format framing constant documented at the protocol spec
	return b + 65536
}
