package mook

// Test files are exempt from maporder: assertions decide determinism
// there, not emission order.
func keysForTest(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
