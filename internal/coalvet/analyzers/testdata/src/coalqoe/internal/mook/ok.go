// Passing fixture for the maporder analyzer: the sorted-keys idiom,
// order-blind ranges, and justified directives.
package mook

import (
	"fmt"
	"slices"
	"sort"
)

// The canonical deterministic idiom: collect, sort, then iterate.
func emitSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// slices.Sort counts as a recognized sort too.
func sortedInts(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// A bindings-free range cannot observe iteration order.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// An integer sum is order-insensitive; the directive records why.
func sum(m map[string]int) int {
	total := 0
	//coalvet:allow maporder integer sum over values, order-insensitive
	for _, v := range m {
		total += v
	}
	return total
}
