// Fixture library for the atomicwrite analyzer's fact chain: Dump
// writes to the path its caller supplies, so each call site is the
// real write site (write-param fact).
package awlib

import "os"

// Dump writes data at path, atomicity left to the caller.
func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
