// Fixture library for the atomiccounter analyzer's fact chain: Bump
// mutates the instrument behind its parameter, and (*Stats).Record
// mutates instruments reachable from its receiver.
package aclib

import "coalqoe/internal/telemetry"

// Bump increments the counter it is handed (mutates-param fact).
func Bump(c *telemetry.Counter) {
	c.Inc()
}

// Stats owns instruments; Record mutates through the receiver
// (mutates-recv fact).
type Stats struct {
	Done *telemetry.Counter
}

func (s *Stats) Record() {
	s.Done.Inc()
}
