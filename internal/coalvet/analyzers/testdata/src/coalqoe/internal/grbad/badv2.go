package grbad

import randv2 "math/rand/v2"

// math/rand/v2 has a global source too.
func drawV2() int {
	return randv2.IntN(10) // want "rand.IntN draws from the process-global random source"
}
