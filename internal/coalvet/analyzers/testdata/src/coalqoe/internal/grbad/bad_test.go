package grbad

import "math/rand"

// Unlike wallclock, globalrand applies to test files as well: a global
// draw in a test still couples it to every other test in the process.
func shuffleForTest(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the process-global random source"
}
