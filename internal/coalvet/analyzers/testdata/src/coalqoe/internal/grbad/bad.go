// Failing fixture for the globalrand analyzer: package-level
// math/rand draws from the shared global source.
package grbad

import "math/rand"

func draw() int {
	rand.Seed(42)        // want "rand.Seed draws from the process-global random source"
	return rand.Intn(10) // want "rand.Intn draws from the process-global random source"
}

func jitter() float64 {
	return rand.Float64() // want "rand.Float64 draws from the process-global random source"
}
