// Failing fixture for the directivecheck analyzer. Its findings anchor
// on comment lines, so the expectations use vettest's offset form.
package dcbad

// want+1 "unknown coalvet directive \"//coalvet:ignore\""
//coalvet:ignore wallclock

// want+1 "//coalvet:allow needs an analyzer name and a reason"
//coalvet:allow

// want+1 "names unknown analyzer \"sloppiness\""
//coalvet:allow sloppiness because reasons

// want+1 "//coalvet:allow maporder needs a justification"
//coalvet:allow maporder

// want+1 "//coalvet:allow wallclock needs a justification"
//coalvet:allow wallclock ok

func placeholder() {}
