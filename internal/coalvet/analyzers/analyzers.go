// Package analyzers implements coalvet's determinism invariants.
//
// The simulator's headline guarantee — byte-identical reports at any
// parallelism, for a given seed — holds only if no sim-path code
// observes wall-clock time, draws from ambient randomness, or lets Go
// map iteration order reach an emitted artifact. These analyzers turn
// that contract from convention into machine-checked rules:
//
//	wallclock      no time.Now/Sleep/... in internal/ sim packages
//	globalrand     no package-level math/rand draws anywhere
//	maporder       no unsorted map iteration in emission paths
//	unitmix        no magic byte/page literals mixed with units types
//	resultretain   exp.Result must not (re)grow device/session refs
//	directivecheck //coalvet: directives must be well-formed and live
//	seedlane       no loop-index arithmetic reaching a rand seed
//	goroutinebound no goroutine-per-element spawns in data-sized loops
//	atomiccounter  no shared telemetry mutation from spawned goroutines
//	atomicwrite    artifact writes go temp-then-rename
//	floatfold      no float accumulation over a map range
//
// The last five are interprocedural: they compose across functions
// through a per-package call graph and value taint, and across
// packages through one JSON fact per (package, analyzer) carried on
// the go vet unitchecker protocol (see internal/coalvet/analysis).
//
// Suppression: a justified `//coalvet:allow <analyzer> <reason>` on or
// directly above the offending line (see the directive package).
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"coalqoe/internal/coalvet/analysis"
)

// ModulePath is the import-path root of this repository. Analyzer
// scoping keys off it so the suite stays silent on dependencies when
// driven by `go vet -vettool`, which visits every package in the
// build graph.
const ModulePath = "coalqoe"

// internalPrefix covers the simulator packages.
const internalPrefix = ModulePath + "/internal/"

// toolingPrefix covers coalvet itself, which is build tooling rather
// than a simulation path: its transient maps and diagnostics never
// feed an experiment report.
const toolingPrefix = ModulePath + "/internal/coalvet"

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Atomiccounter,
		Atomicwrite,
		Directivecheck,
		Floatfold,
		Globalrand,
		Goroutinebound,
		Maporder,
		Resultretain,
		Seedlane,
		Unitmix,
		Wallclock,
	}
}

// inModule reports whether the analyzed package belongs to this repo.
func inModule(pkg *types.Package) bool {
	p := pkg.Path()
	return p == ModulePath || strings.HasPrefix(p, ModulePath+"/")
}

// inSimInternal reports whether the package is a simulator-internal
// package (under coalqoe/internal/, excluding coalvet's own tooling).
func inSimInternal(pkg *types.Package) bool {
	p := pkg.Path()
	return strings.HasPrefix(p, internalPrefix) && !strings.HasPrefix(p, toolingPrefix)
}

// calleeFunc resolves the *types.Func a selector or identifier
// expression uses, or nil.
func usedFunc(info *types.Info, id *ast.Ident) *types.Func {
	obj := info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// isPkgLevelFunc reports whether fn is a package-level function (not a
// method) of the given package path.
func isPkgLevelFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
