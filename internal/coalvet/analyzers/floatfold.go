package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"coalqoe/internal/coalvet/analysis"
)

// Floatfold enforces: floating-point accumulation never folds over a
// nondeterministically-ordered range. Float addition is not
// associative, so `for _, v := range m { sum += v }` over a Go map
// produces a different low bit on different runs — which the digest
// oracle then amplifies into a full report mismatch, the hardest
// class of flake PR 5's determinism battery had to chase. maporder
// catches map iteration that reaches emitted output; this analyzer
// catches the subtler half: the fold itself, including folds hidden
// one call down (`for _, v := range m { acc.add(v) }` where add does
// `a.total += v`), via the fact chain. The fix is the same sorted-
// keys idiom maporder prescribes — ranging over a sorted key slice
// is invisible to this check by construction. Integer and
// time.Duration accumulation is exact and exempt.
var Floatfold = &analysis.Analyzer{
	Name: "floatfold",
	Doc: "forbid float += / *= accumulation fed by a map range (directly or through a helper); " +
		"float folds are order-sensitive — iterate sorted keys (see maporder) or accumulate integers",
	Facts: true,
	Run:   runFloatfold,
}

// floatfoldFact records which functions fold a float parameter into
// state that outlives the call.
type floatfoldFact struct {
	AccumParams map[string][]int `json:"accum_params,omitempty"`
}

// ffFacts resolves accumulation facts for local and imported callees.
type ffFacts struct {
	pass     *analysis.Pass
	local    *floatfoldFact
	imported map[string]*floatfoldFact
}

func (ff *ffFacts) accumParams(fn *types.Func) []int {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	var t *floatfoldFact
	if fn.Pkg() == ff.pass.Pkg {
		t = ff.local
	} else {
		path := fn.Pkg().Path()
		var ok bool
		if t, ok = ff.imported[path]; !ok {
			t = new(floatfoldFact)
			if !ff.pass.ImportFact(path, t) {
				t = &floatfoldFact{}
			}
			ff.imported[path] = t
		}
	}
	return t.AccumParams[analysis.FuncKey(fn)]
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isCompoundFold reports whether op is an order-sensitive compound
// assignment operator over floats.
func isCompoundFold(op token.Token) bool {
	switch op {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

func runFloatfold(pass *analysis.Pass) error {
	if !inModule(pass.Pkg) {
		return nil
	}
	cg := analysis.BuildCallGraph(pass.TypesInfo, pass.Files)
	facts := computeFloatfoldFacts(pass, cg)
	ff := &ffFacts{pass: pass, local: facts, imported: make(map[string]*floatfoldFact)}
	if len(facts.AccumParams) > 0 {
		if err := pass.ExportFact(facts); err != nil {
			return err
		}
	}
	for _, fi := range cg.Funcs {
		if pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		checkFloatfoldFunc(pass, ff, fi)
	}
	return nil
}

// computeFloatfoldFacts marks, to a fixpoint, functions that fold a
// float parameter into persistent state: a compound assignment to a
// field, element, or dereference (not a plain local — locals die with
// the call), or a hand-off to another known accumulator.
func computeFloatfoldFacts(pass *analysis.Pass, cg *analysis.CallGraph) *floatfoldFact {
	facts := &floatfoldFact{AccumParams: make(map[string][]int)}
	ff := &ffFacts{pass: pass, local: facts, imported: make(map[string]*floatfoldFact)}
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.Funcs {
			if pass.InTestFile(fi.Decl.Pos()) {
				continue
			}
			sig, ok := fi.Fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			key := analysis.FuncKey(fi.Fn)
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if !isFloat(p.Type()) || containsInt(facts.AccumParams[key], i) {
					continue
				}
				t := analysis.NewTaint(pass.TypesInfo)
				t.Add(p)
				t.Flood(fi.Decl.Body)
				accumulates := false
				ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
					if accumulates {
						return false
					}
					switch n := n.(type) {
					case *ast.AssignStmt:
						if isCompoundFold(n.Tok) && len(n.Lhs) == 1 && len(n.Rhs) == 1 &&
							isFloat(pass.TypesInfo.TypeOf(n.Lhs[0])) &&
							isPersistentTarget(n.Lhs[0]) && t.Tainted(n.Rhs[0]) {
							accumulates = true
						}
					case *ast.CallExpr:
						fn := analysis.Callee(pass.TypesInfo, n)
						for _, j := range ff.accumParams(fn) {
							if j < len(n.Args) && t.Tainted(n.Args[j]) {
								accumulates = true
							}
						}
					}
					return true
				})
				if accumulates {
					facts.AccumParams[key] = append(facts.AccumParams[key], i)
					changed = true
				}
			}
		}
	}
	if len(facts.AccumParams) == 0 {
		facts.AccumParams = nil
	}
	return facts
}

// isPersistentTarget reports whether an assignment target outlives
// the enclosing call: a field, an element, or a pointer dereference.
func isPersistentTarget(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// checkFloatfoldFunc reports order-sensitive float folds inside map
// ranges. Reported positions are deduplicated per function: nested
// ranges can reach the same assignment twice.
func checkFloatfoldFunc(pass *analysis.Pass, ff *ffFacts, fi *analysis.FuncInfo) {
	info := pass.TypesInfo
	seen := make(map[token.Pos]bool)
	reportOnce := func(pos token.Pos, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tx := info.TypeOf(rng.X)
		if tx == nil {
			return true
		}
		if _, ok := tx.Underlying().(*types.Map); !ok {
			return true
		}
		t := analysis.NewTaint(info)
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				t.Add(info.ObjectOf(id))
			}
		}
		t.Flood(rng.Body)
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				lhs, rhs := n.Lhs[0], n.Rhs[0]
				if !isFloat(info.TypeOf(lhs)) || !outlivesIteration(info, lhs, rng.Body) {
					return true
				}
				if isCompoundFold(n.Tok) && t.Tainted(rhs) {
					reportOnce(n.Pos(),
						"float accumulation over a map range is order-sensitive (float addition is not associative); "+
							"iterate sorted keys instead — see maporder's sorted-keys idiom [floatfold]")
				}
				// The spelled-out form: x = x + v.
				if n.Tok == token.ASSIGN {
					if be, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok && isFoldOp(be.Op) {
						lstr := types.ExprString(lhs)
						for _, operand := range [2]ast.Expr{be.X, be.Y} {
							other := be.Y
							if operand == be.Y {
								other = be.X
							}
							if types.ExprString(operand) == lstr && t.Tainted(other) {
								reportOnce(n.Pos(),
									"float accumulation over a map range is order-sensitive (float addition is not associative); "+
										"iterate sorted keys instead — see maporder's sorted-keys idiom [floatfold]")
							}
						}
					}
				}
			case *ast.CallExpr:
				fn := analysis.Callee(info, n)
				for _, j := range ff.accumParams(fn) {
					if j < len(n.Args) && t.Tainted(n.Args[j]) {
						reportOnce(n.Pos(),
							"%s folds this map-range value into float state; the fold order is nondeterministic — "+
								"iterate sorted keys instead (see maporder) [floatfold]", fn.Name())
					}
				}
			}
			return true
		})
		return true
	})
}

func isFoldOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

// outlivesIteration reports whether the assignment target survives a
// single loop iteration: persistent storage always does, a local only
// if it was declared outside the loop body.
func outlivesIteration(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	if isPersistentTarget(e) {
		return true
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	return obj != nil && !analysis.EnclosesPos(body, obj.Pos())
}
