package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestGlobalrand(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Globalrand,
		"coalqoe/internal/grbad", // failing fixture (incl. v2 and a test file)
		"coalqoe/internal/grok",  // passing fixture
	)
}
