package analyzers

import (
	"go/ast"
	"go/types"

	"coalqoe/internal/coalvet/analysis"
)

// Atomiccounter enforces: telemetry instruments are mutated by one
// goroutine at a time. Counter.Inc, Gauge.Set and friends are plain
// loads and stores — deliberately, so the sim's hot path pays no
// atomic traffic — which is safe only under the engine's
// flush-after-drain discipline: workers accumulate privately and the
// coordinator folds into the shared registry after wg.Wait(). The
// PR-6 fleet build broke that by capturing a *telemetry.Counter in
// per-user goroutines; the loss was silent (dropped increments, not
// crashes) and surfaced as impossible rebuffer ratios. The analyzer
// flags any instrument mutation inside a goroutine body when the
// instrument is shared with the spawner, following helper calls
// through the fact chain. A body that takes a mutex is trusted.
var Atomiccounter = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc: "forbid mutating shared telemetry instruments (Counter/Gauge/Histogram) from spawned goroutines; " +
		"they are not atomic — accumulate per-worker and flush after the drain, or hold a mutex",
	Facts: true,
	Run:   runAtomiccounter,
}

// atomiccounterFact records which functions mutate telemetry
// instruments reachable from their parameters or receiver.
type atomiccounterFact struct {
	// MutatesParams maps FuncKey -> parameter indices whose instrument
	// (or a struct holding one) the function mutates.
	MutatesParams map[string][]int `json:"mutates_params,omitempty"`
	// MutatesRecv lists method keys that mutate instruments reachable
	// from their receiver.
	MutatesRecv []string `json:"mutates_recv,omitempty"`
}

// telemetryPath is the instrument-defining package.
const telemetryPath = ModulePath + "/internal/telemetry"

// instrumentMutators are the non-atomic write methods on telemetry
// instrument types. Read-side methods (Value, Count, Quantile) are
// racy too, but the write side is where increments vanish.
var instrumentMutators = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Max": true, "Observe": true,
}

// instrumentMutation returns the receiver expression of a telemetry
// mutator call, or nil.
func instrumentMutation(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || !instrumentMutators[fn.Name()] {
		return nil
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != telemetryPath {
		return nil
	}
	return sel.X
}

// acFacts resolves mutation facts for local and imported callees.
type acFacts struct {
	pass     *analysis.Pass
	local    *atomiccounterFact
	imported map[string]*atomiccounterFact
}

func (af *acFacts) tables(fn *types.Func) *atomiccounterFact {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg() == af.pass.Pkg {
		return af.local
	}
	path := fn.Pkg().Path()
	if f, ok := af.imported[path]; ok {
		return f
	}
	f := new(atomiccounterFact)
	if !af.pass.ImportFact(path, f) {
		f = &atomiccounterFact{}
	}
	af.imported[path] = f
	return f
}

func (af *acFacts) mutatesParams(fn *types.Func) []int {
	if t := af.tables(fn); t != nil {
		return t.MutatesParams[analysis.FuncKey(fn)]
	}
	return nil
}

func (af *acFacts) mutatesRecv(fn *types.Func) bool {
	t := af.tables(fn)
	if t == nil {
		return false
	}
	key := analysis.FuncKey(fn)
	for _, k := range t.MutatesRecv {
		if k == key {
			return true
		}
	}
	return false
}

func runAtomiccounter(pass *analysis.Pass) error {
	if !inModule(pass.Pkg) {
		return nil
	}
	cg := analysis.BuildCallGraph(pass.TypesInfo, pass.Files)
	facts := computeAtomiccounterFacts(pass, cg)
	af := &acFacts{pass: pass, local: facts, imported: make(map[string]*atomiccounterFact)}
	if len(facts.MutatesParams) > 0 || len(facts.MutatesRecv) > 0 {
		if err := pass.ExportFact(facts); err != nil {
			return err
		}
	}
	for _, fi := range cg.Funcs {
		if pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		checkAtomiccounterFunc(pass, af, fi)
	}
	return nil
}

// computeAtomiccounterFacts finds, to a fixpoint, every function that
// mutates an instrument rooted at a parameter or the receiver —
// directly, or by handing it to another known mutator.
func computeAtomiccounterFacts(pass *analysis.Pass, cg *analysis.CallGraph) *atomiccounterFact {
	facts := &atomiccounterFact{MutatesParams: make(map[string][]int)}
	af := &acFacts{pass: pass, local: facts, imported: make(map[string]*atomiccounterFact)}
	recv := make(map[string]bool)
	rootObj := func(e ast.Expr) types.Object {
		id := analysis.RootIdent(e)
		if id == nil {
			return nil
		}
		return pass.TypesInfo.ObjectOf(id)
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.Funcs {
			if pass.InTestFile(fi.Decl.Pos()) {
				continue
			}
			sig, ok := fi.Fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			key := analysis.FuncKey(fi.Fn)
			var recvObj types.Object
			if sig.Recv() != nil {
				recvObj = sig.Recv()
			}
			markObj := func(obj types.Object) {
				if obj == nil {
					return
				}
				if obj == recvObj && !recv[key] {
					recv[key] = true
					facts.MutatesRecv = analysis.SortedFactKeys(recv)
					changed = true
				}
				if i := analysis.ParamIndex(sig, obj); i >= 0 && !containsInt(facts.MutatesParams[key], i) {
					facts.MutatesParams[key] = append(facts.MutatesParams[key], i)
					changed = true
				}
			}
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recvExpr := instrumentMutation(pass.TypesInfo, call); recvExpr != nil {
					markObj(rootObj(recvExpr))
					return true
				}
				fn := analysis.Callee(pass.TypesInfo, call)
				for _, j := range af.mutatesParams(fn) {
					if j < len(call.Args) {
						markObj(rootObj(call.Args[j]))
					}
				}
				if af.mutatesRecv(fn) {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						markObj(rootObj(sel.X))
					}
				}
				return true
			})
		}
	}
	if len(facts.MutatesParams) == 0 {
		facts.MutatesParams = nil
	}
	return facts
}

// checkAtomiccounterFunc reports instrument mutations that race with
// the spawning goroutine.
func checkAtomiccounterFunc(pass *analysis.Pass, af *acFacts, fi *analysis.FuncInfo) {
	info := pass.TypesInfo
	rootObj := func(e ast.Expr) types.Object {
		id := analysis.RootIdent(e)
		if id == nil {
			return nil
		}
		return info.ObjectOf(id)
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			// Direct spawn of a named function: any instrument it is
			// known to mutate is by construction shared with us.
			fn := analysis.Callee(info, g.Call)
			for _, j := range af.mutatesParams(fn) {
				if j < len(g.Call.Args) && rootObj(g.Call.Args[j]) != nil {
					pass.Reportf(g.Pos(),
						"goroutine mutates the telemetry instrument passed to %s; Counter/Gauge writes are not atomic — "+
							"accumulate per-worker and flush after the drain [atomiccounter]", fn.Name())
				}
			}
			if af.mutatesRecv(fn) {
				if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok && rootObj(sel.X) != nil {
					pass.Reportf(g.Pos(),
						"goroutine mutates telemetry instruments through %s's receiver; writes are not atomic — "+
							"accumulate per-worker and flush after the drain [atomiccounter]", fn.Name())
				}
			}
			return true
		}
		body := lit.Body
		if bodyTakesMutex(body) {
			return true
		}
		sharedWithSpawner := func(e ast.Expr) bool {
			obj := rootObj(e)
			return obj != nil && !analysis.EnclosesPos(body, obj.Pos())
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false // nested spawns get their own visit
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recvExpr := instrumentMutation(info, call); recvExpr != nil {
				if sharedWithSpawner(recvExpr) {
					pass.Reportf(call.Pos(),
						"telemetry instrument captured from the spawning goroutine is mutated here; writes are not atomic — "+
							"accumulate per-worker and flush after the drain (post-Wait), or hold a mutex [atomiccounter]")
				}
				return true
			}
			fn := analysis.Callee(info, call)
			for _, j := range af.mutatesParams(fn) {
				if j < len(call.Args) && sharedWithSpawner(call.Args[j]) {
					pass.Reportf(call.Pos(),
						"%s mutates a telemetry instrument captured from the spawning goroutine; writes are not atomic — "+
							"accumulate per-worker and flush after the drain (post-Wait), or hold a mutex [atomiccounter]", fn.Name())
				}
			}
			if af.mutatesRecv(fn) {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sharedWithSpawner(sel.X) {
					pass.Reportf(call.Pos(),
						"%s mutates telemetry instruments through a receiver captured from the spawning goroutine; "+
							"accumulate per-worker and flush after the drain (post-Wait), or hold a mutex [atomiccounter]", fn.Name())
				}
			}
			return true
		})
		return true
	})
}

// bodyTakesMutex reports whether the goroutine body acquires any
// mutex (a .Lock() call). Coarse on purpose: a body that locks at all
// has opted into explicit synchronization, and pairing each mutation
// with its guard is beyond a linter's pay grade.
func bodyTakesMutex(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
				found = true
			}
		}
		return !found
	})
	return found
}
