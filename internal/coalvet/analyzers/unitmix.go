package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"coalqoe/internal/coalvet/analysis"
)

// unitmixThreshold is the smallest magic literal worth flagging.
// Small scalars (2*x, x+1, comparisons against counts) are everyday
// arithmetic; 1024 and up is where byte/KiB/page confusion lives
// (1024, 4096, 1<<20, ...). Named constants — units.KiB, PageSize, a
// local const — always pass, which is the point: give the number a
// name that carries its unit.
const unitmixThreshold = 1024

// unitmixOps are the arithmetic and comparison operators checked.
var unitmixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.QUO: true, token.REM: true,
	token.LSS: true, token.LEQ: true, token.GTR: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

// Unitmix enforces: raw integer literals >= 1024 never mix with
// units.Bytes or units.Pages values — arithmetically, in comparisons,
// or via direct conversion. Byte/page confusion ("is that 4096 bytes
// or 4096 pages = 16 MiB?") is the classic source of silently wrong
// memory accounting; a named constant (units.KiB, units.PageSize, or
// a declared const) documents the unit and satisfies the analyzer.
var Unitmix = &analysis.Analyzer{
	Name: "unitmix",
	Doc: "forbid raw integer literals >= 1024 in arithmetic/comparisons with units.Bytes or units.Pages values " +
		"(and in conversions like units.Bytes(4096)); use units.KiB/MiB/GiB/PageSize or a named constant",
	Run: runUnitmix,
}

func runUnitmix(pass *analysis.Pass) error {
	if !inModule(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if !unitmixOps[e.Op] {
					return true
				}
				xUnit := unitTypeName(pass.TypesInfo.TypeOf(e.X))
				yUnit := unitTypeName(pass.TypesInfo.TypeOf(e.Y))
				if xUnit != "" && magicLiteral(pass, e.Y) {
					reportUnitmix(pass, e.Y, xUnit)
				} else if yUnit != "" && magicLiteral(pass, e.X) {
					reportUnitmix(pass, e.X, yUnit)
				}
			case *ast.CallExpr:
				// Conversion: units.Bytes(4096), units.Pages(1<<20).
				if len(e.Args) != 1 {
					return true
				}
				tv, ok := pass.TypesInfo.Types[e.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				if name := unitTypeName(tv.Type); name != "" && magicLiteral(pass, e.Args[0]) {
					reportUnitmix(pass, e.Args[0], name)
				}
			}
			return true
		})
	}
	return nil
}

func reportUnitmix(pass *analysis.Pass, lit ast.Expr, unit string) {
	pass.Reportf(lit.Pos(),
		"raw literal %v mixed with %s; name the quantity (units.KiB/MiB/GiB/PageSize or a declared const) so the unit is explicit [unitmix]",
		pass.TypesInfo.Types[lit].Value, unit)
}

// unitsPkgPath is where the byte/page types live.
const unitsPkgPath = ModulePath + "/internal/units"

// unitTypeName returns "units.Bytes" or "units.Pages" if t is (or
// points to) one of the unit types, else "".
func unitTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return ""
	}
	switch obj.Name() {
	case "Bytes", "Pages":
		return "units." + obj.Name()
	}
	return ""
}

// magicLiteral reports whether e is a compile-time integer constant
// of magnitude >= unitmixThreshold built purely from literals — i.e.
// no named constant anywhere in the expression.
func magicLiteral(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	abs := tv.Value
	if constant.Sign(abs) < 0 {
		abs = constant.UnaryOp(token.SUB, abs, 0)
	}
	if constant.Compare(abs, token.LSS, constant.MakeInt64(unitmixThreshold)) {
		return false
	}
	return literalOnly(e)
}

// literalOnly reports whether the expression tree consists solely of
// literals and operators (no identifiers or selectors, which would
// mean a named constant is involved).
func literalOnly(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return literalOnly(e.X)
	case *ast.UnaryExpr:
		return literalOnly(e.X)
	case *ast.BinaryExpr:
		return literalOnly(e.X) && literalOnly(e.Y)
	default:
		return false
	}
}
