package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestResultretain(t *testing.T) {
	// The failing fixture must live at exactly coalqoe/internal/exp (the
	// guarded package path), so the scalar-only passing fixture needs a
	// second root to coexist.
	vettest.Run(t, "testdata/src", analyzers.Resultretain, "coalqoe/internal/exp")
	vettest.Run(t, "testdata/src2", analyzers.Resultretain, "coalqoe/internal/exp")
}
