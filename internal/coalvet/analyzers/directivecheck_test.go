package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestDirectivecheck(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Directivecheck,
		"coalqoe/internal/dcbad", // failing fixture (offset-form wants)
		"coalqoe/internal/dcok",  // passing fixture
	)
}

// TestStaleDirectives drives wallclock over a fixture whose
// directives are a mix of used, unused-for-a-ran-analyzer (stale,
// reported under directivecheck), and unused-for-an-analyzer-that-
// did-not-run (left alone).
func TestStaleDirectives(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Wallclock,
		"coalqoe/internal/dcstale",
	)
}
