package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestDirectivecheck(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Directivecheck,
		"coalqoe/internal/dcbad", // failing fixture (offset-form wants)
		"coalqoe/internal/dcok",  // passing fixture
	)
}
