package analyzers

import (
	"go/ast"

	"coalqoe/internal/coalvet/analysis"
)

// wallclockBanned lists the package-level time functions that observe
// or depend on the machine's real clock. Referencing one of these —
// called or passed as a value — from a simulator package makes run
// output depend on host timing.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// wallclockExempt lists internal packages that legitimately own real
// time: simclock is the virtual-time authority and is what everything
// else must use instead.
var wallclockExempt = map[string]bool{
	ModulePath + "/internal/simclock": true,
}

// Wallclock enforces: simulator packages never read the wall clock.
// All time must flow through an injected *simclock.Clock (sim paths)
// or an injected now/sleep func wired up in cmd/ (real-IO paths such
// as the HTTP examples). Test files are exempt — timeouts and
// benchmark timing are legitimate there.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Until/Sleep/Tick/After/AfterFunc/NewTimer/NewTicker in coalqoe/internal/... " +
		"(except internal/simclock); inject a clock instead so runs are reproducible at any parallelism",
	Run: runWallclock,
}

func runWallclock(pass *analysis.Pass) error {
	if !inSimInternal(pass.Pkg) || wallclockExempt[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := usedFunc(pass.TypesInfo, sel.Sel)
			if isPkgLevelFunc(fn, "time") && wallclockBanned[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in simulator package %s; use an injected clock (simclock.Clock or a now/sleep func wired in cmd/) [wallclock]",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
