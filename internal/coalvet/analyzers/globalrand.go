package analyzers

import (
	"go/ast"

	"coalqoe/internal/coalvet/analysis"
)

// globalrandConstructors are the math/rand package-level functions
// that build an explicitly seeded generator rather than drawing from
// the shared global source. Everything else at package level is a
// draw from (or a mutation of) process-global state.
var globalrandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Globalrand enforces: all randomness comes from an injected
// *rand.Rand. The experiment runner derives one seed lane per grid
// cell (stable FNV hash of the cell's conditions, PR 1); a single
// global draw anywhere re-couples the cells and breaks run-to-run
// reproducibility. Unlike wallclock this applies to the whole module
// including cmd/ and test files — a global draw is never needed when
// constructors are allowed.
var Globalrand = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand and math/rand/v2 draws (rand.Intn, rand.Float64, rand.Shuffle, rand.Seed, ...); " +
		"randomness must come from an injected, explicitly seeded *rand.Rand",
	Run: runGlobalrand,
}

func runGlobalrand(pass *analysis.Pass) error {
	if !inModule(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := usedFunc(pass.TypesInfo, sel.Sel)
			if fn == nil || globalrandConstructors[fn.Name()] {
				return true
			}
			if isPkgLevelFunc(fn, "math/rand") || isPkgLevelFunc(fn, "math/rand/v2") {
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the process-global random source; use an injected *rand.Rand from the experiment's seed lane [globalrand]",
					fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}
