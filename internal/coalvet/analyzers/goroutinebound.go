package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"coalqoe/internal/coalvet/analysis"
)

// Goroutinebound enforces: never launch one goroutine per data
// element. A loop sized by the workload (range over a slice/map,
// counting up to len(...)) that contains a bare `go` statement scales
// its goroutine count with input size — the PR-6 fleet regression
// spawned one goroutine per simulated user and gated *inside* the
// goroutine body, so 50k users meant 50k live stacks before the
// semaphore ever throttled anything. The fix is to bound creation:
// a fixed worker pool over a claim counter, or a semaphore acquired
// in the loop before the spawn. Loops bounded by capacity (a worker
// count, NumCPU) are fine; so are loops that block on a channel
// outside the spawned body. The fact chain extends the check through
// helpers: calling a function that spawns-per-call from a data-sized
// loop is the same bug one frame down.
var Goroutinebound = &analysis.Analyzer{
	Name: "goroutinebound",
	Doc: "forbid unbounded goroutine creation: no bare `go` (or call to a spawning helper) inside a data-sized loop; " +
		"bound creation with a worker pool or a semaphore acquired before the spawn",
	Facts: true,
	Run:   runGoroutinebound,
}

// goroutineboundFact lists functions that launch at least one
// goroutine per call and do not join it before returning, so callers
// inherit the spawn.
type goroutineboundFact struct {
	SpawnsPerCall []string `json:"spawns_per_call,omitempty"`
}

// gbFacts resolves spawn facts for local and imported callees.
type gbFacts struct {
	pass     *analysis.Pass
	local    map[string]bool
	imported map[string]map[string]bool
}

func (gf *gbFacts) spawnsPerCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg() == gf.pass.Pkg {
		return gf.local[analysis.FuncKey(fn)]
	}
	path := fn.Pkg().Path()
	set, ok := gf.imported[path]
	if !ok {
		set = make(map[string]bool)
		var f goroutineboundFact
		if gf.pass.ImportFact(path, &f) {
			for _, k := range f.SpawnsPerCall {
				set[k] = true
			}
		}
		gf.imported[path] = set
	}
	return set[analysis.FuncKey(fn)]
}

func runGoroutinebound(pass *analysis.Pass) error {
	if !inModule(pass.Pkg) {
		return nil
	}
	cg := analysis.BuildCallGraph(pass.TypesInfo, pass.Files)
	gf := &gbFacts{pass: pass, local: make(map[string]bool), imported: make(map[string]map[string]bool)}
	computeSpawnFacts(pass, cg, gf)
	if len(gf.local) > 0 {
		fact := goroutineboundFact{SpawnsPerCall: analysis.SortedFactKeys(gf.local)}
		if err := pass.ExportFact(fact); err != nil {
			return err
		}
	}
	for _, fi := range cg.Funcs {
		if pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		checkGoroutineboundFunc(pass, gf, fi)
	}
	return nil
}

// computeSpawnFacts marks every function that starts a goroutine (or
// transitively calls something that does) without a join (.Wait) in
// its own body. Joined spawns return with their goroutines drained,
// so the caller inherits nothing.
func computeSpawnFacts(pass *analysis.Pass, cg *analysis.CallGraph, gf *gbFacts) {
	joins := make(map[*analysis.FuncInfo]bool)
	for _, fi := range cg.Funcs {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					joins[fi] = true
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.Funcs {
			if pass.InTestFile(fi.Decl.Pos()) || joins[fi] {
				continue
			}
			key := analysis.FuncKey(fi.Fn)
			if gf.local[key] {
				continue
			}
			spawns := false
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					spawns = true
				}
				return !spawns
			})
			if !spawns {
				for _, call := range fi.Calls {
					if gf.spawnsPerCall(analysis.Callee(pass.TypesInfo, call)) {
						spawns = true
						break
					}
				}
			}
			if spawns {
				gf.local[key] = true
				changed = true
			}
		}
	}
}

// checkGoroutineboundFunc walks one body with a stack of enclosing
// loops and reports spawns under a data-sized, unbounded one.
func checkGoroutineboundFunc(pass *analysis.Pass, gf *gbFacts, fi *analysis.FuncInfo) {
	type frame struct{ dataSized, bounded bool }
	var stack []frame
	unboundedData := func() bool {
		for _, f := range stack {
			if f.dataSized && !f.bounded {
				return true
			}
		}
		return false
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				stack = append(stack, frame{
					dataSized: forLoopDataSized(pass, fi, n),
					bounded:   loopHasBound(n.Body),
				})
				if n.Init != nil {
					walk(n.Init)
				}
				if n.Cond != nil {
					walk(n.Cond)
				}
				if n.Post != nil {
					walk(n.Post)
				}
				walk(n.Body)
				stack = stack[:len(stack)-1]
				return false
			case *ast.RangeStmt:
				stack = append(stack, frame{
					dataSized: rangeDataSized(pass, fi, n),
					bounded:   loopHasBound(n.Body),
				})
				walk(n.X)
				walk(n.Body)
				stack = stack[:len(stack)-1]
				return false
			case *ast.GoStmt:
				if unboundedData() {
					pass.Reportf(n.Pos(),
						"goroutine launched per element of a data-sized loop with no bound on creation; "+
							"gate before spawning (worker pool over a claim counter, or semaphore acquired in the loop) [goroutinebound]")
				}
			case *ast.CallExpr:
				fn := analysis.Callee(pass.TypesInfo, n)
				if gf.spawnsPerCall(fn) && unboundedData() {
					pass.Reportf(n.Pos(),
						"%s launches a goroutine per call and is invoked per element of a data-sized loop; "+
							"bound creation with a worker pool or semaphore before the call [goroutinebound]", fn.Name())
				}
			}
			return true
		})
	}
	walk(fi.Decl.Body)
}

// rangeDataSized reports whether the range statement iterates once
// per data element.
func rangeDataSized(pass *analysis.Pass, fi *analysis.FuncInfo, n *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(n.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map, *types.Chan:
		return true
	case *types.Basic:
		// range over an integer: sized by whatever the bound is.
		return boundDataSized(pass, fi, n.X, nil, 0)
	}
	return false
}

// forLoopDataSized reports whether a counting loop's bound is the
// size of a collection (`i < len(xs)`, `i < n` where n := len(xs))
// rather than a capacity (a worker count, NumCPU). Unknown shapes are
// not data-sized: under-approximating here can miss a spawn but never
// flags a legitimate fixed-width pool.
func forLoopDataSized(pass *analysis.Pass, fi *analysis.FuncInfo, n *ast.ForStmt) bool {
	be, ok := ast.Unparen(n.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LSS, token.LEQ:
		return boundDataSized(pass, fi, be.Y, nil, 0)
	}
	return false
}

// boundDataSized reports whether the expression measures a data
// collection. Identifiers are traced through straight-line
// assignments in the enclosing function; assignments nested under an
// if are skipped, because the dominant shape there is a min-clamp
// (`if workers > len(jobs) { workers = len(jobs) }`) that makes the
// variable capacity-bounded, not data-bounded.
func boundDataSized(pass *analysis.Pass, fi *analysis.FuncInfo, e ast.Expr, seen map[types.Object]bool, depth int) bool {
	if depth > 4 {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "len" || fun.Name == "cap" {
				if _, isBuiltin := pass.TypesInfo.ObjectOf(fun).(*types.Builtin); isBuiltin {
					return true
				}
			}
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Len", "Size", "Count":
				return true
			}
		}
		// A type conversion is transparent.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return boundDataSized(pass, fi, e.Args[0], seen, depth+1)
		}
	case *ast.BinaryExpr:
		return boundDataSized(pass, fi, e.X, seen, depth+1) ||
			boundDataSized(pass, fi, e.Y, seen, depth+1)
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil || seen[obj] {
			return false
		}
		if seen == nil {
			seen = make(map[types.Object]bool)
		}
		seen[obj] = true
		found := false
		var inIf int
		var scan func(n ast.Node) bool
		scan = func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.IfStmt:
				if n.Init != nil {
					ast.Inspect(n.Init, scan)
				}
				inIf++
				ast.Inspect(n.Body, scan)
				if n.Else != nil {
					ast.Inspect(n.Else, scan)
				}
				inIf--
				return false
			case *ast.AssignStmt:
				if inIf > 0 || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						if boundDataSized(pass, fi, n.Rhs[i], seen, depth+1) {
							found = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, name := range n.Names {
					if pass.TypesInfo.ObjectOf(name) == obj {
						if boundDataSized(pass, fi, n.Values[i], seen, depth+1) {
							found = true
						}
					}
				}
			}
			return true
		}
		ast.Inspect(fi.Decl.Body, scan)
		return found
	}
	return false
}

// loopHasBound reports whether the loop body itself contains a
// creation bound: a channel send or receive, or a semaphore Acquire,
// executed in the loop — not inside the spawned goroutine's body,
// where it gates execution but not creation (the PR-6 mistake).
// A .Wait() in the loop serializes it outright.
func loopHasBound(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // gating inside the goroutine bounds nothing
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Acquire", "Wait":
					found = true
				}
			}
		}
		return !found
	})
	return found
}
