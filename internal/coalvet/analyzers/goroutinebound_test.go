package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestGoroutinebound(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Goroutinebound,
		"coalqoe/internal/gbbad", // failing fixture (incl. the PR-6 spawn-then-gate shape)
		"coalqoe/internal/gbok",  // passing fixture (worker pool, gate-before-spawn)
	)
}
