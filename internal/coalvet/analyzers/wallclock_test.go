package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestWallclock(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Wallclock,
		"coalqoe/internal/wallclockbad", // failing fixture
		"coalqoe/internal/wallclockok",  // passing fixture
		"coalqoe/internal/simclock",     // exempt package
		"coalqoe/cmd/clocktool",         // cmd/ is out of scope
	)
}
