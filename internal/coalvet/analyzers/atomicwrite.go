package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"coalqoe/internal/coalvet/analysis"
)

// Atomicwrite enforces: result artifacts are written
// temp-then-rename. A crash (or a concurrent reader — the dash
// server polls report files) midway through os.WriteFile leaves a
// torn artifact that parses as a truncated-but-valid CSV or JSON
// prefix; the engine's checkpoint writer (writeCheckpoint) has done
// this correctly since PR 5, the cmd/ report writers had not. A
// write is clean when its destination is a temp-marked path (a
// ".tmp"/".partial"/"~" suffix baked into the name), because the
// temp file is not the artifact — the rename is, and os.Rename is
// atomic on POSIX. Writes through a helper are tracked by fact:
// a function that writes to a path taken from its parameter makes
// every call site a write site.
var Atomicwrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "forbid non-atomic artifact writes (os.WriteFile/os.Create on the final path); " +
		"write to a temp-marked path and os.Rename over the destination (see internal/atomicio)",
	Facts: true,
	Run:   runAtomicwrite,
}

// atomicwriteFact records which functions write a file at a path
// taken from a parameter, making the caller responsible for atomicity.
type atomicwriteFact struct {
	WriteParams map[string][]int `json:"write_params,omitempty"`
}

// tempSuffixes mark a path as a scratch destination.
var tempSuffixes = []string{".tmp", ".partial", "~"}

func hasTempSuffix(s string) bool {
	for _, suf := range tempSuffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

// awFacts resolves write facts for local and imported callees.
type awFacts struct {
	pass     *analysis.Pass
	local    *atomicwriteFact
	imported map[string]*atomicwriteFact
}

func (wf *awFacts) writeParams(fn *types.Func) []int {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	var t *atomicwriteFact
	if fn.Pkg() == wf.pass.Pkg {
		t = wf.local
	} else {
		path := fn.Pkg().Path()
		var ok bool
		if t, ok = wf.imported[path]; !ok {
			t = new(atomicwriteFact)
			if !wf.pass.ImportFact(path, t) {
				t = &atomicwriteFact{}
			}
			wf.imported[path] = t
		}
	}
	return t.WriteParams[analysis.FuncKey(fn)]
}

// osWritePath returns the destination-path argument of a direct
// file-creating call (os.WriteFile, os.Create, writing os.OpenFile),
// or nil.
func osWritePath(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := analysis.Callee(info, call)
	if fn == nil || !isPkgLevelFunc(fn, "os") || len(call.Args) == 0 {
		return nil
	}
	switch fn.Name() {
	case "WriteFile", "Create":
		return call.Args[0]
	case "OpenFile":
		// Only creation/write modes; a read-only OpenFile is not a
		// write site. The flag argument is matched lexically.
		if len(call.Args) >= 2 && flagsWrite(call.Args[1]) {
			return call.Args[0]
		}
	}
	return nil
}

func flagsWrite(e ast.Expr) bool {
	write := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "O_CREATE", "O_WRONLY", "O_RDWR", "O_APPEND", "O_TRUNC":
				write = true
			}
		}
		return !write
	})
	return write
}

// tempTaint builds a taint whose sources are temp-marked string
// constants (literals or named constants like atomicio's tmpSuffix),
// Sprintf formats ending in a temp suffix, and filepath.Join calls
// with a temp-marked component.
func tempTaint(pass *analysis.Pass, body ast.Node) *analysis.Taint {
	t := analysis.NewTaint(pass.TypesInfo)
	t.SourceExpr = func(e ast.Expr) bool {
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return hasTempSuffix(constant.StringVal(tv.Value))
		}
		switch e := e.(type) {
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, e)
			if fn == nil {
				return false
			}
			if isPkgLevelFunc(fn, "fmt") && fn.Name() == "Sprintf" && len(e.Args) > 0 {
				if lit, ok := e.Args[0].(*ast.BasicLit); ok {
					if s, err := strconv.Unquote(lit.Value); err == nil {
						return hasTempSuffix(s)
					}
				}
				return false
			}
			if isPkgLevelFunc(fn, "path/filepath") && fn.Name() == "Join" {
				for _, arg := range e.Args {
					if t.Tainted(arg) {
						return true
					}
				}
			}
		}
		return false
	}
	t.Flood(body)
	return t
}

func runAtomicwrite(pass *analysis.Pass) error {
	if !inModule(pass.Pkg) {
		return nil
	}
	// coalvet itself is exempt: the unitchecker must write the vetx
	// file cmd/go names, verbatim — renaming over it is not ours to do.
	if strings.HasPrefix(pass.Pkg.Path(), toolingPrefix) {
		return nil
	}
	cg := analysis.BuildCallGraph(pass.TypesInfo, pass.Files)
	wf := &awFacts{pass: pass, imported: make(map[string]*atomicwriteFact)}
	wf.local = computeAtomicwriteFacts(pass, cg, wf)
	if len(wf.local.WriteParams) > 0 {
		if err := pass.ExportFact(wf.local); err != nil {
			return err
		}
	}
	for _, fi := range cg.Funcs {
		if pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		checkAtomicwriteFunc(pass, wf, fi)
	}
	return nil
}

// pathFromParam floods each string parameter through the body and
// returns the indices of those that reach the path expression.
func pathFromParam(pass *analysis.Pass, fi *analysis.FuncInfo, path ast.Expr) []int {
	sig, ok := fi.Fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idxs []int
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if b, ok := p.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			continue
		}
		t := analysis.NewTaint(pass.TypesInfo)
		t.Add(p)
		t.Flood(fi.Decl.Body)
		if t.Tainted(path) {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// computeAtomicwriteFacts marks functions whose write destination (a
// direct os write, or an argument to another known writer) is
// derived from a string parameter. Temp-marked destinations export
// nothing: the temp file is scratch, whoever renames it owns the
// artifact.
func computeAtomicwriteFacts(pass *analysis.Pass, cg *analysis.CallGraph, wf *awFacts) *atomicwriteFact {
	facts := &atomicwriteFact{WriteParams: make(map[string][]int)}
	wf.local = facts
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.Funcs {
			if pass.InTestFile(fi.Decl.Pos()) {
				continue
			}
			key := analysis.FuncKey(fi.Fn)
			tt := tempTaint(pass, fi.Decl.Body)
			for _, call := range fi.Calls {
				path := osWritePath(pass.TypesInfo, call)
				if path == nil {
					if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
						for _, j := range wf.writeParams(fn) {
							if j < len(call.Args) {
								path = call.Args[j]
								break
							}
						}
					}
				}
				if path == nil || tt.Tainted(path) {
					continue
				}
				for _, i := range pathFromParam(pass, fi, path) {
					if !containsInt(facts.WriteParams[key], i) {
						facts.WriteParams[key] = append(facts.WriteParams[key], i)
						changed = true
					}
				}
			}
		}
	}
	if len(facts.WriteParams) == 0 {
		facts.WriteParams = nil
	}
	return facts
}

// checkAtomicwriteFunc reports write sites whose destination is
// neither temp-marked nor a parameter (parameter-derived writes are
// the caller's finding, via the fact chain).
func checkAtomicwriteFunc(pass *analysis.Pass, wf *awFacts, fi *analysis.FuncInfo) {
	tt := tempTaint(pass, fi.Decl.Body)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		report := func(path ast.Expr, what string) {
			if tt.Tainted(path) || len(pathFromParam(pass, fi, path)) > 0 {
				return
			}
			pass.Reportf(path.Pos(),
				"%s writes the artifact in place; a crash or concurrent reader sees a torn file — "+
					"write to a temp-marked path and os.Rename over the destination (atomicio.WriteFile / atomicio.Create) [atomicwrite]",
				what)
		}
		if path := osWritePath(pass.TypesInfo, call); path != nil {
			fn := analysis.Callee(pass.TypesInfo, call)
			report(path, "os."+fn.Name())
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
			for _, j := range wf.writeParams(fn) {
				if j < len(call.Args) {
					report(call.Args[j], fn.Name())
				}
			}
		}
		return true
	})
}
