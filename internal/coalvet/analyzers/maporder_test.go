package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestMaporder(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Maporder,
		"coalqoe/internal/mobad", // failing fixture
		"coalqoe/internal/mook",  // passing fixture (sorted idiom, directive)
	)
}
