package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestAtomicwrite(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Atomicwrite,
		"coalqoe/internal/awbad", // failing fixture (in-place writes, direct and via helper)
		"coalqoe/internal/awok",  // passing fixture (temp-then-rename in several spellings)
	)
}
