package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestFloatfold(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Floatfold,
		"coalqoe/internal/ffbad", // failing fixture (map-range folds, direct and via helper)
		"coalqoe/internal/ffok",  // passing fixture (sorted keys, integer folds)
	)
}
