package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"coalqoe/internal/coalvet/analysis"
)

// Maporder enforces: no unordered map iteration in simulator
// packages. Go randomizes map range order per run, so any map range
// whose effects can reach a report row, a plotted series, a trace
// export, or float accumulation silently breaks the byte-identical
// guarantee.
//
// One idiom is recognized as safe and allowed without a directive:
// collecting the keys into a slice whose only use of the loop is
// `keys = append(keys, k)`, followed later in the same function by a
// sort of that slice (sort.Strings/Ints/Slice/..., slices.Sort...).
// Everything else needs either a rewrite to sorted iteration or a
// justified //coalvet:allow maporder directive (e.g. an integer sum,
// which is genuinely order-insensitive — unlike a float sum).
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid ranging over a map in coalqoe/internal/... unless the loop only collects keys that are subsequently sorted; " +
		"map order is randomized per run and breaks byte-identical reports",
	Run: runMaporder,
}

func runMaporder(pass *analysis.Pass) error {
	if !inSimInternal(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Visit every function body; nested function literals are
		// handled by the recursive Inspect from their enclosing
		// declaration, using the innermost body for the sort search.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges reports unsorted map ranges directly inside body
// (nested function literals are visited by their own call).
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // handled when the literal itself is visited
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		// `for range m` binds nothing: the body cannot observe order.
		if bindsNothing(rng) {
			return true
		}
		if keysCollectedThenSorted(pass, rng, body) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"map iteration order is randomized and can reach emitted output; sort the keys first or justify with //coalvet:allow maporder <reason> [maporder]")
		return true
	})
}

// bindsNothing reports whether the range statement binds neither key
// nor value (for range m {...} or for _ = range m, _, _ = ...).
func bindsNothing(rng *ast.RangeStmt) bool {
	isBlank := func(e ast.Expr) bool {
		if e == nil {
			return true
		}
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	return isBlank(rng.Key) && isBlank(rng.Value)
}

// keysCollectedThenSorted recognizes the canonical deterministic
// idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys) // or sort.Slice, slices.Sort, ...
//
// The loop body must be exactly the append of the key into a slice,
// and that slice must be passed to a recognized sort call later in
// the same enclosing function body.
func keysCollectedThenSorted(pass *analysis.Pass, rng *ast.RangeStmt, body *ast.BlockStmt) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" || rng.Value != nil {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	sliceID, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fid, ok := call.Fun.(*ast.Ident); !ok || fid.Name != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(arg0) != pass.TypesInfo.ObjectOf(sliceID) {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(arg1) != pass.TypesInfo.ObjectOf(keyID) {
		return false
	}
	return sortedAfter(pass, body, pass.TypesInfo.ObjectOf(sliceID), rng.End())
}

// sortFuncs maps package path to the sorting functions whose first
// argument orders a slice in place.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether slice (a types.Object) is passed as the
// first argument to a recognized sort call positioned after `after`
// within body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, slice types.Object, after token.Pos) bool {
	if slice == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := usedFunc(pass.TypesInfo, sel.Sel)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names := sortFuncs[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == slice {
			found = true
			return false
		}
		return true
	})
	return found
}
