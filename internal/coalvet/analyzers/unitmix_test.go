package analyzers_test

import (
	"testing"

	"coalqoe/internal/coalvet/analyzers"
	"coalqoe/internal/coalvet/vettest"
)

func TestUnitmix(t *testing.T) {
	vettest.Run(t, "testdata/src", analyzers.Unitmix,
		"coalqoe/internal/umbad", // failing fixture
		"coalqoe/internal/umok",  // passing fixture
	)
}
