// Package unitchecker implements the `go vet -vettool` command-line
// protocol for coalvet on the standard library alone: cmd/go invokes
// the tool once per compilation unit with a JSON .cfg file describing
// the unit's sources and the export-data files of everything it
// imports. The Config layout and behaviour deliberately match
// golang.org/x/tools/go/analysis/unitchecker, which cannot be
// imported here (the build environment has no module proxy), so that
// swapping to the upstream driver later is a one-line change in
// cmd/coalvet.
//
// The protocol, as consumed by cmd/go:
//
//	coalvet -V=full        print a version line for build caching
//	coalvet -flags         print supported flags as JSON
//	coalvet [flags] x.cfg  analyze one unit; diagnostics to stderr,
//	                       non-zero exit if any; always write the
//	                       facts file named by cfg.VetxOutput
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"coalqoe/internal/coalvet/analysis"
	"coalqoe/internal/coalvet/directive"
)

// Config mirrors the JSON compilation-unit description that cmd/go
// writes to <objdir>/vet.cfg. Field names must not change.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // package path -> facts file (unused: no facts)
	VetxOnly                  bool              // facts-only run for a dependency
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool
}

// vetxPlaceholder is what we write as a facts file: coalvet's
// analyzers are fact-free, but cmd/go caches the output file, so its
// content must exist and be deterministic.
var vetxPlaceholder = []byte("coalvet: no facts\n")

// Run executes the suite over the unit described by configFile and
// exits the process: 0 for clean, 1 for diagnostics or errors.
func Run(configFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, vetxPlaceholder, 0o666); err != nil {
			log.Fatalf("coalvet: writing facts placeholder: %v", err)
		}
	}
	// Dependencies are analyzed only for facts, of which we have
	// none; skip the typecheck entirely so `go vet -vettool` stays
	// fast over the standard library's build graph.
	if cfg.VetxOnly {
		os.Exit(0)
	}

	diags, err := analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("coalvet: cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("coalvet: package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// analyze parses and typechecks the unit, runs every analyzer, and
// returns the rendered, position-sorted, directive-filtered
// diagnostics.
func analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tcfg := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	named := Check(fset, files, pkg, info, analyzers)
	out := make([]string, 0, len(named))
	for _, d := range named {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
	}
	return out, nil
}

// Check runs the analyzers over one typechecked package, applies
// //coalvet:allow suppression, and returns position-sorted findings.
// It is shared by this driver and the vettest fixture runner.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) []analysis.NamedDiagnostic {
	idx := directive.NewIndex(fset, files)
	var diags []analysis.NamedDiagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, analysis.NamedDiagnostic{Analyzer: a.Name, Diagnostic: d})
			},
		}
		if err := a.Run(pass); err != nil {
			pass.Reportf(token.NoPos, "analyzer %s failed: %v", a.Name, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		// Directive syntax findings are not suppressible.
		if directive.IsTarget(d.Analyzer) && idx.Allows(d.Analyzer, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	analysis.SortDiagnostics(fset, kept)
	return kept
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
