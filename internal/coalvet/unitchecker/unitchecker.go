// Package unitchecker implements the `go vet -vettool` command-line
// protocol for coalvet on the standard library alone: cmd/go invokes
// the tool once per compilation unit with a JSON .cfg file describing
// the unit's sources and the export-data files of everything it
// imports. The Config layout and behaviour deliberately match
// golang.org/x/tools/go/analysis/unitchecker, which cannot be
// imported here (the build environment has no module proxy), so that
// swapping to the upstream driver later is a one-line change in
// cmd/coalvet.
//
// The protocol, as consumed by cmd/go:
//
//	coalvet -V=full        print a version line for build caching
//	coalvet -flags         print supported flags as JSON
//	coalvet [flags] x.cfg  analyze one unit; diagnostics to stderr,
//	                       non-zero exit if any; always write the
//	                       facts file named by cfg.VetxOutput
//
// Since coalvet grew interprocedural analyzers, the facts file is no
// longer a placeholder: a unit's vetx holds one JSON fact per
// (package, analyzer) — its own plus everything it imported — so
// whole-module properties (a seed parameter three packages away
// reaching rand.NewSource) compose under cmd/go's ordinary build
// caching. Dependency units inside the module are typechecked and run
// in fact-only mode; out-of-module dependencies still short-circuit
// to an empty facts file, keeping `go vet` fast over the standard
// library's build graph.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"

	"coalqoe/internal/coalvet/analysis"
	"coalqoe/internal/coalvet/directive"
)

// Config mirrors the JSON compilation-unit description that cmd/go
// writes to <objdir>/vet.cfg. Field names must not change.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // package path -> facts file
	VetxOnly                  bool              // facts-only run for a dependency
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool
}

// inModule reports whether the unit's package path belongs to the
// module being vetted — the scope within which facts are computed and
// consumed. Path "" covers the corner where cmd/go omits ModulePath
// (GOPATH mode); no facts flow there, which only widens what the
// analyzers must assume.
func (cfg *Config) inModule(path string) bool {
	return cfg.ModulePath != "" &&
		(path == cfg.ModulePath || strings.HasPrefix(path, cfg.ModulePath+"/"))
}

// Run executes the suite over the unit described by configFile and
// exits the process: 0 for clean, 1 for diagnostics or errors.
func Run(configFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	// Dependencies are analyzed only for facts. In-module dependencies
	// get a real fact-only pass; everything else (the standard
	// library) writes an empty facts file without typechecking.
	if cfg.VetxOnly {
		var pkgs map[string]analysis.PackageFacts
		if cfg.inModule(cfg.ImportPath) {
			if _, facts, err := analyze(cfg, analyzers, true); err == nil {
				pkgs = facts
			}
			// A dependency that fails to typecheck surfaces through
			// the compiler; the empty facts file keeps the vet chain
			// alive either way.
		}
		writeFacts(cfg, pkgs)
		os.Exit(0)
	}

	diags, facts, err := analyze(cfg, analyzers, false)
	if err != nil {
		writeFacts(cfg, nil)
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	writeFacts(cfg, facts)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("coalvet: cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("coalvet: package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// readImportedFacts loads and merges the facts files of every
// in-module dependency named by the unit config. Unreadable or
// unparseable files degrade to "no facts known", never to an error.
func readImportedFacts(cfg *Config) map[string]analysis.PackageFacts {
	merged := make(map[string]analysis.PackageFacts)
	for path, file := range cfg.PackageVetx {
		if !cfg.inModule(path) {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		for pkg, facts := range analysis.DecodeFacts(data) {
			if merged[pkg] == nil {
				merged[pkg] = facts
			}
		}
	}
	return merged
}

// writeFacts persists the unit's facts file (imported + own) at
// cfg.VetxOutput; cmd/go caches the file, so its content must exist
// and be deterministic even when there is nothing to say.
func writeFacts(cfg *Config, pkgs map[string]analysis.PackageFacts) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := analysis.EncodeFacts(pkgs)
	if err != nil {
		log.Fatalf("coalvet: encoding facts: %v", err)
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		log.Fatalf("coalvet: writing facts file: %v", err)
	}
}

// analyze parses and typechecks the unit, runs the suite (the whole
// suite, or only the fact-exporting analyzers when factsOnly), and
// returns the rendered diagnostics plus the unit's merged fact set.
func analyze(cfg *Config, analyzers []*analysis.Analyzer, factsOnly bool) ([]string, map[string]analysis.PackageFacts, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tcfg := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}

	imported := readImportedFacts(cfg)
	suite := analyzers
	if factsOnly {
		suite = nil
		for _, a := range analyzers {
			if a.Facts {
				suite = append(suite, a)
			}
		}
	}
	named, own := Check(fset, files, pkg, info, suite, imported)
	merged := imported
	if len(own) > 0 {
		merged[cfg.ImportPath] = own
	}

	if factsOnly {
		return nil, merged, nil
	}
	out := make([]string, 0, len(named))
	for _, d := range named {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
	}
	return out, merged, nil
}

// Check runs the analyzers over one typechecked package, applies
// //coalvet:allow suppression, reports stale directives, and returns
// position-sorted findings plus the package's exported facts. It is
// shared by this driver and the vettest fixture runner; imported may
// be nil when no fact chain is available.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	analyzers []*analysis.Analyzer, imported map[string]analysis.PackageFacts) ([]analysis.NamedDiagnostic, analysis.PackageFacts) {
	idx := directive.NewIndex(fset, files)
	own := make(analysis.PackageFacts)
	var diags []analysis.NamedDiagnostic
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &analysis.Pass{
			Analyzer:      a,
			Fset:          fset,
			Files:         files,
			Pkg:           pkg,
			TypesInfo:     info,
			ImportedFacts: imported,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, analysis.NamedDiagnostic{Analyzer: a.Name, Diagnostic: d})
			},
		}
		pass.SetFactSink(func(analyzer string, raw []byte) {
			own[analyzer] = json.RawMessage(raw)
		})
		if err := a.Run(pass); err != nil {
			pass.Reportf(token.NoPos, "analyzer %s failed: %v", a.Name, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		// Directive syntax findings are not suppressible.
		if directive.IsTarget(d.Analyzer) && idx.Allows(d.Analyzer, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	// A directive whose target analyzer ran but suppressed nothing is
	// dead weight masquerading as a live exemption; report it under
	// directivecheck (and, like syntax findings, unsuppressibly).
	for _, s := range idx.StaleDirectives(ran) {
		kept = append(kept, analysis.NamedDiagnostic{
			Analyzer: "directivecheck",
			Diagnostic: analysis.Diagnostic{
				Pos: s.Pos,
				Message: fmt.Sprintf("stale //coalvet:allow %s directive (%q): it suppresses no diagnostic — remove it [directivecheck]",
					s.Analyzer, s.Reason),
			},
		})
	}
	analysis.SortDiagnostics(fset, kept)
	return kept, own
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
