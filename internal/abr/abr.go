// Package abr implements video adaptation algorithms: the classic
// network-driven baselines (rate-based, buffer-based, BOLA) and the
// paper's proposal — a memory-pressure-aware policy that reacts to
// onTrimMemory signals by stepping down the encoded frame rate and, if
// needed, the resolution (§6: "a video can continue to be rendered at
// high resolution by decreasing the encoded frame rate").
//
// Algorithms are pure decision functions over an observation Context;
// a Controller polls the session, asks the algorithm, and applies
// switches. This mirrors how dash.js separates ABR rules from the
// player.
package abr

import (
	"math"
	"sort"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// Context is the observation an algorithm decides on.
type Context struct {
	// Now is the virtual time of the decision.
	Now time.Duration
	// Current is the rung currently playing.
	Current dash.Rung
	// Ladder is the available rung set, sorted by ascending bitrate.
	Ladder []dash.Rung
	// Buffer is the playback buffer level.
	Buffer time.Duration
	// BufferCapacity is the maximum buffer.
	BufferCapacity time.Duration
	// Throughput is the last measured download throughput.
	Throughput units.BitsPerSecond
	// Signal is the most recent memory-pressure signal (Normal when
	// none was received recently).
	Signal proc.Level
	// SignalAge is how long ago Signal was received.
	SignalAge time.Duration
	// RecentDropRate is the frame-drop percentage over the last few
	// seconds — the client-side symptom of device bottlenecks.
	RecentDropRate float64
}

// Algorithm decides the rung to play next.
type Algorithm interface {
	Name() string
	Decide(ctx Context) dash.Rung
}

// Fixed never adapts; it is the paper's §4 experimental condition.
type Fixed struct{}

// Name implements Algorithm.
func (Fixed) Name() string { return "fixed" }

// Decide implements Algorithm.
func (Fixed) Decide(ctx Context) dash.Rung { return ctx.Current }

// RateBased picks the highest bitrate under a safety fraction of the
// measured throughput — the classic throughput rule.
type RateBased struct {
	// Safety is the throughput fraction to use; default 0.8.
	Safety float64
}

// Name implements Algorithm.
func (RateBased) Name() string { return "rate" }

// Decide implements Algorithm.
func (a RateBased) Decide(ctx Context) dash.Rung {
	safety := a.Safety
	if safety <= 0 {
		safety = 0.8
	}
	budget := units.BitsPerSecond(safety * float64(ctx.Throughput))
	if ctx.Throughput == 0 {
		return ctx.Current
	}
	best := ctx.Ladder[0]
	for _, r := range ctx.Ladder {
		if r.Bitrate <= budget && r.Bitrate >= best.Bitrate {
			best = r
		}
	}
	return best
}

// BufferBased is BBA-style: map the buffer level linearly onto the
// ladder between a reservoir and a cushion.
type BufferBased struct {
	// Reservoir is the buffer level below which the lowest rung plays;
	// default 10s.
	Reservoir time.Duration
	// Cushion is the level at which the highest rung plays;
	// default 45s.
	Cushion time.Duration
}

// Name implements Algorithm.
func (BufferBased) Name() string { return "bba" }

// Decide implements Algorithm.
func (a BufferBased) Decide(ctx Context) dash.Rung {
	reservoir, cushion := a.Reservoir, a.Cushion
	if reservoir <= 0 {
		reservoir = 10 * time.Second
	}
	if cushion <= reservoir {
		cushion = 45 * time.Second
	}
	if ctx.Buffer <= reservoir {
		return ctx.Ladder[0]
	}
	if ctx.Buffer >= cushion {
		return ctx.Ladder[len(ctx.Ladder)-1]
	}
	frac := float64(ctx.Buffer-reservoir) / float64(cushion-reservoir)
	idx := int(frac * float64(len(ctx.Ladder)-1))
	return ctx.Ladder[idx]
}

// BOLA is the Lyapunov-based buffer algorithm of Spiteri et al. [35],
// in its BOLA-BASIC form: choose the rung maximizing
// (V·(utility + γ) − Q) / bitrate, with utility = ln(bitrate / min).
type BOLA struct {
	// Gamma rewards buffer growth; default 5.
	Gamma float64
}

// Name implements Algorithm.
func (BOLA) Name() string { return "bola" }

// Decide implements Algorithm.
func (a BOLA) Decide(ctx Context) dash.Rung {
	gamma := a.Gamma
	if gamma <= 0 {
		gamma = 5
	}
	minBitrate := float64(ctx.Ladder[0].Bitrate)
	maxUtility := ln(float64(ctx.Ladder[len(ctx.Ladder)-1].Bitrate) / minBitrate)
	// V calibrated so the top rung is chosen when the buffer is near
	// capacity.
	cap := ctx.BufferCapacity.Seconds()
	if cap <= 0 {
		cap = 60
	}
	v := (cap - 1) / (maxUtility + gamma)
	q := ctx.Buffer.Seconds()
	best, bestScore := ctx.Current, -1e18
	for _, r := range ctx.Ladder {
		utility := ln(float64(r.Bitrate) / minBitrate)
		score := (v*(utility+gamma) - q) / (float64(r.Bitrate) / 1e6)
		if score > bestScore {
			bestScore = score
			best = r
		}
	}
	return best
}

func ln(x float64) float64 {
	if x <= 0 {
		return -1e9
	}
	return math.Log(x)
}

// MemoryAware is the paper's §6/§7 proposal: a wrapper that lets a
// network algorithm pick the bitrate under Normal conditions, but
// reacts to memory-pressure signals by stepping the encoded frame rate
// down first (the adaptation §6 shows rescues high resolutions), then
// the resolution. Recovery probes back up after a sustained quiet
// period.
type MemoryAware struct {
	// Inner handles network adaptation; default BufferBased.
	Inner Algorithm
	// HoldDown is how long to stay stepped-down after a signal;
	// default 15s.
	HoldDown time.Duration
	// DropTrigger additionally steps down when the recent drop rate
	// exceeds this percentage; default 10.
	DropTrigger float64

	steps       int // current severity: each step removes fps or resolution
	lastTrouble time.Duration
}

// Name implements Algorithm.
func (*MemoryAware) Name() string { return "memaware" }

// Decide implements Algorithm.
func (a *MemoryAware) Decide(ctx Context) dash.Rung {
	inner := a.Inner
	if inner == nil {
		inner = BufferBased{}
	}
	holdDown := a.HoldDown
	if holdDown <= 0 {
		holdDown = 15 * time.Second
	}
	trigger := a.DropTrigger
	if trigger <= 0 {
		trigger = 10
	}

	trouble := (ctx.Signal >= proc.Moderate && ctx.SignalAge < 3*time.Second) ||
		ctx.RecentDropRate > trigger
	if trouble {
		a.lastTrouble = ctx.Now
		if a.steps < 6 {
			a.steps++
		}
	} else if ctx.Now-a.lastTrouble > holdDown && a.steps > 0 {
		// Quiet long enough: probe one step back up.
		a.steps--
		a.lastTrouble = ctx.Now
	}

	want := inner.Decide(ctx)
	return a.applySteps(ctx, want)
}

// applySteps degrades the wanted rung by the current severity: first
// lower frame rates at the same resolution, then lower resolutions at
// the lowest frame rate.
func (a *MemoryAware) applySteps(ctx Context, want dash.Rung) dash.Rung {
	if a.steps == 0 {
		return want
	}
	// Enumerate the degradation path from the wanted rung: same
	// resolution with descending fps, then descending resolutions
	// (keeping the lowest available fps).
	path := degradationPath(ctx.Ladder, want)
	idx := a.steps
	if idx >= len(path) {
		idx = len(path) - 1
	}
	return path[idx]
}

// degradationPath lists rungs from want downward: fps steps first,
// then resolution steps, each lower resolution at its own lowest
// available fps.
func degradationPath(ladder []dash.Rung, want dash.Rung) []dash.Rung {
	var sameRes []dash.Rung
	for _, r := range ladder {
		if r.Resolution == want.Resolution && r.FPS <= want.FPS {
			sameRes = append(sameRes, r)
		}
	}
	sort.Slice(sameRes, func(i, j int) bool { return sameRes[i].FPS > sameRes[j].FPS })
	path := append([]dash.Rung{}, sameRes...)
	// Then lower resolutions. Each resolution steps to its OWN minimum
	// fps, not the ladder-wide minimum: on a ragged ladder (say
	// 1080p60/1080p30/720p30/480p24) the 720p tier has no 24 fps
	// encoding, and filtering on the global minimum used to skip it
	// entirely, jumping 1080p30 → 480p24.
	lowFPS := map[dash.Resolution]int{}
	for _, r := range ladder {
		if r.Resolution >= want.Resolution {
			continue
		}
		if f, ok := lowFPS[r.Resolution]; !ok || r.FPS < f {
			lowFPS[r.Resolution] = r.FPS
		}
	}
	var lower []dash.Rung
	for _, r := range ladder {
		if r.Resolution < want.Resolution && r.FPS == lowFPS[r.Resolution] {
			lower = append(lower, r)
		}
	}
	sort.Slice(lower, func(i, j int) bool { return lower[i].Resolution > lower[j].Resolution })
	path = append(path, lower...)
	if len(path) == 0 {
		path = []dash.Rung{want}
	}
	return path
}

// Decision is one recorded ABR decision — the observation the
// algorithm saw and the rung it chose. The arena exports these as
// chrome://tracing instants so a run's adaptation behavior can be
// scrubbed alongside its fault windows.
type Decision struct {
	At         time.Duration
	From, To   dash.Rung
	Buffer     time.Duration
	Throughput units.BitsPerSecond
	Signal     proc.Level
	DropRate   float64
}

// Controller drives an algorithm against a live session.
type Controller struct {
	sess *player.Session
	algo Algorithm

	lastSignal   proc.Level
	lastSignalAt time.Duration
	// Switches counts applied quality changes.
	Switches int

	// RecordDecisions enables the Decisions log (off by default: the
	// fleet engine runs millions of decisions and must not hold them).
	// Set it between Attach and the first clock advance.
	RecordDecisions bool
	// Decisions holds every decision taken while RecordDecisions was
	// set, in decision order.
	Decisions []Decision

	decisionCtr *telemetry.Counter
	switchCtr   *telemetry.Counter
}

// Attach wires the algorithm to the session: decisions run every
// interval (default 2s) and immediately on each memory-pressure signal,
// the reactive path §6 recommends.
func Attach(sess *player.Session, dev *device.Device, algo Algorithm, interval time.Duration) *Controller {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	c := &Controller{sess: sess, algo: algo, lastSignalAt: -time.Hour}
	// Counter() is nil-safe: with telemetry off both stay nil and the
	// Inc calls below are free no-ops.
	c.decisionCtr = dev.Telem.Counter("abr.decisions")
	c.switchCtr = dev.Telem.Counter("abr.switches")
	decide := func() {
		if !sess.Active() {
			return
		}
		ladder := append([]dash.Rung(nil), sess.Manifest().Rungs...)
		sort.Slice(ladder, func(i, j int) bool { return ladder[i].Bitrate < ladder[j].Bitrate })
		ctx := Context{
			Now:            dev.Clock.Now(),
			Current:        sess.Rung(),
			Ladder:         ladder,
			Buffer:         sess.BufferLevel(),
			BufferCapacity: 60 * time.Second,
			Throughput:     sess.Throughput(),
			Signal:         c.lastSignal,
			SignalAge:      dev.Clock.Now() - c.lastSignalAt,
			RecentDropRate: sess.RecentDropRate(3),
		}
		want := c.algo.Decide(ctx)
		c.decisionCtr.Inc()
		if c.RecordDecisions {
			c.Decisions = append(c.Decisions, Decision{
				At: ctx.Now, From: ctx.Current, To: want,
				Buffer: ctx.Buffer, Throughput: ctx.Throughput,
				Signal: ctx.Signal, DropRate: ctx.RecentDropRate,
			})
		}
		if want != ctx.Current {
			c.Switches++
			c.switchCtr.Inc()
			sess.SwitchRung(want)
		}
	}
	sess.OnSignal(func(l proc.Level) {
		c.lastSignal = l
		c.lastSignalAt = dev.Clock.Now()
		decide()
	})
	dev.Clock.Every(interval, decide)
	return c
}
