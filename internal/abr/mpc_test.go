package abr

import (
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/proc"
	"coalqoe/internal/units"
)

func TestDegradationPathSingleRung(t *testing.T) {
	only := dash.Rung{Resolution: dash.R720p, FPS: 30, Bitrate: 5 * units.Mbps}
	path := degradationPath([]dash.Rung{only}, only)
	if len(path) != 1 || path[0] != only {
		t.Fatalf("single-rung path = %v, want [%v]", path, only)
	}
	// A wanted rung absent from the ladder must still yield a
	// non-empty path.
	stranger := dash.Rung{Resolution: dash.R240p, FPS: 24, Bitrate: 0.5 * units.Mbps}
	path = degradationPath([]dash.Rung{only}, stranger)
	if len(path) == 0 {
		t.Fatal("off-ladder want produced an empty path")
	}
}

func TestDegradationPathUnsortedLadder(t *testing.T) {
	// Same rung set as the standard ladder but deliberately shuffled:
	// the path must come out in the same degradation order.
	sorted := ladder()
	shuffled := append([]dash.Rung(nil), sorted...)
	for i := range shuffled {
		j := (i*7 + 3) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	want, _ := dash.FindRung(sorted, dash.R1080p, 60)
	a := degradationPath(sorted, want)
	b := degradationPath(shuffled, want)
	if len(a) != len(b) {
		t.Fatalf("path length differs: sorted %d vs shuffled %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("path[%d] differs: sorted %v vs shuffled %v", i, a[i], b[i])
		}
	}
}

func TestDegradationPathRaggedLadder(t *testing.T) {
	// Regression for the global-min-fps bug: 720p has no 24 fps
	// encoding, and the old path filter skipped the whole 720p tier,
	// jumping 1080p straight to 480p24.
	lad := []dash.Rung{
		{Resolution: dash.R1080p, FPS: 60, Bitrate: 12 * units.Mbps},
		{Resolution: dash.R1080p, FPS: 30, Bitrate: 8 * units.Mbps},
		{Resolution: dash.R720p, FPS: 30, Bitrate: 5 * units.Mbps},
		{Resolution: dash.R480p, FPS: 24, Bitrate: 2.3 * units.Mbps},
	}
	path := degradationPath(lad, lad[0])
	want := []dash.Rung{lad[0], lad[1], lad[2], lad[3]}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
}

// feed primes an MPC with n identical throughput samples.
func feed(a *MPC, c Context, n int) {
	for i := 0; i < n; i++ {
		a.Decide(c)
	}
}

func TestMPCHoldsWithoutSamples(t *testing.T) {
	a := &MPC{}
	c := ctxWith(func(c *Context) { c.Throughput = 0 })
	if got := a.Decide(c); got != c.Current {
		t.Errorf("MPC with no samples picked %v, want hold at %v", got, c.Current)
	}
	// An off-ladder current rung must clamp onto the ladder.
	c2 := ctxWith(func(c *Context) {
		c.Throughput = 0
		c.Current = dash.Rung{Resolution: dash.R1440p, FPS: 120, Bitrate: 99 * units.Mbps}
	})
	got := (&MPC{}).Decide(c2)
	if _, ok := dash.FindRung(c2.Ladder, got.Resolution, got.FPS); !ok {
		t.Errorf("MPC returned off-ladder rung %v", got)
	}
}

func TestMPCEmptyLadderHolds(t *testing.T) {
	a := &MPC{}
	c := ctxWith(func(c *Context) { c.Ladder = nil })
	if got := a.Decide(c); got != c.Current {
		t.Errorf("MPC with empty ladder picked %v, want current", got)
	}
}

func TestMPCTracksThroughput(t *testing.T) {
	// Ample bandwidth and a full buffer: MPC should sit high on the
	// ladder. Starved bandwidth: it must move well down.
	rich := ctxWith(func(c *Context) { c.Throughput = 100 * units.Mbps })
	a := &MPC{}
	feed(a, rich, 5)
	high := a.Decide(rich)
	poor := ctxWith(func(c *Context) {
		c.Throughput = 2 * units.Mbps
		c.Buffer = 4 * time.Second
	})
	b := &MPC{}
	feed(b, poor, 5)
	low := b.Decide(poor)
	if high.Bitrate <= low.Bitrate {
		t.Errorf("MPC rich pick %v not above starved pick %v", high, low)
	}
	if low.Bitrate > 2*units.Mbps {
		t.Errorf("MPC starved pick %v exceeds the 2Mbps link", low)
	}
}

func TestMPCHarmonicMeanIsPessimistic(t *testing.T) {
	a := &MPC{}
	fast := ctxWith(func(c *Context) { c.Throughput = 100 * units.Mbps })
	feed(a, fast, 4)
	// One deep dip caps the forecast well below the arithmetic mean.
	dip := ctxWith(func(c *Context) { c.Throughput = 1 * units.Mbps })
	a.Decide(dip)
	f := a.forecast()
	if f > float64(5*units.Mbps) {
		t.Errorf("forecast after dip = %v bps, want harmonic-mean-capped < 5Mbps", f)
	}
}

func TestMPCStepsDownUnderPressure(t *testing.T) {
	calm := ctxWith(func(c *Context) { c.Throughput = 100 * units.Mbps })
	a := &MPC{}
	feed(a, calm, 5)
	base := a.Decide(calm)
	pressured := ctxWith(func(c *Context) {
		c.Throughput = 100 * units.Mbps
		c.Signal = proc.Critical
		c.SignalAge = 0
	})
	got := a.Decide(pressured)
	if decodeLoad(got) >= decodeLoad(base) {
		t.Errorf("Critical signal: MPC kept decode load %v >= calm %v (%v vs %v)",
			decodeLoad(got), decodeLoad(base), got, base)
	}
}

func TestQoEAwareCalmPicksHigh(t *testing.T) {
	a := &QoEAware{}
	c := ctxWith(func(c *Context) { c.Throughput = 100 * units.Mbps })
	got := a.Decide(c)
	// With ample bandwidth, full buffer and no pressure the argmax
	// should sit in the upper half of the ladder (energy keeps it off
	// the very top at times, but not in the basement).
	if got.Bitrate < 5*units.Mbps {
		t.Errorf("calm QoEAware picked %v, want an upper-ladder rung", got)
	}
}

func TestQoEAwareStepsDownOnSignal(t *testing.T) {
	a := &QoEAware{}
	calm := ctxWith(func(c *Context) { c.Throughput = 100 * units.Mbps })
	base := a.Decide(calm)
	hot := ctxWith(func(c *Context) {
		c.Throughput = 100 * units.Mbps
		c.Signal = proc.Critical
		c.SignalAge = 0
	})
	got := a.Decide(hot)
	if decodeLoad(got) >= decodeLoad(base) {
		t.Errorf("Critical signal: QoEAware kept decode load (%v vs %v)", got, base)
	}
	// Recovery: after the hold-down quiet period the pick returns up.
	later := ctxWith(func(c *Context) {
		c.Throughput = 100 * units.Mbps
		c.Now = calm.Now + 5*time.Minute
	})
	if rec := a.Decide(later); decodeLoad(rec) <= decodeLoad(got) {
		t.Errorf("after quiet period QoEAware stayed at %v (pressure pick %v)", rec, got)
	}
}

func TestQoEAwarePrefersFPSDropFirst(t *testing.T) {
	// The §6 behavior the tuning targets: under moderate pressure the
	// argmax sheds encoded frame rate before resolution.
	a := &QoEAware{}
	calm := ctxWith(func(c *Context) { c.Throughput = 100 * units.Mbps })
	base := a.Decide(calm)
	warm := ctxWith(func(c *Context) {
		c.Throughput = 100 * units.Mbps
		c.Signal = proc.Moderate
		c.SignalAge = 0
	})
	got := a.Decide(warm)
	if got.Resolution < base.Resolution-1 {
		t.Errorf("moderate pressure dropped resolution %v -> %v before fps", base, got)
	}
	if decodeLoad(got) >= decodeLoad(base) {
		t.Errorf("moderate pressure did not reduce decode load (%v vs %v)", got, base)
	}
}

func TestRiskTrackerDecay(t *testing.T) {
	tr := &riskTracker{}
	// A saturated drop rate is the full-severity observation; a fresh
	// signal alone is only a floor (the device may decode fine).
	hot := ctxWith(func(c *Context) { c.Signal = proc.Critical; c.SignalAge = 0; c.RecentDropRate = 90 })
	if r := tr.update(hot); r != 1 {
		t.Fatalf("saturated-drop risk = %v, want 1", r)
	}
	mid := ctxWith(func(c *Context) { c.Now = hot.Now + 6*time.Second })
	r1 := tr.update(mid)
	if r1 <= 0 || r1 >= 1 {
		t.Errorf("mid-decay risk = %v, want in (0,1)", r1)
	}
	cold := ctxWith(func(c *Context) { c.Now = hot.Now + time.Minute })
	if r := tr.update(cold); r != 0 {
		t.Errorf("post-hold risk = %v, want 0", r)
	}
}

func TestRiskTrackerPeakNotLatchedByStandingSignal(t *testing.T) {
	tr := &riskTracker{}
	// Transient 100% drop spike pins risk at 1...
	spike := ctxWith(func(c *Context) { c.RecentDropRate = 100 })
	if r := tr.update(spike); r != 1 {
		t.Fatalf("spike risk = %v, want 1", r)
	}
	// ...but a standing Moderate signal afterwards must NOT hold it
	// there: the envelope decays from the spike, and the signal floor
	// (0.1) is all that remains once the hold-down elapses.
	late := ctxWith(func(c *Context) {
		c.Now = spike.Now + 30*time.Second
		c.Signal = proc.Moderate
		c.SignalAge = 0
	})
	if r := tr.update(late); r != 0.1 {
		t.Errorf("risk 30s after spike under standing Moderate = %v, want the 0.1 signal floor", r)
	}
}
