package abr

import (
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/mempress"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
)

// playUnderPressure streams 1080p60 on a pressured Nokia 1 with the
// given algorithm (nil = fixed quality) and returns the metrics.
func playUnderPressure(t *testing.T, seed int64, algo Algorithm) player.Metrics {
	t.Helper()
	dev := device.New(seed, device.Nokia1, device.Options{})
	dev.Settle(3 * time.Second)
	reached := false
	mempress.Apply(dev, proc.Moderate, func() { reached = true })
	for !reached && dev.Clock.Now() < 3*time.Minute {
		dev.Settle(time.Second)
	}
	if !reached {
		t.Fatal("never reached Moderate")
	}

	video := dash.TestVideos[0]
	video.Duration = 60 * time.Second
	manifest := dash.NewManifest(video, 24, 30, 48, 60)
	rung, _ := manifest.Rung(dash.R1080p, 60)
	sess := player.Start(player.Config{
		Device: dev, Client: player.Firefox, Manifest: manifest, Rung: rung,
	})
	if algo != nil {
		Attach(sess, dev, algo, 2*time.Second)
	}
	deadline := dev.Clock.Now() + 5*time.Minute
	for sess.Active() && dev.Clock.Now() < deadline {
		dev.Settle(time.Second)
	}
	return sess.Metrics()
}

// TestMemoryAwareBeatsFixed is the §6 headline: reacting to memory
// pressure signals rescues playback that fixed quality cannot sustain.
func TestMemoryAwareBeatsFixed(t *testing.T) {
	fixed := playUnderPressure(t, 21, nil)
	// Fixed inner isolates the memory-reaction path: every switch is
	// a pressure step, so the fps-first order is observable.
	aware := playUnderPressure(t, 21, &MemoryAware{Inner: Fixed{}})

	if fixed.EffectiveDropRate < 40 {
		t.Fatalf("fixed 1080p60 at Moderate dropped only %.1f%%: pressure too weak for the comparison",
			fixed.EffectiveDropRate)
	}
	if aware.EffectiveDropRate > fixed.EffectiveDropRate/2 {
		t.Errorf("memory-aware drops %.1f%% vs fixed %.1f%%: want at least a 2x cut",
			aware.EffectiveDropRate, fixed.EffectiveDropRate)
	}
	if len(aware.Switches) == 0 {
		t.Error("memory-aware never switched")
	}
	// The first adaptation must be a frame-rate step, not resolution.
	first := aware.Switches[0]
	if first.To.Resolution != first.From.Resolution || first.To.FPS >= first.From.FPS {
		t.Errorf("first switch %v -> %v: §6 steps frame rate down first", first.From, first.To)
	}
}

// TestControllerSwitchesOnSignalDelivery checks the reactive path: a
// pressure signal triggers an immediate decision, not just the poll.
func TestControllerSwitchesOnSignalDelivery(t *testing.T) {
	dev := device.New(23, device.Nokia1, device.Options{})
	dev.Settle(3 * time.Second)

	video := dash.TestVideos[0]
	video.Duration = 90 * time.Second
	manifest := dash.NewManifest(video, 24, 30, 48, 60)
	rung, _ := manifest.Rung(dash.R720p, 60)
	sess := player.Start(player.Config{
		Device: dev, Client: player.Firefox, Manifest: manifest, Rung: rung,
	})
	// A long poll interval: only the signal path can act quickly.
	c := Attach(sess, dev, &MemoryAware{Inner: Fixed{}}, time.Hour)
	dev.Settle(5 * time.Second)
	if c.Switches != 0 {
		t.Fatalf("switched %d times before any pressure", c.Switches)
	}
	reached := false
	mempress.Apply(dev, proc.Moderate, func() { reached = true })
	for !reached && dev.Clock.Now() < 3*time.Minute {
		dev.Settle(time.Second)
	}
	dev.Settle(5 * time.Second)
	if sess.Active() && c.Switches == 0 {
		t.Error("no switch after Moderate signals despite the reactive path")
	}
}
