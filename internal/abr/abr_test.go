package abr

import (
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/proc"
	"coalqoe/internal/units"
)

func ladder() []dash.Rung {
	l := dash.Ladder(24, 30, 48, 60)
	// sort ascending by bitrate as the controller does
	for i := 0; i < len(l); i++ {
		for j := i + 1; j < len(l); j++ {
			if l[j].Bitrate < l[i].Bitrate {
				l[i], l[j] = l[j], l[i]
			}
		}
	}
	return l
}

func ctxWith(mod func(*Context)) Context {
	l := ladder()
	c := Context{
		Now:            time.Minute,
		Current:        l[len(l)-1],
		Ladder:         l,
		Buffer:         50 * time.Second,
		BufferCapacity: 60 * time.Second,
		Throughput:     100 * units.Mbps,
		Signal:         proc.Normal,
		SignalAge:      time.Hour,
	}
	if mod != nil {
		mod(&c)
	}
	return c
}

func TestFixedNeverSwitches(t *testing.T) {
	c := ctxWith(func(c *Context) { c.RecentDropRate = 90; c.Signal = proc.Critical; c.SignalAge = 0 })
	if got := (Fixed{}).Decide(c); got != c.Current {
		t.Errorf("Fixed switched to %v", got)
	}
}

func TestRateBasedPicksUnderThroughput(t *testing.T) {
	c := ctxWith(func(c *Context) { c.Throughput = 10 * units.Mbps })
	got := RateBased{}.Decide(c)
	if got.Bitrate > 8*units.Mbps {
		t.Errorf("picked %v over 80%% of 10Mbps", got)
	}
	// Zero throughput: hold.
	c2 := ctxWith(func(c *Context) { c.Throughput = 0 })
	if got := (RateBased{}).Decide(c2); got != c2.Current {
		t.Error("rate-based should hold with no throughput sample")
	}
}

func TestBufferBasedEndpoints(t *testing.T) {
	low := ctxWith(func(c *Context) { c.Buffer = 2 * time.Second })
	if got := (BufferBased{}).Decide(low); got != low.Ladder[0] {
		t.Errorf("low buffer picked %v, want lowest", got)
	}
	high := ctxWith(func(c *Context) { c.Buffer = 55 * time.Second })
	if got := (BufferBased{}).Decide(high); got != high.Ladder[len(high.Ladder)-1] {
		t.Errorf("full buffer picked %v, want highest", got)
	}
}

func TestBufferBasedMonotone(t *testing.T) {
	prev := units.BitsPerSecond(0)
	for b := 5; b <= 55; b += 5 {
		c := ctxWith(func(c *Context) { c.Buffer = time.Duration(b) * time.Second })
		got := BufferBased{}.Decide(c)
		if got.Bitrate < prev {
			t.Errorf("bitrate decreased as buffer grew at %ds", b)
		}
		prev = got.Bitrate
	}
}

func TestBOLABufferSensitivity(t *testing.T) {
	low := ctxWith(func(c *Context) { c.Buffer = 3 * time.Second })
	high := ctxWith(func(c *Context) { c.Buffer = 58 * time.Second })
	bLow := BOLA{}.Decide(low)
	bHigh := BOLA{}.Decide(high)
	if bLow.Bitrate >= bHigh.Bitrate {
		t.Errorf("BOLA picked %v at low buffer vs %v at high", bLow, bHigh)
	}
	if bHigh != high.Ladder[len(high.Ladder)-1] {
		t.Errorf("BOLA at full buffer picked %v, want top rung", bHigh)
	}
	if bLow != low.Ladder[0] {
		t.Errorf("BOLA at empty buffer picked %v, want bottom rung", bLow)
	}
}

func TestDegradationPathFPSFirst(t *testing.T) {
	l := ladder()
	want, _ := dash.FindRung(l, dash.R1080p, 60)
	path := degradationPath(l, want)
	if path[0] != want {
		t.Fatalf("path[0] = %v, want %v", path[0], want)
	}
	// First steps keep 1080p while lowering fps: 60 -> 48 -> 30 -> 24.
	wantFPS := []int{60, 48, 30, 24}
	for i, f := range wantFPS {
		if path[i].Resolution != dash.R1080p || path[i].FPS != f {
			t.Errorf("path[%d] = %v, want 1080p%d", i, path[i], f)
		}
	}
	// After fps is exhausted, resolution drops at 24 fps.
	if path[4].Resolution >= dash.R1080p || path[4].FPS != 24 {
		t.Errorf("path[4] = %v, want sub-1080p at 24fps", path[4])
	}
}

func TestMemoryAwareStepsDownOnSignal(t *testing.T) {
	a := &MemoryAware{Inner: Fixed{}}
	c := ctxWith(func(c *Context) { c.Signal = proc.Moderate; c.SignalAge = time.Second })
	got := a.Decide(c)
	if got == c.Current {
		t.Fatal("no step down on Moderate signal")
	}
	if got.Resolution != c.Current.Resolution || got.FPS >= c.Current.FPS {
		t.Errorf("first step should lower fps at same resolution, got %v", got)
	}
}

func TestMemoryAwareStepsDownOnDrops(t *testing.T) {
	a := &MemoryAware{Inner: Fixed{}}
	c := ctxWith(func(c *Context) { c.RecentDropRate = 40 })
	if got := a.Decide(c); got == c.Current {
		t.Error("no step down on heavy drops")
	}
}

func TestMemoryAwareEscalatesAndRecovers(t *testing.T) {
	a := &MemoryAware{Inner: Fixed{}, HoldDown: 10 * time.Second}
	// Three consecutive troubled decisions escalate.
	var last dash.Rung
	for i := 0; i < 3; i++ {
		c := ctxWith(func(c *Context) {
			c.Now = time.Duration(i) * 2 * time.Second
			c.Signal = proc.Critical
			c.SignalAge = 0
		})
		last = a.Decide(c)
	}
	if a.steps != 3 {
		t.Fatalf("steps = %d after 3 troubled decisions, want 3", a.steps)
	}
	if last.FPS != 24 {
		t.Errorf("after 3 steps rung = %v, want 1080p24", last)
	}
	// Quiet periods step back up one at a time.
	c := ctxWith(func(c *Context) { c.Now = time.Hour })
	a.Decide(c)
	if a.steps != 2 {
		t.Errorf("steps = %d after quiet period, want 2", a.steps)
	}
}

func TestMemoryAwareNormalPassesThrough(t *testing.T) {
	a := &MemoryAware{Inner: Fixed{}}
	c := ctxWith(nil)
	if got := a.Decide(c); got != c.Current {
		t.Errorf("unpressured decision changed rung to %v", got)
	}
}
