package abr

import (
	"math"
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/proc"
	"coalqoe/internal/units"
)

// FuzzMPCDecide drives both QoE-optimizing controllers through an
// arbitrary sequence of observations and holds the ladder-membership
// invariant: whatever the context claims — zero or infinite
// throughput, hostile drop rates, an off-manifest current rung — every
// decision over a non-empty ladder must be a rung of that ladder, and
// the decision path must stay panic-free. Each 8-byte record of the
// fuzz input is one observation; state carries across the sequence, so
// the fuzzer also explores risk-tracker and sample-window histories.
func FuzzMPCDecide(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	// Calm high throughput, then a pressure storm, then recovery.
	f.Add([]byte{
		100, 60, 0, 0, 0, 23, 2, 0,
		100, 10, 3, 90, 1, 23, 2, 0,
		100, 60, 0, 0, 60, 23, 2, 0,
	})
	// Throughput collapse with an off-ladder current rung.
	f.Add([]byte{0, 0, 2, 50, 1, 255, 40, 1})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ladder := dash.Ladder(24, 30, 48, 60)
		onLadder := func(r dash.Rung) bool {
			for _, l := range ladder {
				if l == r {
					return true
				}
			}
			return false
		}
		mpc := &MPC{}
		qa := &QoEAware{}
		now := time.Duration(0)
		cur := ladder[len(ladder)-1]
		curQA := cur
		for i := 0; i+7 < len(raw) && i < 8*64; i += 8 {
			rec := raw[i : i+8]
			now += time.Duration(rec[7]%8)*time.Second + 100*time.Millisecond
			ctx := Context{
				Now:            now,
				Current:        cur,
				Ladder:         ladder,
				Buffer:         time.Duration(rec[1]) * time.Second,
				BufferCapacity: 60 * time.Second,
				Throughput:     units.BitsPerSecond(rec[0]) * units.Mbps / 4,
				Signal:         proc.Level(rec[2] % 5),
				SignalAge:      time.Duration(rec[4]) * time.Second,
				RecentDropRate: float64(rec[3]),
			}
			if rec[5] == 255 {
				// Off-manifest current rung: the decision must clamp.
				ctx.Current = dash.Rung{Resolution: dash.R1080p, FPS: 25, Bitrate: 9 * units.Mbps}
			}
			if rec[6]%3 == 0 {
				// Hostile float fields.
				ctx.RecentDropRate = math.Inf(1)
			}
			got := mpc.Decide(ctx)
			if !onLadder(got) {
				t.Fatalf("record %d: MPC decided off-ladder rung %v", i/8, got)
			}
			cur = got

			ctx.Current = curQA
			if rec[5] == 255 {
				ctx.Current = dash.Rung{Resolution: dash.R1080p, FPS: 25, Bitrate: 9 * units.Mbps}
			}
			gotQA := qa.Decide(ctx)
			if !onLadder(gotQA) {
				t.Fatalf("record %d: QoEAware decided off-ladder rung %v", i/8, gotQA)
			}
			curQA = gotQA
		}

		// Empty-ladder contract: hold whatever the session reports.
		empty := Context{Now: now, Current: cur}
		if got := mpc.Decide(empty); got != cur {
			t.Fatalf("MPC on empty ladder moved %v -> %v", cur, got)
		}
		if got := qa.Decide(Context{Now: now, Current: curQA}); got != curQA {
			t.Fatalf("QoEAware on empty ladder moved %v -> %v", curQA, got)
		}
	})
}
