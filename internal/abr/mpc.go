package abr

import (
	"math"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/proc"
	"coalqoe/internal/qoe"
	"coalqoe/internal/units"
)

// riskTracker folds memory-pressure signals and client-side drop rate
// into a single decaying risk score in [0, 1]. Both QoE-driven
// algorithms share it: a fresh Critical signal pins risk at 1, a
// Moderate one at ~0.65, and a quiet period lets it fade linearly over
// HoldDown — the same probe-back-up cadence MemoryAware uses.
type riskTracker struct {
	// HoldDown is the quiet period over which risk decays to zero
	// after the last trouble; default 12s.
	HoldDown time.Duration
	// DropTrigger is the recent-drop-rate percentage treated as
	// full-severity trouble; default 30.
	DropTrigger float64

	peak   float64
	peakAt time.Duration
	seen   bool
}

// update ingests an observation and returns the current risk.
func (t *riskTracker) update(ctx Context) float64 {
	hold := t.HoldDown
	if hold <= 0 {
		hold = 12 * time.Second
	}
	trigger := t.DropTrigger
	if trigger <= 0 {
		trigger = 30
	}
	// A fresh signal is a fast-attack floor — it says pressure exists,
	// not how badly this device decodes under it. The observed drop
	// rate supplies the magnitude: a capable SoC shrugging off
	// Moderate signals at 4% drops should not be priced like a
	// saturated one.
	sev := 0.0
	if ctx.SignalAge < 3*time.Second {
		switch {
		case ctx.Signal >= proc.Critical:
			sev = 0.3
		case ctx.Signal >= proc.Low:
			sev = 0.2
		case ctx.Signal >= proc.Moderate:
			sev = 0.1
		}
	}
	if d := ctx.RecentDropRate / trigger; d > sev {
		sev = math.Min(d, 1)
	}
	// The envelope decays from the moment the peak was RAISED, not
	// from the last time any trouble was seen: a transient 100% drop
	// spike must not stay latched at risk 1 just because a standing
	// Moderate signal keeps arriving. Ongoing trouble sustains its own
	// severity via the max below, nothing more.
	if sev >= t.peak {
		t.peak = sev
		t.peakAt = ctx.Now
		t.seen = sev > 0
	}
	decayed := 0.0
	if t.seen {
		quiet := ctx.Now - t.peakAt
		if quiet >= hold {
			t.peak = 0
			t.seen = false
		} else {
			decayed = t.peak * (1 - float64(quiet)/float64(hold))
		}
	}
	return math.Max(sev, decayed)
}

// load01 normalizes a rung's decode load (pixel throughput) against
// the heaviest rung on the ladder, so the top rung scores 1.
func load01(r dash.Rung, maxLoad float64) float64 {
	if maxLoad <= 0 {
		return 0
	}
	l := decodeLoad(r) / maxLoad
	if l > 1 {
		return 1
	}
	return l
}

func decodeLoad(r dash.Rung) float64 {
	fps := float64(r.FPS)
	if fps < 0 {
		fps = 0
	}
	return float64(r.Resolution.Pixels()) / 1e6 * fps
}

func maxDecodeLoad(ladder []dash.Rung) float64 {
	m := 0.0
	for _, r := range ladder {
		if l := decodeLoad(r); l > m {
			m = l
		}
	}
	return m
}

// clampToLadder returns r if it is on the ladder, else the lowest
// rung — the safe fallback when the current rung is off-manifest.
func clampToLadder(r dash.Rung, ladder []dash.Rung) dash.Rung {
	for _, l := range ladder {
		if l == r {
			return r
		}
	}
	return ladder[0]
}

// MPC is an MPC-style lookahead: it forecasts throughput as the
// harmonic mean of the recent download samples, folds memory pressure
// into a predicted delivered-frame fraction, and picks the rung that
// maximizes the QoE objective over a receding horizon of future
// chunks (buffer dynamics simulated per candidate). This is the
// FastMPC approximation — candidate set restricted to "hold one rung
// for the horizon", which keeps the search linear in ladder size while
// retaining the buffer-aware lookahead that distinguishes MPC from
// myopic throughput rules.
type MPC struct {
	// Objective scores simulated futures; nil builds a flat-table
	// default over the decision ladder on first use.
	Objective *qoe.Objective
	// Horizon is the number of future chunks simulated; default 5.
	Horizon int
	// Window is the throughput-sample history length; default 5.
	Window int
	// Safety discounts the throughput forecast; default 0.9.
	Safety float64
	// SegmentDuration is the chunk length assumed by the simulation;
	// default 4s.
	SegmentDuration time.Duration
	// HoldBonus is added to the current rung's horizon score —
	// hysteresis against risk-decay wiggle, in objective points over
	// the whole horizon. Default 8; negative disables.
	HoldBonus float64
	// Risk tracks memory pressure; its zero value uses defaults.
	Risk riskTracker

	samples []units.BitsPerSecond
	obj     *qoe.Objective
}

// Name implements Algorithm.
func (*MPC) Name() string { return "mpc" }

// Decide implements Algorithm. The returned rung is always on the
// ladder when the ladder is non-empty.
func (a *MPC) Decide(ctx Context) dash.Rung {
	if len(ctx.Ladder) == 0 {
		return ctx.Current
	}
	window := a.Window
	if window <= 0 {
		window = 5
	}
	if t := float64(ctx.Throughput); t > 0 && !math.IsInf(t, 1) {
		a.samples = append(a.samples, ctx.Throughput)
		if len(a.samples) > window {
			a.samples = a.samples[len(a.samples)-window:]
		}
	}
	risk := a.Risk.update(ctx)
	if len(a.samples) == 0 {
		// Nothing measured yet: hold, but never report an off-ladder
		// rung as a decision.
		return clampToLadder(ctx.Current, ctx.Ladder)
	}
	predicted := a.forecast()
	obj := a.objective(ctx.Ladder)
	maxLoad := maxDecodeLoad(ctx.Ladder)
	hold := a.HoldBonus
	switch {
	case hold == 0 || math.IsNaN(hold) || math.IsInf(hold, 0):
		hold = 8
	case hold < 0:
		hold = 0
	}
	best, bestScore := ctx.Ladder[0], math.Inf(-1)
	for _, r := range ctx.Ladder {
		score := a.simulate(ctx, obj, r, predicted, risk, maxLoad)
		if r == ctx.Current {
			score += hold
		}
		// Strict > over the ascending ladder: ties pick the lowest
		// bitrate, and a NaN score never wins.
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

// forecast returns the safety-discounted harmonic mean of the sample
// window. The harmonic mean is the standard MPC choice: it weights
// slow samples heavily, so one stall-inducing dip caps the forecast.
func (a *MPC) forecast() float64 {
	safety := a.Safety
	if safety <= 0 || safety > 1 {
		safety = 0.9
	}
	inv := 0.0
	for _, s := range a.samples {
		inv += 1 / float64(s)
	}
	return safety * float64(len(a.samples)) / inv
}

// simulate plays the horizon holding rung r and returns the summed
// per-chunk objective score.
func (a *MPC) simulate(ctx Context, obj *qoe.Objective, r dash.Rung, predicted, risk, maxLoad float64) float64 {
	horizon := a.Horizon
	if horizon <= 0 {
		horizon = 5
	}
	segDur := a.SegmentDuration
	if segDur <= 0 {
		segDur = 4 * time.Second
	}
	chunkSecs := segDur.Seconds()
	capSecs := ctx.BufferCapacity.Seconds()
	bufSecs := ctx.Buffer.Seconds()
	if bufSecs < 0 {
		bufSecs = 0
	}
	delivered := 1 - risk*load01(r, maxLoad)
	prev := qoe.Chunk{Rung: ctx.Current, Duration: segDur, Delivered: 1}
	startBuf := bufSecs
	total := 0.0
	for i := 0; i < horizon; i++ {
		dl := float64(r.Bitrate) * chunkSecs / predicted
		rebuf := 0.0
		if dl > bufSecs {
			rebuf = dl - bufSecs
			bufSecs = 0
		} else {
			bufSecs -= dl
		}
		bufSecs += chunkSecs
		if capSecs > 0 && bufSecs > capSecs {
			bufSecs = capSecs
		}
		c := qoe.Chunk{
			Rung:      r,
			Duration:  segDur,
			Rebuffer:  time.Duration(rebuf * float64(time.Second)),
			Delivered: delivered,
		}
		total += obj.Compute(c, &prev).Total
		prev = c
	}
	// Terminal buffer constraint: a horizon that ends with less buffer
	// than it started has borrowed stall time from just past the
	// lookahead. Without this charge a deep buffer absorbs any
	// unsustainable rung's drain for `horizon` chunks and the
	// controller rides a leap-drain-dive-refill sawtooth.
	if deficit := startBuf - bufSecs; deficit > 0 {
		pen := obj.RebufferPenalty
		if !(pen > 0) {
			pen = 25
		}
		total -= pen * deficit
	}
	return total
}

// objective returns the configured objective or a lazily built
// flat-table default over the ladder.
func (a *MPC) objective(ladder []dash.Rung) *qoe.Objective {
	if a.Objective != nil {
		return a.Objective
	}
	if a.obj == nil {
		a.obj = flatObjective(ladder)
	}
	return a.obj
}

// QoEAware is the tuned variant of the paper's §6 memory-pressure-aware
// ABR: instead of stepping down a fixed degradation path on each
// signal, it optimizes the QoE objective directly. Risk discounts a
// rung's expected delivered-frame fraction in proportion to its decode
// load, so under pressure the argmax lands exactly where the paper
// points — same resolution at a lower encoded frame rate first (big
// load reduction, small bitrate/quality loss), then lower resolutions —
// while the rebuffer and energy terms keep it honest about the network
// and the battery.
type QoEAware struct {
	// Objective scores candidates; nil builds a flat-table default.
	Objective *qoe.Objective
	// Safety discounts measured throughput; default 0.85.
	Safety float64
	// SegmentDuration is the assumed chunk length; default 4s.
	SegmentDuration time.Duration
	// HoldBonus is added to the current rung's score — hysteresis, in
	// objective points. A switch costs the player a codec splice
	// (SwitchLatency), so flapping through intermediate rungs while
	// risk decays is worse than holding until a clearly better rung
	// appears. Default 1; negative disables.
	HoldBonus float64
	// Risk tracks memory pressure; its zero value uses defaults.
	Risk riskTracker

	obj *qoe.Objective
}

// Name implements Algorithm.
func (*QoEAware) Name() string { return "memopt" }

// Decide implements Algorithm.
func (a *QoEAware) Decide(ctx Context) dash.Rung {
	if len(ctx.Ladder) == 0 {
		return ctx.Current
	}
	risk := a.Risk.update(ctx)
	safety := a.Safety
	if safety <= 0 || safety > 1 {
		safety = 0.85
	}
	hold := a.HoldBonus
	switch {
	case hold == 0 || math.IsNaN(hold) || math.IsInf(hold, 0):
		hold = 1
	case hold < 0:
		hold = 0
	}
	segDur := a.SegmentDuration
	if segDur <= 0 {
		segDur = 4 * time.Second
	}
	obj := a.objective(ctx.Ladder)
	maxLoad := maxDecodeLoad(ctx.Ladder)
	chunkSecs := segDur.Seconds()
	bufSecs := ctx.Buffer.Seconds()
	if bufSecs < 0 {
		bufSecs = 0
	}
	predicted := safety * float64(ctx.Throughput)
	if !(predicted > 0) || math.IsInf(predicted, 1) {
		// No throughput measured yet (session start) — a quality
		// argmax with no rebuffer term would leap to the ladder top
		// and stall the startup. Hold instead, like MPC.
		return clampToLadder(ctx.Current, ctx.Ladder)
	}
	const dwell = 5.0
	cur := qoe.Chunk{Rung: ctx.Current, Duration: segDur, Delivered: 1}
	best, bestScore := ctx.Ladder[0], math.Inf(-1)
	for _, r := range ctx.Ladder {
		rebuf := 0.0
		dl := float64(r.Bitrate) * chunkSecs / predicted
		if dl > bufSecs {
			// Immediate stall: the chunk outlasts the buffer.
			rebuf = dl - bufSecs
		}
		if dl > chunkSecs {
			// Steady-state drain: a rung that downloads slower than
			// it plays rebuffers (dl − chunk) per chunk once the
			// cushion is gone — charging it per decision keeps a full
			// buffer from hiding an unsustainable rung.
			rebuf += dl - chunkSecs
		}
		c := qoe.Chunk{
			Rung:      r,
			Duration:  segDur,
			Rebuffer:  time.Duration(rebuf * float64(time.Second)),
			Delivered: 1 - risk*load01(r, maxLoad),
		}
		b := obj.Compute(c, &cur)
		// The smoothness penalty is a one-time switch cost, but every
		// other term recurs each chunk the rung is held. Charging it in
		// full against a single chunk's gain would trap the controller
		// at whatever rung a pressure dive left it on, so amortize it
		// over the expected dwell (MPC gets this for free from its
		// horizon).
		score := b.Total + b.Smoothness*(1-1.0/dwell)
		if r == ctx.Current {
			score += hold
		}
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

func (a *QoEAware) objective(ladder []dash.Rung) *qoe.Objective {
	if a.Objective != nil {
		return a.Objective
	}
	if a.obj == nil {
		a.obj = flatObjective(ladder)
	}
	return a.obj
}

// flatObjective builds the default decision-time objective: a flat
// (index-free) quality table over the ladder with the arena's
// reference weights.
func flatObjective(ladder []dash.Rung) *qoe.Objective {
	return &qoe.Objective{
		Quality:           qoe.NewQualityTable(ladder, 0, dash.Travel),
		StartupPenalty:    5,
		RebufferPenalty:   25,
		SmoothnessPenalty: 0.5,
		DeliveredExponent: 2,
		CrashPenalty:      100,
		EnergyPenalty:     0.25,
		Energy:            qoe.DefaultEnergy,
	}
}
