package ladderopt

import (
	"testing"

	"coalqoe/internal/dash"
	"coalqoe/internal/proc"
)

func TestDefaultPopulationSane(t *testing.T) {
	pop := DefaultPopulation()
	var share float64
	for _, c := range pop {
		share += c.Share
		var mix float64
		for _, m := range c.StateMix {
			mix += m
		}
		if mix < 0.99 || mix > 1.01 {
			t.Errorf("%s state mix sums to %v", c.Name, mix)
		}
	}
	if share < 0.99 || share > 1.01 {
		t.Errorf("population shares sum to %v", share)
	}
}

func TestEstimateQoEShape(t *testing.T) {
	pop := DefaultPopulation()
	entry, high := pop[0], pop[2]
	lo := dash.Rung{Resolution: dash.R240p, FPS: 24, Bitrate: dash.BitrateFor(dash.R240p, 24)}
	hi := dash.Rung{Resolution: dash.R1080p, FPS: 60, Bitrate: dash.BitrateFor(dash.R1080p, 60)}

	// A flagship plays 1080p60 better than an entry device.
	if EstimateQoE(high, hi, proc.Normal) <= EstimateQoE(entry, hi, proc.Normal) {
		t.Error("flagship should beat entry device at 1080p60")
	}
	// Pressure hurts (at a rung near the entry device's capacity edge).
	mid := dash.Rung{Resolution: dash.R720p, FPS: 60, Bitrate: dash.BitrateFor(dash.R720p, 60)}
	if EstimateQoE(entry, mid, proc.Moderate) >= EstimateQoE(entry, mid, proc.Normal) {
		t.Error("pressure should reduce QoE")
	}
	// On an entry device under pressure, the low rung beats the high one.
	if EstimateQoE(entry, lo, proc.Moderate) <= EstimateQoE(entry, hi, proc.Moderate) {
		t.Error("a pressured entry device should prefer the low rung")
	}
	// On a flagship at Normal, the high rung wins (quality reward).
	if EstimateQoE(high, hi, proc.Normal) <= EstimateQoE(high, lo, proc.Normal) {
		t.Error("a healthy flagship should prefer the high rung")
	}
	// Bounds.
	for _, c := range pop {
		for _, r := range dash.Ladder(24, 30, 48, 60) {
			for _, s := range []proc.Level{proc.Normal, proc.Moderate, proc.Critical} {
				q := EstimateQoE(c, r, s)
				if q < 1 || q > 5 {
					t.Fatalf("QoE %v out of [1,5] for %s %v %v", q, c.Name, r, s)
				}
			}
		}
	}
}

func TestOptimizeMonotoneInK(t *testing.T) {
	pop := DefaultPopulation()
	cands := dash.Ladder(24, 30, 48, 60)
	prev := 0.0
	for k := 1; k <= 6; k++ {
		res := Optimize(pop, cands, k, nil)
		if len(res.Ladder) != k {
			t.Fatalf("k=%d produced %d rungs", k, len(res.Ladder))
		}
		if res.ExpectedMOS+1e-9 < prev {
			t.Errorf("expected MOS decreased when k grew to %d: %v < %v", k, res.ExpectedMOS, prev)
		}
		prev = res.ExpectedMOS
	}
}

func TestOptimizeCoversLowEnd(t *testing.T) {
	pop := DefaultPopulation()
	cands := dash.Ladder(24, 30, 48, 60)
	res := Optimize(pop, cands, 4, nil)
	// With 30% of the population on pressured 1 GB devices, a sane
	// 4-rung ladder includes something cheap and low-frame-rate.
	hasLow := false
	for _, r := range res.Ladder {
		if r.Resolution <= dash.R480p && r.FPS <= 30 {
			hasLow = true
		}
	}
	if !hasLow {
		t.Errorf("4-rung ladder ignores the low end: %v", res.Ladder)
	}
	if res.PerClass["entry (1GB)"] <= 1.5 {
		t.Errorf("entry class scored %v; ladder abandoned it", res.PerClass["entry (1GB)"])
	}
}

func TestWideLadderBeatsBitrateOnly(t *testing.T) {
	// The §7 claim: offering multiple frame rates (not just bitrates)
	// improves population QoE.
	pop := DefaultPopulation()
	wide := Optimize(pop, dash.Ladder(24, 30, 48, 60), 6, nil)
	narrow := Optimize(pop, dash.Ladder(60), 6, nil)
	if wide.ExpectedMOS <= narrow.ExpectedMOS {
		t.Errorf("wide ladder %.3f should beat 60fps-only ladder %.3f",
			wide.ExpectedMOS, narrow.ExpectedMOS)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	pop := DefaultPopulation()
	cands := dash.Ladder(24, 30, 48, 60)
	a := Optimize(pop, cands, 5, nil)
	b := Optimize(pop, cands, 5, nil)
	if a.String() != b.String() {
		t.Error("optimizer nondeterministic")
	}
}
