// Package ladderopt implements the paper's §7 implication for Internet
// video providers: "platforms should consider offering a wider range of
// video encodings (e.g., bitrates and frame rates) to improve video QoE
// especially for low-end and medium-end smartphones."
//
// Given a device population (device classes with their memory-pressure
// mix, as measured by the §3 study) and a QoE matrix (how well each
// class plays each candidate rung in each pressure state), the
// optimizer picks the K-rung ladder that maximizes population-expected
// QoE, assuming each client selects its best playable rung — which is
// what a memory-aware ABR does.
//
// The QoE matrix can be estimated analytically from the player model
// (fast; EstimateQoE) or measured by running the full simulator
// (exact; see the ladder experiment in internal/exp).
package ladderopt

import (
	"fmt"
	"math"
	"sort"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
)

// Class is one slice of the device population.
type Class struct {
	Name string
	// Profile is the representative device.
	Profile device.Profile
	// Share is the population fraction (0–1).
	Share float64
	// StateMix is the fraction of viewing time spent in each pressure
	// state (should sum to ~1). The §3 study measures exactly this.
	StateMix map[proc.Level]float64
}

// DefaultPopulation mirrors the market mix the paper cites ([33]):
// low-end and mid-range devices dominate outside developed regions.
func DefaultPopulation() []Class {
	return []Class{
		{
			Name: "entry (1GB)", Profile: device.Nokia1, Share: 0.3,
			StateMix: map[proc.Level]float64{proc.Normal: 0.55, proc.Moderate: 0.35, proc.Critical: 0.10},
		},
		{
			Name: "mid (2GB)", Profile: device.Nexus5, Share: 0.45,
			StateMix: map[proc.Level]float64{proc.Normal: 0.75, proc.Moderate: 0.22, proc.Critical: 0.03},
		},
		{
			Name: "high (3GB)", Profile: device.Nexus6P, Share: 0.25,
			StateMix: map[proc.Level]float64{proc.Normal: 0.90, proc.Moderate: 0.09, proc.Critical: 0.01},
		},
	}
}

// QoEFunc scores one (class, rung, state) cell on the 1–5 MOS scale.
type QoEFunc func(c Class, rung dash.Rung, state proc.Level) float64

// EstimateQoE scores analytically from the player model: the decode
// pipeline's demand against the device's per-core capacity, degraded
// by a pressure factor, plus a quality reward for bitrate. It tracks
// the simulator well enough to rank rungs (the exp package's ladder
// experiment validates the chosen ladder against full simulations).
func EstimateQoE(c Class, rung dash.Rung, state proc.Level) float64 {
	// Fastest core handles the decode chain.
	maxSpeed := 0.0
	for _, s := range c.Profile.CoreSpeeds {
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	interval := 1.0 / float64(rung.FPS)
	decode := player.Firefox.DecodeCost(rung, dash.Travel).Seconds() / maxSpeed
	// Pressure steals pipeline time: calibrated against the fig9/fig11
	// grids (Moderate ≈ 35% loss on an entry device, Critical far more).
	loss := map[proc.Level]float64{proc.Normal: 0, proc.Moderate: 0.35, proc.Critical: 0.75}[state]
	// Larger devices absorb pressure better.
	gib := float64(c.Profile.RAM) / (1 << 30)
	loss /= gib
	effective := decode / (1 - loss)
	dropRate := 0.0
	if effective > interval {
		dropRate = 1 - interval/effective
	}
	// Crash regime: entry devices at Critical with big footprints.
	heap := float64(player.Firefox.BasePSS+player.Firefox.VideoHeap(rung)) / float64(c.Profile.RAM)
	if state == proc.Critical && heap > 0.25 {
		return 1
	}
	mos := 5 - 7*dropRate
	if mos < 1 {
		mos = 1
	}
	// Quality reward: higher bitrate is worth up to ~1 MOS point when
	// playback is smooth.
	quality := 0.25 * log2(float64(rung.Bitrate)/0.6e6)
	if quality > 1.2 {
		quality = 1.2
	}
	mos = mos - 1.2 + quality
	if mos < 1 {
		mos = 1
	}
	if mos > 5 {
		mos = 5
	}
	return mos
}

func log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}

// Result is a chosen ladder with its expected QoE.
type Result struct {
	Ladder []dash.Rung
	// ExpectedMOS is the population-weighted score of the ladder.
	ExpectedMOS float64
	// PerClass breaks the expectation down.
	PerClass map[string]float64
}

// expectedMOS computes the population score of a ladder: every
// (class, state) cell picks its best rung.
func expectedMOS(pop []Class, ladder []dash.Rung, qoe QoEFunc) (float64, map[string]float64) {
	perClass := make(map[string]float64, len(pop))
	total, weight := 0.0, 0.0
	for _, c := range pop {
		classScore, classWeight := 0.0, 0.0
		// Float accumulation is order-sensitive in the low bits, so
		// walk the pressure states in a fixed order rather than map
		// order to keep scores byte-identical across runs.
		states := make([]proc.Level, 0, len(c.StateMix))
		for state := range c.StateMix {
			states = append(states, state)
		}
		sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
		for _, state := range states {
			mix := c.StateMix[state]
			best := 0.0
			for _, r := range ladder {
				if s := qoe(c, r, state); s > best {
					best = s
				}
			}
			classScore += mix * best
			classWeight += mix
		}
		if classWeight > 0 {
			classScore /= classWeight
		}
		perClass[c.Name] = classScore
		total += c.Share * classScore
		weight += c.Share
	}
	if weight > 0 {
		total /= weight
	}
	return total, perClass
}

// Optimize greedily picks up to k rungs from candidates maximizing the
// population-expected MOS. Greedy is within a constant factor of
// optimal here because the objective is submodular (adding a rung only
// helps cells whose current best is worse).
func Optimize(pop []Class, candidates []dash.Rung, k int, qoe QoEFunc) Result {
	if qoe == nil {
		qoe = EstimateQoE
	}
	if k <= 0 || k > len(candidates) {
		k = len(candidates)
	}
	remaining := append([]dash.Rung(nil), candidates...)
	var ladder []dash.Rung
	for len(ladder) < k {
		bestIdx, bestScore := -1, -1.0
		for i, cand := range remaining {
			trial := append(append([]dash.Rung(nil), ladder...), cand)
			score, _ := expectedMOS(pop, trial, qoe)
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		ladder = append(ladder, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	sort.Slice(ladder, func(i, j int) bool { return ladder[i].Bitrate < ladder[j].Bitrate })
	score, perClass := expectedMOS(pop, ladder, qoe)
	return Result{Ladder: ladder, ExpectedMOS: score, PerClass: perClass}
}

// String renders the result.
func (r Result) String() string {
	s := fmt.Sprintf("expected MOS %.2f with ladder:", r.ExpectedMOS)
	for _, rung := range r.Ladder {
		s += " " + rung.String()
	}
	return s
}
