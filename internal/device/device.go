// Package device assembles the simulated Android smartphone: physical
// memory, CPU scheduler, storage, the kernel daemons (kswapd, lmkd,
// mmcqd), the process table, and a set of baseline system processes and
// cached apps.
//
// Profiles reproduce the three devices of the paper's §4.1 evaluation:
//
//   - Nokia 1 — entry level, 1 GB RAM, quad-core 1.1 GHz (Cortex-A53)
//   - Nexus 5 — 2 GB RAM, quad-core 2.33 GHz (Krait 400)
//   - Nexus 6P — 3 GB RAM, octa-core 4×1.55 GHz + 4×2.0 GHz big.LITTLE
//
// Core speeds are expressed relative to a reference 1 GHz Cortex-A53:
// the Krait and A57 cores get a per-clock uplift over the in-order A53.
package device

import (
	"fmt"
	"time"

	"coalqoe/internal/blockio"
	"coalqoe/internal/kswapd"
	"coalqoe/internal/lmkd"
	"coalqoe/internal/mem"
	"coalqoe/internal/proc"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/trace"
	"coalqoe/internal/units"
)

// Profile describes a device model.
type Profile struct {
	Name string
	// RAM is total physical memory.
	RAM units.Bytes
	// CoreSpeeds lists relative core speeds (1.0 = 1 GHz Cortex-A53).
	CoreSpeeds []float64
	// KernelReserve is pinned kernel/firmware memory.
	KernelReserve units.Bytes
	// ZRAMMax caps the compressed swap space.
	ZRAMMax units.Bytes
	// Thresholds are the cached-count signal thresholds (§2 fn. 6).
	Thresholds proc.SignalThresholds
	// AvailSignals optionally adds the vendor available-memory signal
	// thresholds of Figure 5 (used for the fleet devices; the three
	// evaluation phones use the measured cached-count semantics).
	AvailSignals proc.AvailThresholds
	// SystemAnon is the persistent system-process heap (system_server,
	// media services, SurfaceFlinger, …).
	SystemAnon units.Bytes
	// SystemFileWS is the hot file working set of system processes.
	SystemFileWS units.Bytes
	// CachedApps is the number of background apps resident at boot.
	CachedApps int
	// CachedAppAnon is the heap of each cached app.
	CachedAppAnon units.Bytes
}

// The paper's evaluation devices (§4.1).
var (
	Nokia1 = Profile{
		Name:          "Nokia 1",
		RAM:           1 * units.GiB,
		CoreSpeeds:    []float64{1.1, 1.1, 1.1, 1.1},
		KernelReserve: 240 * units.MiB,
		ZRAMMax:       288 * units.MiB,
		Thresholds:    proc.SignalThresholds{Moderate: 6, Low: 5, Critical: 3},
		SystemAnon:    90 * units.MiB,
		SystemFileWS:  50 * units.MiB,
		CachedApps:    10,
		CachedAppAnon: 14 * units.MiB,
	}
	Nexus5 = Profile{
		Name:          "Nexus 5",
		RAM:           2 * units.GiB,
		CoreSpeeds:    []float64{3.6, 3.6, 3.6, 3.6},
		KernelReserve: 420 * units.MiB,
		ZRAMMax:       0, // stock Nexus 5 shipped without zRAM
		Thresholds:    proc.SignalThresholds{Moderate: 8, Low: 6, Critical: 4},
		SystemAnon:    160 * units.MiB,
		SystemFileWS:  90 * units.MiB,
		CachedApps:    11,
		CachedAppAnon: 30 * units.MiB,
	}
	Nexus6P = Profile{
		Name:          "Nexus 6P",
		RAM:           3 * units.GiB,
		CoreSpeeds:    []float64{1.55, 1.55, 1.55, 1.55, 4.0, 4.0, 4.0, 4.0},
		KernelReserve: 560 * units.MiB,
		ZRAMMax:       512 * units.MiB,
		Thresholds:    proc.SignalThresholds{Moderate: 10, Low: 8, Critical: 5},
		SystemAnon:    220 * units.MiB,
		SystemFileWS:  120 * units.MiB,
		CachedApps:    13,
		CachedAppAnon: 40 * units.MiB,
	}
)

// Generic builds a fleet-device profile for the §3 user-study
// simulation: RAM in GiB, core count and a single relative speed.
func Generic(name string, ram units.Bytes, cores int, speed float64) Profile {
	speeds := make([]float64, cores)
	for i := range speeds {
		speeds[i] = speed
	}
	// Scale constants with RAM, mirroring how vendors provision. The
	// signal thresholds sit a few processes below the resting cached
	// count, as on real devices: a burst of lmkd kills is what trips
	// them (§2 fn. 6).
	gib := float64(ram) / float64(units.GiB)
	cached := 7 + int(2*gib)
	// Vendor-specific available-memory thresholds with a deterministic
	// per-model spread (Figure 5 observes exactly this variation).
	vendor := 0.8 + 0.4*hash01(name)
	availAt := func(frac float64) units.Bytes {
		return units.Bytes(frac * vendor * float64(ram))
	}
	return Profile{
		Name:          name,
		RAM:           ram,
		CoreSpeeds:    speeds,
		KernelReserve: units.Bytes(float64(280*units.MiB) * (0.6 + 0.4*gib)),
		ZRAMMax:       ram / 4,
		Thresholds:    proc.SignalThresholds{Moderate: cached - 3, Low: cached - 5, Critical: cached - 7},
		AvailSignals: proc.AvailThresholds{
			Moderate: units.PagesOf(availAt(0.14)),
			Low:      units.PagesOf(availAt(0.10)),
			Critical: units.PagesOf(availAt(0.065)),
		},
		SystemAnon:    units.Bytes(float64(100*units.MiB) * (0.5 + 0.5*gib)),
		SystemFileWS:  units.Bytes(float64(50*units.MiB) * (0.5 + 0.5*gib)),
		CachedApps:    cached,
		CachedAppAnon: 28 * units.MiB,
	}
}

// hash01 maps a string to a deterministic value in [0, 1).
func hash01(s string) float64 {
	h := uint64(14695981039346656037)
	for _, c := range s {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return float64(h%10000) / 10000
}

// Device is a fully wired simulated smartphone.
type Device struct {
	Profile Profile
	Clock   *simclock.Clock
	Tracer  *trace.Tracer
	Sched   *sched.Scheduler
	Mem     *mem.Memory
	Disk    *blockio.Disk
	Kswapd  *kswapd.Daemon
	Lmkd    *lmkd.Daemon
	Table   *proc.Table

	// SurfaceFlinger is the system compositor thread; the video
	// pipeline submits per-frame composition work to it.
	SurfaceFlinger *sched.Thread

	// Telem and Sampler are non-nil when Options.Telemetry enabled the
	// metrics subsystem; one registry per device keeps parallel runs
	// share-nothing.
	Telem   *telemetry.Registry
	Sampler *telemetry.Sampler

	system *proc.Process
}

// Options tweak the assembly for ablation experiments.
type Options struct {
	// SchedTick overrides the scheduler quantum.
	SchedTick time.Duration
	// LmkdConfig overrides lmkd settings.
	LmkdConfig *lmkd.Config
	// KswapdConfig overrides kswapd settings.
	KswapdConfig *kswapd.Config
	// DiskConfig overrides storage settings (e.g. the mmcqd
	// FairPriority ablation).
	DiskConfig *blockio.Config
	// DisableZRAM forces zRAM off regardless of the profile (ablation).
	DisableZRAM bool
	// NoCachedApps boots without background apps.
	NoCachedApps bool
	// NoRecache disables the Android behavior of restarting killed
	// cached apps (ablation).
	NoRecache bool
	// Telemetry enables the metrics subsystem: every layer registers
	// its instruments in a per-device registry and a sim-clock sampler
	// snapshots them on the configured period (default 3 s, the
	// SignalCapturer cadence). Nil keeps telemetry off — the free
	// default.
	Telemetry *telemetry.Config
}

// New assembles a device from a profile. seed determines all stochastic
// behavior; identical seeds give identical runs.
func New(seed int64, p Profile, opts Options) *Device {
	clock := simclock.New(seed)
	tr := trace.New(0)
	s := sched.New(clock, sched.Config{CoreSpeeds: p.CoreSpeeds, Tracer: tr, Tick: opts.SchedTick})
	zram := p.ZRAMMax
	if opts.DisableZRAM {
		zram = 0
	}
	m := mem.New(clock, mem.Config{
		Total:         p.RAM,
		KernelReserve: p.KernelReserve,
		ZRAMMax:       zram,
		ZRAMRatio:     2.8,
	})
	dcfg := blockio.Config{}
	if opts.DiskConfig != nil {
		dcfg = *opts.DiskConfig
	}
	disk := blockio.New(clock, s, dcfg)
	kcfg := kswapd.Config{}
	if opts.KswapdConfig != nil {
		kcfg = *opts.KswapdConfig
	}
	k := kswapd.New(clock, s, m, disk, kcfg)
	table := proc.NewTable(clock, s, m, disk, k, p.Thresholds)
	table.Avail = p.AvailSignals
	lcfg := lmkd.Config{}
	if opts.LmkdConfig != nil {
		lcfg = *opts.LmkdConfig
	}
	lk := lmkd.New(clock, s, m, table, lcfg)

	d := &Device{
		Profile: p,
		Clock:   clock,
		Tracer:  tr,
		Sched:   s,
		Mem:     m,
		Disk:    disk,
		Kswapd:  k,
		Lmkd:    lk,
		Table:   table,
	}

	if opts.Telemetry != nil {
		d.Telem = telemetry.NewRegistry()
		m.Instrument(d.Telem)
		k.Instrument(d.Telem)
		lk.Instrument(d.Telem)
		disk.Instrument(d.Telem)
		s.Instrument(d.Telem)
		d.Sampler = telemetry.NewSampler(clock, d.Telem, *opts.Telemetry)
	}

	// Boot the baseline system processes.
	d.system = table.Start(proc.Spec{
		Name:        "system_server",
		Adj:         proc.AdjNative,
		AnonBytes:   p.SystemAnon,
		FileWSBytes: p.SystemFileWS,
		HotAnonFrac: 0.7,
		ExtraThreads: []string{
			"SurfaceFlinger", "Binder", "android.display",
		},
	})
	d.SurfaceFlinger = d.system.Thread("SurfaceFlinger")

	if !opts.NoCachedApps {
		for i := 0; i < p.CachedApps; i++ {
			table.Start(proc.Spec{
				Name:      fmt.Sprintf("bgapp%02d", i),
				Adj:       proc.AdjCached + i,
				Cached:    true,
				AnonBytes: p.CachedAppAnon,
			})
		}
	}

	// Light system background activity: Binder traffic, display
	// updates, job scheduler work. It keeps the cores from being
	// perfectly idle, so storage interrupts occasionally preempt
	// running threads even in the Normal state (Table 5's baseline).
	for i, th := range []*sched.Thread{d.system.Thread("Binder"), d.system.Thread("android.display")} {
		th := th
		offset := time.Duration(31*(i+1)) * time.Millisecond
		clock.Schedule(offset, func() {
			clock.Every(97*time.Millisecond, func() {
				jitter := 0.5 + clock.Rand().Float64()
				th.Enqueue(time.Duration(6*jitter*float64(time.Millisecond)), nil)
			})
		})
	}

	// System-wide demand paging: when the page cache cannot hold the
	// registered working sets, every running process refaults its
	// evicted pages — system services included. Each thread stalls in
	// uninterruptible sleep behind the storage queue, which is how the
	// thrashing floor under memory pressure affects even lightweight
	// foreground work. Faults are demand-driven (a blocked thread
	// raises no more), bounding the queue.
	sysFaultTargets := []*sched.Thread{
		d.system.Thread("Binder"), d.system.Thread("android.display"),
	}
	clock.Every(100*time.Millisecond, func() {
		deficit := m.RefaultDeficit()
		if deficit <= 0 {
			return
		}
		const sysFaultsPerSec = 1200
		n := int(sysFaultsPerSec * deficit * 0.1)
		rng := clock.Rand()
		for i := 0; i < n; i++ {
			th := sysFaultTargets[rng.Intn(len(sysFaultTargets))]
			if th.QueueLen() > 3 {
				continue
			}
			pages := units.Pages(8 + rng.Intn(24))
			barrier := th.EnqueueIOBarrier()
			disk.Read(pages, func() {
				m.FileRead(pages)
				barrier()
			})
		}
	})

	// Background write traffic: system services journal state
	// (settings, usage stats, logs) continuously. The dirty pages are
	// what reclaim must flush through mmcqd under pressure (§2).
	clock.Every(997*time.Millisecond, func() {
		dirty := units.PagesOf(384 * units.KiB)
		m.FileRead(dirty)
		m.MarkDirty(dirty)
	})

	// Periodic writeback: like the kernel's dirty-expiry flusher, aged
	// dirty pages go to storage every few seconds even with no memory
	// pressure — which is why mmcqd preempts video threads a few
	// hundred times even in the Normal state (Table 5).
	clock.Every(5*time.Second, func() {
		if flushed := m.BeginFlush(m.FileDirty()); flushed > 0 {
			disk.Write(flushed, func() { m.CompleteFlushClean(flushed) })
		}
	})

	// Android "tries to aggressively cache processes at all times"
	// (§2 fn. 6): killed cached apps respawn after a while, when
	// memory allows. This is what lets pressure states decay back
	// toward Normal (Figure 6) — and what a pressure tool must fight.
	if !opts.NoRecache {
		table.OnKill(func(victim *proc.Process, _ string) {
			if !victim.Cached {
				return
			}
			spec := proc.Spec{
				Name:      victim.Name + "'",
				Adj:       victim.Adj,
				Cached:    true,
				AnonBytes: victim.AnonPages().Bytes(),
			}
			var respawn func()
			respawn = func() {
				// Only restart when there is comfortable headroom.
				if float64(m.Available()) > 0.12*float64(m.Total()) {
					table.Start(spec)
					return
				}
				clock.Schedule(10*time.Second, respawn)
			}
			clock.Schedule(15*time.Second+time.Duration(clock.Rand().Intn(15000))*time.Millisecond, respawn)
		})
	}
	return d
}

// Run advances the simulation to the given absolute virtual time.
func (d *Device) Run(until time.Duration) { d.Clock.RunUntil(until) }

// Settle runs the device for the given duration from now, letting boot
// allocations and reclaim settle before an experiment starts.
func (d *Device) Settle(dur time.Duration) { d.Clock.RunUntil(d.Clock.Now() + dur) }

// String identifies the device.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%s RAM, %d cores)", d.Profile.Name, d.Profile.RAM, len(d.Profile.CoreSpeeds))
}
