package device

import (
	"testing"
	"time"

	"coalqoe/internal/proc"
	"coalqoe/internal/units"
)

func TestBootSettles(t *testing.T) {
	for _, p := range []Profile{Nokia1, Nexus5, Nexus6P} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			d := New(1, p, Options{})
			d.Settle(5 * time.Second)
			if d.Table.Level() != proc.Normal {
				t.Errorf("level = %v after boot, want Normal", d.Table.Level())
			}
			if got := d.Table.CachedCount(); got != p.CachedApps {
				t.Errorf("cached count = %d, want %d", got, p.CachedApps)
			}
			if d.Lmkd.KillCount != 0 {
				t.Errorf("lmkd killed %d processes during boot", d.Lmkd.KillCount)
			}
			if d.SurfaceFlinger == nil {
				t.Fatal("no SurfaceFlinger thread")
			}
			// Boot memory must be sane: anon covers system + cached apps.
			wantAnon := units.PagesOf(p.SystemAnon) + units.Pages(p.CachedApps)*units.PagesOf(p.CachedAppAnon)
			got := d.Mem.Anon() + d.Mem.ZRAMStored()
			if got < wantAnon*9/10 || got > wantAnon*11/10 {
				t.Errorf("anon+zram = %d pages, want ~%d", got, wantAnon)
			}
		})
	}
}

func TestUtilizationOrdering(t *testing.T) {
	// Smaller devices boot into higher memory utilization.
	var utils []float64
	for _, p := range []Profile{Nokia1, Nexus5, Nexus6P} {
		d := New(1, p, Options{})
		d.Settle(5 * time.Second)
		utils = append(utils, d.Mem.Utilization())
	}
	if !(utils[0] > utils[1] && utils[1] > utils[2]) {
		t.Errorf("utilization not decreasing with RAM: %v", utils)
	}
	// In-use devices in the study sit above 60% utilization; a freshly
	// booted device with idle cached apps sits somewhat below that.
	if utils[0] < 0.4 {
		t.Errorf("Nokia 1 boot utilization = %v, want >= 0.4", utils[0])
	}
}

func TestNoCachedAppsOption(t *testing.T) {
	d := New(1, Nokia1, Options{NoCachedApps: true})
	d.Settle(time.Second)
	if got := d.Table.CachedCount(); got != 0 {
		t.Errorf("cached count = %d with NoCachedApps", got)
	}
}

func TestDisableZRAM(t *testing.T) {
	d := New(1, Nokia1, Options{DisableZRAM: true})
	d.Settle(time.Second)
	d.Mem.AllocAnon(1000)
	d.Mem.ScanBatch(5000)
	if d.Mem.ZRAMStored() != 0 {
		t.Error("zRAM stored pages despite DisableZRAM")
	}
}

func TestGenericProfileScales(t *testing.T) {
	small := Generic("g1", 1*units.GiB, 4, 1.0)
	big := Generic("g8", 8*units.GiB, 8, 2.5)
	if small.Thresholds.Critical >= big.Thresholds.Critical {
		t.Error("bigger device should tolerate more cached apps before Critical")
	}
	if small.CachedApps >= big.CachedApps {
		t.Error("bigger device should cache more apps")
	}
	d := New(7, big, Options{})
	d.Settle(2 * time.Second)
	if d.Mem.Utilization() > 0.6 {
		t.Errorf("8 GiB device boots at %v utilization, want low", d.Mem.Utilization())
	}
}

func TestDeterministicBoot(t *testing.T) {
	run := func() (units.Pages, float64) {
		d := New(42, Nokia1, Options{})
		d.Settle(3 * time.Second)
		return d.Mem.Free(), d.Sched.Utilization()
	}
	f1, u1 := run()
	f2, u2 := run()
	if f1 != f2 || u1 != u2 {
		t.Errorf("boot diverged across identical seeds: free %d vs %d, util %v vs %v", f1, f2, u1, u2)
	}
}

func TestString(t *testing.T) {
	d := New(1, Nokia1, Options{})
	if d.String() == "" {
		t.Error("empty String()")
	}
}

func TestNoRecacheOption(t *testing.T) {
	d := New(9, Nokia1, Options{NoRecache: true})
	d.Settle(2 * time.Second)
	victim := d.Table.Processes()
	var cached *proc.Process
	for _, p := range victim {
		if p.Cached {
			cached = p
			break
		}
	}
	if cached == nil {
		t.Fatal("no cached processes at boot")
	}
	d.Table.Kill(cached, "test")
	before := d.Table.CachedCount()
	d.Settle(2 * time.Minute)
	if got := d.Table.CachedCount(); got > before {
		t.Errorf("cached count rose from %d to %d with NoRecache", before, got)
	}
}

func TestRecacheRestoresApps(t *testing.T) {
	d := New(9, Nokia1, Options{})
	d.Settle(2 * time.Second)
	var cached *proc.Process
	for _, p := range d.Table.Processes() {
		if p.Cached {
			cached = p
			break
		}
	}
	d.Table.Kill(cached, "test")
	before := d.Table.CachedCount()
	d.Settle(2 * time.Minute) // plenty of free memory: respawn fires
	if got := d.Table.CachedCount(); got <= before {
		t.Errorf("cached count stayed at %d: killed app never respawned", got)
	}
}

func TestSchedTickOption(t *testing.T) {
	d := New(3, Nokia1, Options{SchedTick: 10 * time.Millisecond})
	if got := d.Sched.Tick(); got != 10*time.Millisecond {
		t.Errorf("Tick = %v", got)
	}
}

func TestGenericVendorThresholdSpread(t *testing.T) {
	a := Generic("vendorA", 2*units.GiB, 4, 1.5)
	b := Generic("vendorB", 2*units.GiB, 4, 1.5)
	if a.AvailSignals == b.AvailSignals {
		t.Error("identical vendor thresholds for different models; Figure 5 expects spread")
	}
	if a.AvailSignals.Moderate <= a.AvailSignals.Low || a.AvailSignals.Low <= a.AvailSignals.Critical {
		t.Errorf("threshold ordering broken: %+v", a.AvailSignals)
	}
}
