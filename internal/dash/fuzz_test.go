package dash

import (
	"fmt"
	"testing"
)

// FuzzParseRepID holds parseRepID to two properties on arbitrary
// input: it never panics, and any id it accepts round-trips — the
// canonical rendering of the parsed (resolution, fps) re-parses to
// the same pair. (The raw string itself need not survive: "1080p060"
// parses to the same rung as "1080p60".)
func FuzzParseRepID(f *testing.F) {
	seeds := []string{
		"1080p60", "240p24", "1440p30", "720p",
		"", "p", "pp", "1080pp60", "720p30p2", "480p 30",
		"720p9223372036854775808", "720p-1", "1080p0",
		"999p30", "p60", "1080", "２４０p３０",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, id string) {
		res, fps, err := parseRepID(id)
		if err != nil {
			return
		}
		if fps <= 0 {
			t.Fatalf("parseRepID(%q) accepted fps %d", id, fps)
		}
		if w, h := res.Dimensions(); w == 0 || h == 0 {
			t.Fatalf("parseRepID(%q) accepted unknown resolution %v", id, res)
		}
		canon := fmt.Sprintf("%s%d", res, fps)
		res2, fps2, err := parseRepID(canon)
		if err != nil || res2 != res || fps2 != fps {
			t.Fatalf("round-trip %q -> %q -> (%v,%d,%v), want (%v,%d)",
				id, canon, res2, fps2, err, res, fps)
		}
	})
}
