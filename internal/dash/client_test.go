package dash

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"coalqoe/internal/resilience"
)

// backpressureHandler rejects the first `fail` requests with status
// and a Retry-After hint, then serves normally.
type backpressureHandler struct {
	inner      http.Handler
	failures   int
	status     int
	retryAfter string
	seen       atomic.Int64
}

func (h *backpressureHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if int(h.seen.Add(1)) <= h.failures {
		if h.retryAfter != "" {
			w.Header().Set("Retry-After", h.retryAfter)
		}
		http.Error(w, http.StatusText(h.status), h.status)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// resClient builds a client against a backpressure front with a fake
// clock and sleep recorder.
func resClient(t *testing.T, h *backpressureHandler, p RetryPolicy) (*Client, *[]time.Duration) {
	t.Helper()
	h.inner = NewServer(NewManifest(TestVideos[0], 24, 30, 48, 60))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	fake := time.Unix(1700000000, 0)
	var slept []time.Duration
	c := NewClient(ts.URL, func() time.Time { return fake })
	c.SetRetry(p, func(d time.Duration) { slept = append(slept, d) })
	return c, &slept
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"abc", 0},
		{"-1", 0},
		{"0", 0},
		{"2", 2 * time.Second},
		{"10", 10 * time.Second},
		{"9999", maxRetryAfter}, // capped: a bad hint must not park a player
		{"2.5", 0},              // HTTP allows integer seconds only
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	// 503 + Retry-After: 3 with a 100ms base backoff: the server's
	// hint dominates the exponential schedule.
	c, slept := resClient(t,
		&backpressureHandler{failures: 1, status: http.StatusServiceUnavailable, retryAfter: "3"},
		RetryPolicy{Attempts: 3, Backoff: 100 * time.Millisecond})
	if _, err := c.FetchManifest(); err != nil {
		t.Fatalf("manifest after backpressure: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] != 3*time.Second {
		t.Errorf("slept %v, want [3s] (server hint over base backoff)", *slept)
	}
	if s := c.ResilienceStats(); s.Waited != 1 {
		t.Errorf("Waited = %d, want 1", s.Waited)
	}
}

func TestClientRetries429Throttle(t *testing.T) {
	c, slept := resClient(t,
		&backpressureHandler{failures: 1, status: http.StatusTooManyRequests, retryAfter: "2"},
		RetryPolicy{Attempts: 3, Backoff: 100 * time.Millisecond})
	if _, _, err := c.FetchSegment("480p30", 0); err != nil {
		t.Fatalf("segment after throttle: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Errorf("slept %v, want [2s]", *slept)
	}
}

func TestClientJittersBackoff(t *testing.T) {
	c, slept := resClient(t,
		&backpressureHandler{failures: 2, status: http.StatusServiceUnavailable},
		RetryPolicy{Attempts: 3, Backoff: time.Second, BackoffCap: 8 * time.Second})
	c.SetResilience(Resilience{Jitter: rand.New(rand.NewSource(7))})
	if _, err := c.FetchManifest(); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %v, want 2 jittered backoffs", *slept)
	}
	for i, base := range []time.Duration{time.Second, 2 * time.Second} {
		if d := (*slept)[i]; d < base/2 || d >= base+base/2 {
			t.Errorf("backoff[%d] = %v outside jitter range [%v, %v)", i, d, base/2, base+base/2)
		}
		if (*slept)[i] == 0 || (*slept)[i] == time.Second || (*slept)[i] == 2*time.Second {
			t.Errorf("backoff[%d] = %v looks unjittered", i, (*slept)[i])
		}
	}
	// Same seed lane, same jitter sequence.
	c2, slept2 := resClient(t,
		&backpressureHandler{failures: 2, status: http.StatusServiceUnavailable},
		RetryPolicy{Attempts: 3, Backoff: time.Second, BackoffCap: 8 * time.Second})
	c2.SetResilience(Resilience{Jitter: rand.New(rand.NewSource(7))})
	if _, err := c2.FetchManifest(); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	for i := range *slept {
		if (*slept)[i] != (*slept2)[i] {
			t.Errorf("jitter not deterministic on the seed lane: %v vs %v", *slept, *slept2)
		}
	}
}

func TestClientRetryBudgetExhaustion(t *testing.T) {
	h := &backpressureHandler{failures: 100, status: http.StatusServiceUnavailable}
	c, _ := resClient(t, h, RetryPolicy{Attempts: 10, Backoff: time.Millisecond})
	c.SetResilience(Resilience{Budget: resilience.NewRetryBudget(resilience.BudgetConfig{Capacity: 2})})
	_, err := c.FetchManifest()
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	// 1 first attempt + 2 budgeted retries; the other 7 were refused.
	if n := h.seen.Load(); n != 3 {
		t.Errorf("server saw %d requests, want 3 (budget must bound retries)", n)
	}
	if s := c.ResilienceStats(); s.Budget.Spent != 2 || s.Budget.Denied != 1 {
		t.Errorf("budget stats = %+v", s.Budget)
	}
	// The original failure survives in the chain for classification.
	if got := Classify(err); got != ClassBreaker && got != ClassHTTP5xx {
		// A budget refusal wraps the prior attempt's error; 503 without
		// a hint classifies as http5xx.
		t.Errorf("Classify(%v) = %q", err, got)
	}
}

func TestClientBreakerFailsFast(t *testing.T) {
	h := &backpressureHandler{failures: 1000, status: http.StatusInternalServerError}
	c, _ := resClient(t, h, RetryPolicy{Attempts: 2, Backoff: time.Millisecond})
	c.SetResilience(Resilience{Breaker: resilience.NewBreaker(resilience.BreakerConfig{
		FailThreshold: 3, Cooldown: time.Hour,
	})})
	// First two fetches burn 2 attempts each; the 3rd failure trips
	// the breaker mid-second-fetch.
	c.FetchManifest()
	c.FetchManifest()
	before := h.seen.Load()
	_, err := c.FetchManifest()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want circuit open", err)
	}
	if got := Classify(err); got != ClassBreaker {
		t.Errorf("Classify = %q, want %q", got, ClassBreaker)
	}
	if h.seen.Load() != before {
		t.Error("open circuit still hit the network")
	}
	if s := c.ResilienceStats(); s.Breaker.Opens != 1 || s.Breaker.FastFails == 0 {
		t.Errorf("breaker stats = %+v", s.Breaker)
	}
}

func TestClientHedgedSegmentFetch(t *testing.T) {
	// The first request stalls until a second (hedged) request has been
	// seen; with the recorded sleep returning instantly the hedge fires
	// immediately and wins the race.
	var seen atomic.Int64
	release := make(chan struct{})
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	inner := NewServer(m)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) == 1 {
			<-release
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })

	fake := time.Unix(1700000000, 0)
	c := NewClient(ts.URL, func() time.Time { return fake })
	c.SetRetry(RetryPolicy{Attempts: 1}, func(time.Duration) {})
	c.SetResilience(Resilience{Hedge: 50 * time.Millisecond})
	rung, _ := m.Rung(R480p, 30)
	got, _, err := c.FetchSegment("480p30", 5)
	if err != nil {
		t.Fatalf("hedged fetch: %v", err)
	}
	if want := m.Video.SegmentBytes(rung, 5); got != want {
		t.Errorf("bytes = %d, want %d", got, want)
	}
	if s := c.ResilienceStats(); s.Hedges != 1 {
		t.Errorf("hedges = %d, want 1", s.Hedges)
	}
}

func TestClientSendsTenantHeader(t *testing.T) {
	var gotTenant atomic.Value
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	inner := NewServer(m)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTenant.Store(r.Header.Get(TenantHeader))
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, func() time.Time { return time.Unix(1700000000, 0) })
	c.SetResilience(Resilience{Tenant: "acme"})
	if _, err := c.FetchManifest(); err != nil {
		t.Fatal(err)
	}
	if gotTenant.Load() != "acme" {
		t.Errorf("tenant header = %q, want acme", gotTenant.Load())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&StatusError{Status: 429, Msg: "throttled"}, ClassShed},
		{&StatusError{Status: 503, RetryAfter: time.Second, Msg: "shed"}, ClassShed},
		{&StatusError{Status: 503, Msg: "chaos"}, ClassHTTP5xx},
		{&StatusError{Status: 502, Msg: "chaos"}, ClassHTTP5xx},
		{&StatusError{Status: 404, Msg: "gone"}, ClassHTTP4xx},
		{fmt.Errorf("wrap: %w", ErrCircuitOpen), ClassBreaker},
		{fmt.Errorf("wrap: %w", &StatusError{Status: 500, Msg: "x"}), ClassHTTP5xx},
		{errors.New("connection refused"), ClassTransport},
		{fakeTimeout{}, ClassTimeout},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// fakeTimeout implements net.Error's timeout surface.
type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "deadline exceeded" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return false }
