package dash

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"testing"
	"time"

	"coalqoe/internal/cdn"
	"coalqoe/internal/faults"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manifest) {
	t.Helper()
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(ts.Close)
	return ts, m
}

func TestManifestRoundTrip(t *testing.T) {
	ts, m := newTestServer(t)
	c := NewClient(ts.URL, time.Now)
	dto, err := c.FetchManifest()
	if err != nil {
		t.Fatal(err)
	}
	if dto.Title != m.Video.Title {
		t.Errorf("title = %q", dto.Title)
	}
	if len(dto.Representations) != len(m.Rungs) {
		t.Errorf("got %d representations, want %d", len(dto.Representations), len(m.Rungs))
	}
	if dto.SegmentDuration != 4 {
		t.Errorf("segment duration = %v", dto.SegmentDuration)
	}
}

func TestSegmentSizeMatchesModel(t *testing.T) {
	ts, m := newTestServer(t)
	c := NewClient(ts.URL, time.Now)
	rung, _ := m.Rung(R480p, 30)
	want := m.Video.SegmentBytes(rung, 5)
	got, dur, err := c.FetchSegment("480p30", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("segment bytes = %d, want %d", got, want)
	}
	if dur <= 0 {
		t.Error("non-positive transfer duration")
	}
}

func TestBadRequests(t *testing.T) {
	ts, m := newTestServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/video/480p30/" + strconv.Itoa(m.Video.Segments()), http.StatusNotFound}, // past end
		{"/video/480p30/-1", http.StatusNotFound},
		{"/video/999p30/0", http.StatusBadRequest},
		{"/video/480p30", http.StatusBadRequest},
		{"/video/480pXX/0", http.StatusBadRequest},
		{"/video/481p30/0", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("GET %s = %d, want %d", c.path, resp.StatusCode, c.code)
		}
	}
}

func TestParseRepID(t *testing.T) {
	valid := []struct {
		id  string
		res Resolution
		fps int
	}{
		{"1080p60", R1080p, 60},
		{"240p24", R240p, 24},
		{"1440p30", R1440p, 30},
	}
	for _, c := range valid {
		r, fps, err := parseRepID(c.id)
		if err != nil || r != c.res || fps != c.fps {
			t.Errorf("parseRepID(%q) = %v, %d, %v; want %v, %d", c.id, r, fps, err, c.res, c.fps)
		}
	}
	invalid := []string{
		"",      // empty
		"1080",  // no p
		"p60",   // no resolution digits
		"1080p", // empty fps
		"1080p0",
		"1080px",
		"1080p-60",                // negative fps
		"1080pp60",                // double p
		"720p30p2",                // multiple p: trailing junk in fps
		"720p9223372036854775808", // fps overflows int64
		"480p 30",                 // embedded space
		"999p30",                  // unknown resolution
	}
	for _, bad := range invalid {
		if _, _, err := parseRepID(bad); err == nil {
			t.Errorf("parseRepID(%q) should fail", bad)
		}
	}
}

// TestRetryableBoundaries pins the retry classification at the status
// class edges: transport errors (0), 5xx, and 429 throttles retry
// (the governor's quota shed is an invitation to come back after the
// Retry-After hint, not a permanent rejection); other 3xx/4xx do not.
func TestRetryableBoundaries(t *testing.T) {
	cases := []struct {
		status int
		want   bool
	}{
		{0, true},   // transport error
		{100, true}, // informational: not a rejection
		{200, true}, // (never consulted on success, but below the 4xx fence)
		{301, true},
		{399, true}, // last pre-4xx status
		{400, false},
		{404, false},
		{429, true},  // quota throttle: retry after the hint
		{499, false}, // last 4xx
		{500, true},
		{503, true},
		{599, true},
	}
	for _, c := range cases {
		if got := retryable(c.status); got != c.want {
			t.Errorf("retryable(%d) = %v, want %v", c.status, got, c.want)
		}
	}
}

// TestContentLengthMatchesBody asserts, for every rung in the
// manifest, that the advertised Content-Length equals both the bytes
// actually written and the size model.
func TestContentLengthMatchesBody(t *testing.T) {
	ts, m := newTestServer(t)
	for _, rung := range m.Rungs {
		id := rung.Resolution.String() + strconv.Itoa(rung.FPS)
		resp, err := http.Get(ts.URL + "/video/" + id + "/0")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: read body: %v", id, err)
		}
		cl, err := strconv.Atoi(resp.Header.Get("Content-Length"))
		if err != nil {
			t.Fatalf("%s: bad Content-Length %q", id, resp.Header.Get("Content-Length"))
		}
		if len(body) != cl {
			t.Errorf("%s: wrote %d bytes, Content-Length says %d", id, len(body), cl)
		}
		if want := int(m.Video.SegmentBytes(rung, 0)); len(body) != want {
			t.Errorf("%s: wrote %d bytes, size model says %d", id, len(body), want)
		}
	}
}

// TestCachedServerMetrics drives a cache-enabled server and asserts
// the dash.cache.* series appear in /metrics with the right algebra.
func TestCachedServerMetrics(t *testing.T) {
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	cache := cdn.New(cdn.Config{Capacity: 64 << 20, AdmitAfter: 1, Coalesce: true})
	ts := httptest.NewServer(NewServerOpts(m, ServerOptions{Cache: cache}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, time.Now)

	rung, _ := m.Rung(R480p, 30)
	want := m.Video.SegmentBytes(rung, 2)
	for i := 0; i < 3; i++ { // 1 miss (admitted), then 2 hits
		got, _, err := c.FetchSegment("480p30", 2)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("fetch %d: %d bytes, want %d (cached body must match the model)", i, got, want)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"dash.cache.hits":      2,
		"dash.cache.misses":    1,
		"dash.cache.fills":     1,
		"dash.cache.admitted":  1,
		"dash.cache.evictions": 0,
		"dash.cache.entries":   1,
		"dash.cache.bytes":     float64(want),
		"dash.cache.hit_rate":  2.0 / 3.0,
	}
	keys := make([]string, 0, len(checks))
	for k := range checks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, ok := got[k]
		if !ok {
			t.Errorf("/metrics missing %s", k)
			continue
		}
		if v != checks[k] {
			t.Errorf("%s = %v, want %v", k, v, checks[k])
		}
	}
}

// TestChaosServer puts a permanent outage window in front of segments
// and asserts 5xx on segments while the manifest and /metrics stay up
// (the chaos gate covers the video path only).
func TestChaosServer(t *testing.T) {
	m := NewManifest(TestVideos[0], 30)
	chaos := cdn.NewChaosFromWindows(
		[]faults.Window{{Kind: faults.NetOutage, Start: 0, Duration: time.Hour}},
		1, time.Hour, time.Now, func(time.Duration) {})
	ts := httptest.NewServer(NewServerOpts(m, ServerOptions{Chaos: chaos}))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/video/480p30/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("segment during outage = %d, want 503", resp.StatusCode)
	}
	for _, path := range []string{"/manifest.json", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s during outage = %d, want 200 (chaos gates segments only)", path, resp.StatusCode)
		}
	}
	// The injected rejection is visible in /metrics.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["dash.chaos.rejected"] != 1 {
		t.Errorf("dash.chaos.rejected = %v, want 1", got["dash.chaos.rejected"])
	}
	// And the rejected request did not count as a segment request.
	if got["dash.segment_requests.480p30"] != 0 {
		t.Errorf("rejected request counted as segment request: %v", got["dash.segment_requests.480p30"])
	}
}

func TestClientSegmentNotFound(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL, time.Now)
	if _, _, err := c.FetchSegment("480p30", 10000); err == nil {
		t.Error("expected error for out-of-range segment")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, m := newTestServer(t)
	c := NewClient(ts.URL, time.Now)
	if _, err := c.FetchManifest(); err != nil {
		t.Fatal(err)
	}
	rung, _ := m.Rung(R480p, 30)
	wantBytes := int64(m.Video.SegmentBytes(rung, 0) + m.Video.SegmentBytes(rung, 1))
	for seg := 0; seg < 2; seg++ {
		if _, _, err := c.FetchSegment("480p30", seg); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func() map[string]float64 {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics = %d", resp.StatusCode)
		}
		var out map[string]float64
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	got := fetch()
	if got["dash.manifest_requests"] != 1 {
		t.Errorf("manifest_requests = %v, want 1", got["dash.manifest_requests"])
	}
	if got["dash.segment_requests.480p30"] != 2 {
		t.Errorf("segment_requests.480p30 = %v, want 2", got["dash.segment_requests.480p30"])
	}
	if got["dash.segment_bytes.480p30"] != float64(wantBytes) {
		t.Errorf("segment_bytes.480p30 = %v, want %d", got["dash.segment_bytes.480p30"], wantBytes)
	}
	// Unrequested rungs report explicit zeros.
	if v, ok := got["dash.segment_requests.1080p60"]; !ok || v != 0 {
		t.Errorf("segment_requests.1080p60 = %v (present=%v), want explicit 0", v, ok)
	}
	// The /metrics request itself is the only one in flight.
	if got["dash.inflight_requests"] != 1 {
		t.Errorf("inflight_requests = %v, want 1", got["dash.inflight_requests"])
	}
	// 404s must not count as segment requests.
	resp, err := http.Get(ts.URL + "/video/480p30/99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if again := fetch(); again["dash.segment_requests.480p30"] != 2 {
		t.Errorf("404 counted as a segment request: %v", again["dash.segment_requests.480p30"])
	}
}

// flakyHandler fails the first failures requests with the given status
// (0 means drop the connection), then delegates to the real server.
type flakyHandler struct {
	inner    http.Handler
	failures int
	status   int
	seen     int
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.seen++
	if h.seen <= h.failures {
		if h.status == 0 {
			// Drop the connection: a transport-level failure.
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		}
		http.Error(w, "injected failure", h.status)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// retryClient builds a client against a flaky front of the test server
// with a fake clock and a sleep recorder, so backoff timing is asserted
// without any wall-clock waiting.
func retryClient(t *testing.T, fail, status int, p RetryPolicy) (*Client, *Manifest, *[]time.Duration) {
	t.Helper()
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	ts := httptest.NewServer(&flakyHandler{inner: NewServer(m), failures: fail, status: status})
	t.Cleanup(ts.Close)
	fake := time.Unix(1700000000, 0)
	now := func() time.Time { return fake }
	var slept []time.Duration
	c := NewClient(ts.URL, now)
	c.SetRetry(p, func(d time.Duration) { slept = append(slept, d) })
	return c, m, &slept
}

func TestClientRetriesTransportErrors(t *testing.T) {
	c, m, slept := retryClient(t, 2, 0, RetryPolicy{Attempts: 4, Backoff: 100 * time.Millisecond, BackoffCap: time.Second})
	rung, _ := m.Rung(R480p, 30)
	got, _, err := c.FetchSegment("480p30", 3)
	if err != nil {
		t.Fatalf("fetch after retries: %v", err)
	}
	if want := m.Video.SegmentBytes(rung, 3); got != want {
		t.Errorf("segment bytes = %d, want %d", got, want)
	}
	// Two failures -> two backoffs, exponentially doubled.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("backoff[%d] = %v, want %v", i, (*slept)[i], d)
		}
	}
}

func TestClientRetries5xxAndCapsBackoff(t *testing.T) {
	c, _, slept := retryClient(t, 3, http.StatusServiceUnavailable,
		RetryPolicy{Attempts: 4, Backoff: time.Second, BackoffCap: 2 * time.Second})
	if _, err := c.FetchManifest(); err != nil {
		t.Fatalf("manifest after retries: %v", err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 2 * time.Second}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("backoff[%d] = %v, want %v (cap)", i, (*slept)[i], d)
		}
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	c, _, slept := retryClient(t, 0, 0, RetryPolicy{Attempts: 5})
	if _, _, err := c.FetchSegment("480p30", 99999); err == nil {
		t.Fatal("expected error for out-of-range segment")
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v retrying a 404", *slept)
	}
}

func TestClientExhaustsAttempts(t *testing.T) {
	c, _, slept := retryClient(t, 100, http.StatusInternalServerError,
		RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond})
	if _, err := c.FetchManifest(); err == nil {
		t.Fatal("expected error after exhausting attempts")
	}
	if len(*slept) != 2 {
		t.Errorf("3 attempts should back off twice, slept %v", *slept)
	}
}
