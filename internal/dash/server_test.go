package dash

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manifest) {
	t.Helper()
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(ts.Close)
	return ts, m
}

func TestManifestRoundTrip(t *testing.T) {
	ts, m := newTestServer(t)
	c := NewClient(ts.URL, time.Now)
	dto, err := c.FetchManifest()
	if err != nil {
		t.Fatal(err)
	}
	if dto.Title != m.Video.Title {
		t.Errorf("title = %q", dto.Title)
	}
	if len(dto.Representations) != len(m.Rungs) {
		t.Errorf("got %d representations, want %d", len(dto.Representations), len(m.Rungs))
	}
	if dto.SegmentDuration != 4 {
		t.Errorf("segment duration = %v", dto.SegmentDuration)
	}
}

func TestSegmentSizeMatchesModel(t *testing.T) {
	ts, m := newTestServer(t)
	c := NewClient(ts.URL, time.Now)
	rung, _ := m.Rung(R480p, 30)
	want := m.Video.SegmentBytes(rung, 5)
	got, dur, err := c.FetchSegment("480p30", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("segment bytes = %d, want %d", got, want)
	}
	if dur <= 0 {
		t.Error("non-positive transfer duration")
	}
}

func TestBadRequests(t *testing.T) {
	ts, m := newTestServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/video/480p30/" + strconv.Itoa(m.Video.Segments()), http.StatusNotFound}, // past end
		{"/video/480p30/-1", http.StatusNotFound},
		{"/video/999p30/0", http.StatusBadRequest},
		{"/video/480p30", http.StatusBadRequest},
		{"/video/480pXX/0", http.StatusBadRequest},
		{"/video/481p30/0", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("GET %s = %d, want %d", c.path, resp.StatusCode, c.code)
		}
	}
}

func TestParseRepID(t *testing.T) {
	r, fps, err := parseRepID("1080p60")
	if err != nil || r != R1080p || fps != 60 {
		t.Errorf("parseRepID = %v, %d, %v", r, fps, err)
	}
	for _, bad := range []string{"", "1080", "p60", "1080p", "1080p0", "1080px"} {
		if _, _, err := parseRepID(bad); err == nil {
			t.Errorf("parseRepID(%q) should fail", bad)
		}
	}
}

func TestClientSegmentNotFound(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL, time.Now)
	if _, _, err := c.FetchSegment("480p30", 10000); err == nil {
		t.Error("expected error for out-of-range segment")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, m := newTestServer(t)
	c := NewClient(ts.URL, time.Now)
	if _, err := c.FetchManifest(); err != nil {
		t.Fatal(err)
	}
	rung, _ := m.Rung(R480p, 30)
	wantBytes := int64(m.Video.SegmentBytes(rung, 0) + m.Video.SegmentBytes(rung, 1))
	for seg := 0; seg < 2; seg++ {
		if _, _, err := c.FetchSegment("480p30", seg); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func() map[string]float64 {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics = %d", resp.StatusCode)
		}
		var out map[string]float64
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	got := fetch()
	if got["dash.manifest_requests"] != 1 {
		t.Errorf("manifest_requests = %v, want 1", got["dash.manifest_requests"])
	}
	if got["dash.segment_requests.480p30"] != 2 {
		t.Errorf("segment_requests.480p30 = %v, want 2", got["dash.segment_requests.480p30"])
	}
	if got["dash.segment_bytes.480p30"] != float64(wantBytes) {
		t.Errorf("segment_bytes.480p30 = %v, want %d", got["dash.segment_bytes.480p30"], wantBytes)
	}
	// Unrequested rungs report explicit zeros.
	if v, ok := got["dash.segment_requests.1080p60"]; !ok || v != 0 {
		t.Errorf("segment_requests.1080p60 = %v (present=%v), want explicit 0", v, ok)
	}
	// The /metrics request itself is the only one in flight.
	if got["dash.inflight_requests"] != 1 {
		t.Errorf("inflight_requests = %v, want 1", got["dash.inflight_requests"])
	}
	// 404s must not count as segment requests.
	resp, err := http.Get(ts.URL + "/video/480p30/99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if again := fetch(); again["dash.segment_requests.480p30"] != 2 {
		t.Errorf("404 counted as a segment request: %v", again["dash.segment_requests.480p30"])
	}
}

// flakyHandler fails the first failures requests with the given status
// (0 means drop the connection), then delegates to the real server.
type flakyHandler struct {
	inner    http.Handler
	failures int
	status   int
	seen     int
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.seen++
	if h.seen <= h.failures {
		if h.status == 0 {
			// Drop the connection: a transport-level failure.
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		}
		http.Error(w, "injected failure", h.status)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// retryClient builds a client against a flaky front of the test server
// with a fake clock and a sleep recorder, so backoff timing is asserted
// without any wall-clock waiting.
func retryClient(t *testing.T, fail, status int, p RetryPolicy) (*Client, *Manifest, *[]time.Duration) {
	t.Helper()
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	ts := httptest.NewServer(&flakyHandler{inner: NewServer(m), failures: fail, status: status})
	t.Cleanup(ts.Close)
	fake := time.Unix(1700000000, 0)
	now := func() time.Time { return fake }
	var slept []time.Duration
	c := NewClient(ts.URL, now)
	c.SetRetry(p, func(d time.Duration) { slept = append(slept, d) })
	return c, m, &slept
}

func TestClientRetriesTransportErrors(t *testing.T) {
	c, m, slept := retryClient(t, 2, 0, RetryPolicy{Attempts: 4, Backoff: 100 * time.Millisecond, BackoffCap: time.Second})
	rung, _ := m.Rung(R480p, 30)
	got, _, err := c.FetchSegment("480p30", 3)
	if err != nil {
		t.Fatalf("fetch after retries: %v", err)
	}
	if want := m.Video.SegmentBytes(rung, 3); got != want {
		t.Errorf("segment bytes = %d, want %d", got, want)
	}
	// Two failures -> two backoffs, exponentially doubled.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("backoff[%d] = %v, want %v", i, (*slept)[i], d)
		}
	}
}

func TestClientRetries5xxAndCapsBackoff(t *testing.T) {
	c, _, slept := retryClient(t, 3, http.StatusServiceUnavailable,
		RetryPolicy{Attempts: 4, Backoff: time.Second, BackoffCap: 2 * time.Second})
	if _, err := c.FetchManifest(); err != nil {
		t.Fatalf("manifest after retries: %v", err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 2 * time.Second}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("backoff[%d] = %v, want %v (cap)", i, (*slept)[i], d)
		}
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	c, _, slept := retryClient(t, 0, 0, RetryPolicy{Attempts: 5})
	if _, _, err := c.FetchSegment("480p30", 99999); err == nil {
		t.Fatal("expected error for out-of-range segment")
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v retrying a 404", *slept)
	}
}

func TestClientExhaustsAttempts(t *testing.T) {
	c, _, slept := retryClient(t, 100, http.StatusInternalServerError,
		RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond})
	if _, err := c.FetchManifest(); err == nil {
		t.Fatal("expected error after exhausting attempts")
	}
	if len(*slept) != 2 {
		t.Errorf("3 attempts should back off twice, slept %v", *slept)
	}
}
