package dash

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"coalqoe/internal/cdn"
	"coalqoe/internal/units"
)

// ManifestDTO is the wire form of a manifest (the MPD equivalent,
// serialized as JSON for simplicity).
type ManifestDTO struct {
	Title           string    `json:"title"`
	Genre           string    `json:"genre"`
	DurationSec     float64   `json:"duration_sec"`
	SegmentDuration float64   `json:"segment_duration_sec"`
	Representations []RungDTO `json:"representations"`
}

// RungDTO is one representation in the wire manifest.
type RungDTO struct {
	ID      string  `json:"id"` // e.g. "1080p60"
	Width   int     `json:"width"`
	Height  int     `json:"height"`
	FPS     int     `json:"fps"`
	Bitrate float64 `json:"bitrate_bps"`
}

// DTO converts a manifest to its wire form.
func (m *Manifest) DTO() ManifestDTO {
	dto := ManifestDTO{
		Title:           m.Video.Title,
		Genre:           m.Video.Genre.String(),
		DurationSec:     m.Video.Duration.Seconds(),
		SegmentDuration: m.Video.SegmentDuration.Seconds(),
	}
	for _, r := range m.Rungs {
		w, h := r.Resolution.Dimensions()
		dto.Representations = append(dto.Representations, RungDTO{
			ID:      fmt.Sprintf("%s%d", r.Resolution, r.FPS),
			Width:   w,
			Height:  h,
			FPS:     r.FPS,
			Bitrate: float64(r.Bitrate),
		})
	}
	return dto
}

// Server serves a manifest and synthetic segments over HTTP, standing
// in for the paper's Apache video server (§4.1). Routes:
//
//	GET /manifest.json
//	GET /video/<repID>/<segment>       e.g. /video/720p30/17
//	GET /metrics                       request counters as JSON
//
// Serving metrics lets a load test see what the paper's Apache logs
// showed: which rungs clients actually fetch under pressure. With a
// cdn.Cache attached, segments are served through the cache (and
// /metrics grows dash.cache.* series); with a cdn.Chaos attached,
// every segment request passes the chaos gate first (dash.chaos.*
// series). The request path is lock-free — all counters are atomics —
// so a thousand concurrent players measure the serving path, not a
// metrics mutex.
type Server struct {
	manifest *Manifest
	mux      *http.ServeMux

	metrics  *serverMetrics
	rungs    map[string]rungCounters // fixed at construction: concurrent reads are safe
	inflight *atomic.Int64

	// ladder is the manifest's rungs sorted by ascending bitrate, with
	// ladderIdx mapping rep id -> ladder position; fixed at
	// construction so brownout demotion is two lookups on the hot path.
	ladder    []Rung
	ladderIdx map[string]int

	cache    *cdn.Cache
	chaos    *cdn.Chaos
	governor *cdn.Governor
}

// rungCounters are the per-representation hot-path counters, resolved
// once at construction so a segment request does one map lookup.
type rungCounters struct {
	requests *atomic.Int64
	bytes    *atomic.Int64
}

// ServerOptions attaches the optional serving subsystems.
type ServerOptions struct {
	// Cache serves segment bodies through a cdn.Cache (admission, LRU,
	// coalescing) instead of regenerating them per request.
	Cache *cdn.Cache
	// Chaos gates every segment request through a server-side fault
	// plan (5xx bursts, injected latency, origin slowdown). Manifest
	// and /metrics requests bypass the gate: telemetry must stay
	// reachable mid-storm, like a real CDN's health endpoints.
	Chaos *cdn.Chaos
	// Governor puts an admission controller in front of the segment
	// path: concurrency/queue limits with fast 503 shedding,
	// per-tenant quotas (429), and brownout rung demotion. Manifest
	// and /metrics bypass it, like the chaos gate.
	Governor *cdn.Governor
}

// NewServer builds the handler for one video with no cache or chaos.
func NewServer(m *Manifest) *Server {
	return NewServerOpts(m, ServerOptions{})
}

// NewServerOpts builds the handler with optional cache and chaos.
func NewServerOpts(m *Manifest, opts ServerOptions) *Server {
	// Pre-register every rung's counters so /metrics reports explicit
	// zeros for rungs nobody requested.
	names := []string{"dash.manifest_requests", "dash.inflight_requests"}
	for _, r := range m.Rungs {
		id := fmt.Sprintf("%s%d", r.Resolution, r.FPS)
		names = append(names, "dash.segment_requests."+id, "dash.segment_bytes."+id)
	}
	s := &Server{
		manifest: m,
		mux:      http.NewServeMux(),
		metrics:  newServerMetrics(names...),
		rungs:    make(map[string]rungCounters, len(m.Rungs)),
		cache:    opts.Cache,
		chaos:    opts.Chaos,
		governor: opts.Governor,
	}
	s.ladder = append(s.ladder, m.Rungs...)
	sort.Slice(s.ladder, func(i, j int) bool {
		if s.ladder[i].Bitrate != s.ladder[j].Bitrate {
			return s.ladder[i].Bitrate < s.ladder[j].Bitrate
		}
		return s.ladder[i].FPS < s.ladder[j].FPS
	})
	s.ladderIdx = make(map[string]int, len(s.ladder))
	for i, r := range s.ladder {
		s.ladderIdx[fmt.Sprintf("%s%d", r.Resolution, r.FPS)] = i
	}
	for _, r := range m.Rungs {
		id := fmt.Sprintf("%s%d", r.Resolution, r.FPS)
		s.rungs[id] = rungCounters{
			requests: s.metrics.counter("dash.segment_requests." + id),
			bytes:    s.metrics.counter("dash.segment_bytes." + id),
		}
	}
	s.inflight = s.metrics.counter("dash.inflight_requests")
	s.mux.HandleFunc("GET /manifest.json", s.handleManifest)
	s.mux.HandleFunc("GET /video/", s.handleSegment)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// MetricsSnapshot returns every metric series as a (name -> value)
// map: the server counters plus, when attached, the cache and chaos
// counters. This is the body /metrics serializes, exposed so the
// binary can flush final numbers after a graceful shutdown.
func (s *Server) MetricsSnapshot() map[string]float64 {
	var extras map[string]float64
	if s.cache != nil {
		cs := s.cache.Stats()
		hitRate := 0.0
		if total := cs.Hits + cs.Misses + cs.Coalesced; total > 0 {
			hitRate = float64(cs.Hits) / float64(total)
		}
		extras = map[string]float64{
			"dash.cache.hits":      float64(cs.Hits),
			"dash.cache.misses":    float64(cs.Misses),
			"dash.cache.coalesced": float64(cs.Coalesced),
			"dash.cache.fills":     float64(cs.Fills),
			"dash.cache.admitted":  float64(cs.Admitted),
			"dash.cache.rejected":  float64(cs.Rejected),
			"dash.cache.evictions": float64(cs.Evictions),
			"dash.cache.entries":   float64(cs.Entries),
			"dash.cache.bytes":     float64(cs.Bytes),
			"dash.cache.hit_rate":  hitRate,
		}
	}
	if s.chaos != nil {
		if extras == nil {
			extras = make(map[string]float64, 3)
		}
		hs := s.chaos.Stats()
		extras["dash.chaos.rejected"] = float64(hs.Rejected)
		extras["dash.chaos.delayed"] = float64(hs.Delayed)
		extras["dash.chaos.stalled"] = float64(hs.Stalled)
	}
	if s.governor != nil {
		gm := s.governor.MetricsExtras()
		if extras == nil {
			extras = gm
		} else {
			for k, v := range gm { //coalvet:allow maporder merged into a map; /metrics sorts keys on marshal
				extras[k] = v
			}
		}
	}
	return s.metrics.snapshot(extras)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	out := s.MetricsSnapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json emits map keys sorted, so the body is deterministic.
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleManifest(w http.ResponseWriter, _ *http.Request) {
	s.metrics.add("dash.manifest_requests", 1)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.manifest.DTO()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseRepID splits "1080p60" into resolution and fps.
func parseRepID(id string) (Resolution, int, error) {
	i := strings.Index(id, "p")
	if i < 0 {
		return 0, 0, fmt.Errorf("dash: bad representation id %q", id)
	}
	res, err := ParseResolution(id[:i+1])
	if err != nil {
		return 0, 0, err
	}
	fps, err := strconv.Atoi(id[i+1:])
	if err != nil || fps <= 0 {
		return 0, 0, fmt.Errorf("dash: bad fps in representation id %q", id)
	}
	return res, fps, nil
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/video/"), "/")
	if len(parts) != 2 {
		http.Error(w, "want /video/<rep>/<segment>", http.StatusBadRequest)
		return
	}
	res, fps, err := parseRepID(parts[0])
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rung, ok := s.manifest.Rung(res, fps)
	if !ok {
		http.Error(w, "no such representation", http.StatusNotFound)
		return
	}
	seg, err := strconv.Atoi(parts[1])
	if err != nil || seg < 0 || seg >= s.manifest.Video.Segments() {
		http.Error(w, "no such segment", http.StatusNotFound)
		return
	}
	// Admission happens after request validation (malformed requests
	// must not consume capacity) and before the chaos gate and any
	// serving work: a shed request costs the server one decision and
	// one tiny response.
	demote := 0
	if s.governor != nil {
		tenant := r.Header.Get(TenantHeader)
		if tenant == "" {
			tenant = "anon"
		}
		d := s.governor.Admit(tenant)
		switch d.Kind {
		case cdn.Shed:
			w.Header().Set("Retry-After", retryAfterSeconds(d.RetryAfter))
			http.Error(w, "overloaded", d.Status)
			return
		case cdn.Queued:
			select {
			case g := <-d.Ticket.C:
				demote = g.Demote
			case <-r.Context().Done():
				if !s.governor.Cancel(d.Ticket) {
					// The grant raced the disconnect: consume it and give
					// the slot back, or it leaks forever.
					<-d.Ticket.C
					s.governor.Release()
				}
				return
			}
			defer s.governor.Release()
		default: // Admitted
			demote = d.Demote
			defer s.governor.Release()
		}
	}
	var originDelay time.Duration
	if s.chaos != nil {
		effect := s.chaos.Gate()
		if effect.Status != 0 {
			http.Error(w, "injected fault", effect.Status)
			return
		}
		originDelay = effect.OriginDelay
	}
	// Brownout: serve a lower ladder rung than requested — degrade
	// quality, not availability. The response advertises the served
	// rung so clients account honestly.
	if demote > 0 {
		served := s.demoteRung(rung, demote)
		if served != rung {
			rung = served
			w.Header().Set(ServedRungHeader, fmt.Sprintf("%s%d", rung.Resolution, rung.FPS))
		}
	}
	size := s.manifest.Video.SegmentBytes(rung, seg)
	// Metrics count the rung actually served: under brownout the
	// /metrics rung mix shifts visibly toward the ladder's floor.
	id := fmt.Sprintf("%s%d", rung.Resolution, rung.FPS)
	rc := s.rungs[id]
	rc.requests.Add(1)
	rc.bytes.Add(int64(size))
	w.Header().Set("Content-Type", "video/mp4")
	w.Header().Set("Content-Length", strconv.FormatInt(int64(size), 10))
	if s.cache != nil {
		body, _, _ := s.cache.Get(id+"/"+parts[1], func() ([]byte, error) {
			if originDelay > 0 {
				// Coalesced waiters share the leader's stall, like they
				// share its generation: an origin slowdown is paid once.
				s.chaos.Delay(originDelay)
			}
			return synthBody(size), nil
		})
		w.Write(body)
		return
	}
	if originDelay > 0 {
		s.chaos.Delay(originDelay)
	}
	writeSynthetic(w, size)
}

// demoteRung steps down the bitrate ladder, clamping at the floor —
// brownout never promotes and never falls off the ladder.
func (s *Server) demoteRung(rung Rung, steps int) Rung {
	idx, ok := s.ladderIdx[fmt.Sprintf("%s%d", rung.Resolution, rung.FPS)]
	if !ok {
		return rung
	}
	if idx -= steps; idx < 0 {
		idx = 0
	}
	return s.ladder[idx]
}

// retryAfterSeconds renders a backoff hint as the integer-seconds
// Retry-After form (minimum 1 — "0" would invite an immediate retry).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// synthPattern is the immutable 64 KiB filler block every synthetic
// segment is cut from. Hoisted to package level: the seed server
// allocated and refilled this buffer on every request, which under
// load was the allocator benchmarking itself.
var synthPattern = func() []byte {
	buf := make([]byte, 64*1024)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return buf
}()

// writeSynthetic streams size bytes of deterministic filler without
// allocating: it writes slices of the shared immutable pattern.
func writeSynthetic(w io.Writer, size units.Bytes) {
	remaining := int64(size)
	for remaining > 0 {
		n := int64(len(synthPattern))
		if remaining < n {
			n = remaining
		}
		if _, err := w.Write(synthPattern[:n]); err != nil {
			return
		}
		remaining -= n
	}
}

// synthBody materializes a full synthetic segment body — the origin
// generation the cache stores and coalesces.
func synthBody(size units.Bytes) []byte {
	body := make([]byte, int64(size))
	for off := 0; off < len(body); off += len(synthPattern) {
		copy(body[off:], synthPattern)
	}
	return body
}

// Client fetches manifests and segments from a dash Server over HTTP.
// Its clock is injected (wall-clock wiring lives in cmd/ and
// examples/) so that internal/ stays free of time.Now and segment
// timing stays fakeable in tests.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Now timestamps segment transfers for FetchSegment's duration
	// measurement; typically time.Now, supplied by the caller.
	Now func() time.Time

	retry RetryPolicy
	sleep func(time.Duration)
	res   Resilience

	hedges atomic.Int64
	waited atomic.Int64
}

// RetryPolicy bounds a fetch: Timeout caps one attempt, Attempts caps
// how many attempts a fetch gets, and Backoff doubles between attempts
// up to BackoffCap — the same capped-exponential shape the simulated
// player uses (player.Config.RetryBackoff), applied to the real HTTP
// path.
type RetryPolicy struct {
	// Timeout bounds one attempt; zero keeps the client's existing
	// http.Client timeout.
	Timeout time.Duration
	// Attempts is the total tries per fetch (default 3).
	Attempts int
	// Backoff is the delay before the first retry (default 500ms); it
	// doubles per retry, capped at BackoffCap (default 8s).
	Backoff    time.Duration
	BackoffCap time.Duration
}

func (p *RetryPolicy) applyDefaults() {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 500 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 8 * time.Second
	}
}

// NewClient builds a client for the given base URL. The now func
// (typically time.Now, supplied by the binary's main package) times
// segment fetches; it must be non-nil.
func NewClient(baseURL string, now func() time.Time) *Client {
	if now == nil {
		panic("dash: NewClient needs a clock; pass time.Now from the binary's main package")
	}
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: &http.Client{Timeout: 30 * time.Second}, Now: now}
}

// SetRetry arms retries for manifest and segment fetches. The sleep
// func paces the backoff and is injected like Now (typically
// time.Sleep from the binary's main package; tests pass a recorder) —
// internal/ never touches the wall clock directly (see LINTING.md).
// A nil sleep with Attempts > 1 panics.
func (c *Client) SetRetry(p RetryPolicy, sleep func(time.Duration)) {
	p.applyDefaults()
	if sleep == nil && p.Attempts > 1 {
		panic("dash: Client.SetRetry needs a sleep func; pass time.Sleep from the binary's main package")
	}
	c.retry = p
	c.sleep = sleep
	if p.Timeout > 0 {
		c.HTTP.Timeout = p.Timeout
	}
}

// retryable reports whether a failed attempt is worth retrying:
// transport errors (status 0), server-side (5xx) statuses, and 429
// throttles are; other client errors (4xx) are not — re-sending a
// request the server rejected outright only burns the backoff budget.
func retryable(status int) bool {
	return status < 400 || status >= 500 || status == http.StatusTooManyRequests
}

// FetchManifest downloads and decodes the manifest, retrying per the
// client's RetryPolicy (a single attempt unless SetRetry armed one).
func (c *Client) FetchManifest() (ManifestDTO, error) {
	var dto ManifestDTO
	err := c.withRetry(func() error {
		resp, err := c.get(c.BaseURL + "/manifest.json")
		if err != nil {
			return fmt.Errorf("dash: fetch manifest: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return statusError(resp, "dash: fetch manifest: "+resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
			// A truncated or corrupt body is a transport-level failure:
			// retryable.
			return fmt.Errorf("dash: decode manifest: %w", err)
		}
		return nil
	})
	return dto, err
}

// FetchSegment downloads one segment, discarding the body, and returns
// its size and transfer duration. With a RetryPolicy armed (SetRetry),
// failed attempts are retried with capped exponential backoff paced by
// any server Retry-After hint and jittered on the player's seed lane;
// the returned duration spans all attempts including backoff — the
// stall the player actually experienced. With Resilience.Hedge armed,
// each attempt races a delayed duplicate and takes the first finisher.
func (c *Client) FetchSegment(repID string, seg int) (units.Bytes, time.Duration, error) {
	start := c.Now()
	var total int64
	fetchOnce := func() hedgeResult {
		resp, err := c.get(fmt.Sprintf("%s/video/%s/%d", c.BaseURL, repID, seg))
		if err != nil {
			return hedgeResult{err: fmt.Errorf("dash: fetch segment: %w", err)}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return hedgeResult{err: statusError(resp, fmt.Sprintf("dash: fetch segment %s/%d: %s", repID, seg, resp.Status))}
		}
		// io.Discard's ReaderFrom drains through a pooled buffer — no
		// per-fetch 64 KiB allocation (the seed client allocated one
		// drain buffer per segment).
		n, err := io.Copy(io.Discard, resp.Body)
		if err != nil {
			// A connection that died mid-body is a transport failure:
			// retryable.
			return hedgeResult{err: fmt.Errorf("dash: read segment %s/%d: %w", repID, seg, err)}
		}
		return hedgeResult{n: n, rung: resp.Header.Get(ServedRungHeader)}
	}
	err := c.withRetry(func() error {
		var r hedgeResult
		if c.res.Hedge > 0 {
			r = c.hedged(fetchOnce)
		} else {
			r = fetchOnce()
		}
		if r.err != nil {
			return r.err
		}
		total = r.n
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return units.Bytes(total), c.Now().Sub(start), nil
}
