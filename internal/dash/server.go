package dash

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"coalqoe/internal/cdn"
	"coalqoe/internal/units"
)

// ManifestDTO is the wire form of a manifest (the MPD equivalent,
// serialized as JSON for simplicity).
type ManifestDTO struct {
	Title           string    `json:"title"`
	Genre           string    `json:"genre"`
	DurationSec     float64   `json:"duration_sec"`
	SegmentDuration float64   `json:"segment_duration_sec"`
	Representations []RungDTO `json:"representations"`
}

// RungDTO is one representation in the wire manifest.
type RungDTO struct {
	ID      string  `json:"id"` // e.g. "1080p60"
	Width   int     `json:"width"`
	Height  int     `json:"height"`
	FPS     int     `json:"fps"`
	Bitrate float64 `json:"bitrate_bps"`
}

// DTO converts a manifest to its wire form.
func (m *Manifest) DTO() ManifestDTO {
	dto := ManifestDTO{
		Title:           m.Video.Title,
		Genre:           m.Video.Genre.String(),
		DurationSec:     m.Video.Duration.Seconds(),
		SegmentDuration: m.Video.SegmentDuration.Seconds(),
	}
	for _, r := range m.Rungs {
		w, h := r.Resolution.Dimensions()
		dto.Representations = append(dto.Representations, RungDTO{
			ID:      fmt.Sprintf("%s%d", r.Resolution, r.FPS),
			Width:   w,
			Height:  h,
			FPS:     r.FPS,
			Bitrate: float64(r.Bitrate),
		})
	}
	return dto
}

// Server serves a manifest and synthetic segments over HTTP, standing
// in for the paper's Apache video server (§4.1). Routes:
//
//	GET /manifest.json
//	GET /video/<repID>/<segment>       e.g. /video/720p30/17
//	GET /metrics                       request counters as JSON
//
// Serving metrics lets a load test see what the paper's Apache logs
// showed: which rungs clients actually fetch under pressure. With a
// cdn.Cache attached, segments are served through the cache (and
// /metrics grows dash.cache.* series); with a cdn.Chaos attached,
// every segment request passes the chaos gate first (dash.chaos.*
// series). The request path is lock-free — all counters are atomics —
// so a thousand concurrent players measure the serving path, not a
// metrics mutex.
type Server struct {
	manifest *Manifest
	mux      *http.ServeMux

	metrics  *serverMetrics
	rungs    map[string]rungCounters // fixed at construction: concurrent reads are safe
	inflight *atomic.Int64

	cache *cdn.Cache
	chaos *cdn.Chaos
}

// rungCounters are the per-representation hot-path counters, resolved
// once at construction so a segment request does one map lookup.
type rungCounters struct {
	requests *atomic.Int64
	bytes    *atomic.Int64
}

// ServerOptions attaches the optional serving subsystems.
type ServerOptions struct {
	// Cache serves segment bodies through a cdn.Cache (admission, LRU,
	// coalescing) instead of regenerating them per request.
	Cache *cdn.Cache
	// Chaos gates every segment request through a server-side fault
	// plan (5xx bursts, injected latency, origin slowdown). Manifest
	// and /metrics requests bypass the gate: telemetry must stay
	// reachable mid-storm, like a real CDN's health endpoints.
	Chaos *cdn.Chaos
}

// NewServer builds the handler for one video with no cache or chaos.
func NewServer(m *Manifest) *Server {
	return NewServerOpts(m, ServerOptions{})
}

// NewServerOpts builds the handler with optional cache and chaos.
func NewServerOpts(m *Manifest, opts ServerOptions) *Server {
	// Pre-register every rung's counters so /metrics reports explicit
	// zeros for rungs nobody requested.
	names := []string{"dash.manifest_requests", "dash.inflight_requests"}
	for _, r := range m.Rungs {
		id := fmt.Sprintf("%s%d", r.Resolution, r.FPS)
		names = append(names, "dash.segment_requests."+id, "dash.segment_bytes."+id)
	}
	s := &Server{
		manifest: m,
		mux:      http.NewServeMux(),
		metrics:  newServerMetrics(names...),
		rungs:    make(map[string]rungCounters, len(m.Rungs)),
		cache:    opts.Cache,
		chaos:    opts.Chaos,
	}
	for _, r := range m.Rungs {
		id := fmt.Sprintf("%s%d", r.Resolution, r.FPS)
		s.rungs[id] = rungCounters{
			requests: s.metrics.counter("dash.segment_requests." + id),
			bytes:    s.metrics.counter("dash.segment_bytes." + id),
		}
	}
	s.inflight = s.metrics.counter("dash.inflight_requests")
	s.mux.HandleFunc("GET /manifest.json", s.handleManifest)
	s.mux.HandleFunc("GET /video/", s.handleSegment)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// MetricsSnapshot returns every metric series as a (name -> value)
// map: the server counters plus, when attached, the cache and chaos
// counters. This is the body /metrics serializes, exposed so the
// binary can flush final numbers after a graceful shutdown.
func (s *Server) MetricsSnapshot() map[string]float64 {
	var extras map[string]float64
	if s.cache != nil {
		cs := s.cache.Stats()
		hitRate := 0.0
		if total := cs.Hits + cs.Misses + cs.Coalesced; total > 0 {
			hitRate = float64(cs.Hits) / float64(total)
		}
		extras = map[string]float64{
			"dash.cache.hits":      float64(cs.Hits),
			"dash.cache.misses":    float64(cs.Misses),
			"dash.cache.coalesced": float64(cs.Coalesced),
			"dash.cache.fills":     float64(cs.Fills),
			"dash.cache.admitted":  float64(cs.Admitted),
			"dash.cache.rejected":  float64(cs.Rejected),
			"dash.cache.evictions": float64(cs.Evictions),
			"dash.cache.entries":   float64(cs.Entries),
			"dash.cache.bytes":     float64(cs.Bytes),
			"dash.cache.hit_rate":  hitRate,
		}
	}
	if s.chaos != nil {
		if extras == nil {
			extras = make(map[string]float64, 3)
		}
		hs := s.chaos.Stats()
		extras["dash.chaos.rejected"] = float64(hs.Rejected)
		extras["dash.chaos.delayed"] = float64(hs.Delayed)
		extras["dash.chaos.stalled"] = float64(hs.Stalled)
	}
	return s.metrics.snapshot(extras)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	out := s.MetricsSnapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json emits map keys sorted, so the body is deterministic.
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleManifest(w http.ResponseWriter, _ *http.Request) {
	s.metrics.add("dash.manifest_requests", 1)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.manifest.DTO()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseRepID splits "1080p60" into resolution and fps.
func parseRepID(id string) (Resolution, int, error) {
	i := strings.Index(id, "p")
	if i < 0 {
		return 0, 0, fmt.Errorf("dash: bad representation id %q", id)
	}
	res, err := ParseResolution(id[:i+1])
	if err != nil {
		return 0, 0, err
	}
	fps, err := strconv.Atoi(id[i+1:])
	if err != nil || fps <= 0 {
		return 0, 0, fmt.Errorf("dash: bad fps in representation id %q", id)
	}
	return res, fps, nil
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/video/"), "/")
	if len(parts) != 2 {
		http.Error(w, "want /video/<rep>/<segment>", http.StatusBadRequest)
		return
	}
	res, fps, err := parseRepID(parts[0])
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rung, ok := s.manifest.Rung(res, fps)
	if !ok {
		http.Error(w, "no such representation", http.StatusNotFound)
		return
	}
	seg, err := strconv.Atoi(parts[1])
	if err != nil || seg < 0 || seg >= s.manifest.Video.Segments() {
		http.Error(w, "no such segment", http.StatusNotFound)
		return
	}
	var originDelay time.Duration
	if s.chaos != nil {
		effect := s.chaos.Gate()
		if effect.Status != 0 {
			http.Error(w, "injected fault", effect.Status)
			return
		}
		originDelay = effect.OriginDelay
	}
	size := s.manifest.Video.SegmentBytes(rung, seg)
	id := fmt.Sprintf("%s%d", rung.Resolution, rung.FPS)
	rc := s.rungs[id]
	rc.requests.Add(1)
	rc.bytes.Add(int64(size))
	w.Header().Set("Content-Type", "video/mp4")
	w.Header().Set("Content-Length", strconv.FormatInt(int64(size), 10))
	if s.cache != nil {
		body, _, _ := s.cache.Get(id+"/"+parts[1], func() ([]byte, error) {
			if originDelay > 0 {
				// Coalesced waiters share the leader's stall, like they
				// share its generation: an origin slowdown is paid once.
				s.chaos.Delay(originDelay)
			}
			return synthBody(size), nil
		})
		w.Write(body)
		return
	}
	if originDelay > 0 {
		s.chaos.Delay(originDelay)
	}
	writeSynthetic(w, size)
}

// synthPattern is the immutable 64 KiB filler block every synthetic
// segment is cut from. Hoisted to package level: the seed server
// allocated and refilled this buffer on every request, which under
// load was the allocator benchmarking itself.
var synthPattern = func() []byte {
	buf := make([]byte, 64*1024)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return buf
}()

// writeSynthetic streams size bytes of deterministic filler without
// allocating: it writes slices of the shared immutable pattern.
func writeSynthetic(w io.Writer, size units.Bytes) {
	remaining := int64(size)
	for remaining > 0 {
		n := int64(len(synthPattern))
		if remaining < n {
			n = remaining
		}
		if _, err := w.Write(synthPattern[:n]); err != nil {
			return
		}
		remaining -= n
	}
}

// synthBody materializes a full synthetic segment body — the origin
// generation the cache stores and coalesces.
func synthBody(size units.Bytes) []byte {
	body := make([]byte, int64(size))
	for off := 0; off < len(body); off += len(synthPattern) {
		copy(body[off:], synthPattern)
	}
	return body
}

// Client fetches manifests and segments from a dash Server over HTTP.
// Its clock is injected (wall-clock wiring lives in cmd/ and
// examples/) so that internal/ stays free of time.Now and segment
// timing stays fakeable in tests.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Now timestamps segment transfers for FetchSegment's duration
	// measurement; typically time.Now, supplied by the caller.
	Now func() time.Time

	retry RetryPolicy
	sleep func(time.Duration)
}

// RetryPolicy bounds a fetch: Timeout caps one attempt, Attempts caps
// how many attempts a fetch gets, and Backoff doubles between attempts
// up to BackoffCap — the same capped-exponential shape the simulated
// player uses (player.Config.RetryBackoff), applied to the real HTTP
// path.
type RetryPolicy struct {
	// Timeout bounds one attempt; zero keeps the client's existing
	// http.Client timeout.
	Timeout time.Duration
	// Attempts is the total tries per fetch (default 3).
	Attempts int
	// Backoff is the delay before the first retry (default 500ms); it
	// doubles per retry, capped at BackoffCap (default 8s).
	Backoff    time.Duration
	BackoffCap time.Duration
}

func (p *RetryPolicy) applyDefaults() {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 500 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 8 * time.Second
	}
}

// NewClient builds a client for the given base URL. The now func
// (typically time.Now, supplied by the binary's main package) times
// segment fetches; it must be non-nil.
func NewClient(baseURL string, now func() time.Time) *Client {
	if now == nil {
		panic("dash: NewClient needs a clock; pass time.Now from the binary's main package")
	}
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: &http.Client{Timeout: 30 * time.Second}, Now: now}
}

// SetRetry arms retries for manifest and segment fetches. The sleep
// func paces the backoff and is injected like Now (typically
// time.Sleep from the binary's main package; tests pass a recorder) —
// internal/ never touches the wall clock directly (see LINTING.md).
// A nil sleep with Attempts > 1 panics.
func (c *Client) SetRetry(p RetryPolicy, sleep func(time.Duration)) {
	p.applyDefaults()
	if sleep == nil && p.Attempts > 1 {
		panic("dash: Client.SetRetry needs a sleep func; pass time.Sleep from the binary's main package")
	}
	c.retry = p
	c.sleep = sleep
	if p.Timeout > 0 {
		c.HTTP.Timeout = p.Timeout
	}
}

// retryable reports whether a failed attempt is worth retrying:
// transport errors (status 0) and server-side (5xx) statuses are;
// client errors (4xx) are not — re-sending a request the server
// rejected outright only burns the backoff budget.
func retryable(status int) bool {
	return status < 400 || status >= 500
}

// withRetry runs attempt up to the policy's budget, backing off
// between tries. attempt returns the HTTP status it saw (0 on
// transport error) so withRetry can distinguish 4xx from 5xx.
func (c *Client) withRetry(attempt func() (int, error)) error {
	attempts := c.retry.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	backoff := c.retry.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.sleep(backoff)
			if backoff *= 2; backoff > c.retry.BackoffCap {
				backoff = c.retry.BackoffCap
			}
		}
		var status int
		status, err = attempt()
		if err == nil || !retryable(status) {
			return err
		}
	}
	return err
}

// FetchManifest downloads and decodes the manifest, retrying per the
// client's RetryPolicy (a single attempt unless SetRetry armed one).
func (c *Client) FetchManifest() (ManifestDTO, error) {
	var dto ManifestDTO
	err := c.withRetry(func() (int, error) {
		resp, err := c.HTTP.Get(c.BaseURL + "/manifest.json")
		if err != nil {
			return 0, fmt.Errorf("dash: fetch manifest: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("dash: fetch manifest: %s", resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
			// A truncated or corrupt body is a transport-level failure:
			// retryable.
			return 0, fmt.Errorf("dash: decode manifest: %w", err)
		}
		return resp.StatusCode, nil
	})
	return dto, err
}

// FetchSegment downloads one segment, discarding the body, and returns
// its size and transfer duration. With a RetryPolicy armed (SetRetry),
// failed attempts are retried with capped exponential backoff; the
// returned duration spans all attempts including backoff — the stall
// the player actually experienced.
func (c *Client) FetchSegment(repID string, seg int) (units.Bytes, time.Duration, error) {
	start := c.Now()
	var total int64
	err := c.withRetry(func() (int, error) {
		resp, err := c.HTTP.Get(fmt.Sprintf("%s/video/%s/%d", c.BaseURL, repID, seg))
		if err != nil {
			return 0, fmt.Errorf("dash: fetch segment: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("dash: fetch segment %s/%d: %s", repID, seg, resp.Status)
		}
		// io.Discard's ReaderFrom drains through a pooled buffer — no
		// per-fetch 64 KiB allocation (the seed client allocated one
		// drain buffer per segment).
		n, err := io.Copy(io.Discard, resp.Body)
		total = n
		if err != nil {
			// A connection that died mid-body is a transport failure:
			// retryable.
			return 0, fmt.Errorf("dash: read segment %s/%d: %w", repID, seg, err)
		}
		return resp.StatusCode, nil
	})
	if err != nil {
		return 0, 0, err
	}
	return units.Bytes(total), c.Now().Sub(start), nil
}
