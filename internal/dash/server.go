package dash

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// ManifestDTO is the wire form of a manifest (the MPD equivalent,
// serialized as JSON for simplicity).
type ManifestDTO struct {
	Title           string    `json:"title"`
	Genre           string    `json:"genre"`
	DurationSec     float64   `json:"duration_sec"`
	SegmentDuration float64   `json:"segment_duration_sec"`
	Representations []RungDTO `json:"representations"`
}

// RungDTO is one representation in the wire manifest.
type RungDTO struct {
	ID      string  `json:"id"` // e.g. "1080p60"
	Width   int     `json:"width"`
	Height  int     `json:"height"`
	FPS     int     `json:"fps"`
	Bitrate float64 `json:"bitrate_bps"`
}

// DTO converts a manifest to its wire form.
func (m *Manifest) DTO() ManifestDTO {
	dto := ManifestDTO{
		Title:           m.Video.Title,
		Genre:           m.Video.Genre.String(),
		DurationSec:     m.Video.Duration.Seconds(),
		SegmentDuration: m.Video.SegmentDuration.Seconds(),
	}
	for _, r := range m.Rungs {
		w, h := r.Resolution.Dimensions()
		dto.Representations = append(dto.Representations, RungDTO{
			ID:      fmt.Sprintf("%s%d", r.Resolution, r.FPS),
			Width:   w,
			Height:  h,
			FPS:     r.FPS,
			Bitrate: float64(r.Bitrate),
		})
	}
	return dto
}

// Server serves a manifest and synthetic segments over HTTP, standing
// in for the paper's Apache video server (§4.1). Routes:
//
//	GET /manifest.json
//	GET /video/<repID>/<segment>       e.g. /video/720p30/17
//	GET /metrics                       request counters as JSON
//
// Serving metrics lets a load test see what the paper's Apache logs
// showed: which rungs clients actually fetch under pressure.
type Server struct {
	manifest *Manifest
	mux      *http.ServeMux

	// The telemetry registry is not thread-safe (the simulator is
	// single-threaded by design), but this server handles real
	// concurrent HTTP requests, so every instrument access takes mu.
	mu       sync.Mutex
	reg      *telemetry.Registry
	inflight *telemetry.Gauge
}

// NewServer builds the handler for one video.
func NewServer(m *Manifest) *Server {
	s := &Server{manifest: m, mux: http.NewServeMux(), reg: telemetry.NewRegistry()}
	// Pre-register every rung's counters so /metrics reports explicit
	// zeros for rungs nobody requested.
	s.reg.Counter("dash.manifest_requests")
	for _, r := range m.Rungs {
		id := fmt.Sprintf("%s%d", r.Resolution, r.FPS)
		s.reg.Counter("dash.segment_requests." + id)
		s.reg.Counter("dash.segment_bytes." + id)
	}
	s.inflight = s.reg.Gauge("dash.inflight_requests")
	s.mux.HandleFunc("GET /manifest.json", s.handleManifest)
	s.mux.HandleFunc("GET /video/", s.handleSegment)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.inflight.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inflight.Add(-1)
		s.mu.Unlock()
	}()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) count(name string, delta int64) {
	s.mu.Lock()
	s.reg.Counter(name).Add(delta)
	s.mu.Unlock()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	samples := s.reg.Values()
	s.mu.Unlock()
	out := make(map[string]float64, len(samples))
	for _, smp := range samples {
		out[smp.Name] = smp.Value
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// encoding/json emits map keys sorted, so the body is deterministic.
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleManifest(w http.ResponseWriter, _ *http.Request) {
	s.count("dash.manifest_requests", 1)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.manifest.DTO()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseRepID splits "1080p60" into resolution and fps.
func parseRepID(id string) (Resolution, int, error) {
	i := strings.Index(id, "p")
	if i < 0 {
		return 0, 0, fmt.Errorf("dash: bad representation id %q", id)
	}
	res, err := ParseResolution(id[:i+1])
	if err != nil {
		return 0, 0, err
	}
	fps, err := strconv.Atoi(id[i+1:])
	if err != nil || fps <= 0 {
		return 0, 0, fmt.Errorf("dash: bad fps in representation id %q", id)
	}
	return res, fps, nil
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/video/"), "/")
	if len(parts) != 2 {
		http.Error(w, "want /video/<rep>/<segment>", http.StatusBadRequest)
		return
	}
	res, fps, err := parseRepID(parts[0])
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rung, ok := s.manifest.Rung(res, fps)
	if !ok {
		http.Error(w, "no such representation", http.StatusNotFound)
		return
	}
	seg, err := strconv.Atoi(parts[1])
	if err != nil || seg < 0 || seg >= s.manifest.Video.Segments() {
		http.Error(w, "no such segment", http.StatusNotFound)
		return
	}
	size := s.manifest.Video.SegmentBytes(rung, seg)
	id := fmt.Sprintf("%s%d", rung.Resolution, rung.FPS)
	s.count("dash.segment_requests."+id, 1)
	s.count("dash.segment_bytes."+id, int64(size))
	w.Header().Set("Content-Type", "video/mp4")
	w.Header().Set("Content-Length", strconv.FormatInt(int64(size), 10))
	writeSynthetic(w, size)
}

// writeSynthetic streams size bytes of deterministic filler.
func writeSynthetic(w http.ResponseWriter, size units.Bytes) {
	const chunk = 64 * 1024
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	remaining := int64(size)
	for remaining > 0 {
		n := int64(chunk)
		if remaining < n {
			n = remaining
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return
		}
		remaining -= n
	}
}

// Client fetches manifests and segments from a dash Server over HTTP.
// Its clock is injected (wall-clock wiring lives in cmd/ and
// examples/) so that internal/ stays free of time.Now and segment
// timing stays fakeable in tests.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Now timestamps segment transfers for FetchSegment's duration
	// measurement; typically time.Now, supplied by the caller.
	Now func() time.Time

	retry RetryPolicy
	sleep func(time.Duration)
}

// RetryPolicy bounds a fetch: Timeout caps one attempt, Attempts caps
// how many attempts a fetch gets, and Backoff doubles between attempts
// up to BackoffCap — the same capped-exponential shape the simulated
// player uses (player.Config.RetryBackoff), applied to the real HTTP
// path.
type RetryPolicy struct {
	// Timeout bounds one attempt; zero keeps the client's existing
	// http.Client timeout.
	Timeout time.Duration
	// Attempts is the total tries per fetch (default 3).
	Attempts int
	// Backoff is the delay before the first retry (default 500ms); it
	// doubles per retry, capped at BackoffCap (default 8s).
	Backoff    time.Duration
	BackoffCap time.Duration
}

func (p *RetryPolicy) applyDefaults() {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 500 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 8 * time.Second
	}
}

// NewClient builds a client for the given base URL. The now func
// (typically time.Now, supplied by the binary's main package) times
// segment fetches; it must be non-nil.
func NewClient(baseURL string, now func() time.Time) *Client {
	if now == nil {
		panic("dash: NewClient needs a clock; pass time.Now from the binary's main package")
	}
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: &http.Client{Timeout: 30 * time.Second}, Now: now}
}

// SetRetry arms retries for manifest and segment fetches. The sleep
// func paces the backoff and is injected like Now (typically
// time.Sleep from the binary's main package; tests pass a recorder) —
// internal/ never touches the wall clock directly (see LINTING.md).
// A nil sleep with Attempts > 1 panics.
func (c *Client) SetRetry(p RetryPolicy, sleep func(time.Duration)) {
	p.applyDefaults()
	if sleep == nil && p.Attempts > 1 {
		panic("dash: Client.SetRetry needs a sleep func; pass time.Sleep from the binary's main package")
	}
	c.retry = p
	c.sleep = sleep
	if p.Timeout > 0 {
		c.HTTP.Timeout = p.Timeout
	}
}

// retryable reports whether a failed attempt is worth retrying:
// transport errors (status 0) and server-side (5xx) statuses are;
// client errors (4xx) are not — re-sending a request the server
// rejected outright only burns the backoff budget.
func retryable(status int) bool {
	return status < 400 || status >= 500
}

// withRetry runs attempt up to the policy's budget, backing off
// between tries. attempt returns the HTTP status it saw (0 on
// transport error) so withRetry can distinguish 4xx from 5xx.
func (c *Client) withRetry(attempt func() (int, error)) error {
	attempts := c.retry.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	backoff := c.retry.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.sleep(backoff)
			if backoff *= 2; backoff > c.retry.BackoffCap {
				backoff = c.retry.BackoffCap
			}
		}
		var status int
		status, err = attempt()
		if err == nil || !retryable(status) {
			return err
		}
	}
	return err
}

// FetchManifest downloads and decodes the manifest, retrying per the
// client's RetryPolicy (a single attempt unless SetRetry armed one).
func (c *Client) FetchManifest() (ManifestDTO, error) {
	var dto ManifestDTO
	err := c.withRetry(func() (int, error) {
		resp, err := c.HTTP.Get(c.BaseURL + "/manifest.json")
		if err != nil {
			return 0, fmt.Errorf("dash: fetch manifest: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("dash: fetch manifest: %s", resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
			// A truncated or corrupt body is a transport-level failure:
			// retryable.
			return 0, fmt.Errorf("dash: decode manifest: %w", err)
		}
		return resp.StatusCode, nil
	})
	return dto, err
}

// FetchSegment downloads one segment, discarding the body, and returns
// its size and transfer duration. With a RetryPolicy armed (SetRetry),
// failed attempts are retried with capped exponential backoff; the
// returned duration spans all attempts including backoff — the stall
// the player actually experienced.
func (c *Client) FetchSegment(repID string, seg int) (units.Bytes, time.Duration, error) {
	start := c.Now()
	var total int64
	err := c.withRetry(func() (int, error) {
		resp, err := c.HTTP.Get(fmt.Sprintf("%s/video/%s/%d", c.BaseURL, repID, seg))
		if err != nil {
			return 0, fmt.Errorf("dash: fetch segment: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, fmt.Errorf("dash: fetch segment %s/%d: %s", repID, seg, resp.Status)
		}
		total = 0
		buf := make([]byte, 64*1024)
		for {
			n, err := resp.Body.Read(buf)
			total += int64(n)
			if err != nil {
				break
			}
		}
		return resp.StatusCode, nil
	})
	if err != nil {
		return 0, 0, err
	}
	return units.Bytes(total), c.Now().Sub(start), nil
}
