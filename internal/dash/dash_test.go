package dash

import (
	"testing"
	"testing/quick"
	"time"

	"coalqoe/internal/units"
)

func TestResolutionDimensions(t *testing.T) {
	w, h := R1080p.Dimensions()
	if w != 1920 || h != 1080 {
		t.Errorf("1080p = %dx%d", w, h)
	}
	if R720p.Pixels() != 1280*720 {
		t.Errorf("720p pixels = %d", R720p.Pixels())
	}
	if R240p.String() != "240p" {
		t.Errorf("String = %q", R240p.String())
	}
}

func TestParseResolution(t *testing.T) {
	for _, r := range Resolutions {
		got, err := ParseResolution(r.String())
		if err != nil || got != r {
			t.Errorf("ParseResolution(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseResolution("999p"); err == nil {
		t.Error("expected error for unknown resolution")
	}
}

func TestLadderMonotonicity(t *testing.T) {
	// Bitrate must be nondecreasing in resolution (same fps) and in
	// fps (same resolution).
	for _, fps := range StandardFPS {
		var prev units.BitsPerSecond
		for _, r := range Resolutions {
			b := BitrateFor(r, fps)
			if b <= 0 {
				t.Fatalf("BitrateFor(%v, %d) = %v", r, fps, b)
			}
			if b < prev {
				t.Errorf("bitrate not monotone at %v@%d", r, fps)
			}
			prev = b
		}
	}
	for _, r := range Resolutions {
		if BitrateFor(r, 60) <= BitrateFor(r, 30) {
			t.Errorf("60fps bitrate should exceed 30fps at %v", r)
		}
		if BitrateFor(r, 24) >= BitrateFor(r, 30) {
			t.Errorf("24fps bitrate should be below 30fps at %v", r)
		}
		if BitrateFor(r, 48) >= BitrateFor(r, 60) {
			t.Errorf("48fps bitrate should be below 60fps at %v", r)
		}
	}
}

func TestLadderAndFind(t *testing.T) {
	l := Ladder(30, 60)
	if len(l) != len(Resolutions)*2 {
		t.Errorf("ladder has %d rungs", len(l))
	}
	r, ok := FindRung(l, R720p, 60)
	if !ok || r.FPS != 60 || r.Resolution != R720p {
		t.Errorf("FindRung = %+v, %v", r, ok)
	}
	if _, ok := FindRung(l, R720p, 48); ok {
		t.Error("found 48fps in a 30/60 ladder")
	}
}

func TestSegmentSizesDeterministicAndBounded(t *testing.T) {
	v := TestVideos[0]
	rung, _ := NewManifest(v).Rung(R1080p, 30)
	nominal := units.Bytes(rung.Bitrate.BytesPerSecond() * v.SegmentDuration.Seconds())
	for i := 0; i < v.Segments(); i++ {
		a := v.SegmentBytes(rung, i)
		b := v.SegmentBytes(rung, i)
		if a != b {
			t.Fatalf("segment %d size not deterministic", i)
		}
		if a < nominal/2 || a > nominal*2 {
			t.Errorf("segment %d size %v outside [%v, %v]", i, a, nominal/2, nominal*2)
		}
	}
}

func TestTotalBytesNearNominal(t *testing.T) {
	v := TestVideos[0]
	rung, _ := NewManifest(v).Rung(R480p, 30)
	total := v.TotalBytes(rung)
	nominal := units.Bytes(rung.Bitrate.BytesPerSecond() * v.Duration.Seconds())
	ratio := float64(total) / float64(nominal)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("VBR total/nominal = %v, want ~1", ratio)
	}
}

func TestSegmentsCount(t *testing.T) {
	v := Video{Duration: 10 * time.Second, SegmentDuration: 4 * time.Second}
	if v.Segments() != 3 {
		t.Errorf("Segments = %d, want 3 (ceil)", v.Segments())
	}
}

func TestGenreComplexityOrdering(t *testing.T) {
	if !(Gaming.Complexity() > Travel.Complexity() && Travel.Complexity() > News.Complexity()) {
		t.Error("genre complexity ordering broken")
	}
	for _, g := range Genres {
		if g.String() == "" {
			t.Error("unnamed genre")
		}
	}
}

func TestManifestLowest(t *testing.T) {
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	low := m.Lowest()
	if low.Resolution != R240p || low.FPS != 24 {
		t.Errorf("Lowest = %v", low)
	}
}

func TestSegmentBytesPositiveProperty(t *testing.T) {
	v := TestVideos[2]
	f := func(seg uint8, rIdx uint8, fIdx uint8) bool {
		r := Resolutions[int(rIdx)%len(Resolutions)]
		fps := StandardFPS[int(fIdx)%len(StandardFPS)]
		rung := Rung{Resolution: r, FPS: fps, Bitrate: BitrateFor(r, fps)}
		return v.SegmentBytes(rung, int(seg)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
