// Client-side resilience: the retry layer that keeps a fleet of
// players from amplifying a server fault into a storm. The seed
// client retried with bare capped-exponential backoff — correct for
// one player, catastrophic for a thousand synchronized ones: every
// retry is free, so a fault window multiplies offered load exactly
// when the server can least afford it. This file adds the four
// defenses the overload literature prescribes, all deterministic on
// injected clocks and seed lanes:
//
//   - Retry-After honoring: a server that sheds load tells the client
//     when to come back; ignoring it defeats admission control.
//   - Jittered backoff: synchronized players must not return as one
//     wave; delays spread ×[0.5,1.5) on the player's own seed lane.
//   - Retry budgets: retries are paid for by past successes
//     (resilience.RetryBudget), so a player that stops succeeding
//     stops retrying and the storm decays.
//   - Circuit breaking: after consecutive failures the client fails
//     fast (resilience.Breaker) instead of burning a timeout per
//     attempt, and probes half-open before resuming.
package dash

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"time"

	"coalqoe/internal/resilience"
)

// TenantHeader carries the client's tenant identity to the server's
// admission controller (cdn.Governor quotas key on it).
const TenantHeader = "X-Tenant"

// ServedRungHeader reports brownout demotion: the ladder rung the
// server actually served when it differs from the one requested.
const ServedRungHeader = "X-Served-Rung"

// maxRetryAfter caps how long a client will honor a server's
// Retry-After hint — a misbehaving (or chaos-injected) header must not
// park a player for minutes.
const maxRetryAfter = 10 * time.Second

// ErrCircuitOpen is returned (wrapped) when the client's circuit
// breaker refuses an attempt without touching the network.
var ErrCircuitOpen = errors.New("dash: circuit open")

// ErrBudgetExhausted is returned (wrapped, alongside the attempt's own
// error) when the retry budget refuses further attempts.
var ErrBudgetExhausted = errors.New("dash: retry budget exhausted")

// StatusError is a non-2xx response, carrying any Retry-After hint the
// server attached. withRetry unwraps it to decide retryability and
// pacing; loadgen unwraps it to classify failures.
type StatusError struct {
	Status     int
	RetryAfter time.Duration
	Msg        string
}

func (e *StatusError) Error() string { return e.Msg }

// Error classes for the loadgen report: overload experiments must tell
// "the server protected itself" (shed) apart from "the server fell
// over" (http5xx) and from client-side pathologies.
const (
	ClassShed      = "shed"      // explicit backpressure: 429, or 5xx with Retry-After
	ClassHTTP5xx   = "http5xx"   // server-side failure without a hint (chaos 502/503)
	ClassHTTP4xx   = "http4xx"   // client error, never retried
	ClassTimeout   = "timeout"   // attempt deadline exceeded
	ClassBreaker   = "breaker"   // refused locally by the circuit breaker
	ClassTransport = "transport" // everything else on the wire
)

// ErrorClasses lists the classes in report order.
var ErrorClasses = []string{ClassShed, ClassHTTP5xx, ClassHTTP4xx, ClassTimeout, ClassBreaker, ClassTransport}

// Classify buckets a fetch error into one of ErrorClasses.
func Classify(err error) string {
	if errors.Is(err, ErrCircuitOpen) {
		return ClassBreaker
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch {
		case se.Status == http.StatusTooManyRequests, se.RetryAfter > 0:
			return ClassShed
		case se.Status >= 500:
			return ClassHTTP5xx
		default:
			return ClassHTTP4xx
		}
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	return ClassTransport
}

// parseRetryAfter reads a Retry-After header deterministically:
// integer seconds only (the HTTP-date form needs a wall clock to
// interpret, which internal/ does not have), capped at maxRetryAfter.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// Resilience arms the client's overload defenses. All fields are
// optional; the zero value behaves like the bare RetryPolicy client.
type Resilience struct {
	// Budget meters retries (not first attempts). Single-owner, like
	// the client itself.
	Budget *resilience.RetryBudget
	// Breaker fails fast per origin. Transitions run on the client's
	// injected Now.
	Breaker *resilience.Breaker
	// Jitter spreads backoff delays ×[0.5,1.5); seed it from the
	// player's FNV lane. Nil disables jitter.
	Jitter *rand.Rand
	// Hedge launches a second identical segment request if the first
	// has not completed after this delay, taking whichever finishes
	// first — the classic tail-latency trade of extra load for a
	// bounded p99. Zero disables hedging.
	Hedge time.Duration
	// Tenant is sent as the X-Tenant header on every request.
	Tenant string
}

// SetResilience arms the overload defenses. Call alongside SetRetry;
// a client without resilience behaves exactly as before.
func (c *Client) SetResilience(r Resilience) {
	if r.Hedge > 0 && c.sleep == nil {
		panic("dash: hedged requests need a sleep func; call SetRetry first")
	}
	c.res = r
}

// ClientStats snapshots the client-side resilience counters the
// loadgen report aggregates into client.retrybudget.* /
// client.breaker.* / client.hedge.*.
type ClientStats struct {
	Budget  resilience.BudgetStats
	Breaker resilience.BreakerStats
	Hedges  int64 // hedge requests actually launched
	Waited  int64 // retries that honored a server Retry-After hint
}

// ResilienceStats snapshots the client's resilience counters.
func (c *Client) ResilienceStats() ClientStats {
	return ClientStats{
		Budget:  c.res.Budget.Stats(),
		Breaker: c.res.Breaker.Stats(),
		Hedges:  c.hedges.Load(),
		Waited:  c.waited.Load(),
	}
}

// retryableErr reports whether a failed attempt is worth retrying:
// transport errors and 5xx/429 are; other 4xx are not — re-sending a
// request the server rejected outright only burns the backoff budget.
func retryableErr(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return retryable(se.Status)
	}
	return true // transport-level failure
}

// withRetry runs attempt up to the policy's budget, pacing retries by
// (in priority order) the server's Retry-After hint, then the capped
// exponential backoff, jittered on the client's seed lane. The
// breaker gates every attempt; the retry budget gates every attempt
// after the first.
func (c *Client) withRetry(attempt func() error) error {
	attempts := c.retry.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	backoff := c.retry.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if !c.res.Budget.Allow() {
				return fmt.Errorf("%w after %w", ErrBudgetExhausted, err)
			}
			delay := backoff
			if backoff *= 2; backoff > c.retry.BackoffCap {
				backoff = c.retry.BackoffCap
			}
			var se *StatusError
			if errors.As(err, &se) && se.RetryAfter > delay {
				delay = se.RetryAfter
				c.waited.Add(1)
			}
			c.sleep(resilience.Jitter(c.res.Jitter, delay))
		}
		if !c.res.Breaker.Allow(c.Now()) {
			// A fast-fail is not evidence about the origin: it does not
			// feed back into the breaker.
			return fmt.Errorf("%w (attempt %d)", ErrCircuitOpen, i+1)
		}
		if err = attempt(); err == nil {
			c.res.Breaker.OnSuccess(c.Now())
			c.res.Budget.OnSuccess()
			return nil
		}
		c.res.Breaker.OnFailure(c.Now())
		if !retryableErr(err) {
			return err
		}
	}
	return err
}

// get issues one GET with the tenant header attached, returning the
// response or a transport error.
func (c *Client) get(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if c.res.Tenant != "" {
		req.Header.Set(TenantHeader, c.res.Tenant)
	}
	return c.HTTP.Do(req)
}

// statusError builds the StatusError for a non-2xx response,
// capturing any Retry-After hint.
func statusError(resp *http.Response, msg string) *StatusError {
	return &StatusError{
		Status:     resp.StatusCode,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		Msg:        msg,
	}
}

// hedgeResult is one racer's outcome in a hedged fetch.
type hedgeResult struct {
	n    int64
	rung string
	err  error
}

// hedged races do against a clone of itself launched after the hedge
// delay, returning whichever finishes first — unless the first
// finisher failed, in which case the other racer's result is awaited
// (it may still succeed). Goroutine count is bounded by the hedge
// fan-out (2), not by data size.
func (c *Client) hedged(do func() hedgeResult) hedgeResult {
	results := make(chan hedgeResult, 2)
	go func() { results <- do() }()
	timer := make(chan struct{})
	go func() {
		c.sleep(c.res.Hedge)
		close(timer)
	}()
	select {
	case r := <-results:
		return r
	case <-timer:
		c.hedges.Add(1)
		go func() { results <- do() }()
		r := <-results
		if r.err != nil {
			if r2 := <-results; r2.err == nil {
				return r2
			}
		}
		return r
	}
}
