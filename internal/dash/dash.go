// Package dash models DASH video content the way the paper's testbed
// serves it (§4.1): H.264 videos encoded at resolutions from 240p to
// 1440p, frame rates of 24–60 FPS, bitrates per YouTube's recommended
// upload settings, split into ~4-second segments and described by a
// manifest. A net/http handler serves manifests and synthetic segments
// for the real-network examples.
package dash

import (
	"fmt"
	"math"
	"time"

	"coalqoe/internal/units"
)

// Resolution is a standard video resolution.
type Resolution int

// Supported resolutions (the paper's experimental range).
const (
	R240p Resolution = iota
	R360p
	R480p
	R720p
	R1080p
	R1440p
)

// Resolutions lists all supported resolutions in ascending order.
var Resolutions = []Resolution{R240p, R360p, R480p, R720p, R1080p, R1440p}

// Pixels returns the frame size in pixels (16:9 frames).
func (r Resolution) Pixels() int {
	w, h := r.Dimensions()
	return w * h
}

// Dimensions returns width and height.
func (r Resolution) Dimensions() (w, h int) {
	switch r {
	case R240p:
		return 426, 240
	case R360p:
		return 640, 360
	case R480p:
		return 854, 480
	case R720p:
		return 1280, 720
	case R1080p:
		return 1920, 1080
	case R1440p:
		return 2560, 1440
	default:
		return 0, 0
	}
}

// String renders like "1080p".
func (r Resolution) String() string {
	_, h := r.Dimensions()
	return fmt.Sprintf("%dp", h)
}

// ParseResolution converts "720p" style strings.
func ParseResolution(s string) (Resolution, error) {
	for _, r := range Resolutions {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("dash: unknown resolution %q", s)
}

// Rung is one entry of the bitrate ladder: a (resolution, frame rate)
// pair with its encoding bitrate.
type Rung struct {
	Resolution Resolution
	FPS        int
	Bitrate    units.BitsPerSecond
}

// String renders like "1080p60@12.00Mbps".
func (r Rung) String() string {
	return fmt.Sprintf("%s%d@%v", r.Resolution, r.FPS, r.Bitrate)
}

// youtubeBitrate30 gives YouTube's recommended upload bitrate for
// 30 FPS SDR content [20].
var youtubeBitrate30 = map[Resolution]units.BitsPerSecond{
	R240p:  0.7 * units.Mbps,
	R360p:  1.0 * units.Mbps,
	R480p:  2.5 * units.Mbps,
	R720p:  5.0 * units.Mbps,
	R1080p: 8.0 * units.Mbps,
	R1440p: 16.0 * units.Mbps,
}

// youtubeBitrate60 gives the high-frame-rate recommendations.
var youtubeBitrate60 = map[Resolution]units.BitsPerSecond{
	R240p:  1.0 * units.Mbps,
	R360p:  1.5 * units.Mbps,
	R480p:  4.0 * units.Mbps,
	R720p:  7.5 * units.Mbps,
	R1080p: 12.0 * units.Mbps,
	R1440p: 24.0 * units.Mbps,
}

// BitrateFor returns the ladder bitrate for a resolution/fps pair,
// interpolating for the 24 and 48 FPS encodings the paper's §6 uses
// (24 ≈ 0.92 × the 30 FPS rate, 48 ≈ 0.92 × the 60 FPS rate).
func BitrateFor(r Resolution, fps int) units.BitsPerSecond {
	switch {
	case fps <= 24:
		return units.BitsPerSecond(0.92 * float64(youtubeBitrate30[r]))
	case fps <= 30:
		return youtubeBitrate30[r]
	case fps <= 48:
		return units.BitsPerSecond(0.92 * float64(youtubeBitrate60[r]))
	default:
		return youtubeBitrate60[r]
	}
}

// StandardFPS lists the frame rates the paper evaluates.
var StandardFPS = []int{24, 30, 48, 60}

// Ladder builds the full rung set for the given fps options.
func Ladder(fpsOptions ...int) []Rung {
	if len(fpsOptions) == 0 {
		fpsOptions = []int{30, 60}
	}
	var out []Rung
	for _, r := range Resolutions {
		for _, f := range fpsOptions {
			out = append(out, Rung{Resolution: r, FPS: f, Bitrate: BitrateFor(r, f)})
		}
	}
	return out
}

// FindRung returns the ladder rung matching resolution and fps.
func FindRung(ladder []Rung, r Resolution, fps int) (Rung, bool) {
	for _, rung := range ladder {
		if rung.Resolution == r && rung.FPS == fps {
			return rung, true
		}
	}
	return Rung{}, false
}

// Genre captures content complexity; it scales both per-segment size
// variability and decode cost (motion/detail).
type Genre int

// The paper's five test genres (§4.3).
const (
	Travel Genre = iota
	Sports
	Gaming
	News
	Nature
)

// Genres lists all genres.
var Genres = []Genre{Travel, Sports, Gaming, News, Nature}

// String names the genre.
func (g Genre) String() string {
	switch g {
	case Travel:
		return "travel"
	case Sports:
		return "sports"
	case Gaming:
		return "gaming"
	case News:
		return "news"
	case Nature:
		return "nature"
	default:
		return fmt.Sprintf("Genre(%d)", int(g))
	}
}

// Complexity returns the decode-cost multiplier for the genre.
func (g Genre) Complexity() float64 {
	switch g {
	case Gaming:
		return 1.15
	case Sports:
		return 1.10
	case Travel:
		return 1.0
	case Nature:
		return 0.95
	case News:
		return 0.85
	default:
		return 1.0
	}
}

// variability returns the per-segment VBR size spread for the genre.
func (g Genre) variability() float64 {
	switch g {
	case Gaming, Sports:
		return 0.35
	case Travel:
		return 0.25
	case Nature:
		return 0.20
	case News:
		return 0.15
	default:
		return 0.25
	}
}

// Video describes one piece of content.
type Video struct {
	Title           string
	Genre           Genre
	Duration        time.Duration
	SegmentDuration time.Duration
}

// TestVideos are stand-ins for the five YouTube videos of §4.3;
// the first (travel) is the paper's primary single-video subject
// ("Dubai Flow Motion in 4K").
var TestVideos = []Video{
	{Title: "Dubai Flow Motion", Genre: Travel, Duration: 3 * time.Minute, SegmentDuration: 4 * time.Second},
	{Title: "ATP Cup Highlights", Genre: Sports, Duration: 3 * time.Minute, SegmentDuration: 4 * time.Second},
	{Title: "Dota 2 Grand Final", Genre: Gaming, Duration: 3 * time.Minute, SegmentDuration: 4 * time.Second},
	{Title: "News Interview", Genre: News, Duration: 3 * time.Minute, SegmentDuration: 4 * time.Second},
	{Title: "Bali in 8K", Genre: Nature, Duration: 3 * time.Minute, SegmentDuration: 4 * time.Second},
}

// Segments returns the number of segments in the video.
func (v Video) Segments() int {
	return int(math.Ceil(float64(v.Duration) / float64(v.SegmentDuration)))
}

// SegmentBytes returns the deterministic VBR size of segment i at the
// given rung: the nominal CBR size modulated by a genre-dependent,
// per-segment pseudo-random factor (stable across runs and servers).
func (v Video) SegmentBytes(rung Rung, i int) units.Bytes {
	nominal := rung.Bitrate.BytesPerSecond() * v.SegmentDuration.Seconds()
	// xorshift-style hash of (title, segment) for a stable factor.
	h := uint64(2166136261)
	for _, c := range v.Title {
		h = (h ^ uint64(c)) * 16777619
	}
	h ^= uint64(i+1) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	u := float64(h%10000)/10000 - 0.5 // [-0.5, 0.5)
	factor := 1 + 2*u*v.Genre.variability()
	return units.Bytes(nominal * factor)
}

// TotalBytes returns the size of the whole video at the given rung.
func (v Video) TotalBytes(rung Rung) units.Bytes {
	var sum units.Bytes
	for i := 0; i < v.Segments(); i++ {
		sum += v.SegmentBytes(rung, i)
	}
	return sum
}

// Manifest is the MPD equivalent: one video with its available rungs.
type Manifest struct {
	Video Video
	Rungs []Rung
}

// NewManifest builds a manifest over the default 30/60 FPS ladder,
// or the provided fps options.
func NewManifest(v Video, fpsOptions ...int) *Manifest {
	return &Manifest{Video: v, Rungs: Ladder(fpsOptions...)}
}

// Rung finds the rung for (resolution, fps).
func (m *Manifest) Rung(r Resolution, fps int) (Rung, bool) {
	return FindRung(m.Rungs, r, fps)
}

// Lowest returns the lowest-bitrate rung.
func (m *Manifest) Lowest() Rung {
	best := m.Rungs[0]
	for _, r := range m.Rungs[1:] {
		if r.Bitrate < best.Bitrate {
			best = r
		}
	}
	return best
}
