package dash

import (
	"sort"
	"sync/atomic"
)

// serverMetrics is the server's thread-safe counter set. The original
// server funneled every request through one sync.Mutex guarding a
// telemetry.Registry (which is single-goroutine by design); under a
// thousand concurrent players the load generator was benchmarking
// that lock, not the serving path. This wrapper is the replacement:
// the name set is fixed at construction (the map is never written
// after that, so concurrent lookups are safe) and every value is an
// atomic.Int64 — no locks anywhere on the request path. Snapshot
// preserves the original /metrics shape: the same names, sorted, as
// float64 values.
type serverMetrics struct {
	names []string // sorted, fixed at construction
	vals  map[string]*atomic.Int64
}

// newServerMetrics pre-registers the full name set, so /metrics
// reports explicit zeros for series nothing has touched yet (the
// contract the seed server established for unrequested rungs).
func newServerMetrics(names ...string) *serverMetrics {
	m := &serverMetrics{vals: make(map[string]*atomic.Int64, len(names))}
	for _, name := range names {
		if _, ok := m.vals[name]; ok {
			continue
		}
		m.vals[name] = new(atomic.Int64)
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	return m
}

// counter returns the named counter for hot-path use; registration is
// construction-only, so an unknown name is a wiring bug.
func (m *serverMetrics) counter(name string) *atomic.Int64 {
	c, ok := m.vals[name]
	if !ok {
		panic("dash: unregistered metric " + name)
	}
	return c
}

// add bumps a named counter.
func (m *serverMetrics) add(name string, delta int64) {
	m.counter(name).Add(delta)
}

// snapshot reads every counter into the map /metrics serializes.
// extras lets the handler merge in derived or subsystem series
// (cache, chaos) without them needing to be atomics here.
func (m *serverMetrics) snapshot(extras map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m.names)+len(extras))
	for _, name := range m.names {
		out[name] = float64(m.vals[name].Load())
	}
	//coalvet:allow maporder key-to-key map merge; encoding/json sorts map keys on marshal
	for k, v := range extras {
		out[k] = v
	}
	return out
}
