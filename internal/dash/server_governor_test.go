package dash

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"coalqoe/internal/cdn"
)

// governedServer builds a test server with an admission governor on a
// fake clock.
func governedServer(t *testing.T, cfg cdn.GovernorConfig) (*httptest.Server, *Manifest, *cdn.Governor, *govTestClock) {
	t.Helper()
	clk := &govTestClock{t: time.Unix(1700000000, 0)}
	g := cdn.NewGovernor(cfg, clk.now)
	m := NewManifest(TestVideos[0], 24, 30, 48, 60)
	ts := httptest.NewServer(NewServerOpts(m, ServerOptions{Governor: g}))
	t.Cleanup(ts.Close)
	return ts, m, g, clk
}

type govTestClock struct{ t time.Time }

func (c *govTestClock) now() time.Time { return c.t }

func TestGovernedServerShedsWithRetryAfter(t *testing.T) {
	ts, _, g, _ := governedServer(t, cdn.GovernorConfig{
		MaxInflight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second,
	})
	// Occupy the slot and the queue directly — the governor doesn't
	// care whether admissions came over HTTP.
	if d := g.Admit("warm"); d.Kind != cdn.Admitted {
		t.Fatal("setup: slot")
	}
	if d := g.Admit("warm"); d.Kind != cdn.Queued {
		t.Fatal("setup: queue")
	}
	resp, err := http.Get(ts.URL + "/video/480p30/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	// Manifest and metrics bypass admission even while saturated.
	for _, path := range []string{"/manifest.json", "/metrics"} {
		r2, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Errorf("%s under saturation: %d, want 200 (must bypass admission)", path, r2.StatusCode)
		}
	}
}

func TestGovernedServerQueuesAndServes(t *testing.T) {
	ts, m, g, _ := governedServer(t, cdn.GovernorConfig{MaxInflight: 1, MaxQueue: 4})
	if d := g.Admit("warm"); d.Kind != cdn.Admitted {
		t.Fatal("setup: slot")
	}
	type result struct {
		status int
		n      int64
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/video/480p30/0")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		n, _ := io.Copy(io.Discard, resp.Body)
		done <- result{status: resp.StatusCode, n: n}
	}()
	// The request parks in the queue until the warm slot releases.
	deadline := time.After(5 * time.Second)
	for g.Stats().QueueDepth != 1 {
		select {
		case r := <-done:
			t.Fatalf("request completed while slot was held: %+v", r)
		case <-deadline:
			t.Fatal("request never queued")
		default:
		}
	}
	g.Release()
	r := <-done
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("queued request: %+v", r)
	}
	rung, _ := m.Rung(R480p, 30)
	if want := int64(m.Video.SegmentBytes(rung, 0)); r.n != want {
		t.Errorf("body = %d bytes, want %d", r.n, want)
	}
	if s := g.Stats(); s.Granted != 1 {
		t.Errorf("granted = %d, want 1", s.Granted)
	}
}

func TestGovernedServerQuota429(t *testing.T) {
	ts, _, _, _ := governedServer(t, cdn.GovernorConfig{
		Quotas: []cdn.TenantQuota{{Name: "metered", Rate: 0.001, Burst: 1}},
	})
	get := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/video/480p30/0", nil)
		req.Header.Set(TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := get("metered"); resp.StatusCode != http.StatusOK {
		t.Fatalf("burst request: %d", resp.StatusCode)
	}
	resp := get("metered")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry a Retry-After hint")
	}
	// Other tenants are untouched by the hot tenant's throttle.
	if resp := get("other"); resp.StatusCode != http.StatusOK {
		t.Errorf("unmetered tenant throttled: %d", resp.StatusCode)
	}
}

func TestGovernedServerBrownoutDemotes(t *testing.T) {
	ts, m, g, _ := governedServer(t, cdn.GovernorConfig{
		BrownoutEnter: 0.2, BrownoutDemote: 2,
		Quotas: []cdn.TenantQuota{{Name: "flood", Rate: 0.0001, Burst: 1}},
	})
	// Drive the shed EWMA over the brownout threshold with a flood of
	// quota throttles (deterministic: no queue timing involved).
	g.Admit("flood")
	for i := 0; i < 40; i++ {
		if d := g.Admit("flood"); d.Kind != cdn.Shed {
			t.Fatalf("flood %d not shed", i)
		}
		g.Release()
	}
	if !g.Stats().BrownoutActive {
		t.Fatal("brownout should be active")
	}
	// A healthy tenant asks for the top rung; brownout serves two
	// rungs down and says so.
	resp, err := http.Get(ts.URL + "/video/1080p60/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, _ := io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("brownout fetch: %d", resp.StatusCode)
	}
	servedID := resp.Header.Get(ServedRungHeader)
	if servedID == "" || servedID == "1080p60" {
		t.Fatalf("served rung header = %q, want a demoted rung", servedID)
	}
	res, fps, err := parseRepID(servedID)
	if err != nil {
		t.Fatal(err)
	}
	served, ok := m.Rung(res, fps)
	if !ok {
		t.Fatalf("served rung %q not in manifest", servedID)
	}
	requested, _ := m.Rung(R1080p, 60)
	if served.Bitrate >= requested.Bitrate {
		t.Errorf("demoted rung %v not below requested %v", served.Bitrate, requested.Bitrate)
	}
	if want := int64(m.Video.SegmentBytes(served, 0)); n != want {
		t.Errorf("body = %d, want %d (the demoted rung's bytes)", n, want)
	}
	if cl, _ := strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64); cl != n {
		t.Errorf("Content-Length %d != body %d", cl, n)
	}
	// The rung mix shifted: the served rung's counter moved, not the
	// requested one's.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]float64
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics["dash.segment_requests."+servedID] != 1 {
		t.Errorf("served rung counter = %v, want 1", metrics["dash.segment_requests."+servedID])
	}
	if metrics["dash.segment_requests.1080p60"] != 0 {
		t.Errorf("requested rung counter = %v, want 0 (counted under served rung)", metrics["dash.segment_requests.1080p60"])
	}
	if metrics["dash.brownout.active"] != 1 || metrics["dash.brownout.demoted"] == 0 {
		t.Errorf("brownout metrics: active=%v demoted=%v", metrics["dash.brownout.active"], metrics["dash.brownout.demoted"])
	}
	if metrics["dash.quota.throttled.flood"] != 40 {
		t.Errorf("per-tenant throttle counter = %v, want 40", metrics["dash.quota.throttled.flood"])
	}
}

func TestGovernedMetricsFamilies(t *testing.T) {
	ts, _, _, _ := governedServer(t, cdn.GovernorConfig{MaxInflight: 8})
	resp, err := http.Get(ts.URL + "/video/480p30/0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]float64
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"dash.admit.admitted", "dash.admit.shed", "dash.admit.queue_depth",
		"dash.brownout.active", "dash.quota.granted.anon",
	} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
	if metrics["dash.admit.admitted"] != 1 {
		t.Errorf("admitted = %v, want 1", metrics["dash.admit.admitted"])
	}
}
