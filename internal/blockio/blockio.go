// Package blockio models the eMMC storage device and its kernel service
// daemon mmcqd, "which manages queued I/O operations on storage" (§2).
//
// Two properties of mmcqd matter for the paper's findings and are
// reproduced exactly:
//
//  1. mmcqd runs in the real-time scheduling class, so it "is strictly
//     prioritized over foreground processes and therefore can steal CPU
//     time from them" (§2). Every request costs mmcqd CPU, which under
//     memory pressure is what preempts video client threads (Table 5).
//  2. The device itself is serial: requests queue, so under reclaim
//     writeback plus refault reads the per-request latency balloons,
//     lengthening uninterruptible (D-state) waits.
package blockio

import (
	"time"

	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// Config sets device and daemon costs.
type Config struct {
	// ReadPerPage is device service time per page read. Refault reads
	// are scattered 4K reads, far from sequential speed on entry-level
	// eMMC. Default 60µs (~65 MB/s).
	ReadPerPage time.Duration
	// WritePerPage is device service time per page written.
	// Default 90µs (~45 MB/s).
	WritePerPage time.Duration
	// RequestOverhead is fixed device time per request (command setup
	// plus the effective seek of a scattered access). Default 400µs.
	RequestOverhead time.Duration
	// CPUPerRequest is mmcqd CPU per request (queue management,
	// completion handling). Default 120µs.
	CPUPerRequest time.Duration
	// CPUPerPage is additional mmcqd CPU per page. Default 1µs.
	CPUPerPage time.Duration
	// FairPriority runs mmcqd in the fair class instead of RT — the
	// §7 ablation quantifying how much of the damage comes from
	// mmcqd's strict priority over foreground threads.
	FairPriority bool
}

func (c *Config) applyDefaults() {
	if c.ReadPerPage <= 0 {
		c.ReadPerPage = 60 * time.Microsecond
	}
	if c.WritePerPage <= 0 {
		c.WritePerPage = 90 * time.Microsecond
	}
	if c.RequestOverhead <= 0 {
		c.RequestOverhead = 400 * time.Microsecond
	}
	if c.CPUPerRequest <= 0 {
		c.CPUPerRequest = 120 * time.Microsecond
	}
	if c.CPUPerPage <= 0 {
		c.CPUPerPage = time.Microsecond
	}
}

// Stats counts disk activity.
type Stats struct {
	ReadRequests  int
	WriteRequests int
	PagesRead     units.Pages
	PagesWritten  units.Pages
	DeviceBusy    time.Duration
	// PeakBacklog is the largest outstanding device time observed at
	// any request submission. QueueDepth is instantaneous — by the time
	// a caller polls it, a reclaim writeback burst has usually drained —
	// so without this high-water mark the worst-case queue was
	// unobservable from a Stats snapshot.
	PeakBacklog time.Duration
}

// Disk is the storage device plus its mmcqd daemon thread.
type Disk struct {
	clock     *simclock.Clock
	cfg       Config
	mmcqd     *sched.Thread
	busyUntil time.Duration
	slow      float64 // device service-time multiplier; 1 = nominal
	stats     Stats

	// telemetry instruments; nil (free no-ops) until Instrument.
	tmLatency *telemetry.Histogram
	tmPeak    *telemetry.Gauge
}

// New creates a Disk and spawns its mmcqd thread (RT class unless the
// FairPriority ablation is set) on s.
func New(clock *simclock.Clock, s *sched.Scheduler, cfg Config) *Disk {
	cfg.applyDefaults()
	class := sched.ClassRT
	if cfg.FairPriority {
		class = sched.ClassFair
	}
	return &Disk{
		clock: clock,
		cfg:   cfg,
		mmcqd: s.Spawn("mmcqd/0", "kernel", class, 0),
	}
}

// Thread returns the mmcqd thread (for trace queries).
func (d *Disk) Thread() *sched.Thread { return d.mmcqd }

// SetSlowFactor scales device service time (request overhead and
// per-page cost) by f — an injected storage-degradation window:
// thermal throttling or the internal garbage collection of cheap eMMC.
// Values below 1 are clamped to 1 (nominal). Requests already being
// serviced keep their original timing; the factor applies at service
// start.
func (d *Disk) SetSlowFactor(f float64) {
	if f < 1 {
		f = 1
	}
	d.slow = f
}

// SlowFactor returns the current service-time multiplier.
func (d *Disk) SlowFactor() float64 {
	if d.slow < 1 {
		return 1
	}
	return d.slow
}

// Instrument registers the disk's telemetry: request/page counters and
// queue depth as sampled series, the peak-backlog high-water gauge
// (updated at submit time, so bursts between samples are not lost),
// and a per-request latency histogram from submission to data
// availability — mmcqd queueing plus serial device service, the
// quantity that balloons under reclaim writeback (§2).
func (d *Disk) Instrument(reg *telemetry.Registry) {
	d.tmLatency = reg.Histogram("blockio.request_latency")
	d.tmPeak = reg.Gauge("blockio.peak_backlog_us")
	reg.SampleFunc("blockio.read_requests", func() float64 { return float64(d.stats.ReadRequests) })
	reg.SampleFunc("blockio.write_requests", func() float64 { return float64(d.stats.WriteRequests) })
	reg.SampleFunc("blockio.pages_read", func() float64 { return float64(d.stats.PagesRead) })
	reg.SampleFunc("blockio.pages_written", func() float64 { return float64(d.stats.PagesWritten) })
	reg.SampleFunc("blockio.queue_depth_us", func() float64 {
		return float64(d.QueueDepth() / time.Microsecond)
	})
	reg.SampleFunc("blockio.device_busy_us", func() float64 {
		return float64(d.stats.DeviceBusy / time.Microsecond)
	})
}

// Stats returns cumulative disk statistics.
func (d *Disk) Stats() Stats { return d.stats }

// QueueDepth estimates outstanding device time.
func (d *Disk) QueueDepth() time.Duration {
	q := d.busyUntil - d.clock.Now()
	if q < 0 {
		return 0
	}
	return q
}

// Read submits a read of pages; onDone (may be nil) fires when the data
// is available. The request first costs mmcqd CPU (at RT priority),
// then waits for the serial device.
func (d *Disk) Read(pages units.Pages, onDone func()) {
	d.submit(pages, d.cfg.ReadPerPage, onDone)
	d.stats.ReadRequests++
	d.stats.PagesRead += pages
}

// Write submits a write of pages (e.g. dirty-page writeback).
func (d *Disk) Write(pages units.Pages, onDone func()) {
	d.submit(pages, d.cfg.WritePerPage, onDone)
	d.stats.WriteRequests++
	d.stats.PagesWritten += pages
}

func (d *Disk) submit(pages units.Pages, perPage time.Duration, onDone func()) {
	if pages < 0 {
		pages = 0
	}
	submitted := d.clock.Now()
	cpu := d.cfg.CPUPerRequest + time.Duration(pages)*d.cfg.CPUPerPage
	d.mmcqd.Enqueue(cpu, func() {
		// Device service starts when the device frees up.
		now := d.clock.Now()
		start := d.busyUntil
		if start < now {
			start = now
		}
		service := d.cfg.RequestOverhead + time.Duration(pages)*perPage
		if d.slow > 1 {
			service = time.Duration(float64(service) * d.slow)
		}
		d.busyUntil = start + service
		d.stats.DeviceBusy += service
		if backlog := d.busyUntil - now; backlog > d.stats.PeakBacklog {
			d.stats.PeakBacklog = backlog
			d.tmPeak.Max(float64(backlog / time.Microsecond))
		}
		d.tmLatency.Observe(d.busyUntil - submitted)
		if onDone != nil {
			d.clock.At(d.busyUntil, onDone)
		}
	})
}
