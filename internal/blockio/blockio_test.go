package blockio

import (
	"testing"
	"time"

	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/trace"
)

func setup(t *testing.T, cores int) (*simclock.Clock, *sched.Scheduler, *trace.Tracer, *Disk) {
	t.Helper()
	clock := simclock.New(1)
	tr := trace.New(0)
	speeds := make([]float64, cores)
	for i := range speeds {
		speeds[i] = 1.0
	}
	s := sched.New(clock, sched.Config{CoreSpeeds: speeds, Tracer: tr})
	d := New(clock, s, Config{})
	return clock, s, tr, d
}

func TestReadCompletes(t *testing.T) {
	clock, _, _, d := setup(t, 2)
	var done time.Duration
	d.Read(100, func() { done = clock.Now() })
	clock.RunUntil(time.Second)
	if done == 0 {
		t.Fatal("read never completed")
	}
	// mmcqd CPU (~220µs, tick-quantized) + overhead 400µs + 100*60µs.
	if done < 6400*time.Microsecond || done > 10*time.Millisecond {
		t.Errorf("read completed at %v, want ~6.5-9ms", done)
	}
	st := d.Stats()
	if st.ReadRequests != 1 || st.PagesRead != 100 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeviceSerializesRequests(t *testing.T) {
	clock, _, _, d := setup(t, 2)
	var first, second time.Duration
	d.Read(1000, func() { first = clock.Now() })
	d.Read(1000, func() { second = clock.Now() })
	clock.RunUntil(time.Second)
	if first == 0 || second == 0 {
		t.Fatal("reads never completed")
	}
	gap := second - first
	// Second request waits for the device: gap ≈ service time of one
	// request (400µs + 1000*60µs ≈ 60.4ms).
	if gap < 50*time.Millisecond {
		t.Errorf("gap = %v, want ~60ms (device is serial)", gap)
	}
}

func TestWritesSlowerThanReads(t *testing.T) {
	clockR, _, _, dr := setup(t, 1)
	var readDone time.Duration
	dr.Read(2000, func() { readDone = clockR.Now() })
	clockR.RunUntil(time.Second)

	clockW, _, _, dw := setup(t, 1)
	var writeDone time.Duration
	dw.Write(2000, func() { writeDone = clockW.Now() })
	clockW.RunUntil(time.Second)

	if writeDone <= readDone {
		t.Errorf("write (%v) should be slower than read (%v)", writeDone, readDone)
	}
}

func TestMmcqdPreemptsFairThreads(t *testing.T) {
	clock, s, tr, d := setup(t, 1)
	video := s.Spawn("MediaCodec", "firefox", sched.ClassFair, 0)
	video.Enqueue(200*time.Millisecond, nil)
	// Issue a burst of small reads while the video thread runs.
	for i := 0; i < 50; i++ {
		i := i
		clock.Schedule(time.Duration(i)*2*time.Millisecond, func() { d.Read(8, nil) })
	}
	clock.RunUntil(500 * time.Millisecond)
	tr.Finish(clock.Now())
	ps := tr.PreemptionsBy(trace.ByName("mmcqd"), trace.ByProcess("firefox"))
	if ps.Count == 0 {
		t.Error("mmcqd never preempted the video thread on a single core")
	}
	if got := tr.TimeInState(trace.ByProcess("firefox"), trace.RunnablePreempted); got == 0 {
		t.Error("no Runnable(Preempted) time recorded for the victim")
	}
}

func TestQueueDepthGrowsUnderLoad(t *testing.T) {
	clock, _, _, d := setup(t, 2)
	for i := 0; i < 20; i++ {
		d.Write(2000, nil)
	}
	clock.RunUntil(50 * time.Millisecond)
	if d.QueueDepth() == 0 {
		t.Error("queue depth should be nonzero with 20 large writes outstanding")
	}
	clock.RunUntil(10 * time.Second)
	if d.QueueDepth() != 0 {
		t.Errorf("queue depth = %v after drain, want 0", d.QueueDepth())
	}
}

func TestNilOnDoneAllowed(t *testing.T) {
	clock, _, _, d := setup(t, 1)
	d.Read(10, nil)
	d.Write(10, nil)
	clock.RunUntil(time.Second) // must not panic
	st := d.Stats()
	if st.ReadRequests != 1 || st.WriteRequests != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeviceBusyAccounting(t *testing.T) {
	clock, _, _, d := setup(t, 1)
	d.Read(1000, nil)
	clock.RunUntil(time.Second)
	want := 400*time.Microsecond + 1000*60*time.Microsecond
	if got := d.Stats().DeviceBusy; got != want {
		t.Errorf("DeviceBusy = %v, want %v", got, want)
	}
}

// Regression test for the PeakBacklog stat. Stats().QueueDepth-style
// polling cannot see a burst that queues and drains between polls; the
// disk must record the high-water backlog itself.
func TestPeakBacklogSurvivesDrain(t *testing.T) {
	clock, _, _, d := setup(t, 2)
	// A burst of back-to-back writes: the backlog behind the last
	// request is several full service times.
	for i := 0; i < 10; i++ {
		d.Write(2000, nil)
	}
	clock.RunUntil(time.Minute)
	if d.QueueDepth() != 0 {
		t.Fatalf("queue depth = %v after drain, want 0", d.QueueDepth())
	}
	st := d.Stats()
	// One 2000-page write services in ~400µs + 2000*180µs ≈ 360ms; the
	// tenth request saw ~9 of those queued ahead of it.
	single := 360 * time.Millisecond
	if st.PeakBacklog < 4*single {
		t.Errorf("PeakBacklog = %v, want >= %v (burst of 10 writes)", st.PeakBacklog, 4*single)
	}
	// The instantaneous depth is long gone; the peak must persist.
	if st.PeakBacklog <= single {
		t.Errorf("PeakBacklog = %v did not exceed a single request's service time", st.PeakBacklog)
	}
}

func TestPeakBacklogGauge(t *testing.T) {
	clock, _, _, d := setup(t, 2)
	reg := telemetry.NewRegistry()
	d.Instrument(reg)
	for i := 0; i < 10; i++ {
		d.Write(2000, nil)
	}
	clock.RunUntil(time.Minute)
	v, ok := reg.Value("blockio.peak_backlog_us")
	if !ok {
		t.Fatal("blockio.peak_backlog_us not registered")
	}
	want := float64(d.Stats().PeakBacklog / time.Microsecond)
	if v != want {
		t.Errorf("gauge = %v, stats peak = %v", v, want)
	}
	if v == 0 {
		t.Error("peak backlog gauge never rose under a write burst")
	}
}
