package arena

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coalqoe/internal/proc"
)

var updateLeaderboard = flag.Bool("update-leaderboard", false, "rewrite testdata/leaderboard.golden from the current arena")

const leaderboardGoldenPath = "testdata/leaderboard.golden"

// goldenConfig is the pinned tournament: the full quick grid at one
// run per cell. Changing any algorithm, the objective, the kernel, or
// the executor's ordering shows up as a diff against the golden bytes.
func goldenConfig(parallel int) Config {
	return Config{Quick: true, Runs: 1, Seed: 0, Parallel: parallel}
}

// TestLeaderboardGolden renders the tournament serially and at 8
// workers and requires (a) the two leaderboards byte-identical — the
// executor's determinism contract at the report level — and (b) both
// equal to the committed golden file, so algorithm or scoring drift
// cannot land silently.
func TestLeaderboardGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("arena grid skipped in -short mode")
	}
	render := func(parallel int) []byte {
		res := Run(goldenConfig(parallel))
		var buf bytes.Buffer
		if err := res.WriteLeaderboard(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("leaderboard differs between serial and 8-worker runs:\n--- serial ---\n%s\n--- 8 workers ---\n%s", serial, parallel)
	}
	if *updateLeaderboard {
		if err := os.MkdirAll(filepath.Dir(leaderboardGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(leaderboardGoldenPath, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", leaderboardGoldenPath, len(serial))
		return
	}
	want, err := os.ReadFile(leaderboardGoldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-leaderboard to create): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("leaderboard drifted from golden — if the change is intentional, refresh with -update-leaderboard\n--- got ---\n%s\n--- golden ---\n%s", serial, want)
	}
}

// TestLeaderboardRanksMemoryAwareOverRate pins the paper's headline on
// the pinned tournament itself: the objective-optimizing
// memory-pressure-aware entrant must beat the throughput-only rule
// under the memstorm pressure plan.
func TestLeaderboardRanksMemoryAwareOverRate(t *testing.T) {
	if testing.Short() {
		t.Skip("arena grid skipped in -short mode")
	}
	res := Run(goldenConfig(0))
	means := res.PlanMeans("memstorm")
	memopt, rate := means["memopt"], means["rate"]
	if !(memopt > rate) {
		t.Fatalf("memopt must beat rate under memstorm: memopt=%.2f rate=%.2f", memopt, rate)
	}
}

// TestWriteDecisionTrace renders the instrumented showcase run and
// checks the chrome://tracing document is well-formed and carries both
// synthetic mark tracks (fault windows and ABR decisions) alongside
// the kernel thread events.
func TestWriteDecisionTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented replay skipped in -short mode")
	}
	cfg := goldenConfig(1)
	var buf bytes.Buffer
	if err := WriteDecisionTrace(cfg, "memopt", proc.Moderate, "memstorm", &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawFault, sawDecision, sawThread bool
	for _, ev := range doc.TraceEvents {
		switch {
		case strings.HasPrefix(ev.Name, "fault:"):
			sawFault = true
		case strings.HasPrefix(ev.Name, "switch ") || strings.HasPrefix(ev.Name, "hold "):
			sawDecision = true
		case ev.Ph == "X" && ev.Cat == "":
			sawThread = true
		}
	}
	if !sawFault {
		t.Error("no fault-window marks in the decision trace")
	}
	if !sawDecision {
		t.Error("no ABR decision marks in the decision trace")
	}
	_ = sawThread // thread events are the tracer's own tests' concern

	if err := WriteDecisionTrace(cfg, "nosuch", proc.Moderate, "memstorm", &buf); err == nil {
		t.Error("unknown entrant should error")
	}
	if err := WriteDecisionTrace(cfg, "memopt", proc.Moderate, "nosuch", &buf); err == nil {
		t.Error("unknown plan should error")
	}
}
