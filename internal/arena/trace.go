package arena

import (
	"fmt"
	"io"
	"time"

	"coalqoe/internal/abr"
	"coalqoe/internal/device"
	"coalqoe/internal/exp"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/trace"
)

// WriteDecisionTrace replays one instrumented session — the named
// entrant on the configured content, under the given regime and plan —
// with full interval recording, telemetry sampling and the ABR
// decision log enabled, and writes a chrome://tracing document. The
// export carries three synthetic mark tracks on top of the thread
// states and counter series: "faults" (injected impairment windows),
// "abr" (every decision, switches as intervals between them), so a
// Perfetto view shows what the algorithm saw and chose right above
// the kernel activity that provoked it.
//
// The replay is one serial run seeded from cfg exactly like the
// tournament cell, so the exported trace is a member of the grid, not
// a new scenario.
func WriteDecisionTrace(cfg Config, entrant string, regime proc.Level, plan string, w io.Writer) error {
	cfg.applyDefaults()
	var ent *Entrant
	for i := range cfg.Entrants {
		if cfg.Entrants[i].Name == entrant {
			ent = &cfg.Entrants[i]
			break
		}
	}
	if ent == nil {
		return fmt.Errorf("arena: unknown entrant %q", entrant)
	}
	var pl *Plan
	for i := range cfg.Plans {
		if cfg.Plans[i].Name == plan {
			pl = &cfg.Plans[i]
			break
		}
	}
	if pl == nil {
		return fmt.Errorf("arena: unknown plan %q (not on the configured axis)", plan)
	}

	var ctrl *abr.Controller
	vr := exp.VideoRun{
		Profile:      cfg.Devices[0],
		Video:        cfg.Video,
		Resolution:   cfg.Resolution,
		FPS:          cfg.FPS,
		Pressure:     regime,
		Faults:       pl.Spec,
		PlayerTweaks: cfg.tweaks(),
		KeepTrace:    true,
		Telemetry:    &telemetry.Config{},
		OnSession: func(s *player.Session, dev *device.Device) {
			ctrl = abr.Attach(s, dev, ent.New(), 2*time.Second)
			ctrl.RecordDecisions = true
		},
	}
	// Same seed lane as the tournament: cell base + 1, the first
	// repeat's seed.
	vr.Seed = exp.CellSeed(cfg.Seed, vr) + 1
	res := exp.Run(vr)

	var marks []trace.Mark
	for _, fw := range res.FaultWindows {
		marks = append(marks, trace.Mark{
			Name: "fault:" + fw.Kind.String(), Start: fw.Start, End: fw.End(),
		})
	}
	if ctrl != nil {
		for i, d := range ctrl.Decisions {
			m := trace.Mark{Track: "abr", Start: d.At, End: d.At}
			if d.To != d.From {
				m.Name = fmt.Sprintf("switch %s -> %s", d.From, d.To)
			} else {
				m.Name = "hold " + d.To.String()
			}
			// Render each decision as the interval it governs: from
			// its instant to the next decision (the last one stays an
			// instant marker).
			if i+1 < len(ctrl.Decisions) {
				m.End = ctrl.Decisions[i+1].At
			}
			marks = append(marks, m)
		}
	}
	return res.Device.Tracer.WriteChromeTrace(w, res.Telemetry, marks...)
}
