// Package arena runs the all-pairs ABR tournament: every adaptation
// algorithm plays the same content on every device, under every memory
// -pressure regime and fault plan, and the runs are folded through the
// first-class QoE objective (internal/qoe.Objective) into one
// deterministic leaderboard. It is ROADMAP item 3: the paper's §6
// proposal judged against the classic baselines on the ground the
// paper cares about — quality delivered under memory pressure — rather
// than raw drop rates.
//
// Determinism contract: the tournament rides exp.RunGrid, so cells are
// seeded up front (exp.CellSeed ignores the OnSession hook, meaning
// every entrant faces the same pressure/fault realizations per cell —
// a paired comparison), results come back input-ordered, and all
// aggregation walks fixed slice orders. The leaderboard bytes are
// identical at any worker count; CI pins this with a golden digest.
package arena

import (
	"fmt"
	"io"
	"sort"
	"time"

	"coalqoe/internal/abr"
	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/exp"
	"coalqoe/internal/faults"
	"coalqoe/internal/netem"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/qoe"
	"coalqoe/internal/units"
)

// Entrant is one tournament competitor. New must return a fresh
// algorithm instance — it is called once per run, from executor
// workers, so stateful algorithms must not be shared across runs.
type Entrant struct {
	Name string
	New  func() abr.Algorithm
}

// Entrants returns the full arena roster: the classic baselines, the
// paper's §6 wrapper, and the two objective-driven newcomers.
func Entrants() []Entrant {
	return []Entrant{
		{"fixed", func() abr.Algorithm { return abr.Fixed{} }},
		{"rate", func() abr.Algorithm { return abr.RateBased{} }},
		{"bba", func() abr.Algorithm { return abr.BufferBased{} }},
		{"bola", func() abr.Algorithm { return abr.BOLA{} }},
		{"memaware", func() abr.Algorithm { return &abr.MemoryAware{Inner: abr.BOLA{}} }},
		{"mpc", func() abr.Algorithm { return &abr.MPC{} }},
		{"memopt", func() abr.Algorithm { return &abr.QoEAware{} }},
	}
}

// Plan is one fault-plan axis value; a nil Spec is the no-faults
// control and renders as "none".
type Plan struct {
	Name string
	Spec *faults.Spec
}

// DefaultPlans returns the arena's fault axis: clean conditions, the
// memory-spike storm (the paper's subject), and flaky WiFi (the
// network control the classic algorithms were designed for).
func DefaultPlans() []Plan {
	mem, net := faults.MemStorm(), faults.NetFlaky()
	return []Plan{{Name: "none"}, {Name: mem.Name, Spec: &mem}, {Name: net.Name, Spec: &net}}
}

// Config parameterizes a tournament.
type Config struct {
	// Seed, Runs, Quick, Parallel and Progress mirror exp.Options.
	Seed     int64
	Runs     int
	Quick    bool
	Parallel int
	Progress func(exp.ProgressEvent)

	// Entrants defaults to Entrants(); Devices to Nokia 1 / Nexus 5 /
	// Nexus 6P; Regimes to Normal / Moderate / Critical; Plans to
	// DefaultPlans().
	Entrants []Entrant
	Devices  []device.Profile
	Regimes  []proc.Level
	Plans    []Plan

	// Video is the content (default: the travel video, cut to 60s in
	// Quick mode); Resolution/FPS the starting rung (default 1080p60).
	Video      dash.Video
	Resolution dash.Resolution
	FPS        int

	// LinkRate/LinkDelay shape the bottleneck link every arena run
	// plays over. The paper's LAN "never became a bottleneck", but a
	// tournament judging network algorithms needs a network that can
	// lose: the default is marginal WiFi — 12 Mbps, 25 ms — which
	// sustains 1080p30 but not the 1440p tier, so the throughput rules
	// have real work on the netflaky axis too.
	LinkRate  units.BitsPerSecond
	LinkDelay time.Duration
}

func (c *Config) applyDefaults() {
	if c.Runs <= 0 {
		if c.Quick {
			c.Runs = 2
		} else {
			c.Runs = 3
		}
	}
	if len(c.Entrants) == 0 {
		c.Entrants = Entrants()
	}
	if len(c.Devices) == 0 {
		c.Devices = []device.Profile{device.Nokia1, device.Nexus5, device.Nexus6P}
	}
	if len(c.Regimes) == 0 {
		c.Regimes = []proc.Level{proc.Normal, proc.Moderate, proc.Critical}
	}
	if len(c.Plans) == 0 {
		c.Plans = DefaultPlans()
	}
	if c.Video.Title == "" {
		c.Video = dash.TestVideos[0]
		if c.Quick {
			c.Video.Duration = 60 * time.Second
		}
	}
	if c.Resolution == 0 && c.FPS == 0 {
		c.Resolution = dash.R1080p
		c.FPS = 60
	}
	if c.FPS == 0 {
		c.FPS = 60
	}
	if c.LinkRate <= 0 {
		c.LinkRate = 12 * units.Mbps
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 25 * time.Millisecond
	}
}

// tweaks returns the PlayerTweaks hook installing the arena link.
func (c *Config) tweaks() func(*player.Config) {
	rate, delay := c.LinkRate, c.LinkDelay
	return func(pc *player.Config) {
		pc.Link = netem.NewLink(pc.Device.Clock, rate, delay)
	}
}

// ladder returns the decision/scoring ladder — the same 24/30/48/60
// rung set VideoRun defaults the manifest to.
func (c *Config) ladder() []dash.Rung {
	return dash.Ladder(24, 30, 48, 60)
}

// Objective returns the scoring objective for this configuration.
func (c *Config) Objective() *qoe.Objective {
	cc := *c
	cc.applyDefaults()
	return qoe.DefaultObjective(cc.ladder(), cc.Video)
}

// Cell is one tournament cell: an (entrant, device, regime, plan)
// combination aggregated over the configured repeats.
type Cell struct {
	Entrant string
	Device  string
	Regime  proc.Level
	Plan    string

	// QoE is the mean objective breakdown over completed runs.
	QoE qoe.Breakdown
	// MOS and Drops are companion means (absolute opinion score,
	// effective drop rate %).
	MOS, Drops float64
	// Crashes counts crashed runs, Failed counts runs the executor
	// marked failed (panic/deadline), Runs the repeat count.
	Crashes, Failed, Runs int
}

// Result is a finished tournament.
type Result struct {
	Config Config
	// Cells in grid order: entrants × devices × regimes × plans.
	Cells []Cell
	// Board is the leaderboard: per-entrant aggregates sorted by mean
	// QoE descending (ties by name).
	Board []Standing
}

// Standing is one leaderboard row.
type Standing struct {
	Entrant string
	// QoE is the grand mean of the objective total across the
	// entrant's cells; the component fields mirror its breakdown.
	QoE        qoe.Breakdown
	MOS, Drops float64
	Crashes    int
	// Wins counts cells where this entrant scored the strictly best
	// QoE among all entrants under the same conditions.
	Wins int
}

// Run executes the tournament.
func Run(cfg Config) *Result {
	cfg.applyDefaults()
	obj := qoe.DefaultObjective(cfg.ladder(), cfg.Video)

	type key struct{ e, d, reg, p int }
	var cells []exp.VideoRun
	var keys []key
	for ei, e := range cfg.Entrants {
		mk := e.New
		for di, d := range cfg.Devices {
			for ri, reg := range cfg.Regimes {
				for pi, p := range cfg.Plans {
					vr := exp.VideoRun{
						Profile:      d,
						Video:        cfg.Video,
						Resolution:   cfg.Resolution,
						FPS:          cfg.FPS,
						Pressure:     reg,
						Faults:       p.Spec,
						PlayerTweaks: cfg.tweaks(),
						OnSession: func(s *player.Session, dev *device.Device) {
							abr.Attach(s, dev, mk(), 2*time.Second)
						},
					}
					cells = append(cells, vr)
					keys = append(keys, key{ei, di, ri, pi})
				}
			}
		}
	}

	opts := exp.Options{
		Seed: cfg.Seed, Runs: cfg.Runs, Quick: cfg.Quick,
		Parallel: cfg.Parallel, Progress: cfg.Progress,
	}
	grid := exp.RunGrid(opts, cells)

	res := &Result{Config: cfg}
	for i, runs := range grid {
		k := keys[i]
		c := Cell{
			Entrant: cfg.Entrants[k.e].Name,
			Device:  cfg.Devices[k.d].Name,
			Regime:  cfg.Regimes[k.reg],
			Plan:    cfg.Plans[k.p].Name,
			Runs:    len(runs),
		}
		n := 0
		for _, r := range runs {
			if r.Failed {
				c.Failed++
				continue
			}
			n++
			b := obj.Score(qoe.TraceFrom(r.Metrics, cfg.Video))
			c.QoE.Quality += b.Quality
			c.QoE.Startup += b.Startup
			c.QoE.Rebuffer += b.Rebuffer
			c.QoE.Smoothness += b.Smoothness
			c.QoE.Energy += b.Energy
			c.QoE.Crash += b.Crash
			c.QoE.Total += b.Total
			c.MOS += qoe.MOS(r.Metrics)
			c.Drops += r.Metrics.EffectiveDropRate
			if r.Metrics.Crashed {
				c.Crashes++
			}
		}
		if n > 0 {
			inv := 1 / float64(n)
			c.QoE.Quality *= inv
			c.QoE.Startup *= inv
			c.QoE.Rebuffer *= inv
			c.QoE.Smoothness *= inv
			c.QoE.Energy *= inv
			c.QoE.Crash *= inv
			c.QoE.Total *= inv
			c.MOS *= inv
			c.Drops *= inv
		}
		res.Cells = append(res.Cells, c)
	}

	res.Board = standings(cfg, res.Cells)
	return res
}

// standings folds cells into the per-entrant leaderboard.
func standings(cfg Config, cells []Cell) []Standing {
	perEntrant := len(cfg.Devices) * len(cfg.Regimes) * len(cfg.Plans)
	board := make([]Standing, len(cfg.Entrants))
	for i, e := range cfg.Entrants {
		s := Standing{Entrant: e.Name}
		for j := i * perEntrant; j < (i+1)*perEntrant; j++ {
			c := cells[j]
			s.QoE.Quality += c.QoE.Quality
			s.QoE.Startup += c.QoE.Startup
			s.QoE.Rebuffer += c.QoE.Rebuffer
			s.QoE.Smoothness += c.QoE.Smoothness
			s.QoE.Energy += c.QoE.Energy
			s.QoE.Crash += c.QoE.Crash
			s.QoE.Total += c.QoE.Total
			s.MOS += c.MOS
			s.Drops += c.Drops
			s.Crashes += c.Crashes
		}
		if perEntrant > 0 {
			inv := 1 / float64(perEntrant)
			s.QoE.Quality *= inv
			s.QoE.Startup *= inv
			s.QoE.Rebuffer *= inv
			s.QoE.Smoothness *= inv
			s.QoE.Energy *= inv
			s.QoE.Crash *= inv
			s.QoE.Total *= inv
			s.MOS *= inv
			s.Drops *= inv
		}
		board[i] = s
	}
	// Wins: per (device, regime, plan) condition, the strictly best
	// QoE total takes the cell.
	for j := 0; j < perEntrant; j++ {
		bestIdx, best := -1, 0.0
		unique := true
		for i := range cfg.Entrants {
			q := cells[i*perEntrant+j].QoE.Total
			if bestIdx == -1 || q > best {
				bestIdx, best, unique = i, q, true
			} else if q == best {
				unique = false
			}
		}
		if bestIdx >= 0 && unique {
			board[bestIdx].Wins++
		}
	}
	sort.SliceStable(board, func(i, j int) bool {
		if board[i].QoE.Total != board[j].QoE.Total {
			return board[i].QoE.Total > board[j].QoE.Total
		}
		return board[i].Entrant < board[j].Entrant
	})
	return board
}

// PlanMeans returns each entrant's mean QoE total restricted to one
// fault plan, in board order — the slice the acceptance check "memopt
// beats rate under memstorm" reads.
func (r *Result) PlanMeans(plan string) map[string]float64 {
	sum := map[string]float64{}
	n := map[string]int{}
	for _, c := range r.Cells {
		if c.Plan != plan {
			continue
		}
		sum[c.Entrant] += c.QoE.Total
		n[c.Entrant]++
	}
	out := make(map[string]float64, len(sum))
	//coalvet:allow maporder key-to-key map fold; callers index by entrant name
	for e, s := range sum {
		out[e] = s / float64(n[e])
	}
	return out
}

// WriteLeaderboard renders the deterministic tournament report: the
// leaderboard, the per-plan aggregate matrix, and the full per-cell
// table. Byte-identical at any executor parallelism.
func (r *Result) WriteLeaderboard(w io.Writer) error {
	cfg := r.Config
	if _, err := fmt.Fprintf(w, "== arena: ABR tournament leaderboard ==\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "grid: %d algorithms x %d devices x %d regimes x %d plans, %d runs/cell, seed %d\n",
		len(cfg.Entrants), len(cfg.Devices), len(cfg.Regimes), len(cfg.Plans), cfg.Runs, cfg.Seed)
	fmt.Fprintf(w, "content: %s (%v, start %s%d)\n", cfg.Video.Title, cfg.Video.Duration, cfg.Resolution, cfg.FPS)
	fmt.Fprintf(w, "objective: quality - startup - rebuffer - smoothness - energy - crash (per expected chunk)\n\n")

	fmt.Fprintf(w, "%-4s %-9s %8s %8s %8s %8s %7s %7s %7s %6s %7s %7s %5s\n",
		"rank", "algorithm", "QoE", "quality", "startup", "rebuf", "smooth", "energy", "crash", "MOS", "drops", "crashes", "wins")
	for i, s := range r.Board {
		fmt.Fprintf(w, "%-4d %-9s %8.2f %8.2f %8.2f %8.2f %7.2f %7.2f %7.2f %6.2f %6.1f%% %7d %5d\n",
			i+1, s.Entrant, s.QoE.Total, s.QoE.Quality, s.QoE.Startup, s.QoE.Rebuffer,
			s.QoE.Smoothness, s.QoE.Energy, s.QoE.Crash, s.MOS, s.Drops, s.Crashes, s.Wins)
	}

	fmt.Fprintf(w, "\nmean QoE by fault plan:\n")
	fmt.Fprintf(w, "%-9s", "algorithm")
	for _, p := range cfg.Plans {
		fmt.Fprintf(w, " %9s", p.Name)
	}
	fmt.Fprintln(w)
	for _, s := range r.Board {
		fmt.Fprintf(w, "%-9s", s.Entrant)
		for _, p := range cfg.Plans {
			fmt.Fprintf(w, " %9.2f", r.PlanMeans(p.Name)[s.Entrant])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\nper-cell QoE (device / regime / plan):\n")
	for _, c := range r.Cells {
		note := ""
		if c.Failed > 0 {
			note = fmt.Sprintf("  [%d/%d runs failed]", c.Failed, c.Runs)
		}
		if _, err := fmt.Fprintf(w, "%-9s %-8s %-8s %-9s QoE=%8.2f MOS=%.2f drops=%5.1f%% crashes=%d/%d%s\n",
			c.Entrant, c.Device, c.Regime, c.Plan, c.QoE.Total, c.MOS, c.Drops, c.Crashes, c.Runs, note); err != nil {
			return err
		}
	}
	return nil
}
