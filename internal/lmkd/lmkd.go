// Package lmkd implements the userspace low-memory killer daemon.
//
// As §2 of the paper describes, lmkd "relies on memory pressure signals
// from the kernel to decide which process groups (i.e., processes with
// certain oom_adj scores) become eligible to be killed", using the
// estimate P = (1 − R/S) · 100:
//
//   - when 60 < P < 95, processes with high oom_adj (cached/background
//     apps) become eligible,
//   - when P ≥ 95, foreground apps become eligible — this is what kills
//     the video client and produces the crash rates of Tables 2–3 and
//     the lmkd CPU spike of Figure 14.
//
// Victim selection follows §2: highest oom_adj first, least recently
// used first within a group.
package lmkd

import (
	"time"

	"coalqoe/internal/mem"
	"coalqoe/internal/proc"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/telemetry"
)

// Config tunes the daemon.
type Config struct {
	// PollInterval is the pressure-check cadence. Default 100ms.
	PollInterval time.Duration
	// CachedThreshold is the P value above which cached apps become
	// killable. Default 60.
	CachedThreshold float64
	// CriticalThreshold is the P value at or above which foreground
	// apps become killable. Default 95.
	CriticalThreshold float64
	// KillCPU is the CPU lmkd burns per kill (victim lookup, signal
	// delivery, reaping). Default 8ms — this is the utilization spike
	// visible when a session crashes (Figure 14).
	KillCPU time.Duration
	// MinFreeCachedFrac gates cached-app kills: free memory must be
	// below this fraction of total RAM. Android's lowmemorykiller
	// minfree levels sit well above the kernel watermarks; default 0.08.
	MinFreeCachedFrac float64
	// AvailCachedFrac makes cached apps killable whenever available
	// memory (free + file cache) sinks below this fraction of total
	// RAM, regardless of the P estimate — the legacy minfree
	// criterion. Default 0.15.
	AvailCachedFrac float64
	// MinFreeForegroundFrac gates foreground kills. Default 0.045.
	MinFreeForegroundFrac float64
	// DisableMinFree removes the free-memory gates (pressure alone
	// decides), for ablation.
	DisableMinFree bool
	// FgSustainPolls is how many consecutive polls must observe
	// critical pressure before a foreground app may be killed,
	// mirroring lmkd's PSI stall windows. Default 15 (1.5 s).
	FgSustainPolls int
	// KillCooldown is the minimum gap between kills, letting the freed
	// memory land before the next victim is chosen. Default 500ms.
	KillCooldown time.Duration
}

func (c *Config) applyDefaults() {
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.CachedThreshold <= 0 {
		c.CachedThreshold = 60
	}
	if c.CriticalThreshold <= 0 {
		c.CriticalThreshold = 95
	}
	if c.KillCPU <= 0 {
		c.KillCPU = 8 * time.Millisecond
	}
	if c.MinFreeCachedFrac <= 0 {
		c.MinFreeCachedFrac = 0.08
	}
	if c.MinFreeForegroundFrac <= 0 {
		c.MinFreeForegroundFrac = 0.045
	}
	if c.AvailCachedFrac <= 0 {
		c.AvailCachedFrac = 0.15
	}
	if c.FgSustainPolls <= 0 {
		c.FgSustainPolls = 15
	}
	if c.KillCooldown <= 0 {
		c.KillCooldown = 500 * time.Millisecond
	}
}

// Daemon is the lmkd model.
type Daemon struct {
	clock  *simclock.Clock
	mem    *mem.Memory
	table  *proc.Table
	cfg    Config
	thread *sched.Thread

	killInFlight  bool
	criticalPolls int           // consecutive polls with P >= CriticalThreshold
	lastKill      time.Duration // for the kill cooldown

	// KillCount is the number of processes killed so far.
	KillCount int
	// ForegroundKills counts kills with adj <= visible (app crashes).
	ForegroundKills int

	// telemetry instruments; nil (free no-ops) until Instrument.
	tmPolls *telemetry.Counter
	tmKills [adjBuckets]*telemetry.Counter
}

// adj buckets for the kills-by-oom_adj telemetry, mirroring §2's
// process groups: foreground (adj ≤ 0, includes native), visible,
// service, cached.
const (
	bucketForeground = iota
	bucketVisible
	bucketService
	bucketCached
	adjBuckets
)

func adjBucket(adj int) int {
	switch {
	case adj <= proc.AdjForeground:
		return bucketForeground
	case adj <= proc.AdjVisible:
		return bucketVisible
	case adj <= proc.AdjService:
		return bucketService
	default:
		return bucketCached
	}
}

// New creates the daemon and starts its poll loop. The lmkd thread is
// in the fair class (the real daemon is a normal userspace process).
func New(clock *simclock.Clock, s *sched.Scheduler, m *mem.Memory, table *proc.Table, cfg Config) *Daemon {
	cfg.applyDefaults()
	d := &Daemon{
		clock:  clock,
		mem:    m,
		table:  table,
		cfg:    cfg,
		thread: s.Spawn("lmkd", "lmkd", sched.ClassFair, -10),
	}
	clock.Every(cfg.PollInterval, d.poll)
	return d
}

// Thread returns lmkd's thread, e.g. for CPU-utilization sampling
// (Figure 14 tracks it with top).
func (d *Daemon) Thread() *sched.Thread { return d.thread }

// Instrument registers the daemon's telemetry: the poll counter, the
// pressure estimate P the polls act on (§2's P = (1 − R/S) · 100),
// and kills split by oom_adj bucket — the foreground bucket is the
// crash series of Tables 2–3.
func (d *Daemon) Instrument(reg *telemetry.Registry) {
	d.tmPolls = reg.Counter("lmkd.polls")
	d.tmKills[bucketForeground] = reg.Counter("lmkd.kills_foreground")
	d.tmKills[bucketVisible] = reg.Counter("lmkd.kills_visible")
	d.tmKills[bucketService] = reg.Counter("lmkd.kills_service")
	d.tmKills[bucketCached] = reg.Counter("lmkd.kills_cached")
	reg.SampleFunc("lmkd.pressure", d.mem.Pressure)
}

// minAdj returns the kill-eligibility floor for the current pressure,
// or false if nothing is eligible. Cached apps are eligible either
// through the P estimate (§2) or through the legacy minfree criterion
// on available memory.
func (d *Daemon) minAdj() (int, bool) {
	p := d.mem.Pressure()
	switch {
	case p >= d.cfg.CriticalThreshold:
		return proc.AdjForeground, true
	case p > d.cfg.CachedThreshold:
		return proc.AdjCached, true
	case float64(d.mem.Available()) < d.cfg.AvailCachedFrac*float64(d.mem.Total()):
		return proc.AdjCached, true
	default:
		return 0, false
	}
}

func (d *Daemon) poll() {
	d.tmPolls.Inc()
	if d.mem.Pressure() >= d.cfg.CriticalThreshold {
		d.criticalPolls++
	} else {
		d.criticalPolls = 0
	}
	if d.killInFlight {
		return
	}
	if d.KillCount > 0 && d.clock.Now()-d.lastKill < d.cfg.KillCooldown {
		return
	}
	minAdj, eligible := d.minAdj()
	if !eligible {
		return
	}
	if !d.cfg.DisableMinFree {
		total := float64(d.mem.Total())
		if minAdj <= proc.AdjForeground {
			if float64(d.mem.Free()) >= d.cfg.MinFreeForegroundFrac*total {
				return
			}
		} else if float64(d.mem.Free()) >= d.cfg.MinFreeCachedFrac*total &&
			float64(d.mem.Available()) >= d.cfg.AvailCachedFrac*total {
			return
		}
	}
	cands := d.table.KillCandidates(minAdj)
	if len(cands) == 0 {
		return
	}
	victim := cands[0]
	// Foreground (and visible) apps die only under *sustained*
	// critical pressure — a transient P spike from one allocation
	// burst must not kill the app the user is watching.
	if victim.Adj <= proc.AdjVisible && d.criticalPolls < d.cfg.FgSustainPolls {
		return
	}
	// The kill costs lmkd CPU before the memory comes back; under heavy
	// contention even the killer is slow.
	d.killInFlight = true
	d.thread.Enqueue(d.cfg.KillCPU, func() {
		d.killInFlight = false
		if victim.Dead() {
			return
		}
		d.KillCount++
		d.lastKill = d.clock.Now()
		d.tmKills[adjBucket(victim.Adj)].Inc()
		if victim.Adj <= proc.AdjVisible {
			d.ForegroundKills++
		}
		d.table.Kill(victim, "lmkd")
	})
}
