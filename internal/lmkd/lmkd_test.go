package lmkd

import (
	"testing"
	"time"

	"coalqoe/internal/blockio"
	"coalqoe/internal/kswapd"
	"coalqoe/internal/mem"
	"coalqoe/internal/proc"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/trace"
	"coalqoe/internal/units"
)

type env struct {
	clock *simclock.Clock
	sch   *sched.Scheduler
	mem   *mem.Memory
	table *proc.Table
	lmkd  *Daemon
}

func setup(t *testing.T, total units.Bytes, cfg Config) *env {
	t.Helper()
	clock := simclock.New(1)
	tr := trace.New(0)
	s := sched.New(clock, sched.Config{CoreSpeeds: []float64{1, 1}, Tracer: tr})
	m := mem.New(clock, mem.Config{Total: total, KernelReserve: 64 * units.MiB, ZRAMMax: total / 4})
	d := blockio.New(clock, s, blockio.Config{})
	k := kswapd.New(clock, s, m, d, kswapd.Config{})
	table := proc.NewTable(clock, s, m, d, k, proc.SignalThresholds{})
	lk := New(clock, s, m, table, cfg)
	return &env{clock: clock, sch: s, mem: m, table: table, lmkd: lk}
}

// squeeze drives the memory model into a sustained high-pressure
// regime: a big hot file working set makes scans inefficient, and a
// refault pump keeps re-reading evicted hot pages (what an active app
// does), so free memory stays low and P stays high.
func squeeze(e *env, hotFile units.Bytes) {
	ws := units.PagesOf(hotFile)
	e.mem.FileRead(ws)
	e.mem.SetWorkingSet("hog", mem.WorkingSet{File: ws})
	_, low, _ := e.mem.Watermarks()
	if e.mem.Free() > low {
		e.mem.AllocAnon(e.mem.Free() - low + 200)
	}
	// Refault pump: re-read evicted hot pages, as an active app would.
	e.clock.Every(10*time.Millisecond, func() {
		if d := e.mem.RefaultDeficit(); d > 0 {
			e.mem.FileRead(units.Pages(float64(ws) * d))
		}
	})
	// Balloon: keep allocating like the paper's MP Simulator app.
	e.clock.Every(25*time.Millisecond, func() {
		e.mem.AllocAnon(units.PagesOf(4 * units.MiB))
	})
}

func TestNoKillsWithoutPressure(t *testing.T) {
	e := setup(t, units.GiB, Config{})
	for i := 0; i < 5; i++ {
		e.table.Start(proc.Spec{Name: string(rune('a' + i)), Adj: proc.AdjCached, Cached: true, AnonBytes: units.MiB})
	}
	e.clock.RunUntil(5 * time.Second)
	if e.lmkd.KillCount != 0 {
		t.Errorf("killed %d processes with no pressure", e.lmkd.KillCount)
	}
}

func TestKillsCachedUnderPressure(t *testing.T) {
	e := setup(t, units.GiB, Config{})
	for i := 0; i < 5; i++ {
		e.table.Start(proc.Spec{Name: string(rune('a' + i)), Adj: proc.AdjCached, Cached: true, AnonBytes: 20 * units.MiB})
	}
	e.clock.RunUntil(time.Second)
	squeeze(e, 700*units.MiB)
	e.clock.RunUntil(10 * time.Second)
	if e.lmkd.KillCount == 0 {
		t.Fatalf("no kills under sustained pressure (P=%v free=%d)", e.mem.Pressure(), e.mem.Free())
	}
	if e.lmkd.ForegroundKills != 0 {
		t.Errorf("killed foreground while only cached should be eligible")
	}
}

func TestForegroundEligibleAtCriticalPressure(t *testing.T) {
	e := setup(t, units.GiB, Config{})
	crashed := false
	e.table.Start(proc.Spec{Name: "video", Adj: proc.AdjForeground, AnonBytes: 50 * units.MiB,
		OnKilled: func(string) { crashed = true }})
	e.clock.RunUntil(time.Second)
	// Nothing cached to kill; a fully hot memory makes P ~100.
	squeeze(e, 800*units.MiB)
	e.clock.RunUntil(20 * time.Second)
	if !crashed {
		t.Errorf("foreground survived P=%v free=%d kills=%d",
			e.mem.Pressure(), e.mem.Free(), e.lmkd.KillCount)
	}
	if e.lmkd.ForegroundKills == 0 {
		t.Error("ForegroundKills not counted")
	}
}

func TestVictimOrder(t *testing.T) {
	e := setup(t, units.GiB, Config{})
	e.table.Start(proc.Spec{Name: "fg", Adj: proc.AdjForeground, AnonBytes: 10 * units.MiB})
	e.table.Start(proc.Spec{Name: "cachedA", Adj: proc.AdjCached + 5, Cached: true, AnonBytes: 10 * units.MiB})
	e.table.Start(proc.Spec{Name: "cachedB", Adj: proc.AdjCached, Cached: true, AnonBytes: 10 * units.MiB})
	e.clock.RunUntil(time.Second)
	squeeze(e, 700*units.MiB)
	for e.lmkd.KillCount == 0 && e.clock.Now() < 30*time.Second {
		e.clock.RunUntil(e.clock.Now() + time.Second)
	}
	kills := e.table.Kills()
	if len(kills) == 0 {
		t.Fatal("no kills")
	}
	if kills[0].Process != "cachedA" {
		t.Errorf("first victim = %s, want cachedA (highest adj)", kills[0].Process)
	}
	if fg := e.table.Find("fg"); fg == nil {
		// Foreground may eventually die at P>=95; just ensure it was
		// not the first victim.
		if kills[0].Process == "fg" {
			t.Error("foreground killed first")
		}
	}
}

func TestKillCostsCPU(t *testing.T) {
	e := setup(t, units.GiB, Config{})
	for i := 0; i < 3; i++ {
		e.table.Start(proc.Spec{Name: string(rune('a' + i)), Adj: proc.AdjCached, Cached: true, AnonBytes: 30 * units.MiB})
	}
	e.clock.RunUntil(time.Second)
	squeeze(e, 700*units.MiB)
	e.clock.RunUntil(15 * time.Second)
	if e.lmkd.KillCount == 0 {
		t.Skip("no kills materialized; covered elsewhere")
	}
	if cpu := e.lmkd.Thread().CPUTime(); cpu < 8*time.Millisecond {
		t.Errorf("lmkd CPU = %v after %d kills, want >= 8ms", cpu, e.lmkd.KillCount)
	}
}

func TestMinFreeGate(t *testing.T) {
	e := setup(t, units.GiB, Config{})
	e.table.Start(proc.Spec{Name: "bg", Adj: proc.AdjCached, Cached: true, AnonBytes: 10 * units.MiB})
	e.clock.RunUntil(time.Second)
	// High P via inefficient scans but plenty of free memory: the
	// minfree gate must block kills.
	e.mem.FileRead(units.PagesOf(100 * units.MiB))
	e.mem.SetWorkingSet("hot", mem.WorkingSet{File: units.PagesOf(100 * units.MiB)})
	e.mem.ScanBatch(5000)
	if e.mem.Pressure() < 60 {
		t.Skip("pressure did not rise")
	}
	e.clock.RunUntil(1200 * time.Millisecond)
	if e.lmkd.KillCount != 0 {
		t.Error("killed despite free memory above low watermark")
	}
}

func TestForegroundKillRequiresSustainedPressure(t *testing.T) {
	// A transient P spike (shorter than FgSustainPolls) must not kill
	// the foreground app; sustained unreclaimable pressure must.
	e := setup(t, units.GiB, Config{FgSustainPolls: 20})
	crashed := false
	e.table.Start(proc.Spec{Name: "video", Adj: proc.AdjForeground, AnonBytes: 30 * units.MiB,
		OnKilled: func(string) { crashed = true }})
	e.clock.RunUntil(time.Second)

	// Saturate zRAM with cold anon so no reclaim headroom remains,
	// then mark everything hot: scans rotate fruitlessly, P ≈ 100 and
	// kswapd cannot restore free memory.
	e.mem.AllocAnon(e.mem.Free() - 2000)
	for i := 0; i < 64 && e.mem.ZRAMPhysical() < units.PagesOf(255*units.MiB); i++ {
		e.mem.ScanBatch(20000)
	}
	e.mem.SetWorkingSet("hog", mem.WorkingSet{Anon: e.mem.Anon() + e.mem.ZRAMStored()})

	// Transient: pressure lasts ~1s (10 polls < 20), then relief.
	e.clock.RunUntil(2 * time.Second)
	// Relief: enough resident heap freed that the minfree gate closes
	// and the pressure window decays, without touching the full zRAM.
	e.mem.FreeAnon(units.PagesOf(70 * units.MiB))
	e.clock.RunUntil(6 * time.Second)
	if crashed {
		t.Fatal("foreground killed by a sub-threshold pressure transient")
	}

	// Sustained: re-pin free memory with no reclaim headroom.
	e.mem.AllocAnon(e.mem.Free() - 2000)
	e.clock.RunUntil(20 * time.Second)
	if !crashed {
		t.Errorf("foreground survived sustained P=%v free=%d", e.mem.Pressure(), e.mem.Free())
	}
}

func TestKillCooldownSpacing(t *testing.T) {
	e := setup(t, units.GiB, Config{KillCooldown: 2 * time.Second})
	for i := 0; i < 6; i++ {
		e.table.Start(proc.Spec{Name: string(rune('a' + i)), Adj: proc.AdjCached, Cached: true, AnonBytes: 5 * units.MiB})
	}
	e.clock.RunUntil(time.Second)
	squeeze(e, 700*units.MiB)
	e.clock.RunUntil(12 * time.Second)
	kills := e.table.Kills()
	if len(kills) < 2 {
		t.Skipf("only %d kills; cooldown spacing unobservable", len(kills))
	}
	for i := 1; i < len(kills); i++ {
		if gap := kills[i].At - kills[i-1].At; gap < 2*time.Second {
			t.Errorf("kills %d and %d only %v apart, cooldown 2s", i-1, i, gap)
		}
	}
}
