// Package plot renders small ASCII charts for the CLI reports: the
// timeline figures (14, 15, 17) read much better as sparklines and bar
// rows than as number columns.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// sparkLevels are the eight block glyphs of a sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders xs as a one-line sparkline scaled to [0, max(xs)].
// An empty input yields an empty string.
func Spark(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		idx := 0
		if max > 0 {
			idx = int(x / max * float64(len(sparkLevels)-1))
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// SparkFixed renders xs against a fixed maximum (e.g. the encoded
// frame rate), so multiple series share a scale.
func SparkFixed(xs []float64, max float64) string {
	if len(xs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if max > 0 {
			idx = int(math.Max(0, math.Min(x/max, 1)) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Bar renders one horizontal bar of the given value against max, width
// characters wide, with the numeric value appended.
func Bar(label string, value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 {
		n = int(math.Max(0, math.Min(value/max, 1)) * float64(width))
	}
	return fmt.Sprintf("%-12s %-*s %.1f", label, width, strings.Repeat("█", n), value)
}

// Downsample reduces xs to at most n points by averaging buckets, so a
// long timeline fits one terminal row.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, n)
	for i := range out {
		lo := i * len(xs) / n
		hi := (i + 1) * len(xs) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, x := range xs[lo:hi] {
			sum += x
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// CDFRow renders one row of an ASCII CDF: the fraction as a bar.
func CDFRow(x string, frac float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := int(math.Max(0, math.Min(frac, 1)) * float64(width))
	return fmt.Sprintf("%8s │%-*s│ %3.0f%%", x, width, strings.Repeat("▒", n), 100*frac)
}
