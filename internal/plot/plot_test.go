package plot

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSpark(t *testing.T) {
	if Spark(nil) != "" {
		t.Error("empty input should give empty spark")
	}
	s := Spark([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Errorf("spark length = %d runes", utf8.RuneCountInString(s))
	}
	if !strings.HasSuffix(s, "█") {
		t.Errorf("max value should render full block: %q", s)
	}
	if !strings.HasPrefix(s, "▁") {
		t.Errorf("zero should render lowest block: %q", s)
	}
}

func TestSparkAllZero(t *testing.T) {
	s := Spark([]float64{0, 0, 0})
	if s != "▁▁▁" {
		t.Errorf("all-zero spark = %q", s)
	}
}

func TestSparkFixedScale(t *testing.T) {
	a := SparkFixed([]float64{30}, 60)
	b := SparkFixed([]float64{60}, 60)
	if a == b {
		t.Error("half and full scale render identically")
	}
	// Values beyond max clamp rather than panic.
	if c := SparkFixed([]float64{120}, 60); c != "█" {
		t.Errorf("over-max = %q", c)
	}
}

func TestSparkLengthProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		return utf8.RuneCountInString(Spark(xs)) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBar(t *testing.T) {
	row := Bar("drops", 50, 100, 10)
	if !strings.Contains(row, "█████") || strings.Contains(row, "██████") {
		t.Errorf("50%% bar of width 10 = %q", row)
	}
	if !strings.Contains(row, "50.0") {
		t.Errorf("missing value: %q", row)
	}
	if !strings.Contains(Bar("x", 0, 0, 10), "0.0") {
		t.Error("zero max should not panic")
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{1, 1, 3, 3, 5, 5}
	out := Downsample(xs, 3)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("downsample = %v", out)
	}
	// Short inputs pass through.
	if got := Downsample(xs, 10); len(got) != 6 {
		t.Errorf("short input resized to %d", len(got))
	}
}

func TestDownsampleMeanPreservedProperty(t *testing.T) {
	f := func(raw []uint8, nRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			xs[i] = float64(r)
			sum += float64(r)
		}
		n := int(nRaw)%len(raw) + 1
		out := Downsample(xs, n)
		// Bucket means stay within the input's range.
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		for _, o := range out {
			if o < min-1e-9 || o > max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFRow(t *testing.T) {
	row := CDFRow("60%", 0.5, 10)
	if !strings.Contains(row, "50%") {
		t.Errorf("row = %q", row)
	}
	if !strings.Contains(row, "▒▒▒▒▒") {
		t.Errorf("bar missing: %q", row)
	}
}
