// Package sched simulates the Android/Linux CPU scheduler at the level
// of detail the paper's §5 analysis depends on.
//
// The model is tick-based: every tick (1 ms by default) the scheduler
// assigns runnable threads to cores. Two scheduling classes exist, with
// the exact priority relationship the paper identifies as the root cause
// of frame drops:
//
//   - ClassRT: strictly prioritized over everything else. The storage
//     I/O daemon mmcqd runs here, so it "steals CPU time from foreground
//     processes" (§5, Table 5).
//   - ClassFair: a CFS-like fair class picked by lowest virtual runtime.
//     Video client threads AND kswapd run here, so "Firefox threads have
//     to fairly share the CPU with the CPU-hungry thread — kswapd" (§5).
//
// Threads execute FIFO queues of CPU jobs and may contain I/O barriers
// (uninterruptible sleep, state D) that the block layer resolves. Every
// state change is reported to a trace.Tracer, which is how Table 4
// (time in state), Figure 13 (kswapd states) and Table 5 (preemption
// triples) are regenerated.
//
// Cores may have heterogeneous speeds (big.LITTLE, e.g. the Nexus 6P's
// 4×1.55 GHz + 4×2.0 GHz): job costs are expressed in reference-CPU time
// and a core of speed s completes s ticks of reference work per tick.
//
// The step loop runs once per simulated millisecond for every run of
// every grid, which makes it the hottest code in the simulator after
// the clock itself. It is written allocation-free in steady state: job
// structs are recycled through a free list, candidate/scratch slices
// are reused tick to tick, selection is marked with a tick stamp
// instead of a map, and the fair-class minimum vruntime is cached
// between ticks instead of recomputed on every wake.
package sched

import (
	"fmt"
	"math"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/trace"
)

// Class is a scheduling class.
type Class int

// Scheduling classes.
const (
	// ClassFair is the default time-sharing class (CFS-like).
	ClassFair Class = iota
	// ClassRT is strictly prioritized over ClassFair; used by mmcqd.
	ClassRT
)

// DefaultTick is the scheduling quantum of the simulation.
const DefaultTick = time.Millisecond

type jobKind int

const (
	jobCPU jobKind = iota
	jobIOBarrier
)

type job struct {
	kind      jobKind
	remaining time.Duration // reference-CPU time for jobCPU
	onDone    func()
	ioDone    bool // for jobIOBarrier: completion arrived
}

// Thread is a schedulable entity. Create threads with Scheduler.Spawn.
type Thread struct {
	key   trace.ThreadKey
	class Class
	nice  int
	sched *Scheduler

	state     trace.State
	vruntime  time.Duration
	weight    float64
	wokenAt   time.Duration // for RT FIFO ordering
	core      int           // core while Running, else -1
	preferred int           // soft core affinity; -1 = none
	dead      bool

	// jobs[jobHead:] is the pending FIFO. Popping advances jobHead
	// instead of reslicing, so the backing array (and its capacity) is
	// reused once the queue drains, and append never reallocates in
	// steady state.
	jobs    []*job
	jobHead int

	// selTick marks the scheduler tick that last selected this thread
	// for a core — a stamp comparison replaces the per-tick selection
	// map.
	selTick int64

	// accounting
	cpuTime time.Duration
}

// queueLen returns the number of queued (unfinished) jobs.
func (t *Thread) queueLen() int { return len(t.jobs) - t.jobHead }

// headJob returns the queue head; call only when queueLen() > 0.
func (t *Thread) headJob() *job { return t.jobs[t.jobHead] }

// popJob removes the queue head and recycles it. The job must already
// be finished: nothing may touch it after this call.
func (t *Thread) popJob() {
	j := t.jobs[t.jobHead]
	t.jobs[t.jobHead] = nil
	t.jobHead++
	if t.jobHead == len(t.jobs) {
		t.jobs = t.jobs[:0]
		t.jobHead = 0
	}
	t.sched.freeJob(j)
}

// Key returns the thread's trace identity.
func (t *Thread) Key() trace.ThreadKey { return t.key }

// SetPreferredCore gives the thread a soft core affinity: the
// dispatcher places it there when that core is available, drastically
// reducing migrations (the §7 scheduling suggestion for kswapd).
// Pass -1 to clear.
func (t *Thread) SetPreferredCore(core int) { t.preferred = core }

// State returns the thread's current scheduler state.
func (t *Thread) State() trace.State { return t.state }

// CPUTime returns total reference-CPU time consumed by the thread.
func (t *Thread) CPUTime() time.Duration { return t.cpuTime }

// QueueLen returns the number of queued (unfinished) jobs.
func (t *Thread) QueueLen() int { return t.queueLen() }

// Idle reports whether the thread has no pending work.
func (t *Thread) Idle() bool { return t.queueLen() == 0 }

// Dead reports whether the thread has been killed.
func (t *Thread) Dead() bool { return t.dead }

// PendingWork returns the total queued reference-CPU time.
func (t *Thread) PendingWork() time.Duration {
	var sum time.Duration
	for _, j := range t.jobs[t.jobHead:] {
		if j.kind == jobCPU {
			sum += j.remaining
		}
	}
	return sum
}

// Enqueue appends a CPU job costing cost of reference-CPU time. onDone
// (may be nil) fires when the job completes. Enqueueing on a dead
// thread is a no-op.
func (t *Thread) Enqueue(cost time.Duration, onDone func()) {
	if t.dead {
		return
	}
	if cost < 0 {
		cost = 0
	}
	j := t.sched.newJob()
	j.kind = jobCPU
	j.remaining = cost
	j.onDone = onDone
	t.jobs = append(t.jobs, j)
	t.wake()
}

// EnqueueIOBarrier appends an I/O barrier: when the barrier reaches the
// queue head the thread enters uninterruptible sleep (D) until the
// returned completion function is called. Jobs queued behind the
// barrier do not run until it resolves. The completion function is
// idempotent and safe to call after the thread dies.
//
// The returned closure is the one place a job pointer outlives the
// queue, which is why it must never touch j after its first call: a
// barrier only leaves the queue once ioDone is set, i.e. after the
// first call flipped done, and by then j may have been recycled.
func (t *Thread) EnqueueIOBarrier() (complete func()) {
	if t.dead {
		return func() {}
	}
	j := t.sched.newJob()
	j.kind = jobIOBarrier
	t.jobs = append(t.jobs, j)
	t.wake()
	done := false
	return func() {
		if done || t.dead {
			done = true
			return
		}
		done = true
		j.ioDone = true
		t.sched.reapBarriers(t)
	}
}

// wake moves an idle/sleeping thread to Runnable.
func (t *Thread) wake() {
	if t.dead || t.state == trace.Running || t.state == trace.Runnable || t.state == trace.RunnablePreempted {
		return
	}
	if t.blockedOnIO() {
		return // stays in D until the barrier resolves
	}
	now := t.sched.clock.Now()
	t.wokenAt = now
	// Prevent a long-sleeping thread from monopolizing the CPU by
	// carrying an ancient (tiny) vruntime: re-sync to the minimum.
	if t.class == ClassFair {
		if mv, ok := t.sched.minVruntime(); ok && t.vruntime < mv {
			t.vruntime = mv
		}
	}
	t.setState(trace.Runnable)
}

// blockedOnIO reports whether the queue head is an unresolved barrier.
func (t *Thread) blockedOnIO() bool {
	return t.queueLen() > 0 && t.headJob().kind == jobIOBarrier && !t.headJob().ioDone
}

// participating reports whether a fair thread in state s counts toward
// the minimum-vruntime pool.
func participating(s trace.State) bool {
	return s == trace.Running || s == trace.Runnable || s == trace.RunnablePreempted
}

func (t *Thread) setState(s trace.State) {
	if t.state == s {
		return
	}
	// Maintain the cached fair-class minimum vruntime across membership
	// changes (see minVruntime). A thread leaving the pool can only
	// matter if it carried the cached minimum; a thread entering can
	// only pull the minimum down to its own vruntime.
	if t.class == ClassFair {
		sc := t.sched
		was, is := participating(t.state), participating(s)
		if was && !is {
			if sc.minVrValid && !sc.minVrEmpty && t.vruntime == sc.minVrCache {
				sc.minVrValid = false
			}
		} else if is && !was && !t.dead {
			if sc.minVrValid {
				if sc.minVrEmpty || t.vruntime < sc.minVrCache {
					sc.minVrCache = t.vruntime
					sc.minVrEmpty = false
				}
			}
		}
	}
	t.state = s
	core := -1
	if s == trace.Running {
		core = t.core
	}
	t.sched.tracer.Transition(t.key.TID, s, core, t.sched.clock.Now())
}

// Scheduler assigns threads to cores each tick.
type Scheduler struct {
	clock      *simclock.Clock
	tracer     *trace.Tracer
	coreSpeed  []float64
	tick       time.Duration
	threads    []*Thread
	nextTID    int
	stopped    bool
	dispatched bool      // a dispatch interval is in flight
	running    []*Thread // per core; nil = idle
	idleTime   time.Duration
	busyTime   time.Duration
	totalTicks int64
	preempts   int64

	// stepFn is the bound step method, created once so the tick loop
	// doesn't allocate a fresh closure every millisecond.
	stepFn func()

	// jobFree recycles job structs: a job leaves a thread's queue only
	// when finished (or its thread died), so popJob can return it here
	// for the next Enqueue.
	jobFree []*job

	// Per-tick scratch buffers, reused so a steady-state tick performs
	// no allocations.
	cands       []*Thread
	arrivals    []*Thread
	needCore    []*Thread
	rest        []*Thread
	nextRunning []*Thread

	// Cached fair-class minimum vruntime over participating threads
	// (see minVruntime). minVrEmpty is meaningful only when valid.
	minVrCache time.Duration
	minVrValid bool
	minVrEmpty bool
}

// Config configures a Scheduler.
type Config struct {
	// CoreSpeeds gives one relative speed per core (1.0 = reference).
	CoreSpeeds []float64
	// Tick is the scheduling quantum; DefaultTick if zero.
	Tick time.Duration
	// Tracer receives all state transitions; required.
	Tracer *trace.Tracer
}

// New creates a Scheduler and starts its tick loop on clock.
func New(clock *simclock.Clock, cfg Config) *Scheduler {
	if len(cfg.CoreSpeeds) == 0 {
		panic("sched: no cores configured")
	}
	if cfg.Tracer == nil {
		panic("sched: Tracer is required")
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = DefaultTick
	}
	s := &Scheduler{
		clock:       clock,
		tracer:      cfg.Tracer,
		coreSpeed:   append([]float64(nil), cfg.CoreSpeeds...),
		tick:        tick,
		running:     make([]*Thread, len(cfg.CoreSpeeds)),
		nextRunning: make([]*Thread, len(cfg.CoreSpeeds)),
		nextTID:     1,
	}
	s.stepFn = s.step
	// Ticks fire at t=0, tick, 2·tick, …: each tick retires the work of
	// the interval that just ended, then dispatches the next interval.
	clock.Schedule(0, s.stepFn)
	return s
}

func (s *Scheduler) newJob() *job {
	if n := len(s.jobFree); n > 0 {
		j := s.jobFree[n-1]
		s.jobFree[n-1] = nil
		s.jobFree = s.jobFree[:n-1]
		return j
	}
	return &job{}
}

func (s *Scheduler) freeJob(j *job) {
	*j = job{}
	s.jobFree = append(s.jobFree, j)
}

// Stop halts the tick loop (e.g. at the end of a session).
func (s *Scheduler) Stop() { s.stopped = true }

// Cores returns the number of simulated cores.
func (s *Scheduler) Cores() int { return len(s.coreSpeed) }

// Tick returns the scheduling quantum.
func (s *Scheduler) Tick() time.Duration { return s.tick }

// Preemptions returns the cumulative count of displaced-by-arrival
// events (the same events the tracer records as preemption triples).
func (s *Scheduler) Preemptions() int64 { return s.preempts }

// Instrument registers the scheduler's telemetry: runnable-queue
// length (threads waiting for a core — the contention Figure 13's
// kswapd state shift shows), running count, cumulative preemptions,
// and core utilization.
func (s *Scheduler) Instrument(reg *telemetry.Registry) {
	reg.SampleFunc("sched.runnable", func() float64 {
		n := 0
		for _, t := range s.threads {
			if !t.dead && (t.state == trace.Runnable || t.state == trace.RunnablePreempted) {
				n++
			}
		}
		return float64(n)
	})
	reg.SampleFunc("sched.running", func() float64 {
		n := 0
		for _, t := range s.running {
			if t != nil {
				n++
			}
		}
		return float64(n)
	})
	reg.SampleFunc("sched.preemptions", func() float64 { return float64(s.preempts) })
	reg.SampleFunc("sched.utilization", s.Utilization)
}

// Utilization returns the fraction of core-time spent busy so far.
func (s *Scheduler) Utilization() float64 {
	total := s.busyTime + s.idleTime
	if total == 0 {
		return 0
	}
	return float64(s.busyTime) / float64(total)
}

// Spawn creates a thread in the Sleeping state.
func (s *Scheduler) Spawn(name, process string, class Class, nice int) *Thread {
	t := &Thread{
		key:       trace.ThreadKey{TID: s.nextTID, Name: name, Process: process},
		class:     class,
		nice:      nice,
		sched:     s,
		state:     trace.Sleeping,
		weight:    niceWeight(nice),
		core:      -1,
		preferred: -1,
	}
	s.nextTID++
	s.threads = append(s.threads, t)
	s.tracer.Register(t.key, trace.Sleeping, s.clock.Now())
	return t
}

// Kill terminates a thread: pending jobs are dropped and it never runs
// again. The thread is removed from the scheduler's table, so long
// sessions that spawn and kill many processes don't pay for the corpses
// on every tick.
func (s *Scheduler) Kill(t *Thread) {
	if t.dead {
		return
	}
	t.dead = true
	// Dropped jobs are finished as far as the queue is concerned; their
	// barrier closures check t.dead before touching the job, so
	// recycling here is safe.
	for _, j := range t.jobs[t.jobHead:] {
		s.freeJob(j)
	}
	t.jobs = nil
	t.jobHead = 0
	if t.state == trace.Running {
		s.vacateCore(t)
	}
	t.setState(trace.Sleeping)
	s.tracer.Unregister(t.key.TID, s.clock.Now())
	for i, x := range s.threads {
		if x == t {
			s.threads = append(s.threads[:i], s.threads[i+1:]...)
			break
		}
	}
}

// KillProcess kills every thread of the named process.
func (s *Scheduler) KillProcess(process string) int {
	n := 0
	// Backwards: Kill compacts s.threads in place, which only moves
	// entries we have already visited.
	for i := len(s.threads) - 1; i >= 0; i-- {
		t := s.threads[i]
		if !t.dead && t.key.Process == process {
			s.Kill(t)
			n++
		}
	}
	return n
}

func (s *Scheduler) vacateCore(t *Thread) {
	if t.core >= 0 && t.core < len(s.running) && s.running[t.core] == t {
		s.running[t.core] = nil
	}
	t.core = -1
}

// niceWeight approximates the kernel's nice-to-weight table:
// each nice step changes weight by ~1.25×.
func niceWeight(nice int) float64 {
	return 1024 / math.Pow(1.25, float64(nice))
}

// minVruntime returns the smallest vruntime over participating fair
// threads. The value is cached: setState maintains it across pool
// membership changes, the retire phase invalidates it when a running
// thread's vruntime advances, and this function recomputes it lazily.
// Enqueue-heavy workloads call this (via wake) many times per tick, so
// the cache turns an O(threads) scan per wake into one per tick.
func (s *Scheduler) minVruntime() (time.Duration, bool) {
	if s.minVrValid {
		return s.minVrCache, !s.minVrEmpty
	}
	var mv time.Duration
	found := false
	for _, t := range s.threads {
		if t.dead || t.class != ClassFair {
			continue
		}
		if participating(t.state) {
			if !found || t.vruntime < mv {
				mv = t.vruntime
				found = true
			}
		}
	}
	s.minVrCache, s.minVrEmpty, s.minVrValid = mv, !found, true
	return mv, found
}

// reapBarriers removes resolved barriers from the head of t's queue and
// wakes the thread if work follows.
func (s *Scheduler) reapBarriers(t *Thread) {
	for t.queueLen() > 0 && t.headJob().kind == jobIOBarrier && t.headJob().ioDone {
		done := t.headJob().onDone
		t.popJob()
		if done != nil {
			done()
		}
	}
	if t.state == trace.UninterruptibleSleep {
		if t.queueLen() > 0 {
			t.wokenAt = s.clock.Now()
			t.setState(trace.Runnable)
		} else {
			t.setState(trace.Sleeping)
		}
	}
}

// runnable reports whether t wants a core this tick.
func runnable(t *Thread) bool {
	if t.dead || t.queueLen() == 0 {
		return false
	}
	return !t.blockedOnIO()
}

// lessThread is the candidate order: RT first (FIFO by wake time), then
// fair by vruntime. Ties broken by TID, so the order is total and the
// sort deterministic.
func lessThread(a, b *Thread) bool {
	if a.class != b.class {
		return a.class == ClassRT
	}
	if a.class == ClassRT {
		if a.wokenAt != b.wokenAt {
			return a.wokenAt < b.wokenAt
		}
		return a.key.TID < b.key.TID
	}
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.key.TID < b.key.TID
}

// sortCands insertion-sorts the candidate slice by lessThread. Runnable
// counts are small (tens at worst), where insertion sort beats the
// generic sort and allocates nothing.
func sortCands(cands []*Thread) {
	for i := 1; i < len(cands); i++ {
		t := cands[i]
		j := i - 1
		for j >= 0 && lessThread(t, cands[j]) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = t
	}
}

// step runs once per tick boundary: it retires the interval that just
// ended, then dispatches threads for the interval that starts now.
func (s *Scheduler) step() {
	if s.stopped {
		return
	}
	s.totalTicks++
	now := s.clock.Now()
	s.clock.Schedule(s.tick, s.stepFn)

	// Retire phase: account the work performed during [now-tick, now).
	if s.dispatched {
		for core, t := range s.running {
			if t == nil {
				s.idleTime += s.tick
				continue
			}
			s.busyTime += s.tick
			budget := time.Duration(float64(s.tick) * s.coreSpeed[core])
			t.cpuTime += budget
			if t.class == ClassFair {
				if s.minVrValid && !s.minVrEmpty && t.vruntime == s.minVrCache {
					// The pool minimum is about to advance.
					s.minVrValid = false
				}
				t.vruntime += time.Duration(float64(s.tick) * 1024 / t.weight)
			}
			s.consume(t, budget)
		}
	}
	s.dispatched = true

	// Settle threads that finished their work or hit an I/O barrier
	// during the retired interval.
	for _, t := range s.threads {
		if t.dead {
			continue
		}
		if t.state == trace.Running && t.queueLen() == 0 {
			s.vacateCore(t)
			s.tracer.PreemptorStopped(t.key.TID, now)
			t.setState(trace.Sleeping)
		} else if t.blockedOnIO() && t.state != trace.UninterruptibleSleep {
			if t.state == trace.Running {
				s.vacateCore(t)
				s.tracer.PreemptorStopped(t.key.TID, now)
			}
			t.setState(trace.UninterruptibleSleep)
		}
	}

	cands := s.cands[:0]
	for _, t := range s.threads {
		if runnable(t) {
			cands = append(cands, t)
		}
	}
	sortCands(cands)
	s.cands = cands

	ncores := len(s.coreSpeed)
	selected := cands
	if len(selected) > ncores {
		selected = selected[:ncores]
	}
	for _, t := range selected {
		t.selTick = s.totalTicks
	}

	// Displacement: threads that were running but are not selected.
	// New arrivals among the selected (were not running last tick).
	arrivals := s.arrivals[:0]
	for _, t := range selected {
		if t.state != trace.Running {
			arrivals = append(arrivals, t)
		}
	}
	s.arrivals = arrivals

	// Record preemptions: a displaced thread was preempted if some
	// newly arriving selected thread outranks it. Attribute the event
	// to the highest-priority arrival (RT beats fair; then ordering).
	for _, v := range s.threads {
		if v.state != trace.Running || v.selTick == s.totalTicks {
			continue
		}
		s.vacateCore(v)
		s.tracer.PreemptorStopped(v.key.TID, now)
		if v.queueLen() == 0 {
			v.setState(trace.Sleeping)
			continue
		}
		if v.blockedOnIO() {
			v.setState(trace.UninterruptibleSleep)
			continue
		}
		if len(arrivals) > 0 {
			v.setState(trace.RunnablePreempted)
			s.preempts++
			s.tracer.RecordPreemption(v.key, arrivals[0].key, now)
		} else {
			v.setState(trace.Runnable)
		}
	}

	// Core assignment with affinity: keep previous core when possible.
	newRunning := s.nextRunning
	for i := range newRunning {
		newRunning[i] = nil
	}
	needCore := s.needCore[:0]
	for _, t := range selected {
		if t.core >= 0 && t.core < ncores && s.running[t.core] == t && newRunning[t.core] == nil {
			newRunning[t.core] = t
		} else {
			needCore = append(needCore, t)
		}
	}
	s.needCore = needCore
	// Soft affinity first: place threads on their preferred core when
	// it is open.
	rest := s.rest[:0]
	for _, t := range needCore {
		if t.preferred >= 0 && t.preferred < ncores && newRunning[t.preferred] == nil {
			newRunning[t.preferred] = t
			t.core = t.preferred
			continue
		}
		rest = append(rest, t)
	}
	s.rest = rest
	free := 0
	for _, t := range rest {
		for free < ncores && newRunning[free] != nil {
			free++
		}
		if free >= ncores {
			break
		}
		newRunning[free] = t
		t.core = free
	}
	s.running, s.nextRunning = newRunning, s.running

	// Mark the dispatched threads Running for the interval [now, now+tick).
	for core, t := range s.running {
		if t == nil {
			continue
		}
		t.core = core
		t.setState(trace.Running)
	}
}

// consume burns budget of reference-CPU time from t's job queue.
func (s *Scheduler) consume(t *Thread, budget time.Duration) {
	for budget > 0 && t.queueLen() > 0 {
		j := t.headJob()
		if j.kind == jobIOBarrier {
			if !j.ioDone {
				return // blocked; handled by caller
			}
			done := j.onDone
			t.popJob()
			if done != nil {
				done()
			}
			continue
		}
		if j.remaining > budget {
			j.remaining -= budget
			return
		}
		budget -= j.remaining
		done := j.onDone
		t.popJob()
		if done != nil {
			done()
		}
		if t.dead {
			return
		}
	}
}

// Threads returns all live threads (for diagnostics).
func (s *Scheduler) Threads() []*Thread {
	out := make([]*Thread, 0, len(s.threads))
	for _, t := range s.threads {
		if !t.dead {
			out = append(out, t)
		}
	}
	return out
}

// String summarizes the scheduler configuration.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sched{cores=%d tick=%v threads=%d}", len(s.coreSpeed), s.tick, len(s.threads))
}
