package sched_test

import (
	"testing"

	"coalqoe/internal/kernbench"
)

// Wrapper over the shared suite body (internal/kernbench), so
// `go test -bench . ./internal/sched` measures exactly what
// cmd/coalbench records in BENCH_5.json.

func BenchmarkTicks(b *testing.B) { kernbench.SchedTicks(b) }
