package sched

import (
	"testing"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/trace"
)

func newSched(t *testing.T, speeds ...float64) (*simclock.Clock, *Scheduler, *trace.Tracer) {
	t.Helper()
	clock := simclock.New(1)
	tr := trace.New(0)
	s := New(clock, Config{CoreSpeeds: speeds, Tracer: tr})
	return clock, s, tr
}

func TestSingleJobCompletes(t *testing.T) {
	clock, s, tr := newSched(t, 1.0)
	th := s.Spawn("worker", "app", ClassFair, 0)
	done := time.Duration(-1)
	th.Enqueue(10*time.Millisecond, func() { done = clock.Now() })
	clock.RunUntil(time.Second)
	if done < 0 {
		t.Fatal("job never completed")
	}
	if done != 10*time.Millisecond {
		t.Errorf("completed at %v, want 10ms", done)
	}
	if th.CPUTime() != 10*time.Millisecond {
		t.Errorf("CPUTime = %v, want 10ms", th.CPUTime())
	}
	tr.Finish(clock.Now())
	if got := tr.TimeInState(trace.ByProcess("app"), trace.Running); got != 10*time.Millisecond {
		t.Errorf("Running = %v, want 10ms", got)
	}
}

func TestFasterCoreFinishesSooner(t *testing.T) {
	clock, s, _ := newSched(t, 2.0)
	th := s.Spawn("worker", "app", ClassFair, 0)
	var done time.Duration
	th.Enqueue(10*time.Millisecond, func() { done = clock.Now() })
	clock.RunUntil(time.Second)
	if done != 5*time.Millisecond {
		t.Errorf("completed at %v, want 5ms on a 2x core", done)
	}
}

func TestRTPreemptsFair(t *testing.T) {
	clock, s, tr := newSched(t, 1.0)
	fair := s.Spawn("video", "firefox", ClassFair, 0)
	rt := s.Spawn("mmcqd/0", "kernel", ClassRT, 0)

	fair.Enqueue(100*time.Millisecond, nil)
	// Wake the RT thread mid-run.
	clock.Schedule(20*time.Millisecond, func() { rt.Enqueue(5*time.Millisecond, nil) })
	clock.RunUntil(200 * time.Millisecond)
	tr.Finish(clock.Now())

	ps := tr.PreemptionsBy(trace.ByName("mmcqd"), trace.ByProcess("firefox"))
	if ps.Count != 1 {
		t.Fatalf("preemption count = %d, want 1", ps.Count)
	}
	if ps.PreemptorRanFor != 5*time.Millisecond {
		t.Errorf("PreemptorRanFor = %v, want 5ms", ps.PreemptorRanFor)
	}
	if ps.VictimsWaitedFor != 5*time.Millisecond {
		t.Errorf("VictimsWaitedFor = %v, want 5ms", ps.VictimsWaitedFor)
	}
	if got := tr.TimeInState(trace.ByProcess("firefox"), trace.RunnablePreempted); got != 5*time.Millisecond {
		t.Errorf("RunnablePreempted = %v, want 5ms", got)
	}
	// The fair job still completes, just 5ms late.
	if got := fair.PendingWork(); got != 0 {
		t.Errorf("fair thread still has %v pending", got)
	}
}

func TestFairSharing(t *testing.T) {
	clock, s, _ := newSched(t, 1.0)
	a := s.Spawn("a", "p1", ClassFair, 0)
	b := s.Spawn("b", "p2", ClassFair, 0)
	a.Enqueue(500*time.Millisecond, nil)
	b.Enqueue(500*time.Millisecond, nil)
	clock.RunUntil(100 * time.Millisecond)
	ra, rb := a.CPUTime(), b.CPUTime()
	if ra+rb != 100*time.Millisecond {
		t.Fatalf("total CPU = %v, want 100ms", ra+rb)
	}
	diff := ra - rb
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*time.Millisecond {
		t.Errorf("unfair split: a=%v b=%v", ra, rb)
	}
}

func TestNiceWeighting(t *testing.T) {
	clock, s, _ := newSched(t, 1.0)
	hi := s.Spawn("hi", "p1", ClassFair, -5) // higher priority
	lo := s.Spawn("lo", "p2", ClassFair, 5)
	hi.Enqueue(time.Second, nil)
	lo.Enqueue(time.Second, nil)
	clock.RunUntil(300 * time.Millisecond)
	ratio := float64(hi.CPUTime()) / float64(lo.CPUTime())
	// Weight ratio is 1.25^10 ≈ 9.3; the share ratio should be near it.
	if ratio < 5 {
		t.Errorf("nice -5 vs +5 CPU ratio = %.2f, want >> 1", ratio)
	}
}

func TestIOBarrierBlocksInD(t *testing.T) {
	clock, s, tr := newSched(t, 1.0)
	th := s.Spawn("reader", "app", ClassFair, 0)
	th.Enqueue(5*time.Millisecond, nil)
	complete := th.EnqueueIOBarrier()
	var resumed time.Duration
	th.Enqueue(5*time.Millisecond, func() { resumed = clock.Now() })
	// I/O completes at t=50ms.
	clock.Schedule(50*time.Millisecond, complete)
	clock.RunUntil(200 * time.Millisecond)
	tr.Finish(clock.Now())

	if resumed < 55*time.Millisecond {
		t.Errorf("post-barrier job finished at %v, want >= 55ms", resumed)
	}
	d := tr.TimeInState(trace.ByProcess("app"), trace.UninterruptibleSleep)
	if d < 40*time.Millisecond {
		t.Errorf("D time = %v, want ~45ms", d)
	}
}

func TestIOBarrierCompleteIdempotent(t *testing.T) {
	clock, s, _ := newSched(t, 1.0)
	th := s.Spawn("reader", "app", ClassFair, 0)
	complete := th.EnqueueIOBarrier()
	n := 0
	th.Enqueue(time.Millisecond, func() { n++ })
	complete()
	complete()
	clock.RunUntil(100 * time.Millisecond)
	if n != 1 {
		t.Errorf("post-barrier job ran %d times, want 1", n)
	}
}

func TestKillDropsWork(t *testing.T) {
	clock, s, _ := newSched(t, 1.0)
	th := s.Spawn("victim", "app", ClassFair, 0)
	fired := false
	th.Enqueue(100*time.Millisecond, func() { fired = true })
	clock.Schedule(10*time.Millisecond, func() { s.Kill(th) })
	clock.RunUntil(500 * time.Millisecond)
	if fired {
		t.Error("job completed on a killed thread")
	}
	if !th.Dead() {
		t.Error("thread not dead")
	}
	// Enqueue after death is a no-op.
	th.Enqueue(time.Millisecond, func() { fired = true })
	clock.RunUntil(time.Second)
	if fired {
		t.Error("job ran on dead thread")
	}
}

func TestKillProcess(t *testing.T) {
	clock, s, _ := newSched(t, 2.0, 2.0)
	a := s.Spawn("a", "victimproc", ClassFair, 0)
	b := s.Spawn("b", "victimproc", ClassFair, 0)
	c := s.Spawn("c", "other", ClassFair, 0)
	a.Enqueue(time.Second, nil)
	b.Enqueue(time.Second, nil)
	c.Enqueue(time.Second, nil)
	var killed int
	clock.Schedule(5*time.Millisecond, func() { killed = s.KillProcess("victimproc") })
	clock.RunUntil(20 * time.Millisecond)
	if killed != 2 {
		t.Errorf("killed %d threads, want 2", killed)
	}
	if c.Dead() {
		t.Error("unrelated process killed")
	}
}

func TestRunnableWhenOversubscribed(t *testing.T) {
	clock, s, tr := newSched(t, 1.0)
	for i := 0; i < 4; i++ {
		th := s.Spawn("w", "app", ClassFair, 0)
		th.Enqueue(25*time.Millisecond, nil)
	}
	clock.RunUntil(100 * time.Millisecond)
	tr.Finish(clock.Now())
	run := tr.TimeInState(trace.ByProcess("app"), trace.Running)
	wait := tr.TimeInState(trace.ByProcess("app"), trace.Runnable) +
		tr.TimeInState(trace.ByProcess("app"), trace.RunnablePreempted)
	if run != 100*time.Millisecond {
		t.Errorf("Running = %v, want 100ms (1 core fully busy)", run)
	}
	if wait == 0 {
		t.Error("expected nonzero Runnable time with 4 threads on 1 core")
	}
}

func TestCoreAffinity(t *testing.T) {
	clock, s, tr := newSched(t, 1.0, 1.0)
	th := s.Spawn("sticky", "app", ClassFair, 0)
	th.Enqueue(50*time.Millisecond, nil)
	clock.RunUntil(100 * time.Millisecond)
	tr.Finish(clock.Now())
	if m := tr.Migrations(th.Key().TID); m != 0 {
		t.Errorf("uncontended thread migrated %d times", m)
	}
}

func TestUtilization(t *testing.T) {
	clock, s, _ := newSched(t, 1.0, 1.0)
	th := s.Spawn("w", "app", ClassFair, 0)
	th.Enqueue(50*time.Millisecond, nil)
	clock.RunUntil(100 * time.Millisecond)
	// One of two cores busy half the time => 25%.
	if u := s.Utilization(); u < 0.24 || u > 0.26 {
		t.Errorf("Utilization = %v, want ~0.25", u)
	}
}

func TestRTFIFOOrder(t *testing.T) {
	clock, s, _ := newSched(t, 1.0)
	r1 := s.Spawn("rt1", "kernel", ClassRT, 0)
	r2 := s.Spawn("rt2", "kernel", ClassRT, 0)
	var order []string
	clock.Schedule(time.Millisecond, func() {
		r1.Enqueue(5*time.Millisecond, func() { order = append(order, "rt1") })
	})
	clock.Schedule(2*time.Millisecond, func() {
		r2.Enqueue(5*time.Millisecond, func() { order = append(order, "rt2") })
	})
	clock.RunUntil(100 * time.Millisecond)
	if len(order) != 2 || order[0] != "rt1" || order[1] != "rt2" {
		t.Errorf("RT completion order = %v, want [rt1 rt2]", order)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		clock := simclock.New(9)
		tr := trace.New(0)
		s := New(clock, Config{CoreSpeeds: []float64{1, 1}, Tracer: tr})
		var out []time.Duration
		for i := 0; i < 6; i++ {
			th := s.Spawn("w", "app", ClassFair, 0)
			cost := time.Duration(5+clock.Rand().Intn(20)) * time.Millisecond
			th.Enqueue(cost, func() { out = append(out, clock.Now()) })
		}
		clock.RunUntil(time.Second)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic completion count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWokenThreadDoesNotStarveOthers(t *testing.T) {
	clock, s, _ := newSched(t, 1.0)
	busy := s.Spawn("busy", "p1", ClassFair, 0)
	busy.Enqueue(time.Second, nil)
	clock.RunUntil(500 * time.Millisecond)
	// A thread waking after 500ms must not monopolize the core on the
	// strength of its zero vruntime.
	late := s.Spawn("late", "p2", ClassFair, 0)
	late.Enqueue(400*time.Millisecond, nil)
	mark := busy.CPUTime()
	clock.RunUntil(700 * time.Millisecond)
	got := busy.CPUTime() - mark
	if got < 80*time.Millisecond {
		t.Errorf("existing thread got only %v of 200ms after a late waker joined", got)
	}
}

func TestSpawnPanicsWithoutCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic with zero cores")
		}
	}()
	New(simclock.New(1), Config{Tracer: trace.New(0)})
}

func TestPreferredCoreReducesMigrations(t *testing.T) {
	run := func(pin bool) int {
		clock := simclock.New(5)
		tr := trace.New(0)
		s := New(clock, Config{CoreSpeeds: []float64{1, 1, 1, 1}, Tracer: tr})
		roamer := s.Spawn("roamer", "kernel", ClassFair, 0)
		if pin {
			roamer.SetPreferredCore(3)
		}
		// Competing churn that would otherwise push the roamer around.
		for i := 0; i < 3; i++ {
			w := s.Spawn("w", "app", ClassFair, 0)
			clock.Every(7*time.Millisecond, func() { w.Enqueue(3*time.Millisecond, nil) })
		}
		// The roamer works in bursts, sleeping in between: each wake is
		// a fresh core assignment.
		clock.Every(5*time.Millisecond, func() { roamer.Enqueue(2*time.Millisecond, nil) })
		clock.RunUntil(2 * time.Second)
		tr.Finish(clock.Now())
		return tr.Migrations(roamer.Key().TID)
	}
	free := run(false)
	pinned := run(true)
	if pinned*4 > free {
		t.Errorf("pinning did not reduce migrations: free=%d pinned=%d", free, pinned)
	}
}
