package sched

import (
	"testing"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/trace"
)

// minVruntimeBrute is the uncached reference: scan every live
// participating fair thread.
func minVruntimeBrute(s *Scheduler) (time.Duration, bool) {
	var mv time.Duration
	found := false
	for _, t := range s.threads {
		if t.dead || t.class != ClassFair {
			continue
		}
		if participating(t.state) {
			if !found || t.vruntime < mv {
				mv = t.vruntime
				found = true
			}
		}
	}
	return mv, found
}

// TestMinVruntimeCacheMatchesBruteForce drives a contended workload —
// wakes, sleeps, I/O barriers, preemptions, kills — and holds the
// cached minVruntime to the brute-force scan at every tick boundary
// and after every kill. The cache's invalidation points (setState pool
// membership, retire-phase advancement, Kill) must cover everything
// this workload can do to the pool.
func TestMinVruntimeCacheMatchesBruteForce(t *testing.T) {
	c := simclock.New(42)
	s := New(c, Config{CoreSpeeds: []float64{1, 1}, Tracer: trace.New(0)})

	rt := s.Spawn("mmcqd", "kernel", ClassRT, 0)
	var fair []*Thread
	for i := 0; i < 8; i++ {
		fair = append(fair, s.Spawn("worker", "app", ClassFair, i%3))
	}

	check := func(when string) {
		wantMV, wantOK := minVruntimeBrute(s)
		gotMV, gotOK := s.minVruntime()
		if gotMV != wantMV || gotOK != wantOK {
			t.Fatalf("%s at %v: cached minVruntime = (%v, %v), brute force = (%v, %v)",
				when, c.Now(), gotMV, gotOK, wantMV, wantOK)
		}
	}

	// Irregular periodic load: more demand than two cores supply, with
	// RT interference and an occasional barrier so threads cycle through
	// every participating and non-participating state.
	for i, th := range fair {
		th := th
		cost := time.Duration(300+100*i) * time.Microsecond
		c.Every(time.Duration(2+i)*time.Millisecond, func() {
			th.Enqueue(cost, nil)
		})
	}
	c.Every(5*time.Millisecond, func() {
		rt.Enqueue(800*time.Microsecond, nil)
	})
	c.Every(7*time.Millisecond, func() {
		complete := fair[0].EnqueueIOBarrier()
		c.Schedule(3*time.Millisecond, complete)
	})
	c.Every(time.Millisecond, func() { check("tick") })

	c.RunUntil(200 * time.Millisecond)
	check("mid-run")

	// Kill a participating thread (possibly the minimum) and re-check.
	s.Kill(fair[1])
	check("after kill")
	c.RunUntil(300 * time.Millisecond)
	check("end")
}
