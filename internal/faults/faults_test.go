package faults

import (
	"reflect"
	"testing"
	"time"

	"coalqoe/internal/device"
	"coalqoe/internal/netem"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

func TestWindowsDeterministic(t *testing.T) {
	for _, sp := range Plans() {
		a := sp.Windows(42, 3*time.Minute)
		b := sp.Windows(42, 3*time.Minute)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", sp.Name)
		}
		if len(a) == 0 {
			t.Errorf("%s: empty schedule over 3 minutes", sp.Name)
		}
		c := sp.Windows(43, 3*time.Minute)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical schedules", sp.Name)
		}
	}
}

func TestWindowsSortedAndClipped(t *testing.T) {
	horizon := 2 * time.Minute
	for _, sp := range Plans() {
		ws := sp.Windows(7, horizon)
		for i, w := range ws {
			if i > 0 && w.Start < ws[i-1].Start {
				t.Fatalf("%s: windows out of order at %d", sp.Name, i)
			}
			if w.Start < 0 || w.Start >= horizon {
				t.Errorf("%s: window starts outside horizon: %v", sp.Name, w.Start)
			}
			if w.End() > horizon {
				t.Errorf("%s: window overruns horizon: %v > %v", sp.Name, w.End(), horizon)
			}
			if w.Duration <= 0 {
				t.Errorf("%s: non-positive window duration", sp.Name)
			}
		}
	}
}

func TestWindowsSeedLanesIndependent(t *testing.T) {
	// Disabling one kind must not shift another kind's schedule: each
	// kind draws from its own lane.
	full := Mixed()
	noIO := full
	noIO.IOStallEvery = 0
	pick := func(ws []Window, k Kind) []Window {
		var out []Window
		for _, w := range ws {
			if w.Kind == k {
				out = append(out, w)
			}
		}
		return out
	}
	a := pick(full.Windows(9, 5*time.Minute), NetOutage)
	b := pick(noIO.Windows(9, 5*time.Minute), NetOutage)
	if !reflect.DeepEqual(a, b) {
		t.Error("disabling io_stall shifted the net_outage lane")
	}
}

func TestLookup(t *testing.T) {
	sp, err := Lookup("memstorm")
	if err != nil || sp.Name != "memstorm" {
		t.Fatalf("Lookup(memstorm) = %+v, %v", sp, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) should fail")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		NetOutage: "net_outage", NetLoss: "net_loss",
		IOStall: "io_stall", MemSpike: "mem_spike", Kind(99): "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestInjectorDrivesLinkAndDisk(t *testing.T) {
	dev := device.New(1, device.Nokia1, device.Options{Telemetry: &telemetry.Config{}})
	link := netem.LAN(dev.Clock)
	inj := Attach(dev, link, []Window{
		{Kind: NetLoss, Start: 1 * time.Second, Duration: 2 * time.Second, Severity: 0.3},
		{Kind: NetLoss, Start: 2 * time.Second, Duration: 3 * time.Second, Severity: 0.5},
		{Kind: IOStall, Start: 1 * time.Second, Duration: 4 * time.Second, Severity: 6},
		{Kind: NetOutage, Start: 7 * time.Second, Duration: 1 * time.Second},
	})
	if inj.FaultActive() {
		t.Fatal("no window open yet")
	}
	dev.Settle(1500 * time.Millisecond) // t=1.5s: loss 0.3, stall 6x
	if !inj.FaultActive() {
		t.Fatal("windows open at 1.5s")
	}
	if link.Loss() != 0.3 {
		t.Errorf("loss = %v, want 0.3", link.Loss())
	}
	if dev.Disk.SlowFactor() != 6 {
		t.Errorf("slow factor = %v, want 6", dev.Disk.SlowFactor())
	}
	dev.Settle(1 * time.Second) // t=2.5s: overlapping loss, strongest wins
	if link.Loss() != 0.5 {
		t.Errorf("overlapping loss = %v, want 0.5", link.Loss())
	}
	dev.Settle(1 * time.Second) // t=3.5s: first loss window closed
	if link.Loss() != 0.5 {
		t.Errorf("loss after first window = %v, want 0.5", link.Loss())
	}
	dev.Settle(2 * time.Second) // t=5.5s: loss clear, stall clear at 5s
	if link.Loss() != 0 {
		t.Errorf("loss = %v, want 0", link.Loss())
	}
	if dev.Disk.SlowFactor() != 1 {
		t.Errorf("slow factor = %v, want restored to 1", dev.Disk.SlowFactor())
	}
	dev.Settle(2 * time.Second) // t=7.5s: outage open
	if !link.Down() {
		t.Error("link should be down during the outage window")
	}
	if !inj.FaultActive() {
		t.Error("outage window should report active")
	}
	dev.Settle(1 * time.Second) // t=8.5s
	if link.Down() {
		t.Error("link should be back up")
	}
	if inj.FaultActive() {
		t.Error("all windows closed")
	}
}

func TestInjectorMemSpikeSpawnsAndExits(t *testing.T) {
	dev := device.New(1, device.Nokia1, device.Options{})
	Attach(dev, nil, []Window{
		{Kind: MemSpike, Start: time.Second, Duration: 10 * time.Second,
			Severity: float64(64 * units.MiB)},
	})
	dev.Settle(4 * time.Second)
	p := dev.Table.Find("memspike01")
	if p == nil || p.Dead() {
		t.Fatal("spike process should be alive mid-window")
	}
	dev.Settle(10 * time.Second)
	if !p.Dead() {
		t.Error("spike process should have exited after its hold")
	}
}

func TestInjectorTelemetry(t *testing.T) {
	dev := device.New(1, device.Nokia1, device.Options{Telemetry: &telemetry.Config{}})
	link := netem.LAN(dev.Clock)
	inj := Attach(dev, link, []Window{
		{Kind: NetLoss, Start: time.Second, Duration: time.Second, Severity: 0.2},
		{Kind: NetLoss, Start: 3 * time.Second, Duration: time.Second, Severity: 0.2},
	})
	dev.Settle(5 * time.Second)
	if got := inj.tmKind[NetLoss].Value(); got != 2 {
		t.Errorf("windows_net_loss = %d, want 2", got)
	}
	if got := inj.tmActive.Value(); got != 0 {
		t.Errorf("active_windows gauge = %v, want 0 after close", got)
	}
	// Windows reports the absolute schedule.
	ws := inj.Windows()
	if len(ws) != 2 || ws[0].Start != time.Second {
		t.Errorf("Windows() = %+v", ws)
	}
}
