// Package faults is a deterministic, seeded fault-injection engine: it
// materializes a named fault plan into concrete impairment windows and
// schedules them on the sim clock. The paper's controlled experiments
// keep the network and storage ideal so that memory pressure is the
// only variable (§4.1); a fault plan deliberately breaks that idealism
// — network outages and loss bursts, block-I/O stall spikes, and
// background memory-spike storms that drive lmkd kills — to exercise
// the recovery machinery a real client carries (retries, backoff,
// crash-restart; see internal/player's RecoveryPolicy).
//
// Determinism: a plan is pure data. Windows derives the concrete
// schedule from an explicit seed with its own generator (one lane per
// fault kind, split from the seed by a stable FNV hash), never from
// the clock's RNG — so the schedule depends only on (plan, seed), not
// on how many events the simulation happened to run first. Runs stay
// byte-identical at any parallelism because the experiment runner
// feeds each run's per-cell seed lane straight into Windows.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"coalqoe/internal/device"
	"coalqoe/internal/mempress"
	"coalqoe/internal/netem"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// Kind identifies a fault class.
type Kind int

const (
	// NetOutage takes the link down completely for the window.
	NetOutage Kind = iota
	// NetLoss applies a packet-loss rate (Severity) to the link.
	NetLoss
	// IOStall multiplies storage device service time by Severity.
	IOStall
	// MemSpike launches a background allocation storm of Severity bytes.
	MemSpike
	numKinds
)

// String returns the kind's stable name (used in telemetry series and
// trace mark labels).
func (k Kind) String() string {
	switch k {
	case NetOutage:
		return "net_outage"
	case NetLoss:
		return "net_loss"
	case IOStall:
		return "io_stall"
	case MemSpike:
		return "mem_spike"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Window is one concrete impairment interval. Start is relative to the
// point the plan is materialized for (Attach shifts it to absolute sim
// time; Injector.Windows reports the shifted form).
type Window struct {
	Kind     Kind
	Start    time.Duration
	Duration time.Duration
	// Severity is kind-specific: the loss rate in [0,1) for NetLoss,
	// the device service-time multiplier for IOStall, the allocation
	// size in bytes for MemSpike. Unused for NetOutage.
	Severity float64
}

// End returns the instant the window closes.
func (w Window) End() time.Duration { return w.Start + w.Duration }

// Spec is a named fault plan: mean recurrence and duration per fault
// kind. A zero Every (or Dur) disables that kind. Specs are pure data;
// Windows turns one into a concrete schedule.
type Spec struct {
	Name string

	// OutageEvery/OutageDur schedule full network outages.
	OutageEvery, OutageDur time.Duration
	// LossEvery/LossDur/LossRate schedule packet-loss bursts.
	LossEvery, LossDur time.Duration
	LossRate           float64
	// IOStallEvery/IOStallDur/IOStallFactor schedule storage slowdowns.
	IOStallEvery, IOStallDur time.Duration
	IOStallFactor            float64
	// SpikeEvery/SpikeDur/SpikeBytes schedule memory-spike storms.
	SpikeEvery, SpikeDur time.Duration
	SpikeBytes           units.Bytes
}

// NetFlaky is congested or marginal WiFi: short full outages plus
// longer loss bursts.
func NetFlaky() Spec {
	return Spec{
		Name:        "netflaky",
		OutageEvery: 45 * time.Second, OutageDur: 6 * time.Second,
		LossEvery: 30 * time.Second, LossDur: 10 * time.Second, LossRate: 0.3,
	}
}

// IOStorm is degraded storage: periodic windows where eMMC service
// time balloons (thermal throttling, internal GC).
func IOStorm() Spec {
	return Spec{
		Name:         "iostorm",
		IOStallEvery: 25 * time.Second, IOStallDur: 8 * time.Second, IOStallFactor: 6,
	}
}

// MemStorm is bursty co-resident demand: background services that
// suddenly allocate hundreds of MiB, long enough for lmkd's sustained
// critical-pressure policy to fire.
func MemStorm() Spec {
	return Spec{
		Name:       "memstorm",
		SpikeEvery: 40 * time.Second, SpikeDur: 15 * time.Second, SpikeBytes: 400 * units.MiB,
	}
}

// Mixed combines all three storm families at lower rates.
func Mixed() Spec {
	return Spec{
		Name:        "mixed",
		OutageEvery: 90 * time.Second, OutageDur: 5 * time.Second,
		LossEvery: 60 * time.Second, LossDur: 8 * time.Second, LossRate: 0.25,
		IOStallEvery: 70 * time.Second, IOStallDur: 7 * time.Second, IOStallFactor: 5,
		SpikeEvery: 80 * time.Second, SpikeDur: 12 * time.Second, SpikeBytes: 350 * units.MiB,
	}
}

// RetryStorm is the overload A/B's trigger shape: short, frequent
// total outages whose recovery edge releases the whole fleet's retry
// wave at once. Against an unprotected server the synchronized wave
// drives queue wait past client timeouts and the system goes
// metastable; against the governor it sheds, degrades, and recovers.
func RetryStorm() Spec {
	return Spec{
		Name:        "retrystorm",
		OutageEvery: 8 * time.Second, OutageDur: 3 * time.Second,
	}
}

// Plans returns every named plan, in stable order.
func Plans() []Spec { return []Spec{NetFlaky(), IOStorm(), MemStorm(), Mixed(), RetryStorm()} }

// Lookup resolves a plan by name (the coalctl -faults argument).
func Lookup(name string) (Spec, error) {
	for _, sp := range Plans() {
		if sp.Name == name {
			return sp, nil
		}
	}
	names := make([]string, 0, len(Plans()))
	for _, sp := range Plans() {
		names = append(names, sp.Name)
	}
	return Spec{}, fmt.Errorf("faults: unknown plan %q (have %v)", name, names)
}

// laneSeed splits the run seed into one independent lane per (plan,
// kind), via the same stable-FNV idiom as exp.CellSeed.
func laneSeed(seed int64, name string, k Kind) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "faults|%s|%s", name, k)
	return seed + int64(h.Sum64()&0x7fffffff)
}

// Windows materializes the plan over [0, horizon): per enabled kind,
// gaps and durations are jittered uniformly in [0.5, 1.5)× their means
// by a generator seeded from that kind's lane. The result is sorted by
// start time (ties by kind) and depends only on (plan, seed, horizon).
func (sp Spec) Windows(seed int64, horizon time.Duration) []Window {
	var out []Window
	add := func(k Kind, every, dur time.Duration, sev float64) {
		if every <= 0 || dur <= 0 {
			return
		}
		rng := rand.New(rand.NewSource(laneSeed(seed, sp.Name, k)))
		t := time.Duration(0)
		for {
			t += time.Duration(float64(every) * (0.5 + rng.Float64()))
			if t >= horizon {
				return
			}
			d := time.Duration(float64(dur) * (0.5 + rng.Float64()))
			if t+d > horizon {
				d = horizon - t
			}
			out = append(out, Window{Kind: k, Start: t, Duration: d, Severity: sev})
			t += d
		}
	}
	add(NetOutage, sp.OutageEvery, sp.OutageDur, 0)
	add(NetLoss, sp.LossEvery, sp.LossDur, sp.LossRate)
	add(IOStall, sp.IOStallEvery, sp.IOStallDur, sp.IOStallFactor)
	add(MemSpike, sp.SpikeEvery, sp.SpikeDur, float64(sp.SpikeBytes))
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Injector applies materialized windows to a live device: it schedules
// every window's begin/end on the device clock and drives the link,
// disk, and process table accordingly.
type Injector struct {
	dev     *device.Device
	link    *netem.Link
	windows []Window // absolute sim times
	active  int
	loss    []float64 // severities of open NetLoss windows
	iostall []float64 // severities of open IOStall windows
	spikes  int

	tmActive *telemetry.Gauge
	tmKind   [numKinds]*telemetry.Counter
}

// Attach schedules windows (whose starts are relative to the current
// instant) on the device clock and returns the injector. link may be
// nil when the plan carries no network faults. With telemetry enabled
// on the device, the injector registers an active-window gauge and
// per-kind window counters.
func Attach(dev *device.Device, link *netem.Link, windows []Window) *Injector {
	inj := &Injector{dev: dev, link: link}
	if dev.Telem != nil {
		inj.instrument(dev.Telem)
	}
	now := dev.Clock.Now()
	for _, w := range windows {
		w.Start += now
		inj.windows = append(inj.windows, w)
		w := w
		dev.Clock.At(w.Start, func() { inj.begin(w) })
		dev.Clock.At(w.End(), func() { inj.end(w) })
	}
	return inj
}

// instrument registers the injector's telemetry. The counters count
// window *starts*; the gauge tracks concurrently open windows — the
// "active-fault" signal sessions correlate stalls against.
func (inj *Injector) instrument(reg *telemetry.Registry) {
	inj.tmActive = reg.Gauge("faults.active_windows")
	for k := Kind(0); k < numKinds; k++ {
		inj.tmKind[k] = reg.Counter("faults.windows_" + k.String())
	}
}

// FaultActive reports whether any window is currently open — the probe
// player sessions use to attribute stalls to injected faults.
func (inj *Injector) FaultActive() bool { return inj.active > 0 }

// Windows returns the injected windows with absolute sim-time starts —
// plain data, safe to retain in an exp.Result and export to traces.
func (inj *Injector) Windows() []Window {
	return append([]Window(nil), inj.windows...)
}

func (inj *Injector) begin(w Window) {
	inj.active++
	inj.tmActive.Set(float64(inj.active))
	if k := w.Kind; k >= 0 && k < numKinds {
		inj.tmKind[k].Inc()
	}
	switch w.Kind {
	case NetOutage:
		if inj.link != nil {
			inj.link.OutageFor(w.Duration)
		}
	case NetLoss:
		if inj.link != nil {
			inj.loss = append(inj.loss, w.Severity)
			inj.link.SetLoss(maxOf(inj.loss))
		}
	case IOStall:
		inj.iostall = append(inj.iostall, w.Severity)
		inj.dev.Disk.SetSlowFactor(maxOf(inj.iostall))
	case MemSpike:
		inj.spikes++
		mempress.Spike(inj.dev, fmt.Sprintf("memspike%02d", inj.spikes),
			units.Bytes(w.Severity), w.Duration)
	}
}

func (inj *Injector) end(w Window) {
	inj.active--
	inj.tmActive.Set(float64(inj.active))
	switch w.Kind {
	case NetLoss:
		if inj.link != nil {
			inj.loss = removeOne(inj.loss, w.Severity)
			inj.link.SetLoss(maxOf(inj.loss))
		}
	case IOStall:
		inj.iostall = removeOne(inj.iostall, w.Severity)
		if f := maxOf(inj.iostall); f > 1 {
			inj.dev.Disk.SetSlowFactor(f)
		} else {
			inj.dev.Disk.SetSlowFactor(1)
		}
		// NetOutage expires on its own (OutageFor carries the end time);
		// MemSpike processes schedule their own exit.
	}
}

// maxOf returns the largest element, or 0 for an empty slice. With
// overlapping windows of one kind the strongest severity wins.
func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// removeOne deletes the first element equal to v.
func removeOne(xs []float64, v float64) []float64 {
	for i, x := range xs {
		if x == v {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}
