package resilience

import (
	"math/rand"
	"testing"
	"time"
)

func TestBudgetSpendAndDeny(t *testing.T) {
	b := NewRetryBudget(BudgetConfig{Capacity: 2})
	if !b.Allow() || !b.Allow() {
		t.Fatal("fresh budget must grant its full capacity")
	}
	if b.Allow() {
		t.Fatal("empty budget granted a retry")
	}
	if s := b.Stats(); s.Spent != 2 || s.Denied != 1 {
		t.Errorf("stats = %+v, want spent=2 denied=1", s)
	}
}

func TestBudgetRefillBySuccess(t *testing.T) {
	b := NewRetryBudget(BudgetConfig{Capacity: 3, RefillPerSuccess: 0.5})
	for i := 0; i < 3; i++ {
		b.Allow()
	}
	if b.Allow() {
		t.Fatal("budget should be empty")
	}
	b.OnSuccess() // 0.5 tokens: still below a whole retry
	if b.Allow() {
		t.Fatal("half a token granted a retry")
	}
	b.OnSuccess() // 1.0 token
	if !b.Allow() {
		t.Fatal("refilled budget should grant")
	}
	// Refills cap at capacity.
	for i := 0; i < 100; i++ {
		b.OnSuccess()
	}
	if b.Tokens() != 3 {
		t.Errorf("tokens = %v, want capped at 3", b.Tokens())
	}
}

func TestBudgetDisabledAndNil(t *testing.T) {
	b := NewRetryBudget(BudgetConfig{})
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("disabled budget must always grant")
		}
	}
	var nb *RetryBudget
	if !nb.Allow() {
		t.Error("nil budget must always grant")
	}
	nb.OnSuccess() // must not panic
	if s := nb.Stats(); s != (BudgetStats{}) {
		t.Errorf("nil stats = %+v", s)
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(1700000000, 0)
	br := NewBreaker(BreakerConfig{FailThreshold: 3, Cooldown: 2 * time.Second})
	for i := 0; i < 2; i++ {
		br.OnFailure(now)
		if br.State() != Closed {
			t.Fatalf("opened after %d failures", i+1)
		}
	}
	br.OnFailure(now)
	if br.State() != Open {
		t.Fatal("3rd consecutive failure must open the circuit")
	}
	if br.Allow(now.Add(time.Second)) {
		t.Error("open circuit allowed a request inside the cooldown")
	}
	if s := br.Stats(); s.Opens != 1 || s.FastFails != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	now := time.Unix(1700000000, 0)
	br := NewBreaker(BreakerConfig{FailThreshold: 3})
	br.OnFailure(now)
	br.OnFailure(now)
	br.OnSuccess(now)
	br.OnFailure(now)
	br.OnFailure(now)
	if br.State() != Closed {
		t.Error("non-consecutive failures must not open the circuit")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(1700000000, 0)
	br := NewBreaker(BreakerConfig{FailThreshold: 1, Cooldown: 2 * time.Second})
	br.OnFailure(now)
	if br.State() != Open {
		t.Fatal("threshold 1 should open on first failure")
	}
	// Cooldown elapsed: exactly one probe is admitted.
	at := now.Add(2 * time.Second)
	if !br.Allow(at) {
		t.Fatal("cooldown elapsed: probe should be admitted")
	}
	if br.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", br.State())
	}
	if br.Allow(at) {
		t.Error("second concurrent probe admitted")
	}
	// Probe success closes.
	br.OnSuccess(at)
	if br.State() != Closed || !br.Allow(at) {
		t.Error("probe success must close the circuit")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Unix(1700000000, 0)
	br := NewBreaker(BreakerConfig{FailThreshold: 1, Cooldown: time.Second})
	br.OnFailure(now)
	at := now.Add(time.Second)
	if !br.Allow(at) {
		t.Fatal("probe should be admitted")
	}
	br.OnFailure(at)
	if br.State() != Open {
		t.Fatal("failed probe must reopen")
	}
	// The fresh cooldown is anchored at the probe failure.
	if br.Allow(at.Add(500 * time.Millisecond)) {
		t.Error("reopened circuit honored the old cooldown anchor")
	}
	if !br.Allow(at.Add(time.Second)) {
		t.Error("fresh cooldown elapsed: probe should be admitted")
	}
	if s := br.Stats(); s.Opens != 2 || s.Probes != 2 {
		t.Errorf("stats = %+v, want opens=2 probes=2", s)
	}
}

func TestBreakerNil(t *testing.T) {
	var br *Breaker
	now := time.Unix(1700000000, 0)
	if !br.Allow(now) {
		t.Error("nil breaker must allow")
	}
	br.OnSuccess(now)
	br.OnFailure(now)
	if br.State() != Closed {
		t.Error("nil breaker state should read closed")
	}
}

func TestJitterRangeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := 100 * time.Millisecond
	var seq []time.Duration
	for i := 0; i < 1000; i++ {
		j := Jitter(rng, d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("jitter %v outside [%v, %v)", j, d/2, d+d/2)
		}
		seq = append(seq, j)
	}
	rng2 := rand.New(rand.NewSource(42))
	for i, want := range seq {
		if got := Jitter(rng2, d); got != want {
			t.Fatalf("jitter not deterministic at %d: %v vs %v", i, got, want)
		}
	}
	// Nil generator and non-positive durations pass through.
	if Jitter(nil, d) != d {
		t.Error("nil rng must pass through")
	}
	if Jitter(rng, 0) != 0 {
		t.Error("zero duration must pass through")
	}
}
