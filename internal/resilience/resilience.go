// Package resilience holds the client-side overload-protection
// primitives the streaming backend's players carry: a retry *budget*
// (token bucket refilled by successes) that replaces unbounded
// capped-exponential retries, a per-origin circuit breaker with
// half-open probing, and a deterministic backoff jitter helper. The
// design target is the retry storm the paper's philosophy predicts:
// under a server-side fault window, a fleet of synchronized players
// retrying in lockstep multiplies the very load that caused the
// fault — budgets bound the multiplication, breakers stop paying for
// requests that cannot succeed, and jitter decorrelates the herd.
//
// Determinism contract (see LINTING.md): nothing here consults a wall
// clock or a global RNG. The breaker takes `now` as an explicit
// parameter on every transition, so the same call sequence yields the
// same state machine whether the caller's clock is time.Now or a
// virtual simulation clock. Jitter draws from a caller-owned
// *rand.Rand seeded from the player's FNV lane. None of the types are
// safe for concurrent use — each player owns its own instances, the
// same discipline loadgen applies to its recorders.
package resilience

import (
	"math/rand"
	"time"
)

// BudgetConfig shapes a RetryBudget.
type BudgetConfig struct {
	// Capacity is the maximum banked retry tokens (and the initial
	// balance). Zero or negative disables the budget: Allow always
	// grants.
	Capacity float64
	// RefillPerSuccess is the fraction of a token earned back per
	// successful request (default 0.1 — ten successes buy one retry,
	// i.e. a sustained 10% retry rate).
	RefillPerSuccess float64
}

// RetryBudget is a token bucket spent by retries and refilled by
// successes. Unlike a time-based bucket it needs no clock: the budget
// couples retry volume to useful work, so a player that stops
// succeeding soon stops retrying — exactly the behavior that lets a
// storm decay instead of amplifying.
type RetryBudget struct {
	cfg    BudgetConfig
	tokens float64

	// BudgetStats fields are plain counters (single-owner type).
	spent   int64
	denied  int64
	refills int64
}

// NewRetryBudget builds a budget with a full initial balance.
func NewRetryBudget(cfg BudgetConfig) *RetryBudget {
	if cfg.RefillPerSuccess <= 0 {
		cfg.RefillPerSuccess = 0.1
	}
	return &RetryBudget{cfg: cfg, tokens: cfg.Capacity}
}

// Allow consumes one retry token, reporting whether the retry may
// proceed. A disabled budget (Capacity <= 0) always grants.
func (b *RetryBudget) Allow() bool {
	if b == nil || b.cfg.Capacity <= 0 {
		return true
	}
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.spent++
	return true
}

// OnSuccess banks RefillPerSuccess tokens, capped at Capacity.
func (b *RetryBudget) OnSuccess() {
	if b == nil || b.cfg.Capacity <= 0 {
		return
	}
	b.refills++
	if b.tokens += b.cfg.RefillPerSuccess; b.tokens > b.cfg.Capacity {
		b.tokens = b.cfg.Capacity
	}
}

// Tokens returns the current balance (tests pin the arithmetic).
func (b *RetryBudget) Tokens() float64 { return b.tokens }

// BudgetStats snapshots the budget counters.
type BudgetStats struct {
	Spent  int64 // retries granted (tokens consumed)
	Denied int64 // retries refused on an empty bucket
}

// Stats snapshots the counters. Safe on a nil budget.
func (b *RetryBudget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	return BudgetStats{Spent: b.spent, Denied: b.denied}
}

// BreakerState is the circuit state.
type BreakerState int

const (
	// Closed passes requests through, counting consecutive failures.
	Closed BreakerState = iota
	// Open fails fast until the cooldown elapses.
	Open
	// HalfOpen lets one probe through; its outcome closes or reopens.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "breaker-state-?"
	}
}

// BreakerConfig shapes a Breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that opens the
	// circuit (default 5). Zero or negative keeps the default; use a
	// nil *Breaker to disable breaking entirely.
	FailThreshold int
	// Cooldown is how long the circuit stays open before a half-open
	// probe is allowed (default 2s).
	Cooldown time.Duration
}

// Breaker is a per-origin circuit breaker. Closed it counts
// consecutive failures; at FailThreshold it opens and fails fast;
// after Cooldown it half-opens and admits one probe whose outcome
// decides between closing and reopening. All transitions take the
// caller's `now` so the machine runs identically on a real or a
// virtual clock.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	opens     int64
	fastFails int64
	probes    int64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may be attempted at now. Open
// circuits fail fast until the cooldown elapses, then admit exactly
// one half-open probe at a time. A nil breaker always allows.
func (br *Breaker) Allow(now time.Time) bool {
	if br == nil {
		return true
	}
	switch br.state {
	case Closed:
		return true
	case Open:
		if now.Sub(br.openedAt) >= br.cfg.Cooldown {
			br.state = HalfOpen
			br.probing = true
			br.probes++
			return true
		}
		br.fastFails++
		return false
	case HalfOpen:
		if !br.probing {
			br.probing = true
			br.probes++
			return true
		}
		br.fastFails++
		return false
	}
	return true
}

// OnSuccess records a successful request: a half-open probe success
// closes the circuit; closed circuits reset their failure run.
func (br *Breaker) OnSuccess(now time.Time) {
	if br == nil {
		return
	}
	br.failures = 0
	br.probing = false
	br.state = Closed
}

// OnFailure records a failed request at now: closed circuits open at
// the threshold, a failed half-open probe reopens for a fresh
// cooldown.
func (br *Breaker) OnFailure(now time.Time) {
	if br == nil {
		return
	}
	switch br.state {
	case Closed:
		if br.failures++; br.failures >= br.cfg.FailThreshold {
			br.open(now)
		}
	case HalfOpen:
		br.probing = false
		br.open(now)
	case Open:
		// A failure landing while open (an in-flight request issued
		// before the trip) keeps the cooldown anchored at the most
		// recent evidence.
		br.openedAt = now
	}
}

func (br *Breaker) open(now time.Time) {
	br.state = Open
	br.openedAt = now
	br.failures = 0
	br.opens++
}

// State returns the current circuit state.
func (br *Breaker) State() BreakerState {
	if br == nil {
		return Closed
	}
	return br.state
}

// BreakerStats snapshots the breaker counters.
type BreakerStats struct {
	Opens     int64 // transitions into Open
	FastFails int64 // requests refused without touching the network
	Probes    int64 // half-open probes admitted
}

// Stats snapshots the counters. Safe on a nil breaker.
func (br *Breaker) Stats() BreakerStats {
	if br == nil {
		return BreakerStats{}
	}
	return BreakerStats{Opens: br.opens, FastFails: br.fastFails, Probes: br.probes}
}

// Jitter spreads d uniformly over [0.5d, 1.5d) using the caller's
// seeded generator — the same multiplicative shape faults.Windows
// applies to storm gaps, here decorrelating a fleet's retry timers so
// a fault window's survivors do not return as one synchronized wave.
func Jitter(rng *rand.Rand, d time.Duration) time.Duration {
	if rng == nil || d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}
