package player

import (
	"encoding/json"
	"time"
)

// metricsDTO is the wire form of Metrics: map keys become strings and
// durations become seconds, so the logs are consumable by any plotting
// stack (the paper's repository ships analysis notebooks over similar
// JSON/CSV logs).
type metricsDTO struct {
	Device           string         `json:"device"`
	Client           string         `json:"client"`
	Video            string         `json:"video"`
	Rung             string         `json:"rung"`
	FramesRendered   int            `json:"frames_rendered"`
	FramesDropped    int            `json:"frames_dropped"`
	DropRatePct      float64        `json:"drop_rate_pct"`
	EffectiveDropPct float64        `json:"effective_drop_rate_pct"`
	Crashed          bool           `json:"crashed"`
	CrashedAtSec     *float64       `json:"crashed_at_sec,omitempty"`
	Restarts         int            `json:"restarts,omitempty"`
	TimeToRecoverSec float64        `json:"time_to_recover_sec,omitempty"`
	Retries          int            `json:"retries,omitempty"`
	FaultStalls      int            `json:"fault_stalls,omitempty"`
	Stalls           int            `json:"stalls"`
	StallSec         float64        `json:"stall_sec"`
	StartupDelaySec  float64        `json:"startup_delay_sec"`
	FPSTimeline      []float64      `json:"fps_timeline"`
	MeanPSSMiB       float64        `json:"mean_pss_mib"`
	PeakPSSMiB       float64        `json:"peak_pss_mib"`
	Signals          map[string]int `json:"signals"`
	Switches         []switchDTO    `json:"switches,omitempty"`
	Chunks           []chunkDTO     `json:"chunks,omitempty"`
}

type switchDTO struct {
	AtSec float64 `json:"at_sec"`
	From  string  `json:"from"`
	To    string  `json:"to"`
}

type chunkDTO struct {
	Index       int     `json:"index"`
	Rung        string  `json:"rung"`
	DurationSec float64 `json:"duration_sec"`
	RebufferSec float64 `json:"rebuffer_sec"`
	Rendered    int     `json:"rendered"`
	Dropped     int     `json:"dropped"`
}

// MarshalJSON implements json.Marshaler for Metrics.
func (m Metrics) MarshalJSON() ([]byte, error) {
	dto := metricsDTO{
		Device:           m.Device,
		Client:           m.Client,
		Video:            m.Video,
		Rung:             m.Rung.String(),
		FramesRendered:   m.FramesRendered,
		FramesDropped:    m.FramesDropped,
		DropRatePct:      m.DropRate,
		EffectiveDropPct: m.EffectiveDropRate,
		Crashed:          m.Crashed,
		Stalls:           m.Stalls,
		StallSec:         m.StallTime.Seconds(),
		StartupDelaySec:  m.StartupDelay.Seconds(),
		FPSTimeline:      m.FPSTimeline,
		MeanPSSMiB:       m.MeanPSS.MiBf(),
		PeakPSSMiB:       m.PeakPSS.MiBf(),
		Signals:          map[string]int{},
	}
	dto.Restarts = m.Restarts
	dto.TimeToRecoverSec = m.TimeToRecover.Seconds()
	dto.Retries = m.Retries
	dto.FaultStalls = m.FaultStalls
	if m.Crashed {
		// A pointer, not omitempty-on-zero: a kill at sim time zero is a
		// real crash and must still emit the field (Crashed gates it, the
		// timestamp value never does).
		sec := m.CrashedAt.Seconds()
		dto.CrashedAtSec = &sec
	}
	//coalvet:allow maporder key-to-key map copy; encoding/json sorts map keys on marshal
	for l, n := range m.Signals {
		dto.Signals[l.String()] = n
	}
	for _, sw := range m.Switches {
		dto.Switches = append(dto.Switches, switchDTO{
			AtSec: time.Duration(sw.At).Seconds(), From: sw.From.String(), To: sw.To.String(),
		})
	}
	for _, c := range m.Chunks {
		dto.Chunks = append(dto.Chunks, chunkDTO{
			Index: c.Index, Rung: c.Rung.String(),
			DurationSec: c.Duration.Seconds(), RebufferSec: c.Rebuffer.Seconds(),
			Rendered: c.Rendered, Dropped: c.Dropped,
		})
	}
	return json.Marshal(dto)
}
