// Package player implements the video client: segment download into a
// playback buffer, frame decoding on a MediaCodec thread, vsync-paced
// presentation through SurfaceFlinger, and the memory behavior that
// couples the client to the kernel (heap sized like the paper's §4.2
// PSS measurements, page-cache refaults under pressure, zRAM swap-ins,
// and death by lmkd).
//
// Frame drops emerge from the mechanism the paper identifies: "if the
// video client suffers from slow rendering, it is forced to skip frames
// to maintain 1× rate" (§4.1). The decoder skips frames whose deadline
// already passed, so the drop rate reflects how much CPU and I/O time
// the pipeline actually got.
package player

import (
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/units"
)

// ClientProfile captures the memory and compute character of a video
// client implementation. The paper evaluates three: Firefox (primary,
// §4), Chrome and ExoPlayer (Appendix B), which differ mainly in
// memory footprint — "the decrease in frame drops can be partly
// attributed to the lower memory footprint" (App. B).
type ClientProfile struct {
	Name string
	// BasePSS is the video-independent heap (browser engine, JS, UI).
	BasePSS units.Bytes
	// BytesPerPixel sizes the decode surfaces and compositor buffers.
	BytesPerPixel float64
	// FPSFootprint is the extra footprint factor per (fps/30 − 1);
	// §4.2 measured ≈ +20 MB from 30 to 60 FPS.
	FPSFootprint float64
	// FileWS is the file-backed working set (binary, libraries).
	FileWS units.Bytes
	// DecodeNsPerPixel is reference-CPU decode+render prep time per
	// pixel per frame.
	DecodeNsPerPixel float64
	// ComposeCost is the per-frame SurfaceFlinger work.
	ComposeCost time.Duration
	// DemuxCost is the per-segment main-thread work.
	DemuxCost time.Duration
	// HotAnonFrac is how much of the heap stays hot.
	HotAnonFrac float64
	// FaultsPerSec scales refault I/O per second of playback at full
	// cache deficit (the client touches its working set continuously,
	// independent of frame rate).
	FaultsPerSec float64
	// StallBurstsPerSec scales the rate (at full cache deficit) of
	// serial dependent-fault bursts: a thread walking evicted data
	// structures faults page after page, each read gating the next —
	// the multi-ten-millisecond freezes that drop whole frame runs.
	StallBurstsPerSec float64
	// Workers is the number of auxiliary busy threads (JS, layout,
	// audio, network, image decode — a real browser runs dozens).
	// They matter because under memory pressure the extra runnable
	// threads are what turn kswapd/mmcqd activity into CPU
	// oversubscription: Table 4's growth in Runnable time.
	Workers int
	// WorkerDuty is each worker's CPU duty cycle (fraction of a
	// reference core).
	WorkerDuty float64
}

// The paper's three clients. Footprints follow §4.2 and Appendix B:
// Firefox is the heaviest, Chrome lighter, ExoPlayer (a native app
// without a browser engine) lightest.
var (
	Firefox = ClientProfile{
		Name:              "firefox",
		BasePSS:           170 * units.MiB,
		BytesPerPixel:     45,
		FPSFootprint:      0.35,
		FileWS:            110 * units.MiB,
		DecodeNsPerPixel:  21.5,
		ComposeCost:       2 * time.Millisecond,
		DemuxCost:         3 * time.Millisecond,
		HotAnonFrac:       0.7,
		FaultsPerSec:      3000,
		StallBurstsPerSec: 30,
		Workers:           5,
		WorkerDuty:        0.13,
	}
	Chrome = ClientProfile{
		Name:              "chrome",
		BasePSS:           130 * units.MiB,
		BytesPerPixel:     32,
		FPSFootprint:      0.35,
		FileWS:            80 * units.MiB,
		DecodeNsPerPixel:  20.0,
		ComposeCost:       2 * time.Millisecond,
		DemuxCost:         3 * time.Millisecond,
		HotAnonFrac:       0.7,
		FaultsPerSec:      2100,
		StallBurstsPerSec: 21,
		Workers:           4,
		WorkerDuty:        0.12,
	}
	ExoPlayer = ClientProfile{
		Name:              "exoplayer",
		BasePSS:           72 * units.MiB,
		BytesPerPixel:     24,
		FPSFootprint:      0.35,
		FileWS:            45 * units.MiB,
		DecodeNsPerPixel:  17.0,
		ComposeCost:       1500 * time.Microsecond,
		DemuxCost:         2 * time.Millisecond,
		HotAnonFrac:       0.7,
		FaultsPerSec:      1100,
		StallBurstsPerSec: 11,
		Workers:           2,
		WorkerDuty:        0.09,
	}
)

// VideoHeap returns the video-dependent heap for a rung: decode
// surfaces plus compositor buffers (excludes the segment buffer, which
// is tracked live as it fills).
func (c ClientProfile) VideoHeap(rung dash.Rung) units.Bytes {
	px := float64(rung.Resolution.Pixels())
	mult := 1.0
	if rung.FPS > 30 {
		mult += c.FPSFootprint * (float64(rung.FPS)/30 - 1)
	}
	return units.Bytes(c.BytesPerPixel * px * mult)
}

// DecodeCost returns the reference-CPU time to decode one frame of the
// given rung and genre.
func (c ClientProfile) DecodeCost(rung dash.Rung, genre dash.Genre) time.Duration {
	px := float64(rung.Resolution.Pixels())
	return time.Duration(c.DecodeNsPerPixel * px * genre.Complexity())
}
