package player

import (
	"fmt"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/netem"
	"coalqoe/internal/proc"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// Config describes one streaming session.
type Config struct {
	// Device is the simulated phone the client runs on.
	Device *device.Device
	// Client selects the implementation profile (Firefox, Chrome,
	// ExoPlayer).
	Client ClientProfile
	// Manifest is the content to stream.
	Manifest *dash.Manifest
	// Link is the network path; nil uses the paper's non-bottleneck LAN.
	Link *netem.Link
	// Rung is the starting quality.
	Rung dash.Rung
	// BufferCapacity caps the playback buffer; default 60s (§4.1).
	BufferCapacity time.Duration
	// StartupBuffer is the media level at which playback starts;
	// default 4s (one segment).
	StartupBuffer time.Duration
	// Lookahead is how many frames the decoder may work ahead of the
	// resync point; default 2. This is the pipeline's only latency
	// cushion: stalls longer than Lookahead frame intervals drop
	// frames, which is why 60 FPS content suffers roughly twice as
	// hard as 30 FPS under the same memory pressure (§4.3).
	Lookahead int
	// SwitchLatency is the delay for a quality switch to take effect
	// (codec reconfiguration + buffer splice); default 2s.
	SwitchLatency time.Duration
	// DisableGC turns off periodic client GC pauses (ablation).
	DisableGC bool
	// SegmentTimeout bounds one segment-fetch attempt on the sim clock:
	// an attempt still undelivered at the timeout is abandoned and
	// retried after a capped exponential backoff (RetryBackoff doubling
	// up to RetryBackoffCap). Zero keeps the legacy wait-forever
	// behavior — appropriate for the paper's never-bottlenecked LAN,
	// required reading under injected outages (see internal/faults).
	SegmentTimeout time.Duration
	// RetryBackoff is the first retry delay (default 500ms); it doubles
	// per consecutive abandoned attempt up to RetryBackoffCap (default
	// 8s). Retries are unbounded: the backoff cap, not an attempt
	// budget, is what keeps a long outage survivable. All retry timing
	// runs on the sim clock (see LINTING.md on wall-clock-free timers).
	RetryBackoff    time.Duration
	RetryBackoffCap time.Duration
	// Recovery, when non-nil, makes an lmkd kill survivable: the app
	// relaunches after the cold-start cost, re-fetches the manifest,
	// and resumes from the next segment boundary. nil keeps kills
	// terminal (the seed behavior, and the paper's §4.3 reading).
	Recovery *RecoveryPolicy
}

// RecoveryPolicy configures crash-recovery playback.
type RecoveryPolicy struct {
	// ColdStart is the app relaunch delay after a kill — process fork,
	// runtime init, player setup — before the manifest re-fetch and
	// buffer refill even begin. Default 2s.
	ColdStart time.Duration
	// MaxRestarts caps recovery attempts; the kill after the last
	// restart is terminal (Metrics.Crashed). Default 3.
	MaxRestarts int
}

func (r *RecoveryPolicy) applyDefaults() {
	if r.ColdStart <= 0 {
		r.ColdStart = 2 * time.Second
	}
	if r.MaxRestarts <= 0 {
		r.MaxRestarts = 3
	}
}

func (c *Config) applyDefaults() {
	if c.BufferCapacity <= 0 {
		c.BufferCapacity = 60 * time.Second
	}
	if c.StartupBuffer <= 0 {
		c.StartupBuffer = 4 * time.Second
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 2
	}
	if c.SwitchLatency <= 0 {
		c.SwitchLatency = 2 * time.Second
	}
	if c.SegmentTimeout > 0 {
		if c.RetryBackoff <= 0 {
			c.RetryBackoff = 500 * time.Millisecond
		}
		if c.RetryBackoffCap <= 0 {
			c.RetryBackoffCap = 8 * time.Second
		}
	}
	if c.Recovery != nil {
		c.Recovery.applyDefaults()
	}
}

// Session is a live (or finished) playback session.
type Session struct {
	cfg  Config
	dev  *device.Device
	link *netem.Link

	process *proc.Process
	decoder *sched.Thread // "MediaCodec"
	comp    *sched.Thread // client compositor
	sf      *sched.Thread // system SurfaceFlinger
	workers []*sched.Thread

	// Cached fault-target lists for pageFaultPump, rebuilt on every
	// (re)spawn: the pump runs 10×/s for the whole session, and
	// assembling these slices per tick was a measurable allocation
	// site. Order is fixed (decoder, compositor, [sf,] main, workers),
	// so cached draws replay exactly what per-tick construction drew.
	faultTargets []*sched.Thread
	chaseTargets []*sched.Thread

	rung  dash.Rung
	genre dash.Genre

	// playback state
	started        bool
	startedAt      time.Duration
	everStarted    bool
	done           bool
	crashed        bool
	crashedAt      time.Duration
	playFrame      int
	nextDecode     int
	lastDecode     int
	decodedQ       []int // decoded, not-yet-presented frame indices
	decoding       bool
	playedTime     time.Duration
	decodeWallEWMA time.Duration

	// crash-recovery state. epoch increments on every kill; callbacks
	// scheduled before a kill are wrapped by inEpoch and silently die,
	// so a restarted session never races its predecessor's pipeline.
	epoch         int
	recovering    bool
	recoverStart  time.Duration
	restarts      int
	timeToRecover time.Duration
	retries       int
	faultStalls   int
	faultProbe    func() bool
	workerTicks   []*simclock.Event

	// buffer state
	nextSeg        int
	downloadedTime time.Duration
	segSizes       []units.Bytes // in-buffer segment sizes (FIFO)
	consumedInSeg  time.Duration

	// metrics
	rendered, dropped int
	stalls            int
	stallTime         time.Duration
	fpsBins           map[int]int
	droppedBins       map[int]int
	pssSamples        []units.Bytes
	signals           map[proc.Level]int
	switches          []SwitchEvent
	throughput        units.BitsPerSecond

	// per-chunk trace: one record per fully played segment, appended as
	// the playhead crosses each segment boundary. The marks snapshot the
	// session counters at the previous boundary so each record carries
	// only its own chunk's stalls and frame outcomes. Pure recording —
	// no clock events, no RNG — so the event-order digest is unchanged.
	launchedAt        time.Duration
	chunks            []ChunkRecord
	chunkIndex        int
	chunkStallMark    time.Duration
	chunkRenderedMark int
	chunkDroppedMark  int

	onSignal func(proc.Level)
	onFinish []func()
}

// SwitchEvent records a quality change.
type SwitchEvent struct {
	At   time.Duration
	From dash.Rung
	To   dash.Rung
}

// ChunkRecord is the per-segment row of the player trace: which rung
// the chunk played at, how long the playhead stalled while it played,
// and how its frames fared. Index is the media segment index, so a
// crash-recovered session that skips a partial segment leaves a gap
// rather than renumbering. The QoE objective (internal/qoe) folds a
// session's records into a per-chunk score.
type ChunkRecord struct {
	Index    int
	Rung     dash.Rung
	Duration time.Duration
	// Rebuffer is stall time accrued while this chunk was playing.
	Rebuffer time.Duration
	// Rendered/Dropped count this chunk's presented frame outcomes.
	Rendered int
	Dropped  int
}

// Start launches a session on the device. Playback begins once the
// startup buffer fills; run the device clock to make progress.
func Start(cfg Config) *Session {
	cfg.applyDefaults()
	d := cfg.Device
	link := cfg.Link
	if link == nil {
		link = netem.LAN(d.Clock)
	}
	s := &Session{
		cfg:         cfg,
		dev:         d,
		link:        link,
		rung:        cfg.Rung,
		genre:       cfg.Manifest.Video.Genre,
		lastDecode:  -1,
		fpsBins:     make(map[int]int),
		droppedBins: make(map[int]int),
		signals:     make(map[proc.Level]int),
		launchedAt:  d.Clock.Now(),
	}
	s.sf = d.SurfaceFlinger
	s.spawnProcess()
	if d.Telem != nil {
		s.instrument(d.Telem)
	}

	s.download()
	if !cfg.DisableGC {
		s.scheduleGC()
	}
	d.Clock.Every(time.Second, s.samplePSS)
	d.Clock.Every(500*time.Millisecond, s.memoryChurn)
	d.Clock.Every(100*time.Millisecond, s.pageFaultPump)
	return s
}

// manifestBytes is the size of the manifest document a recovering
// client re-fetches before it can resume downloads.
const manifestBytes = 32 * units.KiB

// spawnProcess starts (or, after a kill, restarts) the client process
// and binds the session's thread handles to it. A restart gets fresh
// threads — the scheduler never resurrects dead ones — which is why
// every handle is rebound here rather than cached by the pipeline.
func (s *Session) spawnProcess() {
	cfg := s.cfg
	d := s.dev
	s.process = d.Table.Start(proc.Spec{
		Name:        cfg.Client.Name,
		Adj:         proc.AdjForeground,
		AnonBytes:   cfg.Client.BasePSS + cfg.Client.VideoHeap(s.rung),
		FileWSBytes: cfg.Client.FileWS,
		HotAnonFrac: cfg.Client.HotAnonFrac,
		RampTime:    6 * time.Second,
		ExtraThreads: append([]string{
			"MediaCodec", "Compositor",
		}, workerNames(cfg.Client.Workers)...),
		OnTrim: func(l proc.Level) {
			s.signals[l]++
			if s.onSignal != nil {
				s.onSignal(l)
			}
		},
		OnKilled: func(string) { s.onKilled() },
	})
	s.decoder = s.process.Thread("MediaCodec")
	s.comp = s.process.Thread("Compositor")
	s.decodeWallEWMA = s.estimateDecodeWall()
	s.workers = nil
	s.startWorkers()
	s.faultTargets = append(s.faultTargets[:0], s.decoder, s.comp, s.sf, s.process.Main())
	s.faultTargets = append(s.faultTargets, s.workers...)
	s.chaseTargets = append(s.chaseTargets[:0], s.decoder, s.comp, s.process.Main())
}

// inEpoch wraps fn so it becomes a no-op once the session's process has
// been killed (terminally or into recovery) after scheduling: every
// clock callback belonging to the playback pipeline goes through this,
// so stale deliveries, vsyncs, timeouts and GC pauses from before a
// kill cannot leak into the restarted session.
func (s *Session) inEpoch(fn func()) func() {
	e := s.epoch
	return func() {
		if s.epoch == e {
			fn()
		}
	}
}

// onKilled handles the lmkd kill: terminal crash (the seed behavior),
// or — under a RecoveryPolicy with restarts to spare — transition into
// recovery: app relaunch after the cold-start cost, manifest re-fetch,
// resume from the next segment boundary.
func (s *Session) onKilled() {
	now := s.dev.Clock.Now()
	s.epoch++
	s.decoding = false
	s.decodedQ = nil
	for _, ev := range s.workerTicks {
		ev.Cancel()
	}
	s.workerTicks = nil

	// The dead process's buffer is gone; a restart would resume at the
	// next segment boundary (the partial segment at the playhead is
	// re-fetched media we choose not to replay — it is simply lost).
	video := s.cfg.Manifest.Video
	segDur := video.SegmentDuration
	seg := int(s.playedTime / segDur)
	if s.playedTime%segDur != 0 {
		seg++
	}
	resume := time.Duration(seg) * segDur

	rec := s.cfg.Recovery
	if rec == nil || s.restarts >= rec.MaxRestarts || resume >= video.Duration {
		// No policy, out of restarts, or killed with less than one
		// segment left (nothing meaningful to resume into): terminal.
		s.crashed = true
		s.crashedAt = now
		for _, fn := range s.onFinish {
			fn()
		}
		return
	}
	s.restarts++
	s.recovering = true
	s.recoverStart = now
	s.started = false
	s.playedTime = resume
	s.downloadedTime = resume
	s.segSizes = nil
	s.consumedInSeg = 0
	s.nextSeg = seg
	s.nextDecode = s.playFrame
	s.lastDecode = s.playFrame - 1
	// The partial segment at the playhead is lost, not replayed: the
	// chunk trace resumes at the next boundary's media index and the
	// marks resync so the lost chunk's stalls/frames don't leak into
	// the first post-recovery record.
	s.chunkIndex = seg
	s.chunkStallMark = s.stallTime
	s.chunkRenderedMark = s.rendered
	s.chunkDroppedMark = s.dropped
	s.dev.Clock.Schedule(rec.ColdStart, s.inEpoch(s.respawn))
}

// respawn relaunches the client after the cold-start delay: new
// process, manifest re-fetch over the link, then the download loop
// refills the buffer and begin() resumes playback.
func (s *Session) respawn() {
	if !s.Active() {
		return
	}
	s.spawnProcess()
	s.link.Transfer(manifestBytes, s.inEpoch(func() {
		s.process.Main().Enqueue(s.cfg.Client.DemuxCost, s.inEpoch(s.download))
	}))
	if !s.cfg.DisableGC {
		s.scheduleGC()
	}
}

// begin starts — or, after a crash recovery, resumes — presentation
// once the startup buffer is full.
func (s *Session) begin() {
	now := s.dev.Clock.Now()
	s.started = true
	if !s.everStarted {
		s.everStarted = true
		s.startedAt = now
	}
	if s.recovering {
		s.recovering = false
		s.timeToRecover += now - s.recoverStart
	}
	s.scheduleVsync(s.frameInterval())
}

func (s *Session) scheduleVsync(d time.Duration) {
	s.dev.Clock.Schedule(d, s.inEpoch(s.vsync))
}

// SetFaultProbe installs a predicate consulted at each stall tick:
// stalls that begin while it reports true are counted separately as
// Metrics.FaultStalls (see internal/faults for the injector that
// supplies it).
func (s *Session) SetFaultProbe(fn func() bool) { s.faultProbe = fn }

// Recovering reports whether the session is between an lmkd kill and
// the post-restart playback resume.
func (s *Session) Recovering() bool { return s.recovering }

// Restarts returns how many crash recoveries the session has survived.
func (s *Session) Restarts() int { return s.restarts }

// instrument registers the client-side QoE series: buffer level, the
// current rung (bitrate and FPS), stall state, frame counters, and
// the client's PSS — the per-session signals Figures 16–17 plot over
// time. Everything is a read-only sample func: the playback hot paths
// (vsync, decode chain) carry no instrumentation cost. A respawned
// session on the same device re-binds the series.
func (s *Session) instrument(reg *telemetry.Registry) {
	reg.SampleFunc("player.buffer_ms", func() float64 {
		return float64(s.BufferLevel() / time.Millisecond)
	})
	reg.SampleFunc("player.rung_bps", func() float64 { return float64(s.rung.Bitrate) })
	reg.SampleFunc("player.rung_fps", func() float64 { return float64(s.rung.FPS) })
	reg.SampleFunc("player.stalled", func() float64 {
		if s.started && s.Active() && s.BufferLevel() <= 0 {
			return 1
		}
		return 0
	})
	reg.SampleFunc("player.frames_rendered", func() float64 { return float64(s.rendered) })
	reg.SampleFunc("player.frames_dropped", func() float64 { return float64(s.dropped) })
	reg.SampleFunc("player.stall_ms", func() float64 {
		return float64(s.stallTime / time.Millisecond)
	})
	reg.SampleFunc("player.crashed", func() float64 {
		if s.crashed {
			return 1
		}
		return 0
	})
	reg.SampleFunc("player.pss_bytes", func() float64 {
		if s.process.Dead() {
			return 0
		}
		return float64(s.process.PSS())
	})
	reg.SampleFunc("player.restarts", func() float64 { return float64(s.restarts) })
	reg.SampleFunc("player.retries", func() float64 { return float64(s.retries) })
	reg.SampleFunc("player.recovering", func() float64 {
		if s.recovering {
			return 1
		}
		return 0
	})
	reg.SampleFunc("player.time_to_recover_ms", func() float64 {
		ttr := s.timeToRecover
		if s.recovering {
			ttr += s.dev.Clock.Now() - s.recoverStart
		}
		return float64(ttr / time.Millisecond)
	})
	reg.SampleFunc("player.fault_stalls", func() float64 { return float64(s.faultStalls) })
}

// OnSignal registers a callback for onTrimMemory deliveries to the
// client — the hook ABR algorithms use (§6).
func (s *Session) OnSignal(fn func(proc.Level)) { s.onSignal = fn }

// OnFinish registers a callback invoked when playback completes or the
// client crashes.
func (s *Session) OnFinish(fn func()) { s.onFinish = append(s.onFinish, fn) }

// Rung returns the current quality.
func (s *Session) Rung() dash.Rung { return s.rung }

// BufferLevel returns the media time buffered ahead of the playhead.
func (s *Session) BufferLevel() time.Duration { return s.downloadedTime - s.playedTime }

// Throughput returns the last measured download throughput.
func (s *Session) Throughput() units.BitsPerSecond { return s.throughput }

// RecentDropRate returns the percentage of frames dropped over the
// last window seconds of playback — the client-side QoE signal an ABR
// algorithm can observe.
func (s *Session) RecentDropRate(window int) float64 {
	if !s.started {
		return 0
	}
	now := int((s.dev.Clock.Now() - s.startedAt) / time.Second)
	rendered, dropped := 0, 0
	for sec := now - window; sec <= now; sec++ {
		rendered += s.fpsBins[sec]
		dropped += s.droppedBins[sec]
	}
	if rendered+dropped == 0 {
		return 0
	}
	return 100 * float64(dropped) / float64(rendered+dropped)
}

// Manifest returns the session's manifest.
func (s *Session) Manifest() *dash.Manifest { return s.cfg.Manifest }

// Active reports whether the session is still playing.
func (s *Session) Active() bool { return !s.done && !s.crashed }

// Crashed reports whether lmkd killed the client.
func (s *Session) Crashed() bool { return s.crashed }

// frameInterval is the current presentation interval.
func (s *Session) frameInterval() time.Duration {
	return time.Duration(float64(time.Second) / float64(s.rung.FPS))
}

// download runs the fetch loop: fill the buffer to capacity, one
// segment at a time, over the link.
func (s *Session) download() {
	if !s.Active() {
		return
	}
	video := s.cfg.Manifest.Video
	if s.nextSeg >= video.Segments() {
		return
	}
	if s.BufferLevel() >= s.cfg.BufferCapacity {
		s.dev.Clock.Schedule(500*time.Millisecond, s.inEpoch(s.download))
		return
	}
	seg := s.nextSeg
	s.nextSeg++
	s.fetchSegment(seg, video.SegmentBytes(s.rung, seg), 0)
}

// retryBackoff returns the delay before retry number attempt (1-based):
// capped exponential, per Config.RetryBackoff/RetryBackoffCap.
func (s *Session) retryBackoff(attempt int) time.Duration {
	b := s.cfg.RetryBackoff
	for i := 0; i < attempt && b < s.cfg.RetryBackoffCap; i++ {
		b *= 2
	}
	if b > s.cfg.RetryBackoffCap {
		b = s.cfg.RetryBackoffCap
	}
	return b
}

// fetchSegment transfers one segment attempt. With SegmentTimeout set,
// an undelivered attempt is abandoned at the timeout and retried after
// the capped exponential backoff — all on the sim clock. A late
// delivery of an abandoned attempt is ignored (the settled flag is
// per-attempt; the retry owns the segment from then on).
func (s *Session) fetchSegment(seg int, bytes units.Bytes, attempt int) {
	video := s.cfg.Manifest.Video
	reqStart := s.dev.Clock.Now()
	settled := false
	var timeout *simclock.Event
	s.link.Transfer(bytes, s.inEpoch(func() {
		if settled {
			return
		}
		settled = true
		timeout.Cancel()
		if dur := s.dev.Clock.Now() - reqStart; dur > 0 {
			s.throughput = units.BitsPerSecond(float64(bytes*8) / dur.Seconds())
		}
		// Demux on the main thread, then the media lands in the buffer.
		s.process.Main().Enqueue(s.cfg.Client.DemuxCost, s.inEpoch(func() {
			s.downloadedTime += video.SegmentDuration
			s.segSizes = append(s.segSizes, bytes)
			s.process.GrowAnon(bytes, nil)
			if !s.started && s.BufferLevel() >= s.cfg.StartupBuffer {
				s.begin()
			}
			s.kickDecoder()
			s.download()
		}))
	}))
	if s.cfg.SegmentTimeout > 0 {
		timeout = s.dev.Clock.Schedule(s.cfg.SegmentTimeout, s.inEpoch(func() {
			if settled {
				return
			}
			settled = true
			s.retries++
			s.dev.Clock.Schedule(s.retryBackoff(attempt), s.inEpoch(func() {
				s.fetchSegment(seg, bytes, attempt+1)
			}))
		}))
	}
}

// vsync presents one frame per interval: rendered if the decoder got it
// done in time, dropped otherwise — the skip-to-maintain-1× behavior.
func (s *Session) vsync() {
	if !s.Active() || !s.started {
		// !started covers recovery: the kill bumped the epoch, so a
		// stale vsync cannot reach here, but a zero-cold-start restart
		// could schedule a second loop — the guard keeps it single.
		return
	}
	video := s.cfg.Manifest.Video
	if s.playedTime >= video.Duration {
		s.finish()
		return
	}
	if s.BufferLevel() <= 0 {
		// Rebuffering: the playhead pauses; no frames drop.
		s.stalls++
		s.stallTime += 100 * time.Millisecond
		if s.faultProbe != nil && s.faultProbe() {
			s.faultStalls++
		}
		s.scheduleVsync(100 * time.Millisecond)
		return
	}
	interval := s.frameInterval()
	// Discard decoded frames whose slot already passed (decoded late).
	for len(s.decodedQ) > 0 && s.decodedQ[0] < s.playFrame {
		s.decodedQ = s.decodedQ[1:]
	}
	if len(s.decodedQ) > 0 && s.decodedQ[0] == s.playFrame {
		s.decodedQ = s.decodedQ[1:]
		s.rendered++
		sec := int((s.dev.Clock.Now() - s.startedAt) / time.Second)
		s.fpsBins[sec]++
	} else {
		s.dropped++
		sec := int((s.dev.Clock.Now() - s.startedAt) / time.Second)
		s.droppedBins[sec]++
	}
	s.playFrame++
	s.playedTime += interval
	s.consumeBuffer(interval)
	s.kickDecoder()
	s.scheduleVsync(interval)
}

// consumeBuffer releases segment memory as media plays out and closes
// out the per-chunk trace record at each segment boundary.
func (s *Session) consumeBuffer(d time.Duration) {
	s.consumedInSeg += d
	segDur := s.cfg.Manifest.Video.SegmentDuration
	for s.consumedInSeg >= segDur && len(s.segSizes) > 0 {
		s.consumedInSeg -= segDur
		s.process.ShrinkAnon(s.segSizes[0])
		s.segSizes = s.segSizes[1:]
		s.recordChunk(segDur)
	}
}

// recordChunk appends the trace record for the segment that just
// finished playing, carrying the deltas since the previous boundary.
func (s *Session) recordChunk(segDur time.Duration) {
	s.chunks = append(s.chunks, ChunkRecord{
		Index:    s.chunkIndex,
		Rung:     s.rung,
		Duration: segDur,
		Rebuffer: s.stallTime - s.chunkStallMark,
		Rendered: s.rendered - s.chunkRenderedMark,
		Dropped:  s.dropped - s.chunkDroppedMark,
	})
	s.chunkIndex++
	s.chunkStallMark = s.stallTime
	s.chunkRenderedMark = s.rendered
	s.chunkDroppedMark = s.dropped
}

// kickDecoder advances the decode pipeline.
func (s *Session) kickDecoder() {
	if s.decoding || !s.Active() {
		return
	}
	// Skip frames whose deadline is no longer reachable: the decoder
	// resyncs to the earliest frame it can still finish on time,
	// maintaining 1× rate (§4.1). Everything in between is dropped.
	// The reachability estimate is the measured wall-clock decode time
	// (EWMA), which under memory pressure includes preemption and
	// fault waits.
	minLead := 1 + int(s.decodeWallEWMA/s.frameInterval())
	// The decode-ahead window is bounded by the codec's frame pool: a
	// stalled pipeline cannot buy arbitrary slack by skipping ahead.
	// The cap leaves room for genuinely CPU-bound decoding (where the
	// lead legitimately spans several intervals) plus two pool slots.
	cpuWall := s.estimateDecodeWall()
	cap := 2 + int(2*cpuWall/s.frameInterval())
	if minLead > cap {
		minLead = cap
	}
	if s.started && s.nextDecode < s.playFrame+minLead {
		s.nextDecode = s.playFrame + minLead
	}
	if s.nextDecode > s.playFrame+minLead+s.cfg.Lookahead {
		return // far enough ahead; vsync re-kicks
	}
	// The frame's media must be in the buffer.
	frameTime := s.playedTime + time.Duration(s.nextDecode-s.playFrame)*s.frameInterval()
	if frameTime >= s.downloadedTime || frameTime >= s.cfg.Manifest.Video.Duration {
		return // waiting for download or at end; download re-kicks
	}
	s.decoding = true
	frame := s.nextDecode
	s.nextDecode++

	cost := s.decodeCost(frame)
	started := s.dev.Clock.Now()
	epoch := len(s.switches)
	se := s.epoch
	s.decoder.Enqueue(cost, func() {
		// Decode done: the frame moves down the render chain while the
		// decoder starts the next one. Composition and SurfaceFlinger
		// each queue on their own threads; under contention the chain
		// latency is what misses vsync deadlines.
		s.decoding = false
		s.kickDecoder()
		compCost := s.cfg.Client.ComposeCost/2 + time.Duration(0.4*float64(cost))
		s.comp.Enqueue(compCost, func() {
			// Frame submission goes through the main/UI thread — the
			// thread that direct reclaim and GC stall ("an extra I/O
			// wait in any thread, including the foreground
			// application's main UI thread", §2) — then composition.
			s.process.Main().Enqueue(500*time.Microsecond, func() {
				s.sf.Enqueue(s.cfg.Client.ComposeCost, func() {
					if len(s.switches) != epoch || s.epoch != se {
						// Rung switched — or the process was killed —
						// while in flight; frame discarded. The kill
						// check matters because SurfaceFlinger is a
						// system thread that outlives the client.
						return
					}
					wall := s.dev.Clock.Now() - started
					s.decodeWallEWMA = time.Duration(0.8*float64(s.decodeWallEWMA) + 0.2*float64(wall))
					if frame > s.lastDecode {
						s.lastDecode = frame
						s.decodedQ = append(s.decodedQ, frame)
					}
				})
			})
		})
	})
}

// estimateDecodeWall seeds the wall-clock decode estimate: the
// reference cost on the device's fastest core.
func (s *Session) estimateDecodeWall() time.Duration {
	maxSpeed := 1.0
	for _, sp := range s.dev.Profile.CoreSpeeds {
		if sp > maxSpeed {
			maxSpeed = sp
		}
	}
	chain := 1.4*float64(s.cfg.Client.DecodeCost(s.rung, s.genre)) + 1.5*float64(s.cfg.Client.ComposeCost)
	return time.Duration(chain / maxSpeed)
}

// decodeCost returns the jittered decode cost for one frame: a base
// per-pixel cost, scaled by genre complexity, with periodic keyframe
// spikes.
func (s *Session) decodeCost(frame int) time.Duration {
	base := s.cfg.Client.DecodeCost(s.rung, s.genre)
	jitter := 0.85 + 0.3*s.dev.Clock.Rand().Float64()
	// Keyframes every ~2 seconds cost ~2.2x.
	if frame%(2*s.rung.FPS) == 0 {
		jitter *= 2.2
	}
	return time.Duration(float64(base) * jitter)
}

// pageFaultPump injects the memory-pressure I/O the paper traces to
// mmcqd (§5). It runs on a fixed cadence: when the client's file
// working set has been evicted, the pipeline refaults pages from
// storage (blocking the decoder in D state); when its heap was
// compressed, it swaps pages back in from zRAM (costing CPU). The
// volume scales with the cache deficit, not the frame rate — an active
// client sweeps its working set per unit time.
func (s *Session) pageFaultPump() {
	if !s.Active() || !s.started {
		return
	}
	const interval = 0.1 // seconds per pump tick
	m := s.dev.Mem
	rng := s.dev.Clock.Rand()
	if deficit := m.RefaultDeficit(); deficit > 0 {
		expected := s.cfg.Client.FaultsPerSec * deficit * interval
		n := int(expected)
		if rng.Float64() < expected-float64(n) {
			n++
		}
		// Faults hit every thread that touches evicted pages — "any
		// thread, including the foreground application's main UI
		// thread" (§2) — so they stall the whole render chain, not
		// just the decoder. Faults are demand paging: a thread that is
		// already blocked cannot raise more of them, which is the
		// natural flow control that keeps the disk queue bounded.
		targets := s.faultTargets
		for i := 0; i < n; i++ {
			th := targets[rng.Intn(len(targets))]
			if th.QueueLen() > 3 {
				continue
			}
			pages := units.Pages(8 + rng.Intn(24))
			barrier := th.EnqueueIOBarrier()
			s.dev.Disk.Read(pages, func() {
				// The refaulted pages re-enter the cache, sustaining
				// pressure — the thrashing loop of §2.
				m.FileRead(pages)
				barrier()
			})
		}
	}
	if deficit := m.RefaultDeficit(); deficit > 0 {
		// Serial dependent-fault bursts: each fault gates the next, so
		// one cold pointer chase freezes its thread for tens of ms.
		expected := s.cfg.Client.StallBurstsPerSec * deficit * interval
		if rng.Float64() < expected {
			targets := s.chaseTargets
			th := targets[rng.Intn(len(targets))]
			if th.QueueLen() > 3 {
				return
			}
			depth := 8 + rng.Intn(20)
			for i := 0; i < depth; i++ {
				pages := units.Pages(2 + rng.Intn(6))
				barrier := th.EnqueueIOBarrier()
				s.dev.Disk.Read(pages, func() {
					m.FileRead(pages)
					barrier()
				})
				th.Enqueue(50*time.Microsecond, nil)
			}
		}
	}
	if zfrac := m.AnonCompressedFraction(); zfrac > 0 {
		// Touching compressed heap pages costs decompression CPU.
		if rng.Float64() < zfrac {
			pages := units.Pages(8 + rng.Intn(16))
			s.decoder.Enqueue(time.Duration(pages)*8*time.Microsecond, func() {
				m.SwapInAnon(pages)
			})
		}
	}
}

// workerNames generates thread names for the client's worker pool.
func workerNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Worker#%d", i)
	}
	return out
}

// startWorkers runs the client's auxiliary threads (JS, layout, audio,
// network): each periodically burns CPU at its duty cycle. Under memory
// pressure these are the extra runnable threads that contend with the
// decode pipeline (Table 4's Runnable growth).
func (s *Session) startWorkers() {
	const period = 100 * time.Millisecond
	burst := time.Duration(s.cfg.Client.WorkerDuty * float64(period))
	for i := 0; i < s.cfg.Client.Workers; i++ {
		w := s.process.Thread(fmt.Sprintf("Worker#%d", i))
		if w == nil {
			continue
		}
		s.workers = append(s.workers, w)
		// Desynchronize workers across the period. The tick events are
		// retained so onKilled can cancel them: the restarted process
		// gets its own workers, and the dead generation must not keep
		// drawing from the RNG on behalf of dead threads.
		offset := time.Duration(s.dev.Clock.Rand().Int63n(int64(period)))
		s.dev.Clock.Schedule(offset, s.inEpoch(func() {
			ev := s.dev.Clock.Every(period, func() {
				if !s.Active() {
					return
				}
				jitter := 0.7 + 0.6*s.dev.Clock.Rand().Float64()
				w.Enqueue(time.Duration(float64(burst)*jitter), nil)
			})
			s.workerTicks = append(s.workerTicks, ev)
		}))
	}
}

// scheduleGC models the client's periodic garbage-collection pauses,
// which stall the pipeline for tens of milliseconds every few seconds.
func (s *Session) scheduleGC() {
	if !s.Active() {
		return
	}
	gap := 2*time.Second + time.Duration(s.dev.Clock.Rand().Intn(2500))*time.Millisecond
	s.dev.Clock.Schedule(gap, s.inEpoch(func() {
		if !s.Active() {
			return
		}
		// Browser GC pauses on low-memory devices run 40–140ms and
		// stall the media pipeline with them. The chain is epoch-bound:
		// a kill ends it, and respawn starts a fresh one, so a
		// recovered session never runs two GC loops.
		pause := time.Duration(40+s.dev.Clock.Rand().Intn(100)) * time.Millisecond
		s.decoder.Enqueue(pause, nil)
		s.process.Main().Enqueue(pause/2, nil)
		s.scheduleGC()
	}))
}

// memoryChurn models ongoing allocator activity (JS objects, media
// buffers): small allocations that, under pressure, push the main
// thread into direct reclaim. It also dirties a little page cache
// (cookies, databases, media cache) — the pages whose writeback later
// occupies mmcqd when reclaim flushes them (§2).
func (s *Session) memoryChurn() {
	if !s.Active() || s.recovering {
		// A killed-but-restarting app allocates nothing and dirties no
		// cache until the new process is up and downloading again.
		return
	}
	const churn = 3 * units.MiB
	// Pin the current process: by the time the shrink fires, a crash
	// recovery may have re-pointed s.process at a fresh one, and the
	// churn must not be un-accounted from the wrong generation.
	p := s.process
	p.GrowAnon(churn, func() {
		s.dev.Clock.Schedule(time.Second, func() {
			if !p.Dead() {
				p.ShrinkAnon(churn)
			}
		})
	})
	dirty := units.PagesOf(512 * units.KiB)
	s.dev.Mem.FileRead(dirty)
	s.dev.Mem.MarkDirty(dirty)
}

func (s *Session) samplePSS() {
	if s.process.Dead() {
		return
	}
	s.pssSamples = append(s.pssSamples, s.process.PSS())
}

// SwitchRung requests a quality change; it takes effect after the
// configured switch latency (codec reconfiguration), briefly resetting
// the decode pipeline — visible as a short dip, as in Figure 17.
func (s *Session) SwitchRung(to dash.Rung) {
	if !s.Active() || to == s.rung {
		return
	}
	s.dev.Clock.Schedule(s.cfg.SwitchLatency, s.inEpoch(func() {
		if !s.Active() || s.rung == to {
			return
		}
		from := s.rung
		s.switches = append(s.switches, SwitchEvent{At: s.dev.Clock.Now(), From: from, To: to})
		s.rung = to
		// Adjust the video heap to the new rung.
		oldHeap, newHeap := s.cfg.Client.VideoHeap(from), s.cfg.Client.VideoHeap(to)
		if newHeap > oldHeap {
			s.process.GrowAnon(newHeap-oldHeap, nil)
		} else {
			s.process.ShrinkAnon(oldHeap - newHeap)
		}
		// Codec reconfiguration stalls the decoder and resets lookahead.
		s.lastDecode = s.playFrame - 1
		s.nextDecode = s.playFrame
		s.decodedQ = nil
		s.decodeWallEWMA = s.estimateDecodeWall()
		s.decoder.Enqueue(30*time.Millisecond, func() {
			s.kickDecoder()
		})
	}))
}

func (s *Session) finish() {
	if s.done {
		return
	}
	s.done = true
	for _, fn := range s.onFinish {
		fn()
	}
}

// String summarizes the session.
func (s *Session) String() string {
	return fmt.Sprintf("session{%s %s on %s: rendered=%d dropped=%d crashed=%v}",
		s.cfg.Client.Name, s.rung, s.dev.Profile.Name, s.rendered, s.dropped, s.crashed)
}
