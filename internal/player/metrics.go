package player

import (
	"fmt"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/proc"
	"coalqoe/internal/stats"
	"coalqoe/internal/units"
)

// Metrics is the QoE summary of a session, covering every client-level
// measure the paper reports: frame drops (Figures 9, 11, 12, 16–19),
// crash occurrence (Tables 2–3, Figure 14), PSS footprint (Figure 8),
// and the rendered-FPS timeline (Figures 14–17).
type Metrics struct {
	Device string
	Client string
	Video  string
	Rung   dash.Rung

	FramesRendered int
	FramesDropped  int
	// DropRate is dropped / (rendered + dropped) over the frames whose
	// presentation slot actually arrived, in percent.
	DropRate float64
	// EffectiveDropRate additionally counts the unplayed remainder of
	// a crashed session as dropped — matching how the paper reports
	// Critical-state runs where "the video was either unplayable or
	// the video client crashed" (§4.3) as ~100% loss.
	EffectiveDropRate float64

	// Crashed is the sole source of truth for whether lmkd terminally
	// killed the client. CrashedAt is only meaningful when Crashed is
	// true: a session killed at sim time zero legitimately reports
	// CrashedAt == 0, so zero is NOT a "did not crash" sentinel.
	Crashed   bool
	CrashedAt time.Duration

	// Restarts counts crash recoveries the session survived (lmkd kill →
	// relaunch → resume); TimeToRecover is the total playback gap those
	// recoveries cost (kill to resumed presentation, including any
	// recovery still in progress at snapshot time). Retries counts
	// abandoned segment-fetch attempts (SegmentTimeout hits), and
	// FaultStalls counts rebuffer ticks that began while an injected
	// fault window was open (see internal/faults).
	Restarts      int
	TimeToRecover time.Duration
	Retries       int
	FaultStalls   int

	Stalls    int
	StallTime time.Duration

	// StartupDelay is the time from session launch to first
	// presentation — the startup-penalty input of the QoE objective.
	// Zero when playback never began.
	StartupDelay time.Duration

	// Chunks is the per-segment player trace: one record per fully
	// played chunk (see ChunkRecord). A crashed session's partial
	// final chunk is not recorded; the QoE objective accounts the
	// unplayed remainder from the expected chunk count.
	Chunks []ChunkRecord

	// FPSTimeline is the rendered frames per second, one entry per
	// playback second.
	FPSTimeline []float64

	// MeanPSS / PeakPSS / MinPSS summarize the client footprint.
	MeanPSS, PeakPSS, MinPSS units.Bytes

	// Signals counts onTrimMemory deliveries by level.
	Signals map[proc.Level]int

	// Switches lists quality changes.
	Switches []SwitchEvent
}

// Metrics snapshots the session's QoE counters.
func (s *Session) Metrics() Metrics {
	m := Metrics{
		Device:         s.dev.Profile.Name,
		Client:         s.cfg.Client.Name,
		Video:          s.cfg.Manifest.Video.Title,
		Rung:           s.rung,
		FramesRendered: s.rendered,
		FramesDropped:  s.dropped,
		Crashed:        s.crashed,
		CrashedAt:      s.crashedAt,
		Restarts:       s.restarts,
		TimeToRecover:  s.timeToRecover,
		Retries:        s.retries,
		FaultStalls:    s.faultStalls,
		Stalls:         s.stalls,
		StallTime:      s.stallTime,
		Signals:        make(map[proc.Level]int, len(s.signals)),
		Switches:       append([]SwitchEvent(nil), s.switches...),
		Chunks:         append([]ChunkRecord(nil), s.chunks...),
	}
	if s.everStarted {
		m.StartupDelay = s.startedAt - s.launchedAt
	}
	if s.recovering {
		// A snapshot taken mid-recovery still accounts the gap so far.
		m.TimeToRecover += s.dev.Clock.Now() - s.recoverStart
	}
	total := s.rendered + s.dropped
	if total > 0 {
		m.DropRate = 100 * float64(s.dropped) / float64(total)
	}
	m.EffectiveDropRate = m.DropRate
	if s.crashed {
		// Count every frame the crashed session never played as lost.
		video := s.cfg.Manifest.Video
		remaining := 0
		if video.Duration > s.playedTime {
			remaining = int((video.Duration - s.playedTime).Seconds() * float64(s.rung.FPS))
		}
		if total+remaining > 0 {
			m.EffectiveDropRate = stats.Clamp(
				100*float64(s.dropped+remaining)/float64(total+remaining), 0, 100)
		} else {
			m.EffectiveDropRate = 100
		}
	}
	maxSec := -1
	//coalvet:allow maporder max over int keys, order-insensitive
	for sec := range s.fpsBins {
		if sec > maxSec {
			maxSec = sec
		}
	}
	if s.started {
		// Extend the timeline over the full (attempted) playback span.
		span := int((s.dev.Clock.Now() - s.startedAt) / time.Second)
		if span > maxSec {
			maxSec = span
		}
	}
	for sec := 0; sec <= maxSec; sec++ {
		m.FPSTimeline = append(m.FPSTimeline, float64(s.fpsBins[sec]))
	}
	//coalvet:allow maporder key-to-key map copy, order-insensitive
	for l, n := range s.signals {
		m.Signals[l] = n
	}
	if len(s.pssSamples) > 0 {
		m.MinPSS = s.pssSamples[0]
		var sum units.Bytes
		for _, p := range s.pssSamples {
			sum += p
			if p > m.PeakPSS {
				m.PeakPSS = p
			}
			if p < m.MinPSS {
				m.MinPSS = p
			}
		}
		m.MeanPSS = sum / units.Bytes(len(s.pssSamples))
	}
	return m
}

// String renders the headline numbers.
func (m Metrics) String() string {
	crash := ""
	if m.Crashed {
		crash = fmt.Sprintf(" CRASHED@%v", m.CrashedAt.Round(time.Second))
	}
	if m.Restarts > 0 {
		crash += fmt.Sprintf(" restarts=%d(ttr=%v)", m.Restarts, m.TimeToRecover.Round(time.Second))
	}
	return fmt.Sprintf("%s/%s %s: drops=%.1f%% (%d/%d)%s pss=%s",
		m.Device, m.Client, m.Rung, m.DropRate, m.FramesDropped,
		m.FramesRendered+m.FramesDropped, crash, m.MeanPSS)
}
