package player

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/netem"
	"coalqoe/internal/units"
)

func shortVideo(d time.Duration) dash.Video {
	v := dash.TestVideos[0]
	v.Duration = d
	return v
}

func startSession(t *testing.T, dev *device.Device, res dash.Resolution, fps int, dur time.Duration, mod func(*Config)) *Session {
	t.Helper()
	manifest := dash.NewManifest(shortVideo(dur), 24, 30, 48, 60)
	rung, ok := manifest.Rung(res, fps)
	if !ok {
		t.Fatalf("no rung %v@%d", res, fps)
	}
	cfg := Config{Device: dev, Client: Firefox, Manifest: manifest, Rung: rung}
	if mod != nil {
		mod(&cfg)
	}
	return Start(cfg)
}

func TestSessionCompletesCleanly(t *testing.T) {
	dev := device.New(1, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R240p, 30, 30*time.Second, nil)
	dev.Settle(60 * time.Second)
	if s.Active() {
		t.Fatal("session still active after twice the video duration")
	}
	m := s.Metrics()
	if m.Crashed {
		t.Fatal("crashed on an idle 3 GB device")
	}
	total := m.FramesRendered + m.FramesDropped
	want := 30 * 30 // 30s at 30fps
	if total < want-30 || total > want+30 {
		t.Errorf("presented %d frames, want ~%d", total, want)
	}
	if m.DropRate > 3 {
		t.Errorf("drop rate %.1f%% on an idle flagship at 240p30", m.DropRate)
	}
}

func TestVideoHeapMonotone(t *testing.T) {
	for _, c := range []ClientProfile{Firefox, Chrome, ExoPlayer} {
		var prev units.Bytes
		for _, r := range dash.Resolutions {
			h := c.VideoHeap(dash.Rung{Resolution: r, FPS: 30})
			if h < prev {
				t.Errorf("%s heap not monotone in resolution at %v", c.Name, r)
			}
			prev = h
			h60 := c.VideoHeap(dash.Rung{Resolution: r, FPS: 60})
			if h60 <= h {
				t.Errorf("%s 60fps heap not larger at %v", c.Name, r)
			}
		}
	}
}

func TestClientFootprintOrdering(t *testing.T) {
	rung := dash.Rung{Resolution: dash.R1080p, FPS: 60}
	ff := Firefox.BasePSS + Firefox.VideoHeap(rung)
	cr := Chrome.BasePSS + Chrome.VideoHeap(rung)
	exo := ExoPlayer.BasePSS + ExoPlayer.VideoHeap(rung)
	if !(ff > cr && cr > exo) {
		t.Errorf("footprint ordering wrong: firefox=%v chrome=%v exoplayer=%v (App. B: firefox heaviest)", ff, cr, exo)
	}
}

func TestDecodeCostScaling(t *testing.T) {
	r720 := dash.Rung{Resolution: dash.R720p, FPS: 30}
	r1080 := dash.Rung{Resolution: dash.R1080p, FPS: 30}
	if Firefox.DecodeCost(r1080, dash.Travel) <= Firefox.DecodeCost(r720, dash.Travel) {
		t.Error("decode cost not increasing with resolution")
	}
	if Firefox.DecodeCost(r720, dash.Gaming) <= Firefox.DecodeCost(r720, dash.News) {
		t.Error("genre complexity not applied")
	}
}

func TestBufferCapAndDrain(t *testing.T) {
	dev := device.New(2, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R480p, 30, 3*time.Minute, func(c *Config) {
		c.BufferCapacity = 20 * time.Second
	})
	dev.Settle(40 * time.Second)
	if got := s.BufferLevel(); got > 24*time.Second {
		t.Errorf("buffer level %v exceeds 20s capacity", got)
	}
	if got := s.BufferLevel(); got < 10*time.Second {
		t.Errorf("buffer level %v never filled on a LAN", got)
	}
}

func TestSlowLinkStallsWithoutDrops(t *testing.T) {
	dev := device.New(3, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	// 1 Mbps link for a 2.5 Mbps stream: playback must stall, and
	// stalls are rebuffering, not frame drops.
	link := netem.NewLink(dev.Clock, 1*units.Mbps, 10*time.Millisecond)
	s := startSession(t, dev, dash.R480p, 30, 30*time.Second, func(c *Config) {
		c.Link = link
	})
	deadline := dev.Clock.Now() + 5*time.Minute
	for s.Active() && dev.Clock.Now() < deadline {
		dev.Settle(5 * time.Second)
	}
	m := s.Metrics()
	if m.Stalls == 0 {
		t.Error("no stalls on an underprovisioned link")
	}
	if m.DropRate > 5 {
		t.Errorf("drop rate %.1f%%: network shortage must stall, not drop", m.DropRate)
	}
}

func TestSwitchRungTakesEffect(t *testing.T) {
	dev := device.New(4, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R1080p, 60, time.Minute, nil)
	dev.Settle(10 * time.Second)
	to, _ := s.Manifest().Rung(dash.R480p, 24)
	s.SwitchRung(to)
	dev.Settle(10 * time.Second)
	if s.Rung() != to {
		t.Fatalf("rung = %v after switch, want %v", s.Rung(), to)
	}
	m := s.Metrics()
	if len(m.Switches) != 1 || m.Switches[0].To != to {
		t.Errorf("switch events = %+v", m.Switches)
	}
	// Playback continues at the new cadence.
	before := s.Metrics().FramesRendered
	dev.Settle(10 * time.Second)
	gained := s.Metrics().FramesRendered - before
	if gained < 180 || gained > 260 {
		t.Errorf("rendered %d frames in 10s at 24fps, want ~240", gained)
	}
}

func TestSwitchToSameRungIsNoop(t *testing.T) {
	dev := device.New(5, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R480p, 30, 30*time.Second, nil)
	dev.Settle(5 * time.Second)
	s.SwitchRung(s.Rung())
	dev.Settle(5 * time.Second)
	if n := len(s.Metrics().Switches); n != 0 {
		t.Errorf("%d switch events for a same-rung request", n)
	}
}

func TestCrashMetrics(t *testing.T) {
	dev := device.New(6, device.Nokia1, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R480p, 30, 2*time.Minute, nil)
	finished := false
	s.OnFinish(func() { finished = true })
	dev.Settle(20 * time.Second)
	// Kill the client the way lmkd would.
	dev.Table.Kill(dev.Table.Find(Firefox.Name), "test kill")
	if !s.Crashed() || s.Active() {
		t.Fatal("session did not register the kill")
	}
	if !finished {
		t.Error("OnFinish not called on crash")
	}
	m := s.Metrics()
	if !m.Crashed || m.CrashedAt == 0 {
		t.Errorf("metrics = %+v", m)
	}
	// The unplayed remainder counts as lost.
	if m.EffectiveDropRate < 50 {
		t.Errorf("EffectiveDropRate = %.1f%% for a session crashed at ~15s of 120s", m.EffectiveDropRate)
	}
	if m.EffectiveDropRate < m.DropRate {
		t.Error("effective drop rate must dominate the raw rate for crashes")
	}
}

func TestCrashAtTimeZero(t *testing.T) {
	// Regression: a kill at sim time zero is a legitimate crash, and
	// CrashedAt == 0 must not read as "did not crash". Crashed is the
	// sole source of truth; the JSON encoding must still emit the
	// timestamp (as a pointer, so zero survives omitempty).
	dev := device.New(13, device.Nokia1, device.Options{})
	s := startSession(t, dev, dash.R480p, 30, time.Minute, nil)
	dev.Table.Kill(dev.Table.Find(Firefox.Name), "test kill")
	m := s.Metrics()
	if !m.Crashed {
		t.Fatal("kill at t=0 not recorded as a crash")
	}
	if m.CrashedAt != 0 {
		t.Errorf("CrashedAt = %v, want 0", m.CrashedAt)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back["crashed_at_sec"]; !ok || v != 0.0 {
		t.Errorf("crashed_at_sec = %v (present=%v), want 0 to survive marshalling", v, ok)
	}
	// And the inverse: an uncrashed session must not emit the field.
	clean, _ := json.Marshal(Metrics{Device: "d", Client: "c"})
	if bytes.Contains(clean, []byte("crashed_at_sec")) {
		t.Errorf("uncrashed metrics leaked crashed_at_sec: %s", clean)
	}
}

func TestRecoveryRestartsAndResumes(t *testing.T) {
	// On an otherwise idle flagship a single injected kill is the only
	// adversity: a recovering session must relaunch, re-fetch the
	// manifest, resume from the boundary, and finish the clip.
	dev := device.New(14, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R480p, 30, time.Minute, func(c *Config) {
		c.Recovery = &RecoveryPolicy{}
	})
	dev.Settle(20 * time.Second)
	dev.Table.Kill(dev.Table.Find(Firefox.Name), "test kill")
	if !s.Recovering() {
		t.Fatal("session not recovering after a kill with Recovery set")
	}
	if s.Crashed() {
		t.Fatal("recoverable kill marked as terminal crash")
	}
	deadline := dev.Clock.Now() + 5*time.Minute
	for s.Active() && dev.Clock.Now() < deadline {
		dev.Settle(5 * time.Second)
	}
	if s.Active() {
		t.Fatal("recovering session never finished")
	}
	m := s.Metrics()
	if m.Crashed {
		t.Fatalf("session crashed instead of recovering: %v", m)
	}
	if m.Restarts < 1 {
		t.Errorf("Restarts = %d, want >= 1", m.Restarts)
	}
	if m.TimeToRecover <= 0 {
		t.Errorf("TimeToRecover = %v, want > 0", m.TimeToRecover)
	}
	// Recovery includes the 2s cold start plus manifest re-fetch and
	// buffer refill; anything under the cold start is bookkeeping error.
	if m.TimeToRecover < 2*time.Second {
		t.Errorf("TimeToRecover = %v, below the cold-start floor", m.TimeToRecover)
	}
	// The clip still played to the end: the unplayed remainder must not
	// be charged as effective drops.
	if m.EffectiveDropRate > 50 {
		t.Errorf("EffectiveDropRate = %.1f%% for a recovered session", m.EffectiveDropRate)
	}
}

func TestRecoveryMaxRestartsTerminal(t *testing.T) {
	// The kill after the last permitted restart is terminal.
	dev := device.New(15, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R480p, 30, 2*time.Minute, func(c *Config) {
		c.Recovery = &RecoveryPolicy{MaxRestarts: 1}
	})
	dev.Settle(10 * time.Second)
	dev.Table.Kill(dev.Table.Find(Firefox.Name), "kill 1")
	dev.Settle(20 * time.Second) // cold start + refill, playing again
	if s.Crashed() {
		t.Fatal("first kill should be recoverable")
	}
	dev.Table.Kill(dev.Table.Find(Firefox.Name), "kill 2")
	m := s.Metrics()
	if !m.Crashed {
		t.Fatal("kill beyond MaxRestarts must be terminal")
	}
	if m.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", m.Restarts)
	}
}

func TestRecentDropRate(t *testing.T) {
	dev := device.New(7, device.Nokia1, device.Options{})
	dev.Settle(2 * time.Second)
	// 1080p60 overloads the Nokia 1 even at Normal: recent drop rate
	// must be clearly nonzero.
	s := startSession(t, dev, dash.R1080p, 60, time.Minute, nil)
	dev.Settle(30 * time.Second)
	if got := s.RecentDropRate(5); got < 10 {
		t.Errorf("RecentDropRate = %.1f%% at 1080p60 on a Nokia 1", got)
	}
}

func TestDeterministicSessions(t *testing.T) {
	run := func() Metrics {
		dev := device.New(42, device.Nokia1, device.Options{})
		dev.Settle(2 * time.Second)
		s := startSession(t, dev, dash.R720p, 60, 30*time.Second, nil)
		dev.Settle(90 * time.Second)
		return s.Metrics()
	}
	a, b := run(), run()
	if a.FramesRendered != b.FramesRendered || a.FramesDropped != b.FramesDropped {
		t.Errorf("sessions diverged across identical seeds: %v vs %v", a, b)
	}
}

func TestPSSSampling(t *testing.T) {
	dev := device.New(8, device.Nexus5, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R1080p, 30, 30*time.Second, nil)
	dev.Settle(60 * time.Second)
	m := s.Metrics()
	if m.PeakPSS == 0 || m.MeanPSS == 0 {
		t.Fatal("no PSS samples")
	}
	if m.PeakPSS < m.MeanPSS || m.MeanPSS < m.MinPSS {
		t.Errorf("PSS ordering broken: min=%v mean=%v peak=%v", m.MinPSS, m.MeanPSS, m.PeakPSS)
	}
	// 1080p Firefox should sit in the multi-hundred-MiB range (§4.2).
	if m.PeakPSS < 250*units.MiB || m.PeakPSS > 600*units.MiB {
		t.Errorf("peak PSS = %v, want a few hundred MiB", m.PeakPSS)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Device: "d", Client: "c", DropRate: 12.5, Crashed: true, CrashedAt: 9 * time.Second}
	if s := m.String(); s == "" {
		t.Error("empty metrics string")
	}
}

func TestSingleRungManifest(t *testing.T) {
	dev := device.New(9, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	manifest := dash.NewManifest(shortVideo(20*time.Second), 30)
	rung, ok := manifest.Rung(dash.R480p, 30)
	if !ok {
		t.Fatal("no 480p30 in a 30fps ladder")
	}
	s := Start(Config{Device: dev, Client: ExoPlayer, Manifest: manifest, Rung: rung})
	dev.Settle(60 * time.Second)
	if s.Active() || s.Crashed() {
		t.Errorf("session state: active=%v crashed=%v", s.Active(), s.Crashed())
	}
}

func TestVeryShortVideo(t *testing.T) {
	dev := device.New(10, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R240p, 24, 4*time.Second, nil) // one segment
	dev.Settle(30 * time.Second)
	if s.Active() {
		t.Fatal("one-segment video never finished")
	}
	m := s.Metrics()
	total := m.FramesRendered + m.FramesDropped
	if total < 80 || total > 110 {
		t.Errorf("presented %d frames for 4s at 24fps, want ~96", total)
	}
}

func TestMidSessionLinkCollapse(t *testing.T) {
	dev := device.New(11, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	link := netem.NewLink(dev.Clock, 100*units.Mbps, 5*time.Millisecond)
	s := startSession(t, dev, dash.R480p, 30, time.Minute, func(c *Config) {
		c.Link = link
		c.BufferCapacity = 8 * time.Second
	})
	// Collapse the link after 10s: with only ~8s buffered the session
	// must rebuffer rather than drop.
	dev.Clock.Schedule(10*time.Second, func() { link.SetRate(100 * units.Kbps) })
	deadline := dev.Clock.Now() + 20*time.Minute
	for s.Active() && dev.Clock.Now() < deadline {
		dev.Settle(10 * time.Second)
	}
	m := s.Metrics()
	if m.Stalls == 0 {
		t.Error("no rebuffering after link collapse")
	}
	if m.DropRate > 5 {
		t.Errorf("drop rate %.1f%% from a network problem", m.DropRate)
	}
}

func TestMetricsJSON(t *testing.T) {
	dev := device.New(12, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R480p, 30, 12*time.Second, nil)
	dev.Settle(40 * time.Second)
	data, err := json.Marshal(s.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"device", "client", "rung", "frames_rendered", "fps_timeline", "mean_pss_mib"} {
		if _, ok := back[key]; !ok {
			t.Errorf("JSON missing %q: %s", key, data)
		}
	}
	if back["device"] != "Nexus 6P" {
		t.Errorf("device = %v", back["device"])
	}
}

func TestChunkTraceCleanSession(t *testing.T) {
	dev := device.New(14, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R240p, 30, 32*time.Second, nil)
	dev.Settle(70 * time.Second)
	if s.Active() {
		t.Fatal("session still active")
	}
	m := s.Metrics()
	segs := int(32 * time.Second / shortVideo(0).SegmentDuration)
	if len(m.Chunks) != segs {
		t.Fatalf("recorded %d chunks, want %d", len(m.Chunks), segs)
	}
	if m.StartupDelay <= 0 {
		t.Errorf("StartupDelay = %v, want > 0 (buffer fill takes time)", m.StartupDelay)
	}
	var rebuf time.Duration
	rendered, dropped := 0, 0
	for i, c := range m.Chunks {
		if c.Index != i {
			t.Errorf("chunk %d has index %d (no recovery happened)", i, c.Index)
		}
		if c.Duration != shortVideo(0).SegmentDuration {
			t.Errorf("chunk %d duration %v", i, c.Duration)
		}
		if c.Rung != m.Rung {
			t.Errorf("chunk %d rung %v, want %v (no switches)", i, c.Rung, m.Rung)
		}
		if c.Rebuffer < 0 || c.Rendered < 0 || c.Dropped < 0 {
			t.Errorf("chunk %d has negative fields: %+v", i, c)
		}
		rebuf += c.Rebuffer
		rendered += c.Rendered
		dropped += c.Dropped
	}
	if rebuf > m.StallTime {
		t.Errorf("chunk rebuffer sum %v exceeds session StallTime %v", rebuf, m.StallTime)
	}
	// Every presented frame belongs to some chunk (the final vsync that
	// ends playback may present at most one frame past the last record).
	if rendered+dropped < m.FramesRendered+m.FramesDropped-1 {
		t.Errorf("chunks account %d frames, session presented %d",
			rendered+dropped, m.FramesRendered+m.FramesDropped)
	}
}

func TestChunkTraceSkipsLostSegmentOnRecovery(t *testing.T) {
	// Force a mid-playback kill with recovery: the partial segment at
	// the playhead is lost, so the chunk indices must show a gap, not a
	// renumbering, and post-recovery records must not inherit the lost
	// chunk's counters.
	dev := device.New(15, device.Nexus6P, device.Options{})
	dev.Settle(2 * time.Second)
	s := startSession(t, dev, dash.R240p, 30, 40*time.Second, func(c *Config) {
		c.Recovery = &RecoveryPolicy{MaxRestarts: 3}
	})
	killed := false
	dev.Clock.Schedule(10*time.Second, func() {
		if s.Active() {
			killed = true
			dev.Table.Kill(dev.Table.Find(Firefox.Name), "test kill")
		}
	})
	deadline := dev.Clock.Now() + 3*time.Minute
	for s.Active() && dev.Clock.Now() < deadline {
		dev.Settle(time.Second)
	}
	if !killed {
		t.Skip("session ended before the kill fired")
	}
	m := s.Metrics()
	if m.Restarts == 0 {
		t.Fatal("kill did not trigger a recovery")
	}
	for i := 1; i < len(m.Chunks); i++ {
		if m.Chunks[i].Index <= m.Chunks[i-1].Index {
			t.Errorf("chunk indices not strictly increasing: %d then %d",
				m.Chunks[i-1].Index, m.Chunks[i].Index)
		}
	}
	// At least one boundary must have skipped the lost partial segment.
	gap := false
	last := -1
	for _, c := range m.Chunks {
		if last >= 0 && c.Index > last+1 {
			gap = true
		}
		last = c.Index
	}
	if !gap && len(m.Chunks) > 0 && m.Chunks[0].Index == 0 {
		t.Logf("chunks: %+v", m.Chunks)
		t.Error("recovery left no index gap: lost partial segment was replayed?")
	}
}
