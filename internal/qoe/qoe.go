// Package qoe maps client-level metrics to user-perceived quality.
//
// Two models are provided:
//
//   - DMOS, the differential mean-opinion-score survey of §4.3 /
//     Figure 10: participants watch a reference and a degraded clip and
//     rate the relative experience 1–5 (5 = no noticeable difference,
//     1 = very annoying). The model is calibrated so a 3% vs 35% drop
//     rate pair reproduces the paper's histogram: a strong majority
//     rating 1–2.
//   - MOS, an absolute 1–5 opinion score for a session, combining frame
//     drops, rebuffering and crashes. Used to compare ABR policies.
package qoe

import (
	"math"
	"math/rand"

	"coalqoe/internal/player"
)

// DMOSModel parameterizes the differential survey.
type DMOSModel struct {
	// Slope is the DMOS penalty per unit of drop-rate difference
	// (fraction, 0–1). Default 8.
	Slope float64
	// Noise is the rater noise standard deviation. Default 0.9.
	Noise float64
}

// DefaultDMOS is calibrated against Figure 10.
var DefaultDMOS = DMOSModel{Slope: 8, Noise: 0.9}

// Rate returns one participant's DMOS (1–5) for a test clip with
// testDrop percent frame drops against a reference with refDrop.
func (m DMOSModel) Rate(refDrop, testDrop float64, rng *rand.Rand) int {
	delta := (testDrop - refDrop) / 100
	if delta < 0 {
		delta = 0
	}
	s := 5 - m.Slope*delta + rng.NormFloat64()*m.Noise
	score := int(math.Round(s))
	if score < 1 {
		score = 1
	}
	if score > 5 {
		score = 5
	}
	return score
}

// Survey simulates n participants and returns the score histogram
// (index 0 unused; 1–5 hold counts) — Figure 10's frequency
// distribution.
func (m DMOSModel) Survey(n int, refDrop, testDrop float64, rng *rand.Rand) [6]int {
	var hist [6]int
	for i := 0; i < n; i++ {
		hist[m.Rate(refDrop, testDrop, rng)]++
	}
	return hist
}

// MeanScore returns the mean of a survey histogram.
func MeanScore(hist [6]int) float64 {
	sum, n := 0, 0
	for s := 1; s <= 5; s++ {
		sum += s * hist[s]
		n += hist[s]
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// MOS scores a finished session on the 1–5 absolute scale. Frame drops
// dominate; rebuffering adds impairment; a crash is a floor score.
func MOS(m player.Metrics) float64 {
	if m.Crashed {
		return 1
	}
	if m.FramesRendered+m.FramesDropped == 0 {
		// No frame ever reached a presentation slot: the session was
		// unplayable (never started, or stalled for its whole life).
		// Without this guard a zero-duration session would score a
		// perfect 5 on the strength of an empty drop rate.
		return 1
	}
	drop := m.EffectiveDropRate / 100
	stall := 0.0
	if n := len(m.FPSTimeline); n > 0 {
		stall = m.StallTime.Seconds() / float64(n)
	}
	s := 5 - 7*drop - 3*stall
	if s < 1 {
		s = 1
	}
	if s > 5 {
		s = 5
	}
	return s
}
