package qoe

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"coalqoe/internal/dash"
)

// The property battery. Each test states one clause of the Objective
// doc contract and hammers it with seeded random traces; a failure
// prints the trial seed so the exact trace can be replayed.

func arenaLadder() []dash.Rung { return dash.Ladder(24, 30, 48, 60) }

// randTrace builds a random but structurally valid trace over the
// ladder: up to 40 chunks, rebuffer up to 10s each, startup up to 20s.
func randTrace(rng *rand.Rand, ladder []dash.Rung) Trace {
	n := rng.Intn(40)
	t := Trace{
		Startup:     time.Duration(rng.Int63n(int64(20 * time.Second))),
		TotalChunks: n + rng.Intn(10),
		Crashed:     rng.Intn(4) == 0,
	}
	for i := 0; i < n; i++ {
		t.Chunks = append(t.Chunks, Chunk{
			Index:     i,
			Rung:      ladder[rng.Intn(len(ladder))],
			Duration:  4 * time.Second,
			Rebuffer:  time.Duration(rng.Int63n(int64(10 * time.Second))),
			Delivered: rng.Float64(),
		})
	}
	return t
}

func TestObjectiveMonotoneRebuffer(t *testing.T) {
	ladder := arenaLadder()
	obj := DefaultObjective(ladder, dash.TestVideos[0])
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		tr := randTrace(rng, ladder)
		if len(tr.Chunks) == 0 {
			continue
		}
		before := obj.Score(tr).Total
		i := rng.Intn(len(tr.Chunks))
		tr.Chunks[i].Rebuffer += time.Duration(rng.Int63n(int64(8 * time.Second)))
		after := obj.Score(tr).Total
		if after > before {
			t.Fatalf("trial %d: more rebuffer raised QoE: %.6f -> %.6f", trial, before, after)
		}
	}
}

func TestObjectiveMonotoneStartup(t *testing.T) {
	ladder := arenaLadder()
	obj := DefaultObjective(ladder, dash.TestVideos[0])
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		tr := randTrace(rng, ladder)
		before := obj.Score(tr).Total
		tr.Startup += time.Duration(rng.Int63n(int64(15 * time.Second)))
		after := obj.Score(tr).Total
		if after > before {
			t.Fatalf("trial %d: longer startup raised QoE: %.6f -> %.6f", trial, before, after)
		}
	}
}

func TestObjectiveMonotoneDelivered(t *testing.T) {
	ladder := arenaLadder()
	obj := DefaultObjective(ladder, dash.TestVideos[0])
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		tr := randTrace(rng, ladder)
		if len(tr.Chunks) == 0 {
			continue
		}
		before := obj.Score(tr).Total
		i := rng.Intn(len(tr.Chunks))
		d := tr.Chunks[i].Delivered + rng.Float64()*(1-tr.Chunks[i].Delivered)
		tr.Chunks[i].Delivered = d
		after := obj.Score(tr).Total
		if after < before-1e-9 {
			t.Fatalf("trial %d: higher delivered fraction lowered QoE: %.6f -> %.6f", trial, before, after)
		}
	}
}

// TestObjectiveMonotoneChunkQuality pins the conditional clause: with
// SmoothnessPenalty ≤ 1/2, EnergyPenalty == 0 and full delivery,
// upgrading one chunk to a higher-bitrate rung never lowers the total
// (the quality gain is ≥ the two smoothness deltas it can worsen).
func TestObjectiveMonotoneChunkQuality(t *testing.T) {
	ladder := arenaLadder()
	obj := &Objective{
		Quality:           NewQualityTable(ladder, 0, dash.Travel),
		StartupPenalty:    5,
		RebufferPenalty:   25,
		SmoothnessPenalty: 0.5,
		CrashPenalty:      100,
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		tr := randTrace(rng, ladder)
		if len(tr.Chunks) == 0 {
			continue
		}
		for i := range tr.Chunks {
			tr.Chunks[i].Delivered = 1
		}
		before := obj.Score(tr).Total
		i := rng.Intn(len(tr.Chunks))
		// Upgrade to any rung of ≥ bitrate (the log curve is monotone
		// in bitrate, so ≥ bitrate means ≥ perceptual quality).
		cand := make([]dash.Rung, 0, len(ladder))
		for _, r := range ladder {
			if r.Bitrate >= tr.Chunks[i].Rung.Bitrate {
				cand = append(cand, r)
			}
		}
		tr.Chunks[i].Rung = cand[rng.Intn(len(cand))]
		after := obj.Score(tr).Total
		if after < before-1e-9 {
			t.Fatalf("trial %d: upgrading chunk %d lowered QoE: %.6f -> %.6f", trial, i, before, after)
		}
	}
}

// TestObjectiveReorderInvariance pins the stated invariance: zero
// smoothness penalty plus an index-flat table makes the score a
// function of the chunk multiset, not the play order.
func TestObjectiveReorderInvariance(t *testing.T) {
	ladder := arenaLadder()
	obj := &Objective{
		Quality:           NewQualityTable(ladder, 0, dash.Travel), // flat: chunks == 0
		StartupPenalty:    5,
		RebufferPenalty:   25,
		SmoothnessPenalty: 0,
		DeliveredExponent: 2,
		CrashPenalty:      100,
		EnergyPenalty:     0.25,
		Energy:            DefaultEnergy,
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		tr := randTrace(rng, ladder)
		before := obj.Score(tr).Total
		shuffled := tr
		shuffled.Chunks = append([]Chunk(nil), tr.Chunks...)
		rng.Shuffle(len(shuffled.Chunks), func(i, j int) {
			shuffled.Chunks[i], shuffled.Chunks[j] = shuffled.Chunks[j], shuffled.Chunks[i]
		})
		after := obj.Score(shuffled).Total
		if diff := math.Abs(after - before); diff > 1e-9*(1+math.Abs(before)) {
			t.Fatalf("trial %d: reorder changed QoE: %.9f -> %.9f", trial, before, after)
		}
	}
}

// TestObjectiveReorderSensitiveWithSmoothness is the negative control:
// with a positive smoothness penalty, order must matter for at least
// some trace — otherwise the invariance test above proves nothing.
func TestObjectiveReorderSensitiveWithSmoothness(t *testing.T) {
	ladder := arenaLadder()
	obj := DefaultObjective(ladder, dash.TestVideos[0])
	low, high := ladder[0], ladder[len(ladder)-1]
	mk := func(rungs ...dash.Rung) Trace {
		tr := Trace{TotalChunks: len(rungs)}
		for i, r := range rungs {
			tr.Chunks = append(tr.Chunks, Chunk{Index: i, Rung: r, Duration: 4 * time.Second, Delivered: 1})
		}
		return tr
	}
	// low,low,high,high has one switch; low,high,low,high has three.
	calm := obj.Score(mk(low, low, high, high)).Total
	flappy := obj.Score(mk(low, high, low, high)).Total
	if !(flappy < calm) {
		t.Fatalf("flapping order should score below calm order: calm=%.4f flappy=%.4f", calm, flappy)
	}
}

func TestObjectiveBounds(t *testing.T) {
	ladder := arenaLadder()
	obj := DefaultObjective(ladder, dash.TestVideos[0])
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		tr := randTrace(rng, ladder)
		got := obj.Score(tr).Total
		if best := obj.Best(); got > best+1e-9 {
			t.Fatalf("trial %d: QoE %.6f above analytic best %.6f", trial, got, best)
		}
	}
	// The lower bound is stated over the penalties-only family (no
	// smoothness/energy, which Worst does not model): any trace whose
	// startup and total rebuffer fit the caps scores at or above it.
	penOnly := &Objective{
		Quality:         NewQualityTable(ladder, 0, dash.Travel),
		StartupPenalty:  5,
		RebufferPenalty: 25,
		CrashPenalty:    100,
	}
	const startupCap, rebufferCap = 20 * time.Second, 40 * 10 * time.Second
	worst := penOnly.Worst(startupCap, rebufferCap)
	for trial := 0; trial < 300; trial++ {
		tr := randTrace(rng, ladder)
		got := penOnly.Score(tr).Total
		if got < worst-1e-9 {
			t.Fatalf("trial %d: QoE %.6f below analytic worst %.6f", trial, got, worst)
		}
	}
}

// TestObjectiveHostileWeights: NaN/Inf/negative weights must sanitize
// to finite scores, never poison the leaderboard.
func TestObjectiveHostileWeights(t *testing.T) {
	ladder := arenaLadder()
	nan := math.NaN()
	obj := &Objective{
		Quality:           NewQualityTable(ladder, 17, dash.Sports),
		StartupPenalty:    nan,
		RebufferPenalty:   math.Inf(1),
		SmoothnessPenalty: -3,
		DeliveredExponent: nan,
		CrashPenalty:      -1,
		EnergyPenalty:     math.Inf(1),
		Energy:            DefaultEnergy,
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		tr := randTrace(rng, ladder)
		tr.Chunks = append(tr.Chunks, Chunk{Index: -5, Rung: dash.Rung{}, Duration: -time.Second, Rebuffer: -time.Second, Delivered: nan})
		b := obj.Score(tr)
		for name, v := range map[string]float64{
			"Quality": b.Quality, "Startup": b.Startup, "Rebuffer": b.Rebuffer,
			"Smoothness": b.Smoothness, "Energy": b.Energy, "Crash": b.Crash, "Total": b.Total,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: %s = %v with hostile weights", trial, name, v)
			}
		}
	}
}

// TestQualityTableCrossRungMonotone: sharing the per-chunk modulation
// across rungs must preserve "more bitrate is never worth less" at
// every chunk index.
func TestQualityTableCrossRungMonotone(t *testing.T) {
	ladder := arenaLadder()
	table := NewQualityTable(ladder, 45, dash.Sports)
	// The ladder is resolution-major, not bitrate-sorted (240p60 can
	// out-bitrate 360p24), so compare every bitrate-ordered pair.
	for i := 0; i < 45; i++ {
		for _, lo := range ladder {
			for _, hi := range ladder {
				if lo.Bitrate > hi.Bitrate {
					continue
				}
				if table.At(i, lo) > table.At(i, hi)+1e-12 {
					t.Fatalf("chunk %d: pq(%s)=%.4f > pq(%s)=%.4f", i, lo, table.At(i, lo), hi, table.At(i, hi))
				}
			}
		}
	}
}
