package qoe

import (
	"math/rand"
	"testing"
	"time"

	"coalqoe/internal/player"
)

func TestDMOSMatchesPaperShape(t *testing.T) {
	// The paper's survey: 99 participants, reference at 3% drops vs
	// test at 35%; 60 users rated 1 or 2 and the vast majority noticed
	// a difference (Figure 10).
	rng := rand.New(rand.NewSource(42))
	hist := DefaultDMOS.Survey(99, 3, 35, rng)
	low := hist[1] + hist[2]
	if low < 45 || low > 75 {
		t.Errorf("ratings of 1-2 = %d, want ~60 (paper)", low)
	}
	noticed := 99 - hist[5]
	if noticed < 80 {
		t.Errorf("%d/99 noticed a difference, want vast majority", noticed)
	}
	mean := MeanScore(hist)
	if mean < 1.8 || mean > 3.0 {
		t.Errorf("mean DMOS = %v, want ~2.2-2.6", mean)
	}
}

func TestDMOSIdenticalClips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hist := DefaultDMOS.Survey(99, 3, 3, rng)
	if MeanScore(hist) < 4.2 {
		t.Errorf("identical clips scored %v, want ~4.5+", MeanScore(hist))
	}
}

func TestDMOSMonotoneInDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prev := 5.0
	for _, drop := range []float64{5, 20, 40, 60} {
		m := MeanScore(DefaultDMOS.Survey(500, 3, drop, rng))
		if m > prev+0.1 {
			t.Errorf("DMOS not monotone: %v%% drops scored %v > previous %v", drop, m, prev)
		}
		prev = m
	}
}

func TestDMOSBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		s := DefaultDMOS.Rate(0, 100, rng)
		if s < 1 || s > 5 {
			t.Fatalf("score %d out of bounds", s)
		}
	}
}

func TestMOS(t *testing.T) {
	perfect := player.Metrics{FramesRendered: 3600, FPSTimeline: make([]float64, 60)}
	if got := MOS(perfect); got != 5 {
		t.Errorf("perfect session MOS = %v, want 5", got)
	}
	crashed := player.Metrics{Crashed: true}
	if got := MOS(crashed); got != 1 {
		t.Errorf("crashed session MOS = %v, want 1", got)
	}
	droppy := player.Metrics{FramesRendered: 1800, FramesDropped: 1800,
		EffectiveDropRate: 50, FPSTimeline: make([]float64, 60)}
	if got := MOS(droppy); got <= 1 || got >= 3 {
		t.Errorf("50%% drops MOS = %v, want in (1,3)", got)
	}
	stally := player.Metrics{FramesRendered: 1800, StallTime: 30 * time.Second,
		FPSTimeline: make([]float64, 60)}
	if got := MOS(stally); got >= 5 {
		t.Errorf("stalling session MOS = %v, want < 5", got)
	}
}

func TestMOSBoundaries(t *testing.T) {
	// Zero-duration session: never presented a frame, never crashed.
	// Before the FramesRendered+FramesDropped guard this scored a
	// perfect 5.
	zero := player.Metrics{}
	if got := MOS(zero); got != 1 {
		t.Errorf("zero-duration session MOS = %v, want 1", got)
	}
	// All frames dropped: worst playable session, must floor at 1.
	allDropped := player.Metrics{FramesDropped: 3600, DropRate: 100,
		EffectiveDropRate: 100, FPSTimeline: make([]float64, 60)}
	if got := MOS(allDropped); got != 1 {
		t.Errorf("all-dropped session MOS = %v, want 1", got)
	}
	// A single rendered frame is playable — strictly above the floor
	// only if drops and stalls allow; here nothing else is wrong.
	oneFrame := player.Metrics{FramesRendered: 1, FPSTimeline: make([]float64, 1)}
	if got := MOS(oneFrame); got != 5 {
		t.Errorf("one clean frame MOS = %v, want 5", got)
	}
}

func TestMeanScoreEmpty(t *testing.T) {
	if MeanScore([6]int{}) != 0 {
		t.Error("empty histogram mean should be 0")
	}
}
