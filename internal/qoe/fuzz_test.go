package qoe

import (
	"math"
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/units"
)

// FuzzObjective feeds arbitrary traces — decoded from raw bytes so the
// fuzzer owns the full input space, including hostile values — through
// the default objective and requires every component of the score to
// stay finite and under the analytic ceiling. The seed corpus covers
// the boundary family: empty trace, crash-only, single chunk, rebuffer
// storm, zero-delivered chunks.
func FuzzObjective(f *testing.F) {
	f.Add(uint16(0), int64(0), false, []byte{})
	f.Add(uint16(1), int64(0), true, []byte{})
	f.Add(uint16(15), int64(2500), false, []byte{3, 0, 100})
	f.Add(uint16(15), int64(0), false, []byte{23, 200, 100, 23, 200, 100, 23, 200, 100})
	f.Add(uint16(45), int64(60000), true, []byte{0, 0, 0, 12, 8, 50, 255, 255, 0})
	f.Fuzz(func(t *testing.T, totalChunks uint16, startupMs int64, crashed bool, raw []byte) {
		ladder := dash.Ladder(24, 30, 48, 60)
		obj := DefaultObjective(ladder, dash.TestVideos[0])
		tr := Trace{
			Startup:     time.Duration(startupMs) * time.Millisecond,
			TotalChunks: int(totalChunks),
			Crashed:     crashed,
		}
		// Each chunk is a 3-byte record: rung selector, rebuffer
		// deciseconds, delivered percent (values > 100 probe the
		// clamp).
		for i := 0; i+2 < len(raw) && i < 3*256; i += 3 {
			tr.Chunks = append(tr.Chunks, Chunk{
				Index:     i / 3,
				Rung:      ladder[int(raw[i])%len(ladder)],
				Duration:  4 * time.Second,
				Rebuffer:  time.Duration(raw[i+1]) * 100 * time.Millisecond,
				Delivered: float64(raw[i+2]) / 100,
			})
		}
		b := obj.Score(tr)
		for name, v := range map[string]float64{
			"Quality": b.Quality, "Startup": b.Startup, "Rebuffer": b.Rebuffer,
			"Smoothness": b.Smoothness, "Energy": b.Energy, "Crash": b.Crash, "Total": b.Total,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s = %v", name, v)
			}
		}
		if best := obj.Best(); b.Total > best+1e-9 {
			t.Fatalf("Total %.9f above analytic best %.9f", b.Total, best)
		}
		if b.Quality < 0 || b.Startup < 0 || b.Rebuffer < 0 || b.Smoothness < 0 || b.Energy < 0 || b.Crash < 0 {
			t.Fatalf("negative component in %+v", b)
		}
	})
}

// FuzzQualityTable hammers the table lookup with off-table rungs and
// arbitrary indexes: finite, in [0, Max], for any input.
func FuzzQualityTable(f *testing.F) {
	f.Add(int64(0), uint32(0), uint8(30), int32(0))
	f.Add(int64(12_000_000), uint32(1920), uint8(60), int32(-7))
	f.Add(int64(-1), uint32(0xffffffff), uint8(255), int32(1<<30))
	f.Fuzz(func(t *testing.T, bitrate int64, width uint32, fps uint8, index int32) {
		ladder := dash.Ladder(24, 30, 48, 60)
		table := NewQualityTable(ladder, 45, dash.Sports)
		r := dash.Rung{
			Resolution: dash.Resolution(width),
			FPS:        int(fps),
			Bitrate:    units.BitsPerSecond(bitrate),
		}
		q := table.At(int(index), r)
		if math.IsNaN(q) || math.IsInf(q, 0) {
			t.Fatalf("At(%d, %v) = %v", index, r, q)
		}
		if q < 0 || q > table.Max()+1e-9 {
			t.Fatalf("At(%d, %v) = %v outside [0, %v]", index, r, q, table.Max())
		}
	})
}
