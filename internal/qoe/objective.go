package qoe

import (
	"math"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/player"
	"coalqoe/internal/units"
)

// Objective is the composable session QoE model the arena ranks ABR
// algorithms by. It follows the classic per-chunk contract (perceptual
// quality of the chunk, minus a rebuffer penalty, minus a smoothness
// penalty on the quality delta to the previous chunk), extended with a
// startup-delay penalty, a crash penalty, and an energy term driven by
// decode resolution and radio-active time — so adaptation can trade
// quality against battery as well as memory.
//
// Guaranteed shape (the property battery pins these):
//
//   - Total is monotone non-increasing in rebuffer time and in startup
//     delay (penalty weights are clamped non-negative).
//   - Total is monotone non-decreasing in a chunk's delivered fraction,
//     and — when SmoothnessPenalty ≤ 1/2 and EnergyPenalty == 0 — in
//     the chunk's perceptual quality.
//   - With SmoothnessPenalty == 0 and an index-flat quality table, Total
//     is invariant under reordering of the chunk trace.
//   - Total is bounded by the analytic best case (every expected chunk
//     played at top table quality, no penalties) and worst case
//     (nothing played, maximal penalties).
type Objective struct {
	// Quality maps (chunk index, rung) to perceptual quality. A nil
	// table scores every chunk 0 (penalties still apply).
	Quality *QualityTable

	// StartupPenalty is QoE lost per second of startup delay.
	StartupPenalty float64
	// RebufferPenalty is QoE lost per second of mid-stream stall.
	RebufferPenalty float64
	// SmoothnessPenalty scales |pq(prev) − pq(cur)| at every switch.
	SmoothnessPenalty float64
	// DeliveredExponent shapes how the delivered-frame fraction scales
	// a chunk's quality: quality × delivered^exp. 1 is linear; the
	// default objective uses 2 so heavy frame loss hurts superlinearly
	// — the §4.3 survey's steep annoyance slope means a 60%-drop
	// session is unwatchable, not 40% as good. Values ≤ 0 (and NaN)
	// fall back to 1.
	DeliveredExponent float64
	// CrashPenalty is charged once if the session crashed terminally.
	CrashPenalty float64
	// EnergyPenalty is QoE lost per joule spent decoding + radio.
	EnergyPenalty float64
	// Energy models the power cost of a chunk; the zero model costs 0 J.
	Energy EnergyModel
}

// DefaultObjective returns the arena's reference weighting for the
// given content: rebuffering dominates (the paper's §4.3 raters
// tolerate resolution loss far better than stalls), startup and
// smoothness matter, energy is a tiebreaker.
func DefaultObjective(ladder []dash.Rung, video dash.Video) *Objective {
	return &Objective{
		Quality:           NewQualityTable(ladder, video.Segments(), video.Genre),
		StartupPenalty:    5,
		RebufferPenalty:   25,
		SmoothnessPenalty: 0.5,
		DeliveredExponent: 2,
		CrashPenalty:      100,
		EnergyPenalty:     0.25,
		Energy:            DefaultEnergy,
	}
}

// Chunk is one fully played segment, as seen by the objective.
type Chunk struct {
	// Index is the segment position in the video (gaps mark segments
	// lost to a crash-recovery resync).
	Index int
	// Rung is the ladder rung the chunk was fetched and decoded at.
	Rung dash.Rung
	// Duration is the chunk's play time; Rebuffer is the stall time
	// accrued while it was on screen.
	Duration, Rebuffer time.Duration
	// Delivered is the fraction of the chunk's frames actually
	// presented (1 − drop rate); it scales perceptual quality so a
	// chunk decoded under memory pressure is worth less than its rung.
	Delivered float64
}

// Trace is a whole session from the objective's point of view.
type Trace struct {
	// Startup is the launch-to-first-frame delay.
	Startup time.Duration
	// Chunks are the fully played segments in play order.
	Chunks []Chunk
	// TotalChunks is the expected segment count for the content; the
	// shortfall versus len(Chunks) — segments never played because the
	// session stalled out or crashed — scores zero quality.
	TotalChunks int
	// Crashed reports a terminal lmkd kill.
	Crashed bool
}

// TraceFrom adapts a player session summary to an objective trace.
func TraceFrom(m player.Metrics, video dash.Video) Trace {
	t := Trace{
		Startup:     m.StartupDelay,
		TotalChunks: video.Segments(),
		Crashed:     m.Crashed,
		Chunks:      make([]Chunk, 0, len(m.Chunks)),
	}
	for _, c := range m.Chunks {
		delivered := 1.0
		if total := c.Rendered + c.Dropped; total > 0 {
			delivered = float64(c.Rendered) / float64(total)
		}
		t.Chunks = append(t.Chunks, Chunk{
			Index:     c.Index,
			Rung:      c.Rung,
			Duration:  c.Duration,
			Rebuffer:  c.Rebuffer,
			Delivered: delivered,
		})
	}
	return t
}

// Breakdown itemizes a score: Total = Quality − Startup − Rebuffer −
// Smoothness − Energy − Crash, every component normalized per expected
// chunk so sessions over different content lengths compare.
type Breakdown struct {
	Quality    float64
	Startup    float64
	Rebuffer   float64
	Smoothness float64
	Energy     float64
	Crash      float64
	Total      float64
}

// Compute scores a single chunk against its predecessor (nil for the
// first chunk of a session). The returned Breakdown carries no startup
// or crash component — those are session-level and applied by Score.
func (o *Objective) Compute(c Chunk, prev *Chunk) Breakdown {
	var b Breakdown
	expo := o.DeliveredExponent
	if !(expo > 0) { // also catches NaN
		expo = 1
	}
	b.Quality = o.pq(c.Index, c.Rung) * math.Pow(clamp01(c.Delivered), expo)
	b.Rebuffer = nonneg(o.RebufferPenalty) * clampSec(c.Rebuffer)
	if prev != nil {
		b.Smoothness = nonneg(o.SmoothnessPenalty) *
			math.Abs(o.pq(prev.Index, prev.Rung)-o.pq(c.Index, c.Rung))
	}
	b.Energy = nonneg(o.EnergyPenalty) * o.Energy.ChunkJoules(c.Rung, c.Duration)
	b.Total = b.Quality - b.Rebuffer - b.Smoothness - b.Energy
	return b
}

// Score folds a session trace into its QoE breakdown.
func (o *Objective) Score(t Trace) Breakdown {
	var b Breakdown
	var prev *Chunk
	for i := range t.Chunks {
		cb := o.Compute(t.Chunks[i], prev)
		b.Quality += cb.Quality
		b.Rebuffer += cb.Rebuffer
		b.Smoothness += cb.Smoothness
		b.Energy += cb.Energy
		prev = &t.Chunks[i]
	}
	b.Startup = nonneg(o.StartupPenalty) * clampSec(t.Startup)
	if t.Crashed {
		b.Crash = nonneg(o.CrashPenalty)
	}
	// Normalize per expected chunk: segments never played contribute
	// zero quality but still count in the denominator, so a session
	// that crashes halfway scores roughly half the quality of one that
	// finishes — on top of the crash penalty itself.
	n := t.TotalChunks
	if n < len(t.Chunks) {
		n = len(t.Chunks)
	}
	if n < 1 {
		n = 1
	}
	inv := 1 / float64(n)
	b.Quality *= inv
	b.Startup *= inv
	b.Rebuffer *= inv
	b.Smoothness *= inv
	b.Energy *= inv
	b.Crash *= inv
	b.Total = b.Quality - b.Startup - b.Rebuffer - b.Smoothness - b.Energy - b.Crash
	return b
}

// Best returns the analytic upper bound of Score over traces with the
// given expected chunk count: every chunk played at the table's top
// quality with full delivery and zero penalties of any kind.
func (o *Objective) Best() float64 {
	if o.Quality == nil {
		return 0
	}
	return o.Quality.Max()
}

// Worst returns the analytic lower bound of Score for traces whose
// per-chunk rebuffer and startup delay do not exceed the given caps:
// nothing played, maximal startup, every expected chunk's worth of
// rebuffer, a crash. (Unbounded rebuffer has no finite floor.)
func (o *Objective) Worst(startupCap, rebufferCap time.Duration) float64 {
	return -nonneg(o.StartupPenalty)*clampSec(startupCap) -
		nonneg(o.RebufferPenalty)*clampSec(rebufferCap) -
		nonneg(o.CrashPenalty)
}

// pq looks up perceptual quality, treating a nil table as zero.
func (o *Objective) pq(index int, r dash.Rung) float64 {
	if o.Quality == nil {
		return 0
	}
	return o.Quality.At(index, r)
}

// QualityTable maps (chunk index, rung) to a perceptual quality value
// in [0, 100]. The base curve is logarithmic in bitrate — the standard
// diminishing-returns shape — and a deterministic per-chunk modulation
// shared across rungs models content complexity varying over the
// video. Sharing the modulation across rungs preserves cross-rung
// monotonicity at every chunk: a higher-bitrate rung is never worth
// less than a lower one at the same position.
type QualityTable struct {
	base map[dash.Rung]float64
	// mod is the per-chunk multiplier; empty means flat (index-free).
	mod []float64
	// b0 and bmax anchor the log curve for off-table rungs.
	b0, bmax float64
	max      float64
}

// NewQualityTable builds the table for a ladder and content length.
// chunks ≤ 0 yields a flat table (no per-chunk modulation) — the form
// the reorder-invariance property is stated over.
func NewQualityTable(ladder []dash.Rung, chunks int, genre dash.Genre) *QualityTable {
	t := &QualityTable{base: make(map[dash.Rung]float64, len(ladder))}
	for _, r := range ladder {
		b := float64(r.Bitrate)
		if b <= 0 {
			continue
		}
		if t.b0 == 0 || b < t.b0 {
			t.b0 = b
		}
		if b > t.bmax {
			t.bmax = b
		}
	}
	if t.b0 == 0 {
		t.b0, t.bmax = 1, 1
	}
	for _, r := range ladder {
		q := t.curve(float64(r.Bitrate))
		t.base[r] = q
		if q > t.max {
			t.max = q
		}
	}
	// Deterministic modulation in [1−a/2, 1+a/2), a scaled by genre
	// complexity, from the same xorshift-style mix dash uses for VBR
	// segment sizes.
	amp := 0.15 * genre.Complexity()
	for i := 0; i < chunks; i++ {
		h := uint64(i+1) * 0x9e3779b97f4a7c15
		h ^= uint64(genre+1) * 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 33
		u := float64(h%10000)/10000 - 0.5
		t.mod = append(t.mod, 1+amp*u)
	}
	return t
}

// curve is the base log quality: 0 below the ladder floor, 100 at the
// ladder ceiling, concave in between.
func (t *QualityTable) curve(bits float64) float64 {
	if bits <= 0 || math.IsNaN(bits) {
		return 0
	}
	denom := math.Log(1 + t.bmax/t.b0)
	if denom <= 0 {
		return 100
	}
	q := 100 * math.Log(1+bits/t.b0) / denom
	if q < 0 {
		return 0
	}
	if q > 100 {
		return 100
	}
	return q
}

// At returns the perceptual quality of rung r at chunk index i.
func (t *QualityTable) At(i int, r dash.Rung) float64 {
	q, ok := t.base[r]
	if !ok {
		q = t.curve(float64(r.Bitrate))
	}
	if len(t.mod) > 0 {
		if i < 0 {
			i = -i
		}
		q *= t.mod[i%len(t.mod)]
	}
	return q
}

// Max returns the largest base quality in the table times the largest
// modulation — the analytic per-chunk ceiling.
func (t *QualityTable) Max() float64 {
	m := 1.0
	for _, f := range t.mod {
		if f > m {
			m = f
		}
	}
	return t.max * m
}

// EnergyModel prices a chunk's decode and radio energy. Decode power
// scales with pixel throughput (resolution × frame rate), after the
// decoding-resolution energy studies in PAPERS.md; radio power is
// charged for the time the radio stays active to fetch the chunk's
// bytes at RadioRate.
type EnergyModel struct {
	// DecodeBaseW is the floor decode/display draw in watts.
	DecodeBaseW float64
	// DecodePerMPix60W is the extra draw per megapixel of frame area
	// at 60 FPS (scaled linearly with actual FPS).
	DecodePerMPix60W float64
	// RadioW is the radio-active draw; RadioRate is the link rate the
	// radio sustains while fetching (higher rate → shorter active
	// time for the same bytes).
	RadioW    float64
	RadioRate units.BitsPerSecond
}

// DefaultEnergy approximates a mid-range handset: ~0.6 W base decode,
// ~0.9 W per 60fps-megapixel, ~1.1 W radio draining at 25 Mbps.
var DefaultEnergy = EnergyModel{
	DecodeBaseW:      0.6,
	DecodePerMPix60W: 0.9,
	RadioW:           1.1,
	RadioRate:        25 * units.Mbps,
}

// ChunkJoules returns the energy cost of playing one chunk at rung r.
func (e EnergyModel) ChunkJoules(r dash.Rung, d time.Duration) float64 {
	secs := clampSec(d)
	mpix := float64(r.Resolution.Pixels()) / 1e6
	fps := float64(r.FPS)
	if fps < 0 {
		fps = 0
	}
	decode := (nonneg(e.DecodeBaseW) + nonneg(e.DecodePerMPix60W)*mpix*fps/60) * secs
	radio := 0.0
	if e.RadioRate > 0 && r.Bitrate > 0 {
		radio = nonneg(e.RadioW) * float64(r.Bitrate) * secs / float64(e.RadioRate)
	}
	return decode + radio
}

// clampSec converts a duration to non-negative seconds.
func clampSec(d time.Duration) float64 {
	if d < 0 {
		return 0
	}
	return d.Seconds()
}

// clamp01 pins x into [0, 1], mapping NaN to 0.
func clamp01(x float64) float64 {
	if !(x >= 0) { // also catches NaN
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// nonneg sanitizes a weight: negative, NaN or Inf become 0.
func nonneg(w float64) float64 {
	if !(w >= 0) || math.IsInf(w, 1) {
		return 0
	}
	return w
}
