package loadgen

import (
	"bytes"
	"testing"
	"time"

	"coalqoe/internal/cdn"
	"coalqoe/internal/dash"
	"coalqoe/internal/faults"
)

// collapseConfig is the shared scenario of the A/B acceptance test: a
// 1000-player fleet whose steady demand (250 req/s) fits the server's
// capacity (~320 req/s at the top rung) with room to spare, hit by a
// 5-second total outage a quarter of the way in. What happens after
// the outage ends is the experiment.
func collapseConfig(protect *SimProtections) SimConfig {
	return SimConfig{
		Players:  1000,
		Tenants:  []string{"gold", "bronze"},
		Seed:     7,
		Duration: 60 * time.Second,
		SegDur:   4 * time.Second,
		Timeout:  1500 * time.Millisecond,
		RTT:      time.Millisecond,
		// The rebuffer sit-out after a failed fetch: identical in both
		// arms — the player model is the control, the server/client
		// defenses are the variable. A short pause models an impatient
		// player, the kind whose retry pressure makes storms possible.
		ErrorPause: 250 * time.Millisecond,
		Retry:      dash.RetryPolicy{Attempts: 4, Backoff: 100 * time.Millisecond, BackoffCap: 800 * time.Millisecond},
		Ladder: []SimRung{
			{ID: "240p30", Bytes: 250_000},
			{ID: "480p30", Bytes: 500_000},
			{ID: "1080p60", Bytes: 1_000_000},
		},
		Capacity:           16,
		ServiceFloor:       25 * time.Millisecond,
		ServiceBytesPerSec: 40 << 20,
		Faults: []faults.Window{
			{Kind: faults.NetOutage, Start: 10 * time.Second, Duration: 5 * time.Second, Severity: 1},
		},
		Protect: protect,
		Workers: 4,
	}
}

func fullProtections() *SimProtections {
	return &SimProtections{
		MaxQueue:   64,
		RetryAfter: time.Second,
		Quotas: []cdn.TenantQuota{
			{Name: "gold", Rate: 140, Burst: 140},
			{Name: "bronze", Rate: 140, Burst: 140},
		},
		BrownoutEnter:    0.1,
		BrownoutDemote:   2,
		CancelOnTimeout:  true,
		RetryBudget:      5,
		BreakerThreshold: 5,
		BreakerCooldown:  2 * time.Second,
		Jitter:           true,
	}
}

// TestSimMetastableCollapseAB is the acceptance A/B: with protections
// off, the post-outage retry wave drives queue wait past the client
// timeout and the fleet never recovers — every service is doomed work
// and tail goodput is zero. With the full resilience layer on, the
// same fleet under the same fault sheds, degrades, decorrelates, and
// recovers. CI runs this under -race.
func TestSimMetastableCollapseAB(t *testing.T) {
	unprot, err := RunSim(collapseConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	prot, err := RunSim(collapseConfig(fullProtections()))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unprotected: attempts=%d served=%d doomed=%d bytes=%d tail(req=%d err=%d bytes=%d) p99=%.0fµs",
		unprot.Attempts, unprot.Served, unprot.Doomed, unprot.Bytes,
		unprot.TailRequests, unprot.TailErrors, unprot.TailBytes, unprot.Latency.Quantile(99))
	t.Logf("protected:   attempts=%d served=%d doomed=%d bytes=%d tail(req=%d err=%d bytes=%d) p99=%.0fµs",
		prot.Attempts, prot.Served, prot.Doomed, prot.Bytes,
		prot.TailRequests, prot.TailErrors, prot.TailBytes, prot.Latency.Quantile(99))

	// --- Unprotected arm: metastable collapse. ---
	// The recovery window (last 15s, long after the 5s outage ended)
	// delivers nothing: the queue outgrew the client timeout and every
	// completed service was for a player that had already given up.
	if unprot.TailBytes != 0 {
		t.Errorf("unprotected tail goodput = %d bytes, want 0 (collapse should be sustained)", unprot.TailBytes)
	}
	if unprot.TailRequests == 0 || unprot.TailErrors != unprot.TailRequests {
		t.Errorf("unprotected tail: %d/%d errors, want all of a busy tail failing",
			unprot.TailErrors, unprot.TailRequests)
	}
	if unprot.Doomed < 1000 {
		t.Errorf("unprotected doomed services = %d, want >= 1000 (the server burns coal, not diamonds)", unprot.Doomed)
	}
	if n := unprot.ErrorsByClass["timeout"]; n == 0 {
		t.Error("unprotected arm recorded no timeout-class errors")
	}

	// --- Protected arm: bounded, degraded, recovered. ---
	// Goodput floor: the tail flows at (near) the healthy demand rate.
	// 15s x 250 req/s x 250KB (worst case all-brownout) = ~900MB; ask
	// for a conservative fraction of that.
	if prot.TailBytes < 100<<20 {
		t.Errorf("protected tail goodput = %d bytes, want >= 100MiB (fleet should have recovered)", prot.TailBytes)
	}
	if rate := float64(prot.TailErrors) / float64(prot.TailRequests); rate > 0.05 {
		t.Errorf("protected tail error rate = %.3f, want <= 0.05 after recovery", rate)
	}
	// No doomed work: shed requests fail fast and queued waiters are
	// canceled, so the server never serves a departed client.
	if prot.Doomed != 0 {
		t.Errorf("protected doomed services = %d, want 0", prot.Doomed)
	}
	// Bounded p99: even fetches that failed through the storm resolve
	// within a few paced retries, far under the unprotected arm's
	// timeout chains.
	p99p, p99u := prot.Latency.Quantile(99), unprot.Latency.Quantile(99)
	if p99p >= 6e6 {
		t.Errorf("protected p99 = %.0fµs, want < 6s", p99p)
	}
	if 3*p99p >= 2*p99u {
		t.Errorf("protected p99 %.0fµs not clearly below unprotected %.0fµs", p99p, p99u)
	}
	// Retry amplification: the unprotected fleet hammers the server
	// harder for less goodput.
	if unprot.Attempts < prot.Attempts*3/2 {
		t.Errorf("retry amplification missing: unprotected %d attempts vs protected %d",
			unprot.Attempts, prot.Attempts)
	}
	if prot.Bytes < 2*unprot.Bytes {
		t.Errorf("protected goodput %d not well above unprotected %d", prot.Bytes, unprot.Bytes)
	}

	// The defenses all actually engaged.
	if prot.Governor.Shed == 0 || prot.ErrorsByClass["shed"] == 0 {
		t.Errorf("no shedding observed: governor=%d class=%d", prot.Governor.Shed, prot.ErrorsByClass["shed"])
	}
	if prot.Governor.BrownoutEntered < 1 {
		t.Error("brownout never engaged")
	}
	// Hysteresis bounds entries to roughly one per retry wave (the
	// fleet's breaker cooldowns re-probe every ~2s during recovery) —
	// not one per decision, which is what an unhysteretic trigger does.
	if prot.Governor.BrownoutEntered > 15 {
		t.Errorf("brownout oscillated: entered %d times (hysteresis should bound this)", prot.Governor.BrownoutEntered)
	}
	if prot.Governor.BrownoutExited < 1 {
		t.Error("brownout never exited after recovery")
	}
	if prot.PerRung["240p30"] == 0 {
		t.Error("no demoted segments served during brownout")
	}
	if prot.Resilience.BudgetDenied == 0 {
		t.Error("retry budgets never engaged")
	}
	if prot.Resilience.Opens == 0 || prot.Resilience.FastFails == 0 {
		t.Error("circuit breakers never engaged during the outage")
	}
	if prot.Resilience.Waited == 0 {
		t.Error("no retry honored a Retry-After hint")
	}

	// Fairness: the symmetric tenants split the recovered goodput —
	// neither is starved below its share.
	gold := prot.PerTenant["gold"]
	bronze := prot.PerTenant["bronze"]
	gOK, bOK := gold.Requests-gold.Errors, bronze.Requests-bronze.Errors
	lo, hi := gOK, bOK
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 || lo*2 < hi {
		t.Errorf("tenant starvation: gold %d vs bronze %d successful fetches", gOK, bOK)
	}
}

// TestSimByteIdenticalReports pins the determinism contract: the same
// config renders the same report byte for byte on repeated runs, and
// the Workers knob (merge parallelism) changes nothing at all.
func TestSimByteIdenticalReports(t *testing.T) {
	render := func(workers int) []byte {
		cfg := collapseConfig(fullProtections())
		cfg.Workers = workers
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, res.Result); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	w1 := render(1)
	w8 := render(8)
	w8again := render(8)
	if !bytes.Equal(w1, w8) {
		t.Errorf("report differs between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", w1, w8)
	}
	if !bytes.Equal(w8, w8again) {
		t.Error("report differs between two workers=8 runs of the same config")
	}
	if len(w1) == 0 {
		t.Fatal("empty report")
	}
}

// TestSimDefaultsAndDrain covers the config-default path and verifies
// the run drains cleanly: a small unprotected fleet with no faults
// serves everything it asks for.
func TestSimHealthyBaseline(t *testing.T) {
	res, err := RunSim(SimConfig{Players: 50, Seed: 3, Duration: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("healthy baseline errors = %d, want 0 (classes: %v)", res.Errors, res.ErrorsByClass)
	}
	if res.Requests == 0 || res.Bytes == 0 {
		t.Fatalf("healthy baseline did nothing: %d requests, %d bytes", res.Requests, res.Bytes)
	}
	// 50 players on a 4s cadence over 20s: roughly 5 fetches each.
	if res.Requests < 200 || res.Requests > 300 {
		t.Errorf("requests = %d, want ~250", res.Requests)
	}
	if res.Doomed != 0 || res.TailBytes == 0 {
		t.Errorf("healthy baseline: doomed=%d tailBytes=%d", res.Doomed, res.TailBytes)
	}
	// Everyone gets the top rung when nothing is wrong.
	if res.PerRung["1080p60"] != res.Requests {
		t.Errorf("top-rung fetches = %d of %d", res.PerRung["1080p60"], res.Requests)
	}
}
