package loadgen

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"coalqoe/internal/cdn"
	"coalqoe/internal/dash"
	"coalqoe/internal/units"
)

// TestMain raises the fd soft limit toward the hard limit: a
// 1000-player fleet holds ~2000 sockets (both ends of each loopback
// connection live in this process), which overflows a stock 1024
// soft limit.
func TestMain(m *testing.M) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && lim.Cur < lim.Max {
		lim.Cur = lim.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
	os.Exit(m.Run())
}

// tinyManifest is a one-rung ladder with ~50 KiB segments — small
// enough that thousands of fetches stay cheap under -race.
func tinyManifest() *dash.Manifest {
	return &dash.Manifest{
		Video: dash.Video{
			Title:           "loadgen fixture",
			Duration:        40 * time.Second,
			SegmentDuration: 4 * time.Second,
		},
		Rungs: []dash.Rung{
			{Resolution: dash.R240p, FPS: 30, Bitrate: 100 * units.Kbps},
		},
	}
}

func TestPickRung(t *testing.T) {
	reps := []dash.RungDTO{
		{ID: "240p30", Bitrate: 1e5},
		{ID: "480p30", Bitrate: 1e6},
		{ID: "1080p60", Bitrate: 1e7},
	}
	cases := []struct {
		budget float64
		want   string
	}{
		{0, "240p30"},     // nothing fits: lowest rung
		{5e4, "240p30"},   // below the ladder floor
		{1e5, "240p30"},   // exact fit is a fit
		{9.9e5, "240p30"}, // just under the next rung
		{1e6, "480p30"},   //
		{5e6, "480p30"},   //
		{1e7, "1080p60"},  // exact top
		{1e12, "1080p60"}, // above the ceiling
	}
	for _, c := range cases {
		if got := pickRung(reps, c.budget); got.ID != c.want {
			t.Errorf("pickRung(budget=%g) = %s, want %s", c.budget, got.ID, c.want)
		}
	}
}

// TestPlayerSeedLanes pins the seed-lane properties: lanes are
// distinct across players, deterministic per player, and not the
// seed+i arithmetic that correlates neighboring streams.
func TestPlayerSeedLanes(t *testing.T) {
	const base = 42
	seen := make(map[int64]int)
	arithmetic := 0
	for i := 0; i < 1000; i++ {
		s := playerSeed(base, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("players %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
		if s == base+int64(i) {
			arithmetic++
		}
		if s2 := playerSeed(base, i); s2 != s {
			t.Fatalf("player %d seed not deterministic: %d vs %d", i, s, s2)
		}
	}
	if arithmetic > 2 {
		t.Errorf("%d/1000 lanes collide with seed+i arithmetic", arithmetic)
	}
}

// TestRunThousandPlayers is the acceptance run: 1000 concurrent
// closed-loop players against one cached, coalescing server, zero
// errors, exact request accounting, and a visible cache hit rate.
// CI runs this under -race.
func TestRunThousandPlayers(t *testing.T) {
	cache := cdn.New(cdn.Config{Capacity: 64 << 20, AdmitAfter: 1, Coalesce: true})
	srv := dash.NewServerOpts(tinyManifest(), dash.ServerOptions{Cache: cache})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const players = 1000
	const segsEach = 3
	res, err := Run(Config{
		BaseURL:     ts.URL,
		Players:     players,
		Duration:    5 * time.Minute, // deadline far away; MaxSegments bounds the run
		MaxSegments: segsEach,
		Seed:        42,
		Now:         time.Now,
		Sleep:       time.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (rate %.4f)", res.Errors, res.ErrorRate())
	}
	if want := int64(players * segsEach); res.Requests != want {
		t.Errorf("requests = %d, want %d", res.Requests, want)
	}
	if res.Latency.N() != res.Requests {
		t.Errorf("latency sketch holds %d samples, want %d", res.Latency.N(), res.Requests)
	}
	if res.Bytes == 0 {
		t.Error("no bytes recorded")
	}
	if p99 := res.Latency.Quantile(99); p99 < res.Latency.Quantile(50) {
		t.Errorf("p99 %.0fµs below p50 %.0fµs", p99, res.Latency.Quantile(50))
	}

	m, err := FetchServerStats(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res.ServerMetrics = m
	// 3000 fetches cover ≤10 unique segments: almost everything must
	// be served from cache (or coalesced into an in-flight fill).
	served := m["dash.cache.hits"] + m["dash.cache.coalesced"]
	if served == 0 {
		t.Error("cache served nothing: hits+coalesced = 0")
	}
	if hr, ok := res.CacheHitRate(); !ok || hr <= 0 {
		t.Errorf("cache hit rate = %v, %v; want > 0", hr, ok)
	}
	if fills, misses := m["dash.cache.fills"], m["dash.cache.misses"]; fills > misses {
		t.Errorf("fills %g > misses %g", fills, misses)
	}
	if got := m["dash.segment_requests.240p30"]; got != float64(res.Requests) {
		t.Errorf("server saw %g segment requests, clients sent %d", got, res.Requests)
	}
}

// TestRunAdaptsRungs checks the rate rule climbs the ladder: on a
// loopback link every measured rate is enormous, so warmed-up players
// must fetch from the top rung.
func TestRunAdaptsRungs(t *testing.T) {
	m := &dash.Manifest{
		Video: dash.Video{Title: "ladder", Duration: 40 * time.Second, SegmentDuration: 4 * time.Second},
		Rungs: []dash.Rung{
			{Resolution: dash.R240p, FPS: 30, Bitrate: 100 * units.Kbps},
			{Resolution: dash.R480p, FPS: 30, Bitrate: 400 * units.Kbps},
		},
	}
	ts := httptest.NewServer(dash.NewServer(m))
	defer ts.Close()

	res, err := Run(Config{
		BaseURL:     ts.URL,
		Players:     4,
		Duration:    time.Minute,
		MaxSegments: 5,
		Seed:        1,
		Now:         time.Now,
		Sleep:       time.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.PerRung["240p30"] != 4 {
		t.Errorf("each player should fetch exactly one cold-start segment at the bottom rung; got %d", res.PerRung["240p30"])
	}
	if res.PerRung["480p30"] != 16 {
		t.Errorf("warmed players should climb to the top rung; got %d of 20", res.PerRung["480p30"])
	}
}

func TestWriteReport(t *testing.T) {
	lat := newLatencySketch()
	for i := 1; i <= 100; i++ {
		lat.Add(float64(i) * 1000) // 1ms..100ms
	}
	res := &Result{
		Players:  2,
		Elapsed:  2 * time.Second,
		Requests: 100,
		Errors:   1,
		Bytes:    1 << 20,
		Latency:  lat,
		PerRung:  map[string]int64{"240p30": 60, "480p30": 39},
		ServerMetrics: map[string]float64{
			"dash.cache.hit_rate": 0.5,
			"dash.cache.hits":     50,
		},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"players            2",
		"requests           100",
		"errors             1 (1.0000%)",
		"p50=50.50", // rank 49.5 interpolated between 50ms and 51ms
		"p99=99.01",
		"server hit rate    0.5000",
		"240p30       60",
		"dash.cache.hits",
		"50.0 req/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
