package loadgen

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"coalqoe/internal/cdn"
	"coalqoe/internal/dash"
	"coalqoe/internal/faults"
	"coalqoe/internal/units"
)

// TestMain raises the fd soft limit toward the hard limit: a
// 1000-player fleet holds ~2000 sockets (both ends of each loopback
// connection live in this process), which overflows a stock 1024
// soft limit.
func TestMain(m *testing.M) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && lim.Cur < lim.Max {
		lim.Cur = lim.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
	os.Exit(m.Run())
}

// tinyManifest is a one-rung ladder with ~50 KiB segments — small
// enough that thousands of fetches stay cheap under -race.
func tinyManifest() *dash.Manifest {
	return &dash.Manifest{
		Video: dash.Video{
			Title:           "loadgen fixture",
			Duration:        40 * time.Second,
			SegmentDuration: 4 * time.Second,
		},
		Rungs: []dash.Rung{
			{Resolution: dash.R240p, FPS: 30, Bitrate: 100 * units.Kbps},
		},
	}
}

func TestPickRung(t *testing.T) {
	reps := []dash.RungDTO{
		{ID: "240p30", Bitrate: 1e5},
		{ID: "480p30", Bitrate: 1e6},
		{ID: "1080p60", Bitrate: 1e7},
	}
	cases := []struct {
		budget float64
		want   string
	}{
		{0, "240p30"},     // nothing fits: lowest rung
		{5e4, "240p30"},   // below the ladder floor
		{1e5, "240p30"},   // exact fit is a fit
		{9.9e5, "240p30"}, // just under the next rung
		{1e6, "480p30"},   //
		{5e6, "480p30"},   //
		{1e7, "1080p60"},  // exact top
		{1e12, "1080p60"}, // above the ceiling
	}
	for _, c := range cases {
		if got := pickRung(reps, c.budget); got.ID != c.want {
			t.Errorf("pickRung(budget=%g) = %s, want %s", c.budget, got.ID, c.want)
		}
	}
}

// TestPlayerSeedLanes pins the seed-lane properties: lanes are
// distinct across players, deterministic per player, and not the
// seed+i arithmetic that correlates neighboring streams.
func TestPlayerSeedLanes(t *testing.T) {
	const base = 42
	seen := make(map[int64]int)
	arithmetic := 0
	for i := 0; i < 1000; i++ {
		s := playerSeed(base, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("players %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
		if s == base+int64(i) {
			arithmetic++
		}
		if s2 := playerSeed(base, i); s2 != s {
			t.Fatalf("player %d seed not deterministic: %d vs %d", i, s, s2)
		}
	}
	if arithmetic > 2 {
		t.Errorf("%d/1000 lanes collide with seed+i arithmetic", arithmetic)
	}
}

// TestRunThousandPlayers is the acceptance run: 1000 concurrent
// closed-loop players against one cached, coalescing server, zero
// errors, exact request accounting, and a visible cache hit rate.
// CI runs this under -race.
func TestRunThousandPlayers(t *testing.T) {
	cache := cdn.New(cdn.Config{Capacity: 64 << 20, AdmitAfter: 1, Coalesce: true})
	srv := dash.NewServerOpts(tinyManifest(), dash.ServerOptions{Cache: cache})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const players = 1000
	const segsEach = 3
	res, err := Run(Config{
		BaseURL:     ts.URL,
		Players:     players,
		Duration:    5 * time.Minute, // deadline far away; MaxSegments bounds the run
		MaxSegments: segsEach,
		Seed:        42,
		Now:         time.Now,
		Sleep:       time.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (rate %.4f)", res.Errors, res.ErrorRate())
	}
	if want := int64(players * segsEach); res.Requests != want {
		t.Errorf("requests = %d, want %d", res.Requests, want)
	}
	if res.Latency.N() != res.Requests {
		t.Errorf("latency sketch holds %d samples, want %d", res.Latency.N(), res.Requests)
	}
	if res.Bytes == 0 {
		t.Error("no bytes recorded")
	}
	if p99 := res.Latency.Quantile(99); p99 < res.Latency.Quantile(50) {
		t.Errorf("p99 %.0fµs below p50 %.0fµs", p99, res.Latency.Quantile(50))
	}

	m, err := FetchServerStats(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res.ServerMetrics = m
	// 3000 fetches cover ≤10 unique segments: almost everything must
	// be served from cache (or coalesced into an in-flight fill).
	served := m["dash.cache.hits"] + m["dash.cache.coalesced"]
	if served == 0 {
		t.Error("cache served nothing: hits+coalesced = 0")
	}
	if hr, ok := res.CacheHitRate(); !ok || hr <= 0 {
		t.Errorf("cache hit rate = %v, %v; want > 0", hr, ok)
	}
	if fills, misses := m["dash.cache.fills"], m["dash.cache.misses"]; fills > misses {
		t.Errorf("fills %g > misses %g", fills, misses)
	}
	if got := m["dash.segment_requests.240p30"]; got != float64(res.Requests) {
		t.Errorf("server saw %g segment requests, clients sent %d", got, res.Requests)
	}
}

// TestRunAdaptsRungs checks the rate rule climbs the ladder: on a
// loopback link every measured rate is enormous, so warmed-up players
// must fetch from the top rung.
func TestRunAdaptsRungs(t *testing.T) {
	m := &dash.Manifest{
		Video: dash.Video{Title: "ladder", Duration: 40 * time.Second, SegmentDuration: 4 * time.Second},
		Rungs: []dash.Rung{
			{Resolution: dash.R240p, FPS: 30, Bitrate: 100 * units.Kbps},
			{Resolution: dash.R480p, FPS: 30, Bitrate: 400 * units.Kbps},
		},
	}
	ts := httptest.NewServer(dash.NewServer(m))
	defer ts.Close()

	res, err := Run(Config{
		BaseURL:     ts.URL,
		Players:     4,
		Duration:    time.Minute,
		MaxSegments: 5,
		Seed:        1,
		Now:         time.Now,
		Sleep:       time.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.PerRung["240p30"] != 4 {
		t.Errorf("each player should fetch exactly one cold-start segment at the bottom rung; got %d", res.PerRung["240p30"])
	}
	if res.PerRung["480p30"] != 16 {
		t.Errorf("warmed players should climb to the top rung; got %d of 20", res.PerRung["480p30"])
	}
}

func TestWriteReport(t *testing.T) {
	lat := newLatencySketch()
	for i := 1; i <= 100; i++ {
		lat.Add(float64(i) * 1000) // 1ms..100ms
	}
	res := &Result{
		Players:  2,
		Elapsed:  2 * time.Second,
		Requests: 100,
		Errors:   1,
		Bytes:    1 << 20,
		Latency:  lat,
		PerRung:  map[string]int64{"240p30": 60, "480p30": 39},
		ServerMetrics: map[string]float64{
			"dash.cache.hit_rate": 0.5,
			"dash.cache.hits":     50,
		},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"players            2",
		"requests           100",
		"errors             1 (1.0000%)",
		"p50=50.50", // rank 49.5 interpolated between 50ms and 51ms
		"p99=99.01",
		"server hit rate    0.5000",
		"240p30       60",
		"dash.cache.hits",
		"50.0 req/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunClassifiesErrors drives a fleet against a governed server
// whose quota throttles one tenant: the report must file those
// failures under "shed" (server protected itself), with per-tenant
// accounting splitting the hot tenant from the healthy one.
func TestRunClassifiesErrors(t *testing.T) {
	g := cdn.NewGovernor(cdn.GovernorConfig{
		Quotas: []cdn.TenantQuota{{Name: "hot", Rate: 0.001, Burst: 1}},
	}, time.Now)
	srv := dash.NewServerOpts(tinyManifest(), dash.ServerOptions{Governor: g})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Run(Config{
		BaseURL:     ts.URL,
		Players:     4,
		Duration:    time.Minute,
		MaxSegments: 5,
		Seed:        7,
		Tenants:     []string{"hot", "cold"},
		ErrorPause:  time.Millisecond,
		Now:         time.Now,
		Sleep:       time.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("quota throttle produced no client errors")
	}
	if res.ErrorsByClass[dash.ClassShed] != res.Errors {
		t.Errorf("errors by class = %v, want all %d under %q", res.ErrorsByClass, res.Errors, dash.ClassShed)
	}
	hot, cold := res.PerTenant["hot"], res.PerTenant["cold"]
	if hot.Players != 2 || cold.Players != 2 {
		t.Errorf("tenant split = hot:%d cold:%d players, want 2/2", hot.Players, cold.Players)
	}
	if cold.Errors != 0 {
		t.Errorf("cold tenant saw %d errors; the hot tenant's throttle must not leak", cold.Errors)
	}
	if hot.Errors != res.Errors {
		t.Errorf("hot tenant errors = %d, total = %d", hot.Errors, res.Errors)
	}
	// Quota sheds are invisible to players without quota pressure.
	if hot.Requests <= int64(hot.Errors) {
		t.Errorf("hot tenant made %d requests with %d errors: burst should have served some", hot.Requests, hot.Errors)
	}
}

// TestRunAggregatesResilience: with retries armed and a budget small
// enough to exhaust against an always-503 server, the fleet's budget
// and breaker counters surface in the result, and the budget bounds
// total retry volume.
func TestRunAggregatesResilience(t *testing.T) {
	chaos := cdn.NewChaosFromWindows([]faults.Window{
		{Kind: faults.NetOutage, Start: 0, Duration: time.Hour},
	}, 1, time.Hour, time.Now, time.Sleep)
	srv := dash.NewServerOpts(tinyManifest(), dash.ServerOptions{Chaos: chaos})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const players = 4
	res, err := Run(Config{
		BaseURL:          ts.URL,
		Players:          players,
		Duration:         time.Minute,
		MaxSegments:      6,
		Seed:             3,
		Retry:            dash.RetryPolicy{Attempts: 5, Backoff: time.Millisecond, BackoffCap: 2 * time.Millisecond},
		RetryBudget:      2,
		BreakerThreshold: 50, // high enough to stay out of the way here
		Jitter:           true,
		Now:              time.Now,
		Sleep:            time.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != players*6 {
		t.Errorf("errors = %d, want %d (outage covers the whole run)", res.Errors, players*6)
	}
	if res.ErrorsByClass[dash.ClassHTTP5xx] == 0 {
		t.Errorf("chaos 503s should classify as http5xx: %v", res.ErrorsByClass)
	}
	// Each player banks 2 retry tokens and nothing refills them: the
	// fleet spends exactly 2 per player, then budgets deny.
	if res.Resilience.BudgetSpent != players*2 {
		t.Errorf("budget spent = %d, want %d", res.Resilience.BudgetSpent, players*2)
	}
	if res.Resilience.BudgetDenied == 0 {
		t.Error("exhausted budgets should record denials")
	}
}

// TestReportResilienceSections pins the new report sections.
func TestReportResilienceSections(t *testing.T) {
	lat := newLatencySketch()
	lat.Add(1000)
	res := &Result{
		Players: 2, Elapsed: time.Second, Requests: 10, Errors: 4, Bytes: 100,
		Latency: lat,
		PerRung: map[string]int64{"240p30": 6},
		ErrorsByClass: map[string]int64{
			dash.ClassShed:    3,
			dash.ClassHTTP5xx: 1,
		},
		PerTenant: map[string]TenantResult{
			"beta":  {Players: 1, Requests: 5, Errors: 4, Bytes: 40},
			"alpha": {Players: 1, Requests: 5, Errors: 0, Bytes: 60},
		},
		Resilience: ClientResilience{BudgetSpent: 7, BudgetDenied: 2, Opens: 1, FastFails: 3, Hedges: 5, Waited: 4},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"errors by class",
		"shed         3",
		"http5xx      1",
		"client.retrybudget.spent",
		"client.breaker.opens",
		"client.hedge.launched",
		"client.retryafter.honored",
		"per tenant",
		"alpha        players=1 requests=5 errors=0 bytes=60",
		"beta         players=1 requests=5 errors=4 bytes=40",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Tenant order is sorted: alpha before beta.
	if strings.Index(out, "alpha") > strings.Index(out, "beta") {
		t.Error("tenants not sorted in report")
	}
}
