package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"coalqoe/internal/dash"
)

// FetchServerStats grabs the server's /metrics snapshot so the report
// can put client-observed and server-reported numbers side by side.
func FetchServerStats(httpClient *http.Client, baseURL string) (map[string]float64, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	resp, err := httpClient.Get(baseURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetch metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: fetch metrics: %s", resp.Status)
	}
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("loadgen: decode metrics: %w", err)
	}
	return m, nil
}

// WriteReport renders the run's results in the fixed text layout the
// results/loadgen.txt artifact uses. Deterministic given a Result:
// rung and metric keys are sorted, floats have fixed precision.
func WriteReport(w io.Writer, res *Result) error {
	ms := func(us float64) float64 { return us / 1000 }
	q := res.Latency.Quantile
	fmt.Fprintf(w, "loadgen report\n")
	fmt.Fprintf(w, "==============\n")
	fmt.Fprintf(w, "players            %d\n", res.Players)
	fmt.Fprintf(w, "elapsed            %.2fs\n", res.Elapsed.Seconds())
	fmt.Fprintf(w, "requests           %d\n", res.Requests)
	fmt.Fprintf(w, "errors             %d (%.4f%%)\n", res.Errors, 100*res.ErrorRate())
	fmt.Fprintf(w, "bytes              %d\n", res.Bytes)
	fmt.Fprintf(w, "throughput         %.1f req/s, %.1f Mbit/s\n",
		res.RequestsPerSec(), res.BitsPerSec()/1e6)
	if res.Latency.N() > 0 {
		fmt.Fprintf(w, "latency (ms)       mean=%.2f p50=%.2f p90=%.2f p99=%.2f p999=%.2f max=%.2f\n",
			ms(res.Latency.Mean()), ms(q(50)), ms(q(90)), ms(q(99)), ms(q(99.9)), ms(res.Latency.Max()))
	}
	if hr, ok := res.CacheHitRate(); ok {
		fmt.Fprintf(w, "server hit rate    %.4f\n", hr)
	}

	if res.Errors > 0 && len(res.ErrorsByClass) > 0 {
		fmt.Fprintf(w, "\nerrors by class\n")
		// Fixed class order, zero classes omitted: shed means the
		// server protected itself; http5xx means it fell over.
		for _, class := range dash.ErrorClasses {
			if n := res.ErrorsByClass[class]; n > 0 {
				fmt.Fprintf(w, "  %-12s %d\n", class, n)
			}
		}
	}

	cr := res.Resilience
	if cr != (ClientResilience{}) {
		fmt.Fprintf(w, "\nclient resilience\n")
		fmt.Fprintf(w, "  %-28s %d\n", "client.retrybudget.spent", cr.BudgetSpent)
		fmt.Fprintf(w, "  %-28s %d\n", "client.retrybudget.denied", cr.BudgetDenied)
		fmt.Fprintf(w, "  %-28s %d\n", "client.breaker.opens", cr.Opens)
		fmt.Fprintf(w, "  %-28s %d\n", "client.breaker.fastfails", cr.FastFails)
		fmt.Fprintf(w, "  %-28s %d\n", "client.breaker.probes", cr.Probes)
		fmt.Fprintf(w, "  %-28s %d\n", "client.hedge.launched", cr.Hedges)
		fmt.Fprintf(w, "  %-28s %d\n", "client.retryafter.honored", cr.Waited)
	}

	if len(res.PerTenant) > 0 {
		tenants := make([]string, 0, len(res.PerTenant))
		for name := range res.PerTenant {
			tenants = append(tenants, name)
		}
		sort.Strings(tenants)
		fmt.Fprintf(w, "\nper tenant\n")
		for _, name := range tenants {
			tr := res.PerTenant[name]
			fmt.Fprintf(w, "  %-12s players=%d requests=%d errors=%d bytes=%d\n",
				name, tr.Players, tr.Requests, tr.Errors, tr.Bytes)
		}
	}

	rungs := make([]string, 0, len(res.PerRung))
	for id := range res.PerRung {
		rungs = append(rungs, id)
	}
	sort.Strings(rungs)
	if len(rungs) > 0 {
		fmt.Fprintf(w, "\nsegments per rung\n")
		for _, id := range rungs {
			fmt.Fprintf(w, "  %-12s %d\n", id, res.PerRung[id])
		}
	}

	if len(res.ServerMetrics) > 0 {
		keys := make([]string, 0, len(res.ServerMetrics))
		for k := range res.ServerMetrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "\nserver /metrics\n")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-28s %g\n", k, res.ServerMetrics[k])
		}
	}
	return nil
}
