// Package loadgen is the closed-loop load generator for the streaming
// backend: thousands of concurrent simulated DASH players walking one
// manifest against one server process, each choosing rungs with a
// simple rate rule and recording per-request latency into mergeable
// stats.QuantileSketches. It is the client-side half the Zoom/Webex/
// Meet measurement study template asks for — a fleet of instrumented
// clients whose delivery metrics (throughput, tail latency, error
// rate) are correlated with what the server's own /metrics reports
// (hit rate, coalescing, injected faults).
//
// Closed-loop means each player issues its next request the moment
// the previous response completes: offered load follows service
// capacity, so the measured latency distribution is the server's, not
// an open-loop queue's. Players reuse dash.Client (including its
// retry policy, so server-side chaos exercises the same backoff paths
// the simulated sessions carry).
//
// Concurrency discipline (the invariants coalvet enforces): every
// player owns a private recorder — sketch, counters, per-rung map —
// indexed by player number; the coordinator merges them only after
// wg.Wait. Player seeds come from FNV identity lanes (study.UserSeed
// idiom), never index arithmetic. The wall clock is injected (Now and
// Sleep in Config), wired from the binary's main package.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/resilience"
	"coalqoe/internal/stats"
)

// Latency sketch schema: microseconds over [0, 10s) in 50µs bins,
// exact below 4096 observations. All player sketches share it so they
// merge; the merged fleet sketch is exact for small runs and bounded
// (±50µs) at scale.
const (
	sketchLoUS     = 0
	sketchHiUS     = 10e6
	sketchBins     = 200000
	sketchExactCap = 4096
)

// newLatencySketch builds a sketch of the shared schema.
func newLatencySketch() *stats.QuantileSketch {
	return stats.NewQuantileSketch(sketchLoUS, sketchHiUS, sketchBins, sketchExactCap)
}

// Config shapes one load run.
type Config struct {
	// BaseURL is the dashserve process under test.
	BaseURL string
	// Players is the number of concurrent closed-loop players.
	Players int
	// Duration bounds the run in wall time (default 5s).
	Duration time.Duration
	// MaxSegments caps the segments each player fetches; 0 means
	// duration-bound only. Tests use it for exact request counts.
	MaxSegments int
	// Seed feeds the per-player FNV lanes (start offsets).
	Seed int64
	// Retry arms each player's dash.Client; zero Attempts leaves the
	// client single-attempt.
	Retry dash.RetryPolicy
	// RateSafety scales the measured throughput before rung selection
	// (default 0.8): pick the highest rung whose bitrate fits inside
	// safety x measured rate, the classic rate-based ABR rule.
	RateSafety float64

	// Tenants assigns players to tenants round-robin (player i gets
	// Tenants[i%len]), sent as the X-Tenant header so the server's
	// governor can meter them. Empty means no tenant identity.
	Tenants []string
	// RetryBudget arms a per-player retry budget of this many tokens
	// (refilled by successes); 0 leaves retries unmetered.
	RetryBudget float64
	// BreakerThreshold arms a per-player circuit breaker opening after
	// this many consecutive failures; 0 disables breaking.
	BreakerThreshold int
	// BreakerCooldown is the open-circuit cooldown (default 2s when a
	// breaker is armed).
	BreakerCooldown time.Duration
	// Jitter spreads each player's retry backoff ×[0.5,1.5) on its own
	// seed lane, decorrelating the fleet's retry waves.
	Jitter bool
	// Hedge launches a duplicate segment request when the first has
	// not finished after this delay; 0 disables hedging.
	Hedge time.Duration
	// ErrorPause is how long a player sits out after a failed fetch
	// (jittered on its lane). A closed loop with no error pause
	// busy-spins rejections at network speed — the exact retry-storm
	// shape the resilience layer exists to stop; a pause models the
	// rebuffer wait a real player would take. 0 keeps the old
	// immediate-continue behavior.
	ErrorPause time.Duration

	// Now and Sleep inject the wall clock (time.Now / time.Sleep from
	// the binary's main package; tests may fake them). Both required.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// TenantResult is one tenant's slice of the run.
type TenantResult struct {
	Players  int
	Requests int64
	Errors   int64
	Bytes    int64
}

// ClientResilience aggregates the fleet's client-side defense
// counters — the client.retrybudget.* / client.breaker.* /
// client.hedge.* families of the report.
type ClientResilience struct {
	BudgetSpent  int64 // retries paid for by the budget
	BudgetDenied int64 // retries refused on empty budgets
	Opens        int64 // circuit-breaker trips
	FastFails    int64 // requests refused locally while open
	Probes       int64 // half-open probes
	Hedges       int64 // hedged duplicates launched
	Waited       int64 // retries paced by a server Retry-After hint
}

// Result is the merged outcome of a run.
type Result struct {
	Players  int
	Elapsed  time.Duration
	Requests int64
	Errors   int64
	Bytes    int64
	// Latency holds every request's wall latency in microseconds
	// (including retries and backoff — the stall a player felt).
	Latency *stats.QuantileSketch
	// PerRung counts successful fetches per representation id.
	PerRung map[string]int64
	// ErrorsByClass splits Errors by dash.Classify: "server protected
	// itself" (shed) reads very differently from "server fell over"
	// (http5xx) in an overload experiment.
	ErrorsByClass map[string]int64
	// PerTenant slices the run by tenant (nil when Config.Tenants was
	// empty).
	PerTenant map[string]TenantResult
	// Resilience aggregates the players' client-side defense counters.
	Resilience ClientResilience
	// ServerMetrics is the server's /metrics snapshot taken after the
	// run (nil if the caller did not fetch it).
	ServerMetrics map[string]float64
}

// RequestsPerSec returns the sustained request throughput.
func (r *Result) RequestsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// BitsPerSec returns the sustained delivery throughput.
func (r *Result) BitsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Elapsed.Seconds()
}

// ErrorRate returns the fraction of requests that failed after
// exhausting retries.
func (r *Result) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// CacheHitRate extracts the server-side cache hit rate from the
// /metrics snapshot; ok is false when the server ran without a cache
// (or the snapshot was never fetched).
func (r *Result) CacheHitRate() (float64, bool) {
	v, ok := r.ServerMetrics["dash.cache.hit_rate"]
	return v, ok
}

// playerSeed derives one player's seed lane from the run seed — an
// FNV identity hash, the same idiom as study.UserSeed, so lanes are
// independent (index arithmetic would correlate neighbors).
func playerSeed(seed int64, player int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "loadgen|player|%d", player)
	return seed + int64(h.Sum64()&0x7fffffff)
}

// recorder is one player's private metrics — written only by that
// player's goroutine, merged by the coordinator after the drain.
type recorder struct {
	requests int64
	errors   int64
	bytes    int64
	latency  *stats.QuantileSketch
	perRung  map[string]int64
	// errClasses counts failures by dash.ErrorClasses position — a
	// fixed-order slice, so merging needs no map iteration.
	errClasses []int64
}

// classIndex maps a dash error class to its errClasses slot.
var classIndex = func() map[string]int {
	m := make(map[string]int, len(dash.ErrorClasses))
	for i, c := range dash.ErrorClasses {
		m[c] = i
	}
	return m
}()

// tenantOf returns player i's tenant ("" without a tenant model).
func tenantOf(cfg *Config, player int) string {
	return tenantAt(cfg.Tenants, player)
}

// pickRung returns the highest-bitrate representation whose bitrate
// fits the budget, falling back to the lowest rung. reps must be
// sorted by ascending bitrate.
func pickRung(reps []dash.RungDTO, budgetBPS float64) dash.RungDTO {
	best := reps[0]
	for _, rep := range reps[1:] {
		if rep.Bitrate <= budgetBPS {
			best = rep
		}
	}
	return best
}

// Run executes the load: fetches the manifest once, spawns
// Config.Players closed-loop players, and merges their recorders.
// The player count is a configured capacity, not a data size, so
// goroutine creation is bounded by construction.
func Run(cfg Config) (*Result, error) {
	if cfg.Now == nil || cfg.Sleep == nil {
		panic("loadgen: Config needs Now and Sleep; pass time.Now/time.Sleep from the binary's main package")
	}
	if cfg.Players <= 0 {
		cfg.Players = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.RateSafety <= 0 {
		cfg.RateSafety = 0.8
	}

	// One shared transport sized for the fleet: the default transport
	// keeps 2 idle conns per host, which at 1000 players would churn
	// a connection (and an ephemeral port) per request.
	transport := &http.Transport{
		MaxIdleConns:        cfg.Players + 16,
		MaxIdleConnsPerHost: cfg.Players + 16,
		IdleConnTimeout:     90 * time.Second,
	}
	defer transport.CloseIdleConnections()

	newClient := func() *dash.Client {
		c := dash.NewClient(cfg.BaseURL, cfg.Now)
		c.HTTP = &http.Client{Transport: transport, Timeout: 30 * time.Second}
		if cfg.Retry.Attempts > 0 {
			c.SetRetry(cfg.Retry, cfg.Sleep)
		} else if cfg.Hedge > 0 {
			// Hedging needs the injected sleep even without retries.
			c.SetRetry(dash.RetryPolicy{Attempts: 1}, cfg.Sleep)
		}
		return c
	}

	manifest, err := newClient().FetchManifest()
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if len(manifest.Representations) == 0 {
		return nil, fmt.Errorf("loadgen: manifest has no representations")
	}
	reps := append([]dash.RungDTO(nil), manifest.Representations...)
	sort.Slice(reps, func(i, j int) bool {
		if reps[i].Bitrate != reps[j].Bitrate {
			return reps[i].Bitrate < reps[j].Bitrate
		}
		return reps[i].ID < reps[j].ID
	})
	nsegs := int(manifest.DurationSec / manifest.SegmentDuration)
	if nsegs <= 0 {
		nsegs = 1
	}

	recorders := make([]recorder, cfg.Players)
	for i := range recorders {
		recorders[i] = recorder{
			latency:    newLatencySketch(),
			perRung:    make(map[string]int64),
			errClasses: make([]int64, len(dash.ErrorClasses)),
		}
	}
	// Clients live in a coordinator-owned slice (bounded by Players, a
	// configured capacity) so their resilience counters survive the
	// players and merge after the drain.
	clients := make([]*dash.Client, cfg.Players)
	for i := range clients {
		clients[i] = newClient()
	}

	start := cfg.Now()
	deadline := start.Add(cfg.Duration)
	done := make(chan int, cfg.Players)
	for i := 0; i < cfg.Players; i++ {
		go func(i int) {
			defer func() { done <- i }()
			runPlayer(&cfg, clients[i], reps, nsegs, i, deadline, &recorders[i])
		}(i)
	}
	for i := 0; i < cfg.Players; i++ {
		<-done
	}
	elapsed := cfg.Now().Sub(start)

	res := &Result{
		Players:       cfg.Players,
		Elapsed:       elapsed,
		Latency:       newLatencySketch(),
		PerRung:       make(map[string]int64),
		ErrorsByClass: make(map[string]int64),
	}
	if len(cfg.Tenants) > 0 {
		res.PerTenant = make(map[string]TenantResult, len(cfg.Tenants))
	}
	for i := range recorders {
		rec := &recorders[i]
		res.Requests += rec.requests
		res.Errors += rec.errors
		res.Bytes += rec.bytes
		res.Latency.Merge(rec.latency)
		for _, rep := range reps {
			if n := rec.perRung[rep.ID]; n > 0 {
				res.PerRung[rep.ID] += n
			}
		}
		for ci, class := range dash.ErrorClasses {
			if n := rec.errClasses[ci]; n > 0 {
				res.ErrorsByClass[class] += n
			}
		}
		if res.PerTenant != nil {
			tr := res.PerTenant[tenantOf(&cfg, i)]
			tr.Players++
			tr.Requests += rec.requests
			tr.Errors += rec.errors
			tr.Bytes += rec.bytes
			res.PerTenant[tenantOf(&cfg, i)] = tr
		}
		cs := clients[i].ResilienceStats()
		res.Resilience.BudgetSpent += cs.Budget.Spent
		res.Resilience.BudgetDenied += cs.Budget.Denied
		res.Resilience.Opens += cs.Breaker.Opens
		res.Resilience.FastFails += cs.Breaker.FastFails
		res.Resilience.Probes += cs.Breaker.Probes
		res.Resilience.Hedges += cs.Hedges
		res.Resilience.Waited += cs.Waited
	}
	return res, nil
}

// runPlayer is one closed-loop player: walk segments from a seeded
// start offset, measure each fetch, adapt the rung to the measured
// rate, stop at the deadline (or segment cap). The player's retry
// budget, breaker, and jitter all ride its own FNV seed lane.
func runPlayer(cfg *Config, client *dash.Client, reps []dash.RungDTO, nsegs, player int, deadline time.Time, rec *recorder) {
	rng := rand.New(rand.NewSource(playerSeed(cfg.Seed, player)))
	res := dash.Resilience{Tenant: tenantOf(cfg, player), Hedge: cfg.Hedge}
	if cfg.RetryBudget > 0 {
		res.Budget = resilience.NewRetryBudget(resilience.BudgetConfig{Capacity: cfg.RetryBudget})
	}
	if cfg.BreakerThreshold > 0 {
		res.Breaker = resilience.NewBreaker(resilience.BreakerConfig{
			FailThreshold: cfg.BreakerThreshold,
			Cooldown:      cfg.BreakerCooldown,
		})
	}
	if cfg.Jitter {
		// A separate rand stream on the same lane: backoff jitter draws
		// must not perturb the start-offset draw sequence.
		res.Jitter = rand.New(rand.NewSource(playerSeed(cfg.Seed, player) ^ 0x6a09e667))
	}
	client.SetResilience(res)
	seg := rng.Intn(nsegs)
	rep := reps[0] // start conservative, like a cold player
	ewmaBPS := 0.0
	for n := 0; cfg.MaxSegments == 0 || n < cfg.MaxSegments; n++ {
		if !cfg.Now().Before(deadline) {
			return
		}
		size, dur, err := client.FetchSegment(rep.ID, seg)
		rec.requests++
		if dur > 0 {
			rec.latency.Add(float64(dur.Microseconds()))
		} else if err == nil {
			rec.latency.Add(0)
		}
		if err != nil {
			rec.errors++
			rec.errClasses[classIndex[dash.Classify(err)]]++
			// Back to the bottom rung after a failure, like the player
			// model's cold restart.
			rep = reps[0]
			ewmaBPS = 0
			if cfg.ErrorPause > 0 {
				// Sit out the rebuffer, jittered so the fleet's failed
				// players don't come back as one wave.
				cfg.Sleep(resilience.Jitter(res.Jitter, cfg.ErrorPause))
			}
			continue
		}
		rec.bytes += int64(size)
		rec.perRung[rep.ID]++
		if dur > 0 {
			rate := float64(size) * 8 / dur.Seconds()
			if ewmaBPS == 0 {
				ewmaBPS = rate
			} else {
				ewmaBPS = 0.5*ewmaBPS + 0.5*rate
			}
			rep = pickRung(reps, cfg.RateSafety*ewmaBPS)
		}
		seg = (seg + 1) % nsegs
	}
}
