// Package loadgen is the closed-loop load generator for the streaming
// backend: thousands of concurrent simulated DASH players walking one
// manifest against one server process, each choosing rungs with a
// simple rate rule and recording per-request latency into mergeable
// stats.QuantileSketches. It is the client-side half the Zoom/Webex/
// Meet measurement study template asks for — a fleet of instrumented
// clients whose delivery metrics (throughput, tail latency, error
// rate) are correlated with what the server's own /metrics reports
// (hit rate, coalescing, injected faults).
//
// Closed-loop means each player issues its next request the moment
// the previous response completes: offered load follows service
// capacity, so the measured latency distribution is the server's, not
// an open-loop queue's. Players reuse dash.Client (including its
// retry policy, so server-side chaos exercises the same backoff paths
// the simulated sessions carry).
//
// Concurrency discipline (the invariants coalvet enforces): every
// player owns a private recorder — sketch, counters, per-rung map —
// indexed by player number; the coordinator merges them only after
// wg.Wait. Player seeds come from FNV identity lanes (study.UserSeed
// idiom), never index arithmetic. The wall clock is injected (Now and
// Sleep in Config), wired from the binary's main package.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/stats"
)

// Latency sketch schema: microseconds over [0, 10s) in 50µs bins,
// exact below 4096 observations. All player sketches share it so they
// merge; the merged fleet sketch is exact for small runs and bounded
// (±50µs) at scale.
const (
	sketchLoUS     = 0
	sketchHiUS     = 10e6
	sketchBins     = 200000
	sketchExactCap = 4096
)

// newLatencySketch builds a sketch of the shared schema.
func newLatencySketch() *stats.QuantileSketch {
	return stats.NewQuantileSketch(sketchLoUS, sketchHiUS, sketchBins, sketchExactCap)
}

// Config shapes one load run.
type Config struct {
	// BaseURL is the dashserve process under test.
	BaseURL string
	// Players is the number of concurrent closed-loop players.
	Players int
	// Duration bounds the run in wall time (default 5s).
	Duration time.Duration
	// MaxSegments caps the segments each player fetches; 0 means
	// duration-bound only. Tests use it for exact request counts.
	MaxSegments int
	// Seed feeds the per-player FNV lanes (start offsets).
	Seed int64
	// Retry arms each player's dash.Client; zero Attempts leaves the
	// client single-attempt.
	Retry dash.RetryPolicy
	// RateSafety scales the measured throughput before rung selection
	// (default 0.8): pick the highest rung whose bitrate fits inside
	// safety x measured rate, the classic rate-based ABR rule.
	RateSafety float64
	// Now and Sleep inject the wall clock (time.Now / time.Sleep from
	// the binary's main package; tests may fake them). Both required.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// Result is the merged outcome of a run.
type Result struct {
	Players  int
	Elapsed  time.Duration
	Requests int64
	Errors   int64
	Bytes    int64
	// Latency holds every request's wall latency in microseconds
	// (including retries and backoff — the stall a player felt).
	Latency *stats.QuantileSketch
	// PerRung counts successful fetches per representation id.
	PerRung map[string]int64
	// ServerMetrics is the server's /metrics snapshot taken after the
	// run (nil if the caller did not fetch it).
	ServerMetrics map[string]float64
}

// RequestsPerSec returns the sustained request throughput.
func (r *Result) RequestsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// BitsPerSec returns the sustained delivery throughput.
func (r *Result) BitsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Elapsed.Seconds()
}

// ErrorRate returns the fraction of requests that failed after
// exhausting retries.
func (r *Result) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// CacheHitRate extracts the server-side cache hit rate from the
// /metrics snapshot; ok is false when the server ran without a cache
// (or the snapshot was never fetched).
func (r *Result) CacheHitRate() (float64, bool) {
	v, ok := r.ServerMetrics["dash.cache.hit_rate"]
	return v, ok
}

// playerSeed derives one player's seed lane from the run seed — an
// FNV identity hash, the same idiom as study.UserSeed, so lanes are
// independent (index arithmetic would correlate neighbors).
func playerSeed(seed int64, player int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "loadgen|player|%d", player)
	return seed + int64(h.Sum64()&0x7fffffff)
}

// recorder is one player's private metrics — written only by that
// player's goroutine, merged by the coordinator after the drain.
type recorder struct {
	requests int64
	errors   int64
	bytes    int64
	latency  *stats.QuantileSketch
	perRung  map[string]int64
}

// pickRung returns the highest-bitrate representation whose bitrate
// fits the budget, falling back to the lowest rung. reps must be
// sorted by ascending bitrate.
func pickRung(reps []dash.RungDTO, budgetBPS float64) dash.RungDTO {
	best := reps[0]
	for _, rep := range reps[1:] {
		if rep.Bitrate <= budgetBPS {
			best = rep
		}
	}
	return best
}

// Run executes the load: fetches the manifest once, spawns
// Config.Players closed-loop players, and merges their recorders.
// The player count is a configured capacity, not a data size, so
// goroutine creation is bounded by construction.
func Run(cfg Config) (*Result, error) {
	if cfg.Now == nil || cfg.Sleep == nil {
		panic("loadgen: Config needs Now and Sleep; pass time.Now/time.Sleep from the binary's main package")
	}
	if cfg.Players <= 0 {
		cfg.Players = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.RateSafety <= 0 {
		cfg.RateSafety = 0.8
	}

	// One shared transport sized for the fleet: the default transport
	// keeps 2 idle conns per host, which at 1000 players would churn
	// a connection (and an ephemeral port) per request.
	transport := &http.Transport{
		MaxIdleConns:        cfg.Players + 16,
		MaxIdleConnsPerHost: cfg.Players + 16,
		IdleConnTimeout:     90 * time.Second,
	}
	defer transport.CloseIdleConnections()

	newClient := func() *dash.Client {
		c := dash.NewClient(cfg.BaseURL, cfg.Now)
		c.HTTP = &http.Client{Transport: transport, Timeout: 30 * time.Second}
		if cfg.Retry.Attempts > 0 {
			c.SetRetry(cfg.Retry, cfg.Sleep)
		}
		return c
	}

	manifest, err := newClient().FetchManifest()
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if len(manifest.Representations) == 0 {
		return nil, fmt.Errorf("loadgen: manifest has no representations")
	}
	reps := append([]dash.RungDTO(nil), manifest.Representations...)
	sort.Slice(reps, func(i, j int) bool {
		if reps[i].Bitrate != reps[j].Bitrate {
			return reps[i].Bitrate < reps[j].Bitrate
		}
		return reps[i].ID < reps[j].ID
	})
	nsegs := int(manifest.DurationSec / manifest.SegmentDuration)
	if nsegs <= 0 {
		nsegs = 1
	}

	recorders := make([]recorder, cfg.Players)
	for i := range recorders {
		recorders[i] = recorder{latency: newLatencySketch(), perRung: make(map[string]int64)}
	}

	start := cfg.Now()
	deadline := start.Add(cfg.Duration)
	done := make(chan int, cfg.Players)
	for i := 0; i < cfg.Players; i++ {
		go func(i int) {
			defer func() { done <- i }()
			runPlayer(&cfg, newClient(), reps, nsegs, i, deadline, &recorders[i])
		}(i)
	}
	for i := 0; i < cfg.Players; i++ {
		<-done
	}
	elapsed := cfg.Now().Sub(start)

	res := &Result{
		Players: cfg.Players,
		Elapsed: elapsed,
		Latency: newLatencySketch(),
		PerRung: make(map[string]int64),
	}
	for i := range recorders {
		rec := &recorders[i]
		res.Requests += rec.requests
		res.Errors += rec.errors
		res.Bytes += rec.bytes
		res.Latency.Merge(rec.latency)
		for _, rep := range reps {
			if n := rec.perRung[rep.ID]; n > 0 {
				res.PerRung[rep.ID] += n
			}
		}
	}
	return res, nil
}

// runPlayer is one closed-loop player: walk segments from a seeded
// start offset, measure each fetch, adapt the rung to the measured
// rate, stop at the deadline (or segment cap).
func runPlayer(cfg *Config, client *dash.Client, reps []dash.RungDTO, nsegs, player int, deadline time.Time, rec *recorder) {
	rng := rand.New(rand.NewSource(playerSeed(cfg.Seed, player)))
	seg := rng.Intn(nsegs)
	rep := reps[0] // start conservative, like a cold player
	ewmaBPS := 0.0
	for n := 0; cfg.MaxSegments == 0 || n < cfg.MaxSegments; n++ {
		if !cfg.Now().Before(deadline) {
			return
		}
		size, dur, err := client.FetchSegment(rep.ID, seg)
		rec.requests++
		if dur > 0 {
			rec.latency.Add(float64(dur.Microseconds()))
		} else if err == nil {
			rec.latency.Add(0)
		}
		if err != nil {
			rec.errors++
			// Back to the bottom rung after a failure, like the player
			// model's cold restart.
			rep = reps[0]
			ewmaBPS = 0
			continue
		}
		rec.bytes += int64(size)
		rec.perRung[rep.ID]++
		if dur > 0 {
			rate := float64(size) * 8 / dur.Seconds()
			if ewmaBPS == 0 {
				ewmaBPS = rate
			} else {
				ewmaBPS = 0.5*ewmaBPS + 0.5*rate
			}
			rep = pickRung(reps, cfg.RateSafety*ewmaBPS)
		}
		seg = (seg + 1) % nsegs
	}
}
