// Virtual-time fleet simulator: the deterministic half of the overload
// experiment. The HTTP loadgen (loadgen.go) measures a real serving
// path, so its latencies carry scheduler and network noise; the
// simulator replays the same player model — closed-loop segment
// fetches, retry budgets, breakers, jittered backoff, Retry-After
// honoring — against the same real server-side defenses (cdn.Governor
// admission/quota/brownout, cdn.Chaos fault windows) on a discrete
// event heap instead of goroutines and sockets. Time is a counter, not
// a clock: the whole 1000-player minute runs in milliseconds, and the
// same SimConfig produces byte-identical reports on every run at any
// Workers count.
//
// The A/B this engine exists to stage is the metastable collapse the
// overload literature (and the paper's memory-pressure story) warns
// about. Unprotected (Protect == nil), the server keeps an unbounded
// FIFO in front of its service slots and never notices abandoned
// clients: after a fault window the retry wave drives queue wait past
// the client timeout, every completed service is for a caller that
// already gave up (doomed work), and goodput pins to zero even though
// the server is saturated with effort — coal, not diamonds. Protected,
// the governor sheds the excess fast with a Retry-After hint, cancels
// abandoned waiters, brownout trades bitrate for capacity, and client
// budgets/jitter decorrelate the wave: the fleet recovers.
//
// Determinism contract (LINTING.md): the event heap orders by
// (virtual time, sequence number); all player state machines run on
// the single event-loop goroutine; Workers parallelizes only the final
// recorder merge, which is commutative integer addition over fixed
// schemas and therefore identical for every partition.
package loadgen

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"coalqoe/internal/cdn"
	"coalqoe/internal/dash"
	"coalqoe/internal/faults"
	"coalqoe/internal/resilience"
)

// simEpoch anchors the virtual clock. Any fixed instant works — the
// governor, chaos gate, and breakers only ever subtract times.
var simEpoch = time.Unix(1700000000, 0)

// SimRung is one ladder entry in the simulated manifest: an id for the
// report and a segment size that sets its service cost.
type SimRung struct {
	ID    string
	Bytes int64
}

// SimProtections is the "B" arm of the experiment: the server- and
// client-side defenses under test. A nil *SimProtections in SimConfig
// runs the unprotected baseline — unbounded queue, oblivious server,
// bare retries.
type SimProtections struct {
	// MaxQueue bounds the admission queue (0 picks the governor default
	// of 4x capacity). The unprotected arm's queue is effectively
	// unbounded instead.
	MaxQueue int
	// RetryAfter is the shed hint (governor default 1s when zero).
	RetryAfter time.Duration
	// Quotas meters tenants (cdn.Governor semantics).
	Quotas []cdn.TenantQuota
	// BrownoutEnter/BrownoutDemote arm quality-for-capacity degradation
	// (cdn.Governor semantics; zero Enter disables).
	BrownoutEnter  float64
	BrownoutDemote int
	// CancelOnTimeout withdraws a queued request when its client times
	// out, instead of letting the server serve it to nobody.
	CancelOnTimeout bool

	// RetryBudget arms a per-player success-refilled retry budget.
	RetryBudget float64
	// BreakerThreshold/BreakerCooldown arm a per-player circuit breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Jitter spreads retry backoff x[0.5,1.5) on each player's lane.
	Jitter bool
}

// SimConfig shapes one virtual-time run.
type SimConfig struct {
	// Players is the fleet size; Tenants assigns them round-robin
	// (player i gets Tenants[i%len]); Seed feeds the FNV lanes.
	Players int
	Tenants []string
	Seed    int64

	// Duration is the virtual run length (default 30s): players start
	// no new fetches after it, in-flight work drains. SegDur is the
	// per-player request cadence (default 4s). Timeout is the client's
	// per-attempt deadline (default 2s). RTT is the modeled network
	// round trip (default 1ms; must stay positive so virtual time
	// always advances). ErrorPause is the jittered sit-out after a
	// failed fetch (default RTT).
	Duration   time.Duration
	SegDur     time.Duration
	Timeout    time.Duration
	RTT        time.Duration
	ErrorPause time.Duration

	// Retry is the capped-exponential policy (dash.Client semantics:
	// Attempts total tries, Backoff doubling to BackoffCap).
	Retry dash.RetryPolicy

	// Ladder is the bitrate ladder, ascending; players request the top
	// rung and brownout demotes down it. Empty picks a 3-rung default.
	Ladder []SimRung

	// Capacity is the server's concurrent service slots (default 16).
	// Each slot serves a segment in ServiceFloor + Bytes/ServiceBytesPerSec
	// (defaults 25ms + bytes/40MB/s).
	Capacity           int
	ServiceFloor       time.Duration
	ServiceBytesPerSec float64

	// Faults is the chaos schedule on the virtual clock (cdn.Chaos
	// semantics; the horizon is the run duration, so windows do not
	// repeat within a run).
	Faults []faults.Window

	// Protect arms the defenses; nil runs the unprotected baseline.
	Protect *SimProtections

	// Workers parallelizes the final recorder merge (default 1). Any
	// value yields byte-identical results; it exists so the race
	// detector exercises the merge and so huge fleets merge faster.
	Workers int
}

// SimResult is a Result plus the simulator-only observables the A/B
// assertions need.
type SimResult struct {
	*Result
	// Attempts counts server-touching tries (retries included) — the
	// retry-amplification numerator.
	Attempts int64
	// Doomed counts services completed for clients that had already
	// timed out: work the server paid for that helped nobody.
	Doomed int64
	// Served counts services delivered to a live client.
	Served int64
	// Tail* cover the last quarter of the run — the recovery window.
	// A fleet that recovered has TailBytes flowing; one stuck in
	// metastable collapse has tail errors and nothing else.
	TailRequests int64
	TailErrors   int64
	TailBytes    int64
	// Governor snapshots the admission controller's ledger.
	Governor cdn.GovernorStats
}

// simTimeoutError is the virtual attempt deadline. It implements
// net.Error so dash.Classify files it as a timeout, exactly like a
// real http.Client deadline.
type simTimeoutError struct{}

func (simTimeoutError) Error() string   { return "sim: attempt deadline exceeded" }
func (simTimeoutError) Timeout() bool   { return true }
func (simTimeoutError) Temporary() bool { return true }

// Event kinds. Outcome delivery is its own event so failures pay the
// RTT before the player reacts.
const (
	evAttempt     = iota // a player fires (or retries) a fetch attempt
	evFail               // a failed attempt's response reaches the player
	evServiceDone        // the server finishes one admitted service
	evTimeout            // a client's per-attempt deadline fires
)

// simEvent is one heap entry. seq breaks time ties in schedule order,
// making the pop sequence a deterministic total order.
type simEvent struct {
	at     time.Duration
	seq    int64
	kind   int
	player int
	req    *simReq
	err    error
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// simReq is one server-touching attempt: queued, in service, or done.
type simReq struct {
	player      int
	ticket      *cdn.Ticket
	originDelay time.Duration
	abandoned   bool // client timed out; any service is doomed
	done        bool // finished, canceled, or delivered
	servedRung  int
	bytes       int64
}

// simPlayer is one player's state machine.
type simPlayer struct {
	tenant  string
	jitter  *rand.Rand
	budget  *resilience.RetryBudget
	breaker *resilience.Breaker
	waited  int64

	dueAt   time.Duration // when the next segment is wanted
	opStart time.Duration // first attempt of the current fetch
	attempt int           // attempts used by the current fetch
	backoff time.Duration // next retry's base delay
	done    bool
}

// sim is the engine. Everything below runs on one goroutine until the
// final merge.
type sim struct {
	cfg   SimConfig
	now   time.Duration
	seq   int64
	heap  eventHeap
	gov   *cdn.Governor
	chaos *cdn.Chaos
	// chaosDelay captures injected latency from the chaos gate's sleep
	// hook (MemSpike windows) for the attempt being evaluated.
	chaosDelay time.Duration

	tickets   map[*cdn.Ticket]*simReq
	players   []simPlayer
	recorders []recorder

	attempts  int64
	doomed    int64
	served    int64
	tailReqs  int64
	tailErrs  int64
	tailBytes int64
}

// RunSim executes one virtual-time run and returns its merged result.
// Deterministic: the same config (including Workers) and seed produce
// a byte-identical WriteReport rendering, and changing Workers alone
// changes nothing but merge parallelism.
func RunSim(cfg SimConfig) (*SimResult, error) {
	if cfg.Players <= 0 {
		return nil, fmt.Errorf("loadgen: sim needs at least one player")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.SegDur <= 0 {
		cfg.SegDur = 4 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.RTT <= 0 {
		cfg.RTT = time.Millisecond
	}
	if cfg.ErrorPause <= 0 {
		cfg.ErrorPause = cfg.RTT
	}
	if cfg.Retry.Attempts <= 0 {
		cfg.Retry.Attempts = 1
	}
	if cfg.Retry.Backoff <= 0 {
		cfg.Retry.Backoff = 100 * time.Millisecond
	}
	if cfg.Retry.BackoffCap <= 0 {
		cfg.Retry.BackoffCap = 2 * time.Second
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 16
	}
	if cfg.ServiceFloor <= 0 {
		cfg.ServiceFloor = 25 * time.Millisecond
	}
	if cfg.ServiceBytesPerSec <= 0 {
		cfg.ServiceBytesPerSec = 40 << 20
	}
	if len(cfg.Ladder) == 0 {
		cfg.Ladder = []SimRung{
			{ID: "240p30", Bytes: 250_000},
			{ID: "480p30", Bytes: 500_000},
			{ID: "1080p60", Bytes: 1_000_000},
		}
	}
	ladder := append([]SimRung(nil), cfg.Ladder...)
	sort.SliceStable(ladder, func(i, j int) bool { return ladder[i].Bytes < ladder[j].Bytes })
	cfg.Ladder = ladder
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}

	s := &sim{cfg: cfg, tickets: make(map[*cdn.Ticket]*simReq)}
	vnow := func() time.Time { return simEpoch.Add(s.now) }

	gcfg := cdn.GovernorConfig{MaxInflight: cfg.Capacity}
	if p := cfg.Protect; p != nil {
		gcfg.MaxQueue = p.MaxQueue
		gcfg.RetryAfter = p.RetryAfter
		gcfg.Quotas = p.Quotas
		gcfg.BrownoutEnter = p.BrownoutEnter
		gcfg.BrownoutDemote = p.BrownoutDemote
	} else {
		// The unprotected baseline: a queue deep enough that nothing is
		// ever shed — every player can park many abandoned requests.
		gcfg.MaxQueue = cfg.Players * 64
	}
	s.gov = cdn.NewGovernor(gcfg, vnow)
	s.chaos = cdn.NewChaosFromWindows(cfg.Faults, cfg.Seed, cfg.Duration,
		vnow, func(d time.Duration) { s.chaosDelay += d })

	s.players = make([]simPlayer, cfg.Players)
	s.recorders = make([]recorder, cfg.Players)
	for i := range s.players {
		p := &s.players[i]
		p.tenant = tenantAt(cfg.Tenants, i)
		p.backoff = cfg.Retry.Backoff
		rng := rand.New(rand.NewSource(playerSeed(cfg.Seed, i)))
		if pr := cfg.Protect; pr != nil {
			if pr.RetryBudget > 0 {
				p.budget = resilience.NewRetryBudget(resilience.BudgetConfig{Capacity: pr.RetryBudget})
			}
			if pr.BreakerThreshold > 0 {
				p.breaker = resilience.NewBreaker(resilience.BreakerConfig{
					FailThreshold: pr.BreakerThreshold,
					Cooldown:      pr.BreakerCooldown,
				})
			}
			if pr.Jitter {
				// The same two-stream lane discipline as runPlayer: the
				// jitter stream must not perturb the start-offset draw.
				p.jitter = rand.New(rand.NewSource(playerSeed(cfg.Seed, i) ^ 0x6a09e667))
			}
		}
		s.recorders[i] = recorder{
			latency:    newLatencySketch(),
			perRung:    make(map[string]int64),
			errClasses: make([]int64, len(dash.ErrorClasses)),
		}
		p.dueAt = time.Duration(rng.Int63n(int64(cfg.SegDur)))
		s.schedule(p.dueAt, simEvent{kind: evAttempt, player: i})
	}

	for len(s.heap) > 0 {
		ev := heap.Pop(&s.heap).(simEvent)
		s.now = ev.at
		switch ev.kind {
		case evAttempt:
			s.fireAttempt(ev.player)
		case evFail:
			s.attemptFailed(ev.player, ev.err)
		case evServiceDone:
			s.serviceDone(ev.req)
		case evTimeout:
			s.timeoutFired(ev.req)
		}
	}
	return s.merge(), nil
}

// schedule pushes an event at the given virtual instant.
func (s *sim) schedule(at time.Duration, ev simEvent) {
	s.seq++
	ev.at, ev.seq = at, s.seq
	heap.Push(&s.heap, ev)
}

// tenantAt assigns tenants round-robin ("" without a tenant model).
func tenantAt(tenants []string, player int) string {
	if len(tenants) == 0 {
		return ""
	}
	return tenants[player%len(tenants)]
}

// vtime is the current virtual instant as a time.Time (for the breaker
// API, which takes explicit nows).
func (s *sim) vtime() time.Time { return simEpoch.Add(s.now) }

// inTail reports whether the current instant is in the recovery window
// (the last quarter of the configured run).
func (s *sim) inTail() bool { return 4*s.now >= 3*s.cfg.Duration }

// fireAttempt runs one fetch attempt: breaker gate, chaos gate,
// admission, then service or a scheduled failure.
func (s *sim) fireAttempt(player int) {
	p := &s.players[player]
	if p.attempt == 0 {
		if s.now >= s.cfg.Duration {
			p.done = true
			return
		}
		p.opStart = s.now
	}
	p.attempt++
	// The breaker gates every attempt; a fast-fail ends the whole
	// fetch without touching the network and without feeding the
	// breaker (mirroring dash.Client.withRetry).
	if !p.breaker.Allow(s.vtime()) {
		s.opFailed(player, fmt.Errorf("%w (attempt %d)", dash.ErrCircuitOpen, p.attempt))
		return
	}
	s.attempts++

	s.chaosDelay = 0
	eff := s.chaos.Gate()
	rtt := s.cfg.RTT + s.chaosDelay
	if eff.Status != 0 {
		s.schedule(s.now+rtt, simEvent{kind: evFail, player: player,
			err: &dash.StatusError{Status: eff.Status, Msg: fmt.Sprintf("sim: chaos %d", eff.Status)}})
		return
	}

	d := s.gov.Admit(p.tenant)
	switch d.Kind {
	case cdn.Shed:
		s.schedule(s.now+rtt, simEvent{kind: evFail, player: player,
			err: &dash.StatusError{Status: d.Status, RetryAfter: wireRetryAfter(d.RetryAfter),
				Msg: fmt.Sprintf("sim: shed %d", d.Status)}})
	case cdn.Admitted:
		req := &simReq{player: player, originDelay: eff.OriginDelay}
		s.startService(req, d.Demote)
		s.schedule(s.now+s.cfg.Timeout, simEvent{kind: evTimeout, req: req})
	case cdn.Queued:
		req := &simReq{player: player, ticket: d.Ticket, originDelay: eff.OriginDelay}
		s.tickets[d.Ticket] = req
		s.schedule(s.now+s.cfg.Timeout, simEvent{kind: evTimeout, req: req})
	}
}

// wireRetryAfter mirrors the header round trip: the server advertises
// ceil-seconds (dash.retryAfterSeconds), the client parses integer
// seconds capped at its maximum (dash.parseRetryAfter).
func wireRetryAfter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	hint := time.Duration(secs) * time.Second
	if hint > 10*time.Second {
		hint = 10 * time.Second
	}
	return hint
}

// startService begins serving req on the slot the governor granted,
// applying any brownout demotion to the served rung.
func (s *sim) startService(req *simReq, demote int) {
	idx := len(s.cfg.Ladder) - 1 - demote
	if idx < 0 {
		idx = 0
	}
	req.servedRung = idx
	req.bytes = s.cfg.Ladder[idx].Bytes
	dur := s.cfg.ServiceFloor + req.originDelay +
		time.Duration(float64(req.bytes)/s.cfg.ServiceBytesPerSec*float64(time.Second))
	s.schedule(s.now+s.cfg.RTT+dur, simEvent{kind: evServiceDone, req: req})
}

// serviceDone completes one service: hand the freed slot to the DRR
// queue, then deliver the bytes — unless the client already gave up,
// in which case the work was doomed.
func (s *sim) serviceDone(req *simReq) {
	req.done = true
	if t := s.gov.Release(); t != nil {
		g := <-t.C // buffered; Release already sent the grant
		next := s.tickets[t]
		delete(s.tickets, t)
		if next != nil {
			next.ticket = nil
			s.startService(next, g.Demote)
		}
	}
	if req.abandoned {
		s.doomed++
		return
	}
	s.served++
	s.opSucceeded(req.player, req)
}

// timeoutFired abandons an attempt whose deadline passed. Protected
// servers cancel queued waiters; the unprotected baseline leaves them
// to be served to nobody.
func (s *sim) timeoutFired(req *simReq) {
	if req.done || req.abandoned {
		return
	}
	req.abandoned = true
	if req.ticket != nil && s.cfg.Protect != nil && s.cfg.Protect.CancelOnTimeout {
		if s.gov.Cancel(req.ticket) {
			delete(s.tickets, req.ticket)
			req.done = true
		}
	}
	s.attemptFailed(req.player, simTimeoutError{})
}

// attemptFailed delivers one failed attempt to its player and decides
// the retry: policy attempts, then the budget, then the paced delay
// (Retry-After hint over capped-exponential backoff, jittered) — the
// same priority order as dash.Client.withRetry.
func (s *sim) attemptFailed(player int, err error) {
	p := &s.players[player]
	p.breaker.OnFailure(s.vtime())
	var se *dash.StatusError
	if errors.As(err, &se) && se.Status >= 400 && se.Status < 500 && se.Status != 429 {
		s.opFailed(player, err) // non-retryable client error
		return
	}
	if p.attempt >= s.cfg.Retry.Attempts {
		s.opFailed(player, err)
		return
	}
	if !p.budget.Allow() {
		s.opFailed(player, fmt.Errorf("%w after %w", dash.ErrBudgetExhausted, err))
		return
	}
	delay := p.backoff
	if p.backoff *= 2; p.backoff > s.cfg.Retry.BackoffCap {
		p.backoff = s.cfg.Retry.BackoffCap
	}
	if se != nil && se.RetryAfter > delay {
		delay = se.RetryAfter
		p.waited++
	}
	s.schedule(s.now+resilience.Jitter(p.jitter, delay), simEvent{kind: evAttempt, player: player})
}

// opFailed finishes a fetch in failure: record it, sit out the error
// pause, then want the next segment.
func (s *sim) opFailed(player int, err error) {
	p := &s.players[player]
	rec := &s.recorders[player]
	rec.requests++
	rec.errors++
	rec.errClasses[classIndex[dash.Classify(err)]]++
	rec.latency.Add(float64((s.now - p.opStart).Microseconds()))
	if s.inTail() {
		s.tailReqs++
		s.tailErrs++
	}
	p.attempt = 0
	p.backoff = s.cfg.Retry.Backoff
	pause := resilience.Jitter(p.jitter, s.cfg.ErrorPause)
	if pause <= 0 {
		pause = s.cfg.RTT // virtual time must advance
	}
	p.dueAt = s.now + pause
	s.nextOp(player)
}

// opSucceeded finishes a fetch in success and schedules the next one
// on the segment cadence (immediately when the fetch overran it — the
// player is rebuffering).
func (s *sim) opSucceeded(player int, req *simReq) {
	p := &s.players[player]
	p.breaker.OnSuccess(s.vtime())
	p.budget.OnSuccess()
	rec := &s.recorders[player]
	rec.requests++
	rec.bytes += req.bytes
	rec.perRung[s.cfg.Ladder[req.servedRung].ID]++
	rec.latency.Add(float64((s.now - p.opStart).Microseconds()))
	if s.inTail() {
		s.tailReqs++
		s.tailBytes += req.bytes
	}
	p.attempt = 0
	p.backoff = s.cfg.Retry.Backoff
	if p.dueAt += s.cfg.SegDur; p.dueAt < s.now {
		p.dueAt = s.now
	}
	s.nextOp(player)
}

// nextOp schedules the player's next fetch, or retires the player when
// the run is over.
func (s *sim) nextOp(player int) {
	p := &s.players[player]
	if p.dueAt >= s.cfg.Duration {
		p.done = true
		return
	}
	s.schedule(p.dueAt, simEvent{kind: evAttempt, player: player})
}

// merge folds the per-player recorders into one Result. Workers each
// merge a contiguous player range into a partial, and the partials
// fold in index order: integer addition over fixed schemas, so the
// outcome is identical for every worker count.
func (s *sim) merge() *SimResult {
	cfg := &s.cfg
	workers := cfg.Workers
	if workers > cfg.Players {
		workers = cfg.Players
	}
	partials := make([]recorder, workers)
	var wg sync.WaitGroup
	// Goroutine count is bounded by Workers, a configured capacity.
	for w := 0; w < workers; w++ {
		partials[w] = recorder{
			latency:    newLatencySketch(),
			perRung:    make(map[string]int64),
			errClasses: make([]int64, len(dash.ErrorClasses)),
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := &partials[w]
			lo, hi := w*cfg.Players/workers, (w+1)*cfg.Players/workers
			for i := lo; i < hi; i++ {
				rec := &s.recorders[i]
				part.requests += rec.requests
				part.errors += rec.errors
				part.bytes += rec.bytes
				part.latency.Merge(rec.latency)
				for _, rung := range cfg.Ladder {
					if n := rec.perRung[rung.ID]; n > 0 {
						part.perRung[rung.ID] += n
					}
				}
				for ci := range rec.errClasses {
					part.errClasses[ci] += rec.errClasses[ci]
				}
			}
		}(w)
	}
	wg.Wait()

	res := &Result{
		Players:       cfg.Players,
		Elapsed:       cfg.Duration,
		Latency:       newLatencySketch(),
		PerRung:       make(map[string]int64),
		ErrorsByClass: make(map[string]int64),
	}
	for w := range partials {
		part := &partials[w]
		res.Requests += part.requests
		res.Errors += part.errors
		res.Bytes += part.bytes
		res.Latency.Merge(part.latency)
		for _, rung := range cfg.Ladder {
			if n := part.perRung[rung.ID]; n > 0 {
				res.PerRung[rung.ID] += n
			}
		}
		for ci, class := range dash.ErrorClasses {
			if n := part.errClasses[ci]; n > 0 {
				res.ErrorsByClass[class] += n
			}
		}
	}
	if len(cfg.Tenants) > 0 {
		res.PerTenant = make(map[string]TenantResult, len(cfg.Tenants))
		for i := range s.recorders {
			rec := &s.recorders[i]
			tr := res.PerTenant[tenantAt(cfg.Tenants, i)]
			tr.Players++
			tr.Requests += rec.requests
			tr.Errors += rec.errors
			tr.Bytes += rec.bytes
			res.PerTenant[tenantAt(cfg.Tenants, i)] = tr
		}
	}
	for i := range s.players {
		p := &s.players[i]
		bs, ks := p.budget.Stats(), p.breaker.Stats()
		res.Resilience.BudgetSpent += bs.Spent
		res.Resilience.BudgetDenied += bs.Denied
		res.Resilience.Opens += ks.Opens
		res.Resilience.FastFails += ks.FastFails
		res.Resilience.Probes += ks.Probes
		res.Resilience.Waited += p.waited
	}

	gs := s.gov.Stats()
	sm := s.gov.MetricsExtras()
	cs := s.chaos.Stats()
	sm["dash.chaos.rejected"] = float64(cs.Rejected)
	sm["dash.chaos.delayed"] = float64(cs.Delayed)
	sm["dash.chaos.stalled"] = float64(cs.Stalled)
	sm["sim.attempts"] = float64(s.attempts)
	sm["sim.server.served"] = float64(s.served)
	sm["sim.server.doomed"] = float64(s.doomed)
	sm["sim.tail.requests"] = float64(s.tailReqs)
	sm["sim.tail.errors"] = float64(s.tailErrs)
	sm["sim.tail.bytes"] = float64(s.tailBytes)
	res.ServerMetrics = sm

	return &SimResult{
		Result:       res,
		Attempts:     s.attempts,
		Doomed:       s.doomed,
		Served:       s.served,
		TailRequests: s.tailReqs,
		TailErrors:   s.tailErrs,
		TailBytes:    s.tailBytes,
		Governor:     gs,
	}
}
