package study

import (
	"fmt"
	"math/rand"
	"time"

	"coalqoe/internal/lmkd"
	"coalqoe/internal/units"
)

// PopulationModel supplies the fleet engine's participants. The
// contract that makes streaming, sharding and resume work: User(i)
// must be a pure function of (model, i) — no state carried between
// calls — so any shard can materialize any participant independently,
// in any order, across process restarts.
type PopulationModel interface {
	// Name identifies the model in checkpoints; resuming under a
	// different model is refused.
	Name() string
	// Size is the number of recruits.
	Size() int64
	// User materializes participant i ∈ [0, Size).
	User(i int64) *User
}

// Roster wraps a pre-generated participant list (e.g. GenerateUsers,
// which reproduces the paper's 80-recruit demographics) as a
// PopulationModel. Use it for small panels; it retains every User.
type Roster struct {
	users []*User
}

// NewRoster builds a roster population over the given users.
func NewRoster(users []*User) *Roster { return &Roster{users: users} }

// Name implements PopulationModel.
func (r *Roster) Name() string { return fmt.Sprintf("roster/%d", len(r.users)) }

// Size implements PopulationModel.
func (r *Roster) Size() int64 { return int64(len(r.users)) }

// User implements PopulationModel.
func (r *Roster) User(i int64) *User { return r.users[i] }

// RAMTier is one device-class stratum of a stratified population.
type RAMTier struct {
	Name   string
	RAM    units.Bytes
	Weight int
	// CoreBase/CoreExtra bound the core count (base + 0..extra*2).
	CoreBase, CoreExtra int
}

// VendorConfig is one manufacturer stratum: the paper's fleet spans 12
// manufacturers whose userspace LMK tunings differ visibly (Figure 5
// observes per-vendor threshold spread). Devices of the same vendor
// share their signal-threshold spread (via the vendor-keyed device
// profile) and, when LMK is non-nil, a vendor lmkd tuning.
type VendorConfig struct {
	Name   string
	Weight int
	// LMK overrides the stock lmkd config for this vendor's devices
	// (nil keeps stock).
	LMK *lmkd.Config
}

// UsageBand is one usage-intensity stratum: how many hours a
// participant contributes and how hard they drive the device.
type UsageBand struct {
	Name   string
	Weight int
	// HoursLo/HoursHi bound the contributed interactive hours.
	HoursLo, HoursHi float64
	// Intensity scales app size and multitasking depth.
	Intensity float64
	// HoarderChance is the probability of the never-closes-apps tail
	// (the paper's devices spending >40% of time under pressure).
	HoarderChance float64
}

// Stratified is a planet-scale synthetic panel: participants are drawn
// from RAM-tier × vendor × usage-band strata instead of the uniform
// GenerateUsers demographics, and each participant is derived from an
// FNV lane of their index — User(i) never depends on User(j), so a
// million-user panel needs no million-user roster.
type Stratified struct {
	PopName string
	Seed    int64
	N       int64
	Tiers   []RAMTier
	Vendors []VendorConfig
	Bands   []UsageBand
}

// DefaultPopulation is the stratified model used for large fleets: RAM
// tiers skewed toward the low end (the study spans entry-level to
// flagship), twelve vendors with three LMK tuning families, and
// light/typical/heavy/hoarder usage bands.
func DefaultPopulation(n, seed int64) *Stratified {
	// Three vendor LMK families: stock AOSP, aggressive background
	// reapers (kill early, short cooldown), and conservative OEMs that
	// let caches run deep before intervening.
	aggressive := &lmkd.Config{AvailCachedFrac: 0.19, MinFreeCachedFrac: 0.10, KillCooldown: 300 * time.Millisecond}
	conservative := &lmkd.Config{AvailCachedFrac: 0.11, MinFreeCachedFrac: 0.06, KillCooldown: 800 * time.Millisecond}
	return &Stratified{
		PopName: "stratified/v1",
		Seed:    seed,
		N:       n,
		Tiers: []RAMTier{
			{Name: "entry-1g", RAM: 1 * units.GiB, Weight: 14, CoreBase: 4, CoreExtra: 0},
			{Name: "entry-2g", RAM: 2 * units.GiB, Weight: 24, CoreBase: 4, CoreExtra: 1},
			{Name: "mid-3g", RAM: 3 * units.GiB, Weight: 22, CoreBase: 4, CoreExtra: 2},
			{Name: "mid-4g", RAM: 4 * units.GiB, Weight: 20, CoreBase: 6, CoreExtra: 1},
			{Name: "high-6g", RAM: 6 * units.GiB, Weight: 12, CoreBase: 8, CoreExtra: 0},
			{Name: "flagship-8g", RAM: 8 * units.GiB, Weight: 8, CoreBase: 8, CoreExtra: 0},
		},
		Vendors: []VendorConfig{
			{Name: "aosp", Weight: 10},
			{Name: "nokia", Weight: 9},
			{Name: "moto", Weight: 9},
			{Name: "sony", Weight: 7},
			{Name: "samsung", Weight: 14, LMK: aggressive},
			{Name: "xiaomi", Weight: 12, LMK: aggressive},
			{Name: "oppo", Weight: 9, LMK: aggressive},
			{Name: "vivo", Weight: 8, LMK: aggressive},
			{Name: "huawei", Weight: 10, LMK: conservative},
			{Name: "lg", Weight: 5, LMK: conservative},
			{Name: "htc", Weight: 4, LMK: conservative},
			{Name: "asus", Weight: 3, LMK: conservative},
		},
		Bands: []UsageBand{
			{Name: "light", Weight: 30, HoursLo: 1, HoursHi: 14, Intensity: 0.75, HoarderChance: 0.01},
			{Name: "typical", Weight: 45, HoursLo: 8, HoursHi: 40, Intensity: 1.0, HoarderChance: 0.05},
			{Name: "heavy", Weight: 20, HoursLo: 20, HoursHi: 90, Intensity: 1.3, HoarderChance: 0.10},
			{Name: "hoarder", Weight: 5, HoursLo: 15, HoursHi: 140, Intensity: 1.5, HoarderChance: 1},
		},
	}
}

// Name implements PopulationModel.
func (p *Stratified) Name() string { return p.PopName }

// Size implements PopulationModel.
func (p *Stratified) Size() int64 { return p.N }

// pickWeighted selects an index by integer weights.
func pickWeighted(rng *rand.Rand, total int, weightAt func(int) int, n int) int {
	x := rng.Intn(total)
	for i := 0; i < n; i++ {
		w := weightAt(i)
		if x < w {
			return i
		}
		x -= w
	}
	return n - 1
}

// User implements PopulationModel: participant i is derived entirely
// from the FNV lane of their identity, the same discipline as the
// per-user simulation seeds.
func (p *Stratified) User(i int64) *User {
	id := fmt.Sprintf("u%08d", i)
	rng := rand.New(rand.NewSource(UserSeed(p.Seed, "pop|"+id)))

	tierTotal, vendorTotal, bandTotal := 0, 0, 0
	for _, t := range p.Tiers {
		tierTotal += t.Weight
	}
	for _, v := range p.Vendors {
		vendorTotal += v.Weight
	}
	for _, b := range p.Bands {
		bandTotal += b.Weight
	}
	tier := p.Tiers[pickWeighted(rng, tierTotal, func(i int) int { return p.Tiers[i].Weight }, len(p.Tiers))]
	vendor := p.Vendors[pickWeighted(rng, vendorTotal, func(i int) int { return p.Vendors[i].Weight }, len(p.Vendors))]
	band := p.Bands[pickWeighted(rng, bandTotal, func(i int) int { return p.Bands[i].Weight }, len(p.Bands))]

	gib := float64(tier.RAM) / float64(units.GiB)
	intensity := band.Intensity * (0.85 + 0.3*rng.Float64())
	hoarder := rng.Float64() < band.HoarderChance
	if hoarder {
		intensity *= 1.6
	}
	u := &User{
		ID:               id,
		Vendor:           vendor.Name,
		LMK:              vendor.LMK,
		RAM:              tier.RAM,
		Cores:            tier.CoreBase + 2*rng.Intn(tier.CoreExtra+1),
		CoreSpeed:        1.0 + 0.4*gib*rng.Float64(),
		InteractiveHours: band.HoursLo + rng.Float64()*(band.HoursHi-band.HoursLo),
		LaunchEvery:      time.Duration(25+rng.Intn(120)) * time.Second,
		AppMiB:           (90 + 130*rng.Float64()) * intensity * (0.85 + 0.08*gib),
		MultitaskApps:    3 + int(gib/2) + rng.Intn(4) + int(2*(intensity-1)),
	}
	if u.MultitaskApps < 1 {
		u.MultitaskApps = 1
	}
	if hoarder {
		u.MultitaskApps += 5
		u.LaunchEvery /= 2
	}
	u.Ratings = surveyRatings(rng)
	return u
}
