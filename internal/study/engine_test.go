package study

import (
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// aggBytes is the byte-identity oracle: the serialized canonical state.
func aggBytes(t *testing.T, a *FleetAggregate) string {
	t.Helper()
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal aggregate: %v", err)
	}
	return string(data)
}

func TestUserSeedStableAndSpread(t *testing.T) {
	if UserSeed(7, "user01") != UserSeed(7, "user01") {
		t.Fatal("UserSeed not stable")
	}
	// The old additive rule mapped consecutive users onto arithmetically
	// related lanes; identity hashing must not.
	d1 := UserSeed(7, "user01") - UserSeed(7, "user00")
	d2 := UserSeed(7, "user02") - UserSeed(7, "user01")
	if d1 == d2 {
		t.Fatalf("consecutive user seeds are arithmetically related (delta %d)", d1)
	}
	if UserSeed(7, "a") == UserSeed(8, "a")-1 && UserSeed(7, "b") == UserSeed(8, "b")-1 {
		// Seeds shift with the fleet seed — that part is by design.
		t.Log("fleet-seed shift preserved")
	}
}

// TestStreamSerialVsSharded holds the tentpole determinism contract:
// the merged aggregate serializes byte-identically whatever the shard
// and worker counts. Run under -race in CI, this doubles as the data
// race check on the engine.
func TestStreamSerialVsSharded(t *testing.T) {
	n := int64(1500)
	pop := DefaultPopulation(n, 42)
	var want string
	for _, c := range []struct{ shards, workers int }{
		{1, 1}, {5, 2}, {16, 8}, {97, 4},
	} {
		agg, st, err := RunFleetStream(FleetConfig{
			Seed: 42, Population: pop,
			Shards: c.shards, Workers: c.workers,
			Runner: SyntheticRunner(),
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", c.shards, err)
		}
		if st.Shards != c.shards {
			t.Fatalf("shards=%d: stats reported %d", c.shards, st.Shards)
		}
		got := aggBytes(t, agg)
		if want == "" {
			want = got
			if agg.Recruited != n {
				t.Fatalf("recruited %d, want %d", agg.Recruited, n)
			}
			continue
		}
		if got != want {
			t.Errorf("shards=%d workers=%d: aggregate differs from serial run", c.shards, c.workers)
		}
	}
}

// TestStreamCheckpointResume kills a run mid-flight (HaltAfter) and
// resumes it; the finished aggregate must be byte-identical to an
// uninterrupted run.
func TestStreamCheckpointResume(t *testing.T) {
	pop := DefaultPopulation(600, 9)
	base := FleetConfig{
		Seed: 9, Population: pop, Shards: 8, Workers: 3,
		CheckpointEvery: 40, Runner: SyntheticRunner(),
	}

	straight := base
	full, _, err := RunFleetStream(straight)
	if err != nil {
		t.Fatalf("straight run: %v", err)
	}
	want := aggBytes(t, full)

	killed := base
	killed.CheckpointDir = t.TempDir()
	killed.HaltAfter = 150
	if agg, st, err := RunFleetStream(killed); !errors.Is(err, ErrHalted) {
		t.Fatalf("halted run: agg=%v err=%v", agg, err)
	} else if agg != nil {
		t.Fatal("halted run returned a partial aggregate")
	} else if st.Checkpoints == 0 {
		t.Fatal("halted run wrote no checkpoints")
	}

	resumed := killed
	resumed.HaltAfter = 0
	resumed.Resume = true
	reg := telemetry.NewRegistry()
	resumed.Telemetry = reg
	agg, st, err := RunFleetStream(resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if st.UsersSkipped == 0 {
		t.Error("resume re-simulated everything (no users skipped)")
	}
	if st.UsersRun+st.UsersSkipped != 600 {
		t.Errorf("run %d + skipped %d != 600", st.UsersRun, st.UsersSkipped)
	}
	if got := aggBytes(t, agg); got != want {
		t.Error("resumed aggregate differs from uninterrupted run")
	}
	if reg.Counter("fleet/users_run").Value() != st.UsersRun {
		t.Errorf("telemetry users_run = %d, want %d",
			reg.Counter("fleet/users_run").Value(), st.UsersRun)
	}
}

func TestStreamResumeRefusesForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	pop := DefaultPopulation(200, 1)
	cfg := FleetConfig{Seed: 1, Population: pop, Shards: 4, Workers: 2,
		CheckpointDir: dir, HaltAfter: 50, Runner: SyntheticRunner()}
	if _, _, err := RunFleetStream(cfg); !errors.Is(err, ErrHalted) {
		t.Fatalf("halted run: %v", err)
	}
	cfg.Seed = 2 // different run configuration
	cfg.HaltAfter = 0
	cfg.Resume = true
	if _, _, err := RunFleetStream(cfg); err == nil ||
		!strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("resume under a different seed: err = %v, want fingerprint refusal", err)
	}
}

func TestStreamHaltRequiresCheckpointDir(t *testing.T) {
	_, _, err := RunFleetStream(FleetConfig{Users: 10, Seed: 1, HaltAfter: 5,
		Runner: SyntheticRunner()})
	if err == nil {
		t.Fatal("HaltAfter without CheckpointDir must be refused")
	}
}

// TestStreamPanicIsolation: one user's panic becomes a failure record,
// not a dead run — the hardened-executor discipline.
func TestStreamPanicIsolation(t *testing.T) {
	users := GenerateUsers(30, 5)
	var victim string
	for _, u := range users {
		if u.InteractiveHours >= MinInteractiveHours {
			victim = u.ID
			break
		}
	}
	runner := SyntheticRunner()
	agg, _, err := RunFleetStream(FleetConfig{
		Seed: 5, Population: NewRoster(users), Shards: 4, Workers: 2,
		Runner: func(u *User, seed int64) *DeviceLog {
			if u.ID == victim {
				panic("synthetic kernel fault")
			}
			return runner(u, seed)
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if agg.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", agg.Failed)
	}
	if len(agg.Failures) != 1 || agg.Failures[0].User != victim ||
		!strings.Contains(agg.Failures[0].Reason, "synthetic kernel fault") {
		t.Fatalf("failure record = %+v", agg.Failures)
	}
	// The failed user still counts in the survey (Figure 1) but not in
	// the telemetry denominators (Table 1).
	if agg.Kept <= agg.Failed {
		t.Fatal("no successful users left")
	}
}

// TestStreamMillionUserBounded is the headline scaling property: a
// million-user panel (scaled down under -race) completes with bounded
// heap — no retained DeviceLogs or Samples.
func TestStreamMillionUserBounded(t *testing.T) {
	n := int64(1_000_000)
	if raceEnabled || testing.Short() {
		n = 60_000
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	agg, st, err := RunFleetStream(FleetConfig{
		Seed: 11, Population: DefaultPopulation(n, 11),
		Runner: SyntheticRunner(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if agg.Recruited != n {
		t.Fatalf("recruited %d, want %d", agg.Recruited, n)
	}
	if st.UsersRun != n {
		t.Fatalf("users run %d, want %d", st.UsersRun, n)
	}
	if int64(len(agg.Summaries)) > int64(agg.ExactRetain) || len(agg.Top) > agg.TopK {
		t.Fatalf("retention caps violated: %d summaries, %d top", len(agg.Summaries), len(agg.Top))
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	const heapCap = 256 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > heapCap {
		t.Errorf("heap grew by %d MiB across a %d-user fleet — logs are being retained",
			grew>>20, n)
	}

	// Sanity on the streamed figures at scale: Table 1 fractions are
	// proper percentages and the utilization CDF is monotone.
	ins := agg.Table1()
	for name, v := range map[string]float64{
		"any": ins.PctAnySignal, "crit": ins.PctManyCritical,
		"util": ins.PctUtilOver60, "h50": ins.PctHighTimeOver50, "h2": ins.PctHighTimeOver2,
	} {
		if v < 0 || v > 100 {
			t.Errorf("Table1 %s = %v out of range", name, v)
		}
	}
	if a, b := agg.UtilCDFAt(0.5), agg.UtilCDFAt(0.8); a > b {
		t.Errorf("utilization CDF not monotone: F(0.5)=%v > F(0.8)=%v", a, b)
	}
}

// craftedPanel is a small roster with edge cases: a zero-rating user
// (the Fig1 crash class) and one simulated failure.
func craftedPanel() ([]*User, map[string]*DeviceLog, string) {
	f := craftedFleet()
	users := append([]*User(nil), f.Recruited...)
	logs := map[string]*DeviceLog{}
	for _, l := range f.Logs {
		logs[l.User.ID] = l
	}
	// A user who skipped the games question entirely (zero rating).
	u3 := &User{ID: "shy", RAM: 2 * units.GiB, InteractiveHours: 30,
		Ratings: map[Activity]int{ListeningMusic: 2, StreamingVideo: 7}}
	logs["shy"] = &DeviceLog{
		User: u3, ObservedHours: 1,
		SignalsPerHour:    map[proc.Level]float64{proc.Moderate: 2},
		TimeShare:         map[proc.Level]float64{proc.Normal: 0.97, proc.Moderate: 0.03},
		MedianUtilization: 0.62,
		AvailableByLevel:  map[proc.Level][]float64{proc.Moderate: {300, 310, 290}},
		Transitions: []Transition{
			{From: proc.Normal, To: proc.Moderate, Dwell: 30 * time.Second},
			{From: proc.Moderate, To: proc.Normal, Dwell: 6 * time.Second},
		},
	}
	// A user whose simulation will "panic".
	u4 := &User{ID: "crashy", RAM: 1 * units.GiB, InteractiveHours: 15,
		Ratings: map[Activity]int{PlayingGames: 5, ListeningMusic: 5, StreamingVideo: 5}}
	users = append(users, u3, u4)
	return users, logs, "crashy"
}

// TestAggregateMatchesLegacyFleet folds the same crafted logs through
// both analysis paths — the retained Fleet and the streaming
// FleetAggregate — and requires every §3 figure to agree. This is the
// "figures 1–6 match at small n" acceptance gate, minus simulation.
func TestAggregateMatchesLegacyFleet(t *testing.T) {
	users, logs, crashID := craftedPanel()

	// Legacy path.
	f := &Fleet{Recruited: users, Kept: users}
	for _, u := range users {
		if u.ID == crashID {
			f.Failures = append(f.Failures, FleetFailure{User: u.ID, Reason: "panic: boom"})
			continue
		}
		f.Logs = append(f.Logs, logs[u.ID])
	}

	// Streaming path, folded in reverse order to exercise canonicality.
	agg := NewFleetAggregate(0, 0)
	for i := len(users) - 1; i >= 0; i-- {
		u := users[i]
		if u.ID == crashID {
			agg.FoldFailure(u, int64(i), "panic: boom")
			continue
		}
		agg.Fold(u, logs[u.ID], int64(i))
	}

	// Figure 1 — including the zero-rating and out-of-range rows.
	h1, h2 := f.Fig1Heatmap(), agg.Fig1Heatmap()
	for _, act := range Activities {
		if h1[act] != h2[act] {
			t.Errorf("Fig1[%v]: legacy %v vs stream %v", act, h1[act], h2[act])
		}
	}

	// Figure 2 — CDF agreement at every observed utilization and between.
	cdf := f.Fig2CDF()
	for _, x := range []float64{0, 0.5, 0.55, 0.62, 0.7, 0.85, 1} {
		if a, b := cdf.At(x), agg.UtilCDFAt(x); math.Abs(a-b) > 1e-12 {
			t.Errorf("Fig2 CDF(%v): legacy %v vs stream %v", x, a, b)
		}
	}

	// Figures 3–4 — identical point sets (legacy iterates logs in keep
	// order; the aggregate's summaries sort by recruit index).
	p3, complete := agg.Fig3Scatter()
	if !complete {
		t.Error("Fig3 incomplete on a small panel")
	}
	if l3 := f.Fig3Scatter(); len(p3) != len(l3) {
		t.Errorf("Fig3: %d vs %d points", len(p3), len(l3))
	} else {
		for i := range p3 {
			if p3[i] != l3[i] {
				t.Errorf("Fig3[%d]: %+v vs %+v", i, p3[i], l3[i])
			}
		}
	}
	p4, _ := agg.Fig4TimeShares()
	if l4 := f.Fig4TimeShares(); len(p4) != len(l4) {
		t.Errorf("Fig4: %d vs %d points", len(p4), len(l4))
	} else {
		for i := range p4 {
			if p4[i] != l4[i] {
				t.Errorf("Fig4[%d]: %+v vs %+v", i, p4[i], l4[i])
			}
		}
	}

	// Figure 5 — same devices, same boxplots.
	top1, top2 := f.Fig5TopDevices(2), agg.Fig5TopDevices(2)
	if len(top1) != len(top2) {
		t.Fatalf("Fig5: %d vs %d devices", len(top1), len(top2))
	}
	for i := range top1 {
		if top1[i].User != top2[i].User || top1[i].HighShare != top2[i].HighShare {
			t.Errorf("Fig5[%d]: %s/%v vs %s/%v", i,
				top1[i].User, top1[i].HighShare, top2[i].User, top2[i].HighShare)
		}
		for lvl, bp := range top1[i].ByLevel {
			if bp != top2[i].ByLevel[lvl] {
				t.Errorf("Fig5[%d] level %v: %+v vs %+v", i, lvl, bp, top2[i].ByLevel[lvl])
			}
		}
	}

	// Figure 6 — filtered at the same threshold; dwell sketches are
	// exact at this size.
	g1, g2 := f.Fig6Transitions(MinHighShareFig6), agg.Fig6Transitions()
	for from, tos := range g1.NextShare {
		for to, pct := range tos {
			if got := g2.NextShare[from][to]; math.Abs(got-pct) > 1e-12 {
				t.Errorf("Fig6 %v->%v: legacy %v vs stream %v", from, to, pct, got)
			}
		}
	}
	for from, bp := range g1.Dwell {
		if got := g2.Dwell[from]; got != bp {
			t.Errorf("Fig6 dwell[%v]: legacy %+v vs stream %+v", from, bp, got)
		}
	}

	// Table 1 — legacy accumulates 100/n per device, the stream computes
	// 100·count/n; equal up to float re-association.
	i1, i2 := f.Table1(), agg.Table1()
	for _, c := range []struct{ a, b float64 }{
		{i1.PctAnySignal, i2.PctAnySignal},
		{i1.PctManyCritical, i2.PctManyCritical},
		{i1.PctUtilOver60, i2.PctUtilOver60},
		{i1.PctHighTimeOver50, i2.PctHighTimeOver50},
		{i1.PctHighTimeOver2, i2.PctHighTimeOver2},
	} {
		if math.Abs(c.a-c.b) > 1e-9 {
			t.Errorf("Table1: legacy %v vs stream %v", c.a, c.b)
		}
	}
}

// TestFig1ZeroRatingRegression pins the crash the old
// `row[u.Ratings[a]-1]++` had on unset map entries (satellite 2).
func TestFig1ZeroRatingRegression(t *testing.T) {
	u := &User{ID: "blank", InteractiveHours: 20, Ratings: map[Activity]int{}}
	f := &Fleet{Recruited: []*User{u}, Kept: []*User{u}}
	h := f.Fig1Heatmap() // must not panic
	for _, act := range Activities {
		for r, frac := range h[act] {
			if frac != 0 {
				t.Errorf("blank user contributed to %v rating %d", act, r+1)
			}
		}
	}
	agg := NewFleetAggregate(0, 0)
	agg.foldRatings(u)
	for _, act := range Activities {
		if agg.RatingCounts[act][0] != 1 {
			t.Errorf("unset rating for %v not routed to bucket 0: %v", act, agg.RatingCounts[act])
		}
	}
}

// TestStratifiedPopulationPure verifies the PopulationModel purity
// contract User(i) depends only on (model, i) — the property shard
// resume is built on — plus basic stratification shape.
func TestStratifiedPopulationPure(t *testing.T) {
	p := DefaultPopulation(500, 3)
	q := DefaultPopulation(500, 3)
	vendors := map[string]int{}
	rams := map[units.Bytes]int{}
	for i := int64(0); i < 500; i++ {
		a, b := p.User(i), q.User(i)
		if a.ID != b.ID || a.Vendor != b.Vendor || a.RAM != b.RAM ||
			a.InteractiveHours != b.InteractiveHours || a.AppMiB != b.AppMiB {
			t.Fatalf("User(%d) not pure: %+v vs %+v", i, a, b)
		}
		vendors[a.Vendor]++
		rams[a.RAM]++
	}
	// Out-of-order materialization must agree with in-order.
	if a, b := p.User(499), q.User(499); a.ID != b.ID || a.AppMiB != b.AppMiB {
		t.Fatal("out-of-order User(499) differs")
	}
	if len(vendors) < 8 {
		t.Errorf("only %d vendors drawn from 12 in 500 users", len(vendors))
	}
	if len(rams) < 5 {
		t.Errorf("only %d RAM tiers drawn from 6 in 500 users", len(rams))
	}
}

func TestSyntheticRunnerDeterministic(t *testing.T) {
	u := DefaultPopulation(10, 1).User(3)
	r := SyntheticRunner()
	a, b := r(u, UserSeed(1, u.ID)), r(u, UserSeed(1, u.ID))
	if a.MedianUtilization != b.MedianUtilization || len(a.Transitions) != len(b.Transitions) {
		t.Fatal("SyntheticRunner not deterministic in (user, seed)")
	}
	if len(a.Samples) != 0 {
		t.Fatal("SyntheticRunner must not fabricate 1 Hz samples")
	}
}
