package study

import (
	"testing"
	"time"

	"coalqoe/internal/proc"
	"coalqoe/internal/units"
)

func TestGenerateUsersDemographics(t *testing.T) {
	users := GenerateUsers(80, 1)
	if len(users) != 80 {
		t.Fatalf("generated %d users", len(users))
	}
	small, kept := 0, 0
	for _, u := range users {
		if u.RAM < units.GiB || u.RAM > 8*units.GiB {
			t.Errorf("user %s RAM %v out of the study's 1-8 GB range", u.ID, u.RAM)
		}
		if u.RAM <= 2*units.GiB {
			small++
		}
		if u.InteractiveHours >= MinInteractiveHours {
			kept++
		}
		for _, a := range Activities {
			if r := u.Ratings[a]; r < 1 || r > 5 {
				t.Errorf("rating %d out of range", r)
			}
		}
	}
	if small < 10 {
		t.Errorf("only %d low-RAM devices; the study skews low-end", small)
	}
	// The paper kept 48 of 80; ours should also lose a meaningful
	// fraction to the 10-hour filter.
	if kept == 80 || kept < 40 {
		t.Errorf("kept %d of 80, want a majority but not all", kept)
	}
}

func TestGenerateUsersDeterministic(t *testing.T) {
	a := GenerateUsers(10, 7)
	b := GenerateUsers(10, 7)
	for i := range a {
		if *&a[i].RAM != *&b[i].RAM || a[i].LaunchEvery != b[i].LaunchEvery {
			t.Fatalf("user %d differs across identical seeds", i)
		}
	}
}

func TestSurveyVideoMostFrequent(t *testing.T) {
	users := GenerateUsers(300, 3)
	sum := map[Activity]int{}
	for _, u := range users {
		for a, r := range u.Ratings {
			sum[a] += r
		}
	}
	if !(sum[StreamingVideo] > sum[ListeningMusic] && sum[ListeningMusic] > sum[PlayingGames]) {
		t.Errorf("activity ordering wrong: video=%d music=%d games=%d",
			sum[StreamingVideo], sum[ListeningMusic], sum[PlayingGames])
	}
}

func TestRunUserProducesTelemetry(t *testing.T) {
	u := &User{
		ID: "t", RAM: units.GiB, Cores: 4, CoreSpeed: 1.1,
		InteractiveHours: 0.15, // 9 minutes: fast test
		LaunchEvery:      15 * time.Second,
		AppMiB:           200,
		MultitaskApps:    5,
		Ratings:          map[Activity]int{PlayingGames: 5, ListeningMusic: 3, StreamingVideo: 5},
	}
	log := RunUser(u, 11)
	if len(log.Samples) < 450 {
		t.Fatalf("got %d samples for a 9-minute run, want ~540", len(log.Samples))
	}
	if log.MedianUtilization <= 0 || log.MedianUtilization >= 1 {
		t.Errorf("median utilization = %v", log.MedianUtilization)
	}
	var share float64
	for _, s := range log.TimeShare {
		share += s
	}
	if share < 0.9 || share > 1.1 {
		t.Errorf("time shares sum to %v, want ~1", share)
	}
	// A 1 GiB device cycling 200 MiB apps should see pressure signals.
	if log.SignalsPerHour[proc.Moderate]+log.SignalsPerHour[proc.Low]+log.SignalsPerHour[proc.Critical] == 0 {
		t.Error("no pressure signals on a hard-driven 1 GiB device")
	}
}

func TestTransitionsFromSamples(t *testing.T) {
	samples := []Sample{
		{At: 0, Level: proc.Normal},
		{At: time.Second, Level: proc.Normal},
		{At: 2 * time.Second, Level: proc.Moderate},
		{At: 3 * time.Second, Level: proc.Moderate},
		{At: 4 * time.Second, Level: proc.Critical},
		{At: 5 * time.Second, Level: proc.Normal},
	}
	trs := transitions(samples)
	if len(trs) != 3 {
		t.Fatalf("got %d transitions, want 3", len(trs))
	}
	if trs[0].From != proc.Normal || trs[0].To != proc.Moderate || trs[0].Dwell != 2*time.Second {
		t.Errorf("first transition = %+v", trs[0])
	}
	if trs[1].From != proc.Moderate || trs[1].Dwell != 2*time.Second {
		t.Errorf("second transition = %+v", trs[1])
	}
}

func TestSmallFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation is slow")
	}
	// Shrink the per-user span via InteractiveHours override.
	users := GenerateUsers(12, 5)
	f := &Fleet{Recruited: users}
	for _, u := range users {
		u.InteractiveHours = MinInteractiveHours // keep everyone
		f.Kept = append(f.Kept, u)
	}
	f.Logs = make([]*DeviceLog, len(f.Kept))
	for i, u := range f.Kept {
		short := *u
		short.InteractiveHours = 0.05 // 3 minutes each
		f.Logs[i] = RunUser(&short, int64(i))
	}

	cdf := f.Fig2CDF()
	if cdf.N() != 12 {
		t.Errorf("CDF over %d devices", cdf.N())
	}
	heat := f.Fig1Heatmap()
	for _, a := range Activities {
		total := 0.0
		for _, frac := range heat[a] {
			total += frac
		}
		if total < 0.99 || total > 1.01 {
			t.Errorf("heatmap row %v sums to %v", a, total)
		}
	}
	if pts := f.Fig3Scatter(); len(pts) != 12*3 {
		t.Errorf("fig3 has %d points", len(pts))
	}
	if pts := f.Fig4TimeShares(); len(pts) != 12*3 {
		t.Errorf("fig4 has %d points", len(pts))
	}
	top := f.Fig5TopDevices(5)
	if len(top) != 5 {
		t.Fatalf("got %d top devices", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].HighShare > top[i-1].HighShare {
			t.Error("top devices not sorted by pressure share")
		}
	}
	ins := f.Table1()
	if ins.PctUtilOver60 < 0 || ins.PctUtilOver60 > 100 {
		t.Errorf("insights out of range: %+v", ins)
	}
}
