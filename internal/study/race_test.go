//go:build race

package study

// raceEnabled scales down the large fleet tests: the race detector
// multiplies per-user cost by an order of magnitude, and the scaling
// properties under test don't need a full million users to show.
const raceEnabled = true
