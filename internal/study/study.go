// Package study reproduces the paper's §3 user study: a fleet of
// Android devices whose owners' natural usage patterns drive memory
// pressure, monitored by a SignalCapturer-equivalent sampler.
//
// The real study recruited 80 users (48 kept after requiring ≥10 h of
// interactive data), spanning 12 manufacturers and 1–8 GB of RAM, and
// logged at 1 Hz. Here each participant is a synthetic user profile —
// device size, app-launch cadence, app-size distribution, multitasking
// habit, and activity preferences (Figure 1's games/music/video
// ratings) — running on the full simulated kernel substrate, so the
// pressure signals come out of the same lmkd/kswapd machinery the
// video experiments use, not from a statistical shortcut.
package study

import (
	"fmt"
	"math/rand"
	"time"

	"coalqoe/internal/device"
	"coalqoe/internal/lmkd"
	"coalqoe/internal/proc"
	"coalqoe/internal/units"
)

// Activity is a surveyed usage category (Figure 1).
type Activity int

// Survey activities.
const (
	PlayingGames Activity = iota
	ListeningMusic
	StreamingVideo
)

// Activities lists the surveyed categories.
var Activities = []Activity{PlayingGames, ListeningMusic, StreamingVideo}

// String names the activity as the survey did.
func (a Activity) String() string {
	switch a {
	case PlayingGames:
		return "playing games"
	case ListeningMusic:
		return "listening to music"
	case StreamingVideo:
		return "streaming videos"
	default:
		return fmt.Sprintf("Activity(%d)", int(a))
	}
}

// User is one synthetic participant.
type User struct {
	ID string
	// Vendor is the device manufacturer. When set, the device profile's
	// signal-threshold spread is keyed by vendor (all devices of one
	// manufacturer share their tuning, the paper's 12-manufacturer
	// spread); empty keeps the legacy per-user spread.
	Vendor string
	// LMK, when non-nil, applies a vendor lmkd tuning to the device.
	LMK *lmkd.Config
	// RAM of their device.
	RAM units.Bytes
	// Cores and CoreSpeed shape the device profile.
	Cores     int
	CoreSpeed float64
	// InteractiveHours is how much screen-on data the user contributes
	// (the study keeps users with ≥ 10 h).
	InteractiveHours float64
	// LaunchEvery is the app-launch cadence while interactive.
	LaunchEvery time.Duration
	// AppMiB is the mean foreground-app heap in MiB.
	AppMiB float64
	// MultitaskApps is how many recent apps the user keeps around
	// (the survey's multitasking question).
	MultitaskApps int
	// Ratings are the 1–5 activity-frequency answers (Figure 1).
	Ratings map[Activity]int
}

// GenerateUsers builds n participants with the study's demographics:
// device RAM from 1–8 GB skewed toward the low end (the study spans
// entry-level to flagship), usage intensity loosely anti-correlated
// with device class (budget devices run closer to their limits).
func GenerateUsers(n int, seed int64) []*User {
	rng := rand.New(rand.NewSource(seed))
	ramChoices := []units.Bytes{
		1 * units.GiB, 2 * units.GiB, 2 * units.GiB, 3 * units.GiB,
		3 * units.GiB, 4 * units.GiB, 4 * units.GiB, 6 * units.GiB, 8 * units.GiB,
	}
	users := make([]*User, n)
	for i := range users {
		ram := ramChoices[rng.Intn(len(ramChoices))]
		gib := float64(ram) / float64(units.GiB)
		// Heavier multitasking and bigger apps on any device; budget
		// devices have less headroom for the same behavior.
		intensity := 0.7 + 0.9*rng.Float64()
		// A small tail of extreme multitaskers never lets go of apps;
		// these are the paper's devices that spent >40% of their time
		// in high-pressure states.
		hoarder := rng.Float64() < 0.06
		if hoarder {
			intensity *= 1.6
		}
		u := &User{
			ID:               fmt.Sprintf("user%02d", i),
			RAM:              ram,
			Cores:            4 + 2*rng.Intn(3),
			CoreSpeed:        1.0 + 0.4*gib*rng.Float64(),
			InteractiveHours: 2 + rng.Float64()*46, // 2–48 h
			LaunchEvery:      time.Duration(25+rng.Intn(120)) * time.Second,
			AppMiB:           (90 + 130*rng.Float64()) * intensity * (0.85 + 0.08*gib),
			MultitaskApps:    3 + int(gib/2) + rng.Intn(4),
		}
		if hoarder {
			u.MultitaskApps += 5
			u.LaunchEvery /= 2
		}
		u.Ratings = surveyRatings(rng)
		users[i] = u
	}
	return users
}

// surveyRatings draws Figure 1's distribution: video streaming is the
// most frequent activity, music next, games spread widest.
func surveyRatings(rng *rand.Rand) map[Activity]int {
	pick := func(weights [5]int) int {
		total := 0
		for _, w := range weights {
			total += w
		}
		x := rng.Intn(total)
		for i, w := range weights {
			if x < w {
				return i + 1
			}
			x -= w
		}
		return 5
	}
	return map[Activity]int{
		// weights for ratings 1..5
		PlayingGames:   pick([5]int{30, 20, 18, 17, 15}),
		ListeningMusic: pick([5]int{10, 15, 25, 28, 22}),
		StreamingVideo: pick([5]int{4, 8, 18, 32, 38}),
	}
}

// Sample is one 1 Hz SignalCapturer record.
type Sample struct {
	At          time.Duration
	Utilization float64
	Available   units.Pages
	Level       proc.Level
}

// Transition is a state change in the pressure-level sequence.
type Transition struct {
	From, To proc.Level
	// Dwell is the time spent in From before moving to To.
	Dwell time.Duration
}

// DeviceLog is the collected telemetry for one participant.
type DeviceLog struct {
	User *User
	// ObservedHours is the simulated interactive time.
	ObservedHours float64
	// Samples are the 1 Hz records.
	Samples []Sample
	// SignalsPerHour counts emitted signals by level, normalized.
	SignalsPerHour map[proc.Level]float64
	// TimeShare is the fraction of time spent at each level.
	TimeShare map[proc.Level]float64
	// Transitions lists the level changes with dwell times.
	Transitions []Transition
	// MedianUtilization is the median RAM utilization (Figure 2).
	MedianUtilization float64
	// AvailableByLevel collects available-memory samples per level
	// (Figure 5).
	AvailableByLevel map[proc.Level][]float64
}

// SimHours caps how long each participant's device is actually
// simulated; per-hour statistics are normalized by the simulated span.
const SimHours = 1.5

// RunUser simulates one participant's device under their usage pattern
// and returns the SignalCapturer log.
func RunUser(u *User, seed int64) *DeviceLog {
	// The profile key drives the vendor threshold spread in
	// device.Generic: vendor-keyed when the population models
	// manufacturers, per-user otherwise (legacy behavior).
	key := u.ID
	if u.Vendor != "" {
		key = u.Vendor
	}
	profile := device.Generic(key, u.RAM, u.Cores, u.CoreSpeed)
	profile.Name = u.ID
	// The fleet study doesn't need frame-accurate scheduling: a coarse
	// tick keeps 48 devices × hours tractable.
	dev := device.New(seed, profile, device.Options{
		SchedTick:  20 * time.Millisecond,
		LmkdConfig: u.LMK,
	})
	dev.Settle(3 * time.Second)

	hours := u.InteractiveHours
	if hours > SimHours {
		hours = SimHours
	}
	span := time.Duration(hours * float64(time.Hour))

	runBehavior(dev, u)

	log := &DeviceLog{
		User:             u,
		ObservedHours:    hours,
		SignalsPerHour:   make(map[proc.Level]float64),
		TimeShare:        make(map[proc.Level]float64),
		AvailableByLevel: make(map[proc.Level][]float64),
	}

	// SignalCapturer: 1 Hz sampling.
	dev.Clock.Every(time.Second, func() {
		log.Samples = append(log.Samples, Sample{
			At:          dev.Clock.Now(),
			Utilization: dev.Mem.Utilization(),
			Available:   dev.Mem.Available(),
			Level:       dev.Table.Level(),
		})
	})

	start := dev.Clock.Now()
	dev.Run(start + span)

	analyze(log, dev, start, span)
	return log
}

// runBehavior drives the user's app usage: launch a new foreground app
// on their cadence, demote the old one to the cached LRU, and close
// the oldest beyond their multitasking depth.
func runBehavior(dev *device.Device, u *User) {
	rng := dev.Clock.Rand()
	var recents []*proc.Process
	counter := 0
	var current *proc.Process
	launch := func() {
		counter++
		size := u.AppMiB * (0.5 + rng.Float64())
		// Heavy sessions — games, editing, big social feeds — hold a
		// large foreground footprint for a while; gamers run them
		// more often.
		heavyChance := 0.25
		if u.Ratings[PlayingGames] >= 4 {
			heavyChance = 0.45
		}
		if rng.Float64() < heavyChance {
			size *= 3.5
		}
		if current != nil && !current.Dead() {
			current.SetCached(true, proc.AdjCached+counter%90)
			recents = append(recents, current)
		}
		// The user closes apps beyond their habit depth.
		for len(recents) > u.MultitaskApps {
			old := recents[0]
			recents = recents[1:]
			if !old.Dead() {
				dev.Table.Kill(old, "user closed")
			}
		}
		current = dev.Table.Start(proc.Spec{
			Name:        fmt.Sprintf("%s-app%03d", u.ID, counter),
			Adj:         proc.AdjForeground,
			AnonBytes:   units.Bytes(size * float64(units.MiB)),
			FileWSBytes: units.Bytes(size * 0.3 * float64(units.MiB)),
			HotAnonFrac: 0.65,
			RampTime:    4 * time.Second,
			WarmFor:     90 * time.Second,
		})
	}
	var loop func()
	loop = func() {
		launch()
		// Burst pattern: users often hop across several apps in quick
		// succession (messages, feed, back); the burst's allocation
		// spike is what trips a kill cascade and thus the signals.
		if rng.Float64() < 0.3 {
			for i := 1; i <= 2; i++ {
				dev.Clock.Schedule(time.Duration(i*4)*time.Second, func() { launch() })
			}
		}
		jitter := time.Duration(rng.Int63n(int64(u.LaunchEvery)))
		dev.Clock.Schedule(u.LaunchEvery/2+jitter, loop)
	}
	dev.Clock.Schedule(5*time.Second, loop)
}

// analyze derives the per-device statistics the §3 figures need.
func analyze(log *DeviceLog, dev *device.Device, start, span time.Duration) {
	hours := span.Hours()
	for _, sig := range dev.Table.Signals() {
		if sig.At < start || sig.Level == proc.Normal {
			continue
		}
		log.SignalsPerHour[sig.Level] += 1 / hours
	}
	var utils []float64
	levelTime := make(map[proc.Level]time.Duration)
	var prev *Sample
	for i := range log.Samples {
		s := &log.Samples[i]
		utils = append(utils, s.Utilization)
		log.AvailableByLevel[s.Level] = append(log.AvailableByLevel[s.Level], s.Available.MiB())
		if prev != nil {
			levelTime[prev.Level] += s.At - prev.At
		}
		prev = s
	}
	//coalvet:allow maporder key-to-key map transform, order-insensitive
	for l, d := range levelTime {
		log.TimeShare[l] = d.Seconds() / span.Seconds()
	}
	log.MedianUtilization = median(utils)
	log.Transitions = transitions(log.Samples)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}

// transitions extracts level-change events with dwell times from the
// sample sequence (Figure 6).
func transitions(samples []Sample) []Transition {
	var out []Transition
	if len(samples) == 0 {
		return out
	}
	cur := samples[0].Level
	since := samples[0].At
	for _, s := range samples[1:] {
		if s.Level != cur {
			out = append(out, Transition{From: cur, To: s.Level, Dwell: s.At - since})
			cur = s.Level
			since = s.At
		}
	}
	return out
}
