package study

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// This file is the fleet engine: the streaming, sharded, resumable
// driver that scales the §3 user study from the paper's 80 recruits to
// a million-user synthetic panel. The determinism contract extends the
// executor discipline from internal/exp:
//
//   - every participant's simulation seed is an FNV lane of their
//     identity (UserSeed), assigned before any worker starts;
//   - a shard is the unit of parallelism AND of checkpointing: within
//     a shard users fold strictly in index order, so a checkpoint is
//     always an exact prefix of the shard's work;
//   - aggregate state is canonical (order-independent), so the merged
//     result is byte-identical whatever the shard count, worker count,
//     or kill/resume history.
//
// Panics inside one user's simulation are captured per user (the
// hardened-executor pattern) and surface as aggregate failure records,
// never as a dead process mid-run.

// ErrHalted reports that a run stopped early at HaltAfter users; the
// progress is checkpointed and a later run with Resume continues it.
var ErrHalted = errors.New("study: fleet run halted after HaltAfter users (checkpointed; rerun with Resume)")

// checkpointSchema versions the shard checkpoint format.
const checkpointSchema = 1

// FleetConfig configures a streaming fleet run.
type FleetConfig struct {
	// Users is the recruit count. Ignored when Population is set
	// (the model's Size wins).
	Users int64
	// Seed is the fleet seed; every user's simulation seed derives
	// from it via UserSeed.
	Seed int64
	// Population supplies participants. nil uses a Roster over
	// GenerateUsers(Users, Seed) — the paper's demographics.
	Population PopulationModel
	// Shards is the partition count. Each shard covers a contiguous
	// index range, folds sequentially, and checkpoints independently.
	// 0 picks a default from Users and Workers. The merged result is
	// byte-identical at any shard count.
	Shards int
	// Workers bounds concurrently simulated shards. 0 means NumCPU.
	Workers int
	// ExactRetain / TopK size the aggregate's bounded retention
	// (see FleetAggregate); 0 picks the defaults.
	ExactRetain int
	TopK        int
	// CheckpointDir, when set, persists per-shard progress there
	// (shard-NNNN.json) every CheckpointEvery users and at completion.
	CheckpointDir string
	// CheckpointEvery is the per-shard checkpoint cadence in users;
	// 0 means 256.
	CheckpointEvery int
	// Resume loads per-shard checkpoints from CheckpointDir and
	// continues; checkpoints from a different configuration are
	// refused (fingerprint mismatch).
	Resume bool
	// HaltAfter, when > 0, stops the run after about that many users
	// this invocation (each in-flight shard finishes its current user),
	// checkpoints, and returns ErrHalted. It exists so a multi-hour run
	// can be budgeted into slices — and so tests can kill and resume a
	// run deterministically. Requires CheckpointDir.
	HaltAfter int64
	// Runner overrides the per-user simulation (nil = RunUser). Tests
	// and benchmarks use SyntheticRunner to exercise the aggregation
	// path without the kernel substrate.
	Runner func(*User, int64) *DeviceLog
	// Telemetry, when non-nil, counts engine progress
	// (fleet/users_run, fleet/users_failed, fleet/checkpoints).
	Telemetry *telemetry.Registry
}

// FleetRunStats reports what one engine invocation did.
type FleetRunStats struct {
	Shards       int
	UsersRun     int64
	UsersSkipped int64 // already covered by resumed checkpoints
	Checkpoints  int64
}

// fleetFingerprint identifies a run configuration; a checkpoint only
// resumes under the configuration that wrote it.
type fleetFingerprint struct {
	Schema      int    `json:"schema"`
	Users       int64  `json:"users"`
	Seed        int64  `json:"seed"`
	Shards      int    `json:"shards"`
	Shard       int    `json:"shard"`
	Population  string `json:"population"`
	ExactRetain int    `json:"exact_retain"`
	TopK        int    `json:"top_k"`
}

// shardCheckpoint is the persisted per-shard state: the fingerprint,
// the next index to process, and the aggregate over [lo, next).
type shardCheckpoint struct {
	Fingerprint fleetFingerprint `json:"fingerprint"`
	Lo          int64            `json:"lo"`
	Hi          int64            `json:"hi"`
	Next        int64            `json:"next"`
	Agg         *FleetAggregate  `json:"agg"`
}

type shardState struct {
	index    int
	lo, hi   int64
	next     int64
	agg      *FleetAggregate
	sinceCkp int
}

func (cfg *FleetConfig) normalize() (PopulationModel, int, int, int, error) {
	pop := cfg.Population
	if pop == nil {
		if cfg.Users <= 0 {
			return nil, 0, 0, 0, errors.New("study: FleetConfig needs Users or Population")
		}
		pop = NewRoster(GenerateUsers(int(cfg.Users), cfg.Seed))
	}
	n := pop.Size()
	if n <= 0 {
		return nil, 0, 0, 0, errors.New("study: empty population")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	shards := cfg.Shards
	if shards <= 0 {
		// Enough shards that workers stay busy and checkpoints stay
		// fine-grained, without drowning small panels in shard files.
		shards = 4 * workers
		if per := int(n / 1024); per > shards {
			shards = per
		}
		if shards > 1024 {
			shards = 1024
		}
	}
	if int64(shards) > n {
		shards = int(n)
	}
	if workers > shards {
		workers = shards
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 256
	}
	if cfg.HaltAfter > 0 && cfg.CheckpointDir == "" {
		return nil, 0, 0, 0, errors.New("study: HaltAfter without CheckpointDir would discard the partial run")
	}
	return pop, shards, workers, every, nil
}

// RunFleetStream runs the streaming fleet study and returns the merged
// aggregate. The result is byte-identical (in serialized form) for any
// Shards/Workers setting and across checkpoint/resume cycles; on
// ErrHalted the partial progress lives in CheckpointDir and the
// returned aggregate is nil.
func RunFleetStream(cfg FleetConfig) (*FleetAggregate, FleetRunStats, error) {
	pop, nShards, workers, every, err := cfg.normalize()
	var stats FleetRunStats
	if err != nil {
		return nil, stats, err
	}
	stats.Shards = nShards
	n := pop.Size()
	runner := cfg.Runner
	if runner == nil {
		runner = RunUser
	}

	var cUsers, cFailed, cCkps *telemetry.Counter
	if cfg.Telemetry != nil {
		cUsers = cfg.Telemetry.Counter("fleet/users_run")
		cFailed = cfg.Telemetry.Counter("fleet/users_failed")
		cCkps = cfg.Telemetry.Counter("fleet/checkpoints")
	}

	fp := func(shard int) fleetFingerprint {
		return fleetFingerprint{
			Schema: checkpointSchema, Users: n, Seed: cfg.Seed,
			Shards: nShards, Shard: shard, Population: pop.Name(),
			ExactRetain: orDefault(cfg.ExactRetain, DefaultExactRetain),
			TopK:        orDefault(cfg.TopK, DefaultTopK),
		}
	}

	shards := make([]*shardState, nShards)
	for s := 0; s < nShards; s++ {
		lo := int64(s) * n / int64(nShards)
		hi := int64(s+1) * n / int64(nShards)
		st := &shardState{index: s, lo: lo, hi: hi, next: lo,
			agg: NewFleetAggregate(cfg.ExactRetain, cfg.TopK)}
		if cfg.Resume {
			ck, err := loadCheckpoint(cfg.CheckpointDir, s)
			if err != nil {
				return nil, stats, err
			}
			if ck != nil {
				if ck.Fingerprint != fp(s) {
					return nil, stats, fmt.Errorf("study: shard %d checkpoint was written by a different run configuration (%+v vs %+v)",
						s, ck.Fingerprint, fp(s))
				}
				st.next, st.agg = ck.Next, ck.Agg
				stats.UsersSkipped += ck.Next - lo
			}
		}
		shards[s] = st
	}

	var (
		processed int64 // users simulated this invocation
		failed    int64
		halt      atomic.Bool
		ckpCount  int64
		mu        sync.Mutex
		firstErr  error
		nextShard int64 = -1
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		halt.Store(true)
	}
	checkpoint := func(st *shardState) {
		if cfg.CheckpointDir == "" {
			return
		}
		ck := &shardCheckpoint{Fingerprint: fp(st.index), Lo: st.lo, Hi: st.hi, Next: st.next, Agg: st.agg}
		if err := writeCheckpoint(cfg.CheckpointDir, st.index, ck); err != nil {
			fail(err)
			return
		}
		atomic.AddInt64(&ckpCount, 1)
		st.sinceCkp = 0
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(atomic.AddInt64(&nextShard, 1))
				if si >= nShards || halt.Load() {
					return
				}
				st := shards[si]
				for st.next < st.hi {
					if halt.Load() {
						checkpoint(st)
						return
					}
					i := st.next
					u := pop.User(i)
					if u.InteractiveHours >= MinInteractiveHours {
						log, err := runUserSafe(runner, u, UserSeed(cfg.Seed, u.ID))
						if err != nil {
							st.agg.FoldFailure(u, i, err.Error())
							atomic.AddInt64(&failed, 1)
						} else {
							st.agg.Fold(u, log, i)
						}
					} else {
						st.agg.NoteRecruit()
					}
					st.next++
					st.sinceCkp++
					if cfg.HaltAfter > 0 && atomic.AddInt64(&processed, 1) >= cfg.HaltAfter {
						halt.Store(true)
					} else if cfg.HaltAfter <= 0 {
						atomic.AddInt64(&processed, 1)
					}
					if st.sinceCkp >= every {
						checkpoint(st)
					}
				}
				checkpoint(st)
			}
		}()
	}
	wg.Wait()
	if halt.Load() && firstErr == nil {
		// Shards never claimed by a worker still need their (possibly
		// resumed) progress persisted, so a later Resume sees them.
		for _, st := range shards {
			if st.next > st.lo || cfg.Resume {
				// Claimed shards already checkpointed on halt; writing
				// again is harmless and covers unclaimed resumed ones.
				checkpoint(st)
			}
		}
	}
	stats.UsersRun = processed
	stats.Checkpoints = ckpCount
	// Telemetry counters are plain (non-atomic) by design — the
	// simulator's single-threaded fast path — so the engine updates
	// them once here, after the worker pool has drained, not from
	// inside workers.
	if cUsers != nil {
		cUsers.Add(stats.UsersRun)
		cFailed.Add(failed)
		cCkps.Add(stats.Checkpoints)
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}
	if halt.Load() {
		return nil, stats, ErrHalted
	}

	merged := NewFleetAggregate(cfg.ExactRetain, cfg.TopK)
	for _, st := range shards {
		merged.Merge(st.agg)
	}
	return merged, stats, nil
}

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func checkpointPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.json", shard))
}

func loadCheckpoint(dir string, shard int) (*shardCheckpoint, error) {
	if dir == "" {
		return nil, nil
	}
	data, err := os.ReadFile(checkpointPath(dir, shard))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ck shardCheckpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("study: corrupt checkpoint %s: %w", checkpointPath(dir, shard), err)
	}
	return &ck, nil
}

// writeCheckpoint persists atomically (write-temp + rename), so a kill
// mid-write leaves the previous checkpoint intact rather than a torn
// file.
func writeCheckpoint(dir string, shard int, ck *shardCheckpoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	path := checkpointPath(dir, shard)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// SyntheticRunner returns a per-user runner that fabricates a
// statistically plausible DeviceLog directly from the user's seed lane
// instead of simulating the kernel substrate. It exists for the
// engine's own scaling tests and benchmarks (fleet/users10k,
// million-user bounded-memory runs): it exercises exactly the
// aggregation path — fold, merge, checkpoint — while costing
// microseconds per user. Deterministic in (user, seed).
func SyntheticRunner() func(*User, int64) *DeviceLog {
	return func(u *User, seed int64) *DeviceLog {
		rng := rand.New(rand.NewSource(seed))
		hours := u.InteractiveHours
		if hours > SimHours {
			hours = SimHours
		}
		// Pressure propensity from how hard the user drives the device.
		ramMiB := float64(u.RAM) / float64(units.MiB)
		load := u.AppMiB * float64(u.MultitaskApps) / ramMiB
		util := clamp(0.45+0.35*load+0.15*rng.Float64(), 0.2, 0.97)
		high := clamp(0.5*(util-0.55)+0.1*rng.Float64(), 0, 0.85)

		log := &DeviceLog{
			User:              u,
			ObservedHours:     hours,
			MedianUtilization: util,
			SignalsPerHour:    make(map[proc.Level]float64),
			TimeShare:         make(map[proc.Level]float64),
			AvailableByLevel:  make(map[proc.Level][]float64),
		}
		log.TimeShare[proc.Moderate] = high * 0.6
		log.TimeShare[proc.Low] = high * 0.25
		log.TimeShare[proc.Critical] = high * 0.15
		log.TimeShare[proc.Normal] = 1 - high
		if high > 0.001 {
			log.SignalsPerHour[proc.Moderate] = 40 * high * (0.5 + rng.Float64())
			log.SignalsPerHour[proc.Low] = 15 * high * (0.5 + rng.Float64())
			log.SignalsPerHour[proc.Critical] = 25 * high * high * (0.5 + rng.Float64())
		}
		for _, lvl := range []proc.Level{proc.Normal, proc.Moderate, proc.Low, proc.Critical} {
			avail := ramMiB * (1 - util) * (1.2 - 0.3*float64(lvl))
			for k := 0; k < 4; k++ {
				log.AvailableByLevel[lvl] = append(log.AvailableByLevel[lvl], clamp(avail*(0.5+rng.Float64()), 0, ramMiB))
			}
		}
		levels := []proc.Level{proc.Normal, proc.Moderate, proc.Low, proc.Critical}
		cur := proc.Normal
		for k := 0; k < 6+rng.Intn(6); k++ {
			next := levels[rng.Intn(len(levels))]
			if next == cur {
				continue
			}
			log.Transitions = append(log.Transitions, Transition{
				From: cur, To: next,
				Dwell: time.Duration(1+rng.Intn(600)) * time.Second,
			})
			cur = next
		}
		return log
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
