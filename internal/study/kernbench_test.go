package study_test

import (
	"testing"

	"coalqoe/internal/kernbench"
)

// Wrapper over the shared fleet-engine suite body (internal/kernbench),
// so `go test -bench . ./internal/study` measures exactly what
// cmd/coalbench records in BENCH_6.json. The external test package
// breaks the study ↔ kernbench cycle.

func BenchmarkFleetUsers10k(b *testing.B) { kernbench.FleetUsers10k(b) }
