//go:build !race

package study

const raceEnabled = false
