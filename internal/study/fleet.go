package study

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"coalqoe/internal/proc"
	"coalqoe/internal/stats"
	"coalqoe/internal/units"
)

// Fleet is the full user study: participants plus their device logs.
// It retains one DeviceLog per kept user and is the small-panel API
// (the paper's 80 recruits); fleets beyond a few hundred users should
// use RunFleetStream, which folds each log into mergeable sketches
// instead of retaining it.
type Fleet struct {
	// Recruited is everyone who installed the app (the paper's 80).
	Recruited []*User
	// Kept are participants with ≥ MinInteractiveHours of screen-on
	// data (the paper's 48) — only they contribute to the analyses.
	Kept []*User
	// Logs holds one telemetry log per kept user. Users whose
	// simulation panicked are excluded (see Failures), so every entry
	// is non-nil.
	Logs []*DeviceLog
	// Failures records kept users whose simulation panicked; their
	// panic is captured per user (like the experiment executor's
	// hardened runs) instead of taking the process down.
	Failures []FleetFailure
}

// FleetFailure is one captured per-user simulation panic.
type FleetFailure struct {
	User   string `json:"user"`
	Reason string `json:"reason"`
}

// MinInteractiveHours is the §3 data-cleaning threshold.
const MinInteractiveHours = 10.0

// UserSeed derives the simulation seed for one participant: a stable
// FNV-1a hash of the user's identity folded into the fleet seed — the
// same lane discipline as exp.CellSeed. The previous additive rule
// (seed + i*7919) put every user on arithmetically related lanes,
// which PR 1 already ruled out for experiment cells: nearby lanes of
// the same LCG family are cross-correlated, so "independent" users
// shared pressure realizations.
func UserSeed(fleetSeed int64, userID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(userID))
	return fleetSeed + int64(h.Sum64()&0x7fffffff)
}

// runUserSafe is RunUser behind a panic barrier, mirroring the
// hardened experiment executor (exp.runSafe): a user whose simulation
// panics yields a failure record instead of killing the process — in a
// worker goroutine the panic would otherwise be unrecoverable.
func runUserSafe(run func(*User, int64) *DeviceLog, u *User, seed int64) (log *DeviceLog, err error) {
	defer func() {
		if r := recover(); r != nil {
			log, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return run(u, seed), nil
}

// RunFleet recruits n users and simulates every kept user's device.
// Each user is seeded independently from their identity (UserSeed), so
// the fleet is deterministic for a given seed regardless of
// scheduling. Work fans out across a bounded worker pool — NumCPU
// goroutines pulling from a shared index, not one goroutine per user:
// the old spawn-then-gate pattern created all n goroutines (and their
// stacks) up front before the semaphore admitted any work, which is
// exactly what a million-user fleet cannot afford.
func RunFleet(n int, seed int64) *Fleet {
	f := &Fleet{Recruited: GenerateUsers(n, seed)}
	for _, u := range f.Recruited {
		if u.InteractiveHours >= MinInteractiveHours {
			f.Kept = append(f.Kept, u)
		}
	}
	logs := make([]*DeviceLog, len(f.Kept))
	fails := make([]error, len(f.Kept))
	workers := runtime.NumCPU()
	if workers > len(f.Kept) {
		workers = len(f.Kept)
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(f.Kept) {
					return
				}
				u := f.Kept[i]
				logs[i], fails[i] = runUserSafe(RunUser, u, UserSeed(seed, u.ID))
			}
		}()
	}
	wg.Wait()
	for i, l := range logs {
		if fails[i] != nil {
			f.Failures = append(f.Failures, FleetFailure{User: f.Kept[i].ID, Reason: fails[i].Error()})
			continue
		}
		f.Logs = append(f.Logs, l)
	}
	return f
}

// Fig1Heatmap returns, per activity, the fraction of kept users giving
// each 1–5 rating — the Figure 1 heatmap rows.
func (f *Fleet) Fig1Heatmap() map[Activity][5]float64 {
	out := make(map[Activity][5]float64, len(Activities))
	n := float64(len(f.Kept))
	for _, a := range Activities {
		var row [5]float64
		for _, u := range f.Kept {
			// A user with no answer for this activity (zero value) or a
			// corrupt rating must not index off the front of the row;
			// they simply don't contribute to the distribution.
			if r := u.Ratings[a]; r >= 1 && r <= 5 {
				row[r-1]++
			}
		}
		if n > 0 {
			for i := range row {
				row[i] /= n
			}
		}
		out[a] = row
	}
	return out
}

// Fig2CDF returns the CDF of median RAM utilization across devices.
func (f *Fleet) Fig2CDF() *stats.CDF {
	xs := make([]float64, len(f.Logs))
	for i, l := range f.Logs {
		xs[i] = l.MedianUtilization
	}
	return stats.NewCDF(xs)
}

// SignalFreqPoint is one Figure 3 scatter point.
type SignalFreqPoint struct {
	User    string
	RAMGiB  float64
	Level   proc.Level
	PerHour float64
}

// Fig3Scatter returns per-device per-level signal frequencies.
func (f *Fleet) Fig3Scatter() []SignalFreqPoint {
	var out []SignalFreqPoint
	for _, l := range f.Logs {
		for _, lvl := range []proc.Level{proc.Moderate, proc.Low, proc.Critical} {
			out = append(out, SignalFreqPoint{
				User:    l.User.ID,
				RAMGiB:  float64(l.User.RAM) / float64(units.GiB),
				Level:   lvl,
				PerHour: l.SignalsPerHour[lvl],
			})
		}
	}
	return out
}

// TimeSharePoint is one Figure 4 point: fraction of time a device
// spent at a pressure level.
type TimeSharePoint struct {
	User   string
	RAMGiB float64
	Level  proc.Level
	Share  float64
}

// Fig4TimeShares returns per-device time shares in non-Normal states.
func (f *Fleet) Fig4TimeShares() []TimeSharePoint {
	var out []TimeSharePoint
	for _, l := range f.Logs {
		for _, lvl := range []proc.Level{proc.Moderate, proc.Low, proc.Critical} {
			out = append(out, TimeSharePoint{
				User:   l.User.ID,
				RAMGiB: float64(l.User.RAM) / float64(units.GiB),
				Level:  lvl,
				Share:  l.TimeShare[lvl],
			})
		}
	}
	return out
}

// highPressureShare is the fraction of time outside Normal.
func highPressureShare(l *DeviceLog) float64 {
	return l.TimeShare[proc.Moderate] + l.TimeShare[proc.Low] + l.TimeShare[proc.Critical]
}

// Fig5Device is the available-memory distribution of one device across
// pressure states (Figure 5's violins, summarized as five-number
// boxplots).
type Fig5Device struct {
	User      string
	RAMGiB    float64
	ByLevel   map[proc.Level]stats.BoxPlot
	HighShare float64
}

// Fig5TopDevices returns the k devices that spent the most time out of
// Normal, with their per-state available-memory distributions.
func (f *Fleet) Fig5TopDevices(k int) []Fig5Device {
	logs := append([]*DeviceLog(nil), f.Logs...)
	// Share descending with an explicit user-ID tie-break: equal shares
	// must order the same way on every run for byte-identical reports
	// (the previous O(n²) selection sort tie-broke on slice position).
	sort.Slice(logs, func(i, j int) bool {
		hi, hj := highPressureShare(logs[i]), highPressureShare(logs[j])
		if hi != hj {
			return hi > hj
		}
		return logs[i].User.ID < logs[j].User.ID
	})
	if k > len(logs) {
		k = len(logs)
	}
	out := make([]Fig5Device, 0, k)
	for _, l := range logs[:k] {
		d := Fig5Device{
			User:      l.User.ID,
			RAMGiB:    float64(l.User.RAM) / float64(units.GiB),
			ByLevel:   make(map[proc.Level]stats.BoxPlot),
			HighShare: highPressureShare(l),
		}
		//coalvet:allow maporder key-to-key map transform, order-insensitive
		for lvl, xs := range l.AvailableByLevel {
			d.ByLevel[lvl] = stats.NewBoxPlot(xs)
		}
		out = append(out, d)
	}
	return out
}

// Fig6Stats aggregates pressure-state transitions (Figure 6): the
// next-state percentages and the dwell-time distributions, over the
// devices that spent the most time under pressure.
type Fig6Stats struct {
	// NextShare[from][to] is the percentage of transitions out of
	// `from` that land in `to`.
	NextShare map[proc.Level]map[proc.Level]float64
	// Dwell[from] summarizes how long devices stayed in `from` before
	// moving on.
	Dwell map[proc.Level]stats.BoxPlot
}

// Fig6Transitions computes the transition statistics over devices with
// at least minHighShare of their time under pressure (the paper used
// the nine devices above 30%).
func (f *Fleet) Fig6Transitions(minHighShare float64) Fig6Stats {
	counts := make(map[proc.Level]map[proc.Level]int)
	dwell := make(map[proc.Level][]float64)
	for _, l := range f.Logs {
		if highPressureShare(l) < minHighShare {
			continue
		}
		for _, tr := range l.Transitions {
			if counts[tr.From] == nil {
				counts[tr.From] = make(map[proc.Level]int)
			}
			counts[tr.From][tr.To]++
			dwell[tr.From] = append(dwell[tr.From], tr.Dwell.Seconds())
		}
	}
	out := Fig6Stats{
		NextShare: make(map[proc.Level]map[proc.Level]float64),
		Dwell:     make(map[proc.Level]stats.BoxPlot),
	}
	//coalvet:allow maporder key-to-key map transform, order-insensitive
	for from, tos := range counts {
		total := 0
		//coalvet:allow maporder integer count sum, order-insensitive
		for _, c := range tos {
			total += c
		}
		out.NextShare[from] = make(map[proc.Level]float64)
		//coalvet:allow maporder key-to-key map transform, order-insensitive
		for to, c := range tos {
			out.NextShare[from][to] = 100 * float64(c) / float64(total)
		}
	}
	//coalvet:allow maporder key-to-key map transform, order-insensitive
	for from, xs := range dwell {
		out.Dwell[from] = stats.NewBoxPlot(xs)
	}
	return out
}

// Insights are the §3 rows of Table 1.
type Insights struct {
	// PctAnySignal is the share of devices receiving at least one
	// Moderate/Low/Critical signal per hour (paper: 63%).
	PctAnySignal float64
	// PctManyCritical is the share receiving > 10 critical signals
	// per hour (paper: 19%).
	PctManyCritical float64
	// PctUtilOver60 is the share with median utilization ≥ 60%
	// (paper: 80%).
	PctUtilOver60 float64
	// PctHighTimeOver50 is the share spending > 50% of time under
	// pressure (paper: 10%).
	PctHighTimeOver50 float64
	// PctHighTimeOver2 is the share spending ≥ 2% of time under
	// pressure (paper: 35%).
	PctHighTimeOver2 float64
}

// Table1 computes the §3 key-insight fractions.
func (f *Fleet) Table1() Insights {
	var ins Insights
	n := float64(len(f.Logs))
	if n == 0 {
		return ins
	}
	for _, l := range f.Logs {
		any := l.SignalsPerHour[proc.Moderate] + l.SignalsPerHour[proc.Low] + l.SignalsPerHour[proc.Critical]
		if any >= 1 {
			ins.PctAnySignal += 100 / n
		}
		if l.SignalsPerHour[proc.Critical] > 10 {
			ins.PctManyCritical += 100 / n
		}
		if l.MedianUtilization >= 0.60 {
			ins.PctUtilOver60 += 100 / n
		}
		if hs := highPressureShare(l); hs > 0.5 {
			ins.PctHighTimeOver50 += 100 / n
		} else if hs >= 0.02 {
			ins.PctHighTimeOver2 += 100 / n
		}
	}
	// Over-2% includes the over-50% devices.
	ins.PctHighTimeOver2 += ins.PctHighTimeOver50
	return ins
}
