package study

import (
	"testing"
	"time"

	"coalqoe/internal/proc"
	"coalqoe/internal/units"
)

// craftedFleet builds a fleet with hand-written logs so the analytics
// are testable without simulation.
func craftedFleet() *Fleet {
	mkUser := func(id string, ram units.Bytes) *User {
		return &User{ID: id, RAM: ram, InteractiveHours: 20,
			Ratings: map[Activity]int{PlayingGames: 1, ListeningMusic: 3, StreamingVideo: 5}}
	}
	u1 := mkUser("quiet", 4*units.GiB)
	u2 := mkUser("pressured", 1*units.GiB)
	f := &Fleet{Recruited: []*User{u1, u2}, Kept: []*User{u1, u2}}
	f.Logs = []*DeviceLog{
		{
			User: u1, ObservedHours: 1,
			SignalsPerHour:    map[proc.Level]float64{},
			TimeShare:         map[proc.Level]float64{proc.Normal: 1},
			MedianUtilization: 0.5,
			AvailableByLevel:  map[proc.Level][]float64{proc.Normal: {2000, 2100}},
		},
		{
			User: u2, ObservedHours: 1,
			SignalsPerHour: map[proc.Level]float64{proc.Moderate: 5, proc.Critical: 12},
			TimeShare: map[proc.Level]float64{
				proc.Normal: 0.4, proc.Moderate: 0.3, proc.Low: 0.1, proc.Critical: 0.2,
			},
			MedianUtilization: 0.85,
			AvailableByLevel: map[proc.Level][]float64{
				proc.Moderate: {120, 140}, proc.Critical: {60, 70},
			},
			Transitions: []Transition{
				{From: proc.Normal, To: proc.Moderate, Dwell: 10 * time.Second},
				{From: proc.Moderate, To: proc.Critical, Dwell: 5 * time.Second},
				{From: proc.Critical, To: proc.Low, Dwell: 12 * time.Second},
				{From: proc.Low, To: proc.Critical, Dwell: 3 * time.Second},
				{From: proc.Critical, To: proc.Normal, Dwell: 11 * time.Second},
			},
		},
	}
	return f
}

func TestTable1Crafted(t *testing.T) {
	ins := craftedFleet().Table1()
	if ins.PctAnySignal != 50 {
		t.Errorf("PctAnySignal = %v, want 50", ins.PctAnySignal)
	}
	if ins.PctManyCritical != 50 {
		t.Errorf("PctManyCritical = %v, want 50", ins.PctManyCritical)
	}
	if ins.PctUtilOver60 != 50 {
		t.Errorf("PctUtilOver60 = %v, want 50", ins.PctUtilOver60)
	}
	if ins.PctHighTimeOver50 != 50 {
		t.Errorf("PctHighTimeOver50 = %v (pressured device is 60%% out of Normal)", ins.PctHighTimeOver50)
	}
	if ins.PctHighTimeOver2 != 50 {
		t.Errorf("PctHighTimeOver2 = %v, want 50 (includes the >50%% device)", ins.PctHighTimeOver2)
	}
}

func TestFig5TopDevicesCrafted(t *testing.T) {
	top := craftedFleet().Fig5TopDevices(1)
	if len(top) != 1 || top[0].User != "pressured" {
		t.Fatalf("top device = %+v", top)
	}
	crit := top[0].ByLevel[proc.Critical]
	if crit.N != 2 || crit.Min != 60 || crit.Max != 70 {
		t.Errorf("critical availability summary = %+v", crit)
	}
	// The paper's ordering: mean available lowest at Critical.
	mod := top[0].ByLevel[proc.Moderate]
	if crit.Mean >= mod.Mean {
		t.Errorf("available at Critical (%v) should be below Moderate (%v)", crit.Mean, mod.Mean)
	}
}

func TestFig6TransitionsCrafted(t *testing.T) {
	st := craftedFleet().Fig6Transitions(0.5)
	// Out of Critical: one to Low, one to Normal -> 50/50.
	if got := st.NextShare[proc.Critical][proc.Low]; got != 50 {
		t.Errorf("Critical->Low = %v%%, want 50", got)
	}
	if got := st.NextShare[proc.Critical][proc.Normal]; got != 50 {
		t.Errorf("Critical->Normal = %v%%, want 50", got)
	}
	dwell := st.Dwell[proc.Critical]
	if dwell.N != 2 || dwell.Min != 11 || dwell.Max != 12 {
		t.Errorf("Critical dwell = %+v", dwell)
	}
	// Threshold excludes the quiet device entirely.
	if _, ok := st.NextShare[proc.Low]; !ok {
		t.Error("Low transitions missing")
	}
}

func TestFig3Fig4Crafted(t *testing.T) {
	f := craftedFleet()
	pts := f.Fig3Scatter()
	if len(pts) != 6 {
		t.Fatalf("fig3 points = %d, want 2 users x 3 levels", len(pts))
	}
	var critPerHour float64
	for _, p := range pts {
		if p.User == "pressured" && p.Level == proc.Critical {
			critPerHour = p.PerHour
		}
	}
	if critPerHour != 12 {
		t.Errorf("critical rate = %v, want 12", critPerHour)
	}
	shares := f.Fig4TimeShares()
	var modShare float64
	for _, p := range shares {
		if p.User == "pressured" && p.Level == proc.Moderate {
			modShare = p.Share
		}
	}
	if modShare != 0.3 {
		t.Errorf("moderate share = %v, want 0.3", modShare)
	}
}

func TestFig2CDFCrafted(t *testing.T) {
	cdf := craftedFleet().Fig2CDF()
	if got := cdf.At(0.5); got != 0.5 {
		t.Errorf("P[util<=0.5] = %v, want 0.5", got)
	}
	if got := cdf.At(0.9); got != 1 {
		t.Errorf("P[util<=0.9] = %v, want 1", got)
	}
}
