package study

import (
	"sort"

	"coalqoe/internal/proc"
	"coalqoe/internal/stats"
	"coalqoe/internal/units"
)

// This file is the streaming half of the fleet study: FleetAggregate
// folds one DeviceLog at a time into mergeable summaries (integer
// counters, quantile sketches, a bounded top-k heap) and then drops
// the log, so a million-user panel costs the same memory as a
// 48-user one. The aggregate state is canonical — independent of fold
// and merge order — which is what makes serial, sharded and
// checkpoint-resumed runs serialize byte-identically (engine_test.go
// holds it to that under -race).

const (
	// numLevels covers proc.Normal..proc.Critical.
	numLevels = 4
	// numActivities covers the Figure 1 survey categories.
	numActivities = 3

	// MinHighShareFig6 is the fold-time pressure filter for the Figure 6
	// transition statistics (the paper analyzed the most-pressured
	// devices; quick-mode fleets fall back to the unfiltered set).
	MinHighShareFig6 = 0.02

	// DefaultExactRetain bounds the per-device summaries kept for the
	// small-panel report rows (Figures 3–4 print one line per device).
	// Beyond it the aggregate stops retaining rows — the fleet-scale
	// regime where only the streaming summaries remain.
	DefaultExactRetain = 128
	// DefaultTopK bounds the Figure 5 most-pressured-devices heap.
	DefaultTopK = 16
	// maxFailureRecords bounds the retained per-user failure reasons.
	maxFailureRecords = 8

	// Sketch geometry. Utilization lives in [0,1]; device-level medians
	// stay exact up to 4096 devices, then bin at 1/4096 resolution.
	// Dwell times live in [0, SimHours] seconds; per-level dwell
	// populations stay exact up to 16384 transitions, then bin at
	// ~0.66 s resolution. Both tolerances are documented in
	// EXPERIMENTS.md ("sketch tolerances").
	utilBins      = 4096
	utilExactCap  = 4096
	dwellBins     = 8192
	dwellExactCap = 16384
)

// dwellMaxSeconds is the sketch range upper bound: a dwell cannot
// exceed the simulated span.
const dwellMaxSeconds = SimHours * 3600

// DeviceSummary is the bounded per-device record the aggregate may
// retain: scalars only, never the 1 Hz samples.
type DeviceSummary struct {
	// Index is the recruit index; retention rules key on it so they are
	// deterministic under any fold/merge order.
	Index             int64              `json:"index"`
	ID                string             `json:"id"`
	RAMGiB            float64            `json:"ram_gib"`
	MedianUtilization float64            `json:"median_utilization"`
	SignalsPerHour    [numLevels]float64 `json:"signals_per_hour"`
	TimeShare         [numLevels]float64 `json:"time_share"`
	HighShare         float64            `json:"high_share"`
}

// fig5Candidate is a top-k entry: the summary plus the per-level
// available-memory samples Figure 5's boxplots need. Bounded by TopK.
type fig5Candidate struct {
	DeviceSummary
	AvailableByLevel [numLevels][]float64 `json:"available_by_level"`
}

// TransitionAgg accumulates Figure 6: integer transition counts and
// per-from-level dwell sketches.
type TransitionAgg struct {
	Counts [numLevels][numLevels]int64      `json:"counts"`
	Dwell  [numLevels]*stats.QuantileSketch `json:"dwell"`
}

func newTransitionAgg() TransitionAgg {
	var t TransitionAgg
	for i := range t.Dwell {
		t.Dwell[i] = stats.NewQuantileSketch(0, dwellMaxSeconds, dwellBins, dwellExactCap)
	}
	return t
}

func (t *TransitionAgg) fold(trs []Transition) {
	for _, tr := range trs {
		if tr.From < 0 || tr.From >= numLevels || tr.To < 0 || tr.To >= numLevels {
			continue
		}
		t.Counts[tr.From][tr.To]++
		t.Dwell[tr.From].Add(tr.Dwell.Seconds())
	}
}

func (t *TransitionAgg) merge(o *TransitionAgg) {
	for i := range t.Counts {
		for j := range t.Counts[i] {
			t.Counts[i][j] += o.Counts[i][j]
		}
		t.Dwell[i].Merge(o.Dwell[i])
	}
}

// IndexedFailure is one captured per-user panic with its recruit index
// (the deterministic retention key).
type IndexedFailure struct {
	Index  int64  `json:"index"`
	User   string `json:"user"`
	Reason string `json:"reason"`
}

// FleetAggregate is the streaming fleet summary. All fields are
// exported for checkpoint serialization; use the accessors for
// figures. Merging two aggregates (disjoint user sets, same
// parameters) yields exactly the aggregate of the union — the law the
// sharded engine is built on.
type FleetAggregate struct {
	// Recruited/Kept/Failed are the panel counts: Kept passed the
	// ≥ MinInteractiveHours filter (and includes failed users, like
	// Fleet.Kept); Failed users panicked during simulation.
	Recruited int64 `json:"recruited"`
	Kept      int64 `json:"kept"`
	Failed    int64 `json:"failed"`

	// RatingCounts[a][r] counts kept users answering rating r (1..5)
	// for activity a; index 0 collects unset/out-of-range answers
	// (the bug class Fig1Heatmap used to panic on).
	RatingCounts [numActivities][6]int64 `json:"rating_counts"`

	// Util sketches the per-device median RAM utilization (Figure 2).
	Util *stats.QuantileSketch `json:"util"`

	// Table 1 streaming counters (denominator: Kept - Failed).
	NAnySignal    int64 `json:"n_any_signal"`
	NManyCritical int64 `json:"n_many_critical"`
	NUtil60       int64 `json:"n_util60"`
	NHigh50       int64 `json:"n_high50"`
	NHigh2        int64 `json:"n_high2"` // 2%..50%, exclusive of NHigh50

	// Trans is Figure 6 over devices with HighShare ≥ MinHighShareFig6;
	// TransAll is the unfiltered fallback for small quick-mode fleets.
	Trans    TransitionAgg `json:"trans"`
	TransAll TransitionAgg `json:"trans_all"`

	// Top holds the ≤ TopK most-pressured devices (share descending,
	// user ID ascending) with their per-level availability samples.
	Top  []*fig5Candidate `json:"top"`
	TopK int              `json:"top_k"`

	// Summaries retains the ExactRetain lowest-index device summaries
	// for the per-device report rows; sorted by Index.
	Summaries   []*DeviceSummary `json:"summaries"`
	ExactRetain int              `json:"exact_retain"`

	// Failures retains the maxFailureRecords lowest-index failures.
	Failures []IndexedFailure `json:"failures"`
}

// NewFleetAggregate creates an empty aggregate. exactRetain/topK ≤ 0
// select the defaults.
func NewFleetAggregate(exactRetain, topK int) *FleetAggregate {
	if exactRetain <= 0 {
		exactRetain = DefaultExactRetain
	}
	if topK <= 0 {
		topK = DefaultTopK
	}
	return &FleetAggregate{
		Util:        stats.NewQuantileSketch(0, 1, utilBins, utilExactCap),
		Trans:       newTransitionAgg(),
		TransAll:    newTransitionAgg(),
		TopK:        topK,
		ExactRetain: exactRetain,
	}
}

// NoteRecruit counts a participant who installed the app but did not
// pass the interactive-hours filter (kept users are counted by Fold).
func (a *FleetAggregate) NoteRecruit() { a.Recruited++ }

// foldRatings counts a kept user's survey answers.
func (a *FleetAggregate) foldRatings(u *User) {
	a.Kept++
	for _, act := range Activities {
		r := u.Ratings[act]
		if r < 1 || r > 5 {
			r = 0
		}
		a.RatingCounts[act][r]++
	}
}

// Fold streams one kept user's completed DeviceLog into the aggregate.
// The log is not retained — callers drop it after this returns.
func (a *FleetAggregate) Fold(u *User, log *DeviceLog, index int64) {
	a.Recruited++
	a.foldRatings(u)

	s := summarize(u, log, index)
	a.Util.Add(s.MedianUtilization)

	any := s.SignalsPerHour[proc.Moderate] + s.SignalsPerHour[proc.Low] + s.SignalsPerHour[proc.Critical]
	if any >= 1 {
		a.NAnySignal++
	}
	if s.SignalsPerHour[proc.Critical] > 10 {
		a.NManyCritical++
	}
	if s.MedianUtilization >= 0.60 {
		a.NUtil60++
	}
	if s.HighShare > 0.5 {
		a.NHigh50++
	} else if s.HighShare >= 0.02 {
		a.NHigh2++
	}

	a.TransAll.fold(log.Transitions)
	if s.HighShare >= MinHighShareFig6 {
		a.Trans.fold(log.Transitions)
	}

	a.insertTop(&fig5Candidate{DeviceSummary: *s, AvailableByLevel: availArrays(log)})
	a.insertSummary(s)
}

// FoldFailure records a kept user whose simulation panicked. Their
// survey answers still count (Figure 1 is survey data, not telemetry),
// matching the legacy Fleet, whose Kept list includes failed users.
func (a *FleetAggregate) FoldFailure(u *User, index int64, reason string) {
	a.Recruited++
	a.foldRatings(u)
	a.Failed++
	a.Failures = append(a.Failures, IndexedFailure{Index: index, User: u.ID, Reason: reason})
	sort.Slice(a.Failures, func(i, j int) bool { return a.Failures[i].Index < a.Failures[j].Index })
	if len(a.Failures) > maxFailureRecords {
		a.Failures = a.Failures[:maxFailureRecords]
	}
}

// summarize reduces a DeviceLog to its bounded scalar summary.
func summarize(u *User, log *DeviceLog, index int64) *DeviceSummary {
	s := &DeviceSummary{
		Index:             index,
		ID:                u.ID,
		RAMGiB:            float64(u.RAM) / float64(units.GiB),
		MedianUtilization: log.MedianUtilization,
	}
	//coalvet:allow maporder writes into a level-indexed array, order-insensitive
	for lvl, v := range log.SignalsPerHour {
		if lvl >= 0 && lvl < numLevels {
			s.SignalsPerHour[lvl] = v
		}
	}
	//coalvet:allow maporder writes into a level-indexed array, order-insensitive
	for lvl, v := range log.TimeShare {
		if lvl >= 0 && lvl < numLevels {
			s.TimeShare[lvl] = v
		}
	}
	s.HighShare = s.TimeShare[proc.Moderate] + s.TimeShare[proc.Low] + s.TimeShare[proc.Critical]
	return s
}

func availArrays(log *DeviceLog) [numLevels][]float64 {
	var out [numLevels][]float64
	//coalvet:allow maporder writes into a level-indexed array, order-insensitive
	for lvl, xs := range log.AvailableByLevel {
		if lvl >= 0 && lvl < numLevels {
			out[lvl] = append([]float64(nil), xs...)
		}
	}
	return out
}

// topLess is the total order of the Figure 5 heap: pressure share
// descending, user ID ascending — ties must order the same way
// whatever the fold or merge order.
func topLess(a, b *fig5Candidate) bool {
	if a.HighShare != b.HighShare {
		return a.HighShare > b.HighShare
	}
	return a.ID < b.ID
}

func (a *FleetAggregate) insertTop(c *fig5Candidate) {
	a.Top = append(a.Top, c)
	sort.Slice(a.Top, func(i, j int) bool { return topLess(a.Top[i], a.Top[j]) })
	if len(a.Top) > a.TopK {
		a.Top = a.Top[:a.TopK]
	}
}

func (a *FleetAggregate) insertSummary(s *DeviceSummary) {
	if len(a.Summaries) == a.ExactRetain && a.Summaries[len(a.Summaries)-1].Index < s.Index {
		return
	}
	a.Summaries = append(a.Summaries, s)
	sort.Slice(a.Summaries, func(i, j int) bool { return a.Summaries[i].Index < a.Summaries[j].Index })
	if len(a.Summaries) > a.ExactRetain {
		a.Summaries = a.Summaries[:a.ExactRetain]
	}
}

// Merge folds o (an aggregate over a disjoint user set with identical
// parameters) into a.
func (a *FleetAggregate) Merge(o *FleetAggregate) {
	a.Recruited += o.Recruited
	a.Kept += o.Kept
	a.Failed += o.Failed
	for i := range a.RatingCounts {
		for j := range a.RatingCounts[i] {
			a.RatingCounts[i][j] += o.RatingCounts[i][j]
		}
	}
	a.Util.Merge(o.Util)
	a.NAnySignal += o.NAnySignal
	a.NManyCritical += o.NManyCritical
	a.NUtil60 += o.NUtil60
	a.NHigh50 += o.NHigh50
	a.NHigh2 += o.NHigh2
	a.Trans.merge(&o.Trans)
	a.TransAll.merge(&o.TransAll)
	for _, c := range o.Top {
		a.insertTop(c)
	}
	a.Summaries = append(a.Summaries, o.Summaries...)
	sort.Slice(a.Summaries, func(i, j int) bool { return a.Summaries[i].Index < a.Summaries[j].Index })
	if len(a.Summaries) > a.ExactRetain {
		a.Summaries = a.Summaries[:a.ExactRetain]
	}
	a.Failures = append(a.Failures, o.Failures...)
	sort.Slice(a.Failures, func(i, j int) bool { return a.Failures[i].Index < a.Failures[j].Index })
	if len(a.Failures) > maxFailureRecords {
		a.Failures = a.Failures[:maxFailureRecords]
	}
}

// --- figure accessors (the streaming counterparts of Fleet's) ---

// Fig1Heatmap returns, per activity, the fraction of kept users giving
// each 1–5 rating. Exact at any scale (integer counts).
func (a *FleetAggregate) Fig1Heatmap() map[Activity][5]float64 {
	out := make(map[Activity][5]float64, numActivities)
	n := float64(a.Kept)
	for _, act := range Activities {
		var row [5]float64
		for r := 1; r <= 5; r++ {
			if n > 0 {
				row[r-1] = float64(a.RatingCounts[act][r]) / n
			}
		}
		out[act] = row
	}
	return out
}

// UtilCDFAt returns P[median utilization ≤ x] across devices
// (Figure 2): exact below the sketch cap, within the documented bin
// tolerance beyond it.
func (a *FleetAggregate) UtilCDFAt(x float64) float64 { return a.Util.CDFAt(x) }

// Fig3Scatter returns per-device per-level signal frequencies from the
// retained summaries. complete is false when the fleet outgrew the
// retention cap — the rows then cover only the first ExactRetain
// devices (headline fractions stay exact via Table1).
func (a *FleetAggregate) Fig3Scatter() (pts []SignalFreqPoint, complete bool) {
	for _, s := range a.Summaries {
		for _, lvl := range []proc.Level{proc.Moderate, proc.Low, proc.Critical} {
			pts = append(pts, SignalFreqPoint{
				User:    s.ID,
				RAMGiB:  s.RAMGiB,
				Level:   lvl,
				PerHour: s.SignalsPerHour[lvl],
			})
		}
	}
	return pts, int64(len(a.Summaries)) == a.Kept-a.Failed
}

// Fig4TimeShares returns per-device pressure-state time shares from
// the retained summaries; complete as in Fig3Scatter.
func (a *FleetAggregate) Fig4TimeShares() (pts []TimeSharePoint, complete bool) {
	for _, s := range a.Summaries {
		for _, lvl := range []proc.Level{proc.Moderate, proc.Low, proc.Critical} {
			pts = append(pts, TimeSharePoint{
				User:   s.ID,
				RAMGiB: s.RAMGiB,
				Level:  lvl,
				Share:  s.TimeShare[lvl],
			})
		}
	}
	return pts, int64(len(a.Summaries)) == a.Kept-a.Failed
}

// Fig5TopDevices returns the k most-pressured devices with their
// per-state available-memory distributions. Exact at any scale: the
// heap retains the raw availability samples for the surviving k.
func (a *FleetAggregate) Fig5TopDevices(k int) []Fig5Device {
	if k > len(a.Top) {
		k = len(a.Top)
	}
	out := make([]Fig5Device, 0, k)
	for _, c := range a.Top[:k] {
		d := Fig5Device{
			User:      c.ID,
			RAMGiB:    c.RAMGiB,
			ByLevel:   make(map[proc.Level]stats.BoxPlot),
			HighShare: c.HighShare,
		}
		for lvl := proc.Level(0); lvl < numLevels; lvl++ {
			if xs := c.AvailableByLevel[lvl]; len(xs) > 0 {
				d.ByLevel[lvl] = stats.NewBoxPlot(xs)
			}
		}
		out = append(out, d)
	}
	return out
}

// TopSummaries returns the retained most-pressured device summaries
// (share descending), for fleet-scale per-device tables.
func (a *FleetAggregate) TopSummaries(k int) []*DeviceSummary {
	if k > len(a.Top) {
		k = len(a.Top)
	}
	out := make([]*DeviceSummary, 0, k)
	for _, c := range a.Top[:k] {
		s := c.DeviceSummary
		out = append(out, &s)
	}
	return out
}

// Fig6Transitions returns the transition statistics over the
// most-pressured devices (HighShare ≥ MinHighShareFig6), falling back
// to the unfiltered set when no device qualified (small quick fleets).
// Dwell boxplots are exact below the sketch cap.
func (a *FleetAggregate) Fig6Transitions() Fig6Stats {
	t := &a.Trans
	if transEmpty(t) {
		t = &a.TransAll
	}
	out := Fig6Stats{
		NextShare: make(map[proc.Level]map[proc.Level]float64),
		Dwell:     make(map[proc.Level]stats.BoxPlot),
	}
	for from := 0; from < numLevels; from++ {
		var total int64
		for to := 0; to < numLevels; to++ {
			total += t.Counts[from][to]
		}
		if total == 0 {
			continue
		}
		shares := make(map[proc.Level]float64)
		for to := 0; to < numLevels; to++ {
			if c := t.Counts[from][to]; c > 0 {
				shares[proc.Level(to)] = 100 * float64(c) / float64(total)
			}
		}
		out.NextShare[proc.Level(from)] = shares
		if t.Dwell[from].N() > 0 {
			out.Dwell[proc.Level(from)] = t.Dwell[from].BoxPlot()
		}
	}
	return out
}

func transEmpty(t *TransitionAgg) bool {
	for i := range t.Counts {
		for j := range t.Counts[i] {
			if t.Counts[i][j] != 0 {
				return false
			}
		}
	}
	return true
}

// Table1 computes the §3 key-insight fractions from the streaming
// counters. Exact at any scale.
func (a *FleetAggregate) Table1() Insights {
	n := float64(a.Kept - a.Failed)
	if n == 0 {
		return Insights{}
	}
	return Insights{
		PctAnySignal:      100 * float64(a.NAnySignal) / n,
		PctManyCritical:   100 * float64(a.NManyCritical) / n,
		PctUtilOver60:     100 * float64(a.NUtil60) / n,
		PctHighTimeOver50: 100 * float64(a.NHigh50) / n,
		// Over-2% includes the over-50% devices (legacy semantics).
		PctHighTimeOver2: 100 * float64(a.NHigh2+a.NHigh50) / n,
	}
}
