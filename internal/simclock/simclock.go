// Package simclock implements the discrete-event simulation kernel that
// drives the Android device model.
//
// All simulator packages share one Clock. Time is virtual: it advances
// only when the event loop dispatches the next scheduled event, so a
// simulated two-minute video session runs in milliseconds of wall time
// and is fully deterministic for a given seed.
//
// The clock supports one-shot events (Schedule/At), repeating events
// (Every), and cancellation. Events at the same instant fire in the
// order they were scheduled, which keeps runs reproducible.
//
// The implementation is a hand-rolled binary heap over slab-allocated
// events: the dispatch loop is the single hottest path of the whole
// simulator, so it avoids container/heap's interface dispatch, allocates
// events in chunks instead of one at a time, re-arms periodic events in
// place (no pop+push), and removes canceled events immediately rather
// than letting them age through the queue.
package simclock

import (
	"fmt"
	"math/rand"
	"time"
)

// Clock is a discrete-event virtual clock. It is not safe for concurrent
// use: the simulation is single-goroutine by design so that runs are
// deterministic.
type Clock struct {
	now     time.Duration
	queue   []*Event
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// slab is the current event allocation chunk: events are handed out
	// from fixed-capacity chunks so scheduling doesn't pay one heap
	// allocation per event. Events are never recycled — a fired event's
	// handle stays valid (callers may Cancel it long after it fired), so
	// a free list would hand two owners the same struct.
	slab []Event

	// digest accumulates an FNV-1a hash over every dispatched event's
	// (time, seq, kind) when enabled — the event-order oracle that pins
	// the kernel's dispatch sequence across optimisations and worker
	// counts. Zero-cost when disabled: one boolean test per dispatch.
	digestOn bool
	digest   uint64
}

// slabSize is the event-chunk length: large enough to amortize the
// chunk allocation to noise, small enough that a few live handles
// pinning a mostly-dead chunk waste little memory.
const slabSize = 256

// Event kinds as hashed into the dispatch digest.
const (
	digestOneShot  = 0
	digestPeriodic = 1
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Event is a handle to a scheduled callback. Cancel it to prevent firing.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
	period   time.Duration // >0 for repeating events
	clock    *Clock
}

// Cancel prevents the event from firing (and from repeating), removing
// it from the queue immediately. Canceling an already-fired one-shot
// event is a no-op.
func (e *Event) Cancel() {
	if e == nil {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		e.clock.remove(e.index)
	}
}

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// When returns the virtual time at which the event will next fire.
func (e *Event) When() time.Duration { return e.at }

// less orders the queue by (time, seq): same-instant events fire in
// scheduling order.
func (c *Clock) less(i, j int) bool {
	a, b := c.queue[i], c.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (c *Clock) swap(i, j int) {
	c.queue[i], c.queue[j] = c.queue[j], c.queue[i]
	c.queue[i].index = i
	c.queue[j].index = j
}

func (c *Clock) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			return
		}
		c.swap(i, parent)
		i = parent
	}
}

func (c *Clock) siftDown(i int) {
	n := len(c.queue)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && c.less(right, left) {
			least = right
		}
		if !c.less(least, i) {
			return
		}
		c.swap(i, least)
		i = least
	}
}

func (c *Clock) push(e *Event) {
	e.index = len(c.queue)
	c.queue = append(c.queue, e)
	c.siftUp(e.index)
}

// popRoot removes and returns the earliest event.
func (c *Clock) popRoot() *Event {
	e := c.queue[0]
	n := len(c.queue) - 1
	c.queue[0] = c.queue[n]
	c.queue[0].index = 0
	c.queue[n] = nil
	c.queue = c.queue[:n]
	if n > 1 {
		c.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap index i, restoring heap order.
func (c *Clock) remove(i int) {
	e := c.queue[i]
	n := len(c.queue) - 1
	if i != n {
		moved := c.queue[n]
		c.queue[i] = moved
		moved.index = i
		c.queue[n] = nil
		c.queue = c.queue[:n]
		c.siftDown(i)
		c.siftUp(moved.index)
	} else {
		c.queue[n] = nil
		c.queue = c.queue[:n]
	}
	e.index = -1
}

// newEvent hands out one event from the current slab chunk, starting a
// fresh chunk when full. Appending within capacity never moves the
// backing array, so returned pointers stay valid.
func (c *Clock) newEvent() *Event {
	if len(c.slab) == cap(c.slab) {
		c.slab = make([]Event, 0, slabSize)
	}
	c.slab = append(c.slab, Event{})
	return &c.slab[len(c.slab)-1]
}

// New returns a clock at virtual time zero with a deterministic RNG
// seeded by seed.
func New(seed int64) *Clock {
	return &Clock{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (duration since simulation start).
func (c *Clock) Now() time.Duration { return c.now }

// Rand returns the clock's deterministic random source. All stochastic
// model components must draw from this source (never the global rand)
// so that a seed fully determines a run.
func (c *Clock) Rand() *rand.Rand { return c.rng }

// EnableDigest starts accumulating the event-order digest: an FNV-1a
// hash folded over (fire time, sequence number, kind) of every event
// dispatched from this point on. Two runs that dispatch the same events
// in the same order produce the same digest; any reordering, insertion
// or loss changes it. Enabling is idempotent and read-only with respect
// to the simulation — a run's trajectory is identical with the digest
// on or off.
func (c *Clock) EnableDigest() {
	if !c.digestOn {
		c.digestOn = true
		c.digest = fnvOffset64
	}
}

// DigestEnabled reports whether the dispatch digest is accumulating.
func (c *Clock) DigestEnabled() bool { return c.digestOn }

// Digest returns the accumulated event-order digest (0 when disabled).
func (c *Clock) Digest() uint64 {
	if !c.digestOn {
		return 0
	}
	return c.digest
}

// noteDispatch folds one dispatched event into the digest.
func (c *Clock) noteDispatch(at time.Duration, seq uint64, kind byte) {
	h := c.digest
	x := uint64(at)
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	x = seq
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	h = (h ^ uint64(kind)) * fnvPrime64
	c.digest = h
}

// Schedule runs fn after delay d. It returns a cancelable handle.
// A negative delay is treated as zero (fire at the current instant,
// after already-queued events for this instant).
func (c *Clock) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped
// to now.
func (c *Clock) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simclock: At called with nil callback")
	}
	if t < c.now {
		t = c.now
	}
	e := c.newEvent()
	*e = Event{at: t, seq: c.seq, fn: fn, index: -1, clock: c}
	c.seq++
	c.push(e)
	return e
}

// Every runs fn every period, with the first firing after one period.
// The returned handle cancels all future firings.
func (c *Clock) Every(period time.Duration, fn func()) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: Every called with non-positive period %v", period))
	}
	e := c.Schedule(period, fn)
	e.period = period
	return e
}

// Pending returns the number of events waiting in the queue. Canceled
// events are removed immediately, so they never count.
func (c *Clock) Pending() int { return len(c.queue) }

// Stop makes the current Run/RunUntil call return after the in-flight
// event completes.
func (c *Clock) Stop() { c.stopped = true }

// RunUntil dispatches events in time order until the queue is empty or
// the next event would fire after deadline. The clock is left at
// min(deadline, last event time): if events remain past the deadline,
// time is advanced exactly to the deadline.
func (c *Clock) RunUntil(deadline time.Duration) {
	c.stopped = false
	for len(c.queue) > 0 && !c.stopped {
		next := c.queue[0]
		if next.at > deadline {
			break
		}
		c.now = next.at
		if c.digestOn {
			kind := byte(digestOneShot)
			if next.period > 0 {
				kind = digestPeriodic
			}
			c.noteDispatch(next.at, next.seq, kind)
		}
		if next.period > 0 {
			// Re-arm in place before running, so the callback can Cancel
			// it: the event stays queued, only its key changes, and one
			// siftDown restores order (it can only move later).
			next.at += next.period
			next.seq = c.seq
			c.seq++
			c.siftDown(0)
		} else {
			c.popRoot()
		}
		next.fn()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// Run dispatches events until the queue is empty or Stop is called.
// It panics if a repeating event is queued, because the run would never
// terminate.
func (c *Clock) Run() {
	c.stopped = false
	for len(c.queue) > 0 && !c.stopped {
		next := c.queue[0]
		if next.period > 0 {
			panic("simclock: Run would never terminate with a repeating event queued; use RunUntil")
		}
		c.popRoot()
		c.now = next.at
		if c.digestOn {
			c.noteDispatch(next.at, next.seq, digestOneShot)
		}
		next.fn()
	}
}
