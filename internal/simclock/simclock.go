// Package simclock implements the discrete-event simulation kernel that
// drives the Android device model.
//
// All simulator packages share one Clock. Time is virtual: it advances
// only when the event loop dispatches the next scheduled event, so a
// simulated two-minute video session runs in milliseconds of wall time
// and is fully deterministic for a given seed.
//
// The clock supports one-shot events (Schedule/At), repeating events
// (Every), and cancellation. Events at the same instant fire in the
// order they were scheduled, which keeps runs reproducible.
package simclock

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Clock is a discrete-event virtual clock. It is not safe for concurrent
// use: the simulation is single-goroutine by design so that runs are
// deterministic.
type Clock struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// Event is a handle to a scheduled callback. Cancel it to prevent firing.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
	period   time.Duration // >0 for repeating events
	clock    *Clock
}

// Cancel prevents the event from firing (and from repeating). Canceling
// an already-fired one-shot event is a no-op.
func (e *Event) Cancel() {
	if e == nil {
		return
	}
	e.canceled = true
}

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// When returns the virtual time at which the event will next fire.
func (e *Event) When() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// New returns a clock at virtual time zero with a deterministic RNG
// seeded by seed.
func New(seed int64) *Clock {
	return &Clock{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (duration since simulation start).
func (c *Clock) Now() time.Duration { return c.now }

// Rand returns the clock's deterministic random source. All stochastic
// model components must draw from this source (never the global rand)
// so that a seed fully determines a run.
func (c *Clock) Rand() *rand.Rand { return c.rng }

// Schedule runs fn after delay d. It returns a cancelable handle.
// A negative delay is treated as zero (fire at the current instant,
// after already-queued events for this instant).
func (c *Clock) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped
// to now.
func (c *Clock) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simclock: At called with nil callback")
	}
	if t < c.now {
		t = c.now
	}
	e := &Event{at: t, seq: c.seq, fn: fn, clock: c}
	c.seq++
	heap.Push(&c.queue, e)
	return e
}

// Every runs fn every period, with the first firing after one period.
// The returned handle cancels all future firings.
func (c *Clock) Every(period time.Duration, fn func()) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: Every called with non-positive period %v", period))
	}
	e := c.Schedule(period, fn)
	e.period = period
	return e
}

// Pending returns the number of events waiting in the queue, including
// canceled events that have not been collected yet.
func (c *Clock) Pending() int { return len(c.queue) }

// Stop makes the current Run/RunUntil call return after the in-flight
// event completes.
func (c *Clock) Stop() { c.stopped = true }

// RunUntil dispatches events in time order until the queue is empty or
// the next event would fire after deadline. The clock is left at
// min(deadline, last event time): if events remain past the deadline,
// time is advanced exactly to the deadline.
func (c *Clock) RunUntil(deadline time.Duration) {
	c.stopped = false
	for len(c.queue) > 0 && !c.stopped {
		next := c.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&c.queue)
		if next.canceled {
			continue
		}
		c.now = next.at
		if next.period > 0 {
			// Re-arm before running so the callback can Cancel it.
			next.at = c.now + next.period
			next.seq = c.seq
			c.seq++
			heap.Push(&c.queue, next)
		}
		next.fn()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// Run dispatches events until the queue is empty or Stop is called.
// It panics if a repeating event is queued, because the run would never
// terminate.
func (c *Clock) Run() {
	c.stopped = false
	for len(c.queue) > 0 && !c.stopped {
		next := heap.Pop(&c.queue).(*Event)
		if next.canceled {
			continue
		}
		if next.period > 0 {
			panic("simclock: Run would never terminate with a repeating event queued; use RunUntil")
		}
		c.now = next.at
		next.fn()
	}
}
