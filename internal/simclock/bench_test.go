package simclock_test

import (
	"testing"

	"coalqoe/internal/kernbench"
)

// Wrappers over the shared suite bodies (internal/kernbench), so
// `go test -bench . ./internal/simclock` measures exactly what
// cmd/coalbench records in BENCH_5.json.

func BenchmarkDispatch(b *testing.B) { kernbench.ClockDispatch(b) }
func BenchmarkEvery(b *testing.B)    { kernbench.ClockEvery(b) }
func BenchmarkCancel(b *testing.B)   { kernbench.ClockCancel(b) }
