package simclock

import (
	"testing"
	"time"
)

// FuzzClock interprets the fuzz input as a small op script against the
// clock — schedule, cancel, start a periodic, advance time — and then
// checks the kernel invariants that every simulator run depends on:
//
//   - dispatch times are monotone non-decreasing
//   - an event canceled while pending never fires again
//   - every live one-shot fires exactly once
//   - a periodic fires at exact period multiples (no drift, no skips)
//   - Pending() counts exactly the events still queued
//
// Script encoding (stream of ops, each op = tag byte + 1 operand byte):
//
//	tag%4 == 0: schedule one-shot after (operand) ms
//	tag%4 == 1: cancel event number (operand mod created)
//	tag%4 == 2: start a periodic with period (operand%50+1) ms that
//	            cancels itself on its 3rd firing
//	tag%4 == 3: RunUntil(now + operand ms)
func FuzzClock(f *testing.F) {
	f.Add([]byte{0, 10, 0, 5, 3, 20})                  // two one-shots, drain
	f.Add([]byte{0, 10, 1, 0, 3, 20})                  // schedule then cancel
	f.Add([]byte{2, 7, 3, 100})                        // periodic to self-cancel
	f.Add([]byte{2, 3, 0, 9, 1, 0, 3, 50, 0, 0, 3, 0}) // mixed
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 1, 3, 4, 1, 2})  // same-instant pileup
	f.Add([]byte{3, 255, 0, 255, 1, 0, 2, 49, 3, 255}) // big time jumps
	f.Fuzz(func(t *testing.T, script []byte) {
		c := New(1)
		type rec struct {
			fired      int
			firedAtCxl int // fire count when Cancel was called; -1 = never canceled
			schedAt    time.Duration
			delay      time.Duration
			period     time.Duration // 0 for one-shots
		}
		var recs []*rec
		var events []*Event
		lastDispatch := time.Duration(0)

		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]%4, script[i+1]
			switch op {
			case 0:
				m := &rec{firedAtCxl: -1, schedAt: c.Now(), delay: time.Duration(arg) * time.Millisecond}
				e := c.Schedule(m.delay, func() {
					m.fired++
					if c.Now() < lastDispatch {
						t.Fatalf("dispatch time went backwards: %v after %v", c.Now(), lastDispatch)
					}
					lastDispatch = c.Now()
					if want := m.schedAt + m.delay; c.Now() != want {
						t.Fatalf("one-shot fired at %v, scheduled for %v", c.Now(), want)
					}
				})
				recs = append(recs, m)
				events = append(events, e)
			case 1:
				if len(events) == 0 {
					continue
				}
				j := int(arg) % len(events)
				recs[j].firedAtCxl = recs[j].fired
				events[j].Cancel()
			case 2:
				m := &rec{firedAtCxl: -1, schedAt: c.Now(), period: time.Duration(arg%50+1) * time.Millisecond}
				var e *Event
				e = c.Every(m.period, func() {
					m.fired++
					if c.Now() < lastDispatch {
						t.Fatalf("dispatch time went backwards: %v after %v", c.Now(), lastDispatch)
					}
					lastDispatch = c.Now()
					if want := m.schedAt + time.Duration(m.fired)*m.period; c.Now() != want {
						t.Fatalf("periodic fire %d at %v, want %v (period %v)", m.fired, c.Now(), want, m.period)
					}
					if m.fired == 3 {
						m.firedAtCxl = m.fired
						e.Cancel()
					}
				})
				recs = append(recs, m)
				events = append(events, e)
			case 3:
				c.RunUntil(c.Now() + time.Duration(arg)*time.Millisecond)
			}
		}

		// Drain: every remaining one-shot is within 255ms of when it was
		// scheduled, and every live periodic will hit its self-cancel
		// within 3 periods (≤150ms), so one bounded RunUntil ends it all.
		c.RunUntil(c.Now() + 500*time.Millisecond)

		for j, m := range recs {
			if m.firedAtCxl >= 0 {
				if m.fired != m.firedAtCxl {
					t.Fatalf("event %d fired %d times after being canceled at %d", j, m.fired, m.firedAtCxl)
				}
				continue
			}
			if m.period > 0 {
				// Every periodic either got canceled externally or hit its
				// 3rd fire during the drain (≥10 periods long) and canceled
				// itself — reaching here means a firing was lost.
				t.Fatalf("periodic %d survived the drain with only %d fires", j, m.fired)
			}
			if m.fired != 1 {
				t.Fatalf("live one-shot %d fired %d times, want exactly 1", j, m.fired)
			}
		}
		if c.Pending() != 0 {
			t.Fatalf("Pending() = %d after the drain, want 0", c.Pending())
		}
	})
}
