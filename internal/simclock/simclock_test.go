package simclock

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	c := New(1)
	var got []int
	c.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	c.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	c.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", c.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	c.Run()
	if !sort.IntsAreSorted(got) {
		t.Errorf("same-instant events fired out of scheduling order: %v", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	c := New(1)
	fired := false
	c.Schedule(-time.Second, func() { fired = true })
	c.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if c.Now() != 0 {
		t.Errorf("Now = %v, want 0", c.Now())
	}
}

func TestCancel(t *testing.T) {
	c := New(1)
	fired := false
	e := c.Schedule(time.Millisecond, func() { fired = true })
	e.Cancel()
	c.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestEvery(t *testing.T) {
	c := New(1)
	n := 0
	var e *Event
	e = c.Every(10*time.Millisecond, func() {
		n++
		if n == 5 {
			e.Cancel()
		}
	})
	c.RunUntil(time.Second)
	if n != 5 {
		t.Errorf("repeating event fired %d times, want 5", n)
	}
}

func TestEveryCadence(t *testing.T) {
	c := New(1)
	var times []time.Duration
	c.Every(250*time.Millisecond, func() { times = append(times, c.Now()) })
	c.RunUntil(time.Second)
	want := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, 750 * time.Millisecond, time.Second}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

func TestRunUntilAdvancesToDeadline(t *testing.T) {
	c := New(1)
	c.Schedule(10*time.Second, func() {})
	c.RunUntil(3 * time.Second)
	if c.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", c.Now())
	}
	if c.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", c.Pending())
	}
	// The remaining event still fires later.
	fired := false
	c.Schedule(time.Second, func() { fired = true })
	c.RunUntil(20 * time.Second)
	if !fired {
		t.Error("event scheduled after partial run did not fire")
	}
}

func TestStop(t *testing.T) {
	c := New(1)
	n := 0
	c.Schedule(time.Millisecond, func() { n++; c.Stop() })
	c.Schedule(2*time.Millisecond, func() { n++ })
	c.Run()
	if n != 1 {
		t.Errorf("processed %d events after Stop, want 1", n)
	}
}

func TestAtClampsPast(t *testing.T) {
	c := New(1)
	c.Schedule(time.Second, func() {
		c.At(0, func() {
			if c.Now() != time.Second {
				t.Errorf("past event ran at %v, want clamped to 1s", c.Now())
			}
		})
	})
	c.Run()
}

func TestSchedulingInsideCallback(t *testing.T) {
	c := New(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			c.Schedule(time.Millisecond, rec)
		}
	}
	c.Schedule(time.Millisecond, rec)
	c.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if c.Now() != 100*time.Millisecond {
		t.Errorf("Now = %v, want 100ms", c.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		c := New(42)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration(c.Rand().Intn(1000)) * time.Millisecond
			c.Schedule(d, func() { out = append(out, c.Now()) })
		}
		c.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths across identical seeded runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in non-decreasing time order regardless of
// the order they are scheduled.
func TestMonotoneDispatchProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		c := New(7)
		var fired []time.Duration
		for _, d := range delays {
			c.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, c.Now())
			})
		}
		c.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestRunPanicsWithRepeatingEvent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run with repeating event did not panic")
		}
	}()
	c := New(1)
	c.Every(time.Second, func() {})
	c.Run()
}

// TestCancelRemovesImmediately pins the Cancel contract the kernel
// optimisation introduced: a canceled event leaves the queue at Cancel
// time, it does not age through the heap as a tombstone. Before the
// change, a canceled long-horizon Every (the player's per-segment
// timeout pattern) sat in the queue until its far-future fire time,
// growing Pending() without bound under schedule/cancel churn.
func TestCancelRemovesImmediately(t *testing.T) {
	c := New(1)
	n := 0
	ev := c.Every(time.Millisecond, func() { n++ })
	c.RunUntil(10 * time.Millisecond)
	if n != 10 {
		t.Fatalf("fired %d times, want 10", n)
	}
	ev.Cancel()
	if p := c.Pending(); p != 0 {
		t.Fatalf("canceled Every still queued: Pending() = %d", p)
	}

	// Schedule/cancel churn of far-future one-shots: the queue must not
	// accumulate tombstones.
	fn := func() { t.Error("canceled event fired") }
	for i := 0; i < 10000; i++ {
		c.Schedule(time.Hour, fn).Cancel()
	}
	if p := c.Pending(); p != 0 {
		t.Fatalf("after churn: Pending() = %d, want 0", p)
	}

	c.RunUntil(time.Hour)
	if n != 10 {
		t.Fatalf("canceled Every fired after Cancel: n = %d", n)
	}
}

// TestCancelMidQueuePreservesOrder cancels interior events and checks
// the survivors still dispatch in exact (time, seq) order — the heap
// removal must restore the invariant wherever the hole opens.
func TestCancelMidQueuePreservesOrder(t *testing.T) {
	c := New(1)
	var fired []int
	events := make([]*Event, 100)
	for i := 0; i < 100; i++ {
		i := i
		// 37 is coprime with 100: times scatter, exercising removal at
		// varied heap positions.
		at := time.Duration((i*37)%100) * time.Millisecond
		events[i] = c.At(at, func() { fired = append(fired, i) })
	}
	for i := 0; i < 100; i += 3 {
		events[i].Cancel()
	}
	c.Run()
	want := 0
	for _, i := range fired {
		if i%3 == 0 {
			t.Fatalf("canceled event %d fired", i)
		}
		at := (i * 37) % 100
		if at < want {
			t.Fatalf("out-of-order dispatch: event %d at %dms after %dms", i, at, want)
		}
		want = at
	}
	if len(fired) != 100-34 {
		t.Fatalf("fired %d events, want %d", len(fired), 100-34)
	}
}

// TestCancelInsideOwnPeriodicHandler re-checks the re-arm-then-run
// contract under in-place re-arming: the handler sees its event queued
// (it was re-armed first) and Cancel must remove that re-armed entry.
func TestCancelInsideOwnPeriodicHandler(t *testing.T) {
	c := New(1)
	n := 0
	var ev *Event
	ev = c.Every(time.Millisecond, func() {
		n++
		if n == 3 {
			ev.Cancel()
		}
	})
	c.RunUntil(time.Second)
	if n != 3 {
		t.Fatalf("fired %d times, want 3", n)
	}
	if p := c.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after self-cancel, want 0", p)
	}
}
