package simclock

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// Property-based tests: testing/quick drives the clock with randomly
// generated schedules and checks the kernel's ordering invariants
// against a straightforward reference model.

// TestPropertyDispatchOrder schedules a random batch of one-shot events
// (with a random subset canceled up front) and checks that the
// survivors fire exactly in (time, scheduling order) — the contract
// every other subsystem builds its determinism on.
func TestPropertyDispatchOrder(t *testing.T) {
	prop := func(ops []uint16) bool {
		c := New(1)
		type ev struct {
			id int
			at time.Duration
		}
		var want []ev
		var got []int
		for i, op := range ops {
			id := i
			delay := time.Duration(op>>1) * time.Millisecond
			cancel := op&1 == 1
			e := c.Schedule(delay, func() { got = append(got, id) })
			if cancel {
				e.Cancel()
			} else {
				want = append(want, ev{id: id, at: delay})
			}
		}
		// Reference order: by time, ties broken by scheduling order —
		// which is exactly the order of `want`, stably sorted by time.
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		c.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEveryNoDrift checks that a periodic event fires at exact
// period multiples for any period and horizon: in-place re-arming must
// not accumulate error or skip ticks.
func TestPropertyEveryNoDrift(t *testing.T) {
	prop := func(periodMS uint8, horizonMS uint16) bool {
		period := time.Duration(periodMS%100+1) * time.Millisecond
		horizon := time.Duration(horizonMS) * time.Millisecond
		c := New(1)
		fires := 0
		ok := true
		c.Every(period, func() {
			fires++
			if c.Now() != time.Duration(fires)*period {
				ok = false
			}
		})
		c.RunUntil(horizon)
		return ok && fires == int(horizon/period) && c.Now() == horizon
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScheduleInsideHandler has every root event schedule a
// child from inside its own handler and checks that dispatch times stay
// monotone and nothing is lost — mid-dispatch heap growth must be safe.
func TestPropertyScheduleInsideHandler(t *testing.T) {
	prop := func(pairs []uint16) bool {
		c := New(1)
		fired := 0
		last := time.Duration(-1)
		ok := true
		note := func() {
			fired++
			if c.Now() < last {
				ok = false
			}
			last = c.Now()
		}
		for _, p := range pairs {
			rootDelay := time.Duration(p&0xff) * time.Millisecond
			childDelay := time.Duration(p>>8) * time.Millisecond
			c.Schedule(rootDelay, func() {
				note()
				c.Schedule(childDelay, note)
			})
		}
		c.Run()
		return ok && fired == 2*len(pairs) && c.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCancelIsExact cancels a random subset mid-flight — from a
// scheduled sweep event rather than up front — and checks that exactly
// the events that were still pending at cancel time are suppressed.
func TestPropertyCancelIsExact(t *testing.T) {
	prop := func(ops []uint16, sweepMS uint8) bool {
		c := New(1)
		sweep := time.Duration(sweepMS) * time.Millisecond
		type tracked struct {
			e      *Event
			fired  bool
			cancel bool
		}
		events := make([]*tracked, len(ops))
		for i, op := range ops {
			tr := &tracked{cancel: op&1 == 1}
			tr.e = c.Schedule(time.Duration(op>>1)*time.Millisecond, func() { tr.fired = true })
			events[i] = tr
		}
		victims := 0
		c.Schedule(sweep, func() {
			for _, tr := range events {
				if tr.cancel && !tr.fired {
					tr.e.Cancel()
					victims++
				}
			}
		})
		c.Run()
		for _, tr := range events {
			switch {
			case tr.fired && tr.cancel && tr.e.When() >= sweep:
				// An event at exactly the sweep instant may fire first
				// (the sweep was scheduled later, so it sorts after).
				if tr.e.When() > sweep {
					return false // canceled before its time, yet fired
				}
			case !tr.fired && (!tr.cancel || tr.e.When() < sweep):
				return false // live event (or one canceled too late) lost
			}
		}
		return c.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
