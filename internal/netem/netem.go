// Package netem models the network path between the video client and
// the server. The paper's controlled experiments run over a dedicated
// WiFi LAN provisioned so "the network never became a bottleneck"
// (§4.1); the LAN profile reproduces that, while constrained profiles
// let the ABR experiments exercise network adaptation too.
//
// Two mechanisms are provided: a virtual-time Link for the simulator,
// and a wall-clock Shaper for the real net/http examples.
package netem

import (
	"io"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/units"
)

// Link is a simulated bottleneck link: serial transmission at a fixed
// rate plus a propagation delay.
type Link struct {
	clock     *simclock.Clock
	rate      units.BitsPerSecond
	delay     time.Duration
	busyUntil time.Duration

	// TotalBytes counts transferred payload.
	TotalBytes units.Bytes
}

// LAN returns the paper's non-bottleneck profile: 300 Mbps, 2 ms.
func LAN(clock *simclock.Clock) *Link { return NewLink(clock, 300*units.Mbps, 2*time.Millisecond) }

// NewLink builds a link with the given rate and one-way delay.
func NewLink(clock *simclock.Clock, rate units.BitsPerSecond, delay time.Duration) *Link {
	if rate <= 0 {
		panic("netem: non-positive rate")
	}
	return &Link{clock: clock, rate: rate, delay: delay}
}

// Rate returns the link rate.
func (l *Link) Rate() units.BitsPerSecond { return l.rate }

// SetRate changes the link rate (e.g. mid-experiment bandwidth drop).
func (l *Link) SetRate(rate units.BitsPerSecond) {
	if rate <= 0 {
		panic("netem: non-positive rate")
	}
	l.rate = rate
}

// Transfer schedules the delivery of b bytes and invokes onDone when
// the last byte arrives. Transfers share the link serially (FIFO).
func (l *Link) Transfer(b units.Bytes, onDone func()) {
	if b < 0 {
		b = 0
	}
	now := l.clock.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	tx := time.Duration(float64(b) / l.rate.BytesPerSecond() * float64(time.Second))
	l.busyUntil = start + tx
	l.TotalBytes += b
	if onDone != nil {
		l.clock.At(l.busyUntil+l.delay, onDone)
	}
}

// TransferTime estimates the uncontended delivery time for b bytes.
func (l *Link) TransferTime(b units.Bytes) time.Duration {
	return time.Duration(float64(b)/l.rate.BytesPerSecond()*float64(time.Second)) + l.delay
}

// Shaper rate-limits an io.Reader against an injected clock, for the
// real net/http examples (the loopback is far faster than any WiFi
// LAN). The clock is injected rather than defaulted so that no code
// under internal/ depends on wall time: callers in cmd/ and examples/
// pass time.Now and time.Sleep, tests pass a virtual pair.
type Shaper struct {
	r       io.Reader
	rate    units.BitsPerSecond
	started time.Time
	read    int64
	sleep   func(time.Duration)
	now     func() time.Time
}

// NewShaper wraps r so reads average the given rate, timed by now and
// paced by sleep (typically time.Now and time.Sleep, supplied by the
// cmd/ or examples/ caller). Panics if either is nil.
func NewShaper(r io.Reader, rate units.BitsPerSecond, now func() time.Time, sleep func(time.Duration)) *Shaper {
	if now == nil || sleep == nil {
		panic("netem: NewShaper needs a clock; pass time.Now and time.Sleep from the binary's main package")
	}
	return &Shaper{r: r, rate: rate, sleep: sleep, now: now}
}

// Read implements io.Reader with pacing.
func (s *Shaper) Read(p []byte) (int, error) {
	if s.started.IsZero() {
		s.started = s.now()
	}
	n, err := s.r.Read(p)
	s.read += int64(n)
	// Sleep long enough that total bytes / elapsed == rate.
	due := time.Duration(float64(s.read) / s.rate.BytesPerSecond() * float64(time.Second))
	elapsed := s.now().Sub(s.started)
	if due > elapsed {
		s.sleep(due - elapsed)
	}
	return n, err
}
