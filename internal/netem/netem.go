// Package netem models the network path between the video client and
// the server. The paper's controlled experiments run over a dedicated
// WiFi LAN provisioned so "the network never became a bottleneck"
// (§4.1); the LAN profile reproduces that, while constrained profiles
// let the ABR experiments exercise network adaptation too.
//
// Two mechanisms are provided: a virtual-time Link for the simulator,
// and a wall-clock Shaper for the real net/http examples.
package netem

import (
	"io"
	"math/rand"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/units"
)

// Link is a simulated bottleneck link: serial transmission at a fixed
// rate plus a propagation delay.
type Link struct {
	clock     *simclock.Clock
	rate      units.BitsPerSecond
	delay     time.Duration
	busyUntil time.Duration
	downUntil time.Duration
	loss      float64

	// TotalBytes counts transferred payload.
	TotalBytes units.Bytes
}

// LAN returns the paper's non-bottleneck profile: 300 Mbps, 2 ms.
func LAN(clock *simclock.Clock) *Link { return NewLink(clock, 300*units.Mbps, 2*time.Millisecond) }

// NewLink builds a link with the given rate and one-way delay.
func NewLink(clock *simclock.Clock, rate units.BitsPerSecond, delay time.Duration) *Link {
	if rate <= 0 {
		panic("netem: non-positive rate")
	}
	return &Link{clock: clock, rate: rate, delay: delay}
}

// Rate returns the link rate.
func (l *Link) Rate() units.BitsPerSecond { return l.rate }

// SetRate changes the link rate (e.g. mid-experiment bandwidth drop).
func (l *Link) SetRate(rate units.BitsPerSecond) {
	if rate <= 0 {
		panic("netem: non-positive rate")
	}
	l.rate = rate
}

// maxLoss caps the loss rate: beyond it the goodput model (rate scaled
// by 1-loss) degenerates, and real links that lossy are outages.
const maxLoss = 0.95

// lossRTO is the stall a retransmission round costs a transfer: one
// timeout-and-resend at typical WiFi RTO scale.
const lossRTO = 200 * time.Millisecond

// SetLoss sets the packet-loss rate in [0, maxLoss]. Loss scales the
// effective rate by 1-p (retransmitted bytes re-occupy the link) and
// adds a per-transfer retransmission stall drawn from the clock's RNG.
// Zero restores the lossless path.
func (l *Link) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > maxLoss {
		p = maxLoss
	}
	l.loss = p
}

// Loss returns the current loss rate.
func (l *Link) Loss() float64 { return l.loss }

// OutageFor takes the link down for d from now: transfers submitted
// while down queue behind the outage. Overlapping outages extend to the
// latest end. In-flight deliveries already scheduled are not recalled —
// the model applies to new submissions.
func (l *Link) OutageFor(d time.Duration) {
	if d <= 0 {
		return
	}
	if until := l.clock.Now() + d; until > l.downUntil {
		l.downUntil = until
	}
}

// Down reports whether the link is currently in an outage window.
func (l *Link) Down() bool { return l.clock.Now() < l.downUntil }

// Transfer schedules the delivery of b bytes and invokes onDone when
// the last byte arrives. Transfers share the link serially (FIFO);
// during an outage window transmission waits for the link to return.
func (l *Link) Transfer(b units.Bytes, onDone func()) {
	if b < 0 {
		b = 0
	}
	now := l.clock.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	if start < l.downUntil {
		start = l.downUntil
	}
	tx := time.Duration(float64(b) / l.rate.BytesPerSecond() * float64(time.Second))
	if l.loss > 0 {
		// Goodput shrinks by the retransmitted share, and the transfer
		// eats at least one retransmission stall. Only lossy links draw
		// from the RNG, so lossless runs keep their random streams.
		tx = time.Duration(float64(tx) / (1 - l.loss))
		tx += time.Duration(float64(lossRTO) * l.loss * (0.5 + l.clock.Rand().Float64()))
	}
	l.busyUntil = start + tx
	l.TotalBytes += b
	if onDone != nil {
		l.clock.At(l.busyUntil+l.delay, onDone)
	}
}

// TransferTime estimates the uncontended delivery time for b bytes.
func (l *Link) TransferTime(b units.Bytes) time.Duration {
	return time.Duration(float64(b)/l.rate.BytesPerSecond()*float64(time.Second)) + l.delay
}

// Shaper rate-limits an io.Reader against an injected clock, for the
// real net/http examples (the loopback is far faster than any WiFi
// LAN). The clock is injected rather than defaulted so that no code
// under internal/ depends on wall time: callers in cmd/ and examples/
// pass time.Now and time.Sleep, tests pass a virtual pair.
type Shaper struct {
	r       io.Reader
	rate    units.BitsPerSecond
	started time.Time
	read    int64
	sleep   func(time.Duration)
	now     func() time.Time

	loss    float64
	lossRTO time.Duration
	rng     *rand.Rand
	outages []shaperOutage
}

// shaperOutage is one scheduled dead window, relative to first read.
type shaperOutage struct {
	from, until time.Duration
}

// NewShaper wraps r so reads average the given rate, timed by now and
// paced by sleep (typically time.Now and time.Sleep, supplied by the
// cmd/ or examples/ caller). Panics if either is nil.
func NewShaper(r io.Reader, rate units.BitsPerSecond, now func() time.Time, sleep func(time.Duration)) *Shaper {
	if now == nil || sleep == nil {
		panic("netem: NewShaper needs a clock; pass time.Now and time.Sleep from the binary's main package")
	}
	return &Shaper{r: r, rate: rate, sleep: sleep, now: now}
}

// SetLoss configures a deterministic loss model: each read suffers a
// retransmission stall of rto with probability p, drawn from rng. The
// generator is injected (seeded by the caller) per the globalrand rule,
// so paired shapers can replay identical loss realizations. p <= 0
// disables loss; rng must be non-nil when p > 0.
func (s *Shaper) SetLoss(p float64, rto time.Duration, rng *rand.Rand) {
	if p > maxLoss {
		p = maxLoss
	}
	if p > 0 && rng == nil {
		panic("netem: Shaper.SetLoss needs a seeded *rand.Rand when p > 0")
	}
	if rto <= 0 {
		rto = lossRTO
	}
	s.loss, s.lossRTO, s.rng = p, rto, rng
}

// AddOutage schedules a dead window [from, from+dur), measured from the
// shaper's first read: a read landing inside the window sleeps until it
// ends. Windows may overlap; each is honored independently.
func (s *Shaper) AddOutage(from, dur time.Duration) {
	if dur <= 0 {
		return
	}
	if from < 0 {
		from = 0
	}
	s.outages = append(s.outages, shaperOutage{from: from, until: from + dur})
}

// Read implements io.Reader with pacing, loss stalls, and outage
// windows.
func (s *Shaper) Read(p []byte) (int, error) {
	if s.started.IsZero() {
		s.started = s.now()
	}
	n, err := s.r.Read(p)
	s.read += int64(n)
	// Sleep long enough that total bytes / elapsed == rate.
	due := time.Duration(float64(s.read) / s.rate.BytesPerSecond() * float64(time.Second))
	elapsed := s.now().Sub(s.started)
	if due > elapsed {
		s.sleep(due - elapsed)
	}
	if s.loss > 0 && s.rng.Float64() < s.loss {
		s.sleep(s.lossRTO)
	}
	// An outage blocks the read until the window closes. Re-check the
	// clock per window: the sleeps above may have crossed into one.
	for _, o := range s.outages {
		if at := s.now().Sub(s.started); at >= o.from && at < o.until {
			s.sleep(o.until - at)
		}
	}
	return n, err
}
