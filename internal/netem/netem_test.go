package netem

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/units"
)

func TestTransferTiming(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 8*units.Mbps, 10*time.Millisecond)
	var done time.Duration
	l.Transfer(units.Bytes(1e6), func() { done = clock.Now() }) // 1MB at 1MB/s
	clock.Run()
	want := time.Second + 10*time.Millisecond
	if done != want {
		t.Errorf("done at %v, want %v", done, want)
	}
}

func TestTransfersSerialize(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 8*units.Mbps, 0)
	var first, second time.Duration
	l.Transfer(units.Bytes(1e6), func() { first = clock.Now() })
	l.Transfer(units.Bytes(1e6), func() { second = clock.Now() })
	clock.Run()
	if second != 2*time.Second || first != time.Second {
		t.Errorf("first=%v second=%v, want 1s and 2s", first, second)
	}
	if l.TotalBytes != units.Bytes(2e6) {
		t.Errorf("TotalBytes = %d", l.TotalBytes)
	}
}

func TestTransferTime(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 80*units.Mbps, 5*time.Millisecond)
	got := l.TransferTime(units.Bytes(1e7)) // 10MB at 10MB/s = 1s
	want := time.Second + 5*time.Millisecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestSetRate(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, units.Mbps, 0)
	l.SetRate(2 * units.Mbps)
	if l.Rate() != 2*units.Mbps {
		t.Errorf("Rate = %v", l.Rate())
	}
}

func TestLANIsFast(t *testing.T) {
	clock := simclock.New(1)
	l := LAN(clock)
	// A 4-second 12 Mbps segment (6 MB) must download far faster than
	// real time — the paper's non-bottleneck condition.
	if tt := l.TransferTime(6 * units.Bytes(1e6)); tt > 500*time.Millisecond {
		t.Errorf("LAN segment transfer = %v, should be well under real time", tt)
	}
}

func TestNewLinkPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewLink(simclock.New(1), 0, 0)
}

func TestShaperPacesReads(t *testing.T) {
	data := make([]byte, 100_000)
	var slept time.Duration
	base := time.Unix(0, 0)
	s := NewShaper(bytes.NewReader(data), 8*units.Mbps, // 1 MB/s
		func() time.Time { return base.Add(slept) },
		func(d time.Duration) { slept += d })
	n, err := io.Copy(io.Discard, s)
	if err != nil || n != 100_000 {
		t.Fatalf("copied %d, err %v", n, err)
	}
	// 100 KB at 1 MB/s should ask for ~100ms of sleep.
	if slept < 80*time.Millisecond || slept > 150*time.Millisecond {
		t.Errorf("slept %v, want ~100ms", slept)
	}
}

func TestShaperEOF(t *testing.T) {
	s := NewShaper(bytes.NewReader(nil), units.Mbps,
		func() time.Time { return time.Unix(0, 0) },
		func(time.Duration) {})
	buf := make([]byte, 10)
	if _, err := s.Read(buf); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestLinkLossSlowsTransfers(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 8*units.Mbps, 0)
	l.SetLoss(0.5)
	if l.Loss() != 0.5 {
		t.Fatalf("Loss = %v", l.Loss())
	}
	var done time.Duration
	l.Transfer(units.Bytes(1e6), func() { done = clock.Now() }) // 1s lossless
	clock.Run()
	// Goodput halves (2s) plus at least half an RTO of retransmission
	// stall; jitter bounds the rest.
	if done < 2*time.Second+50*time.Millisecond || done > 2*time.Second+400*time.Millisecond {
		t.Errorf("lossy transfer done at %v, want ~2s + retransmission stall", done)
	}
	l.SetLoss(0)
	var clean time.Duration
	l.Transfer(units.Bytes(1e6), func() { clean = clock.Now() })
	clock.Run()
	if clean-done != time.Second {
		t.Errorf("after clearing loss, transfer took %v, want 1s", clean-done)
	}
}

func TestLinkLossClamped(t *testing.T) {
	l := NewLink(simclock.New(1), units.Mbps, 0)
	l.SetLoss(2)
	if l.Loss() != maxLoss {
		t.Errorf("Loss = %v, want clamped to %v", l.Loss(), maxLoss)
	}
	l.SetLoss(-1)
	if l.Loss() != 0 {
		t.Errorf("Loss = %v, want clamped to 0", l.Loss())
	}
}

func TestLinkOutageDefersTransfers(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 8*units.Mbps, 0)
	l.OutageFor(3 * time.Second)
	if !l.Down() {
		t.Fatal("link should be down")
	}
	var done time.Duration
	l.Transfer(units.Bytes(1e6), func() { done = clock.Now() })
	clock.Run()
	if done != 4*time.Second {
		t.Errorf("transfer during outage done at %v, want 4s (3s outage + 1s tx)", done)
	}
	if l.Down() {
		t.Error("link should be back up")
	}
}

func TestLinkOverlappingOutagesExtend(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 8*units.Mbps, 0)
	l.OutageFor(2 * time.Second)
	l.OutageFor(5 * time.Second) // extends
	l.OutageFor(time.Second)     // no-op: earlier end
	var done time.Duration
	l.Transfer(units.Bytes(1e6), func() { done = clock.Now() })
	clock.Run()
	if done != 6*time.Second {
		t.Errorf("done at %v, want 6s", done)
	}
}

func TestLinkLossDeterministic(t *testing.T) {
	run := func() time.Duration {
		clock := simclock.New(42)
		l := NewLink(clock, 8*units.Mbps, 0)
		l.SetLoss(0.3)
		var done time.Duration
		for i := 0; i < 5; i++ {
			l.Transfer(units.Bytes(1e5), func() { done = clock.Now() })
		}
		clock.Run()
		return done
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different outcomes: %v vs %v", a, b)
	}
}

func TestShaperLossStalls(t *testing.T) {
	data := make([]byte, 100_000)
	var slept time.Duration
	base := time.Unix(0, 0)
	mk := func(loss float64, seed int64) time.Duration {
		slept = 0
		s := NewShaper(bytes.NewReader(data), 80*units.Mbps,
			func() time.Time { return base.Add(slept) },
			func(d time.Duration) { slept += d })
		if loss > 0 {
			s.SetLoss(loss, 100*time.Millisecond, rand.New(rand.NewSource(seed)))
		}
		if _, err := io.Copy(io.Discard, s); err != nil {
			t.Fatal(err)
		}
		return slept
	}
	clean := mk(0, 0)
	lossy := mk(0.5, 1)
	if lossy <= clean {
		t.Errorf("lossy shaper slept %v, clean %v: loss should add stalls", lossy, clean)
	}
	// Identical seeds replay identical loss realizations.
	if a, b := mk(0.5, 7), mk(0.5, 7); a != b {
		t.Errorf("same seed, different stalls: %v vs %v", a, b)
	}
}

func TestShaperLossNeedsRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for loss without rng")
		}
	}()
	s := NewShaper(bytes.NewReader(nil), units.Mbps,
		func() time.Time { return time.Unix(0, 0) }, func(time.Duration) {})
	s.SetLoss(0.5, 0, nil)
}

func TestShaperOutageWindow(t *testing.T) {
	data := make([]byte, 200_000)
	var slept time.Duration
	base := time.Unix(0, 0)
	s := NewShaper(bytes.NewReader(data), 8*units.Mbps, // 1 MB/s
		func() time.Time { return base.Add(slept) },
		func(d time.Duration) { slept += d })
	// 200 KB at 1 MB/s paces to ~200ms; an outage [100ms, 600ms) must
	// hold a mid-transfer read until 600ms.
	s.AddOutage(100*time.Millisecond, 500*time.Millisecond)
	if _, err := io.Copy(io.Discard, s); err != nil {
		t.Fatal(err)
	}
	if slept < 600*time.Millisecond {
		t.Errorf("slept %v, want >= 600ms (outage end)", slept)
	}
	// Negative/zero windows are ignored.
	s.AddOutage(-1, 0)
}
