package netem

import (
	"bytes"
	"io"
	"testing"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/units"
)

func TestTransferTiming(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 8*units.Mbps, 10*time.Millisecond)
	var done time.Duration
	l.Transfer(units.Bytes(1e6), func() { done = clock.Now() }) // 1MB at 1MB/s
	clock.Run()
	want := time.Second + 10*time.Millisecond
	if done != want {
		t.Errorf("done at %v, want %v", done, want)
	}
}

func TestTransfersSerialize(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 8*units.Mbps, 0)
	var first, second time.Duration
	l.Transfer(units.Bytes(1e6), func() { first = clock.Now() })
	l.Transfer(units.Bytes(1e6), func() { second = clock.Now() })
	clock.Run()
	if second != 2*time.Second || first != time.Second {
		t.Errorf("first=%v second=%v, want 1s and 2s", first, second)
	}
	if l.TotalBytes != units.Bytes(2e6) {
		t.Errorf("TotalBytes = %d", l.TotalBytes)
	}
}

func TestTransferTime(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, 80*units.Mbps, 5*time.Millisecond)
	got := l.TransferTime(units.Bytes(1e7)) // 10MB at 10MB/s = 1s
	want := time.Second + 5*time.Millisecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestSetRate(t *testing.T) {
	clock := simclock.New(1)
	l := NewLink(clock, units.Mbps, 0)
	l.SetRate(2 * units.Mbps)
	if l.Rate() != 2*units.Mbps {
		t.Errorf("Rate = %v", l.Rate())
	}
}

func TestLANIsFast(t *testing.T) {
	clock := simclock.New(1)
	l := LAN(clock)
	// A 4-second 12 Mbps segment (6 MB) must download far faster than
	// real time — the paper's non-bottleneck condition.
	if tt := l.TransferTime(6 * units.Bytes(1e6)); tt > 500*time.Millisecond {
		t.Errorf("LAN segment transfer = %v, should be well under real time", tt)
	}
}

func TestNewLinkPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewLink(simclock.New(1), 0, 0)
}

func TestShaperPacesReads(t *testing.T) {
	data := make([]byte, 100_000)
	var slept time.Duration
	base := time.Unix(0, 0)
	s := NewShaper(bytes.NewReader(data), 8*units.Mbps, // 1 MB/s
		func() time.Time { return base.Add(slept) },
		func(d time.Duration) { slept += d })
	n, err := io.Copy(io.Discard, s)
	if err != nil || n != 100_000 {
		t.Fatalf("copied %d, err %v", n, err)
	}
	// 100 KB at 1 MB/s should ask for ~100ms of sleep.
	if slept < 80*time.Millisecond || slept > 150*time.Millisecond {
		t.Errorf("slept %v, want ~100ms", slept)
	}
}

func TestShaperEOF(t *testing.T) {
	s := NewShaper(bytes.NewReader(nil), units.Mbps,
		func() time.Time { return time.Unix(0, 0) },
		func(time.Duration) {})
	buf := make([]byte, 10)
	if _, err := s.Read(buf); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}
