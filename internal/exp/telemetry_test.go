package exp

import (
	"bytes"
	"reflect"
	"testing"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
)

func telemetryRun(seed int64) VideoRun {
	return VideoRun{
		Seed:       seed,
		Profile:    device.Nokia1,
		Video:      quickVideo(),
		Resolution: dash.R360p,
		FPS:        30,
		Pressure:   proc.Normal,
		Telemetry:  &telemetry.Config{},
	}
}

func TestRunCollectsTelemetry(t *testing.T) {
	res := Run(telemetryRun(1))
	dump := res.Telemetry
	if dump == nil {
		t.Fatal("Telemetry config set but no dump returned")
	}
	if res.Device != nil || res.Session != nil {
		t.Error("telemetry must not force device retention")
	}
	// One series per instrumented subsystem, as a wiring check.
	for _, name := range []string{
		"mem.free_pages", "mem.pgscan_pages", "mem.pressure",
		"kswapd.pages_reclaimed", "lmkd.polls",
		"blockio.queue_depth_us", "blockio.peak_backlog_us",
		"sched.runnable", "player.buffer_ms", "player.frames_rendered",
	} {
		s := dump.Find(name)
		if s == nil {
			t.Errorf("series %q missing from dump", name)
			continue
		}
		if len(s.Times) == 0 {
			t.Errorf("series %q has no samples", name)
		}
	}
	// The run lasts well past one 3s period plus the edge sample.
	if s := dump.Find("mem.free_pages"); s != nil && len(s.Times) < 3 {
		t.Errorf("mem.free_pages has only %d samples", len(s.Times))
	}
	// Series must be sorted by name for deterministic emission.
	for i := 1; i < len(dump.Series); i++ {
		if dump.Series[i].Name < dump.Series[i-1].Name {
			t.Fatalf("series out of order: %q after %q",
				dump.Series[i].Name, dump.Series[i-1].Name)
		}
	}
	if dump.Find("blockio.request_latency") != nil {
		t.Error("histogram leaked into the series list")
	}
	found := false
	for _, h := range dump.Histograms {
		if h.Name == "blockio.request_latency" {
			found = true
			if h.Count == 0 {
				t.Error("no block requests observed over a whole playback")
			}
		}
	}
	if !found {
		t.Error("blockio.request_latency histogram missing")
	}
}

// Telemetry sampling must be a pure observer: the same seed must
// produce identical playback metrics with the sampler on or off.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	on := telemetryRun(7)
	off := on
	off.Telemetry = nil
	won, woff := Run(on), Run(off)
	if !reflect.DeepEqual(won.Metrics, woff.Metrics) {
		t.Fatalf("metrics differ with telemetry on:\non:  %+v\noff: %+v",
			won.Metrics, woff.Metrics)
	}
}

// The executor contract extends to telemetry: dumps must be
// byte-identical between serial and 8-worker execution, delivered at
// the same batch indices. Run under -race this also holds the
// OnTelemetry serialization to account.
func TestTelemetryByteIdenticalAcrossWorkers(t *testing.T) {
	render := func(parallel int) map[int]string {
		out := make(map[int]string)
		o := Options{
			Parallel:  parallel,
			Telemetry: &telemetry.Config{},
			OnTelemetry: func(run int, dump *telemetry.Dump) {
				var buf bytes.Buffer
				if err := dump.WriteCSV(&buf); err != nil {
					t.Error(err)
				}
				out[run] = buf.String()
			},
		}
		RepeatParallel(o, telemetryRun(0), 4, 100)
		return out
	}
	serial := render(1)
	wide := render(8)
	if len(serial) != 4 || len(wide) != 4 {
		t.Fatalf("dump counts: serial %d, parallel %d, want 4", len(serial), len(wide))
	}
	for i := 0; i < 4; i++ {
		if serial[i] != wide[i] {
			t.Fatalf("run %d: telemetry CSV differs between serial and 8 workers", i)
		}
	}
}
