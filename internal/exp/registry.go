package exp

import (
	"fmt"
	"sort"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/faults"
	"coalqoe/internal/telemetry"
)

// Options control experiment execution.
type Options struct {
	// Seed makes runs reproducible.
	Seed int64
	// Runs is the repetition count; the paper uses 5. Quick mode
	// defaults to 2.
	Runs int
	// Quick trades fidelity for speed: fewer runs, shorter videos,
	// smaller grids. Used by tests and the default bench invocations.
	Quick bool
	// Parallel is the executor worker count for independent runs.
	// 0 means GOMAXPROCS; 1 forces serial execution. Output is
	// byte-identical at any setting (see exec.go).
	Parallel int
	// Progress, when set, receives executor events as runs start and
	// complete. Callbacks may fire from worker goroutines, serialized by
	// the executor; keep them fast.
	Progress func(ProgressEvent)
	// Telemetry, when non-nil, enables the metrics sampler on every run
	// the executor launches (see VideoRun.Telemetry). The dumps are
	// delivered through OnTelemetry.
	Telemetry *telemetry.Config
	// OnTelemetry receives each run's telemetry dump together with its
	// batch index (input order, so index k is always the same run
	// regardless of worker count). Like Progress, callbacks may fire
	// from worker goroutines but are serialized by the executor. The
	// callback owns where the data goes — file I/O stays in cmd/.
	OnTelemetry func(run int, dump *telemetry.Dump)
	// Faults, when non-nil, injects the named fault plan into every run
	// the executor launches that does not already carry its own (see
	// VideoRun.Faults). The concrete windows derive from each run's seed,
	// so parallel output stays byte-identical to serial.
	Faults *faults.Spec
	// Deadline, when positive, caps every launched run's simulated time
	// (see VideoRun.Deadline): a run still going at the deadline is
	// marked Failed instead of wedging the grid.
	Deadline time.Duration
	// Digest enables the event-order digest on every run the executor
	// launches (see VideoRun.Digest). The determinism test battery uses
	// it to assert that serial and parallel executions dispatch exactly
	// the same kernel events.
	Digest bool
}

func (o *Options) applyDefaults() {
	if o.Runs <= 0 {
		if o.Quick {
			o.Runs = 2
		} else {
			o.Runs = 5
		}
	}
}

// video returns the experiment content: the paper's 3-minute clips, or
// a 1-minute cut in quick mode.
func (o Options) video(genre dash.Genre) dash.Video {
	v := dash.TestVideos[0]
	for _, tv := range dash.TestVideos {
		if tv.Genre == genre {
			v = tv
			break
		}
	}
	if o.Quick {
		v.Duration = 60 * time.Second
	}
	return v
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) Report
}

var registry []Experiment

func register(id, title string, run func(Options) Report) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (try `coalctl list`)", id)
}
