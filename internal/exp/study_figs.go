package exp

import (
	"fmt"
	"sort"
	"sync"

	"coalqoe/internal/plot"
	"coalqoe/internal/proc"
	"coalqoe/internal/study"
)

// fleetCache shares one fleet simulation across the §3 experiments,
// since Figures 1–6 and the Table 1 study rows all derive from the
// same SignalCapturer dataset. The figures run on the streaming
// aggregate (the same path the million-user engine uses); at the
// paper's n=80 every sketch is in its exact regime, so the rendered
// figures match the retained-log path bit for bit.
var fleetCache struct {
	sync.Mutex
	aggs map[string]*study.FleetAggregate
}

func fleetFor(o Options) *study.FleetAggregate {
	fleetCache.Lock()
	defer fleetCache.Unlock()
	if fleetCache.aggs == nil {
		fleetCache.aggs = make(map[string]*study.FleetAggregate)
	}
	key := fmt.Sprintf("%d/%v", o.Seed, o.Quick)
	if f, ok := fleetCache.aggs[key]; ok {
		return f
	}
	n := int64(80)
	if o.Quick {
		n = 24
	}
	agg, _, err := study.RunFleetStream(study.FleetConfig{
		Users: n, Seed: o.Seed + 1000, Workers: o.Workers(),
	})
	if err != nil {
		// No checkpointing and a non-empty roster: the engine cannot
		// fail here except through a programming error.
		panic(err)
	}
	fleetCache.aggs[key] = agg
	return agg
}

func init() {
	register("fig1", "usage-activity heatmap (user survey)", func(o Options) Report {
		o.applyDefaults()
		f := fleetFor(o)
		r := Report{ID: "fig1", Title: "How frequently users engage in activities (fraction per 1-5 rating)"}
		heat := f.Fig1Heatmap()
		r.Addf("%-18s %6s %6s %6s %6s %6s", "activity", "1", "2", "3", "4", "5")
		for _, a := range study.Activities {
			row := heat[a]
			r.Addf("%-18s %5.0f%% %5.0f%% %5.0f%% %5.0f%% %5.0f%%", a,
				100*row[0], 100*row[1], 100*row[2], 100*row[3], 100*row[4])
		}
		return r
	})

	register("fig2", "CDF of median RAM utilization across devices", func(o Options) Report {
		o.applyDefaults()
		f := fleetFor(o)
		r := Report{ID: "fig2", Title: "CDF of median RAM utilization"}
		for _, u := range []float64{0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9} {
			r.Addf("P[util <= %.0f%%] = %.0f%%", 100*u, 100*f.UtilCDFAt(u))
		}
		r.Addf("devices with median utilization >= 60%%: %.0f%% (paper: 80%%)", 100*(1-f.UtilCDFAt(0.5999)))
		r.Addf("devices with median utilization >  75%%: %.0f%% (paper: 20%%)", 100*(1-f.UtilCDFAt(0.75)))
		r.Addf("")
		for _, u := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
			r.Lines = append(r.Lines, plot.CDFRow(fmt.Sprintf("%.0f%%", 100*u), f.UtilCDFAt(u), 30))
		}
		return r
	})

	register("fig3", "memory pressure signal frequency vs device RAM", func(o Options) Report {
		o.applyDefaults()
		f := fleetFor(o)
		r := Report{ID: "fig3", Title: "Signals per hour by level and RAM"}
		pts, _ := f.Fig3Scatter()
		r.Addf("%-8s %6s %-9s %10s", "user", "RAM", "level", "signals/h")
		for _, p := range pts {
			if p.PerHour > 0 {
				r.Addf("%-8s %5.0fG %-9s %10.1f", p.User, p.RAMGiB, p.Level, p.PerHour)
			}
		}
		// Headline fractions.
		any, many := 0, 0
		byUser := map[string]float64{}
		crit := map[string]float64{}
		for _, p := range pts {
			byUser[p.User] += p.PerHour
			if p.Level == proc.Critical {
				crit[p.User] += p.PerHour
			}
		}
		//coalvet:allow maporder order-insensitive counting of users over thresholds
		for u := range byUser {
			if byUser[u] >= 1 {
				any++
			}
			if crit[u] > 10 {
				many++
			}
		}
		n := len(byUser)
		r.Addf("devices with >=1 signal/hour:          %3.0f%% (paper: 63%%)", pct(any, n))
		r.Addf("devices with >10 Critical signals/hour: %3.0f%% (paper: 19%%)", pct(many, n))
		return r
	})

	register("fig4", "time spent in pressure states vs device RAM", func(o Options) Report {
		o.applyDefaults()
		f := fleetFor(o)
		r := Report{ID: "fig4", Title: "Fraction of time per pressure state"}
		pts, _ := f.Fig4TimeShares()
		moderate2, critical4 := map[string]bool{}, map[string]bool{}
		users := map[string]bool{}
		for _, p := range pts {
			users[p.User] = true
			if p.Level == proc.Moderate && p.Share >= 0.02 {
				moderate2[p.User] = true
			}
			if p.Level == proc.Critical && p.Share > 0.04 {
				critical4[p.User] = true
			}
			if p.Share >= 0.005 {
				r.Addf("%-8s %4.0fG %-9s %5.1f%% of time", p.User, p.RAMGiB, p.Level, 100*p.Share)
			}
		}
		r.Addf("devices >=2%% time in Moderate: %3.0f%% (paper: 27%%)", pct(len(moderate2), len(users)))
		r.Addf("devices > 4%% time in Critical: %3.0f%% (paper: 10%%)", pct(len(critical4), len(users)))
		return r
	})

	register("fig5", "available memory by state, top-5 pressured devices", func(o Options) Report {
		o.applyDefaults()
		f := fleetFor(o)
		r := Report{ID: "fig5", Title: "Available-memory distribution per pressure state (MiB)"}
		for _, d := range f.Fig5TopDevices(5) {
			r.Addf("%s (%.0f GiB RAM, %.0f%% time under pressure):", d.User, d.RAMGiB, 100*d.HighShare)
			lvls := make([]proc.Level, 0, len(d.ByLevel))
			for l := range d.ByLevel {
				lvls = append(lvls, l)
			}
			sort.Slice(lvls, func(i, j int) bool { return lvls[i] < lvls[j] })
			for _, l := range lvls {
				bp := d.ByLevel[l]
				if bp.N > 0 {
					r.Addf("  %-9s %s", l, bp)
				}
			}
		}
		return r
	})

	register("fig6", "pressure-state transitions and dwell times", func(o Options) Report {
		o.applyDefaults()
		f := fleetFor(o)
		r := Report{ID: "fig6", Title: "Next-state shares and dwell times (most-pressured devices)"}
		// The aggregate filters at MinHighShareFig6 fold-time and falls
		// back to the unfiltered transition set when no device qualified
		// (small quick-mode fleets).
		st := f.Fig6Transitions()
		order := []proc.Level{proc.Normal, proc.Moderate, proc.Low, proc.Critical}
		for _, from := range order {
			tos, ok := st.NextShare[from]
			if !ok {
				continue
			}
			line := fmt.Sprintf("after %-9s ->", from)
			for _, to := range order {
				if share, ok := tos[to]; ok {
					line += fmt.Sprintf("  %s %.1f%%", to, share)
				}
			}
			r.Lines = append(r.Lines, line)
			if bp, ok := st.Dwell[from]; ok && bp.N > 0 {
				r.Addf("  dwell in %s: %s seconds", from, bp)
			}
		}
		return r
	})
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
