package exp

import (
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/faults"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
)

// Metamorphic determinism battery.
//
// Three representative experiments (fig8: time-to-play under pressure,
// fig13: kswapd scheduler states, tab5: preemption triples — together
// they exercise player, mem/kswapd/lmkd, and sched/trace) are replayed
// under transformations that must not change the report:
//
//	(a) the same seed twice            → identical bytes
//	(b) serial vs 8 executor workers   → identical bytes
//	(c) telemetry off vs on            → identical bytes (sampling is
//	    read-only; it adds clock events but must not perturb playback)
//	(d) a fault plan attached, twice   → identical bytes
//
// The same transformations are applied at the kernel level through
// RunGrid digests, where (a), (b) and (d) must match event-for-event.
// Telemetry is excluded there by design: the sampler schedules its own
// periodic events, so its digest legitimately differs while its report
// must not.

var metamorphicExperiments = []string{"fig8", "fig13", "tab5"}

func reportBytes(t *testing.T, id string, o Options) string {
	t.Helper()
	e, err := Find(id)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.Run(o)
	s := rep.String()
	if len(s) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	return s
}

func assertSameReport(t *testing.T, id, cond string, a, b string) {
	t.Helper()
	if a != b {
		t.Errorf("%s: report bytes differ across %s:\n--- first ---\n%s\n--- second ---\n%s", id, cond, a, b)
	}
}

func TestMetamorphicSameSeedTwice(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic battery skipped in -short mode")
	}
	for _, id := range metamorphicExperiments {
		o := Options{Quick: true, Seed: 21}
		assertSameReport(t, id, "two runs with the same seed",
			reportBytes(t, id, o), reportBytes(t, id, o))
	}
}

func TestMetamorphicSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic battery skipped in -short mode")
	}
	for _, id := range metamorphicExperiments {
		assertSameReport(t, id, "serial vs 8 workers",
			reportBytes(t, id, Options{Quick: true, Seed: 21, Parallel: 1}),
			reportBytes(t, id, Options{Quick: true, Seed: 21, Parallel: 8}))
	}
}

func TestMetamorphicTelemetryOnVsOff(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic battery skipped in -short mode")
	}
	for _, id := range metamorphicExperiments {
		assertSameReport(t, id, "telemetry off vs on",
			reportBytes(t, id, Options{Quick: true, Seed: 21}),
			reportBytes(t, id, Options{Quick: true, Seed: 21, Telemetry: &telemetry.Config{}}))
	}
}

func TestMetamorphicFaultsTwiceSameSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic battery skipped in -short mode")
	}
	spec, err := faults.Lookup("memstorm")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range metamorphicExperiments {
		o := Options{Quick: true, Seed: 21, Faults: &spec}
		assertSameReport(t, id, "the same fault plan attached twice",
			reportBytes(t, id, o), reportBytes(t, id, o))
	}
}

// TestMetamorphicDigests applies the same transformations at the
// kernel-event level: per-run digests over a small grid must be
// identical for same-seed, serial-vs-parallel and faults-twice.
func TestMetamorphicDigests(t *testing.T) {
	cell := VideoRun{
		Profile: device.Nokia1, Resolution: dash.R720p, FPS: 30,
		Pressure: proc.Moderate,
	}
	cell.Video = dash.TestVideos[0]
	cell.Video.Duration = 45 * time.Second

	digests := func(o Options) []uint64 {
		o.Digest = true
		var out []uint64
		for _, rr := range RunGrid(o, []VideoRun{cell}) {
			for _, r := range rr {
				if r.EventDigest == 0 {
					t.Fatal("zero digest")
				}
				out = append(out, r.EventDigest)
			}
		}
		return out
	}
	assertDigestsEqual := func(cond string, a, b []uint64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: run counts differ: %d vs %d", cond, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: run %d digests differ: %016x vs %016x", cond, i, a[i], b[i])
			}
		}
	}

	base := Options{Quick: true, Seed: 33, Runs: 2}
	assertDigestsEqual("same seed twice", digests(base), digests(base))

	serial, parallel := base, base
	serial.Parallel, parallel.Parallel = 1, 8
	assertDigestsEqual("serial vs 8 workers", digests(serial), digests(parallel))

	spec, err := faults.Lookup("memstorm")
	if err != nil {
		t.Fatal(err)
	}
	withFaults := base
	withFaults.Faults = &spec
	assertDigestsEqual("fault plan attached twice", digests(withFaults), digests(withFaults))
}
