package exp

import (
	"sort"
	"time"

	"coalqoe/internal/abr"
	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/ladderopt"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/qoe"
)

func init() {
	register("ladder", "provider bitrate-ladder optimization (§7 extension)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "ladder", Title: "Population-optimal encoding ladders (§7: offer wider encodings)"}
		pop := ladderopt.DefaultPopulation()

		wide := ladderopt.Optimize(pop, dash.Ladder(24, 30, 48, 60), 6, nil)
		narrow := ladderopt.Optimize(pop, dash.Ladder(60), 6, nil)
		classic := ladderopt.Optimize(pop, dash.Ladder(30, 60), 6, nil)
		r.Addf("wide ladder (24/30/48/60 fps): %s", wide)
		r.Addf("classic ladder (30/60 fps):    %s", classic)
		r.Addf("60fps-only ladder:             %s", narrow)
		classes := make([]string, 0, len(wide.PerClass))
		for name := range wide.PerClass {
			classes = append(classes, name)
		}
		sort.Strings(classes)
		for _, name := range classes {
			r.Addf("  wide ladder, %-12s expected MOS %.2f", name, wide.PerClass[name])
		}

		// Validate the headline with full simulations: an entry device
		// at Moderate pressure running memory-aware ABR over each
		// ladder. Both ladders' repeats execute on the same worker pool.
		ladderCell := func(fps []int) VideoRun {
			return VideoRun{
				Profile:    device.Nokia1,
				Video:      o.video(dash.Travel),
				Resolution: dash.R1080p,
				FPS:        fps[len(fps)-1],
				Pressure:   proc.Moderate,
				FPSOptions: fps,
				OnSession: func(s *player.Session, d *device.Device) {
					abr.Attach(s, d, &abr.MemoryAware{Inner: abr.BOLA{}}, 2*time.Second)
				},
			}
		}
		grid := RunGrid(o, []VideoRun{ladderCell([]int{24, 30, 48, 60}), ladderCell([]int{60})})
		meanMOS := func(results []Result) float64 {
			var mos float64
			for _, res := range results {
				mos += qoe.MOS(res.Metrics) / float64(len(results))
			}
			return mos
		}
		wideMOS := meanMOS(grid[0])
		narrowMOS := meanMOS(grid[1])
		r.Addf("simulated validation (Nokia 1, Moderate, mem-aware ABR):")
		r.Addf("  wide ladder MOS %.2f vs 60fps-only MOS %.2f", wideMOS, narrowMOS)
		r.Addf("(§7: low-end devices select lower frame rates and recover playback)")
		return r
	})
}
