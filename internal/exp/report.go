package exp

import (
	"fmt"
	"strings"
)

// Report is the textual output of one experiment: the rows/series of
// the corresponding paper table or figure.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// Addf appends one formatted line.
func (r *Report) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
