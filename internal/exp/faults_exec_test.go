package exp

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/faults"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
)

// TestExecutorPanicIsolation holds the hardened executor to its
// contract: a panicking run yields one Result marked Failed with the
// panic value, and every other cell in the grid still completes — at
// serial and parallel widths (run with -race).
func TestExecutorPanicIsolation(t *testing.T) {
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			cells := []VideoRun{
				{Video: quickVideo(), Resolution: dash.R240p, FPS: 30},
				{Video: quickVideo(), Resolution: dash.R360p, FPS: 30,
					OnSession: func(*player.Session, *device.Device) { panic("injected test panic") }},
				{Video: quickVideo(), Resolution: dash.R480p, FPS: 30},
			}
			grid := RunGrid(Options{Runs: 2, Parallel: par}, cells)
			if len(grid) != 3 {
				t.Fatalf("got %d cells, want 3", len(grid))
			}
			for _, res := range grid[1] {
				if !res.Failed || !strings.Contains(res.FailReason, "injected test panic") {
					t.Errorf("panicking cell: Failed=%v reason=%q", res.Failed, res.FailReason)
				}
			}
			if got := Failures(grid[1]); got != 2 {
				t.Errorf("Failures = %d, want 2", got)
			}
			for _, i := range []int{0, 2} {
				for _, res := range grid[i] {
					if res.Failed || res.Metrics.FramesRendered == 0 {
						t.Errorf("cell %d did not survive a neighbor's panic: %+v", i, res)
					}
				}
			}
			if note := regimeNote(grid[1]); !strings.Contains(note, "2/2 runs failed") {
				t.Errorf("regimeNote = %q, want a failed-run annotation", note)
			}
		})
	}
}

// TestDeadlineMarksOverrun: a run still active at its sim-time deadline
// is marked Failed instead of wedging the grid, and the failure is
// excluded from the aggregates.
func TestDeadlineMarksOverrun(t *testing.T) {
	cfg := VideoRun{
		Video:      quickVideo(), // 20s clip
		Resolution: dash.R240p,
		FPS:        30,
		Deadline:   2 * time.Second,
	}
	res := Run(cfg)
	if !res.Failed || res.FailReason != "deadline exceeded" {
		t.Fatalf("Failed=%v reason=%q, want a deadline failure", res.Failed, res.FailReason)
	}
	if CrashRate([]Result{res}) != 0 {
		t.Error("failed runs must not count toward the crash rate")
	}
	// A generous deadline changes nothing.
	cfg.Deadline = 5 * time.Minute
	if res := Run(cfg); res.Failed {
		t.Errorf("run failed under a generous deadline: %q", res.FailReason)
	}
	// Options.Deadline flows into jobs that don't set their own.
	grid := RunGrid(Options{Runs: 1, Parallel: 2, Deadline: 2 * time.Second},
		[]VideoRun{{Video: quickVideo(), Resolution: dash.R240p, FPS: 30}})
	if !grid[0][0].Failed {
		t.Error("Options.Deadline not applied to grid jobs")
	}
}

// TestFaultedGridByteIdentical replays the fault-injection experiment
// serially and across 8 workers: the rendered report AND every run's
// telemetry CSV must match byte for byte. This is the determinism
// contract under faults — schedules come from per-cell seed lanes, not
// from execution order (run with -race).
func TestFaultedGridByteIdentical(t *testing.T) {
	e, err := Find("faults_recovery")
	if err != nil {
		t.Fatal(err)
	}
	run := func(par int) (string, map[int]string) {
		var mu sync.Mutex
		csvs := make(map[int]string)
		opts := Options{
			Quick: true, Seed: 3, Parallel: par,
			Telemetry: &telemetry.Config{},
			OnTelemetry: func(run int, dump *telemetry.Dump) {
				var b strings.Builder
				if err := dump.WriteCSV(&b); err != nil {
					t.Error(err)
				}
				mu.Lock()
				csvs[run] = b.String()
				mu.Unlock()
			},
		}
		return e.Run(opts).String(), csvs
	}
	serialRep, serialCSV := run(1)
	parallelRep, parallelCSV := run(8)
	if serialRep != parallelRep {
		t.Errorf("faulted report differs across parallelism\n--- serial ---\n%s--- parallel ---\n%s",
			serialRep, parallelRep)
	}
	if len(serialCSV) == 0 {
		t.Fatal("no telemetry captured")
	}
	if !reflect.DeepEqual(serialCSV, parallelCSV) {
		t.Error("faulted telemetry CSVs differ across parallelism")
	}
}

// TestFaultsOptionInjectsPlan: Options.Faults flows into every launched
// run that doesn't carry its own plan, and the windows surface on the
// Result.
func TestFaultsOptionInjectsPlan(t *testing.T) {
	plan := faults.NetFlaky()
	grid := RunGrid(Options{Runs: 1, Faults: &plan},
		[]VideoRun{{Video: quickVideo(), Resolution: dash.R240p, FPS: 30, Pressure: proc.Normal}})
	res := grid[0][0]
	if len(res.FaultWindows) == 0 {
		t.Fatal("no fault windows recorded on the result")
	}
	for _, w := range res.FaultWindows {
		if w.Kind != faults.NetOutage && w.Kind != faults.NetLoss {
			t.Errorf("netflaky produced a %v window", w.Kind)
		}
	}
}
