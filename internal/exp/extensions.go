package exp

import (
	"time"

	"coalqoe/internal/abr"
	"coalqoe/internal/blockio"
	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/kswapd"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/qoe"
)

// abrCell is a pressured session with the given adaptation algorithm
// attached. The algorithm is constructed inside OnSession, per run, so
// repeats of the same cell can execute concurrently.
func abrCell(o Options, algo func() abr.Algorithm, startRes dash.Resolution, startFPS int) VideoRun {
	return VideoRun{
		Profile:    device.Nokia1,
		Video:      o.video(dash.Travel),
		Resolution: startRes,
		FPS:        startFPS,
		Pressure:   proc.Moderate,
		OnSession: func(s *player.Session, d *device.Device) {
			abr.Attach(s, d, algo(), 2*time.Second)
		},
	}
}

func init() {
	register("tab1", "key-insight summary (Table 1)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "tab1", Title: "Key insights: measured vs paper"}
		f := fleetFor(o)
		ins := f.Table1()
		r.Addf("devices experiencing memory pressure (>=1 signal/h): %.0f%% (paper: 63%%)", ins.PctAnySignal)
		r.Addf("devices with >10 critical signals/h:                 %.0f%% (paper: 19%%)", ins.PctManyCritical)
		r.Addf("devices with median RAM utilization >= 60%%:          %.0f%% (paper: 80%%)", ins.PctUtilOver60)
		r.Addf("devices >50%% of time in high pressure:               %.0f%% (paper: 10%%)", ins.PctHighTimeOver50)
		r.Addf("devices >=2%% of time in high pressure:               %.0f%% (paper: 35%%)", ins.PctHighTimeOver2)

		// Video-side rows of Table 1.
		grid := RunGrid(o, []VideoRun{
			{Resolution: dash.R1080p, FPS: 60, Pressure: proc.Moderate, Video: o.video(dash.Travel)},
			{Profile: device.Nexus5, Resolution: dash.R1080p, FPS: 60, Pressure: proc.Moderate, Video: o.video(dash.Travel)},
		})
		nokia, nexus := grid[0], grid[1]
		r.Addf("Nokia 1 1080p60 drops at Moderate: %s%% (paper: >75%% avg for 720p/1080p)%s", DropStats(nokia), regimeNote(nokia))
		r.Addf("Nexus 5 1080p60 drops at Moderate: %s%% (paper: up to 25%%)%s", DropStats(nexus), regimeNote(nexus))
		return r
	})

	register("memabr", "memory-aware ABR vs fixed quality (§6 proposal)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "memabr", Title: "Fixed vs BOLA vs MemoryAware under Moderate pressure (Nokia 1, starting 1080p60)"}
		algos := []struct {
			name string
			mk   func() abr.Algorithm
		}{
			{"fixed", func() abr.Algorithm { return abr.Fixed{} }},
			{"bola", func() abr.Algorithm { return abr.BOLA{} }},
			{"memaware", func() abr.Algorithm { return &abr.MemoryAware{Inner: abr.BOLA{}} }},
		}
		r.Addf("%-9s %8s %8s %7s %s", "algorithm", "drops", "MOS", "crashed", "final rung")
		// All three cells share identical conditions, so CellSeed pairs
		// them: each algorithm faces the same pressure realizations.
		cells := make([]VideoRun, len(algos))
		for i, a := range algos {
			cells[i] = abrCell(o, a.mk, dash.R1080p, 60)
		}
		grid := RunGrid(o, cells)
		for i, a := range algos {
			var drops, mos float64
			crashes := 0
			var final dash.Rung
			for _, res := range grid[i] {
				m := res.Metrics
				drops += m.EffectiveDropRate / float64(o.Runs)
				mos += qoe.MOS(m) / float64(o.Runs)
				if m.Crashed {
					crashes++
				}
				final = m.Rung
			}
			r.Addf("%-9s %7.1f%% %8.2f %6d/%d %s%s", a.name, drops, mos, crashes, o.Runs, final, regimeNote(grid[i]))
		}
		r.Addf("(the memory-aware policy should cut drops sharply by stepping the frame rate down)")
		return r
	})

	register("abl-zram", "ablation: zRAM on vs off (Nokia 1, Moderate, 720p60)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "abl-zram", Title: "zRAM ablation"}
		var cells []VideoRun
		for _, disable := range []bool{false, true} {
			cells = append(cells, VideoRun{
				Profile:    device.Nokia1,
				DeviceOpts: device.Options{DisableZRAM: disable},
				Video:      o.video(dash.Travel),
				Resolution: dash.R720p, FPS: 60,
				Pressure: proc.Moderate,
			})
		}
		grid := RunGrid(o, cells)
		for i, disable := range []bool{false, true} {
			label := "zRAM on "
			if disable {
				label = "zRAM off"
			}
			r.Addf("%s: drops=%s%% crashes=%.0f%%%s", label, DropStats(grid[i]), CrashRate(grid[i]), regimeNote(grid[i]))
		}
		r.Addf("(without zRAM, anonymous memory cannot be reclaimed: pressure must resolve through kills)")
		return r
	})

	register("abl-mmcqd", "ablation: mmcqd strict priority vs fair share", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "abl-mmcqd", Title: "mmcqd scheduling-class ablation (Nokia 1, Moderate, 720p60)"}
		var cells []VideoRun
		for _, fair := range []bool{false, true} {
			cells = append(cells, VideoRun{
				Profile:    device.Nokia1,
				DeviceOpts: device.Options{DiskConfig: &blockio.Config{FairPriority: fair}},
				Video:      o.video(dash.Travel),
				Resolution: dash.R720p, FPS: 60,
				Pressure: proc.Moderate,
			})
		}
		grid := RunGrid(o, cells)
		for i, fair := range []bool{false, true} {
			label := "RT (stock)"
			if fair {
				label = "fair-share"
			}
			r.Addf("mmcqd %s: drops=%s%% crashes=%.0f%%%s", label, DropStats(grid[i]), CrashRate(grid[i]), regimeNote(grid[i]))
		}
		r.Addf("(§7: reducing daemon interference through scheduling)")
		return r
	})

	register("abl-cpu", "ablation: more/faster cores at the same RAM (§7 OEM insight)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "abl-cpu", Title: "CPU scaling at 1 GB RAM (Moderate, 720p60)"}
		variants := []struct {
			name   string
			speeds []float64
		}{
			{"stock 4x1.1GHz", nil},
			{"8 cores", []float64{1.1, 1.1, 1.1, 1.1, 1.1, 1.1, 1.1, 1.1}},
			{"4x2.0GHz", []float64{2.0, 2.0, 2.0, 2.0}},
		}
		cells := make([]VideoRun, len(variants))
		for i, v := range variants {
			profile := device.Nokia1
			if v.speeds != nil {
				profile.CoreSpeeds = v.speeds
			}
			cells[i] = VideoRun{
				Profile:    profile,
				Video:      o.video(dash.Travel),
				Resolution: dash.R720p, FPS: 60,
				Pressure: proc.Moderate,
			}
		}
		grid := RunGrid(o, cells)
		for i, v := range variants {
			r.Addf("%-15s: drops=%s%% crashes=%.0f%%%s", v.name, DropStats(grid[i]), CrashRate(grid[i]), regimeNote(grid[i]))
		}
		r.Addf("(paper: video QoE improves under pressure with more CPU resources)")
		return r
	})

	register("abl-kswapd-pin", "ablation: kswapd core pinning (§7 OS insight)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "abl-kswapd-pin", Title: "kswapd soft core affinity (Nokia 1, Moderate, 720p60)"}
		pins := []int{0, 1}
		cells := make([]VideoRun, len(pins))
		for i, pin := range pins {
			cells[i] = VideoRun{
				Profile:    device.Nokia1,
				DeviceOpts: device.Options{KswapdConfig: &kswapd.Config{PinCore: pin}},
				Video:      o.video(dash.Travel),
				Resolution: dash.R720p, FPS: 60,
				Pressure:   proc.Moderate,
				KeepDevice: true,
			}
		}
		grid := RunGrid(o, cells)
		for i, pin := range pins {
			var migrations, drops float64
			for _, res := range grid[i] {
				migrations += float64(res.Device.Tracer.Migrations(res.Device.Kswapd.Thread().Key().TID)) / float64(o.Runs)
				drops += res.Metrics.EffectiveDropRate / float64(o.Runs)
			}
			label := "free migration"
			if pin > 0 {
				label = "pinned core 0 "
			}
			r.Addf("kswapd %s: migrations=%6.0f drops=%5.1f%%%s", label, migrations, drops, regimeNote(grid[i]))
		}
		r.Addf("(§7 observes kswapd switching cores constantly; a one-sided soft hint")
		r.Addf(" barely helps because the preferred core is usually taken — coordination")
		r.Addf(" has to involve the video threads' placement too)")
		return r
	})

	register("abl-order", "ablation: fps-first vs resolution-first memory adaptation", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "abl-order", Title: "MemoryAware degradation order (Nokia 1, Moderate, starting 1080p60)"}
		// fps-first is the built-in path; resolution-first is emulated
		// by restricting the ladder to a single frame rate so only
		// resolution steps exist.
		type variant struct {
			name string
			fps  []int
		}
		variants := []variant{{"fps-first (24/30/48/60 ladder)", []int{24, 30, 48, 60}}, {"res-first (60-only ladder)", []int{60}}}
		cells := make([]VideoRun, len(variants))
		for i, v := range variants {
			cells[i] = VideoRun{
				Profile:    device.Nokia1,
				Video:      o.video(dash.Travel),
				Resolution: dash.R1080p,
				FPS:        60,
				Pressure:   proc.Moderate,
				FPSOptions: v.fps,
				OnSession: func(s *player.Session, d *device.Device) {
					abr.Attach(s, d, &abr.MemoryAware{Inner: abr.Fixed{}}, 2*time.Second)
				},
			}
		}
		grid := RunGrid(o, cells)
		for i, v := range variants {
			var drops, mos float64
			for _, res := range grid[i] {
				drops += res.Metrics.EffectiveDropRate / float64(o.Runs)
				mos += qoe.MOS(res.Metrics) / float64(o.Runs)
			}
			r.Addf("%-32s drops=%5.1f%% MOS=%.2f%s", v.name, drops, mos, regimeNote(grid[i]))
		}
		r.Addf("(§6: lowering frame rate preserves resolution while rescuing playback)")
		return r
	})
}
