package exp

import (
	"fmt"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/player"
	"coalqoe/internal/plot"
	"coalqoe/internal/proc"
	"coalqoe/internal/stats"
	"coalqoe/internal/trace"
)

// videoThreads matches the paper's §5 "video client threads":
// SurfaceFlinger, MediaCodec, and the Firefox process threads.
func videoThreads() trace.ThreadFilter {
	return trace.AnyOf(trace.ByProcess(player.Firefox.Name), trace.ByName("SurfaceFlinger"))
}

// profiledCell is the §5 profiling workload: 480p at 60 FPS on the
// Nokia 1, at the given state, retaining the device for trace queries.
func profiledCell(o Options, state proc.Level) VideoRun {
	return VideoRun{
		Profile:    device.Nokia1,
		Video:      o.video(dash.Travel),
		Resolution: dash.R480p,
		FPS:        60,
		Pressure:   state,
		KeepDevice: true,
	}
}

// profiledLevels runs runsPer repeats of the profiling workload per
// pressure level on the executor and returns results per level.
func profiledLevels(o Options, runsPer int, levels []proc.Level) [][]Result {
	oc := o
	oc.Runs = runsPer
	cells := make([]VideoRun, len(levels))
	for i, lvl := range levels {
		cells[i] = profiledCell(o, lvl)
	}
	return RunGrid(oc, cells)
}

func init() {
	register("tab4", "video thread time-in-state, Normal vs Moderate", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "tab4", Title: "Time in scheduler states for video client threads (480p60, Nokia 1)"}
		states := []trace.State{trace.Running, trace.Runnable, trace.RunnablePreempted}
		// Paper: mean over three runs.
		runsPer := 3
		if o.Quick {
			runsPer = 1
		}
		levels := []proc.Level{proc.Normal, proc.Moderate}
		grid := profiledLevels(o, runsPer, levels)
		means := map[proc.Level]map[trace.State]float64{}
		for li, lvl := range levels {
			means[lvl] = map[trace.State]float64{}
			for _, res := range grid[li] {
				for _, st := range states {
					means[lvl][st] += res.Device.Tracer.TimeInState(videoThreads(), st).Seconds() / float64(runsPer)
				}
			}
		}
		r.Addf("%-22s %10s %10s %10s", "state", "Normal(s)", "Moderate(s)", "increase")
		paper := map[trace.State]float64{trace.Running: -8.5, trace.Runnable: 24.2, trace.RunnablePreempted: 97.8}
		for _, st := range states {
			n, m := means[proc.Normal][st], means[proc.Moderate][st]
			incr := 0.0
			if n > 0 {
				incr = 100 * (m - n) / n
			}
			r.Addf("%-22s %9.1fs %9.1fs %+9.1f%%  (paper: %+.1f%%)", st, n, m, incr, paper[st])
		}
		return r
	})

	register("tab5", "mmcqd preemption statistics, Normal vs Moderate", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "tab5", Title: "Preemptions of video threads by mmcqd (480p60, Nokia 1)"}
		type row struct {
			count  float64
			ranFor float64
			waited float64
		}
		runsPer := 3
		if o.Quick {
			runsPer = 1
		}
		levels := []proc.Level{proc.Normal, proc.Moderate}
		grid := profiledLevels(o, runsPer, levels)
		rows := map[proc.Level]*row{}
		for li, lvl := range levels {
			rows[lvl] = &row{}
			for _, res := range grid[li] {
				ps := res.Device.Tracer.PreemptionsBy(trace.ByName("mmcqd"), videoThreads())
				rows[lvl].count += float64(ps.Count) / float64(runsPer)
				rows[lvl].ranFor += ps.PreemptorRanFor.Seconds() / float64(runsPer)
				rows[lvl].waited += ps.VictimsWaitedFor.Seconds() / float64(runsPer)
			}
		}
		n, m := rows[proc.Normal], rows[proc.Moderate]
		r.Addf("%-42s %10s %10s %8s", "metric", "Normal", "Moderate", "ratio")
		r.Addf("%-42s %10.1f %10.1f %8s  (paper: 26.6x)", "mean number of preemptions", n.count, m.count, ratioStr(m.count, n.count))
		r.Addf("%-42s %9.2fs %9.2fs %8s  (paper: 16.8x)", "mean time mmcqd runs after preemption", n.ranFor, m.ranFor, ratioStr(m.ranFor, n.ranFor))
		r.Addf("%-42s %9.2fs %9.2fs %8s  (paper: 27.5x)", "mean time video waits to get CPU back", n.waited, m.waited, ratioStr(m.waited, n.waited))
		r.Addf("(our Normal baseline is nearly interference-free, so the ratios degenerate;")
		r.Addf(" the Moderate absolutes carry the comparison — see EXPERIMENTS.md)")
		return r
	})

	register("fig13", "kswapd time-in-state, Normal vs Moderate", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "fig13", Title: "kswapd scheduler-state shares (480p60, Nokia 1)"}
		paper := map[proc.Level]map[trace.State]float64{
			proc.Normal:   {trace.Sleeping: 75, trace.Running: 6},
			proc.Moderate: {trace.Sleeping: 31, trace.Running: 56},
		}
		levels := []proc.Level{proc.Normal, proc.Moderate}
		grid := profiledLevels(o, 1, levels)
		for li, lvl := range levels {
			res := grid[li][0]
			breakdown := res.Device.Tracer.StateBreakdown(trace.ByName("kswapd"))
			var total time.Duration
			//coalvet:allow maporder integer Duration sum, order-insensitive
			for _, d := range breakdown {
				total += d
			}
			r.Addf("%s:", lvl)
			for _, st := range []trace.State{trace.Sleeping, trace.Runnable, trace.RunnablePreempted, trace.Running} {
				share := stats.Pct(breakdown[st].Seconds(), total.Seconds())
				note := ""
				if p, ok := paper[lvl][st]; ok {
					note = "  (paper: " + fmtPct(p) + ")"
				}
				r.Addf("  %-22s %5.1f%%%s", st, share, note)
			}
		}
		return r
	})

	register("fig14", "frame rate and lmkd CPU during a crashing session", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "fig14", Title: "Instantaneous FPS and lmkd CPU until the client is killed (Nokia 1, Critical)"}
		var lmkdCPU []float64
		res := Run(VideoRun{
			Seed:       o.Seed + 1,
			Profile:    device.Nokia1,
			Video:      o.video(dash.Travel),
			Resolution: dash.R480p,
			FPS:        60,
			Pressure:   proc.Critical,
			OnSession: func(s *player.Session, d *device.Device) {
				var last time.Duration
				d.Clock.Every(time.Second, func() {
					cur := d.Lmkd.Thread().CPUTime()
					lmkdCPU = append(lmkdCPU, (cur-last).Seconds()*100)
					last = cur
				})
			},
		})
		r.Addf("fps      %s", plot.SparkFixed(res.Metrics.FPSTimeline, 60))
		r.Addf("lmkd cpu %s", plot.Spark(lmkdCPU))
		for i, f := range res.Metrics.FPSTimeline {
			cpu := 0.0
			if i < len(lmkdCPU) {
				cpu = lmkdCPU[i]
			}
			r.Addf("t=%3ds fps=%4.0f lmkdCPU=%5.2f%%", i, f, cpu)
		}
		if res.Metrics.Crashed {
			r.Addf("client killed by lmkd at t=%v (paper: crash coincides with lmkd CPU spike)",
				res.Metrics.CrashedAt.Round(time.Second))
		} else {
			r.Addf("client survived this run")
		}
		return r
	})

	register("fig15", "FPS and process kills under organic pressure", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "fig15", Title: "Rendered FPS and kills: organic Normal vs Moderate (Nokia 1, 480p60)"}
		type variant struct {
			apps  int
			label string
			kills []float64
		}
		variants := []*variant{
			{apps: 0, label: "Normal (no background apps)"},
			{apps: 8, label: "Moderate (8 background apps)"},
		}
		cells := make([]VideoRun, len(variants))
		for i, v := range variants {
			v := v
			cells[i] = VideoRun{
				Profile:     device.Nokia1,
				Video:       o.video(dash.Travel),
				Resolution:  dash.R480p,
				FPS:         60,
				OrganicApps: v.apps,
				KeepDevice:  true,
				// The kills timeline is private to this cell's single
				// run, so the executor can run variants concurrently.
				OnSession: func(s *player.Session, d *device.Device) {
					d.Clock.Every(time.Second, func() {
						v.kills = append(v.kills, float64(len(d.Table.Kills())))
					})
				},
			}
		}
		oc := o
		oc.Runs = 1
		grid := RunGrid(oc, cells)
		for i, v := range variants {
			res := grid[i][0]
			r.Addf("%s: drops=%.1f%% crashed=%v", v.label, res.Metrics.EffectiveDropRate, res.Metrics.Crashed)
			r.Addf("  fps   %s", plot.SparkFixed(plot.Downsample(res.Metrics.FPSTimeline, 72), 60))
			r.Addf("  kills %s (final %d)", plot.Spark(plot.Downsample(v.kills, 72)), len(res.Device.Table.Kills()))
		}
		return r
	})
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ratioStr renders a/b, degenerating gracefully when the baseline is 0.
func ratioStr(a, b float64) string {
	if b == 0 {
		if a > 0 {
			return "inf"
		}
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

func fmtPct(p float64) string { return fmt.Sprintf("%.0f%%", p) }
