package exp

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/faults"
	"coalqoe/internal/proc"
	"coalqoe/internal/telemetry"
)

// The event-order digest oracle.
//
// Every kernel optimisation must leave the dispatch sequence of the
// simulation byte-identical: same events, same virtual times, same
// order. The digest (an FNV-1a hash over every dispatched event's
// time/seq/kind, see simclock.EnableDigest) compresses a whole run's
// dispatch sequence into one uint64. The golden file below pins the
// digests of a representative set of experiment cells; it was recorded
// BEFORE the kernel hot paths were optimised, so a passing run proves
// the optimised kernel replays exactly the pre-optimisation event
// sequence.
//
// Refresh (only for intentional simulation-behavior changes — never to
// paper over an optimisation regression):
//
//	go test ./internal/exp -run TestEventDigestGolden -update-digests

var updateDigests = flag.Bool("update-digests", false, "rewrite testdata/event_digests.golden from the current kernel")

const digestGoldenPath = "testdata/event_digests.golden"

// digestCells is the oracle's cell set: every device profile, every
// pressure regime, organic pressure, telemetry sampling, and a fault
// plan — the configurations that exercise all kernel subsystems
// (simclock, sched, mem, kswapd, lmkd, blockio, player, faults).
func digestCells() map[string]VideoRun {
	quickVideo := dash.TestVideos[0]
	quickVideo.Duration = 60 * time.Second

	memstorm, err := faults.Lookup("memstorm")
	if err != nil {
		panic(err)
	}

	cells := map[string]VideoRun{
		"nokia1-720p30-normal": {
			Profile: device.Nokia1, Video: quickVideo,
			Resolution: dash.R720p, FPS: 30, Pressure: proc.Normal,
		},
		"nokia1-720p30-moderate": {
			Profile: device.Nokia1, Video: quickVideo,
			Resolution: dash.R720p, FPS: 30, Pressure: proc.Moderate,
		},
		"nokia1-720p30-critical": {
			Profile: device.Nokia1, Video: quickVideo,
			Resolution: dash.R720p, FPS: 30, Pressure: proc.Critical,
		},
		"nexus5-1080p30-low": {
			Profile: device.Nexus5, Video: quickVideo,
			Resolution: dash.R1080p, FPS: 30, Pressure: proc.Low,
		},
		"nexus6p-1080p60-moderate": {
			Profile: device.Nexus6P, Video: quickVideo,
			Resolution: dash.R1080p, FPS: 60, Pressure: proc.Moderate,
		},
		"nokia1-480p30-organic6": {
			Profile: device.Nokia1, Video: quickVideo,
			Resolution: dash.R480p, FPS: 30, OrganicApps: 6,
		},
		"nokia1-720p30-moderate-telemetry": {
			Profile: device.Nokia1, Video: quickVideo,
			Resolution: dash.R720p, FPS: 30, Pressure: proc.Moderate,
			Telemetry: &telemetry.Config{},
		},
		"nokia1-720p30-moderate-memstorm": {
			Profile: device.Nokia1, Video: quickVideo,
			Resolution: dash.R720p, FPS: 30, Pressure: proc.Moderate,
			Faults: &memstorm,
		},
	}
	for name, c := range cells {
		c.Digest = true
		c.Seed = CellSeed(12345, c) + 1
		cells[name] = c
	}
	return cells
}

func runDigests(t *testing.T) map[string]uint64 {
	t.Helper()
	cells := digestCells()
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)

	got := make(map[string]uint64, len(cells))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range names {
		name, cfg := name, cells[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := Run(cfg)
			mu.Lock()
			got[name] = res.EventDigest
			mu.Unlock()
		}()
	}
	wg.Wait()
	return got
}

func readDigestGolden(t *testing.T) map[string]uint64 {
	t.Helper()
	f, err := os.Open(digestGoldenPath)
	if err != nil {
		t.Fatalf("open golden (run with -update-digests to create): %v", err)
	}
	defer f.Close()
	out := make(map[string]uint64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var d uint64
		if _, err := fmt.Sscanf(line, "%s %x", &name, &d); err != nil {
			t.Fatalf("bad golden line %q: %v", line, err)
		}
		out[name] = d
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func writeDigestGolden(t *testing.T, digests map[string]uint64) {
	t.Helper()
	names := make([]string, 0, len(digests))
	for name := range digests {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("# Event-order digests per experiment cell (FNV-1a over dispatched\n")
	b.WriteString("# (time, seq, kind) — see simclock.EnableDigest and digest_test.go).\n")
	b.WriteString("# Recorded against the pre-optimisation kernel; any optimisation\n")
	b.WriteString("# must reproduce these bytes exactly.\n")
	for _, name := range names {
		fmt.Fprintf(&b, "%s %016x\n", name, digests[name])
	}
	if err := os.MkdirAll(filepath.Dir(digestGoldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(digestGoldenPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestEventDigestGolden replays every oracle cell and holds its digest
// to the committed golden value.
func TestEventDigestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full digest battery skipped in -short mode")
	}
	got := runDigests(t)
	for name, d := range got {
		if d == 0 {
			t.Errorf("%s: digest is zero — digest plumbing broken", name)
		}
	}
	if *updateDigests {
		writeDigestGolden(t, got)
		t.Logf("rewrote %s with %d digests", digestGoldenPath, len(got))
		return
	}
	want := readDigestGolden(t)
	if len(want) != len(got) {
		t.Errorf("golden has %d cells, battery ran %d (run -update-digests after adding cells)", len(want), len(got))
	}
	for name, w := range want {
		if g, ok := got[name]; !ok {
			t.Errorf("%s: in golden but not run", name)
		} else if g != w {
			t.Errorf("%s: event digest %016x, golden %016x — the kernel's dispatch sequence changed", name, g, w)
		}
	}
}

// TestEventDigestSerialVsParallel runs one digest-enabled grid serially
// and at 8 workers and requires identical digests run-for-run: the
// executor's byte-identical-at-any-parallelism contract, asserted at
// the kernel-event level rather than the report level.
func TestEventDigestSerialVsParallel(t *testing.T) {
	cell := VideoRun{
		Profile: device.Nokia1, Resolution: dash.R720p, FPS: 30,
		Pressure: proc.Moderate,
	}
	cell.Video = dash.TestVideos[0]
	cell.Video.Duration = 45 * time.Second

	digestsOf := func(workers int) []uint64 {
		res := RunGrid(Options{Quick: true, Seed: 7, Runs: 3, Parallel: workers, Digest: true}, []VideoRun{cell})
		var out []uint64
		for _, rr := range res {
			for _, r := range rr {
				out = append(out, r.EventDigest)
			}
		}
		return out
	}
	serial := digestsOf(1)
	parallel := digestsOf(8)
	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] == 0 {
			t.Fatalf("run %d: zero digest", i)
		}
		if serial[i] != parallel[i] {
			t.Errorf("run %d: serial digest %016x != parallel digest %016x", i, serial[i], parallel[i])
		}
	}
}
