// Package exp orchestrates the paper's experiments: it boots a device,
// establishes a memory-pressure regime (synthetic via the MP-Simulator
// balloon, or organic via background apps, §4.1/§4.3), streams a video,
// and collects QoE metrics — repeating runs and aggregating them the
// way the paper reports (mean of five runs with 95% CIs).
package exp

import (
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/faults"
	"coalqoe/internal/mempress"
	"coalqoe/internal/netem"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/stats"
	"coalqoe/internal/telemetry"
)

// VideoRun configures one streaming experiment.
type VideoRun struct {
	// Seed makes the run deterministic; vary it across repeats.
	Seed int64
	// Profile selects the device (default Nokia1).
	Profile device.Profile
	// DeviceOpts tweak the device assembly (ablations).
	DeviceOpts device.Options
	// Client selects the video client (default Firefox).
	Client player.ClientProfile
	// Video selects content (default the travel video, the paper's
	// primary subject).
	Video dash.Video
	// Resolution and FPS select the rung.
	Resolution dash.Resolution
	FPS        int
	// Pressure is the target memory state before playback starts.
	Pressure proc.Level
	// Organic applies pressure by opening background apps instead of
	// the balloon (§4.3 "organic memory pressure").
	OrganicApps int
	// FPSOptions widens the manifest ladder (default 30/60 plus the
	// requested FPS).
	FPSOptions []int
	// PlayerTweaks lets callers adjust the session config.
	PlayerTweaks func(*player.Config)
	// OnSession runs right after the session starts (attach ABR, etc.).
	OnSession func(*player.Session, *device.Device)
	// SettleTime is the boot settling period (default 3s).
	SettleTime time.Duration
	// PressureTimeout bounds the wait for the target signal
	// (default 240s).
	PressureTimeout time.Duration
	// KeepTrace records full scheduler intervals for export
	// (memory-heavy; off by default). Implies KeepDevice.
	KeepTrace bool
	// KeepDevice retains the simulated device and session in the Result
	// for trace-level queries after the run. Off by default: a full
	// device (process table, tracer aggregates, scheduler state) is far
	// heavier than its Metrics, and large grids would otherwise hold
	// every simulated device of every repeat alive simultaneously.
	KeepDevice bool
	// Telemetry, when non-nil, attaches a metrics registry and sim-clock
	// sampler to the device (see internal/telemetry) and returns the
	// sampled series in Result.Telemetry. nil keeps the instruments
	// disabled — the zero-cost default. Sampling only reads simulator
	// state, so enabling it never changes the run's outcome.
	Telemetry *telemetry.Config
	// Faults, when non-nil, materializes the plan into impairment
	// windows (seeded by the run's Seed, so repeats differ but replays
	// don't) and injects them over the playback horizon. nil keeps the
	// paper's ideal network/storage conditions.
	Faults *faults.Spec
	// Deadline, when positive, caps the run's simulated time: a session
	// still active at the deadline is abandoned and the Result is marked
	// Failed ("deadline exceeded") rather than wedging the whole grid.
	// Zero keeps the legacy slack (3x video duration + 30s) with no
	// failure marking.
	Deadline time.Duration
	// Digest enables the kernel's event-order digest: an FNV-1a hash
	// over every dispatched event's (time, seq, kind), returned in
	// Result.EventDigest. It is the correctness oracle for kernel
	// optimisations — any change to the dispatch sequence changes the
	// digest — and costs one branch per dispatched event, so it is off
	// by default.
	Digest bool
}

func (r *VideoRun) applyDefaults() {
	if r.Profile.Name == "" {
		r.Profile = device.Nokia1
	}
	if r.Client.Name == "" {
		r.Client = player.Firefox
	}
	if r.Video.Title == "" {
		r.Video = dash.TestVideos[0]
	}
	if r.FPS == 0 {
		r.FPS = 30
	}
	if len(r.FPSOptions) == 0 {
		r.FPSOptions = []int{24, 30, 48, 60}
	}
	if r.SettleTime <= 0 {
		r.SettleTime = 3 * time.Second
	}
	if r.PressureTimeout <= 0 {
		r.PressureTimeout = 240 * time.Second
	}
}

// Result is the outcome of one run. Metrics is extracted eagerly when
// the run finishes; Device and Session are nil unless the run was
// configured with KeepDevice or KeepTrace, so grids of thousands of
// runs don't retain every simulated device.
type Result struct {
	Metrics player.Metrics
	//coalvet:allow resultretain opt-in escape hatch: nil unless KeepDevice/KeepTrace is set on the run config
	Device *device.Device
	//coalvet:allow resultretain opt-in escape hatch: nil unless KeepDevice/KeepTrace is set on the run config
	Session *player.Session
	// PressureReached reports whether the target regime was achieved
	// before the timeout.
	PressureReached bool
	// Telemetry holds the sampled series when the run was configured
	// with a Telemetry config; nil otherwise. It is plain data (no
	// device or session references), so retaining it across a grid is
	// cheap.
	Telemetry *telemetry.Dump
	// Failed marks a run that produced no trustworthy metrics: it
	// panicked inside the executor (FailReason carries the panic value)
	// or overran its Deadline. Aggregations (DropStats, CrashRate)
	// exclude failed runs; report rows annotate them (see failNote).
	Failed     bool
	FailReason string
	// FaultWindows records the injected impairment schedule (absolute
	// sim times) when the run carried a fault plan. Plain data — safe to
	// retain and export (trace marks, reports).
	FaultWindows []faults.Window
	// EventDigest is the kernel's event-order digest when the run was
	// configured with Digest; 0 otherwise. Two runs of the same config
	// and seed must produce the same digest at any executor parallelism.
	EventDigest uint64
}

// Run executes the experiment to completion (or crash) and returns the
// session metrics — plus, when cfg.KeepDevice/KeepTrace is set, the
// device for trace-level queries.
func Run(cfg VideoRun) Result {
	cfg.applyDefaults()
	if cfg.Telemetry != nil {
		cfg.DeviceOpts.Telemetry = cfg.Telemetry
	}
	dev := device.New(cfg.Seed, cfg.Profile, cfg.DeviceOpts)
	if cfg.Digest {
		// Enabled before the first Settle, so the digest covers every
		// dispatched event of the run, boot included.
		dev.Clock.EnableDigest()
	}
	dev.Tracer.KeepIntervals(cfg.KeepTrace)
	dev.Settle(cfg.SettleTime)

	reached := cfg.Pressure == proc.Normal && cfg.OrganicApps == 0
	if cfg.OrganicApps > 0 {
		mempress.OpenBackgroundApps(dev, mempress.TypicalApps(cfg.OrganicApps), 500*time.Millisecond)
		// Let the launches and resulting reclaim churn play out.
		dev.Settle(time.Duration(cfg.OrganicApps)*500*time.Millisecond + 10*time.Second)
		reached = true
	} else if cfg.Pressure > proc.Normal {
		mempress.Apply(dev, cfg.Pressure, func() { reached = true })
		deadline := dev.Clock.Now() + cfg.PressureTimeout
		for !reached && dev.Clock.Now() < deadline {
			dev.Settle(time.Second)
		}
	}

	manifest := dash.NewManifest(cfg.Video, cfg.FPSOptions...)
	rung, ok := manifest.Rung(cfg.Resolution, cfg.FPS)
	if !ok {
		rung = manifest.Lowest()
	}
	pcfg := player.Config{
		Device:   dev,
		Client:   cfg.Client,
		Manifest: manifest,
		Rung:     rung,
	}
	if cfg.PlayerTweaks != nil {
		cfg.PlayerTweaks(&pcfg)
	}
	// Play to the end (or crash), with slack for stalls. An explicit
	// Deadline overrides the legacy slack and marks overruns as failed.
	slack := cfg.Video.Duration*3 + 30*time.Second
	if cfg.Deadline > 0 {
		slack = cfg.Deadline
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		// The injector needs a concrete link handle; materialize the
		// default LAN here when the tweaks didn't supply one. Windows
		// derive from the run seed over the full playable horizon, before
		// the session starts, so the schedule is independent of playback.
		if pcfg.Link == nil {
			pcfg.Link = netem.LAN(dev.Clock)
		}
		inj = faults.Attach(dev, pcfg.Link, cfg.Faults.Windows(cfg.Seed, slack))
	}
	sess := player.Start(pcfg)
	if inj != nil {
		sess.SetFaultProbe(inj.FaultActive)
	}
	if cfg.OnSession != nil {
		cfg.OnSession(sess, dev)
	}
	deadline := dev.Clock.Now() + slack
	for sess.Active() && dev.Clock.Now() < deadline {
		dev.Settle(time.Second)
	}
	dev.Tracer.Finish(dev.Clock.Now())
	res := Result{Metrics: sess.Metrics(), PressureReached: reached, EventDigest: dev.Clock.Digest()}
	if inj != nil {
		res.FaultWindows = inj.Windows()
	}
	if cfg.Deadline > 0 && sess.Active() {
		res.Failed = true
		res.FailReason = "deadline exceeded"
	}
	if dev.Sampler != nil {
		// One edge sample at the final instant, so the last partial
		// period is represented, then freeze the series.
		dev.Sampler.Sample()
		dev.Sampler.Stop()
		res.Telemetry = dev.Sampler.Dump()
	}
	if cfg.KeepDevice || cfg.KeepTrace {
		res.Device = dev
		res.Session = sess
	}
	return res
}

// Repeat runs the experiment n times with seeds base+1..base+n and
// returns all results. This mirrors the paper's five-run methodology.
// It is the serial reference for RepeatParallel, which applies the same
// seed assignment across a worker pool.
func Repeat(cfg VideoRun, n int, baseSeed int64) []Result {
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		//coalvet:allow seedlane the paper's five-run rule seeds base+1..base+n; changing it would invalidate the digest goldens
		c.Seed = baseSeed + int64(i) + 1
		out = append(out, Run(c))
	}
	return out
}

// DropStats aggregates the effective drop rates of repeated runs (a
// crashed run counts its unplayed remainder as dropped, as the paper
// does for unplayable Critical-state runs). Failed runs (panic or
// deadline, see Result.Failed) carry no trustworthy metrics and are
// excluded; failNote makes the exclusion visible on report rows.
func DropStats(results []Result) stats.MeanCI {
	xs := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Failed {
			continue
		}
		xs = append(xs, r.Metrics.EffectiveDropRate)
	}
	return stats.Summarize(xs)
}

// CrashRate returns the percentage of runs that crashed, over the runs
// that completed (failed runs excluded).
func CrashRate(results []Result) float64 {
	n, total := 0, 0
	for _, r := range results {
		if r.Failed {
			continue
		}
		total++
		if r.Metrics.Crashed {
			n++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// Restarts sums crash recoveries across completed runs, and
// MeanTimeToRecover averages the recovery gap over runs that actually
// restarted — the headline numbers of the faults_recovery experiment.
func Restarts(results []Result) int {
	n := 0
	for _, r := range results {
		if !r.Failed {
			n += r.Metrics.Restarts
		}
	}
	return n
}

// MeanTimeToRecover averages Metrics.TimeToRecover over runs with at
// least one restart; zero when none restarted.
func MeanTimeToRecover(results []Result) time.Duration {
	var sum time.Duration
	n := 0
	for _, r := range results {
		if r.Failed || r.Metrics.Restarts == 0 {
			continue
		}
		sum += r.Metrics.TimeToRecover
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}
