package exp

import (
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/faults"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
)

// faults_recovery: the robustness counterpart to the paper's §4.3 crash
// finding. The paper treats an lmkd kill as the end of the session
// (Tables 2–3 report Critical-state runs as unplayable); a production
// client restarts and resumes instead. This experiment injects a
// memory-spike storm (transient co-resident demand, not a sustained
// regime) on top of Moderate pressure and compares the two postures:
//
//   - terminal: the seed behavior — the first kill ends playback, and
//     the unplayed remainder counts as dropped (~100% effective drop
//     when the kill lands early);
//   - recover: a RecoveryPolicy relaunches the app after the cold-start
//     cost, re-fetches the manifest, and resumes from the next segment
//     boundary — the run reports Restarts and TimeToRecover instead of
//     a terminal crash.
//
// Both variants of one profile share every CellSeed condition (the
// tweaks are deliberately not hashed), so each pair faces identical
// pressure and identical fault schedules: the comparison isolates the
// recovery machinery.
func init() {
	register("faults_recovery", "crash recovery under memory-spike storms (terminal vs recovering client)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "faults_recovery", Title: "Terminal-crash vs crash-recovery playback under a memstorm fault plan (Moderate pressure, 720p30)"}
		plan := faults.MemStorm()
		profiles := []device.Profile{device.Nokia1, device.Nexus5, device.Nexus6P}
		modes := []struct {
			name     string
			recovery *player.RecoveryPolicy
		}{
			{"terminal", nil},
			{"recover", &player.RecoveryPolicy{}},
		}
		var cells []VideoRun
		for _, p := range profiles {
			for _, m := range modes {
				rec := m.recovery
				cells = append(cells, VideoRun{
					Profile:    p,
					Video:      o.video(dash.Travel),
					Resolution: dash.R720p, FPS: 30,
					Pressure: proc.Moderate,
					Faults:   &plan,
					PlayerTweaks: func(pc *player.Config) {
						pc.SegmentTimeout = 8 * time.Second
						pc.Recovery = rec
					},
				})
			}
		}
		grid := RunGrid(o, cells)
		r.Addf("%-8s %-9s %12s %8s %9s %10s", "device", "client", "drops", "crashes", "restarts", "mean TTR")
		for i, p := range profiles {
			for j, m := range modes {
				res := grid[i*len(modes)+j]
				r.Addf("%-8s %-9s %11s%% %6.0f%% %9d %10s%s",
					p.Name, m.name, DropStats(res), CrashRate(res),
					Restarts(res), MeanTimeToRecover(res).Round(100*time.Millisecond),
					regimeNote(res))
			}
		}
		r.Addf("(a spike storm kills the foreground client; recovery converts a dead session")
		r.Addf(" into restarts + a bounded playback gap, while the terminal baseline loses")
		r.Addf(" the whole remainder of the video)")
		return r
	})
}
