package exp

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel run executor. Every registered experiment
// replays its independent VideoRuns (grid cells × repeats) through it,
// fanning work across a worker pool while keeping the output
// byte-identical to a serial execution:
//
//   - seeds are assigned up front, before any worker starts, using the
//     exact serial rule (per-cell base seed + 1..n per repeat);
//   - results land in a pre-sized slice at their input index, so report
//     rows are formatted in input order regardless of completion order;
//   - each VideoRun owns its device, clock and RNG, so runs share no
//     state (the -race tests in exec_test.go hold the executor to it).

// ProgressEvent describes executor progress within one batch of runs.
// Events fire when a run is handed to a worker and when it completes.
type ProgressEvent struct {
	// Started counts runs handed to workers so far.
	Started int
	// Done counts runs completed so far.
	Done int
	// Total is the batch size.
	Total int
}

// Workers resolves the worker-pool size: Options.Parallel when set,
// otherwise GOMAXPROCS.
func (o Options) Workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runSafe is Run behind a panic barrier: a run that panics yields a
// Result marked Failed with the panic value, instead of taking down
// the whole grid (and, in the pool, the process — a panic in a worker
// goroutine is otherwise unrecoverable). Results stay input-ordered,
// so parallel output remains byte-identical to serial even when some
// runs fail.
func runSafe(cfg VideoRun) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{Failed: true, FailReason: fmt.Sprintf("panic: %v", r)}
		}
	}()
	return Run(cfg)
}

// runJobs executes the fully-seeded runs across the worker pool and
// returns results in input order. With one worker (or one job) it
// degenerates to the plain serial loop.
func runJobs(o Options, jobs []VideoRun) []Result {
	for i := range jobs {
		if o.Telemetry != nil && jobs[i].Telemetry == nil {
			jobs[i].Telemetry = o.Telemetry
		}
		if o.Faults != nil && jobs[i].Faults == nil {
			jobs[i].Faults = o.Faults
		}
		if o.Deadline > 0 && jobs[i].Deadline == 0 {
			jobs[i].Deadline = o.Deadline
		}
		if o.Digest {
			jobs[i].Digest = true
		}
	}
	results := make([]Result, len(jobs))
	workers := o.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var mu sync.Mutex
	started, done := 0, 0
	emit := func() {
		if o.Progress != nil {
			o.Progress(ProgressEvent{Started: started, Done: done, Total: len(jobs)})
		}
	}
	deliver := func(i int, r Result) {
		if o.OnTelemetry != nil && r.Telemetry != nil {
			o.OnTelemetry(i, r.Telemetry)
		}
	}

	if workers <= 1 {
		for i, cfg := range jobs {
			started++
			emit()
			results[i] = runSafe(cfg)
			done++
			emit()
			deliver(i, results[i])
		}
		return results
	}

	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				mu.Lock()
				started++
				emit()
				mu.Unlock()
				results[i] = runSafe(jobs[i])
				mu.Lock()
				done++
				emit()
				deliver(i, results[i])
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return results
}

// RepeatParallel is Repeat across the worker pool: n runs seeded
// baseSeed+1..baseSeed+n, results in seed order. The output is
// byte-identical to Repeat for the same arguments.
func RepeatParallel(o Options, cfg VideoRun, n int, baseSeed int64) []Result {
	jobs := make([]VideoRun, n)
	for i := range jobs {
		c := cfg
		//coalvet:allow seedlane documented repeat contract: seeds base+1..base+n, byte-identical to serial Repeat, pinned by digest goldens
		c.Seed = baseSeed + int64(i) + 1
		jobs[i] = c
	}
	return runJobs(o, jobs)
}

// RunGrid executes o.Runs repeats of every cell across the worker pool
// and returns results grouped per cell, in cell order. Each cell's
// repeats are seeded CellSeed(o.Seed, cell)+1..+o.Runs — the serial
// assignment rule applied to a per-cell base — so cells are mutually
// independent yet individually reproducible, and parallel output is
// byte-identical to serial.
func RunGrid(o Options, cells []VideoRun) [][]Result {
	o.applyDefaults()
	jobs := make([]VideoRun, 0, len(cells)*o.Runs)
	for _, cell := range cells {
		base := CellSeed(o.Seed, cell)
		for i := 0; i < o.Runs; i++ {
			c := cell
			//coalvet:allow seedlane within-cell repeats off an FNV-derived CellSeed base; the serial rule is pinned by digest goldens
			c.Seed = base + int64(i) + 1
			jobs = append(jobs, c)
		}
	}
	flat := runJobs(o, jobs)
	out := make([][]Result, len(cells))
	for i := range cells {
		out[i] = flat[i*o.Runs : (i+1)*o.Runs]
	}
	return out
}

// CellSeed derives the base seed for one grid cell: a stable FNV-1a
// hash of the cell's identifying conditions (device, client, video,
// resolution, frame rate, pressure state, organic-app count, ladder)
// folded into the experiment seed. Before this derivation every cell of
// a grid replayed the identical baseSeed+1..+n sequence, making cells
// cross-correlated; hashing the conditions gives each cell its own seed
// lane while cells that share all conditions (e.g. an ablation's
// on/off variants, which differ only in device options) stay paired for
// low-variance A/B comparison.
func CellSeed(base int64, cell VideoRun) int64 {
	cell.applyDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|%d|%d|%d|%v",
		cell.Profile.Name, cell.Client.Name, cell.Video.Title, cell.Video.Genre,
		cell.Resolution, cell.FPS, cell.Pressure, cell.OrganicApps, cell.FPSOptions)
	return base + int64(h.Sum64()&0x7fffffff)
}

// Unreached counts runs whose target pressure regime was never
// established before PressureTimeout. Averaging such runs into drop or
// crash statistics silently dilutes the measurement, so report rows
// carry an annotation whenever the count is non-zero (see regimeNote).
// Failed runs are skipped — they never got far enough for the regime
// question to be meaningful, and Failures covers them.
func Unreached(results []Result) int {
	n := 0
	for _, r := range results {
		if !r.Failed && !r.PressureReached {
			n++
		}
	}
	return n
}

// Failures counts runs the executor marked Failed (panic or deadline).
func Failures(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Failed {
			n++
		}
	}
	return n
}

// regimeNote annotates a report row when some of its runs never reached
// the target pressure regime — or failed outright — so a mis-calibrated
// regime or a crashed/wedged run cannot masquerade as a clean
// measurement. (Folding failures in here keeps every existing report
// row honest without touching its call site.)
func regimeNote(results []Result) string {
	note := ""
	if u := Unreached(results); u > 0 {
		note += fmt.Sprintf("  [%d/%d runs never reached target regime]", u, len(results))
	}
	note += failNote(results)
	return note
}

// failNote annotates a report row with its failed-run count and the
// first failure's reason.
func failNote(results []Result) string {
	f := Failures(results)
	if f == 0 {
		return ""
	}
	reason := ""
	for _, r := range results {
		if r.Failed {
			reason = r.FailReason
			break
		}
	}
	return fmt.Sprintf("  [%d/%d runs failed: %s]", f, len(results), reason)
}
