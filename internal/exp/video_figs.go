package exp

import (
	"fmt"
	"math/rand"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/player"
	"coalqoe/internal/plot"
	"coalqoe/internal/proc"
	"coalqoe/internal/qoe"
)

// pressureStates are the paper's §4.3 experimental conditions.
var pressureStates = []proc.Level{proc.Normal, proc.Moderate, proc.Critical}

// dropGrid runs the res × fps × pressure grid of Figures 9/11 on one
// device and reports mean effective drop rates with 95% CIs. The whole
// grid (cells × repeats) executes on the parallel run executor.
func dropGrid(o Options, profile device.Profile, client player.ClientProfile, resolutions []dash.Resolution, id, title string) Report {
	r := Report{ID: id, Title: title}
	r.Addf("%-6s %-4s %-9s %18s %9s", "res", "fps", "state", "drops (mean±ci)", "crashes")
	type rowKey struct {
		res   dash.Resolution
		fps   int
		state proc.Level
	}
	var rows []rowKey
	var cells []VideoRun
	for _, res := range resolutions {
		for _, fps := range []int{30, 60} {
			for _, state := range pressureStates {
				rows = append(rows, rowKey{res, fps, state})
				cells = append(cells, VideoRun{
					Profile:    profile,
					Client:     client,
					Video:      o.video(dash.Travel),
					Resolution: res,
					FPS:        fps,
					Pressure:   state,
				})
			}
		}
	}
	grid := RunGrid(o, cells)
	for i, k := range rows {
		results := grid[i]
		r.Addf("%-6s %-4d %-9s %14s%% %8.0f%%%s",
			k.res, k.fps, k.state, DropStats(results), CrashRate(results), regimeNote(results))
	}
	return r
}

// crashTable reports Tables 2/3: crash rates per config and state.
func crashTable(o Options, profile device.Profile, configs [][2]interface{}, id, title string) Report {
	r := Report{ID: id, Title: title}
	header := fmt.Sprintf("%-10s", "state")
	for _, c := range configs {
		header += fmt.Sprintf(" %7s", fmt.Sprintf("%d@%v", c[1], c[0]))
	}
	r.Lines = append(r.Lines, header)
	var cells []VideoRun
	for _, state := range pressureStates {
		for _, c := range configs {
			cells = append(cells, VideoRun{
				Profile:    profile,
				Video:      o.video(dash.Travel),
				Resolution: c[0].(dash.Resolution),
				FPS:        c[1].(int),
				Pressure:   state,
			})
		}
	}
	grid := RunGrid(o, cells)
	for si, state := range pressureStates {
		line := fmt.Sprintf("%-10s", state)
		unreached, total := 0, 0
		for ci := range configs {
			results := grid[si*len(configs)+ci]
			unreached += Unreached(results)
			total += len(results)
			line += fmt.Sprintf(" %6.0f%%", CrashRate(results))
		}
		if unreached > 0 {
			line += fmt.Sprintf("  [%d/%d runs never reached target regime]", unreached, total)
		}
		r.Lines = append(r.Lines, line)
	}
	return r
}

func init() {
	register("fig8", "video client PSS by resolution and frame rate (Nexus 5)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "fig8", Title: "Firefox PSS at no pressure (Nexus 5), MiB"}
		resolutions := []dash.Resolution{dash.R240p, dash.R360p, dash.R480p, dash.R720p, dash.R1080p}
		r.Addf("%-6s %12s %12s", "res", "30 FPS", "60 FPS")
		var cells []VideoRun
		for _, res := range resolutions {
			for _, fps := range []int{30, 60} {
				cells = append(cells, VideoRun{
					Profile:    device.Nexus5,
					Video:      o.video(dash.Travel),
					Resolution: res,
					FPS:        fps,
					Pressure:   proc.Normal,
				})
			}
		}
		oc := o
		oc.Runs = 1
		grid := RunGrid(oc, cells)
		var pss30 []float64
		for i, res := range resolutions {
			p30 := grid[2*i][0].Metrics.PeakPSS.MiBf()
			p60 := grid[2*i+1][0].Metrics.PeakPSS.MiBf()
			pss30 = append(pss30, p30)
			r.Addf("%-6s %10.0fMiB %10.0fMiB", res, p30, p60)
		}
		r.Addf("PSS growth 240p->1080p at 30FPS: +%.0f MiB (paper: ~+125 MiB)", pss30[len(pss30)-1]-pss30[0])
		return r
	})

	register("fig9", "frame drops on the Nokia 1 across qualities and states", func(o Options) Report {
		o.applyDefaults()
		res := []dash.Resolution{dash.R240p, dash.R360p, dash.R480p, dash.R720p, dash.R1080p}
		if o.Quick {
			res = []dash.Resolution{dash.R480p, dash.R720p, dash.R1080p}
		}
		return dropGrid(o, device.Nokia1, player.Firefox, res, "fig9",
			"Mean frame drops, Nokia 1 (1 GB), Firefox")
	})

	register("fig10", "differential MOS survey (99 participants)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "fig10", Title: "DMOS: Normal vs Moderate at 240p60 (Nokia 1)"}
		oc := o
		oc.Runs = 1
		grid := RunGrid(oc, []VideoRun{
			{Resolution: dash.R240p, FPS: 60, Pressure: proc.Normal, Video: o.video(dash.Travel)},
			{Resolution: dash.R240p, FPS: 60, Pressure: proc.Moderate, Video: o.video(dash.Travel)},
		})
		normal, moderate := grid[0][0], grid[1][0]
		refDrop := normal.Metrics.EffectiveDropRate
		testDrop := moderate.Metrics.EffectiveDropRate
		r.Addf("measured clip drops: reference %.1f%% (paper: 3%%), test %.1f%% (paper: 35%%)", refDrop, testDrop)
		rng := rand.New(rand.NewSource(o.Seed + 99))
		r.Addf("")
		r.Addf("survey at the paper's operating points (3%% vs 35%%):")
		hist := qoe.DefaultDMOS.Survey(99, 3, 35, rng)
		for s := 1; s <= 5; s++ {
			r.Addf("  DMOS %d: %2d participants", s, hist[s])
		}
		r.Addf("  rating 1-2: %d (paper: 60)   mean DMOS: %.2f", hist[1]+hist[2], qoe.MeanScore(hist))
		r.Addf("")
		r.Addf("survey at our measured operating points (%.0f%% vs %.0f%%):", refDrop, testDrop)
		hist2 := qoe.DefaultDMOS.Survey(99, refDrop, testDrop, rng)
		for s := 1; s <= 5; s++ {
			r.Addf("  DMOS %d: %2d participants", s, hist2[s])
		}
		r.Addf("  rating 1-2: %d   mean DMOS: %.2f", hist2[1]+hist2[2], qoe.MeanScore(hist2))
		return r
	})

	register("fig11", "frame drops on the Nexus 5 across qualities and states", func(o Options) Report {
		o.applyDefaults()
		res := []dash.Resolution{dash.R240p, dash.R360p, dash.R480p, dash.R720p, dash.R1080p, dash.R1440p}
		if o.Quick {
			res = []dash.Resolution{dash.R480p, dash.R1080p}
		}
		return dropGrid(o, device.Nexus5, player.Firefox, res, "fig11",
			"Mean frame drops, Nexus 5 (2 GB), Firefox")
	})

	register("fig12", "frame drops across video genres (Nexus 5)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "fig12", Title: "Drops per genre, Nexus 5"}
		res := []dash.Resolution{dash.R480p, dash.R720p, dash.R1080p}
		if o.Quick {
			res = []dash.Resolution{dash.R1080p}
		}
		r.Addf("%-8s %-6s %-4s %-9s %18s", "genre", "res", "fps", "state", "drops (mean±ci)")
		type rowKey struct {
			genre dash.Genre
			res   dash.Resolution
			fps   int
			state proc.Level
		}
		var rows []rowKey
		var cells []VideoRun
		for _, g := range dash.Genres {
			for _, rs := range res {
				for _, fps := range []int{30, 60} {
					for _, state := range []proc.Level{proc.Normal, proc.Moderate} {
						rows = append(rows, rowKey{g, rs, fps, state})
						cells = append(cells, VideoRun{
							Profile:    device.Nexus5,
							Video:      o.video(g),
							Resolution: rs,
							FPS:        fps,
							Pressure:   state,
						})
					}
				}
			}
		}
		grid := RunGrid(o, cells)
		for i, k := range rows {
			r.Addf("%-8s %-6s %-4d %-9s %14s%%%s", k.genre, k.res, k.fps, k.state, DropStats(grid[i]), regimeNote(grid[i]))
		}
		return r
	})

	register("fig16", "frame-rate sweep per resolution under Moderate pressure (Nokia 1)", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "fig16", Title: "Rendered FPS when varying encoded frame rate (Nokia 1, Moderate)"}
		r.Addf("%-6s %-4s %16s %16s", "res", "fps", "drops", "rendered FPS")
		type rowKey struct {
			res dash.Resolution
			fps int
		}
		var rows []rowKey
		var cells []VideoRun
		for _, res := range []dash.Resolution{dash.R480p, dash.R720p, dash.R1080p} {
			for _, fps := range []int{24, 48, 60} {
				rows = append(rows, rowKey{res, fps})
				cells = append(cells, VideoRun{
					Profile:    device.Nokia1,
					Video:      o.video(dash.Travel),
					Resolution: res,
					FPS:        fps,
					Pressure:   proc.Moderate,
				})
			}
		}
		grid := RunGrid(o, cells)
		for i, k := range rows {
			drops := DropStats(grid[i])
			rendered := float64(k.fps) * (1 - drops.Mean/100)
			r.Addf("%-6s %-4d %14s%% %13.1f fps%s", k.res, k.fps, drops, rendered, regimeNote(grid[i]))
		}
		r.Addf("(paper: at 1080p, 60 FPS renders ~0 while 24 FPS recovers to ~full rate)")
		return r
	})

	register("fig17", "mid-session frame-rate switching under Moderate pressure", func(o Options) Report {
		o.applyDefaults()
		r := Report{ID: "fig17", Title: "Rendered FPS while switching 60 -> 24 -> 48 FPS (Nokia 1, 480p, organic pressure)"}
		video := o.video(dash.Travel)
		if !o.Quick {
			video.Duration = 2 * time.Minute
		}
		third := video.Duration / 3
		result := Run(VideoRun{
			Seed:        o.Seed + 1,
			Profile:     device.Nokia1,
			Video:       video,
			Resolution:  dash.R480p,
			FPS:         60,
			OrganicApps: 8,
			OnSession: func(s *player.Session, d *device.Device) {
				m := s.Manifest()
				d.Clock.Schedule(third, func() {
					if rung, ok := m.Rung(dash.R480p, 24); ok {
						s.SwitchRung(rung)
					}
				})
				d.Clock.Schedule(2*third, func() {
					if rung, ok := m.Rung(dash.R480p, 48); ok {
						s.SwitchRung(rung)
					}
				})
			},
		})
		r.Addf("segment 1 (60 FPS), 2 (24 FPS), 3 (48 FPS); switches at %v and %v", third, 2*third)
		r.Addf("fps %s", plot.SparkFixed(result.Metrics.FPSTimeline, 60))
		for i, f := range result.Metrics.FPSTimeline {
			r.Addf("t=%3ds rendered %4.0f fps", i, f)
		}
		for _, sw := range result.Metrics.Switches {
			r.Addf("switched %s -> %s at %v", sw.From, sw.To, sw.At.Round(time.Second))
		}
		return r
	})

	register("fig18", "ExoPlayer drops and crash rate (Nexus 5)", func(o Options) Report {
		o.applyDefaults()
		res := []dash.Resolution{dash.R480p, dash.R720p, dash.R1080p}
		return dropGrid(o, device.Nexus5, player.ExoPlayer, res, "fig18",
			"Mean frame drops, Nexus 5, ExoPlayer (native app)")
	})

	register("fig19", "Chrome drops and crash rate (Nexus 5)", func(o Options) Report {
		o.applyDefaults()
		res := []dash.Resolution{dash.R480p, dash.R720p, dash.R1080p}
		return dropGrid(o, device.Nexus5, player.Chrome, res, "fig19",
			"Mean frame drops, Nexus 5, Chrome")
	})

	register("tab2", "video client crash rates on the Nokia 1", func(o Options) Report {
		o.applyDefaults()
		return crashTable(o, device.Nokia1, [][2]interface{}{
			{dash.R480p, 30}, {dash.R720p, 30}, {dash.R480p, 60}, {dash.R720p, 60},
		}, "tab2", "Crash rate per state, Nokia 1 (paper Moderate: 40/100/40/100, Critical: all 100)")
	})

	register("tab3", "video client crash rates on the Nexus 5", func(o Options) Report {
		o.applyDefaults()
		return crashTable(o, device.Nexus5, [][2]interface{}{
			{dash.R720p, 30}, {dash.R1080p, 30}, {dash.R480p, 60}, {dash.R720p, 60},
		}, "tab3", "Crash rate per state, Nexus 5 (paper Moderate: 10/100/0/100, Critical: 100/100/70/100)")
	})
}
