package exp_test

import (
	"testing"

	"coalqoe/internal/kernbench"
)

// Wrappers over the shared end-to-end suite bodies
// (internal/kernbench), so `go test -bench . ./internal/exp` measures
// exactly what cmd/coalbench records in BENCH_5.json. The external
// test package breaks the exp ↔ kernbench cycle.

func BenchmarkVideoRun60s(b *testing.B)   { kernbench.VideoRun60s(b) }
func BenchmarkGridFig9Quick(b *testing.B) { kernbench.GridFig9Quick(b) }
