package exp

import (
	"strings"
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must have a regenerator.
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"tab1", "tab2", "tab3", "tab4", "tab5",
		// extensions and ablations
		"memabr", "ladder", "abl-zram", "abl-mmcqd", "abl-cpu",
		"abl-kswapd-pin", "abl-order",
		// robustness
		"faults_recovery",
	}
	for _, id := range want {
		if _, err := Find(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find(nope) should fail")
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].ID < all[i-1].ID {
			t.Fatal("All() not sorted")
		}
	}
}

func quickVideo() dash.Video {
	v := dash.TestVideos[0]
	v.Duration = 20 * time.Second
	return v
}

func TestRunNormalSession(t *testing.T) {
	res := Run(VideoRun{
		Seed:       1,
		Profile:    device.Nexus6P,
		Video:      quickVideo(),
		Resolution: dash.R480p,
		FPS:        30,
		Pressure:   proc.Normal,
	})
	if !res.PressureReached {
		t.Error("Normal pressure trivially reached")
	}
	if res.Metrics.Crashed {
		t.Error("crashed at Normal on a 3 GB device")
	}
	if res.Metrics.FramesRendered == 0 {
		t.Error("nothing rendered")
	}
	if res.Device != nil || res.Session != nil {
		t.Error("device/session retained without KeepDevice")
	}
	kept := Run(VideoRun{
		Seed:       1,
		Profile:    device.Nexus6P,
		Video:      quickVideo(),
		Resolution: dash.R480p,
		FPS:        30,
		Pressure:   proc.Normal,
		KeepDevice: true,
	})
	if kept.Device == nil || kept.Session == nil {
		t.Error("missing device/session handles with KeepDevice")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	res := Run(VideoRun{Seed: 2, Video: quickVideo()})
	if res.Metrics.Device != device.Nokia1.Name {
		t.Errorf("default device = %q", res.Metrics.Device)
	}
	if res.Metrics.Client != player.Firefox.Name {
		t.Errorf("default client = %q", res.Metrics.Client)
	}
}

func TestRepeatSeedsDiffer(t *testing.T) {
	results := Repeat(VideoRun{
		Profile:    device.Nokia1,
		Video:      quickVideo(),
		Resolution: dash.R1080p,
		FPS:        60,
	}, 3, 0)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// 1080p60 on a Nokia 1 drops heavily with per-run jitter: at least
	// two seeds should disagree.
	a, b, c := results[0].Metrics.FramesDropped, results[1].Metrics.FramesDropped, results[2].Metrics.FramesDropped
	if a == b && b == c {
		t.Errorf("all repeats identical (%d drops): seeds not varied", a)
	}
	s := DropStats(results)
	if s.N != 3 || s.Mean <= 0 {
		t.Errorf("DropStats = %+v", s)
	}
}

func TestCrashRateMath(t *testing.T) {
	results := []Result{
		{Metrics: player.Metrics{Crashed: true}},
		{Metrics: player.Metrics{}},
		{Metrics: player.Metrics{Crashed: true}},
		{Metrics: player.Metrics{}},
	}
	if got := CrashRate(results); got != 50 {
		t.Errorf("CrashRate = %v, want 50", got)
	}
	if CrashRate(nil) != 0 {
		t.Error("CrashRate(nil) != 0")
	}
}

func TestQuickExperimentProducesReport(t *testing.T) {
	e, err := Find("fig13")
	if err != nil {
		t.Fatal(err)
	}
	rep := e.Run(Options{Quick: true, Seed: 3})
	if len(rep.Lines) == 0 {
		t.Fatal("empty report")
	}
	text := rep.String()
	for _, needle := range []string{"Normal", "Moderate", "Sleeping", "Running"} {
		if !strings.Contains(text, needle) {
			t.Errorf("fig13 report missing %q:\n%s", needle, text)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{ID: "x", Title: "t"}
	r.Addf("line %d", 1)
	out := r.String()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "line 1") {
		t.Errorf("report format: %q", out)
	}
}

func TestOrganicPressureRun(t *testing.T) {
	res := Run(VideoRun{
		Seed:        4,
		Video:       quickVideo(),
		Resolution:  dash.R480p,
		FPS:         60,
		OrganicApps: 8,
		KeepDevice:  true,
	})
	if !res.PressureReached {
		t.Error("organic runs count as reached")
	}
	if res.Device.Lmkd.KillCount == 0 {
		t.Error("8 background apps on a Nokia 1 caused no kills")
	}
}
