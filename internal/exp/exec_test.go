package exp

import (
	"reflect"
	"sync"
	"testing"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/proc"
	"coalqoe/internal/study"
)

// TestRepeatParallelMatchesRepeat holds the executor to its contract:
// identical seed assignment and result ordering, so the parallel path
// is byte-identical to the serial reference.
func TestRepeatParallelMatchesRepeat(t *testing.T) {
	cfg := VideoRun{
		Profile:    device.Nokia1,
		Video:      quickVideo(),
		Resolution: dash.R720p,
		FPS:        60,
		Pressure:   proc.Moderate,
	}
	serial := Repeat(cfg, 4, 11)
	parallel := RepeatParallel(Options{Parallel: 4}, cfg, 4, 11)
	if len(serial) != len(parallel) {
		t.Fatalf("got %d parallel results, want %d", len(parallel), len(serial))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Metrics, parallel[i].Metrics) {
			t.Errorf("run %d: parallel metrics diverge from serial\nserial:   %+v\nparallel: %+v",
				i, serial[i].Metrics, parallel[i].Metrics)
		}
		if serial[i].PressureReached != parallel[i].PressureReached {
			t.Errorf("run %d: PressureReached diverges", i)
		}
	}
}

// TestParallelExperimentByteIdentical replays a full registered grid
// experiment serially and across 8 workers and compares the rendered
// reports byte for byte.
func TestParallelExperimentByteIdentical(t *testing.T) {
	e, err := Find("tab2")
	if err != nil {
		t.Fatal(err)
	}
	serial := e.Run(Options{Quick: true, Seed: 7, Parallel: 1}).String()
	parallel := e.Run(Options{Quick: true, Seed: 7, Parallel: 8}).String()
	if serial != parallel {
		t.Errorf("parallel report differs from serial\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

// TestRunGridSeedLanes pins the per-cell seeding rule: distinct cells
// get independent seed lanes, identical conditions stay paired, and
// repeats within a cell follow the serial base+1..+n assignment.
func TestRunGridSeedLanes(t *testing.T) {
	a := VideoRun{Resolution: dash.R480p, FPS: 30, Pressure: proc.Moderate}
	b := VideoRun{Resolution: dash.R480p, FPS: 60, Pressure: proc.Moderate}
	c := VideoRun{Resolution: dash.R480p, FPS: 30, Pressure: proc.Critical}
	if CellSeed(0, a) == CellSeed(0, b) || CellSeed(0, a) == CellSeed(0, c) {
		t.Error("distinct cells share a seed lane")
	}
	if CellSeed(0, a) != CellSeed(0, a) {
		t.Error("CellSeed is not stable")
	}
	// Cells differing only in non-identifying knobs (device options,
	// session hooks, retention) stay paired for A/B comparison.
	paired := a
	paired.DeviceOpts = device.Options{DisableZRAM: true}
	paired.KeepDevice = true
	if CellSeed(0, a) != CellSeed(0, paired) {
		t.Error("ablation variants should share a seed lane")
	}
	if CellSeed(5, a) != CellSeed(0, a)+5 {
		t.Error("base seed must fold in additively")
	}
}

// TestRunGridShape checks grouping and the executor's progress events.
func TestRunGridShape(t *testing.T) {
	var mu sync.Mutex
	var last ProgressEvent
	events := 0
	o := Options{Runs: 2, Parallel: 3, Progress: func(ev ProgressEvent) {
		mu.Lock()
		last = ev
		events++
		mu.Unlock()
	}}
	cells := []VideoRun{
		{Video: quickVideo(), Resolution: dash.R240p, FPS: 30},
		{Video: quickVideo(), Resolution: dash.R360p, FPS: 30},
		{Video: quickVideo(), Resolution: dash.R480p, FPS: 30},
	}
	grid := RunGrid(o, cells)
	if len(grid) != 3 {
		t.Fatalf("got %d cells, want 3", len(grid))
	}
	for i, results := range grid {
		if len(results) != 2 {
			t.Fatalf("cell %d: got %d repeats, want 2", i, len(results))
		}
		for _, res := range results {
			if res.Metrics.FramesRendered == 0 {
				t.Errorf("cell %d produced an empty run", i)
			}
			if res.Device != nil {
				t.Errorf("cell %d retained a device without KeepDevice", i)
			}
		}
	}
	if events != 12 {
		t.Errorf("got %d progress events, want 12 (6 starts + 6 completions)", events)
	}
	if last.Done != 6 || last.Total != 6 {
		t.Errorf("final progress event = %+v, want Done=6 Total=6", last)
	}
}

// TestUnreached covers the regime-accounting bugfix: runs that never
// reach the target pressure regime are counted and annotated instead of
// silently averaged in.
func TestUnreached(t *testing.T) {
	results := []Result{
		{PressureReached: true},
		{PressureReached: false},
		{PressureReached: false},
	}
	if got := Unreached(results); got != 2 {
		t.Errorf("Unreached = %d, want 2", got)
	}
	if note := regimeNote(results); note != "  [2/3 runs never reached target regime]" {
		t.Errorf("regimeNote = %q", note)
	}
	if note := regimeNote(results[:1]); note != "" {
		t.Errorf("regimeNote on clean results = %q, want empty", note)
	}
}

// TestConcurrentRunAndFleet races a controlled video run against the §3
// fleet simulation, which has its own internal worker fan-out. Run with
// -race this verifies the two share no hidden state.
func TestConcurrentRunAndFleet(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		study.RunFleet(8, 42)
	}()
	go func() {
		defer wg.Done()
		RepeatParallel(Options{Parallel: 2}, VideoRun{
			Video:      quickVideo(),
			Resolution: dash.R480p,
			FPS:        60,
			Pressure:   proc.Moderate,
		}, 2, 1)
	}()
	wg.Wait()
}
