// Package mempress applies memory pressure to a simulated device, the
// way the paper does it (§4.1): a custom application — a port of the
// MP Simulator app from Qazi et al. [34] — "allocates memory until a
// target memory pressure regime is achieved", plus an "organic" mode
// that opens background applications like the §4.3/§5 experiments.
package mempress

import (
	"fmt"
	"time"

	"coalqoe/internal/device"
	"coalqoe/internal/proc"
	"coalqoe/internal/units"
)

// Applicator grows a balloon allocation until the device reports the
// target pressure level, then holds it — the MP Simulator behavior.
type Applicator struct {
	dev     *device.Device
	target  proc.Level
	balloon *proc.Process
	reached bool
	stopped bool

	// StepBytes is allocated per growth step (default 8 MiB).
	StepBytes units.Bytes
	// StepInterval is the growth cadence (default 50ms).
	StepInterval time.Duration
	// TouchBytesPerSec is how fast the tool walks its allocation while
	// holding (default 48 MiB/s). Touching compressed pages swaps them
	// back in from zRAM, which keeps the reclaim path permanently busy
	// — without this, the kernel would quietly compress the whole
	// balloon and the pressure would evaporate.
	TouchBytesPerSec units.Bytes

	onReached func()
}

// Apply starts the balloon toward the target level. onReached (may be
// nil) fires once when the device first reports a level at or above the
// target. Applying Normal returns an inert applicator.
func Apply(d *device.Device, target proc.Level, onReached func()) *Applicator {
	a := &Applicator{
		dev:              d,
		target:           target,
		onReached:        onReached,
		StepBytes:        8 * units.MiB,
		StepInterval:     50 * time.Millisecond,
		TouchBytesPerSec: 120 * units.MiB,
	}
	if target == proc.Normal {
		a.reached = true
		if onReached != nil {
			// Fire asynchronously for symmetry with the pressured path.
			d.Clock.Schedule(0, onReached)
		}
		return a
	}
	// The balloon runs as a privileged process (the real tool needs a
	// rooted device): lmkd must squeeze everyone else, not the tool.
	a.balloon = d.Table.Start(proc.Spec{
		Name:        "mpsim",
		Adj:         proc.AdjNative,
		HotAnonFrac: 0.7,
	})
	// The tool grows until the device reports the target level, then
	// holds. Android's re-caching of killed background apps (see
	// package device) decays the level as memory frees up, which
	// re-engages growth — the system settles into an oscillation
	// around genuine scarcity, the same repetition of pressure signals
	// the user study observes on real devices (§3, Figure 6).
	var step func()
	step = func() {
		if a.stopped || a.balloon.Dead() {
			return
		}
		if d.Table.Level() >= a.target {
			if !a.reached {
				a.reached = true
				if a.onReached != nil {
					a.onReached()
				}
			}
			// Hold: keep checking in case the level decays.
			d.Clock.Schedule(a.StepInterval*4, step)
			return
		}
		a.balloon.GrowAnon(a.StepBytes, func() {
			d.Clock.Schedule(a.StepInterval, step)
		})
	}
	d.Clock.Schedule(a.StepInterval, step)

	// Reallocation cycle: the tool periodically frees and re-allocates
	// a slice of the balloon (page-pool recycling in the real app).
	// The re-allocation bursts are what intermittently push the
	// allocator below the min watermark.
	d.Clock.Every(9*time.Second, func() {
		if a.stopped || a.balloon.Dead() || !a.reached {
			return
		}
		const slice = 32 * units.MiB
		a.balloon.ShrinkAnon(slice)
		d.Clock.Schedule(2*time.Second, func() {
			if !a.stopped && !a.balloon.Dead() {
				a.balloon.GrowAnon(slice, nil)
			}
		})
	})

	// Touch loop: walk the balloon so compressed pages swap back in.
	const touchInterval = 50 * time.Millisecond
	d.Clock.Every(touchInterval, func() {
		if a.stopped || a.balloon.Dead() {
			return
		}
		touch := units.PagesOf(units.Bytes(float64(a.TouchBytesPerSec) * touchInterval.Seconds()))
		compressed := d.Mem.AnonCompressedFraction()
		swapin := units.Pages(float64(touch) * compressed)
		if swapin <= 0 {
			return
		}
		got := d.Mem.SwapInAnon(swapin)
		if got > 0 {
			// Decompression costs CPU on the toucher's thread.
			a.balloon.Main().Enqueue(time.Duration(got)*8*time.Microsecond, nil)
			d.Kswapd.Kick()
		}
	})
	return a
}

// Reached reports whether the target level has been observed.
func (a *Applicator) Reached() bool { return a.reached }

// BalloonBytes returns the current balloon size.
func (a *Applicator) BalloonBytes() units.Bytes {
	if a.balloon == nil {
		return 0
	}
	return a.balloon.AnonPages().Bytes()
}

// Stop releases the balloon.
func (a *Applicator) Stop() {
	a.stopped = true
	if a.balloon != nil && !a.balloon.Dead() {
		a.dev.Table.Kill(a.balloon, "mpsim stop")
	}
}

// Spike launches a short-lived native allocation storm — the "a system
// daemon suddenly needs memory" event of a fault plan (see
// internal/faults): a burst that ramps quickly to bytes with a hot
// working set, forcing reclaim and — if the spike is large enough —
// lmkd kills, then exits after hold. It runs at native adj (like the
// real media/camera servers, whose bursts are the classic trigger):
// lmkd cannot reclaim the spike itself, so sustained pressure resolves
// by killing apps — ultimately the foreground client. Unlike the
// Applicator balloon it is not feedback-controlled: it models a burst,
// not a regime.
func Spike(d *device.Device, name string, bytes units.Bytes, hold time.Duration) *proc.Process {
	ramp := 2 * time.Second
	if hold < 2*ramp {
		ramp = hold / 2
	}
	p := d.Table.Start(proc.Spec{
		Name:        name,
		Adj:         proc.AdjNative,
		AnonBytes:   bytes,
		HotAnonFrac: 0.9,
		RampTime:    ramp,
	})
	d.Clock.Schedule(hold, func() {
		if !p.Dead() {
			d.Table.Kill(p, "mempress spike done")
		}
	})
	return p
}

// BackgroundApp describes one organically opened app.
type BackgroundApp struct {
	Name string
	Anon units.Bytes
	File units.Bytes
}

// TypicalApps returns n apps sized like popular Play Store free apps
// (social/media apps with 60–130 MiB heaps), cycling a fixed set so
// runs are deterministic.
func TypicalApps(n int) []BackgroundApp {
	base := []BackgroundApp{
		{"social1", 120 * units.MiB, 40 * units.MiB},
		{"messaging1", 70 * units.MiB, 25 * units.MiB},
		{"shopping1", 90 * units.MiB, 30 * units.MiB},
		{"social2", 130 * units.MiB, 45 * units.MiB},
		{"browser2", 110 * units.MiB, 35 * units.MiB},
		{"music1", 60 * units.MiB, 20 * units.MiB},
		{"maps1", 100 * units.MiB, 35 * units.MiB},
		{"email1", 65 * units.MiB, 20 * units.MiB},
	}
	out := make([]BackgroundApp, n)
	for i := range out {
		app := base[i%len(base)]
		if i >= len(base) {
			app.Name = fmt.Sprintf("%s-%d", app.Name, i/len(base))
		}
		out[i] = app
	}
	return out
}

// OpenBackgroundApps launches the given apps one by one, spaced by
// interval, reproducing the paper's organic-pressure methodology
// ("we opened 8 background applications before opening the browser").
// The returned processes may be killed by lmkd as pressure mounts.
func OpenBackgroundApps(d *device.Device, apps []BackgroundApp, interval time.Duration) []*proc.Process {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	out := make([]*proc.Process, 0, len(apps))
	for i, app := range apps {
		app := app
		d.Clock.Schedule(time.Duration(i)*interval, func() {
			p := d.Table.Start(proc.Spec{
				Name:        app.Name,
				Adj:         proc.AdjCached + 50,
				Cached:      true,
				AnonBytes:   app.Anon,
				FileWSBytes: app.File,
				HotAnonFrac: 0.6,
				RampTime:    3 * time.Second,
				// Just-opened apps keep their working set warm: this
				// is what makes organic pressure bite (§4.3).
				WarmFor: 2 * time.Minute,
			})
			out = append(out, p)
		})
	}
	return out
}
