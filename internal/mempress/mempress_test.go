package mempress

import (
	"testing"
	"time"

	"coalqoe/internal/device"
	"coalqoe/internal/proc"
)

func TestApplyNormalIsInert(t *testing.T) {
	d := device.New(1, device.Nokia1, device.Options{})
	d.Settle(2 * time.Second)
	fired := false
	a := Apply(d, proc.Normal, func() { fired = true })
	d.Settle(time.Second)
	if !fired {
		t.Error("onReached never fired for Normal")
	}
	if a.BalloonBytes() != 0 {
		t.Error("Normal applicator allocated memory")
	}
}

func TestReachesModerate(t *testing.T) {
	d := device.New(1, device.Nokia1, device.Options{})
	d.Settle(2 * time.Second)
	var reachedAt time.Duration
	Apply(d, proc.Moderate, func() { reachedAt = d.Clock.Now() })
	d.Settle(120 * time.Second)
	if reachedAt == 0 {
		t.Fatalf("never reached Moderate: level=%v P=%.0f free=%s balloon growing",
			d.Table.Level(), d.Mem.Pressure(), d.Mem.Free().Bytes())
	}
	if d.Table.Level() < proc.Moderate {
		t.Errorf("level decayed to %v after reaching Moderate", d.Table.Level())
	}
	if d.Lmkd.KillCount == 0 {
		t.Error("reaching Moderate should involve lmkd killing cached apps")
	}
}

func TestReachesCritical(t *testing.T) {
	d := device.New(1, device.Nokia1, device.Options{})
	d.Settle(2 * time.Second)
	var reachedAt time.Duration
	Apply(d, proc.Critical, func() { reachedAt = d.Clock.Now() })
	d.Settle(240 * time.Second)
	if reachedAt == 0 {
		t.Fatalf("never reached Critical: level=%v P=%.0f free=%s cached=%d",
			d.Table.Level(), d.Mem.Pressure(), d.Mem.Free().Bytes(), d.Table.CachedCount())
	}
	if got := d.Table.CachedCount(); got > d.Profile.Thresholds.Critical {
		t.Errorf("cached count = %d at Critical, want <= %d", got, d.Profile.Thresholds.Critical)
	}
}

func TestStopReleasesBalloon(t *testing.T) {
	d := device.New(1, device.Nokia1, device.Options{})
	d.Settle(2 * time.Second)
	a := Apply(d, proc.Moderate, nil)
	d.Settle(120 * time.Second)
	if a.BalloonBytes() == 0 {
		t.Fatal("balloon empty")
	}
	free := d.Mem.Free()
	a.Stop()
	d.Settle(time.Second)
	if d.Mem.Free() <= free {
		t.Error("stopping the balloon did not free memory")
	}
}

func TestTypicalApps(t *testing.T) {
	apps := TypicalApps(10)
	if len(apps) != 10 {
		t.Fatalf("got %d apps", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Anon <= 0 {
			t.Errorf("app %q has no heap", a.Name)
		}
	}
}

func TestOrganicPressureKillsApps(t *testing.T) {
	d := device.New(1, device.Nokia1, device.Options{})
	d.Settle(2 * time.Second)
	OpenBackgroundApps(d, TypicalApps(8), 500*time.Millisecond)
	d.Settle(60 * time.Second)
	if d.Lmkd.KillCount == 0 {
		t.Errorf("8 big apps on a 1 GiB device caused no kills (P=%.0f free=%s)",
			d.Mem.Pressure(), d.Mem.Free().Bytes())
	}
}
