package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of single sample should be 0")
	}
	// Known value: sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(got, 2.13809, 1e-4) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
}

func TestCI95(t *testing.T) {
	// Five samples (paper's run count): df=4, t=2.776.
	xs := []float64{10, 12, 11, 13, 9}
	want := 2.776 * StdDev(xs) / math.Sqrt(5)
	if got := CI95(xs); !almost(got, want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of single sample should be 0")
	}
}

func TestCI95LargeNUsesNormal(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	want := 1.96 * StdDev(xs) / 10
	if got := CI95(xs); !almost(got, want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almost(got, cse.want, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := c.Quantile(1); got != 3 {
		t.Errorf("Quantile(1) = %v, want 3", got)
	}
}

func TestCDFQuantileAtInverse(t *testing.T) {
	// Property: At(Quantile(q)) >= q for all q in (0, 1].
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	c := NewCDF(xs)
	for q := 0.01; q <= 1.0; q += 0.01 {
		if c.At(c.Quantile(q)) < q-1e-9 {
			t.Fatalf("At(Quantile(%v)) = %v < q", q, c.At(c.Quantile(q)))
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	xs, ps := c.Points()
	if !sort.Float64sAreSorted(xs) {
		t.Errorf("xs not sorted: %v", xs)
	}
	if ps[len(ps)-1] != 1 {
		t.Errorf("last p = %v, want 1", ps[len(ps)-1])
	}
}

func TestBoxPlot(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("unexpected summary: %+v", b)
	}
	if NewBoxPlot(nil).N != 0 {
		t.Error("empty boxplot should have N=0")
	}
}

func TestBoxPlotOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		b := NewBoxPlot(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	// -3 clamps into bin 0; 42 clamps into bin 4.
	if h.Counts[0] != 3 {
		t.Errorf("bin0 = %d, want 3 (0, 1.9, clamped -3)", h.Counts[0])
	}
	if h.Counts[4] != 2 {
		t.Errorf("bin4 = %d, want 2 (9.9, clamped 42)", h.Counts[4])
	}
	if !almost(h.Fraction(0), 3.0/7, 1e-9) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on hi<=lo")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestPctRatioClamp(t *testing.T) {
	if Pct(1, 4) != 25 {
		t.Error("Pct(1,4) != 25")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio(_, 0) != 0")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestSummarizeString(t *testing.T) {
	s := Summarize([]float64{10, 10, 10})
	if s.Mean != 10 || s.CI != 0 || s.N != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() != "10.0 ± 0.0" {
		t.Errorf("String = %q", s.String())
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); !almost(got, 2.5, 1e-9) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}
