// Streaming, mergeable summaries for fleet-scale aggregation.
//
// The §3 user study originally retained one DeviceLog (with its full
// 1 Hz sample trace) per participant; that caps the panel at whatever
// fits in memory. QuantileSketch is the replacement: each device folds
// its scalar observations in, the log is dropped, and per-shard
// sketches merge into one fleet-wide summary. The design contract,
// held by the law tests in sketch_test.go:
//
//   - Deterministic: the sketch state after observing a multiset of
//     values is independent of insertion and merge order, so serial,
//     sharded and checkpoint-resumed runs serialize byte-identically.
//   - Exact below ExactCap: while the total count is ≤ ExactCap the
//     sketch stores the raw values and Quantile/BoxPlot/CDFAt agree
//     exactly with stats.Percentile/NewBoxPlot/CDF.At, so small fleets
//     (the paper's 48 devices) reproduce the original figures.
//   - Bounded above ExactCap: the values collapse into NBins fixed
//     bins over [Lo, Hi); quantiles are then accurate to one bin width
//     ((Hi-Lo)/NBins, see MaxQuantileError), values outside the range
//     clamp into the edge bins, and memory stays O(NBins) forever.
//
// No float accumulators are carried across folds: counts are integers
// and derived statistics (mean, quantiles) are computed at query time
// from the canonical state, so float non-associativity cannot make a
// sharded run differ from a serial one.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// QuantileSketch is a deterministic, mergeable streaming quantile /
// histogram / CDF summary. The zero value is not usable; construct
// with NewQuantileSketch.
type QuantileSketch struct {
	lo, hi   float64
	nbins    int
	exactCap int

	n        int64
	min, max float64
	// exact holds the raw values while n ≤ exactCap (order arbitrary
	// between canonicalizations; sorted on demand). bins is non-nil
	// once collapsed; exactly one of the two is active.
	exact  []float64
	sorted bool
	bins   []int64
}

// NewQuantileSketch creates a sketch whose binned mode covers [lo, hi)
// with nbins bins and which stays exact up to exactCap values.
// exactCap 0 means collapse immediately (pure binned mode).
func NewQuantileSketch(lo, hi float64, nbins, exactCap int) *QuantileSketch {
	if nbins <= 0 || hi <= lo || exactCap < 0 {
		panic(fmt.Sprintf("stats: invalid sketch [%v,%v) nbins=%d exactCap=%d", lo, hi, nbins, exactCap))
	}
	return &QuantileSketch{lo: lo, hi: hi, nbins: nbins, exactCap: exactCap}
}

// Add folds one observation in. NaN is rejected (it has no place in a
// total order and would break canonical sorting).
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) {
		panic("stats: NaN added to QuantileSketch")
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	if s.bins != nil {
		s.bins[s.binOf(x)]++
		return
	}
	s.exact = append(s.exact, x)
	s.sorted = false
	if int64(len(s.exact)) > int64(s.exactCap) {
		s.collapse()
	}
}

// binOf clamps x into a bin index, like Histogram.Add.
func (s *QuantileSketch) binOf(x float64) int {
	i := int((x - s.lo) / (s.hi - s.lo) * float64(s.nbins))
	if i < 0 {
		i = 0
	}
	if i >= s.nbins {
		i = s.nbins - 1
	}
	return i
}

// collapse moves the exact values into bins. Binning is per-value and
// independent of order, so collapsing A∪B∪C gives the same bins no
// matter how the union was grouped — the heart of merge associativity.
func (s *QuantileSketch) collapse() {
	s.bins = make([]int64, s.nbins)
	for _, x := range s.exact {
		s.bins[s.binOf(x)]++
	}
	s.exact = nil
	s.sorted = false
}

// canon sorts the exact values so queries and serialization see one
// canonical representation regardless of insertion order.
func (s *QuantileSketch) canon() {
	if s.bins == nil && !s.sorted {
		sort.Float64s(s.exact)
		s.sorted = true
	}
}

// Merge folds o into s. Both sketches must share lo/hi/nbins/exactCap
// (they come from the same aggregate schema); o is not modified. The
// result is the sketch of the union multiset: if the combined count
// still fits ExactCap it stays exact, otherwise it collapses.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if s.lo != o.lo || s.hi != o.hi || s.nbins != o.nbins || s.exactCap != o.exactCap {
		panic(fmt.Sprintf("stats: merging incompatible sketches [%v,%v)/%d/%d vs [%v,%v)/%d/%d",
			s.lo, s.hi, s.nbins, s.exactCap, o.lo, o.hi, o.nbins, o.exactCap))
	}
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.n += o.n
	switch {
	case s.bins == nil && o.bins == nil:
		s.exact = append(s.exact, o.exact...)
		s.sorted = false
		if int64(len(s.exact)) > int64(s.exactCap) {
			s.collapse()
		}
	case s.bins == nil:
		s.collapse()
		for i, c := range o.bins {
			s.bins[i] += c
		}
	case o.bins == nil:
		for _, x := range o.exact {
			s.bins[s.binOf(x)]++
		}
	default:
		for i, c := range o.bins {
			s.bins[i] += c
		}
	}
}

// N returns the number of observations folded in.
func (s *QuantileSketch) N() int64 { return s.n }

// Exact reports whether the sketch still holds raw values (quantiles
// are exact) or has collapsed to bins (quantiles carry up to
// MaxQuantileError of error).
func (s *QuantileSketch) Exact() bool { return s.bins == nil }

// Min and Max are exact at any scale — they are maintained directly,
// not derived from the bins.
func (s *QuantileSketch) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *QuantileSketch) Max() float64 { return s.max }

// MaxQuantileError bounds |Quantile(p) - exact percentile|: zero while
// the sketch is exact, one bin width once collapsed.
func (s *QuantileSketch) MaxQuantileError() float64 {
	if s.bins == nil {
		return 0
	}
	return (s.hi - s.lo) / float64(s.nbins)
}

// Quantile returns the p-th percentile (0 ≤ p ≤ 100). In exact mode it
// matches stats.Percentile bit-for-bit; in binned mode it linearly
// interpolates within the containing bin and is accurate to
// MaxQuantileError.
func (s *QuantileSketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	if s.bins == nil {
		s.canon()
		return percentileSorted(s.exact, p)
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := p / 100 * float64(s.n-1)
	width := (s.hi - s.lo) / float64(s.nbins)
	var cum int64
	for i, c := range s.bins {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			frac := (rank - float64(cum) + 0.5) / float64(c)
			x := s.lo + (float64(i)+Clamp(frac, 0, 1))*width
			return Clamp(x, s.min, s.max)
		}
		cum += c
	}
	return s.max
}

// CDFAt returns P[X ≤ x]. Exact mode matches CDF.At (right-continuous,
// counting equal values); binned mode interpolates within the bin
// containing x and clamps outside [Min, Max].
func (s *QuantileSketch) CDFAt(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	if s.bins == nil {
		s.canon()
		i := sort.SearchFloat64s(s.exact, x)
		for i < len(s.exact) && s.exact[i] == x {
			i++
		}
		return float64(i) / float64(s.n)
	}
	if x < s.min {
		return 0
	}
	if x >= s.max {
		return 1
	}
	width := (s.hi - s.lo) / float64(s.nbins)
	pos := (x - s.lo) / width
	bin := int(pos)
	if bin < 0 {
		return 0
	}
	if bin >= s.nbins {
		return 1
	}
	var cum int64
	for i := 0; i < bin; i++ {
		cum += s.bins[i]
	}
	within := float64(s.bins[bin]) * (pos - float64(bin))
	return Clamp((float64(cum)+within)/float64(s.n), 0, 1)
}

// Mean returns the arithmetic mean: exact from the raw values while
// exact (computed over the canonical sorted order, so it is merge-order
// independent), and from bin midpoints once collapsed (error bounded by
// half a bin width).
func (s *QuantileSketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	if s.bins == nil {
		s.canon()
		return Mean(s.exact)
	}
	width := (s.hi - s.lo) / float64(s.nbins)
	sum := 0.0
	for i, c := range s.bins {
		if c != 0 {
			mid := Clamp(s.lo+(float64(i)+0.5)*width, s.min, s.max)
			sum += mid * float64(c)
		}
	}
	return sum / float64(s.n)
}

// BoxPlot summarizes the sketch as the five-number summary used by the
// dwell/availability figures. In exact mode it equals NewBoxPlot over
// the same values.
func (s *QuantileSketch) BoxPlot() BoxPlot {
	if s.n == 0 {
		return BoxPlot{}
	}
	return BoxPlot{
		Min:    s.min,
		Q1:     s.Quantile(25),
		Median: s.Quantile(50),
		Q3:     s.Quantile(75),
		Max:    s.max,
		Mean:   s.Mean(),
		N:      int(s.n),
	}
}

// sketchJSON is the serialized form: the canonical state, so two
// sketches over the same multiset marshal byte-identically.
type sketchJSON struct {
	Lo       float64   `json:"lo"`
	Hi       float64   `json:"hi"`
	NBins    int       `json:"nbins"`
	ExactCap int       `json:"exact_cap"`
	N        int64     `json:"n"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Exact    []float64 `json:"exact,omitempty"`
	Bins     []int64   `json:"bins,omitempty"`
}

// MarshalJSON serializes the canonical (sorted) state for checkpoints.
func (s *QuantileSketch) MarshalJSON() ([]byte, error) {
	s.canon()
	return json.Marshal(sketchJSON{
		Lo: s.lo, Hi: s.hi, NBins: s.nbins, ExactCap: s.exactCap,
		N: s.n, Min: s.min, Max: s.max, Exact: s.exact, Bins: s.bins,
	})
}

// UnmarshalJSON restores a checkpointed sketch.
func (s *QuantileSketch) UnmarshalJSON(data []byte) error {
	var j sketchJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.NBins <= 0 || j.Hi <= j.Lo || j.ExactCap < 0 {
		return fmt.Errorf("stats: invalid sketch state [%v,%v) nbins=%d exactCap=%d", j.Lo, j.Hi, j.NBins, j.ExactCap)
	}
	if j.Bins != nil && len(j.Bins) != j.NBins {
		return fmt.Errorf("stats: sketch state has %d bins, want %d", len(j.Bins), j.NBins)
	}
	*s = QuantileSketch{
		lo: j.Lo, hi: j.Hi, nbins: j.NBins, exactCap: j.ExactCap,
		n: j.N, min: j.Min, max: j.Max, exact: j.Exact, sorted: true, bins: j.Bins,
	}
	return nil
}

// Merge folds o's bins into h. Both histograms must share their range
// and bin count. Fixed-bin histograms are the simplest mergeable CDF
// summary: counts just add, in any order or grouping.
func (h *Histogram) Merge(o *Histogram) {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("stats: merging incompatible histograms [%v,%v)/%d vs [%v,%v)/%d",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts)))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.total += o.total
}

// CDFAt returns the fraction of samples in bins whose upper edge is at
// or below x — the empirical CDF at bin granularity.
func (h *Histogram) CDFAt(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	cum := 0
	for i, c := range h.Counts {
		if h.Lo+float64(i+1)*width > x {
			break
		}
		cum += c
	}
	return float64(cum) / float64(h.total)
}
