package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// sketchState returns the canonical serialized form, the equality
// oracle for the merge-law tests: two sketches over the same multiset
// must serialize byte-identically.
func sketchState(t *testing.T, s *QuantileSketch) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

func sketchOf(xs []float64, exactCap int) *QuantileSketch {
	s := NewQuantileSketch(0, 100, 1000, exactCap)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func randomValues(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	return xs
}

func TestSketchExactMatchesPercentile(t *testing.T) {
	xs := randomValues(1, 40)
	s := sketchOf(xs, 48)
	if !s.Exact() {
		t.Fatal("40 values under cap 48 should stay exact")
	}
	for _, p := range []float64{0, 1, 10, 25, 50, 75, 90, 99, 100} {
		if got, want := s.Quantile(p), Percentile(xs, p); got != want {
			t.Errorf("Quantile(%v) = %v, want exact %v", p, got, want)
		}
	}
	if got, want := s.BoxPlot(), NewBoxPlot(xs); got != want {
		t.Errorf("BoxPlot = %+v, want %+v", got, want)
	}
	cdf := NewCDF(xs)
	for _, x := range []float64{-1, 0, 12.5, 50, xs[7], 99, 101} {
		if got, want := s.CDFAt(x), cdf.At(x); got != want {
			t.Errorf("CDFAt(%v) = %v, want exact %v", x, got, want)
		}
	}
	if s.MaxQuantileError() != 0 {
		t.Errorf("exact sketch reports error bound %v", s.MaxQuantileError())
	}
}

func TestSketchBinnedErrorBound(t *testing.T) {
	xs := randomValues(2, 5000)
	s := sketchOf(xs, 48)
	if s.Exact() {
		t.Fatal("5000 values over cap 48 should have collapsed")
	}
	bound := s.MaxQuantileError()
	if want := 100.0 / 1000; bound != want {
		t.Fatalf("error bound = %v, want %v", bound, want)
	}
	for _, p := range []float64{1, 5, 25, 50, 75, 95, 99} {
		got, want := s.Quantile(p), Percentile(xs, p)
		if math.Abs(got-want) > bound {
			t.Errorf("Quantile(%v) = %v, exact %v: error %v exceeds bound %v",
				p, got, want, math.Abs(got-want), bound)
		}
	}
	// Min/Max stay exact even in binned mode.
	if s.Quantile(0) != Percentile(xs, 0) || s.Quantile(100) != Percentile(xs, 100) {
		t.Error("binned min/max quantiles not exact")
	}
	// CDF error is bounded by one bin's mass plus bin-width smearing;
	// sanity-check against the exact CDF at a loose tolerance.
	cdf := NewCDF(xs)
	for _, x := range []float64{10, 33.3, 50, 90} {
		if got, want := s.CDFAt(x), cdf.At(x); math.Abs(got-want) > 0.01 {
			t.Errorf("CDFAt(%v) = %v, exact %v", x, got, want)
		}
	}
}

// TestSketchMergeCommutative: A+B == B+A, in exact and binned regimes.
func TestSketchMergeCommutative(t *testing.T) {
	for _, tc := range []struct {
		name   string
		na, nb int
		cap    int
	}{
		{"exact+exact stay exact", 10, 20, 48},
		{"exact+exact collapse", 30, 30, 48},
		{"binned+exact", 500, 20, 48},
		{"binned+binned", 500, 700, 48},
	} {
		a1, b1 := sketchOf(randomValues(3, tc.na), tc.cap), sketchOf(randomValues(4, tc.nb), tc.cap)
		a2, b2 := sketchOf(randomValues(3, tc.na), tc.cap), sketchOf(randomValues(4, tc.nb), tc.cap)
		a1.Merge(b1)
		b2.Merge(a2)
		if got, want := sketchState(t, a1), sketchState(t, b2); got != want {
			t.Errorf("%s: A+B != B+A\n A+B: %s\n B+A: %s", tc.name, got, want)
		}
	}
}

// TestSketchMergeAssociative: (A+B)+C == A+(B+C), including groupings
// where one side collapses earlier than the other.
func TestSketchMergeAssociative(t *testing.T) {
	for _, cap := range []int{0, 48, 10000} {
		mk := func() (a, b, c *QuantileSketch) {
			return sketchOf(randomValues(5, 30), cap),
				sketchOf(randomValues(6, 30), cap),
				sketchOf(randomValues(7, 30), cap)
		}
		a1, b1, c1 := mk()
		a1.Merge(b1) // may collapse here (cap 48)...
		a1.Merge(c1)
		a2, b2, c2 := mk()
		b2.Merge(c2) // ...or here
		a2.Merge(b2)
		if got, want := sketchState(t, a1), sketchState(t, a2); got != want {
			t.Errorf("cap %d: (A+B)+C != A+(B+C)\n lhs: %s\n rhs: %s", cap, got, want)
		}
	}
}

// TestSketchInsertionOrderIrrelevant: the canonical state is the same
// whatever order values arrive in — the property that lets shards fold
// users in completion order without losing determinism.
func TestSketchInsertionOrderIrrelevant(t *testing.T) {
	xs := randomValues(8, 100)
	fwd := sketchOf(xs, 48)
	rev := NewQuantileSketch(0, 100, 1000, 48)
	for i := len(xs) - 1; i >= 0; i-- {
		rev.Add(xs[i])
	}
	if got, want := sketchState(t, fwd), sketchState(t, rev); got != want {
		t.Errorf("insertion order changed state\n fwd: %s\n rev: %s", got, want)
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	for _, n := range []int{0, 5, 300} {
		s := sketchOf(randomValues(9, n), 48)
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back QuantileSketch
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got := sketchState(t, &back); got != string(data) {
			t.Errorf("n=%d round trip changed state:\n before: %s\n after:  %s", n, data, got)
		}
		// The restored sketch keeps folding and merging correctly.
		back.Add(50)
		if back.N() != int64(n)+1 {
			t.Errorf("restored sketch N = %d, want %d", back.N(), n+1)
		}
	}
}

func TestSketchMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging incompatible sketches should panic")
		}
	}()
	NewQuantileSketch(0, 1, 10, 4).Merge(NewQuantileSketch(0, 2, 10, 4))
}

func TestSketchClampsOutOfRange(t *testing.T) {
	s := NewQuantileSketch(0, 10, 10, 0) // pure binned
	s.Add(-5)
	s.Add(15)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 15 {
		t.Errorf("min/max = %v/%v, want -5/15", s.Min(), s.Max())
	}
	if q := s.Quantile(50); q < -5 || q > 15 {
		t.Errorf("median %v outside observed range", q)
	}
}

func TestHistogramMergeAndCDF(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
	}
	for _, x := range []float64{7, 8, 9} {
		b.Add(x)
	}
	a.Merge(b)
	if a.Total() != 6 {
		t.Fatalf("merged total = %d", a.Total())
	}
	if got := a.CDFAt(5); got != 0.5 {
		t.Errorf("CDFAt(5) = %v, want 0.5", got)
	}
	if got := a.CDFAt(10); got != 1 {
		t.Errorf("CDFAt(10) = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("merging incompatible histograms should panic")
		}
	}()
	a.Merge(NewHistogram(0, 20, 10))
}
